// Coreset selection on your own data: use the facility-location
// selector directly (paper Eq. 5) to pick a weighted, representative
// subset of a custom dataset, then show that training on the coreset
// beats training on a random subset of the same size.
//
//	go run ./examples/coreset-selection
package main

import (
	"fmt"
	"log"

	"nessa"
)

func main() {
	// A custom dataset: 8 classes with long-tail intra-class structure,
	// the regime where subset choice matters.
	spec := nessa.Spec{
		Name: "custom", Classes: 8, Train: 4000, BytesPerImage: 4096, Network: "ResNet-20",
		SimTrain: 1600, SimTest: 600, FeatureDim: 24,
		Spread: 0.07, HardFrac: 0.2, NoiseFrac: 0.02, Seed: 99,
		Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
	}
	train, test := nessa.Generate(spec)
	cfg := nessa.DefaultTrainConfig()

	// Coreset training at a 15 % budget via the NeSSA controller with a
	// fixed subset size (no dynamic shrinking), versus a random subset.
	coreset := nessa.DefaultOptions()
	coreset.SubsetFrac = 0.15
	coreset.DynamicSizing = false

	random := coreset
	random.Selector = nessa.SelectorRandom
	random.SubsetBias = false
	random.Partition = false

	repC, err := nessa.Train(train, test, cfg, coreset)
	if err != nil {
		log.Fatal(err)
	}
	repR, err := nessa.Train(train, test, cfg, random)
	if err != nil {
		log.Fatal(err)
	}
	full := nessa.TrainFullData(train, test, cfg)

	fmt.Printf("budget: 15%% of %d samples\n", train.Len())
	fmt.Printf("full data       : %.2f%%\n", full.FinalAcc*100)
	fmt.Printf("facility coreset: %.2f%% (best %.2f%%)\n", repC.Metrics.FinalAcc*100, repC.Metrics.BestAcc()*100)
	fmt.Printf("random subset   : %.2f%% (best %.2f%%)\n", repR.Metrics.FinalAcc*100, repR.Metrics.BestAcc()*100)

	// The selector is also available standalone: pick 10 weighted
	// medoids per class from raw feature embeddings.
	classes := train.ClassIndex()
	res, err := nessa.SelectCoreset(train.X, classes, 80, 1)
	if err != nil {
		log.Fatal(err)
	}
	var wsum float32
	for _, w := range res.Weights {
		wsum += w
	}
	fmt.Printf("\nstandalone SelectCoreset: %d medoids; weights sum to %.0f (= candidate count %d)\n",
		len(res.Selected), wsum, train.Len())
	fmt.Printf("first medoids: %v\n", res.Selected[:5])
}
