// Quickstart: train CIFAR-10 with NeSSA and compare against training
// on the full dataset.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nessa"
)

func main() {
	// 1. Pick a dataset from the paper's Table 1 and generate its
	//    synthetic stand-in (seeded: runs are reproducible).
	spec, ok := nessa.LookupDataset("CIFAR-10")
	if !ok {
		log.Fatal("CIFAR-10 missing from registry")
	}
	train, test := nessa.Generate(spec)
	fmt.Printf("dataset: %s — %d train / %d test samples\n", spec.Name, train.Len(), test.Len())

	cfg := nessa.DefaultTrainConfig() // §4.1 recipe: SGD + Nesterov, step LR

	// 2. Baseline: train on every sample, every epoch.
	full := nessa.TrainFullData(train, test, cfg)
	fmt.Printf("full data : %.2f%% accuracy, %d gradient computations\n",
		full.FinalAcc*100, full.SamplesSeen())

	// 3. NeSSA: near-storage selection with quantized feedback, subset
	//    biasing, partitioning, and dynamic subset sizing.
	rep, err := nessa.Train(train, test, cfg, nessa.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NeSSA     : %.2f%% accuracy, %d gradient computations\n",
		rep.Metrics.FinalAcc*100, rep.Metrics.SamplesSeen())
	fmt.Printf("subset    : finished at %.0f%% of the data (average %.0f%%), biasing pruned %d samples\n",
		rep.FinalSubsetFrac*100, rep.AvgSubsetFrac*100, rep.Dropped)
	fmt.Printf("accuracy gap: %.2f points for a %.1fx cut in gradient work\n",
		(full.FinalAcc-rep.Metrics.FinalAcc)*100,
		float64(full.SamplesSeen())/float64(rep.Metrics.SamplesSeen()))
}
