// SmartSSD pipeline: run the full near-storage training loop against
// the simulated SmartSSD and inspect every byte that moved — the §4.4
// data-movement story on one dataset.
//
//	go run ./examples/smartssd-pipeline
package main

import (
	"fmt"
	"log"

	"nessa"
)

func main() {
	spec, _ := nessa.LookupDataset("SVHN")
	train, test := nessa.Generate(spec)

	// Lay the dataset out on the simulated drive in its on-disk record
	// format (one record per image, spec.BytesPerImage each).
	dev, err := nessa.NewSmartSSD()
	if err != nil {
		log.Fatal(err)
	}
	img, err := nessa.EncodeDataset(train)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.StoreDataset(spec.Name, img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %s: %.1f MB on the simulated drive\n", spec.Name, float64(len(img))/1e6)

	// Attach the device to the controller: every candidate scan (P2P),
	// subset transfer, and quantized-weight feedback is charged to the
	// device clock and byte ledger.
	cfg := nessa.DefaultTrainConfig()
	opt := nessa.DefaultOptions()
	opt.Device = dev
	opt.DatasetName = spec.Name

	rep, err := nessa.Train(train, test, cfg, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy: %.2f%% on a final subset of %.0f%%\n\n",
		rep.Metrics.FinalAcc*100, rep.FinalSubsetFrac*100)

	fmt.Println("byte ledger (simulated):")
	var nearStorage, hostLink int64
	for _, b := range dev.Acct.ByteBuckets() {
		fmt.Printf("  %-14s %10.1f MB\n", b.Name, float64(b.Bytes)/1e6)
		if b.Name == "p2p.read" {
			nearStorage += b.Bytes
		} else if b.Name == "gpu.send" || b.Name == "gpu.feedback" {
			hostLink += b.Bytes
		}
	}
	fmt.Printf("\nnear-storage traffic stays on the SmartSSD: %.1f MB\n", float64(nearStorage)/1e6)
	fmt.Printf("host-interconnect traffic (what a CPU-selection design would multiply): %.1f MB\n", float64(hostLink)/1e6)
	if hostLink > 0 {
		fmt.Printf("data-movement reduction vs shipping every candidate scan to the host: %.2fx\n",
			float64(nearStorage+hostLink)/float64(hostLink))
	}
	fmt.Printf("\nsimulated device time: %v total\n", dev.Clock.Now())
}
