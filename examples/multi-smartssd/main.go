// Multi-SmartSSD scaling: the paper's stated future work (§5) — shard
// a dataset across several SmartSSDs, scan every shard on its drive's
// FPGA in parallel, and merge the shard selections with the GreeDi
// two-round distributed greedy.
//
//	go run ./examples/multi-smartssd
package main

import (
	"fmt"
	"log"

	"nessa"
)

func main() {
	spec, _ := nessa.LookupDataset("CIFAR-100")
	train, _ := nessa.Generate(spec)
	img, err := nessa.EncodeDataset(train)
	if err != nil {
		log.Fatal(err)
	}

	const drives = 4
	cluster, err := nessa.NewCluster(drives)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := cluster.ShardDataset(spec.Name, img, spec.BytesPerImage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded %s across %d SmartSSDs: %v records per drive\n", spec.Name, drives, counts)

	// Every FPGA scans its local shard in parallel over its P2P link.
	_, _, wall, err := cluster.ParallelScan(spec.Name, spec.BytesPerImage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel scan wall time: %v for %.1f MB total (%.2fx vs one drive)\n",
		wall, float64(len(img))/1e6,
		cluster.ScanSpeedup(int64(len(img)), train.Len()))

	// Gradient embeddings from a briefly warmed-up proxy model — in
	// the real deployment this is the quantized selection model every
	// drive holds a copy of.
	emb := nessa.ProxyEmbeddings(train, nessa.DefaultTrainConfig(), 3)

	all := make([]int, train.Len())
	for i := range all {
		all[i] = i
	}
	k := train.Len() * 20 / 100

	// GreeDi round 1 runs on each drive's shard in parallel; round 2
	// merges the per-drive medoids.
	dist, err := nessa.SelectCoresetDistributed(emb, all, k, drives, 1)
	if err != nil {
		log.Fatal(err)
	}
	central, err := nessa.SelectCoreset(emb, train.ClassIndex(), k, 1)
	if err != nil {
		log.Fatal(err)
	}
	distObj := nessa.CoresetObjective(emb, all, dist.Selected)
	centObj := nessa.CoresetObjective(emb, all, central.Selected)

	fmt.Printf("\nGreeDi over %d drives selected %d medoids\n", drives, len(dist.Selected))
	fmt.Printf("facility-location objective: distributed %.1f vs centralized %.1f (%.1f%%)\n",
		distObj, centObj, 100*distObj/centObj)
	fmt.Printf("cluster near-storage traffic: %.1f MB across %d P2P links\n",
		float64(cluster.TotalBytes("p2p.read"))/1e6, drives)
}
