package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if f := in.FlashRead(); f.Transient || f.Corrupt || f.Extra != 0 {
		t.Fatalf("nil injector injected %+v", f)
	}
	if in.LinkDown() {
		t.Fatal("nil injector dropped the link")
	}
	if in.Stall() != 0 {
		t.Fatal("nil injector stalled")
	}
	if got := in.BackoffJitter(time.Millisecond); got != time.Millisecond {
		t.Fatalf("nil injector jittered backoff to %v", got)
	}
	in.CorruptPayload(make([]byte, 8)) // must not panic
	if in.Total() != 0 || in.Counts() != nil {
		t.Fatal("nil injector counted faults")
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	in := NewInjector(Profile{Seed: 9})
	buf := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		if f := in.FlashRead(); f.Transient || f.Corrupt || f.Extra != 0 {
			t.Fatalf("zero profile injected %+v at op %d", f, i)
		}
		if in.LinkDown() || in.Stall() != 0 {
			t.Fatalf("zero profile injected at op %d", i)
		}
	}
	if in.Total() != 0 {
		t.Fatalf("zero profile counted %d faults", in.Total())
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("payload mutated")
	}
	if !(Profile{Seed: 3}).Zero() {
		t.Fatal("rate-free profile not reported Zero")
	}
	if DefaultChaosProfile().Zero() {
		t.Fatal("chaos profile reported Zero")
	}
}

// Same seed + same operation sequence must produce the identical fault
// schedule and counters — the reproducibility contract of chaos runs.
func TestDeterministicSchedule(t *testing.T) {
	prof := DefaultChaosProfile()
	run := func() (string, map[Class]int64) {
		in := NewInjector(prof)
		var log bytes.Buffer
		buf := make([]byte, 32)
		for i := 0; i < 500; i++ {
			f := in.FlashRead()
			if f.Corrupt {
				in.CorruptPayload(buf)
			}
			fmt.Fprintf(&log, "%v|%v|%v|%v|%v|%x\n", f.Transient, f.Corrupt, f.Extra,
				in.LinkDown(), in.Stall(), buf)
		}
		return log.String(), in.Counts()
	}
	log1, c1 := run()
	log2, c2 := run()
	if log1 != log2 {
		t.Fatal("fault schedules diverged for identical seed and op sequence")
	}
	for _, c := range AllClasses() {
		if c1[c] != c2[c] {
			t.Fatalf("class %s counts diverged: %d vs %d", c, c1[c], c2[c])
		}
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in := NewInjector(Profile{Seed: 7, TransientRate: 0.25, CorruptRate: 0.25,
		LatencyRate: 0.25, LatencySpike: time.Millisecond})
	const n = 4000
	for i := 0; i < n; i++ {
		f := in.FlashRead()
		if f.Corrupt {
			in.CorruptPayload(make([]byte, 4))
		}
	}
	for _, c := range []Class{ClassTransient, ClassLatency} {
		got := float64(in.Count(c)) / n
		if got < 0.20 || got > 0.30 {
			t.Errorf("%s fired at rate %.3f, want ~0.25", c, got)
		}
	}
	// Corruption is suppressed by a same-op transient failure, so its
	// effective rate is ~0.25·0.75.
	if got := float64(in.Count(ClassCorrupt)) / n; got < 0.14 || got > 0.24 {
		t.Errorf("corrupt fired at rate %.3f, want ~0.19", got)
	}
}

func TestCorruptPayloadFlipsExactlyOneBit(t *testing.T) {
	in := NewInjector(Profile{Seed: 3, CorruptRate: 1})
	orig := []byte{0xAA, 0x55, 0x00, 0xFF}
	buf := append([]byte(nil), orig...)
	in.CorruptPayload(buf)
	diffBits := 0
	for i := range buf {
		d := buf[i] ^ orig[i]
		for ; d != 0; d &= d - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	in := NewInjector(Profile{Seed: 11})
	base := 8 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := in.BackoffJitter(base)
		if j < base/2 || j >= base {
			t.Fatalf("jittered backoff %v outside [%v,%v)", j, base/2, base)
		}
	}
}

func TestErrorTaxonomy(t *testing.T) {
	wrapped := fmt.Errorf("smartssd: shard 3: %w", ErrShardTimeout)
	if !errors.Is(wrapped, ErrShardTimeout) {
		t.Fatal("wrapped sentinel not matched by errors.Is")
	}
	for _, err := range []error{ErrTransientIO, ErrCorruptRecord, ErrLinkDown, ErrShardTimeout} {
		if !IsDegradable(fmt.Errorf("layer: %w", err)) {
			t.Errorf("%v should be degradable", err)
		}
	}
	for _, err := range []error{ErrOutOfRange, ErrNotFound, errors.New("boom")} {
		if IsDegradable(fmt.Errorf("layer: %w", err)) {
			t.Errorf("%v should be fatal", err)
		}
	}
}
