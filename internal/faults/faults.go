// Package faults provides the fault model of the storage → selection →
// training pipeline (DESIGN.md §4.6): a deterministic, seeded injector
// that perturbs the device models with the failure classes a real
// near-storage deployment sees (NAND read corruption, transient I/O
// errors, latency spikes, P2P link drops, straggling shards), plus the
// typed sentinel errors every layer uses so callers classify failures
// with errors.Is instead of string matching.
//
// Determinism contract: the injector draws from one seeded SplitMix64
// stream under a lock, and every hook consumes a fixed number of draws
// per call regardless of outcome. Two runs with the same profile, seed,
// and operation sequence therefore inject the identical fault schedule
// — chaos runs are reproducible bug reports, not flakes. A profile with
// all rates zero injects nothing while still exercising every hook, so
// the zero-fault path through the resilience layer is bit-identical to
// running with no injector at all.
package faults

import (
	"errors"
	"sync"
	"time"

	"nessa/internal/tensor"
)

// Class names one injectable fault category. Classes are the keys of
// the injector's ground-truth counters and of the per-class accounting
// reported by core.Run.
type Class string

const (
	// ClassCorrupt is a silent NAND read corruption (UECC escape): the
	// read succeeds but a bit of the returned payload is flipped. Only
	// the codec's per-record CRC32C detects it.
	ClassCorrupt Class = "corrupt"
	// ClassTransient is a retryable I/O error: the flash command fails
	// outright but a re-issued read may succeed.
	ClassTransient Class = "transient"
	// ClassLatency is a latency spike: the read succeeds but takes an
	// extra Profile.LatencySpike of simulated time.
	ClassLatency Class = "latency"
	// ClassLinkDown is a P2P link failure: the SSD↔FPGA peer-to-peer
	// transfer fails and the host-mediated path must take over.
	ClassLinkDown Class = "linkdown"
	// ClassStall is a straggling shard: a cluster shard scan completes
	// but only after an extra Profile.StallFor of simulated time,
	// tripping the per-shard deadline.
	ClassStall Class = "stall"
	// ClassDeviceLost is a whole-device failure: the SmartSSD stops
	// answering on every path (flash, P2P, host) and never comes back.
	// Unlike every other class it is permanent and sticky — recovery
	// means reconstruction from redundancy, not retry.
	ClassDeviceLost Class = "devicelost"
)

// AllClasses lists every fault class in stable reporting order.
func AllClasses() []Class {
	return []Class{ClassCorrupt, ClassTransient, ClassLatency, ClassLinkDown, ClassStall, ClassDeviceLost}
}

// Typed sentinel errors of the pipeline. Device and controller code
// wraps these with context (%w), so errors.Is classifies any failure
// regardless of how many layers it crossed.
var (
	// ErrCorruptRecord marks a record whose CRC32C check failed.
	ErrCorruptRecord = errors.New("corrupt record (CRC mismatch)")
	// ErrTransientIO marks a retryable device I/O failure.
	ErrTransientIO = errors.New("transient I/O error")
	// ErrLinkDown marks a failed P2P link transfer.
	ErrLinkDown = errors.New("p2p link down")
	// ErrShardTimeout marks a cluster shard that missed its scan
	// deadline even after straggler re-issue.
	ErrShardTimeout = errors.New("shard deadline exceeded")
	// ErrDeviceLost marks a whole-device failure. It is permanent: the
	// device fails every subsequent operation on every path, so it is
	// deliberately NOT degradable — retry and host fallback cannot help.
	// Cluster-level code classifies it with errors.Is and recovers by
	// reconstructing the lost stripe from parity instead.
	ErrDeviceLost = errors.New("device lost")
	// ErrOutOfRange marks a read with a negative or overflowing
	// offset/length, or one past the end of the stored object.
	ErrOutOfRange = errors.New("read out of range")
	// ErrNotFound marks a read of an object that was never stored.
	ErrNotFound = errors.New("object not found")
)

// IsDegradable reports whether err is a fault the controller may
// degrade around (retry exhausted on transient errors or corruption,
// link loss, shard timeout) rather than a permanent configuration or
// addressing error that must abort the run.
func IsDegradable(err error) bool {
	return errors.Is(err, ErrTransientIO) ||
		errors.Is(err, ErrCorruptRecord) ||
		errors.Is(err, ErrLinkDown) ||
		errors.Is(err, ErrShardTimeout)
}

// Profile configures per-operation fault rates. All rates are
// probabilities in [0,1] evaluated independently per operation; the
// zero value injects nothing.
type Profile struct {
	Seed uint64 // PRNG seed; the whole chaos schedule derives from it

	CorruptRate   float64       // per flash read: flip one payload bit
	TransientRate float64       // per flash read: fail with ErrTransientIO
	LatencyRate   float64       // per flash read: add LatencySpike
	LatencySpike  time.Duration // size of an injected latency spike
	LinkDownRate  float64       // per P2P transfer: fail with ErrLinkDown
	StallRate     float64       // per shard scan: add StallFor
	StallFor      time.Duration // size of an injected shard stall

	// DeviceLossRate is the per-operation probability that a device
	// fails permanently (whole-device loss). Loss is sticky: once a
	// device is lost, every later operation on it fails too.
	DeviceLossRate float64
	// Kills schedules deterministic whole-device losses for e2e tests
	// and benchmarks. Scheduled kills consume no PRNG draws, so arming
	// a schedule never shifts the other classes' fault schedule.
	Kills []DeviceKill
}

// DeviceKill is one scripted whole-device loss: device Device dies
// once it has completed AfterScans cluster scans, or once its
// simulated clock reaches At — whichever trigger is configured
// (a zero trigger never fires; with both set, either suffices).
type DeviceKill struct {
	Device     int           // device ID to kill
	AfterScans int64         // fire when the device's completed-scan count reaches this (0 = disabled)
	At         time.Duration // fire when the device's simulated clock reaches this (0 = disabled)
}

// Zero reports whether the profile injects nothing.
func (p Profile) Zero() bool {
	return p.CorruptRate == 0 && p.TransientRate == 0 && p.LatencyRate == 0 &&
		p.LinkDownRate == 0 && p.StallRate == 0 &&
		p.DeviceLossRate == 0 && len(p.Kills) == 0
}

// DefaultChaosProfile is the standard mixed fault schedule used by the
// bench-faults artifact and the chaos end-to-end test: every class
// fires at a rate high enough to exercise retry, fallback, and
// straggler re-issue within a short run, yet low enough that the run
// completes.
func DefaultChaosProfile() Profile {
	return Profile{
		Seed:          42,
		CorruptRate:   0.05,
		TransientRate: 0.10,
		LatencyRate:   0.05,
		LatencySpike:  5 * time.Millisecond,
		LinkDownRate:  0.05,
		StallRate:     0.10,
		StallFor:      25 * time.Millisecond,
	}
}

// ReadFault is the injected outcome of one flash read command.
type ReadFault struct {
	Transient bool          // fail the command with ErrTransientIO
	Corrupt   bool          // silently flip a bit of the returned payload
	Extra     time.Duration // added access latency (spike)
}

// Injector draws fault decisions from a seeded PRNG. All methods are
// safe for concurrent use and safe on a nil receiver (a nil injector
// never injects), so device code calls hooks unconditionally.
type Injector struct {
	mu     sync.Mutex
	prof   Profile
	rng    *tensor.RNG
	counts map[Class]int64
	lost   map[int]bool // device ID → permanently lost
}

// NewInjector builds an injector for the profile, seeded from
// prof.Seed.
func NewInjector(prof Profile) *Injector {
	return &Injector{
		prof:   prof,
		rng:    tensor.NewRNG(prof.Seed),
		counts: make(map[Class]int64),
		lost:   make(map[int]bool),
	}
}

// Profile returns the injector's configuration.
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.prof
}

// FlashRead decides the fate of one flash read command. It always
// consumes exactly three PRNG draws so the schedule is independent of
// which classes are enabled. A transient failure suppresses corruption
// (no payload is returned to corrupt) but still pays any latency spike.
func (in *Injector) FlashRead() ReadFault {
	if in == nil {
		return ReadFault{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var f ReadFault
	if in.rng.Float64() < in.prof.TransientRate {
		f.Transient = true
		in.counts[ClassTransient]++
	}
	if in.rng.Float64() < in.prof.CorruptRate && !f.Transient {
		f.Corrupt = true
	}
	if in.rng.Float64() < in.prof.LatencyRate {
		f.Extra = in.prof.LatencySpike
		in.counts[ClassLatency]++
	}
	return f
}

// CorruptPayload flips one deterministically chosen bit of buf,
// counting the corruption. No-op on an empty buffer.
func (in *Injector) CorruptPayload(buf []byte) {
	if in == nil || len(buf) == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	i := in.rng.Intn(len(buf))
	bit := in.rng.Intn(8)
	buf[i] ^= 1 << uint(bit)
	in.counts[ClassCorrupt]++
}

// LinkDown decides whether one P2P transfer finds the link down.
func (in *Injector) LinkDown() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() < in.prof.LinkDownRate {
		in.counts[ClassLinkDown]++
		return true
	}
	return false
}

// Stall decides whether one shard scan straggles and by how much.
func (in *Injector) Stall() time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() < in.prof.StallRate {
		in.counts[ClassStall]++
		return in.prof.StallFor
	}
	return 0
}

// DeviceLoss decides whether the identified device is (or just
// became) permanently lost, given its completed cluster-scan count and
// its simulated clock. Loss is sticky: once this returns true for a
// device ID it returns true forever after.
//
// Draw contract: the hook consumes exactly one PRNG draw per call when
// DeviceLossRate > 0 — even for devices already lost — and exactly
// zero draws otherwise. Scripted Kills are evaluated draw-free, so a
// kill schedule perturbs nothing but the device it names.
func (in *Injector) DeviceLoss(device int, scans int64, now time.Duration) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	dead := in.lost[device]
	if in.prof.DeviceLossRate > 0 {
		if in.rng.Float64() < in.prof.DeviceLossRate && !dead {
			dead = true
		}
	}
	if !dead {
		for _, k := range in.prof.Kills {
			if k.Device != device {
				continue
			}
			if (k.AfterScans > 0 && scans >= k.AfterScans) || (k.At > 0 && now >= k.At) {
				dead = true
				break
			}
		}
	}
	if dead && !in.lost[device] {
		in.lost[device] = true
		in.counts[ClassDeviceLost]++
	}
	return dead
}

// LostDevices reports how many distinct devices the injector has
// declared lost so far.
func (in *Injector) LostDevices() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.lost)
}

// BackoffJitter maps a nominal backoff to a jittered one in
// [b/2, b), drawn from the injector's stream so retry timing is part of
// the reproducible schedule. A nil injector returns b unchanged.
func (in *Injector) BackoffJitter(b time.Duration) time.Duration {
	if in == nil || b <= 0 {
		return b
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	half := b / 2
	return half + time.Duration(in.rng.Float64()*float64(half))
}

// Count reports how many faults of class c have been injected.
func (in *Injector) Count(c Class) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[c]
}

// Counts returns a copy of every per-class injected-fault counter.
func (in *Injector) Counts() map[Class]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Class]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total reports the total number of injected faults across classes.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.counts {
		n += v
	}
	return n
}
