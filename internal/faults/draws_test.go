package faults

import (
	"testing"
	"time"
)

// The injector's reproducibility contract: every hook consumes a fixed
// number of PRNG draws regardless of which faults actually fire —
// FlashRead exactly three, LinkDown and Stall one each, CorruptPayload
// two. If a draw ever becomes conditional on an outcome, two schedules
// with different rates desynchronize and everything downstream of the
// shared stream (retry jitter, later fault decisions) diverges. These
// tests pin the contract by aligning streams across outcome-flipping
// profiles, so a conditional draw fails CI rather than silently
// reshuffling chaos schedules.

// jitterProbe drains k BackoffJitter values — a pure window onto the
// injector's PRNG stream position.
func jitterProbe(in *Injector, k int) []time.Duration {
	out := make([]time.Duration, k)
	for i := range out {
		out[i] = in.BackoffJitter(time.Second)
	}
	return out
}

// assertAligned asserts two same-seed injectors sit at the same stream
// position after their diverging histories.
func assertAligned(t *testing.T, a, b *Injector, what string) {
	t.Helper()
	ja, jb := jitterProbe(a, 8), jitterProbe(b, 8)
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("%s: PRNG streams desynchronized: jitter[%d] = %v vs %v — a hook's draw count depends on its outcome", what, i, ja[i], jb[i])
		}
	}
}

func TestFlashReadAlwaysThreeDraws(t *testing.T) {
	const seed = 99
	// never injects a read fault; always injects every read fault.
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{
		Seed:          seed,
		TransientRate: 1,
		CorruptRate:   1,
		LatencyRate:   1,
		LatencySpike:  time.Millisecond,
	})
	for i := 0; i < 32; i++ {
		if f := quiet.FlashRead(); f.Transient || f.Corrupt || f.Extra != 0 {
			t.Fatalf("zero-rate profile injected a fault: %+v", f)
		}
		if f := loud.FlashRead(); !f.Transient {
			t.Fatalf("rate-1 profile skipped the transient fault: %+v", f)
		}
	}
	assertAligned(t, quiet, loud, "FlashRead")
}

func TestLinkDownSingleDrawPerCall(t *testing.T) {
	const seed = 7
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{Seed: seed, LinkDownRate: 1})
	for i := 0; i < 32; i++ {
		if quiet.LinkDown() {
			t.Fatal("zero-rate profile dropped the link")
		}
		if !loud.LinkDown() {
			t.Fatal("rate-1 profile kept the link up")
		}
	}
	assertAligned(t, quiet, loud, "LinkDown")
}

func TestStallSingleDrawPerCall(t *testing.T) {
	const seed = 13
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{Seed: seed, StallRate: 1, StallFor: time.Millisecond})
	for i := 0; i < 32; i++ {
		if quiet.Stall() != 0 {
			t.Fatal("zero-rate profile stalled")
		}
		if loud.Stall() == 0 {
			t.Fatal("rate-1 profile did not stall")
		}
	}
	assertAligned(t, quiet, loud, "Stall")
}

func TestCorruptPayloadFixedDraws(t *testing.T) {
	const seed = 21
	a := NewInjector(Profile{Seed: seed})
	b := NewInjector(Profile{Seed: seed})
	// Different buffer contents, same lengths: the two draws (index,
	// bit) must consume identically.
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	for i := range bufB {
		bufB[i] = 0xFF
	}
	for i := 0; i < 16; i++ {
		a.CorruptPayload(bufA)
		b.CorruptPayload(bufB)
	}
	assertAligned(t, a, b, "CorruptPayload")
}

// TestMixedHookSequenceAligned drives the full hook mix through two
// outcome-flipped schedules and requires stream alignment at the end —
// the whole-injector form of the fixed-draws contract.
func TestMixedHookSequenceAligned(t *testing.T) {
	const seed = 4242
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{
		Seed:          seed,
		TransientRate: 1,
		CorruptRate:   1,
		LatencyRate:   1,
		LatencySpike:  time.Millisecond,
		LinkDownRate:  1,
		StallRate:     1,
		StallFor:      time.Millisecond,
	})
	buf := make([]byte, 8)
	for i := 0; i < 24; i++ {
		quiet.FlashRead()
		loud.FlashRead()
		quiet.LinkDown()
		loud.LinkDown()
		quiet.Stall()
		loud.Stall()
		quiet.CorruptPayload(buf)
		loud.CorruptPayload(buf)
	}
	assertAligned(t, quiet, loud, "mixed hook sequence")
}
