package faults

import (
	"testing"
	"time"
)

// The injector's reproducibility contract: every hook consumes a fixed
// number of PRNG draws regardless of which faults actually fire —
// FlashRead exactly three, LinkDown and Stall one each, CorruptPayload
// two. If a draw ever becomes conditional on an outcome, two schedules
// with different rates desynchronize and everything downstream of the
// shared stream (retry jitter, later fault decisions) diverges. These
// tests pin the contract by aligning streams across outcome-flipping
// profiles, so a conditional draw fails CI rather than silently
// reshuffling chaos schedules.

// jitterProbe drains k BackoffJitter values — a pure window onto the
// injector's PRNG stream position.
func jitterProbe(in *Injector, k int) []time.Duration {
	out := make([]time.Duration, k)
	for i := range out {
		out[i] = in.BackoffJitter(time.Second)
	}
	return out
}

// assertAligned asserts two same-seed injectors sit at the same stream
// position after their diverging histories.
func assertAligned(t *testing.T, a, b *Injector, what string) {
	t.Helper()
	ja, jb := jitterProbe(a, 8), jitterProbe(b, 8)
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("%s: PRNG streams desynchronized: jitter[%d] = %v vs %v — a hook's draw count depends on its outcome", what, i, ja[i], jb[i])
		}
	}
}

func TestFlashReadAlwaysThreeDraws(t *testing.T) {
	const seed = 99
	// never injects a read fault; always injects every read fault.
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{
		Seed:          seed,
		TransientRate: 1,
		CorruptRate:   1,
		LatencyRate:   1,
		LatencySpike:  time.Millisecond,
	})
	for i := 0; i < 32; i++ {
		if f := quiet.FlashRead(); f.Transient || f.Corrupt || f.Extra != 0 {
			t.Fatalf("zero-rate profile injected a fault: %+v", f)
		}
		if f := loud.FlashRead(); !f.Transient {
			t.Fatalf("rate-1 profile skipped the transient fault: %+v", f)
		}
	}
	assertAligned(t, quiet, loud, "FlashRead")
}

func TestLinkDownSingleDrawPerCall(t *testing.T) {
	const seed = 7
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{Seed: seed, LinkDownRate: 1})
	for i := 0; i < 32; i++ {
		if quiet.LinkDown() {
			t.Fatal("zero-rate profile dropped the link")
		}
		if !loud.LinkDown() {
			t.Fatal("rate-1 profile kept the link up")
		}
	}
	assertAligned(t, quiet, loud, "LinkDown")
}

func TestStallSingleDrawPerCall(t *testing.T) {
	const seed = 13
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{Seed: seed, StallRate: 1, StallFor: time.Millisecond})
	for i := 0; i < 32; i++ {
		if quiet.Stall() != 0 {
			t.Fatal("zero-rate profile stalled")
		}
		if loud.Stall() == 0 {
			t.Fatal("rate-1 profile did not stall")
		}
	}
	assertAligned(t, quiet, loud, "Stall")
}

func TestCorruptPayloadFixedDraws(t *testing.T) {
	const seed = 21
	a := NewInjector(Profile{Seed: seed})
	b := NewInjector(Profile{Seed: seed})
	// Different buffer contents, same lengths: the two draws (index,
	// bit) must consume identically.
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	for i := range bufB {
		bufB[i] = 0xFF
	}
	for i := 0; i < 16; i++ {
		a.CorruptPayload(bufA)
		b.CorruptPayload(bufB)
	}
	assertAligned(t, a, b, "CorruptPayload")
}

// TestDeviceLossDrawContract pins DeviceLoss's asymmetric contract:
// exactly one draw per call when DeviceLossRate > 0 (sticky losses
// included), exactly zero draws otherwise — so scripted kill schedules
// and rate-free profiles never shift the shared stream.
func TestDeviceLossDrawContract(t *testing.T) {
	const seed = 55
	// Zero-draw side: a scripted kill schedule must leave the stream
	// exactly where a no-loss profile leaves it.
	quiet := NewInjector(Profile{Seed: seed})
	scripted := NewInjector(Profile{Seed: seed, Kills: []DeviceKill{{Device: 2, AfterScans: 4}}})
	for i := 0; i < 32; i++ {
		if quiet.DeviceLoss(2, int64(i), 0) {
			t.Fatal("no-loss profile lost a device")
		}
		got := scripted.DeviceLoss(2, int64(i), 0)
		if want := int64(i) >= 4; got != want {
			t.Fatalf("scripted kill at scan %d: lost=%v, want %v", i, got, want)
		}
	}
	assertAligned(t, quiet, scripted, "DeviceLoss scripted")

	// One-draw side: rate 1 (everything dies instantly) and a tiny rate
	// (nothing dies in 32 calls) must stay aligned, including calls on
	// already-lost devices.
	always := NewInjector(Profile{Seed: seed, DeviceLossRate: 1})
	rarely := NewInjector(Profile{Seed: seed, DeviceLossRate: 1e-12})
	for i := 0; i < 32; i++ {
		if !always.DeviceLoss(0, int64(i), 0) {
			t.Fatal("rate-1 profile kept the device alive")
		}
		if rarely.DeviceLoss(0, int64(i), 0) {
			t.Fatal("rate-1e-12 profile lost the device")
		}
	}
	assertAligned(t, always, rarely, "DeviceLoss rated")
}

// TestDeviceLossSticky verifies loss is permanent and counted once per
// device, across both trigger kinds.
func TestDeviceLossSticky(t *testing.T) {
	in := NewInjector(Profile{Seed: 1, Kills: []DeviceKill{
		{Device: 0, AfterScans: 2},
		{Device: 1, At: 5 * time.Millisecond},
	}})
	if in.DeviceLoss(0, 1, 0) {
		t.Fatal("device 0 died before its scan trigger")
	}
	if !in.DeviceLoss(0, 2, 0) {
		t.Fatal("device 0 survived its scan trigger")
	}
	// Sticky: trigger condition no longer holds, device stays dead.
	if !in.DeviceLoss(0, 0, 0) {
		t.Fatal("device 0 came back from the dead")
	}
	if in.DeviceLoss(1, 0, 4*time.Millisecond) {
		t.Fatal("device 1 died before its clock trigger")
	}
	if !in.DeviceLoss(1, 0, 5*time.Millisecond) {
		t.Fatal("device 1 survived its clock trigger")
	}
	if got := in.Count(ClassDeviceLost); got != 2 {
		t.Fatalf("ClassDeviceLost count = %d, want 2 (once per device)", got)
	}
	if got := in.LostDevices(); got != 2 {
		t.Fatalf("LostDevices = %d, want 2", got)
	}
	// Untargeted device is unaffected.
	if in.DeviceLoss(7, 100, time.Hour) {
		t.Fatal("unscheduled device 7 was lost")
	}
}

// TestMixedHookSequenceAligned drives the full hook mix through two
// outcome-flipped schedules and requires stream alignment at the end —
// the whole-injector form of the fixed-draws contract.
func TestMixedHookSequenceAligned(t *testing.T) {
	const seed = 4242
	quiet := NewInjector(Profile{Seed: seed})
	loud := NewInjector(Profile{
		Seed:          seed,
		TransientRate: 1,
		CorruptRate:   1,
		LatencyRate:   1,
		LatencySpike:  time.Millisecond,
		LinkDownRate:  1,
		StallRate:     1,
		StallFor:      time.Millisecond,
	})
	buf := make([]byte, 8)
	for i := 0; i < 24; i++ {
		quiet.FlashRead()
		loud.FlashRead()
		quiet.LinkDown()
		loud.LinkDown()
		quiet.Stall()
		loud.Stall()
		quiet.CorruptPayload(buf)
		loud.CorruptPayload(buf)
	}
	assertAligned(t, quiet, loud, "mixed hook sequence")
}
