package trainer

import (
	"testing"

	"nessa/internal/data"
	"nessa/internal/tensor"
)

// tinySpec is a fast, easily separable dataset for unit tests.
func tinySpec() data.Spec {
	return data.Spec{
		Name: "tiny", Classes: 5, Train: 1000, BytesPerImage: 2048, Network: "ResNet-20",
		SimTrain: 500, SimTest: 200, FeatureDim: 16, Spread: 0.12, HardFrac: 0.1, NoiseFrac: 0.01, Seed: 11,
	}
}

func tinyCfg() Config {
	cfg := Default()
	cfg.Epochs = 25
	return cfg
}

func TestTrainFullLearns(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	_, met := TrainFull(tr, te, tinyCfg())
	if met.FinalAcc < 0.85 {
		t.Fatalf("full training reached %.3f, want >= 0.85 on an easy dataset", met.FinalAcc)
	}
	if len(met.EpochAcc) != 25 || len(met.EpochLoss) != 25 {
		t.Fatalf("metrics lengths = %d/%d, want 25", len(met.EpochAcc), len(met.EpochLoss))
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	_, met := TrainFull(tr, te, tinyCfg())
	first, last := met.EpochLoss[0], met.EpochLoss[len(met.EpochLoss)-1]
	if last >= first/2 {
		t.Fatalf("training loss %v -> %v; expected at least a halving", first, last)
	}
}

func TestWeightedSubsetApproximatesFull(t *testing.T) {
	// Training on a random half with weight 2 per sample should land
	// within a few points of full-data accuracy on an easy dataset.
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	_, fullMet := TrainFull(tr, te, cfg)

	half := make([]int, 0, tr.Len()/2)
	for i := 0; i < tr.Len(); i += 2 {
		half = append(half, i)
	}
	sub := tr.Subset(half)
	weights := make([]float32, sub.Len())
	for i := range weights {
		weights[i] = 2
	}
	tt := New(tr.Spec, cfg)
	for e := 0; e < cfg.Epochs; e++ {
		tt.SetEpoch(e)
		tt.TrainEpoch(sub.X, sub.Labels, weights)
	}
	subsetAcc := tt.Evaluate(te)
	if subsetAcc < fullMet.FinalAcc-0.08 {
		t.Fatalf("weighted half-subset accuracy %.3f too far below full %.3f", subsetAcc, fullMet.FinalAcc)
	}
}

func TestSetEpochFollowsSchedule(t *testing.T) {
	tr := New(tinySpec(), tinyCfg())
	tr.SetEpoch(0)
	lr0 := tr.Opt.LR()
	tr.SetEpoch(24) // past the 80 % milestone of a 25-epoch run
	lrLate := tr.Opt.LR()
	if lrLate >= lr0 {
		t.Fatalf("late LR %v not below initial %v", lrLate, lr0)
	}
}

func TestPerSampleLossesOrdering(t *testing.T) {
	train, te := data.Generate(tinySpec())
	model, _ := TrainFull(train, te, tinyCfg())
	losses := PerSampleLosses(model, train)
	if len(losses) != train.Len() {
		t.Fatalf("got %d losses, want %d", len(losses), train.Len())
	}
	// A trained model should have mostly small losses.
	small := 0
	for _, l := range losses {
		if l < 0.5 {
			small++
		}
	}
	if small < train.Len()/2 {
		t.Fatalf("only %d/%d samples have small loss after training", small, train.Len())
	}
}

func TestEvaluateModelEmptyDataset(t *testing.T) {
	spec := tinySpec()
	tr := New(spec, tinyCfg())
	ds := &data.Dataset{Spec: spec}
	if got := EvaluateModel(tr.Model, ds); got != 0 {
		t.Fatalf("empty evaluation = %v, want 0", got)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{
		EpochAcc:    []float64{0.2, 0.5, 0.9, 0.85},
		SubsetSizes: []int{100, 50, 50, 25},
	}
	if got := m.BestAcc(); got != 0.9 {
		t.Errorf("BestAcc = %v, want 0.9", got)
	}
	if got := m.EpochsToReach(0.5); got != 2 {
		t.Errorf("EpochsToReach(0.5) = %d, want 2", got)
	}
	if got := m.EpochsToReach(0.95); got != -1 {
		t.Errorf("EpochsToReach(0.95) = %d, want -1", got)
	}
	if got := m.SamplesSeen(); got != 225 {
		t.Errorf("SamplesSeen = %d, want 225", got)
	}
}

func TestTrainEpochEmptyInput(t *testing.T) {
	tr := New(tinySpec(), tinyCfg())
	x := tensor.NewMatrix(0, 16)
	if loss := tr.TrainEpoch(x, nil, nil); loss != 0 {
		t.Fatalf("empty epoch loss = %v, want 0", loss)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero epochs")
		}
	}()
	New(tinySpec(), Config{})
}
