//go:build !race

package trainer

const raceEnabled = false
