//go:build race

package trainer

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation and sync.Pool randomization allocate on their own,
// so alloc regressions are only measurable in non-race runs.
const raceEnabled = true
