package trainer

import (
	"math"
	"testing"

	"nessa/internal/data"
	"nessa/internal/nn"
	"nessa/internal/parallel"
)

// trainRun trains a fresh model for a few epochs at the current worker
// setting and returns the per-epoch losses and the final weights.
func trainRun(t *testing.T, epochs int) ([]float64, []float32) {
	t.Helper()
	tr, _ := data.Generate(tinySpec())
	cfg := tinyCfg()
	cfg.Epochs = epochs
	tt := New(tr.Spec, cfg)
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		tt.SetEpoch(e)
		losses = append(losses, tt.TrainEpoch(tr.X, tr.Labels, nil))
	}
	var weights []float32
	for _, l := range tt.Model.Layers {
		weights = append(weights, l.W.Data...)
		weights = append(weights, l.B...)
	}
	return losses, weights
}

// TestTrainEpochWorkerCountInvariant is the trainer-level determinism
// contract: the entire optimization trajectory — every epoch loss and
// every final parameter — must be bit-identical at any worker count.
// This is what makes the parallel GEMM bands and chunked evaluation
// safe to enable by default.
func TestTrainEpochWorkerCountInvariant(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	parallel.SetDefaultWorkers(1)
	refLosses, refWeights := trainRun(t, 4)

	for _, w := range []int{2, 3, 8} {
		parallel.SetDefaultWorkers(w)
		losses, weights := trainRun(t, 4)
		for e := range refLosses {
			if losses[e] != refLosses[e] {
				t.Fatalf("workers=%d epoch %d loss %v != serial %v", w, e, losses[e], refLosses[e])
			}
		}
		for i := range refWeights {
			if math.Float32bits(weights[i]) != math.Float32bits(refWeights[i]) {
				t.Fatalf("workers=%d parameter %d = %v, serial %v (bitwise)", w, i, weights[i], refWeights[i])
			}
		}
	}
}

// TestChunkedEvalMatchesFullPass verifies that the chunked parallel
// inference paths (EvaluateModel, PerSampleLosses) produce exactly the
// single-pass results: each logit row depends only on its own input
// row, so chunking is invisible.
func TestChunkedEvalMatchesFullPass(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	cfg.Epochs = 3
	model, _ := TrainFull(tr, te, cfg)

	// Reference: one whole-dataset forward pass, no chunking.
	var fwd nn.FwdScratch
	logits := model.ForwardInto(&fwd, te.X)
	refLosses := nn.SoftmaxCE(logits, te.Labels, nil, nil)
	refAcc := nn.Accuracy(logits, te.Labels)

	defer parallel.SetDefaultWorkers(0)
	for _, w := range []int{1, 2, 7} {
		parallel.SetDefaultWorkers(w)
		if acc := EvaluateModel(model, te); acc != refAcc {
			t.Fatalf("workers=%d EvaluateModel = %v, full pass %v", w, acc, refAcc)
		}
		losses := PerSampleLosses(model, te)
		for i := range refLosses {
			if math.Float32bits(losses[i]) != math.Float32bits(refLosses[i]) {
				t.Fatalf("workers=%d loss[%d] = %v, full pass %v (bitwise)", w, i, losses[i], refLosses[i])
			}
		}
	}
}

// TestTrainEpochSteadyStateAllocs locks in the zero-allocation epoch:
// after the first epoch warms the scratch arena, TrainEpoch must not
// allocate. The small tolerance absorbs rare sync.Pool refills after a
// GC; the regression guarded against is hundreds of allocations per
// epoch.
func TestTrainEpochSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr, _ := data.Generate(tinySpec())
	tt := New(tr.Spec, tinyCfg())
	weights := make([]float32, tr.Len())
	for i := range weights {
		weights[i] = 1 + float32(i%3)
	}
	epoch := func() { tt.TrainEpoch(tr.X, tr.Labels, weights) }
	epoch() // warm the scratch buffers
	if avg := testing.AllocsPerRun(10, epoch); avg > 8 {
		t.Fatalf("steady-state TrainEpoch allocates %.1f times, want ~0", avg)
	}
}
