package trainer

import (
	"testing"

	"nessa/internal/data"
)

// TestSnapshotRestoreBitIdentical is the checkpoint/resume contract at
// the trainer level: train E epochs, snapshot, keep training the
// original while a restored trainer trains the same remaining epochs —
// losses, accuracies, and final weights must match bit for bit.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	const splitAt = 10

	orig := New(tr.Spec, cfg)
	for e := 0; e < splitAt; e++ {
		orig.SetEpoch(e)
		orig.TrainEpoch(tr.X, tr.Labels, nil)
	}
	model, opt, rngState := orig.Snapshot()

	resumed, err := Restore(tr.Spec, cfg, model, opt, rngState)
	if err != nil {
		t.Fatal(err)
	}
	for e := splitAt; e < cfg.Epochs; e++ {
		orig.SetEpoch(e)
		resumed.SetEpoch(e)
		lo := orig.TrainEpoch(tr.X, tr.Labels, nil)
		lr := resumed.TrainEpoch(tr.X, tr.Labels, nil)
		if lo != lr {
			t.Fatalf("epoch %d: resumed loss %v, original %v", e, lr, lo)
		}
		if ao, ar := orig.Evaluate(te), resumed.Evaluate(te); ao != ar {
			t.Fatalf("epoch %d: resumed accuracy %v, original %v", e, ar, ao)
		}
	}
	for li := range orig.Model.Layers {
		a, b := orig.Model.Layers[li], resumed.Model.Layers[li]
		for i := range a.W.Data {
			if a.W.Data[i] != b.W.Data[i] {
				t.Fatalf("final weights diverged at layer %d index %d", li, i)
			}
		}
	}
}

func TestRestoreRejectsMismatchedGeometry(t *testing.T) {
	tr, _ := data.Generate(tinySpec())
	cfg := tinyCfg()
	model, opt, rngState := New(tr.Spec, cfg).Snapshot()

	other := tr.Spec
	other.FeatureDim = tr.Spec.FeatureDim + 1
	if _, err := Restore(other, cfg, model, opt, rngState); err == nil {
		t.Fatal("restore accepted a checkpoint from a different input width")
	}
	wider := cfg
	wider.Hidden = []int{cfg.Hidden[0] + 1}
	if _, err := Restore(tr.Spec, wider, model, opt, rngState); err == nil {
		t.Fatal("restore accepted a checkpoint from a different hidden width")
	}
	if _, err := Restore(tr.Spec, cfg, model[:8], opt, rngState); err == nil {
		t.Fatal("restore accepted a truncated model blob")
	}
	if _, err := Restore(tr.Spec, cfg, model, opt[:8], rngState); err == nil {
		t.Fatal("restore accepted a truncated optimizer blob")
	}
}
