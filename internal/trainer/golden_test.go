package trainer

import (
	"hash/fnv"
	"math"
	"testing"

	"nessa/internal/data"
	"nessa/internal/parallel"
)

// trajectoryFingerprint trains a small fixed-seed model for a few
// epochs and folds every epoch loss and every final parameter bit
// pattern into one FNV-1a hash — a compact stand-in for the full
// optimization trajectory.
func trajectoryFingerprint(workers int) uint64 {
	defer parallel.SetDefaultWorkers(0)
	parallel.SetDefaultWorkers(workers)
	tr, _ := data.Generate(tinySpec())
	cfg := tinyCfg()
	cfg.Epochs = 6
	tt := New(tr.Spec, cfg)
	weights := make([]float32, tr.Len())
	for i := range weights {
		weights[i] = 1 + float32(i%3)
	}
	h := fnv.New64a()
	var buf [8]byte
	put64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for e := 0; e < cfg.Epochs; e++ {
		tt.SetEpoch(e)
		put64(math.Float64bits(tt.TrainEpoch(tr.X, tr.Labels, weights)))
	}
	for _, l := range tt.Model.Layers {
		for _, v := range l.W.Data {
			put64(uint64(math.Float32bits(v)))
		}
		for _, v := range l.B {
			put64(uint64(math.Float32bits(v)))
		}
	}
	return h.Sum64()
}

// goldenTrajectory pins the bit-exact training trajectory across PRs:
// the constant was recorded before the worker-arena / fast-tier work
// landed, so any change to kernel association order, RNG consumption,
// or batch assembly shows up as a hash mismatch. Recorded on the
// portable+SSE kernel pair (both produce identical bits by contract).
const goldenTrajectory = 0x47fd41f2bcc98f80

func TestGoldenTrajectoryPinned(t *testing.T) {
	for _, w := range []int{1, 3} {
		got := trajectoryFingerprint(w)
		t.Logf("trajectory fingerprint workers=%d: %#x", w, got)
		if got != goldenTrajectory {
			t.Fatalf("workers=%d trajectory fingerprint %#x != golden %#x — the bit-exact training trajectory changed", w, got, goldenTrajectory)
		}
	}
}
