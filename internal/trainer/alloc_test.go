package trainer

import (
	"testing"

	"nessa/internal/data"
	"nessa/internal/parallel"
)

func allocSpec() data.Spec {
	return data.Spec{
		Name: "alloc", Classes: 4, Train: 1000, BytesPerImage: 2048, Network: "ResNet-20",
		SimTrain: 512, SimTest: 128, FeatureDim: 32, Spread: 0.2, Seed: 99,
	}
}

// TestParallelEpochSteadyStateAllocs is the PR's headline regression
// gate: once the worker pool, arenas, and free lists are warm, a full
// parallel training epoch — batch gathers, forward, backward, SGD step,
// every banded GEMM inside — performs zero heap allocations. Any
// closure, scratch buffer, or descriptor that escapes back onto the
// heap fails this test.
func TestParallelEpochSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	prevW := parallel.Default().Workers()
	parallel.SetDefaultWorkers(4)
	defer parallel.SetDefaultWorkers(prevW)

	ds, _ := data.Generate(allocSpec())
	cfg := Default()
	cfg.Epochs = 4
	cfg.BatchSize = 64
	cfg.Hidden = []int{48}
	tr := New(ds.Spec, cfg)

	epoch := func() { tr.TrainEpoch(ds.X, ds.Labels, nil) }
	for i := 0; i < 3; i++ {
		epoch() // warm arenas, free lists, helper goroutines, worker IDs
	}
	if avg := testing.AllocsPerRun(10, epoch); avg > 0 {
		t.Errorf("steady-state parallel TrainEpoch allocates %.1f times, want 0", avg)
	}

	eval := func() { EvaluateModel(tr.Model, ds) }
	for i := 0; i < 3; i++ {
		eval()
	}
	if avg := testing.AllocsPerRun(10, eval); avg > 0 {
		t.Errorf("steady-state EvaluateModel allocates %.1f times, want 0", avg)
	}
}

// TestEvalArenaMatchesSerial pins the arena conversion semantics:
// chunked parallel evaluation and per-sample losses are bit-identical
// to the single-worker pass.
func TestEvalArenaMatchesSerial(t *testing.T) {
	prevW := parallel.Default().Workers()
	defer parallel.SetDefaultWorkers(prevW)

	ds, _ := data.Generate(allocSpec())
	cfg := Default()
	cfg.Epochs = 2
	tr := New(ds.Spec, cfg)
	tr.TrainEpoch(ds.X, ds.Labels, nil)

	parallel.SetDefaultWorkers(1)
	accSerial := EvaluateModel(tr.Model, ds)
	lossSerial := PerSampleLosses(tr.Model, ds)
	for _, w := range []int{2, 5} {
		parallel.SetDefaultWorkers(w)
		if acc := EvaluateModel(tr.Model, ds); acc != accSerial {
			t.Errorf("workers=%d: accuracy %v differs from serial %v", w, acc, accSerial)
		}
		losses := PerSampleLosses(tr.Model, ds)
		for i := range losses {
			if losses[i] != lossSerial[i] {
				t.Fatalf("workers=%d: loss[%d] = %v differs from serial %v", w, i, losses[i], lossSerial[i])
			}
		}
	}
}
