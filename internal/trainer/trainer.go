// Package trainer runs real optimization: full-dataset and
// subset-based training of the MLP proxy models with the paper's SGD
// recipe (§4.1), per-sample loss extraction for the feedback loop, and
// convergence recording for the accuracy experiments (Tables 2–3,
// Fig 5).
package trainer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nessa/internal/data"
	"nessa/internal/nn"
	"nessa/internal/parallel"
	"nessa/internal/tensor"
)

// Config are the training hyperparameters. Zero values fall back to
// the paper's recipe via Default.
type Config struct {
	Epochs    int
	BatchSize int
	Hidden    []int // hidden layer widths of the proxy model
	SGD       nn.SGDConfig
	Schedule  nn.StepSchedule
	Seed      uint64
}

// Default returns the §4.1 recipe scaled to the simulation: the paper
// trains 200 epochs with batch 128; the proxy models converge in 60.
func Default() Config {
	return Config{
		Epochs:    60,
		BatchSize: 128,
		Hidden:    []int{64},
		SGD:       nn.PaperSGD(),
		Schedule:  nn.PaperSchedule(),
		Seed:      1,
	}
}

// Trainer owns a model mid-training. It exposes epoch-level steps so
// the NeSSA controller can interleave selection with training.
type Trainer struct {
	Model *nn.MLP
	Opt   *nn.SGD
	Cfg   Config

	grads   *nn.Grads
	rng     *tensor.RNG
	scratch epochScratch
}

// epochScratch holds the per-batch working buffers of TrainEpoch,
// hoisted out of the batch loop so a steady-state epoch allocates
// nothing: the shuffled permutation, the gathered batch (inputs,
// labels, weights), the logit gradients, and the per-sample losses.
// Buffers are sized for the full batch and re-sliced for the short
// tail batch, keeping their capacity across epochs.
//
//nessa:arena per-epoch training scratch, overwritten every batch
type epochScratch struct {
	perm     []int
	bx       *tensor.Matrix
	blabels  []int
	bweights []float32
	dLogits  *tensor.Matrix
	losses   []float32
}

// New builds a model and optimizer for the dataset's geometry.
func New(spec data.Spec, cfg Config) *Trainer {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		panic(fmt.Sprintf("trainer: invalid config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)
	m := nn.NewMLP(rng, spec.FeatureDim, cfg.Hidden, spec.Classes)
	return &Trainer{
		Model: m,
		Opt:   nn.NewSGD(m, cfg.SGD),
		Cfg:   cfg,
		grads: nn.NewGrads(m),
		rng:   rng,
	}
}

// SetEpoch applies the LR schedule for the given epoch.
func (t *Trainer) SetEpoch(epoch int) {
	t.Opt.SetLR(t.Cfg.Schedule.LRAt(epoch, t.Cfg.Epochs))
}

// Snapshot captures the trainer's complete mutable state — model
// weights, optimizer velocities + learning rate, and the RNG cursor
// that drives epoch shuffles — as the two nn serialization blobs plus
// the raw cursor. Restore on the same (spec, cfg) resumes training
// bit-identically: the next TrainEpoch shuffles, batches, and steps
// exactly as the snapshotted trainer would have.
func (t *Trainer) Snapshot() (model, opt []byte, rngState uint64) {
	return nn.MarshalModel(t.Model), nn.MarshalSGD(t.Opt), t.rng.State()
}

// Restore rebuilds a mid-run trainer from a Snapshot. spec and cfg
// must match the snapshotted run's — the architecture is re-derived
// from them and the checkpointed tensors are validated against it.
func Restore(spec data.Spec, cfg Config, model, opt []byte, rngState uint64) (*Trainer, error) {
	t := New(spec, cfg)
	m, err := nn.UnmarshalModel(model)
	if err != nil {
		return nil, fmt.Errorf("trainer: restoring model: %w", err)
	}
	if m.In != t.Model.In || m.Classes != t.Model.Classes || len(m.Layers) != len(t.Model.Layers) {
		return nil, fmt.Errorf("trainer: checkpointed model is %d→%d over %d layers, config builds %d→%d over %d",
			m.In, m.Classes, len(m.Layers), t.Model.In, t.Model.Classes, len(t.Model.Layers))
	}
	for i, l := range m.Layers {
		want := t.Model.Layers[i]
		if l.W.Rows != want.W.Rows || l.W.Cols != want.W.Cols {
			return nil, fmt.Errorf("trainer: checkpointed layer %d is %dx%d, config builds %dx%d",
				i, l.W.Rows, l.W.Cols, want.W.Rows, want.W.Cols)
		}
	}
	t.Model = m
	t.grads = nn.NewGrads(m)
	t.Opt = nn.NewSGD(m, cfg.SGD)
	if err := nn.UnmarshalSGDInto(t.Opt, opt); err != nil {
		return nil, fmt.Errorf("trainer: restoring optimizer: %w", err)
	}
	t.rng.SetState(rngState)
	return t, nil
}

// TrainEpoch runs one epoch of weighted mini-batch SGD over the given
// samples (rows of x with labels and per-sample weights; weights may be
// nil for uniform). Returns the weighted mean training loss.
//
//nessa:hotpath
func (t *Trainer) TrainEpoch(x *tensor.Matrix, labels []int, weights []float32) float64 {
	n := x.Rows
	if n == 0 {
		return 0
	}
	s := &t.scratch
	// Identity fill + Shuffle consumes the same RNG stream as
	// rng.Perm, so reusing the buffer leaves trajectories unchanged.
	if cap(s.perm) < n {
		s.perm = make([]int, n)
	}
	perm := s.perm[:n]
	for i := range perm {
		perm[i] = i
	}
	t.rng.Shuffle(perm)

	maxBn := t.Cfg.BatchSize
	if maxBn > n {
		maxBn = n
	}
	if cap(s.blabels) < maxBn {
		s.blabels = make([]int, maxBn)
		s.bweights = make([]float32, maxBn)
		s.losses = make([]float32, maxBn)
	}
	var lossSum, wSum float64

	for start := 0; start < n; start += t.Cfg.BatchSize {
		end := start + t.Cfg.BatchSize
		if end > n {
			end = n
		}
		bn := end - start
		// A short tail batch re-slices the same buffers to bn rows.
		// The loss gradient is normalized by the within-batch weight
		// sum (SoftmaxCE), so the final partial batch contributes its
		// own weighted mean gradient exactly as the paper's recipe
		// prescribes — batch size never skews sample weighting.
		idx := perm[start:end]
		s.bx = tensor.EnsureShape(s.bx, bn, x.Cols)
		tensor.GatherRows(s.bx, x, idx)
		blabels := s.blabels[:bn]
		var bweights []float32
		if weights != nil {
			bweights = s.bweights[:bn]
		}
		for i, src := range idx {
			blabels[i] = labels[src]
			if weights != nil {
				bweights[i] = weights[src]
			}
		}
		logits := t.Model.Forward(s.bx)
		s.dLogits = tensor.EnsureShape(s.dLogits, bn, logits.Cols)
		losses := nn.SoftmaxCEInto(s.losses[:bn], nil, logits, blabels, bweights, s.dLogits)
		for i, l := range losses {
			w := 1.0
			if bweights != nil {
				w = float64(bweights[i])
			}
			lossSum += float64(l) * w
			wSum += w
		}
		t.grads.Zero()
		t.Model.Backward(t.grads, s.dLogits)
		t.Opt.Step(t.Model, t.grads)
	}
	if wSum == 0 {
		return 0
	}
	return lossSum / wSum
}

// Evaluate reports test accuracy of the current model on ds.
func (t *Trainer) Evaluate(ds *data.Dataset) float64 {
	return EvaluateModel(t.Model, ds)
}

// evalScratch bundles the per-worker buffers of a chunked inference
// pass: a row-view into the dataset, the forward activations, and a
// softmax scratch. The buffers live in a parallel.WorkerLocal arena
// keyed by the pool's worker IDs — unlike the sync.Pool they replaced,
// the slots are never drained by the garbage collector, so a warm
// worker evaluates with zero allocations forever.
//
//nessa:arena per-worker eval scratch slot, owned by one worker ID for the duration of a chunk
type evalScratch struct {
	view  tensor.Matrix
	fwd   nn.FwdScratch
	probs []float32
}

var evalArena = parallel.NewWorkerLocal[evalScratch](nil)

// viewRows points sc.view at rows [lo, hi) of x without copying.
//
//nessa:scratch-ok the view aliases the caller-owned dataset and is consumed before the chunk returns
func (sc *evalScratch) viewRows(x *tensor.Matrix, lo, hi int) *tensor.Matrix {
	sc.view.Rows = hi - lo
	sc.view.Cols = x.Cols
	sc.view.Data = x.Data[lo*x.Cols : hi*x.Cols]
	return &sc.view
}

// evalJob is a pooled dispatch descriptor for the chunked inference
// passes, mirroring the tensor layer's gemmTask: the operands of one
// pass plus chunk bodies pre-bound at construction, so neither
// EvaluateModel nor PerSampleLosses allocates a closure per call.
type evalJob struct {
	m      *nn.MLP
	x      *tensor.Matrix
	labels []int
	out    []float32
	hits   atomic.Int64

	run     func(w, c, lo, hi int) // bound once to (*evalJob).accuracyChunk
	runLoss func(w, c, lo, hi int) // bound once to (*evalJob).lossChunk
}

var evalJobFree struct {
	mu   sync.Mutex
	list []*evalJob
}

//nessa:scratch-ok ownership transfer: every caller returns the descriptor with putEvalJob before it exits
func getEvalJob(m *nn.MLP, x *tensor.Matrix, labels []int, out []float32) *evalJob {
	ef := &evalJobFree
	ef.mu.Lock()
	var j *evalJob
	if ln := len(ef.list); ln > 0 {
		j = ef.list[ln-1]
		ef.list = ef.list[:ln-1]
	}
	ef.mu.Unlock()
	if j == nil {
		//nessa:alloc-ok free-list miss: descriptor and its bound closures are built once and recycled forever
		j = &evalJob{}
		j.run = j.accuracyChunk
		j.runLoss = j.lossChunk
	}
	j.m, j.x, j.labels, j.out = m, x, labels, out
	j.hits.Store(0)
	return j
}

func putEvalJob(j *evalJob) {
	j.m, j.x, j.labels, j.out = nil, nil, nil, nil
	ef := &evalJobFree
	ef.mu.Lock()
	ef.list = append(ef.list, j)
	ef.mu.Unlock()
}

// accuracyChunk counts correct predictions over rows [lo,hi) through
// worker w's scratch slot. The count is folded with an atomic integer
// add — exact, so the total is independent of chunk completion order.
//
//nessa:hotpath
func (j *evalJob) accuracyChunk(w, c, lo, hi int) {
	sc := evalArena.Get(w)
	logits := j.m.ForwardInto(&sc.fwd, sc.viewRows(j.x, lo, hi))
	cnt := 0
	for i := lo; i < hi; i++ {
		if tensor.Argmax(logits.Row(i-lo)) == j.labels[i] {
			cnt++
		}
	}
	j.hits.Add(int64(cnt))
}

// lossChunk writes per-sample losses for rows [lo,hi) into the job's
// output slice through worker w's scratch slot.
//
//nessa:hotpath
func (j *evalJob) lossChunk(w, c, lo, hi int) {
	sc := evalArena.Get(w)
	if cap(sc.probs) < j.m.Classes {
		//nessa:alloc-ok grow-once per worker slot; steady-state chunks reuse the buffer
		sc.probs = make([]float32, j.m.Classes)
	}
	logits := j.m.ForwardInto(&sc.fwd, sc.viewRows(j.x, lo, hi))
	nn.SoftmaxCEInto(j.out[lo:hi], sc.probs, logits, j.labels[lo:hi], nil, nil)
}

// EvaluateModel reports the accuracy of any model on ds. The dataset is
// processed in fixed-size chunks on the shared worker pool — each chunk
// is an independent forward pass through its worker's arena slot, so
// memory stays bounded by workers × chunk size rather than the dataset
// size, and every logit row equals the full-pass value bit for bit
// (each row depends only on its own input row). Steady-state calls
// allocate nothing.
func EvaluateModel(m *nn.MLP, ds *data.Dataset) float64 {
	n := ds.Len()
	if n == 0 {
		return 0
	}
	j := getEvalJob(m, ds.X, ds.Labels, nil)
	parallel.Default().ForChunksW(n, j.run)
	correct := j.hits.Load()
	putEvalJob(j)
	return float64(correct) / float64(n)
}

// PerSampleLosses runs a forward pass of model m over ds and returns
// each sample's cross-entropy loss — the feedback signal of §3.2.2.
// Chunked over the shared pool like EvaluateModel; each loss is
// bit-identical to the full-pass value. The returned slice is the only
// allocation.
func PerSampleLosses(m *nn.MLP, ds *data.Dataset) []float32 {
	n := ds.Len()
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	j := getEvalJob(m, ds.X, ds.Labels, out)
	parallel.Default().ForChunksW(n, j.runLoss)
	putEvalJob(j)
	return out
}

// Metrics records a training run for the convergence figures.
type Metrics struct {
	EpochAcc    []float64 // test accuracy after each epoch
	EpochLoss   []float64 // mean training loss per epoch
	SubsetSizes []int     // samples trained on per epoch
	FinalAcc    float64
}

// SamplesSeen reports the total sample-visits of the run — the
// gradient-computation cost the paper's |V|/|S| argument reduces.
func (m *Metrics) SamplesSeen() int {
	total := 0
	for _, s := range m.SubsetSizes {
		total += s
	}
	return total
}

// BestAcc reports the best test accuracy across epochs.
func (m *Metrics) BestAcc() float64 {
	best := 0.0
	for _, a := range m.EpochAcc {
		if a > best {
			best = a
		}
	}
	return best
}

// EpochsToReach reports the first epoch (1-based) whose accuracy
// reached target, or -1 if never — the time-to-accuracy measure behind
// the paper's end-to-end speed-up claims (§4.3).
func (m *Metrics) EpochsToReach(target float64) int {
	for i, a := range m.EpochAcc {
		if a >= target {
			return i + 1
		}
	}
	return -1
}

// TrainFull trains on the entire dataset for cfg.Epochs — the "All
// Data" / "Goal" column of Tables 2–3.
func TrainFull(train, test *data.Dataset, cfg Config) (*nn.MLP, *Metrics) {
	t := New(train.Spec, cfg)
	met := &Metrics{}
	for e := 0; e < cfg.Epochs; e++ {
		t.SetEpoch(e)
		loss := t.TrainEpoch(train.X, train.Labels, nil)
		met.EpochLoss = append(met.EpochLoss, loss)
		met.EpochAcc = append(met.EpochAcc, t.Evaluate(test))
		met.SubsetSizes = append(met.SubsetSizes, train.Len())
	}
	met.FinalAcc = met.EpochAcc[len(met.EpochAcc)-1]
	return t.Model, met
}
