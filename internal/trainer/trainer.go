// Package trainer runs real optimization: full-dataset and
// subset-based training of the MLP proxy models with the paper's SGD
// recipe (§4.1), per-sample loss extraction for the feedback loop, and
// convergence recording for the accuracy experiments (Tables 2–3,
// Fig 5).
package trainer

import (
	"fmt"

	"nessa/internal/data"
	"nessa/internal/nn"
	"nessa/internal/tensor"
)

// Config are the training hyperparameters. Zero values fall back to
// the paper's recipe via Default.
type Config struct {
	Epochs    int
	BatchSize int
	Hidden    []int // hidden layer widths of the proxy model
	SGD       nn.SGDConfig
	Schedule  nn.StepSchedule
	Seed      uint64
}

// Default returns the §4.1 recipe scaled to the simulation: the paper
// trains 200 epochs with batch 128; the proxy models converge in 60.
func Default() Config {
	return Config{
		Epochs:    60,
		BatchSize: 128,
		Hidden:    []int{64},
		SGD:       nn.PaperSGD(),
		Schedule:  nn.PaperSchedule(),
		Seed:      1,
	}
}

// Trainer owns a model mid-training. It exposes epoch-level steps so
// the NeSSA controller can interleave selection with training.
type Trainer struct {
	Model *nn.MLP
	Opt   *nn.SGD
	Cfg   Config

	grads *nn.Grads
	rng   *tensor.RNG
}

// New builds a model and optimizer for the dataset's geometry.
func New(spec data.Spec, cfg Config) *Trainer {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		panic(fmt.Sprintf("trainer: invalid config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed)
	m := nn.NewMLP(rng, spec.FeatureDim, cfg.Hidden, spec.Classes)
	return &Trainer{
		Model: m,
		Opt:   nn.NewSGD(m, cfg.SGD),
		Cfg:   cfg,
		grads: nn.NewGrads(m),
		rng:   rng,
	}
}

// SetEpoch applies the LR schedule for the given epoch.
func (t *Trainer) SetEpoch(epoch int) {
	t.Opt.SetLR(t.Cfg.Schedule.LRAt(epoch, t.Cfg.Epochs))
}

// TrainEpoch runs one epoch of weighted mini-batch SGD over the given
// samples (rows of x with labels and per-sample weights; weights may be
// nil for uniform). Returns the weighted mean training loss.
func (t *Trainer) TrainEpoch(x *tensor.Matrix, labels []int, weights []float32) float64 {
	n := x.Rows
	if n == 0 {
		return 0
	}
	perm := t.rng.Perm(n)
	var lossSum, wSum float64

	for start := 0; start < n; start += t.Cfg.BatchSize {
		end := start + t.Cfg.BatchSize
		if end > n {
			end = n
		}
		bn := end - start
		bx := tensor.NewMatrix(bn, x.Cols)
		blabels := make([]int, bn)
		var bweights []float32
		if weights != nil {
			bweights = make([]float32, bn)
		}
		for i := 0; i < bn; i++ {
			src := perm[start+i]
			copy(bx.Row(i), x.Row(src))
			blabels[i] = labels[src]
			if weights != nil {
				bweights[i] = weights[src]
			}
		}
		logits := t.Model.Forward(bx)
		dLogits := tensor.NewMatrix(bn, logits.Cols)
		losses := nn.SoftmaxCE(logits, blabels, bweights, dLogits)
		for i, l := range losses {
			w := 1.0
			if bweights != nil {
				w = float64(bweights[i])
			}
			lossSum += float64(l) * w
			wSum += w
		}
		t.grads.Zero()
		t.Model.Backward(t.grads, dLogits)
		t.Opt.Step(t.Model, t.grads)
	}
	if wSum == 0 {
		return 0
	}
	return lossSum / wSum
}

// Evaluate reports test accuracy of the current model on ds.
func (t *Trainer) Evaluate(ds *data.Dataset) float64 {
	return EvaluateModel(t.Model, ds)
}

// EvaluateModel reports the accuracy of any model on ds.
func EvaluateModel(m *nn.MLP, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	return nn.Accuracy(m.Forward(ds.X), ds.Labels)
}

// PerSampleLosses runs a forward pass of model m over ds and returns
// each sample's cross-entropy loss — the feedback signal of §3.2.2.
func PerSampleLosses(m *nn.MLP, ds *data.Dataset) []float32 {
	logits := m.Forward(ds.X)
	return nn.SoftmaxCE(logits, ds.Labels, nil, nil)
}

// Metrics records a training run for the convergence figures.
type Metrics struct {
	EpochAcc    []float64 // test accuracy after each epoch
	EpochLoss   []float64 // mean training loss per epoch
	SubsetSizes []int     // samples trained on per epoch
	FinalAcc    float64
}

// SamplesSeen reports the total sample-visits of the run — the
// gradient-computation cost the paper's |V|/|S| argument reduces.
func (m *Metrics) SamplesSeen() int {
	total := 0
	for _, s := range m.SubsetSizes {
		total += s
	}
	return total
}

// BestAcc reports the best test accuracy across epochs.
func (m *Metrics) BestAcc() float64 {
	best := 0.0
	for _, a := range m.EpochAcc {
		if a > best {
			best = a
		}
	}
	return best
}

// EpochsToReach reports the first epoch (1-based) whose accuracy
// reached target, or -1 if never — the time-to-accuracy measure behind
// the paper's end-to-end speed-up claims (§4.3).
func (m *Metrics) EpochsToReach(target float64) int {
	for i, a := range m.EpochAcc {
		if a >= target {
			return i + 1
		}
	}
	return -1
}

// TrainFull trains on the entire dataset for cfg.Epochs — the "All
// Data" / "Goal" column of Tables 2–3.
func TrainFull(train, test *data.Dataset, cfg Config) (*nn.MLP, *Metrics) {
	t := New(train.Spec, cfg)
	met := &Metrics{}
	for e := 0; e < cfg.Epochs; e++ {
		t.SetEpoch(e)
		loss := t.TrainEpoch(train.X, train.Labels, nil)
		met.EpochLoss = append(met.EpochLoss, loss)
		met.EpochAcc = append(met.EpochAcc, t.Evaluate(test))
		met.SubsetSizes = append(met.SubsetSizes, train.Len())
	}
	met.FinalAcc = met.EpochAcc[len(met.EpochAcc)-1]
	return t.Model, met
}
