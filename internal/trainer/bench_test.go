package trainer

import (
	"testing"

	"nessa/internal/data"
	"nessa/internal/parallel"
)

// benchSpec is a CIFAR-10-shaped workload at reduced scale: enough
// rows that the per-batch GEMMs clear the parallel threshold, small
// enough that one epoch runs in milliseconds.
func benchSpec() data.Spec {
	return data.Spec{
		Name: "bench", Classes: 10, Train: 4096, BytesPerImage: 3072, Network: "ResNet-20",
		SimTrain: 4096, SimTest: 512, FeatureDim: 64, Spread: 0.15, HardFrac: 0.1, NoiseFrac: 0.02, Seed: 5,
	}
}

// BenchmarkTrainEpoch measures one full epoch of weighted mini-batch
// SGD — the training hot path of core.Run — at 1 worker and at all
// cores. b.ReportAllocs surfaces the steady-state allocation count the
// scratch arenas are meant to hold at O(1) per epoch.
func BenchmarkTrainEpoch(b *testing.B) {
	train, _ := data.Generate(benchSpec())
	weights := make([]float32, train.Len())
	for i := range weights {
		weights[i] = 1 + float32(i%3)
	}
	for _, workers := range []int{1, 0} { // 0 = NumCPU
		name := "workers=1"
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			parallel.SetDefaultWorkers(workers)
			defer parallel.SetDefaultWorkers(0)
			cfg := Default()
			cfg.Epochs = 1
			tr := New(train.Spec, cfg)
			tr.SetEpoch(0)
			tr.TrainEpoch(train.X, train.Labels, weights) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.TrainEpoch(train.X, train.Labels, weights)
			}
		})
	}
}

// BenchmarkEvaluate measures full-dataset inference (accuracy pass),
// which PR 2 runs in bounded-memory parallel chunks on the pool.
func BenchmarkEvaluate(b *testing.B) {
	train, test := data.Generate(benchSpec())
	cfg := Default()
	cfg.Epochs = 1
	tr := New(train.Spec, cfg)
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			parallel.SetDefaultWorkers(workers)
			defer parallel.SetDefaultWorkers(0)
			tr.Evaluate(test)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Evaluate(test)
			}
		})
	}
}
