package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// AsmFMAAnalyzer turns the source-level fma analyzer's heuristic into
// a proof about the emitted code: in the kernel packages, no
// VFMADD*/VFNMADD* instruction may exist outside the fast-tier file
// set that the BitExact option dispatch-gates at runtime. A fused
// multiply-add rounds once where the bit-exact contract requires two
// roundings, so a stray FMA anywhere else silently breaks trajectory
// bit-identity between the amd64 and portable kernels.
//
// Two instruction sources are checked:
//
//   - gc-compiled Go code, via the FactFusedMulAdd facts parsed from
//     the instrumented build's -S listing (the compiler's own record
//     of every mnemonic it emitted — immune to the relocation-desync
//     that makes objdump unreliable on unlinked archives);
//   - hand-written assembly files, scanned textually — Plan9 asm
//     mnemonics are literal in the source, so the text *is* the
//     instruction stream.
//
// The escape hatch is the file set, not a directive: fast-tier
// kernels live in files whose base name starts with one of
// fastTierFilePrefixes, and anything there may fuse freely because
// the BitExact=false tier documents its tolerance. A justified
// exception elsewhere in hand-written assembly may carry
// //nessa:fma-ok on (or above) the instruction line.
func AsmFMAAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "asmfma",
		Doc:    "prove no fused-multiply-add instructions exist outside the fast-tier file set in kernel packages",
		Waiver: DirFMAOK,
		Run:    runAsmFMA,
	}
}

// fastTierFilePrefixes is the dispatch-gated fast-tier file set: the
// only files in the kernel packages allowed to contain FMA
// instructions. Matches gemm_fast.go (tier drivers), gemm_fma_*.go
// (detection + stubs), and gemm_avx2_*.s (the VFMADD micro-kernels).
var fastTierFilePrefixes = []string{"gemm_fast", "gemm_fma", "gemm_avx2"}

func fastTierFile(path string) bool {
	base := filepath.Base(path)
	for _, prefix := range fastTierFilePrefixes {
		if strings.HasPrefix(base, prefix) {
			return true
		}
	}
	return false
}

// asmFMARe matches the fused-multiply-add mnemonic family in Plan9
// assembly text: VFMADD132/213/231 and VFNMADD variants, packed or
// scalar, single or double.
var asmFMARe = regexp.MustCompile(`\bVFN?MADD[0-9]{3}[SP][SD]\b`)

func runAsmFMA(p *Pass) {
	if p.Evidence == nil {
		return
	}
	if !bceScoped(moduleOf(p.Pkg.ImportPath), p.Pkg.ImportPath) {
		return
	}
	checkCompiledFMA(p)
	checkAsmFiles(p)
}

// checkCompiledFMA audits the -S listing facts for the package's Go
// files.
func checkCompiledFMA(p *Pass) {
	files := make([]string, 0, len(p.Pkg.Files))
	for _, f := range p.Pkg.Files {
		files = append(files, p.Pkg.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(files)
	for _, file := range files {
		for _, fact := range p.Evidence.FactsIn(file) {
			if fact.Kind != FactFusedMulAdd {
				continue
			}
			if fastTierFile(file) {
				p.Metric(MetricFMAFastTier, 1)
				continue
			}
			p.ReportPosition(token.Position{Filename: file, Line: fact.Line, Column: fact.Col},
				"gc emitted %s here, outside the fast-tier file set (%s*) — a fused multiply-add rounds once and breaks the bit-exact tier's trajectory identity; move the code into the dispatch-gated fast tier or restructure so gc does not fuse",
				fact.Name, strings.Join(fastTierFilePrefixes, "*, "))
		}
	}
}

// checkAsmFiles textually scans the package's hand-written assembly.
func checkAsmFiles(p *Pass) {
	entries, err := os.ReadDir(p.Pkg.Dir)
	if err != nil {
		return
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".s") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(p.Pkg.Dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		lines := strings.Split(string(data), "\n")
		if fastTierFile(path) {
			for _, line := range lines {
				p.Metric(MetricFMAFastTier, len(asmFMARe.FindAllString(stripAsmComment(line), -1)))
			}
			continue
		}
		for i, line := range lines {
			code := stripAsmComment(line)
			m := asmFMARe.FindStringIndex(code)
			if m == nil {
				continue
			}
			if asmLineWaived(lines, i) {
				continue
			}
			p.ReportPosition(token.Position{Filename: path, Line: i + 1, Column: m[0] + 1},
				"hand-written %s outside the fast-tier file set (%s*) — the bit-exact kernels must not fuse multiply-adds (move the kernel into a dispatch-gated fast-tier file, or annotate //nessa:fma-ok with a justification)",
				code[m[0]:m[1]], strings.Join(fastTierFilePrefixes, "*, "))
		}
	}
}

// stripAsmComment drops a // comment tail so mnemonics mentioned in
// prose do not count as instructions.
func stripAsmComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		return line[:i]
	}
	return line
}

// asmLineWaived reports whether assembly line i (0-based) or the line
// above carries //nessa:fma-ok — the same placement convention
// ExemptAt implements for Go files, applied textually since assembly
// never reaches the AST.
func asmLineWaived(lines []string, i int) bool {
	if strings.Contains(lines[i], "//nessa:"+DirFMAOK) {
		return true
	}
	return i > 0 && strings.Contains(lines[i-1], "//nessa:"+DirFMAOK)
}
