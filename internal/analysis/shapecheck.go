package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// shapecheck: abstract interpretation over the symbolic-dimension
// lattice of shape.go. Every local variable carries a shape value —
// an integer dimension, a slice length, or a matrix rows×cols pair,
// each a polynomial over named symbols — propagated forward over the
// CFG with a join that degrades disagreeing dimensions to ⊤. Transfer
// functions encode the tensor API (NewMatrix, EnsureShape, Row,
// GatherRows, the MatMul family, AXPY, AddRowVec*, Dot, Softmax), the
// nn layer wiring (Forward/ForwardInto/Backward, the loss kernels),
// and //nessa:shape contracts on struct fields and functions.
//
// The analysis is interprocedural via per-function summaries: a
// function's result dimensions and checked preconditions, expressed
// over its parameter symbols, are computed on demand and memoized;
// recursive cycles are cut conservatively (in-progress callees read
// as unknown) and re-solved once, which reaches the fixpoint for the
// call graphs this repo has. Call sites substitute argument dimensions
// into the callee's parameter symbols, so a guard like
//
//	if dst.Rows != src.Rows { panic(...) }
//
// inside a helper becomes a checked precondition at every caller.
//
// Two reporting modes keep the analysis useful without false alarms:
//
//   - everywhere: only provable conflicts are findings — a nonzero
//     constant dimension difference, or a residual made entirely of
//     one contract instance's named dims (out vs in);
//   - at contract-binding sites (calls to //nessa:shape functions,
//     composite literals of structs with //nessa:shape fields): a
//     known dimension that cannot be proven equal to the contract is
//     also a finding, because the contract is the declared truth.
//
// //nessa:shape-ok on (or immediately above) a flagged line waives it.
func ShapeCheckAnalyzer() *Analyzer {
	sc := newShapeCheck()
	return &Analyzer{
		Name:   "shapecheck",
		Doc:    "tensor shapes must agree symbolically across the tensor/nn/data APIs and //nessa:shape contracts",
		Waiver: DirShapeOK,
		Run:    sc.run,
	}
}

type shapeCheck struct {
	syms *symTable
	// Cross-package indexes, filled lazily per universe package.
	indexed        map[*Package]bool
	fieldContracts map[types.Object]*shapeContract
	funcContracts  map[*types.Func]*shapeContract
	contractIssues map[*Package][]dirIssue
	attached       map[*ast.Comment]bool
	decls          map[*types.Func]declRef
	summaries      map[*types.Func]*funcSummary
	inProgress     map[*types.Func]bool
	reported       map[string]bool
}

type dirIssue struct {
	pos token.Pos
	msg string
}

type declRef struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func newShapeCheck() *shapeCheck {
	return &shapeCheck{
		syms:           newSymTable(),
		indexed:        make(map[*Package]bool),
		fieldContracts: make(map[types.Object]*shapeContract),
		funcContracts:  make(map[*types.Func]*shapeContract),
		contractIssues: make(map[*Package][]dirIssue),
		attached:       make(map[*ast.Comment]bool),
		decls:          make(map[*types.Func]declRef),
		summaries:      make(map[*types.Func]*funcSummary),
		inProgress:     make(map[*types.Func]bool),
		reported:       make(map[string]bool),
	}
}

func (sc *shapeCheck) run(p *Pass) {
	sc.indexPackage(p.Pkg)
	for _, u := range p.Universe {
		sc.indexPackage(u)
	}
	for _, iss := range sc.contractIssues[p.Pkg] {
		p.Reportf(iss.pos, "%s", iss.msg)
	}
	sc.reportDetached(p)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc.analyzeForReport(p, fd)
		}
	}
}

// ---------------------------------------------------------------------
// Contract and declaration indexing
// ---------------------------------------------------------------------

// indexPackage records every //nessa:shape contract (on functions and
// struct fields) and every function declaration of pkg. Malformed
// contracts become findings for the package's own pass.
func (sc *shapeCheck) indexPackage(pkg *Package) {
	if sc.indexed[pkg] {
		return
	}
	sc.indexed[pkg] = true
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if fd.Body != nil {
				sc.decls[fn] = declRef{pkg: pkg, decl: fd}
			}
			if c := sc.parseGroup(pkg, fd.Doc); c != nil {
				sc.validateFuncContract(pkg, c, fd)
				sc.funcContracts[fn] = c
			}
		}
		// Struct fields anywhere in the file, including local types.
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				c := sc.parseGroup(pkg, field.Doc)
				if c == nil {
					c = sc.parseGroup(pkg, field.Comment)
				}
				if c == nil {
					continue
				}
				if len(c.Clauses) != 1 || c.Clauses[0].Target != "" {
					sc.issue(pkg, c.Pos, "field contract cannot name targets (write //nessa:shape(rows=..., cols=...))")
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						sc.fieldContracts[obj] = c
					}
				}
			}
			return true
		})
	}
}

// parseGroup parses the first //nessa:shape directive of a comment
// group, marking every shape directive in it as attached to a
// declaration (parse errors still count as attached — the directive is
// positioned right, just malformed, and gets its own finding).
func (sc *shapeCheck) parseGroup(pkg *Package, cg *ast.CommentGroup) *shapeContract {
	if cg == nil {
		return nil
	}
	var out *shapeContract
	for _, c := range cg.List {
		if !isShapeDirective(c.Text) {
			continue
		}
		sc.attached[c] = true
		parsed, err := parseShapeContract(c.Text, c.Pos())
		if err != nil {
			sc.issue(pkg, c.Pos(), fmt.Sprintf("malformed //nessa:shape directive: %v", err))
			continue
		}
		if out == nil {
			out = parsed
		}
	}
	return out
}

func (sc *shapeCheck) validateFuncContract(pkg *Package, c *shapeContract, fd *ast.FuncDecl) {
	params := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				params[name.Name] = true
			}
		}
	}
	for _, cl := range c.Clauses {
		if cl.Target != "" && !params[cl.Target] {
			sc.issue(pkg, c.Pos, fmt.Sprintf("//nessa:shape target %q is not a parameter of %s", cl.Target, fd.Name.Name))
		}
	}
}

func (sc *shapeCheck) issue(pkg *Package, pos token.Pos, msg string) {
	sc.contractIssues[pkg] = append(sc.contractIssues[pkg], dirIssue{pos: pos, msg: msg})
}

// reportDetached flags //nessa:shape directives that are attached to no
// declaration — the gofmt hazard where a blank line silently detaches a
// contract and it stops being enforced.
func (sc *shapeCheck) reportDetached(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isShapeDirective(c.Text) && !sc.attached[c] {
					p.Reportf(c.Pos(), "//nessa:shape directive is not attached to a function or struct field declaration (a blank line detaches it) and will not be enforced")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Shape values and environments
// ---------------------------------------------------------------------

type svalKind uint8

const (
	svTop svalKind = iota
	svNum
	svMat
	svSlice
)

// sval is the abstract value of one variable. For svNum, a is the
// value; for svMat, a×b is rows×cols; for svSlice, a is the length and
// b the capacity when known (nil otherwise).
type sval struct {
	kind svalKind
	a, b *poly
}

func topSval() sval           { return sval{} }
func numSval(p *poly) sval    { return sval{kind: svNum, a: p} }
func matSval(r, c *poly) sval { return sval{kind: svMat, a: r, b: c} }
func sliceSval(l *poly) sval  { return sval{kind: svSlice, a: l} }
func capSval(l, c *poly) sval { return sval{kind: svSlice, a: l, b: c} }
func (v sval) isTop() bool    { return v.kind == svTop }
func (v sval) num() *poly {
	if v.kind == svNum {
		return v.a
	}
	return topPoly()
}
func (v sval) rows() *poly {
	if v.kind == svMat {
		return v.a
	}
	return topPoly()
}
func (v sval) cols() *poly {
	if v.kind == svMat {
		return v.b
	}
	return topPoly()
}
func (v sval) slen() *poly {
	if v.kind == svSlice {
		return v.a
	}
	return topPoly()
}

func joinDim(a, b *poly) *poly {
	if polyEqual(a, b) {
		return a
	}
	return topPoly()
}

func joinSval(a, b sval) sval {
	if a.kind != b.kind {
		return topSval()
	}
	return sval{kind: a.kind, a: joinDim(a.a, b.a), b: joinDim(a.b, b.b)}
}

func svalEqual(a, b sval) bool {
	return a.kind == b.kind && polyEqual(a.a, b.a) && polyEqual(a.b, b.b)
}

// shapeEnv maps variables to shape values. A variable with no entry is
// at its baseline: an opaque symbol named after the variable itself
// (sym(n), len(v), m.Rows...), which is what makes two reads of an
// untouched variable comparable. reached distinguishes dead blocks.
type shapeEnv struct {
	reached bool
	vars    map[types.Object]sval
}

func copyEnv(e *shapeEnv) *shapeEnv {
	out := &shapeEnv{reached: e.reached}
	if e.vars != nil {
		out.vars = make(map[types.Object]sval, len(e.vars))
		for k, v := range e.vars {
			out.vars[k] = v
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Per-function analysis state
// ---------------------------------------------------------------------

// shapeFn analyzes one function body (or function literal). pass is
// nil while summarizing a callee: conflicts are not reported (the
// callee's own package pass reports them) and strict-check residue
// becomes summary preconditions instead.
type shapeFn struct {
	sc     *shapeCheck
	pkg    *Package
	pass   *Pass
	fn     *types.Func
	params map[types.Object]bool
	subst  map[symID]*poly
	sum    *funcSummary
	lits   []queuedLit
	// sawInProgress records that a call resolved to a summary still
	// being computed (a call-graph cycle through this function).
	sawInProgress bool
}

type queuedLit struct {
	lit *ast.FuncLit
	env *shapeEnv
}

// funcSummary is one function's interprocedural shape summary: result
// dimensions and checked preconditions, both expressed over parameter
// (and package-level) symbols only.
type funcSummary struct {
	params   []types.Object // receiver first, then parameters
	results  []sval
	preconds []shapePrecond
}

type shapePrecond struct {
	labelA, labelB string
	a, b           *poly
	minlen         bool // a must be at least b, not equal to it
}

// summaryPrecondLimit caps how many preconditions one summary carries.
const summaryPrecondLimit = 12

func (sc *shapeCheck) newFn(pkg *Package, pass *Pass, fn *types.Func, params []types.Object) *shapeFn {
	fa := &shapeFn{
		sc:     sc,
		pkg:    pkg,
		pass:   pass,
		fn:     fn,
		params: make(map[types.Object]bool, len(params)),
		subst:  make(map[symID]*poly),
	}
	for _, p := range params {
		fa.params[p] = true
	}
	return fa
}

func (sc *shapeCheck) analyzeForReport(p *Pass, fd *ast.FuncDecl) {
	fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	fa := sc.newFn(p.Pkg, p, fn, funcParams(p.Pkg.Info, fd))
	fa.collectAssumes(fd.Body)
	fa.analyzeBody(fd.Body, fa.boundaryEnv(fd))
	// Function literals run with the environment captured at their
	// program point, so shapes of free variables flow in.
	for i := 0; i < len(fa.lits); i++ {
		q := fa.lits[i]
		sub := sc.newFn(p.Pkg, p, fn, litParams(p.Pkg.Info, q.lit))
		for par := range fa.params {
			sub.params[par] = true
		}
		for id, rep := range fa.subst {
			sub.subst[id] = rep
		}
		sub.collectAssumes(q.lit.Body)
		sub.analyzeBody(q.lit.Body, q.env)
		fa.lits = append(fa.lits, sub.lits...)
	}
}

// boundaryEnv seeds the entry environment. Parameters of a contracted
// function start at the contract's dimensions, with the contract's
// free names bound to symbols rooted at the function object.
func (fa *shapeFn) boundaryEnv(fd *ast.FuncDecl) *shapeEnv {
	env := &shapeEnv{reached: true, vars: make(map[types.Object]sval)}
	if fa.fn == nil {
		return env
	}
	c := fa.sc.funcContracts[fa.fn]
	if c == nil {
		return env
	}
	bind := func(name string) *poly {
		return symPoly(fa.sc.intern(fa.fn, "#"+name))
	}
	if fd.Type.Params == nil {
		return env
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			cl := c.clauseFor(name.Name)
			if cl == nil {
				continue
			}
			obj := fa.pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			v := fa.baseVal(obj)
			switch v.kind {
			case svMat:
				if e, ok := cl.Dims[shapeKeyRows]; ok {
					v.a = evalContractExpr(e, bind)
				}
				if e, ok := cl.Dims[shapeKeyCols]; ok {
					v.b = evalContractExpr(e, bind)
				}
			case svSlice:
				if e, ok := cl.Dims[shapeKeyLen]; ok {
					v.a = evalContractExpr(e, bind)
				}
			case svNum:
				// ints carry no contract keys today
			}
			env.vars[obj] = v
		}
	}
	return env
}

func (fa *shapeFn) analyzeBody(body *ast.BlockStmt, boundary *shapeEnv) {
	g := BuildCFG(body)
	spec := FlowSpec[*shapeEnv]{
		Dir:      Forward,
		Boundary: func() *shapeEnv { return copyEnv(boundary) },
		Bottom:   func() *shapeEnv { return &shapeEnv{} },
		Copy:     copyEnv,
		Merge:    fa.mergeEnv,
		Transfer: func(b *Block, in *shapeEnv) *shapeEnv {
			if !in.reached {
				// Dead blocks transfer nothing; their out-state stays
				// bottom until a reached predecessor merges in.
				return in
			}
			for _, n := range b.Nodes {
				fa.applyNode(n, in)
			}
			return in
		},
	}
	in := Solve(g, spec)
	// Replay every reached block from its fixpoint in-state, checking
	// as we go. Reporting only here (not inside Transfer) keeps each
	// site checked exactly once per analysis.
	for _, b := range g.Blocks {
		env := copyEnv(in[b])
		if !env.reached {
			continue
		}
		for _, n := range b.Nodes {
			fa.checkNode(n, env)
			fa.applyNode(n, env)
		}
	}
}

// mergeEnv joins src into dst. A key missing on one side stands for
// that variable's baseline symbol, so the join compares against the
// baseline rather than treating absence as bottom.
func (fa *shapeFn) mergeEnv(dst, src *shapeEnv) bool {
	if !src.reached {
		return false
	}
	if !dst.reached {
		dst.reached = true
		dst.vars = make(map[types.Object]sval, len(src.vars))
		for k, v := range src.vars {
			//nessa:sorted-iteration plain copy into an empty map; no accumulation
			dst.vars[k] = v
		}
		return true
	}
	changed := false
	for k, dv := range dst.vars {
		//nessa:sorted-iteration pointwise lattice join; commutative and key-independent
		sv, ok := src.vars[k]
		if !ok {
			sv = fa.baseVal(k)
		}
		nv := joinSval(dv, sv)
		if !svalEqual(nv, dv) {
			dst.vars[k] = nv
			changed = true
		}
	}
	for k, sv := range src.vars {
		//nessa:sorted-iteration pointwise lattice join; commutative and key-independent
		if _, ok := dst.vars[k]; ok {
			continue
		}
		base := fa.baseVal(k)
		nv := joinSval(base, sv)
		if !svalEqual(nv, base) {
			dst.vars[k] = nv
			changed = true
		}
	}
	return changed
}

// ---------------------------------------------------------------------
// Symbols and baselines
// ---------------------------------------------------------------------

// intern creates (or finds) the symbol for root+path, deriving the
// display name from the key so every use site renders identically.
func (sc *shapeCheck) intern(root types.Object, path string) symID {
	return sc.syms.intern(symKey{root: root, path: path}, displayFor(root, path))
}

func displayFor(root types.Object, path string) string {
	if i := strings.LastIndex(path, "#"); i >= 0 {
		return path[i+1:]
	}
	base := root.Name()
	qual := func(p string) string {
		if p == "" {
			return base
		}
		return base + "." + p
	}
	switch {
	case strings.HasSuffix(path, "~len"):
		return "len(" + qual(strings.TrimSuffix(strings.TrimSuffix(path, "~len"), ".")) + ")"
	case strings.HasSuffix(path, "~rows"):
		return qual(strings.TrimSuffix(strings.TrimSuffix(path, "~rows"), ".")) + ".Rows"
	case strings.HasSuffix(path, "~cols"):
		return qual(strings.TrimSuffix(strings.TrimSuffix(path, "~cols"), ".")) + ".Cols"
	}
	return qual(path)
}

func joinPath(base, field string) string {
	if base == "" {
		return field
	}
	return base + "." + field
}

// baseVal is the baseline shape of obj: fresh symbols keyed by the
// object itself.
func (fa *shapeFn) baseVal(obj types.Object) sval {
	return fa.symVal(obj, "", obj.Type())
}

// symVal builds the symbolic shape of the value at root+path with the
// given type: ints get a value symbol, slices a length symbol, arrays
// their constant length, matrices a rows/cols symbol pair.
func (fa *shapeFn) symVal(root types.Object, path string, t types.Type) sval {
	if t == nil {
		return topSval()
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if isMatrixType(t) {
		return matSval(
			symPoly(fa.sc.intern(root, path+"~rows")),
			symPoly(fa.sc.intern(root, path+"~cols")))
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			return numSval(symPoly(fa.sc.intern(root, path)))
		}
	case *types.Slice:
		return sliceSval(symPoly(fa.sc.intern(root, path+"~len")))
	case *types.Array:
		return capSval(constPoly(u.Len()), constPoly(u.Len()))
	}
	return topSval()
}

// isMatrixType reports whether t (possibly behind a pointer) is the
// tensor package's Matrix.
func isMatrixType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Matrix" && shapePkgScope(n.Obj().Pkg()) == "tensor"
}

func shapePkgScope(pkg *types.Package) string {
	path := pkg.Path()
	switch {
	case path == "tensor" || strings.HasSuffix(path, "/internal/tensor"):
		return "tensor"
	case path == "nn" || strings.HasSuffix(path, "/internal/nn"):
		return "nn"
	case path == "data" || strings.HasSuffix(path, "/internal/data"):
		return "data"
	}
	return ""
}

// rootAndPath resolves a selector base expression to a stable symbol
// root: an identifier (possibly behind & or *) followed by field
// selections, where the identifier has no tracked environment entry —
// an entry means the variable was reassigned or joined, and the
// baseline symbols no longer denote its current value.
func (fa *shapeFn) rootAndPath(e ast.Expr, env *shapeEnv) (types.Object, string, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(fa.pkg.Info, e)
		if obj == nil {
			return nil, "", false
		}
		if _, tracked := env.vars[obj]; tracked {
			return nil, "", false
		}
		return obj, "", true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fa.rootAndPath(e.X, env)
		}
	case *ast.StarExpr:
		return fa.rootAndPath(e.X, env)
	case *ast.SelectorExpr:
		root, path, ok := fa.rootAndPath(e.X, env)
		if !ok {
			return nil, "", false
		}
		return root, joinPath(path, e.Sel.Name), true
	}
	return nil, "", false
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

func (fa *shapeFn) evalExpr(e ast.Expr, env *shapeEnv) sval {
	if e == nil {
		return topSval()
	}
	if tv, ok := fa.pkg.Info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return numSval(constPoly(v))
		}
		return topSval()
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := objOf(fa.pkg.Info, e)
		if _, isVar := obj.(*types.Var); !isVar {
			return topSval()
		}
		if v, ok := env.vars[obj]; ok {
			return v
		}
		return fa.baseVal(obj)
	case *ast.ParenExpr:
		return fa.evalExpr(e.X, env)
	case *ast.StarExpr:
		return fa.evalExpr(e.X, env)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			return fa.evalExpr(e.X, env)
		case token.SUB:
			return numSval(negPoly(fa.evalExpr(e.X, env).num()))
		}
	case *ast.BinaryExpr:
		x := fa.evalExpr(e.X, env)
		y := fa.evalExpr(e.Y, env)
		if x.kind == svNum && y.kind == svNum {
			switch e.Op {
			case token.ADD:
				return numSval(addPoly(x.a, y.a))
			case token.SUB:
				return numSval(subPoly(x.a, y.a))
			case token.MUL:
				return numSval(mulPoly(x.a, y.a))
			}
		}
	case *ast.CallExpr:
		return fa.evalCall(e, env)
	case *ast.SelectorExpr:
		return fa.evalSelector(e, env)
	case *ast.SliceExpr:
		return fa.evalSlice(e, env)
	case *ast.CompositeLit:
		return fa.evalComposite(e, env)
	}
	return topSval()
}

func (fa *shapeFn) evalSelector(e *ast.SelectorExpr, env *shapeEnv) sval {
	base := fa.evalExpr(e.X, env)
	name := e.Sel.Name
	if base.kind == svMat {
		switch name {
		case "Rows":
			return numSval(base.a)
		case "Cols":
			return numSval(base.b)
		case "Data":
			return sliceSval(mulPoly(base.a, base.b))
		}
	}
	obj := objOf(fa.pkg.Info, e.Sel)
	field, ok := obj.(*types.Var)
	if !ok || !field.IsField() {
		return topSval()
	}
	root, path, okRoot := fa.rootAndPath(e.X, env)
	if !okRoot {
		return topSval()
	}
	if c := fa.sc.fieldContracts[field]; c != nil {
		return fa.contractFieldVal(c, root, path, field)
	}
	return fa.symVal(root, joinPath(path, name), field.Type())
}

// contractFieldVal reads a //nessa:shape-annotated field: its declared
// dims become instance symbols rooted at the selector base, so every
// layer l shares one out/in pair and distinct contract names are
// provably distinct (relateDims' one-instance rule).
func (fa *shapeFn) contractFieldVal(c *shapeContract, root types.Object, path string, field *types.Var) sval {
	cl := &c.Clauses[0]
	bind := func(name string) *poly {
		return symPoly(fa.sc.intern(root, joinPath(path, "#"+name)))
	}
	v := fa.symVal(root, joinPath(path, field.Name()), field.Type())
	switch v.kind {
	case svMat:
		if e, ok := cl.Dims[shapeKeyRows]; ok {
			v.a = evalContractExpr(e, bind)
		}
		if e, ok := cl.Dims[shapeKeyCols]; ok {
			v.b = evalContractExpr(e, bind)
		}
	case svSlice:
		if e, ok := cl.Dims[shapeKeyLen]; ok {
			v.a = evalContractExpr(e, bind)
			v.b = nil
		}
	}
	return v
}

func (fa *shapeFn) evalSlice(e *ast.SliceExpr, env *shapeEnv) sval {
	base := fa.evalExpr(e.X, env)
	if base.kind != svSlice {
		return topSval()
	}
	lo := constPoly(0)
	if e.Low != nil {
		lo = fa.evalExpr(e.Low, env).num()
	}
	hi := base.a
	if e.High != nil {
		hi = fa.evalExpr(e.High, env).num()
	}
	length := subPoly(hi, lo)
	if length.isTop() {
		// x[a : a+k] with opaque a: the window length is k even when a
		// itself is ⊤, provided both bounds share the base expression.
		length = windowLen(e.Low, e.High, func(k ast.Expr) *poly {
			return fa.evalExpr(k, env).num()
		})
	}
	return sliceSval(length)
}

// windowLen recognizes the slice window idiom lo=a, hi=a+k (in either
// operand order) for side-effect-free a, returning k's dimension.
func windowLen(lo, hi ast.Expr, eval func(ast.Expr) *poly) *poly {
	if lo == nil || hi == nil || !sideEffectFree(lo) {
		return topPoly()
	}
	be, ok := unparen(hi).(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return topPoly()
	}
	loStr := types.ExprString(unparen(lo))
	if types.ExprString(unparen(be.X)) == loStr {
		return eval(be.Y)
	}
	if types.ExprString(unparen(be.Y)) == loStr {
		return eval(be.X)
	}
	return topPoly()
}

func sideEffectFree(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isCall := n.(*ast.CallExpr); isCall {
			ok = false
		}
		return ok
	})
	return ok
}

func (fa *shapeFn) evalComposite(e *ast.CompositeLit, env *shapeEnv) sval {
	t := fa.pkg.Info.TypeOf(e)
	if t == nil {
		return topSval()
	}
	if isMatrixType(t) {
		v := matSval(constPoly(0), constPoly(0))
		for _, el := range e.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				return topSval()
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Rows":
				v.a = fa.evalExpr(kv.Value, env).num()
			case "Cols":
				v.b = fa.evalExpr(kv.Value, env).num()
			}
		}
		return v
	}
	if _, ok := t.Underlying().(*types.Slice); ok {
		// Element lists without keys have a knowable length; keyed
		// (sparse) slice literals are rare enough to skip.
		for _, el := range e.Elts {
			if _, keyed := el.(*ast.KeyValueExpr); keyed {
				return sliceSval(topPoly())
			}
		}
		n := constPoly(int64(len(e.Elts)))
		return capSval(n, n)
	}
	return topSval()
}

func (fa *shapeFn) evalCall(call *ast.CallExpr, env *shapeEnv) sval {
	if v, handled := fa.evalBuiltinOrConv(call, env); handled {
		return v
	}
	fn := StaticCallee(fa.pkg.Info, call)
	if fn == nil {
		return topSval()
	}
	if spec, ok := shapeAPI[shapeAPIKey(fn)]; ok {
		if spec.result == nil {
			return topSval()
		}
		return spec.result(fa.callContext(call, fn, env))
	}
	if c := fa.sc.funcContracts[fn]; c != nil {
		results := fa.applyFuncContract(fa.callContext(call, fn, env), c, false)
		if len(results) > 0 {
			return results[0]
		}
		return topSval()
	}
	if sum := fa.summaryOf(fn); sum != nil {
		results := fa.summaryResults(call, fn, sum, env)
		if len(results) > 0 {
			return results[0]
		}
	}
	return topSval()
}

// summaryOf consults the shared summary cache, flagging cycles so a
// summarization pass that hit one gets re-solved.
func (fa *shapeFn) summaryOf(fn *types.Func) *funcSummary {
	if fa.sc.inProgress[fn] {
		fa.sawInProgress = true
		return nil
	}
	return fa.sc.summaryOf(fn)
}

// evalCallResults resolves every result of a multi-value call, or nil
// when nothing is known.
func (fa *shapeFn) evalCallResults(call *ast.CallExpr, env *shapeEnv, n int) []sval {
	fn := StaticCallee(fa.pkg.Info, call)
	if fn == nil {
		return nil
	}
	if sum := fa.summaryOf(fn); sum != nil {
		if res := fa.summaryResults(call, fn, sum, env); len(res) == n {
			return res
		}
	}
	return nil
}

// evalBuiltinOrConv handles builtin calls and type conversions.
func (fa *shapeFn) evalBuiltinOrConv(call *ast.CallExpr, env *shapeEnv) (sval, bool) {
	if tv, ok := fa.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversions preserve integer values and slice lengths.
		if len(call.Args) != 1 {
			return topSval(), true
		}
		v := fa.evalExpr(call.Args[0], env)
		t := tv.Type
		if p, okp := t.Underlying().(*types.Pointer); okp {
			t = p.Elem()
		}
		if b, okb := t.Underlying().(*types.Basic); okb && b.Info()&types.IsInteger != 0 && v.kind == svNum {
			return v, true
		}
		if _, oks := t.Underlying().(*types.Slice); oks && v.kind == svSlice {
			return v, true
		}
		return topSval(), true
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return topSval(), false
	}
	if _, isBuiltin := fa.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return topSval(), false
	}
	switch id.Name {
	case "len":
		if len(call.Args) == 1 {
			v := fa.evalExpr(call.Args[0], env)
			switch v.kind {
			case svSlice:
				return numSval(v.a), true
			}
		}
	case "cap":
		if len(call.Args) == 1 {
			v := fa.evalExpr(call.Args[0], env)
			if v.kind == svSlice && v.b != nil {
				return numSval(v.b), true
			}
		}
	case "make":
		if len(call.Args) >= 2 {
			if tv, okt := fa.pkg.Info.Types[call.Args[0]]; okt {
				if _, oks := tv.Type.Underlying().(*types.Slice); oks {
					l := fa.evalExpr(call.Args[1], env).num()
					c := l
					if len(call.Args) >= 3 {
						c = fa.evalExpr(call.Args[2], env).num()
					}
					return capSval(l, c), true
				}
			}
		}
	case "append":
		if len(call.Args) >= 1 {
			base := fa.evalExpr(call.Args[0], env).slen()
			if call.Ellipsis.IsValid() && len(call.Args) == 2 {
				tail := fa.evalExpr(call.Args[1], env).slen()
				return sliceSval(addPoly(base, tail)), true
			}
			if !call.Ellipsis.IsValid() {
				return sliceSval(addPoly(base, constPoly(int64(len(call.Args)-1)))), true
			}
		}
	case "new":
		if len(call.Args) == 1 {
			if tv, okt := fa.pkg.Info.Types[call.Args[0]]; okt {
				return fa.zeroSval(tv.Type), true
			}
		}
	}
	return topSval(), true
}

func (fa *shapeFn) zeroSval(t types.Type) sval {
	if isMatrixType(t) {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			return matSval(constPoly(0), constPoly(0))
		}
		return topSval()
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			return numSval(constPoly(0))
		}
	case *types.Slice:
		return capSval(constPoly(0), constPoly(0))
	case *types.Array:
		return capSval(constPoly(u.Len()), constPoly(u.Len()))
	}
	return topSval()
}

// ---------------------------------------------------------------------
// Statement transfer
// ---------------------------------------------------------------------

func (fa *shapeFn) applyNode(n ast.Node, env *shapeEnv) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fa.applyAssign(n, env)
		return
	case *ast.DeclStmt:
		fa.applyDecl(n, env)
		return
	case *ast.IncDecStmt:
		fa.applyIncDec(n, env)
		return
	case *ast.RangeStmt:
		fa.killCalls(n.X, env)
		// Per-iteration range variables: drop any tracked value so
		// reads fall back to opaque baselines. Cross-iteration values
		// always pass the loop-head join, which ⊤s any dim that
		// differs between entry and back edge.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := unparen(e).(*ast.Ident); ok {
				if obj := objOf(fa.pkg.Info, id); obj != nil {
					delete(env.vars, obj)
				}
			}
		}
		return
	}
	fa.killCalls(n, env)
}

func (fa *shapeFn) applyAssign(n *ast.AssignStmt, env *shapeEnv) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound: x op= e
		fa.killCalls(n, env)
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return
		}
		x := fa.evalExpr(n.Lhs[0], env)
		y := fa.evalExpr(n.Rhs[0], env)
		v := topSval()
		if x.kind == svNum && y.kind == svNum {
			switch n.Tok {
			case token.ADD_ASSIGN:
				v = numSval(addPoly(x.a, y.a))
			case token.SUB_ASSIGN:
				v = numSval(subPoly(x.a, y.a))
			case token.MUL_ASSIGN:
				v = numSval(mulPoly(x.a, y.a))
			}
		}
		fa.assignTo(n.Lhs[0], v, env)
		return
	}
	vals := make([]sval, len(n.Lhs))
	if len(n.Lhs) == len(n.Rhs) {
		for i, rhs := range n.Rhs {
			vals[i] = fa.evalExpr(rhs, env)
		}
	} else if len(n.Rhs) == 1 {
		if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			if res := fa.evalCallResults(call, env, len(n.Lhs)); res != nil {
				vals = res
			}
		}
	}
	fa.killCalls(n, env)
	for i, lhs := range n.Lhs {
		fa.assignTo(lhs, vals[i], env)
	}
}

// assignTo stores v at the target. A ⊤ store to an identifier deletes
// the entry instead, restoring the opaque baseline symbol — a fresh
// unknown value is still self-equal across later reads.
func (fa *shapeFn) assignTo(target ast.Expr, v sval, env *shapeEnv) {
	switch t := unparen(target).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		obj := objOf(fa.pkg.Info, t)
		if obj == nil {
			return
		}
		if v.isTop() {
			delete(env.vars, obj)
		} else {
			env.vars[obj] = v
		}
	case *ast.StarExpr:
		fa.assignTo(t.X, v, env)
	case *ast.SelectorExpr:
		// m.Rows = k on a tracked matrix updates its dimension.
		base, ok := unparen(t.X).(*ast.Ident)
		if !ok {
			return
		}
		obj := objOf(fa.pkg.Info, base)
		if obj == nil {
			return
		}
		cur, ok := env.vars[obj]
		if !ok || cur.kind != svMat {
			return
		}
		switch t.Sel.Name {
		case "Rows":
			cur.a = v.num()
		case "Cols":
			cur.b = v.num()
		default:
			return
		}
		env.vars[obj] = cur
	}
}

func (fa *shapeFn) applyDecl(n *ast.DeclStmt, env *shapeEnv) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	fa.killCalls(n, env)
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := fa.pkg.Info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			var v sval
			switch {
			case len(vs.Values) == len(vs.Names):
				v = fa.evalExpr(vs.Values[i], env)
			case len(vs.Values) == 0:
				v = fa.zeroSval(obj.Type())
			default:
				v = topSval()
				if call, okc := unparen(vs.Values[0]).(*ast.CallExpr); okc {
					if res := fa.evalCallResults(call, env, len(vs.Names)); res != nil {
						v = res[i]
					}
				}
			}
			if v.isTop() {
				delete(env.vars, obj)
			} else {
				env.vars[obj] = v
			}
		}
	}
}

func (fa *shapeFn) applyIncDec(n *ast.IncDecStmt, env *shapeEnv) {
	id, ok := unparen(n.X).(*ast.Ident)
	if !ok {
		return
	}
	obj := objOf(fa.pkg.Info, id)
	if obj == nil {
		return
	}
	if v, okv := env.vars[obj]; okv && v.kind == svNum {
		d := constPoly(1)
		if n.Tok == token.DEC {
			d = constPoly(-1)
		}
		env.vars[obj] = numSval(addPoly(v.a, d))
		return
	}
	delete(env.vars, obj)
}

// killCalls conservatively invalidates variables a call might resize:
// &x arguments and identifier receivers of calls the analysis has no
// model for. Builtins, conversions, and the hardcoded tensor/nn API
// never resize their arguments' shapes.
func (fa *shapeFn) killCalls(n ast.Node, env *shapeEnv) {
	if n == nil {
		return
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		n = rs.X
		if n == nil {
			return
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		var kills []int
		benign := false
		if _, handled := fa.evalBuiltinOrConv(call, env); handled {
			benign = true
		} else if fn := StaticCallee(fa.pkg.Info, call); fn != nil {
			if spec, okSpec := shapeAPI[shapeAPIKey(fn)]; okSpec {
				benign = true
				kills = spec.kills
			}
		}
		if benign {
			for _, i := range kills {
				if i < len(call.Args) {
					fa.killAmpIdent(call.Args[i], env)
				}
			}
			return true
		}
		for _, arg := range call.Args {
			fa.killAmpIdent(arg, env)
		}
		if sel, okSel := unparen(call.Fun).(*ast.SelectorExpr); okSel {
			if id, okId := unparen(sel.X).(*ast.Ident); okId {
				if obj := objOf(fa.pkg.Info, id); obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						delete(env.vars, obj)
					}
				}
			}
		}
		return true
	})
}

// killAmpIdent invalidates x for a &x argument (and a plain identifier
// argument of pointer type, which aliases the same way).
func (fa *shapeFn) killAmpIdent(arg ast.Expr, env *shapeEnv) {
	e := unparen(arg)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = unparen(ue.X)
	} else if tv, okt := fa.pkg.Info.Types[e]; okt {
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
			return
		}
	} else {
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objOf(fa.pkg.Info, id); obj != nil {
			delete(env.vars, obj)
		}
	}
}

// ---------------------------------------------------------------------
// Checking
// ---------------------------------------------------------------------

func (fa *shapeFn) checkNode(n ast.Node, env *shapeEnv) {
	// A RangeStmt node carries its whole body; only the range clause
	// executes here (the body has its own blocks).
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.X != nil {
			fa.checkNode(rs.X, env)
		}
		return
	}
	if ret, ok := n.(*ast.ReturnStmt); ok {
		fa.recordReturn(ret, env)
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if fa.pass != nil {
				fa.lits = append(fa.lits, queuedLit{lit: x, env: copyEnv(env)})
			}
			return false
		case *ast.CallExpr:
			fa.checkCall(x, env)
		case *ast.CompositeLit:
			fa.checkComposite(x, env)
		case *ast.SliceExpr:
			fa.checkSliceBound(x, env)
		}
		return true
	})
}

func (fa *shapeFn) checkCall(call *ast.CallExpr, env *shapeEnv) {
	if _, handled := fa.evalBuiltinOrConv(call, env); handled {
		return
	}
	fn := StaticCallee(fa.pkg.Info, call)
	if fn == nil {
		return
	}
	if spec, ok := shapeAPI[shapeAPIKey(fn)]; ok {
		if spec.check != nil {
			spec.check(fa.callContext(call, fn, env))
		}
		return
	}
	if c := fa.sc.funcContracts[fn]; c != nil {
		fa.applyFuncContract(fa.callContext(call, fn, env), c, true)
		return
	}
	if sum := fa.summaryOf(fn); sum != nil {
		fa.checkSummaryPreconds(call, fn, sum, env)
	}
}

// checkEq relates two dimensions at a site. Conflicts always report.
// An unknown relation reports only under strict (a contract-binding
// site), and in summarize mode becomes a caller-checkable precondition
// when both sides are parameter-rooted.
func (fa *shapeFn) checkEq(pos token.Pos, site, labelA string, a *poly, labelB string, b *poly, strict bool) {
	if a == nil || b == nil {
		return
	}
	a, b = fa.applySubst(a), fa.applySubst(b)
	switch relateDims(fa.sc.syms, a, b) {
	case dimsEqual:
	case dimsConflict:
		fa.report(pos, fmt.Sprintf("%s: %s is %s but %s is %s",
			site, labelA, a.render(fa.sc.syms), labelB, b.render(fa.sc.syms)))
	case dimsUnknown:
		if a.isTop() || b.isTop() {
			return
		}
		if strict && fa.pass != nil {
			fa.report(pos, fmt.Sprintf("%s: %s is %s but %s is %s (cannot prove them equal)",
				site, labelA, a.render(fa.sc.syms), labelB, b.render(fa.sc.syms)))
			return
		}
		fa.addPrecond(shapePrecond{labelA: labelA, labelB: labelB, a: a, b: b})
	}
}

// checkMin enforces a minimum-length relation: have >= need. The
// violation must be provable for every assignment of the symbols;
// dimension symbols are nonnegative (lengths and extents), so a
// difference whose constant term is negative and whose symbolic terms
// all have nonpositive coefficients is provably negative.
func (fa *shapeFn) checkMin(pos token.Pos, site, labelA string, have *poly, labelB string, need *poly) {
	if have == nil || need == nil {
		return
	}
	have, need = fa.applySubst(have), fa.applySubst(need)
	if have.isTop() || need.isTop() {
		return
	}
	d := subPoly(have, need)
	if d.isTop() {
		return
	}
	provablyNegative := false
	if len(d.ms) > 0 {
		provablyNegative = true
		hasNegConst := false
		for _, m := range d.ms {
			if m.coeff > 0 {
				provablyNegative = false
				break
			}
			if len(m.syms) == 0 && m.coeff < 0 {
				hasNegConst = true
			}
		}
		if !hasNegConst {
			provablyNegative = false
		}
	}
	if provablyNegative {
		fa.report(pos, fmt.Sprintf("%s: %s is %s but the contract requires at least %s (%s)",
			site, labelA, have.render(fa.sc.syms), need.render(fa.sc.syms), labelB))
		return
	}
	fa.addPrecond(shapePrecond{labelA: labelA, labelB: labelB, a: have, b: need, minlen: true})
}

func (fa *shapeFn) addPrecond(pc shapePrecond) {
	if fa.sum == nil || len(fa.sum.preconds) >= summaryPrecondLimit {
		return
	}
	if !fa.paramRooted(pc.a) || !fa.paramRooted(pc.b) {
		return
	}
	for _, have := range fa.sum.preconds {
		if have.minlen == pc.minlen && polyEqual(have.a, pc.a) && polyEqual(have.b, pc.b) {
			return
		}
	}
	fa.sum.preconds = append(fa.sum.preconds, pc)
}

// paramRooted reports whether every symbol of p is rooted at one of
// this function's parameters or at a package-level variable — the
// symbols a caller can substitute or keep verbatim.
func (fa *shapeFn) paramRooted(p *poly) bool {
	if p.isTop() {
		return false
	}
	for _, m := range p.ms {
		for _, s := range m.syms {
			root := fa.sc.syms.keys[s].root
			if root == nil {
				return false
			}
			if fa.params[root] || isPackageLevel(root) {
				continue
			}
			return false
		}
	}
	return true
}

func (fa *shapeFn) report(pos token.Pos, msg string) {
	if fa.pass == nil {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, msg)
	if fa.sc.reported[key] {
		return
	}
	fa.sc.reported[key] = true
	if fa.pass.ExemptAt(pos, DirShapeOK) {
		return
	}
	fa.pass.Reportf(pos, "%s", msg)
}

// checkSliceBound flags s[lo:hi] when hi provably exceeds the
// capacity. Only capacities known exactly (make, literals) are
// checked; reslicing beyond len but within cap is legal Go the
// analysis must not flag.
func (fa *shapeFn) checkSliceBound(se *ast.SliceExpr, env *shapeEnv) {
	base := fa.evalExpr(se.X, env)
	if base.kind != svSlice || base.b == nil {
		return
	}
	check := func(bound ast.Expr) {
		if bound == nil {
			return
		}
		h := fa.applySubst(fa.evalExpr(bound, env).num())
		d := subPoly(h, fa.applySubst(base.b))
		if c, ok := d.isConst(); ok && c > 0 {
			fa.report(se.Pos(), fmt.Sprintf("slice bound %s exceeds the capacity %s of %s",
				h.render(fa.sc.syms), base.b.render(fa.sc.syms), types.ExprString(se.X)))
		}
	}
	check(se.High)
	check(se.Max)
}

// checkComposite binds a struct literal against its fields'
// //nessa:shape contracts: the first known dimension for each contract
// name binds it, later uses must agree (strict — the contract is the
// declared truth at its own construction site). Matrix literals also
// get a Data-length consistency check.
func (fa *shapeFn) checkComposite(lit *ast.CompositeLit, env *shapeEnv) {
	t := fa.pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if isMatrixType(t) {
		fa.checkMatrixLit(lit, env)
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	contracted := false
	for i := 0; i < st.NumFields(); i++ {
		if fa.sc.fieldContracts[st.Field(i)] != nil {
			contracted = true
			break
		}
	}
	if !contracted {
		return
	}
	// Pair each contracted field with its value expression.
	type fieldVal struct {
		field *types.Var
		expr  ast.Expr
	}
	var fields []fieldVal
	keyed := len(lit.Elts) > 0
	if keyed {
		_, keyed = lit.Elts[0].(*ast.KeyValueExpr)
	}
	if keyed {
		for _, el := range lit.Elts {
			kv, okkv := el.(*ast.KeyValueExpr)
			if !okkv {
				continue
			}
			key, okk := kv.Key.(*ast.Ident)
			if !okk {
				continue
			}
			if f, okf := fa.pkg.Info.Uses[key].(*types.Var); okf {
				fields = append(fields, fieldVal{field: f, expr: kv.Value})
			}
		}
	} else {
		for i, el := range lit.Elts {
			if i >= st.NumFields() {
				break
			}
			fields = append(fields, fieldVal{field: st.Field(i), expr: el})
		}
	}
	typeName := "struct"
	if n, okn := t.(*types.Named); okn {
		typeName = n.Obj().Name()
	}
	site := typeName + " literal"
	bindings := make(map[string]*poly)
	bind := func(name string) *poly { return bindings[name] }
	// Pass 1: bare-identifier dims bind or check, in field order.
	type deferredCheck struct {
		key   string
		expr  ast.Expr
		label string
		have  *poly
		pos   token.Pos
	}
	var deferred []deferredCheck
	for _, fv := range fields {
		c := fa.sc.fieldContracts[fv.field]
		if c == nil {
			continue
		}
		cl := &c.Clauses[0]
		v := fa.evalExpr(fv.expr, env)
		for _, key := range []string{shapeKeyRows, shapeKeyCols, shapeKeyLen, shapeKeyMinLen} {
			dimExpr, okd := cl.Dims[key]
			if !okd {
				continue
			}
			var have *poly
			var label string
			switch key {
			case shapeKeyRows:
				have, label = v.rows(), fv.field.Name()+" rows"
			case shapeKeyCols:
				have, label = v.cols(), fv.field.Name()+" cols"
			case shapeKeyLen, shapeKeyMinLen:
				have, label = v.slen(), "len("+fv.field.Name()+")"
			}
			if have.isTop() {
				continue
			}
			have = fa.applySubst(have)
			if id, okid := unparen(dimExpr).(*ast.Ident); okid && key != shapeKeyMinLen {
				if bound, okb := bindings[id.Name]; okb {
					fa.checkEq(fv.expr.Pos(), site, label, have, "contract dim "+id.Name, bound, true)
				} else {
					bindings[id.Name] = have
				}
				continue
			}
			deferred = append(deferred, deferredCheck{key: key, expr: dimExpr, label: label, have: have, pos: fv.expr.Pos()})
		}
	}
	// Pass 2: compound expressions and minlen, with all bindings known.
	for _, d := range deferred {
		want := evalContractExpr(d.expr, bind)
		if d.key == shapeKeyMinLen {
			fa.checkMin(d.pos, site, d.label, d.have, "contract "+types.ExprString(d.expr), want)
			continue
		}
		fa.checkEq(d.pos, site, d.label, d.have, "contract "+types.ExprString(d.expr), want, true)
	}
}

// checkMatrixLit relates a Matrix literal's Data length to its
// Rows*Cols product — the flattened-buffer invariant.
func (fa *shapeFn) checkMatrixLit(lit *ast.CompositeLit, env *shapeEnv) {
	v := fa.evalComposite(lit, env)
	if v.kind != svMat {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return
		}
		key, okk := kv.Key.(*ast.Ident)
		if !okk || key.Name != "Data" {
			continue
		}
		dl := fa.evalExpr(kv.Value, env).slen()
		fa.checkEq(kv.Value.Pos(), "Matrix literal", "len(Data)", dl, "Rows*Cols", mulPoly(v.a, v.b), false)
	}
}

// ---------------------------------------------------------------------
// Contracted calls
// ---------------------------------------------------------------------

// applyFuncContract binds a call against the callee's //nessa:shape
// contract. Bare-identifier dims bind from the first known actual and
// check (strictly) thereafter; compound dims and minlen check once all
// bindings are in. Returns the result shapes an untargeted clause
// declares, if any.
func (fa *shapeFn) applyFuncContract(ctx *callCtx, c *shapeContract, emit bool) []sval {
	sig := ctx.fn.Type().(*types.Signature)
	paramIdx := make(map[string]int)
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i).Name()] = i
	}
	bindings := make(map[string]*poly)
	bind := func(name string) *poly { return bindings[name] }
	type deferredCheck struct {
		key   string
		expr  ast.Expr
		label string
		have  *poly
	}
	var deferred []deferredCheck
	for _, cl := range c.Clauses {
		if cl.Target == "" {
			continue
		}
		i, ok := paramIdx[cl.Target]
		if !ok || i >= len(ctx.args) {
			continue
		}
		v := ctx.args[i]
		for _, key := range []string{shapeKeyRows, shapeKeyCols, shapeKeyLen, shapeKeyMinLen} {
			dimExpr, okd := cl.Dims[key]
			if !okd {
				continue
			}
			var have *poly
			var label string
			switch key {
			case shapeKeyRows:
				have, label = v.rows(), cl.Target+" rows"
			case shapeKeyCols:
				have, label = v.cols(), cl.Target+" cols"
			case shapeKeyLen, shapeKeyMinLen:
				have, label = v.slen(), "len("+cl.Target+")"
			}
			if have.isTop() {
				continue
			}
			have = fa.applySubst(have)
			if id, okid := unparen(dimExpr).(*ast.Ident); okid && key != shapeKeyMinLen {
				if bound, okb := bindings[id.Name]; okb {
					if emit {
						fa.checkEq(ctx.call.Pos(), ctx.site, label, have, "contract dim "+id.Name, bound, true)
					}
				} else {
					bindings[id.Name] = have
				}
				continue
			}
			deferred = append(deferred, deferredCheck{key: key, expr: dimExpr, label: label, have: have})
		}
	}
	for _, d := range deferred {
		if !emit {
			continue
		}
		want := evalContractExpr(d.expr, bind)
		if d.key == shapeKeyMinLen {
			fa.checkMin(ctx.call.Pos(), ctx.site, d.label, d.have, "contract "+types.ExprString(d.expr), want)
			continue
		}
		fa.checkEq(ctx.call.Pos(), ctx.site, d.label, d.have, "contract "+types.ExprString(d.expr), want, true)
	}
	// Untargeted clause: the first result's declared shape.
	cl := c.clauseFor("")
	if cl == nil || sig.Results().Len() == 0 {
		return nil
	}
	out := topSval()
	switch fa.resultKind(sig.Results().At(0).Type()) {
	case svMat:
		r, cdim := topPoly(), topPoly()
		if e, ok := cl.Dims[shapeKeyRows]; ok {
			r = evalContractExpr(e, bind)
		}
		if e, ok := cl.Dims[shapeKeyCols]; ok {
			cdim = evalContractExpr(e, bind)
		}
		out = matSval(r, cdim)
	case svSlice:
		if e, ok := cl.Dims[shapeKeyLen]; ok {
			out = sliceSval(evalContractExpr(e, bind))
		}
	}
	results := make([]sval, sig.Results().Len())
	results[0] = out
	return results
}

// resultKind probes which sval kind a result type would carry,
// without interning any symbols.
func (fa *shapeFn) resultKind(t types.Type) svalKind {
	if isMatrixType(t) {
		return svMat
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			return svNum
		}
	case *types.Slice:
		return svSlice
	}
	return svTop
}

// ---------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------

// summaryOf returns fn's interprocedural summary, computing and
// memoizing it on first use. Cycles read in-progress callees as
// unknown; a function whose computation touched an in-progress callee
// is re-solved once after the cycle closes, which is a two-iteration
// Kleene fixpoint over the call graph (further refinement cannot
// change a summary that saw every callee's final value).
func (sc *shapeCheck) summaryOf(fn *types.Func) *funcSummary {
	if sum, ok := sc.summaries[fn]; ok {
		return sum
	}
	ref, ok := sc.decls[fn]
	if !ok {
		return nil
	}
	if _, isAPI := shapeAPI[shapeAPIKey(fn)]; isAPI {
		sc.summaries[fn] = nil
		return nil
	}
	if sc.funcContracts[fn] != nil {
		sc.summaries[fn] = nil
		return nil
	}
	if sc.inProgress[fn] {
		return nil
	}
	sc.inProgress[fn] = true
	sum, sawCycle := sc.computeSummary(ref, fn)
	if sawCycle {
		sum, _ = sc.computeSummary(ref, fn)
	}
	delete(sc.inProgress, fn)
	sc.summaries[fn] = sum
	return sum
}

func (sc *shapeCheck) computeSummary(ref declRef, fn *types.Func) (*funcSummary, bool) {
	params := funcParams(ref.pkg.Info, ref.decl)
	fa := sc.newFn(ref.pkg, nil, fn, params)
	fa.sum = &funcSummary{params: params}
	fa.collectAssumes(ref.decl.Body)
	fa.analyzeBody(ref.decl.Body, &shapeEnv{reached: true, vars: make(map[types.Object]sval)})
	sawCycle := fa.sawInProgress
	sum := fa.sum
	if len(sum.results) == 0 && len(sum.preconds) == 0 {
		return nil, sawCycle
	}
	return sum, sawCycle
}

// recordReturn folds one return's result shapes into the summary,
// keeping only parameter-rooted dimensions.
func (fa *shapeFn) recordReturn(ret *ast.ReturnStmt, env *shapeEnv) {
	if fa.sum == nil || fa.fn == nil {
		return
	}
	sig := fa.fn.Type().(*types.Signature)
	n := sig.Results().Len()
	if n == 0 {
		return
	}
	vals := make([]sval, n)
	if len(ret.Results) == n {
		for i, e := range ret.Results {
			vals[i] = fa.evalExpr(e, env)
		}
	}
	for i := range vals {
		vals[i] = fa.exportable(vals[i])
	}
	if fa.sum.results == nil {
		fa.sum.results = vals
		return
	}
	for i := range vals {
		fa.sum.results[i] = joinSval(fa.sum.results[i], vals[i])
	}
}

// exportable degrades dimensions a caller cannot interpret (rooted at
// callee locals) to ⊤.
func (fa *shapeFn) exportable(v sval) sval {
	clean := func(p *poly) *poly {
		if p == nil || p.isTop() {
			return topPoly()
		}
		if !fa.paramRooted(p) {
			return topPoly()
		}
		return p
	}
	switch v.kind {
	case svNum, svSlice:
		v.a = clean(v.a)
		v.b = nil
	case svMat:
		v.a, v.b = clean(v.a), clean(v.b)
	}
	if v.kind != svTop && v.a.isTop() && (v.b == nil || v.b.isTop()) {
		return topSval()
	}
	return v
}

// summaryResults substitutes the call's argument dimensions into the
// callee's parameter symbols.
func (fa *shapeFn) summaryResults(call *ast.CallExpr, fn *types.Func, sum *funcSummary, env *shapeEnv) []sval {
	resolve := fa.summaryResolver(call, fn, sum, env)
	if resolve == nil {
		return nil
	}
	out := make([]sval, len(sum.results))
	for i, r := range sum.results {
		v := r
		v.a = substParamPoly(r.a, resolve)
		if r.b != nil {
			v.b = substParamPoly(r.b, resolve)
		}
		if v.kind != svTop && v.a.isTop() && (v.b == nil || v.b.isTop()) {
			v = topSval()
		}
		out[i] = v
	}
	return out
}

func (fa *shapeFn) checkSummaryPreconds(call *ast.CallExpr, fn *types.Func, sum *funcSummary, env *shapeEnv) {
	if len(sum.preconds) == 0 {
		return
	}
	ctx := fa.callContext(call, fn, env)
	resolve := fa.summaryResolver(call, fn, sum, env)
	if resolve == nil {
		return
	}
	for _, pc := range sum.preconds {
		a := substParamPoly(pc.a, resolve)
		b := substParamPoly(pc.b, resolve)
		if pc.minlen {
			fa.checkMin(call.Pos(), ctx.site, pc.labelA, a, pc.labelB, b)
			continue
		}
		fa.checkEq(call.Pos(), ctx.site, pc.labelA, a, pc.labelB, b, false)
	}
}

// summaryResolver maps a callee parameter symbol to its dimension at
// this call site. Package-level symbols pass through verbatim; deeper
// selector paths are rebased onto identifier arguments.
func (fa *shapeFn) summaryResolver(call *ast.CallExpr, fn *types.Func, sum *funcSummary, env *shapeEnv) func(symID) *poly {
	sig := fn.Type().(*types.Signature)
	var exprs []ast.Expr
	if sig.Recv() != nil {
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		exprs = append(exprs, sel.X)
	}
	exprs = append(exprs, call.Args...)
	if len(exprs) != len(sum.params) {
		return nil
	}
	idx := make(map[types.Object]int, len(sum.params))
	for i, p := range sum.params {
		idx[p] = i
	}
	return func(id symID) *poly {
		k := fa.sc.syms.keys[id]
		if k.root == nil {
			return nil
		}
		if isPackageLevel(k.root) {
			return symPoly(id)
		}
		i, ok := idx[k.root]
		if !ok {
			return nil
		}
		argExpr := exprs[i]
		v := fa.evalExpr(argExpr, env)
		switch k.path {
		case "":
			if v.kind == svNum {
				return v.a
			}
		case "~len":
			if v.kind == svSlice {
				return v.a
			}
		case "~rows":
			if v.kind == svMat {
				return v.a
			}
		case "~cols":
			if v.kind == svMat {
				return v.b
			}
		default:
			// Deeper path: rebase onto the argument's own root.
			root, prefix, okr := fa.rootAndPath(argExpr, env)
			if okr {
				return symPoly(fa.sc.intern(root, joinPath(prefix, k.path)))
			}
		}
		return nil
	}
}

// substParamPoly rewrites p through resolve; any unresolvable symbol
// makes the whole dimension ⊤.
func substParamPoly(p *poly, resolve func(symID) *poly) *poly {
	if p == nil || p.isTop() {
		return topPoly()
	}
	out := constPoly(0)
	for _, m := range p.ms {
		term := constPoly(m.coeff)
		for _, s := range m.syms {
			rep := resolve(s)
			if rep == nil {
				return topPoly()
			}
			term = mulPoly(term, rep)
		}
		out = addPoly(out, term)
	}
	return out
}

// ---------------------------------------------------------------------
// Guard assumptions
// ---------------------------------------------------------------------

// collectAssumes harvests diverging equality guards —
//
//	if a != b || c != d { panic/return/continue }
//
// — as symbol substitutions (and, while summarizing, as caller-visible
// preconditions). The substitutions are flow-insensitive, which is
// sound here because they only ever relate opaque baseline symbols:
// a variable that gets reassigned reads from the environment, not from
// its baseline symbol, so stale equalities cannot bind it.
func (fa *shapeFn) collectAssumes(body *ast.BlockStmt) {
	empty := &shapeEnv{reached: true, vars: make(map[types.Object]sval)}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Else != nil || !bodyDiverges(ifs.Body) {
			return true
		}
		for _, atom := range orAtoms(ifs.Cond) {
			be, okb := unparen(atom).(*ast.BinaryExpr)
			if !okb || be.Op != token.NEQ {
				continue
			}
			a := fa.evalExpr(be.X, empty)
			b := fa.evalExpr(be.Y, empty)
			if a.kind != svNum || b.kind != svNum || a.a.isTop() || b.a.isTop() {
				continue
			}
			fa.addAssume(be, a.a, b.a)
		}
		return true
	})
}

func (fa *shapeFn) addAssume(be *ast.BinaryExpr, pa, pb *poly) {
	if fa.sum != nil {
		fa.addPrecond(shapePrecond{
			labelA: types.ExprString(be.X),
			labelB: types.ExprString(be.Y),
			a:      pa,
			b:      pb,
		})
	}
	if s, ok := singleSym(pa); ok && !polyContains(pb, s) {
		if _, dup := fa.subst[s]; !dup {
			fa.subst[s] = pb
			return
		}
	}
	if s, ok := singleSym(pb); ok && !polyContains(pa, s) {
		if _, dup := fa.subst[s]; !dup {
			fa.subst[s] = pa
		}
	}
}

// applySubst rewrites p through the guard-derived equalities, a few
// rounds deep for chained guards.
func (fa *shapeFn) applySubst(p *poly) *poly {
	if p == nil || p.isTop() || len(fa.subst) == 0 {
		return p
	}
	for round := 0; round < 4; round++ {
		q := p
		for _, s := range polySyms(p) {
			if rep, ok := fa.subst[s]; ok {
				q = substPoly(q, s, rep)
			}
		}
		if polyEqual(q, p) {
			return q
		}
		p = q
	}
	return p
}

// polySyms returns the distinct symbols of p in ascending order.
func polySyms(p *poly) []symID {
	seen := make(map[symID]bool)
	var out []symID
	for _, m := range p.ms {
		for _, s := range m.syms {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func singleSym(p *poly) (symID, bool) {
	if p.isTop() || len(p.ms) != 1 {
		return 0, false
	}
	m := p.ms[0]
	if m.coeff != 1 || len(m.syms) != 1 {
		return 0, false
	}
	return m.syms[0], true
}

func polyContains(p *poly, s symID) bool {
	if p.isTop() {
		return false
	}
	for _, m := range p.ms {
		for _, x := range m.syms {
			if x == s {
				return true
			}
		}
	}
	return false
}

// bodyDiverges reports whether a guard body leaves the straight-line
// path: return, panic, or continue as its last statement.
func bodyDiverges(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isPanicCall(s.X)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

func orAtoms(e ast.Expr) []ast.Expr {
	e = unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.LOR {
		return append(orAtoms(be.X), orAtoms(be.Y)...)
	}
	return []ast.Expr{e}
}

// ---------------------------------------------------------------------
// The hardcoded tensor/nn API transfer table
// ---------------------------------------------------------------------

type callCtx struct {
	fa       *shapeFn
	env      *shapeEnv
	call     *ast.CallExpr
	fn       *types.Func
	site     string
	recvExpr ast.Expr
	recv     sval
	args     []sval
}

func (fa *shapeFn) callContext(call *ast.CallExpr, fn *types.Func, env *shapeEnv) *callCtx {
	ctx := &callCtx{fa: fa, env: env, call: call, fn: fn}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
		ctx.recvExpr = sel.X
		ctx.recv = fa.evalExpr(sel.X, env)
	}
	for _, a := range call.Args {
		ctx.args = append(ctx.args, fa.evalExpr(a, env))
	}
	ctx.site = "call to " + calleeLabel(fa.pkg, fn)
	return ctx
}

func calleeLabel(pkg *Package, fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pkg.Types {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

func (c *callCtx) arg(i int) sval {
	if i < len(c.args) {
		return c.args[i]
	}
	return topSval()
}

func (c *callCtx) eq(labelA string, a *poly, labelB string, b *poly) {
	c.fa.checkEq(c.call.Pos(), c.site, labelA, a, labelB, b, false)
}

// recvNum reads an integer field of the receiver (m.In, m.Classes) as
// a symbolic dimension.
func (c *callCtx) recvNum(field string) *poly {
	if c.recvExpr == nil {
		return topPoly()
	}
	root, path, ok := c.fa.rootAndPath(c.recvExpr, c.env)
	if !ok {
		return topPoly()
	}
	return symPoly(c.fa.sc.intern(root, joinPath(path, field)))
}

type apiSpec struct {
	result func(c *callCtx) sval
	check  func(c *callCtx)
	// kills lists argument indices whose shape the call may change
	// (EnsureShape growing its argument in place).
	kills []int
}

func shapeAPIKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	scope := shapePkgScope(pkg)
	if scope == "" {
		return ""
	}
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return scope + "." + n.Obj().Name() + "." + name
	}
	return scope + "." + name
}

var shapeAPI = map[string]apiSpec{
	"tensor.NewMatrix": {
		result: func(c *callCtx) sval { return matSval(c.arg(0).num(), c.arg(1).num()) },
	},
	"tensor.FromRows": {
		result: func(c *callCtx) sval { return matSval(c.arg(0).slen(), topPoly()) },
	},
	"tensor.EnsureShape": {
		result: func(c *callCtx) sval { return matSval(c.arg(1).num(), c.arg(2).num()) },
		kills:  []int{0},
	},
	"tensor.GatherRows": {
		check: func(c *callCtx) {
			c.eq("dst rows", c.arg(0).rows(), "len(idx)", c.arg(2).slen())
			c.eq("dst cols", c.arg(0).cols(), "src cols", c.arg(1).cols())
		},
	},
	"tensor.MatMul": {
		check: func(c *callCtx) {
			c.eq("a cols", c.arg(1).cols(), "b rows", c.arg(2).rows())
			c.eq("dst rows", c.arg(0).rows(), "a rows", c.arg(1).rows())
			c.eq("dst cols", c.arg(0).cols(), "b cols", c.arg(2).cols())
		},
	},
	"tensor.MatMulTransB": {
		check: func(c *callCtx) {
			c.eq("a cols", c.arg(1).cols(), "b cols", c.arg(2).cols())
			c.eq("dst rows", c.arg(0).rows(), "a rows", c.arg(1).rows())
			c.eq("dst cols", c.arg(0).cols(), "b rows", c.arg(2).rows())
		},
	},
	"tensor.MatMulTransA": {
		check: checkTransA,
	},
	"tensor.MatMulTransAAcc": {
		check: checkTransA,
	},
	"tensor.AXPY": {
		check: func(c *callCtx) {
			c.eq("dst rows", c.arg(0).rows(), "src rows", c.arg(2).rows())
			c.eq("dst cols", c.arg(0).cols(), "src cols", c.arg(2).cols())
		},
	},
	"tensor.AddRowVec": {
		check: checkAddRowVec,
	},
	"tensor.AddRowVecReLU": {
		check: checkAddRowVec,
	},
	"tensor.Dot": {
		check: func(c *callCtx) {
			c.eq("len(a)", c.arg(0).slen(), "len(b)", c.arg(1).slen())
		},
	},
	"tensor.Softmax": {
		check: func(c *callCtx) {
			c.eq("len(out)", c.arg(0).slen(), "len(logits)", c.arg(1).slen())
		},
	},
	"tensor.Argmax": {},
	"tensor.Matrix.Row": {
		result: func(c *callCtx) sval { return sliceSval(c.recv.cols()) },
	},
	"tensor.Matrix.Clone": {
		result: func(c *callCtx) sval { return matSval(c.recv.rows(), c.recv.cols()) },
	},
	"tensor.Matrix.At":         {},
	"tensor.Matrix.Set":        {},
	"tensor.Matrix.Zero":       {},
	"tensor.Matrix.Scale":      {},
	"tensor.Matrix.FillNormal": {},
	"nn.SoftmaxCEInto": {
		result: func(c *callCtx) sval { return c.arg(0) },
		check: func(c *callCtx) {
			c.eq("len(losses)", c.arg(0).slen(), "logits rows", c.arg(2).rows())
			c.eq("len(labels)", c.arg(3).slen(), "logits rows", c.arg(2).rows())
			c.eq("len(weights)", c.arg(4).slen(), "logits rows", c.arg(2).rows())
			c.eq("dLogits rows", c.arg(5).rows(), "logits rows", c.arg(2).rows())
			c.eq("dLogits cols", c.arg(5).cols(), "logits cols", c.arg(2).cols())
		},
	},
	"nn.SoftmaxCE": {
		result: func(c *callCtx) sval { return sliceSval(c.arg(0).rows()) },
		check: func(c *callCtx) {
			c.eq("len(labels)", c.arg(1).slen(), "logits rows", c.arg(0).rows())
			c.eq("len(weights)", c.arg(2).slen(), "logits rows", c.arg(0).rows())
			c.eq("dLogits rows", c.arg(3).rows(), "logits rows", c.arg(0).rows())
			c.eq("dLogits cols", c.arg(3).cols(), "logits cols", c.arg(0).cols())
		},
	},
	"nn.GradEmbeddingsInto": {
		check: func(c *callCtx) {
			c.eq("emb rows", c.arg(0).rows(), "logits rows", c.arg(1).rows())
			c.eq("emb cols", c.arg(0).cols(), "logits cols", c.arg(1).cols())
			c.eq("len(labels)", c.arg(2).slen(), "logits rows", c.arg(1).rows())
		},
	},
	"nn.GradEmbeddings": {
		result: func(c *callCtx) sval { return matSval(c.arg(0).rows(), c.arg(0).cols()) },
		check: func(c *callCtx) {
			c.eq("len(labels)", c.arg(1).slen(), "logits rows", c.arg(0).rows())
		},
	},
	"nn.Accuracy": {
		check: func(c *callCtx) {
			c.eq("len(labels)", c.arg(1).slen(), "logits rows", c.arg(0).rows())
		},
	},
	"nn.MLP.Forward": {
		result: func(c *callCtx) sval { return matSval(c.arg(0).rows(), c.recvNum("Classes")) },
		check: func(c *callCtx) {
			c.eq("x cols", c.arg(0).cols(), "model In", c.recvNum("In"))
		},
	},
	"nn.MLP.ForwardInto": {
		result: func(c *callCtx) sval { return matSval(c.arg(1).rows(), c.recvNum("Classes")) },
		check: func(c *callCtx) {
			c.eq("x cols", c.arg(1).cols(), "model In", c.recvNum("In"))
		},
	},
	"nn.MLP.Backward":  {},
	"nn.MLP.Clone":     {},
	"nn.MLP.NumParams": {},
	"nn.NewGrads":      {},
	"nn.NewMLP":        {},
}

func checkTransA(c *callCtx) {
	c.eq("a rows", c.arg(1).rows(), "b rows", c.arg(2).rows())
	c.eq("dst rows", c.arg(0).rows(), "a cols", c.arg(1).cols())
	c.eq("dst cols", c.arg(0).cols(), "b cols", c.arg(2).cols())
}

func checkAddRowVec(c *callCtx) {
	c.eq("len(v)", c.arg(1).slen(), "m cols", c.arg(0).cols())
}
