package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrHygieneAnalyzer keeps the sentinel-error taxonomy load-bearing in
// the packages that define and wrap it (internal/faults and its
// consumers internal/storage, internal/smartssd, internal/erasure,
// internal/core — the recovery paths classify whole-device loss with
// errors.Is(faults.ErrDeviceLost), which only works while every layer
// wraps with %w). It flags:
//
//   - err == ErrX / err != ErrX identity comparisons (nil comparisons
//     are fine) — wrapping with %w makes identity false while
//     errors.Is stays true, so identity checks silently rot;
//   - matching on error text: err.Error() compared against a string,
//     or passed to strings.Contains/HasPrefix/HasSuffix — messages
//     are documentation, not API;
//   - fmt.Errorf calls that pass an error argument without a %w verb
//     in the format — the cause is stringified and falls out of the
//     errors.Is/As chain.
//
// Opt-out: //nessa:err-ok on (or above) the line.
func ErrHygieneAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "errhygiene",
		Waiver: DirErrOK,
		Doc:    "enforce errors.Is / %w wrapping in the sentinel-error packages",
		Run:    runErrHygiene,
	}
}

// errHygieneScoped reports whether the package participates in the
// sentinel-error contract.
func errHygieneScoped(module, importPath string) bool {
	return pathIn(importPath,
		module+"/internal/faults",
		module+"/internal/storage",
		module+"/internal/smartssd",
		module+"/internal/erasure",
		module+"/internal/core",
	)
}

func runErrHygiene(p *Pass) {
	if !errHygieneScoped(moduleOf(p.Pkg.ImportPath), p.Pkg.ImportPath) {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	isErr := func(e ast.Expr) bool {
		tv, ok := p.Pkg.Info.Types[e]
		if !ok || tv.IsNil() {
			return false
		}
		return types.AssignableTo(tv.Type, errType)
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErr(n.X) && isErr(n.Y) {
					if !p.ExemptAt(n.Pos(), DirErrOK) {
						p.Reportf(n.Pos(),
							"error compared by identity (%s): wrapped sentinels no longer compare equal; use errors.Is", n.Op)
					}
					return true
				}
				if isErrorText(p, n.X) || isErrorText(p, n.Y) {
					if !p.ExemptAt(n.Pos(), DirErrOK) {
						p.Reportf(n.Pos(),
							"error matched by message text: messages are not API; use errors.Is against the sentinel")
					}
				}
			case *ast.CallExpr:
				checkStringsMatch(p, n)
				checkErrorfWrap(p, n, isErr)
			}
			return true
		})
	}
}

// isErrorText reports whether e is a call of the form x.Error() on an
// error value.
func isErrorText(p *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(sig.Recv().Type(), errType) ||
		types.Implements(sig.Recv().Type(), errType.Underlying().(*types.Interface))
}

// checkStringsMatch flags strings.Contains/HasPrefix/HasSuffix calls
// fed by err.Error().
func checkStringsMatch(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "strings" {
		return
	}
	switch obj.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorText(p, arg) {
			if p.ExemptAt(call.Pos(), DirErrOK) {
				return
			}
			p.Reportf(call.Pos(),
				"strings.%s over err.Error(): error messages are not API; use errors.Is against the sentinel", obj.Name())
			return
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error without a
// %w verb in a constant format string.
func checkErrorfWrap(p *Pass, call *ast.CallExpr, isErr func(ast.Expr) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErr(arg) {
			if p.ExemptAt(call.Pos(), DirErrOK) {
				return
			}
			p.Reportf(call.Pos(),
				"fmt.Errorf stringifies an error argument without %%w: the cause drops out of the errors.Is/As chain; wrap it with %%w")
			return
		}
	}
}
