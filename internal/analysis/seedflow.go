package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The seedflow analyzer enforces the repo's seed-traceability
// contract: every PRNG stream and fault injector constructed in
// library code — tensor.NewRNG (SplitMix64, the source behind every
// permutation and sampling decision) and faults.NewInjector — must be
// seeded by a value flowing from configuration: a function parameter,
// a *Seed struct field, or a draw on an already-seeded RNG. The
// classification is flow-sensitive (reaching definitions trace a local
// back to the expressions that defined it on every path) and
// interprocedural within the package (a helper whose every return is
// traceable confers traceability on its call sites, computed to
// fixpoint over the call graph).
//
// Two findings:
//
//   - a wholly constant seed in library code ("hard-coded seed"):
//     the stream exists but its identity is invisible to callers, so
//     reruns cannot be re-seeded;
//   - a seed that does not flow from any configured source
//     ("untraceable"), e.g. derived from an unrelated field or an
//     out-of-module call.
//
// Benchmarks, commands, and examples are exempt wholesale (they own
// their seeds). //nessa:seed-ok on the flagged line or the line above
// waives one site — the documented use is the deterministic nil-RNG
// fallback in internal/selection.

// SeedFlowAnalyzer returns the seedflow analyzer.
func SeedFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "seedflow",
		Waiver: DirSeedOK,
		Doc:    "RNG and fault-injector seeds in library code must flow from a parameter, a Seed field, or an existing RNG stream",
		Run:    runSeedFlow,
	}
}

// Seed classification lattice.
type seedClass int

const (
	seedTraceable seedClass = iota
	seedConstant
	seedUntraceable
)

// combine joins the classes of subexpressions: any untraceable part
// poisons the result; a traceable part absorbs constants (seed+1 is
// still traceable); only a wholly constant expression is constant.
func (a seedClass) combine(b seedClass) seedClass {
	if a == seedUntraceable || b == seedUntraceable {
		return seedUntraceable
	}
	if a == seedTraceable || b == seedTraceable {
		return seedTraceable
	}
	return seedConstant
}

func runSeedFlow(p *Pass) {
	module := moduleOf(p.Pkg.ImportPath)
	if pathIn(p.Pkg.ImportPath,
		module+"/internal/bench",
		module+"/cmd",
		module+"/examples",
	) {
		return
	}
	sf := &seedFlow{p: p, cg: BuildCallGraph(p.Pkg)}
	sf.traceableFns = sf.buildSummaries()

	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sf.checkFunc(fd)
		}
	}
}

type seedFlow struct {
	p  *Pass
	cg *CallGraph
	// traceableFns holds the package functions whose every return
	// value classifies traceable (usable as seed derivations).
	traceableFns map[*types.Func]bool
}

// checkFunc classifies the seed argument of every RNG/injector
// construction in one function.
func (sf *seedFlow) checkFunc(fd *ast.FuncDecl) {
	info := sf.p.Pkg.Info
	fc := &funcClassifier{
		sf:     sf,
		params: paramSet(info, fd),
	}
	// Closure parameters count as configuration inputs too: a literal
	// receiving a seed is as traceable as a function receiving one.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			for _, obj := range litParams(info, lit) {
				fc.params[obj] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		seedArg, what := seedConstruction(info, call)
		if seedArg == nil {
			return true
		}
		fc.ensureFlow(fd)
		switch fc.classify(seedArg, call.Pos()) {
		case seedConstant:
			if !sf.p.ExemptAt(call.Pos(), DirSeedOK) {
				sf.p.Reportf(call.Pos(), "hard-coded seed in library code: %s must be seeded from configuration (Options.Seed, a parameter, or an existing stream)", what)
			}
		case seedUntraceable:
			if !sf.p.ExemptAt(call.Pos(), DirSeedOK) {
				sf.p.Reportf(call.Pos(), "seed for %s does not flow from a configured seed (parameter, Seed field, or RNG draw)", what)
			}
		}
		return true
	})
}

// funcClassifier classifies seed expressions within one function,
// lazily building the CFG and reaching definitions the first time a
// local variable needs tracing.
type funcClassifier struct {
	sf     *seedFlow
	params map[types.Object]bool
	g      *CFG
	rd     *ReachingDefs
	// tracing guards against cycles when a local's reaching defs
	// mention the local itself (x = x + 1 in a loop).
	tracing map[types.Object]bool
}

func (fc *funcClassifier) ensureFlow(fd *ast.FuncDecl) {
	if fc.g != nil {
		return
	}
	info := fc.sf.p.Pkg.Info
	fc.g = BuildCFG(fd.Body)
	var params []types.Object
	for o := range fc.params {
		//nessa:sorted-iteration boundary definitions land in a set; order never observed
		params = append(params, o)
	}
	fc.rd = BuildReachingDefs(fc.g, info, params)
	fc.tracing = make(map[types.Object]bool)
}

// classify determines how the seed expression relates to configured
// state. pos is the construction site, used to locate the right CFG
// node when tracing locals.
func (fc *funcClassifier) classify(e ast.Expr, pos token.Pos) seedClass {
	info := fc.sf.p.Pkg.Info

	// A wholly constant expression (literal, named const, arithmetic
	// over them) is the hard-coded case.
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return seedConstant
	}

	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(info, e)
		if obj == nil {
			return seedUntraceable
		}
		if _, ok := obj.(*types.Const); ok {
			return seedConstant
		}
		if fc.params[obj] {
			return seedTraceable
		}
		if isPackageLevel(obj) {
			return fc.classifyName(obj.Name())
		}
		return fc.classifyLocal(obj, pos)

	case *ast.SelectorExpr:
		// o.Seed, prof.BaseSeed, cfg.SeedXY — any Seed-ish field is
		// configuration; other fields are not seed state.
		if _, ok := info.Uses[e.Sel].(*types.Var); ok {
			return fc.classifyName(e.Sel.Name)
		}
		return seedUntraceable

	case *ast.CallExpr:
		return fc.classifyCall(e, pos)

	case *ast.BinaryExpr:
		return fc.classify(e.X, pos).combine(fc.classify(e.Y, pos))

	case *ast.UnaryExpr:
		return fc.classify(e.X, pos)

	case *ast.CompositeLit:
		// A Profile literal: classify its Seed element; a literal
		// without one pins the zero seed — constant.
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && strings.Contains(key.Name, "Seed") {
					return fc.classify(kv.Value, pos)
				}
			}
		}
		return seedConstant

	case *ast.IndexExpr:
		return fc.classify(e.X, pos)
	case *ast.StarExpr:
		return fc.classify(e.X, pos)
	case *ast.TypeAssertExpr:
		return fc.classify(e.X, pos)
	}
	return seedUntraceable
}

// classifyName treats Seed-suffixed/-containing names as configured
// state.
func (fc *funcClassifier) classifyName(name string) seedClass {
	if strings.Contains(strings.ToLower(name), "seed") {
		return seedTraceable
	}
	return seedUntraceable
}

// classifyCall handles conversions, RNG draws, and module-internal
// helpers.
func (fc *funcClassifier) classifyCall(call *ast.CallExpr, pos token.Pos) seedClass {
	info := fc.sf.p.Pkg.Info

	// Conversion uint64(x): classify the operand.
	if len(call.Args) == 1 {
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, ok := info.Uses[fun].(*types.TypeName); ok {
				return fc.classify(call.Args[0], pos)
			}
		case *ast.SelectorExpr:
			if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
				return fc.classify(call.Args[0], pos)
			}
		}
	}

	// A draw or derivation on an existing RNG stream is traceable:
	// rng.Uint64(), rng.Split(), r.Float64()...
	if isRNGMethod(info, call) {
		return seedTraceable
	}

	callee := StaticCallee(info, call)
	if callee == nil {
		return seedUntraceable
	}
	// Same-package helper with a traceable-returns summary: traceable
	// if some argument flowing in is (helpers like mix(o) return
	// o.Seed-derived values).
	if fc.sf.traceableFns[callee] {
		return seedTraceable
	}
	return seedUntraceable
}

// classifyLocal traces a local variable through its reaching
// definitions: the local is as good as the worst definition reaching
// this use.
func (fc *funcClassifier) classifyLocal(obj types.Object, pos token.Pos) seedClass {
	if fc.rd == nil {
		return seedUntraceable
	}
	if fc.tracing[obj] {
		// Cycle (s = s*2+1 reaching its own use): the cyclic edge is
		// neutral — the class comes from the acyclic definitions, which
		// the enclosing trace is already joining.
		return seedTraceable
	}
	fc.tracing[obj] = true
	defer delete(fc.tracing, obj)

	b, idx := fc.locate(pos)
	if b == nil {
		return seedUntraceable
	}
	sites := fc.rd.At(b, idx, obj)
	if len(sites) == 0 {
		return seedUntraceable
	}
	out := seedTraceable
	sawClass := false
	for _, site := range sites {
		var cls seedClass
		switch {
		case site.Node == nil && site.RHS == nil:
			cls = seedTraceable // boundary definition: a parameter
		case site.RHS == nil:
			cls = seedUntraceable
		case site.FromCall:
			// One value of a multi-result call or range clause: the
			// RHS expression is the whole call/range collection.
			cls = fc.classify(site.RHS, site.RHS.Pos())
		default:
			cls = fc.classify(site.RHS, site.RHS.Pos())
		}
		if !sawClass {
			out = cls
			sawClass = true
			continue
		}
		// Joining paths: untraceable dominates; traceable beats
		// constant (a constant-on-one-path fallback next to a real
		// seed path still identifies the stream... conservatively
		// keep the worst class).
		if cls == seedUntraceable || out == seedUntraceable {
			out = seedUntraceable
		} else if cls == seedConstant || out == seedConstant {
			out = seedConstant
		}
	}
	return out
}

// locate finds the CFG node containing pos.
func (fc *funcClassifier) locate(pos token.Pos) (*Block, int) {
	for _, b := range fc.g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				return b, i
			}
		}
	}
	return nil, 0
}

// buildSummaries computes which package functions return only
// traceable seed material: every return expression classifies
// traceable given the function's own parameters (and callee summaries,
// to fixpoint).
func (sf *seedFlow) buildSummaries() map[*types.Func]bool {
	info := sf.p.Pkg.Info
	return sf.cg.Fixpoint(func(fn *types.Func, decl *ast.FuncDecl, cur map[*types.Func]bool) bool {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return false
		}
		fc := &funcClassifier{
			sf:     &seedFlow{p: sf.p, cg: sf.cg, traceableFns: cur},
			params: paramSet(info, decl),
		}
		hasReturn := false
		allTraceable := true
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				hasReturn = true
				fc.ensureFlow(decl)
				if fc.classify(res, res.Pos()) != seedTraceable {
					allTraceable = false
				}
			}
			return true
		})
		return hasReturn && allTraceable
	})
}

// seedConstruction matches the constructors the contract covers and
// returns the seed-bearing argument: tensor.NewRNG(seed) and
// faults.NewInjector(profile).
func seedConstruction(info *types.Info, call *ast.CallExpr) (ast.Expr, string) {
	fn := StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) != 1 {
		return nil, ""
	}
	path := fn.Pkg().Path()
	switch {
	case fn.Name() == "NewRNG" && strings.HasSuffix(path, "/internal/tensor"):
		return call.Args[0], "tensor.NewRNG"
	case fn.Name() == "NewInjector" && strings.HasSuffix(path, "/internal/faults"):
		return call.Args[0], "faults.NewInjector"
	}
	return nil, ""
}

// isRNGMethod reports whether call invokes a method on tensor.RNG.
func isRNGMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "RNG" && strings.HasSuffix(fn.Pkg().Path(), "/internal/tensor")
}

// paramSet collects the parameter and receiver objects of a declared
// function.
func paramSet(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, obj := range funcParams(info, fd) {
		out[obj] = true
	}
	return out
}
