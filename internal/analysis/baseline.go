package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline support: a recorded set of accepted findings so CI can fail
// only on NEW findings. Entries are keyed by (analyzer, module-relative
// file, message) with a count — deliberately line-insensitive, so
// unrelated edits that shift a waived finding up or down a few lines do
// not break the gate, while a second instance of the same message in
// the same file does.

// BaselineEntry is one accepted finding class in a baseline file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, forward slashes
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the decoded contents of a baseline file.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

type baselineKey struct {
	analyzer, file, message string
}

func (b *Baseline) index() map[baselineKey]int {
	m := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		m[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	return m
}

// LoadBaseline reads a baseline file. A missing file is not an error —
// it decodes as the empty baseline, so bootstrapping a repo needs no
// special case.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if len(data) == 0 {
		return b, nil
	}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return b, nil
}

// NewBaseline builds a baseline from the given findings, with file
// paths relativized against root.
func NewBaseline(findings []Finding, root string) *Baseline {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		k := baselineKey{f.Analyzer, relToRoot(f.Pos.Filename, root), f.Message}
		counts[k]++
	}
	b := &Baseline{}
	for k, n := range counts {
		//nessa:sorted-iteration entries are sorted wholesale right below
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Write serializes the baseline to path, creating parent directories.
func (b *Baseline) Write(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff returns the findings not covered by the baseline: each
// (analyzer, file, message) key absorbs up to its recorded count, and
// everything beyond that is new. Findings arrive and leave in Run's
// deterministic order.
func (b *Baseline) Diff(findings []Finding, root string) []Finding {
	budget := b.index()
	var fresh []Finding
	for _, f := range findings {
		k := baselineKey{f.Analyzer, relToRoot(f.Pos.Filename, root), f.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

// relToRoot converts an absolute finding path to a slash-separated
// path relative to the module root, falling back to the input when the
// file lies outside it.
func relToRoot(file, root string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
