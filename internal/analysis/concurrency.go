package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The concurrency analyzer machine-checks the contracts the
// internal/parallel pool and the repo's mutex discipline rely on:
//
//  1. loop-capture: a closure that executes concurrently (a go
//     statement, an argument to a parallel.Pool method, or a task
//     appended to a slice handed to the pool) must not capture an
//     enclosing loop variable. Since go 1.22 loop variables are
//     per-iteration so this is no longer a data race, but the repo
//     keeps iteration-state capture explicit (rebind or parameter) so
//     the code stays correct under pre-1.22 toolchains and obvious to
//     reviewers; reported at SeverityWarn.
//  2. shared-write: a concurrently executed closure must not write a
//     captured variable directly — the sanctioned reduction shape is
//     a write to a disjoint per-chunk slot (partial[c] = ...), which
//     writes through an index and is not flagged.
//  3. copylocks: sync.Mutex, sync.WaitGroup and friends must never be
//     copied — by-value parameters, results, receivers, assignments
//     from existing values, range-value copies, or call arguments.
//  4. add-in-goroutine: sync.WaitGroup.Add must happen before the
//     goroutine is spawned, never inside it (the race where Wait runs
//     before Add).
//  5. unlock-without-lock: flow-sensitively (over the CFG), an Unlock
//     must not be reachable on a path with no preceding Lock of the
//     same mutex expression. `mu.Lock(); defer mu.Unlock()` is clean:
//     the deferred unlock is modeled at the defer site.
//
// //nessa:sync-ok on the flagged line (or the line above) waives one
// finding.

// ConcurrencyAnalyzer returns the concurrency analyzer.
func ConcurrencyAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "concurrency",
		Waiver: DirSyncOK,
		Doc:    "loop capture and shared writes in pool/go closures, copied locks, WaitGroup.Add placement, unlock-without-lock paths",
		Run:    runConcurrency,
	}
}

func runConcurrency(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSignatureLocks(p, fd.Recv, fd.Type)
			checkLockCopies(p, fd.Body)
			cc := &concChecker{p: p}
			cc.collectSpawned(fd.Body)
			cc.collectLoopVars(fd.Body)
			cc.checkSpawned()
			checkLockState(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkSignatureLocks(p, nil, lit.Type)
					checkLockState(p, lit.Body)
				}
				return true
			})
		}
	}
}

// ---------------------------------------------------------------------
// Rules 1, 2, 4: spawned closures
// ---------------------------------------------------------------------

type loopVar struct {
	obj  types.Object
	body span
}

type concChecker struct {
	p        *Pass
	spawned  []*ast.FuncLit // closures that execute concurrently
	deferred []*ast.FuncLit // defer func(){...}() literals
	loopVars []loopVar
}

// collectSpawned finds every function literal that executes
// concurrently with the enclosing function: go statement operands,
// direct parallel.Pool arguments, and literals that flow into a local
// variable (or slice) later handed to a pool method.
func (cc *concChecker) collectSpawned(body *ast.BlockStmt) {
	info := cc.p.Pkg.Info
	mark := make(map[*ast.FuncLit]bool)
	spawnObjs := make(map[types.Object]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				mark[lit] = true
			}
		case *ast.DeferStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				cc.deferred = append(cc.deferred, lit)
			}
		case *ast.CallExpr:
			if !isParallelPoolCall(info, n) {
				return true
			}
			for _, arg := range n.Args {
				switch arg := unparen(arg).(type) {
				case *ast.FuncLit:
					mark[arg] = true
				case *ast.Ident:
					if obj := objOf(info, arg); obj != nil && isFuncish(obj.Type()) {
						spawnObjs[obj] = true
					}
				}
			}
		}
		return true
	})

	// Second pass: literals flowing into the variables handed to the
	// pool — `tasks = append(tasks, func(){...})`, `body := func...`,
	// `tasks[i] = func...`.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			var target types.Object
			switch lhs := unparen(lhs).(type) {
			case *ast.Ident:
				target = objOf(info, lhs)
			case *ast.IndexExpr:
				if id, ok := unparen(lhs.X).(*ast.Ident); ok {
					target = objOf(info, id)
				}
			}
			if target == nil || !spawnObjs[target] {
				continue
			}
			switch rhs := unparen(as.Rhs[i]).(type) {
			case *ast.FuncLit:
				mark[rhs] = true
			case *ast.CallExpr:
				if isBuiltin(cc.p, rhs.Fun, "append") {
					for _, a := range rhs.Args[1:] {
						if lit, ok := unparen(a).(*ast.FuncLit); ok {
							mark[lit] = true
						}
					}
				}
			}
		}
		return true
	})

	for lit := range mark {
		//nessa:sorted-iteration findings are globally sorted by Run; per-closure checks are independent
		cc.spawned = append(cc.spawned, lit)
	}
}

// collectLoopVars records every per-iteration variable (range key and
// value, for-init definitions) with the span in which a closure could
// capture it.
func (cc *concChecker) collectLoopVars(body *ast.BlockStmt) {
	info := cc.p.Pkg.Info
	add := func(e ast.Expr, sp span) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			cc.loopVars = append(cc.loopVars, loopVar{obj: obj, body: sp})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				sp := span{n.Body.Pos(), n.Body.End()}
				add(n.Key, sp)
				add(n.Value, sp)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				sp := span{n.Body.Pos(), n.Body.End()}
				for _, lhs := range init.Lhs {
					add(lhs, sp)
				}
			}
		}
		return true
	})
}

func (cc *concChecker) checkSpawned() {
	for _, lit := range cc.spawned {
		cc.checkLoopCapture(lit, "concurrently executed closure")
		cc.checkSharedWrites(lit)
		cc.checkAddInside(lit)
	}
	for _, lit := range cc.deferred {
		cc.checkLoopCapture(lit, "deferred closure")
	}
}

// checkLoopCapture flags uses, inside lit, of loop variables of any
// enclosing loop (rule 1).
func (cc *concChecker) checkLoopCapture(lit *ast.FuncLit, how string) {
	info := cc.p.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for _, lv := range cc.loopVars {
			if lv.obj == obj && lv.body.contains(lit.Pos()) {
				if !cc.p.ExemptAt(id.Pos(), DirSyncOK) && !cc.p.ExemptAt(lit.Pos(), DirSyncOK) {
					cc.p.Warnf(id.Pos(), "loop variable %s captured by %s; rebind it (%s := %s) or pass it as a parameter", id.Name, how, id.Name, id.Name)
				}
			}
		}
		return true
	})
}

// checkSharedWrites flags direct writes to captured variables inside a
// spawned closure (rule 2). Writes through an index or selector are
// the sanctioned disjoint-slot idiom and stay silent.
func (cc *concChecker) checkSharedWrites(lit *ast.FuncLit) {
	info := cc.p.Pkg.Info
	litSpan := span{lit.Pos(), lit.End()}
	flag := func(id *ast.Ident, at token.Pos) {
		obj := objOf(info, id)
		if obj == nil || litSpan.contains(obj.Pos()) {
			return // local to the closure (or its parameters)
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		if cc.p.ExemptAt(at, DirSyncOK) {
			return
		}
		cc.p.Reportf(at, "write to captured variable %s inside concurrently executed closure may race; use a disjoint per-chunk slot or a mutex", id.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit // don't descend into nested literals twice
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok && n.Tok != token.DEFINE {
					flag(id, n.Pos())
				}
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				flag(id, n.Pos())
			}
		}
		return true
	})
}

// checkAddInside flags sync.WaitGroup.Add calls inside the spawned
// closure (rule 4).
func (cc *concChecker) checkAddInside(lit *ast.FuncLit) {
	info := cc.p.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m := syncMethod(info, call); m == "WaitGroup.Add" {
			if !cc.p.ExemptAt(call.Pos(), DirSyncOK) {
				cc.p.Reportf(call.Pos(), "sync.WaitGroup.Add inside the spawned closure races with Wait; call Add before spawning")
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Rule 3: copied locks
// ---------------------------------------------------------------------

// checkSignatureLocks flags by-value lock types in receivers,
// parameters, and results.
func checkSignatureLocks(p *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := p.Pkg.Info.TypeOf(field.Type)
			if name := lockIn(t); name != "" && !p.ExemptAt(field.Pos(), DirSyncOK) {
				p.Reportf(field.Pos(), "%s passed by value copies the lock; use a pointer", name)
			}
		}
	}
}

// checkLockCopies flags assignments, range clauses, and call arguments
// that copy a lock-containing value.
func checkLockCopies(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	copyable := func(e ast.Expr) bool {
		switch unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			return true
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !copyable(rhs) {
					continue
				}
				if name := lockIn(info.TypeOf(rhs)); name != "" && !p.ExemptAt(n.Pos(), DirSyncOK) {
					p.Reportf(rhs.Pos(), "assignment copies a value containing %s; use a pointer", name)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if name := lockIn(info.TypeOf(n.Value)); name != "" && !p.ExemptAt(n.Pos(), DirSyncOK) {
					p.Reportf(n.Value.Pos(), "range clause copies a value containing %s; iterate by index", name)
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if !copyable(arg) {
					continue
				}
				if name := lockIn(info.TypeOf(arg)); name != "" && !p.ExemptAt(arg.Pos(), DirSyncOK) {
					p.Reportf(arg.Pos(), "call argument copies a value containing %s; pass a pointer", name)
				}
			}
		}
		return true
	})
}

// lockIn returns the name of the lock type contained by value in t
// ("sync.Mutex", "sync.WaitGroup", ...), or "" if t holds no lock.
func lockIn(t types.Type) string {
	return lockInRec(t, make(map[types.Type]bool))
}

func lockInRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return "sync/atomic." + obj.Name()
				}
			}
		}
		return lockInRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockInRec(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInRec(t.Elem(), seen)
	}
	return ""
}

// ---------------------------------------------------------------------
// Rule 5: unlock-without-lock (flow-sensitive)
// ---------------------------------------------------------------------

const (
	mayUnlocked uint8 = 1 << iota
	mayLocked
)

type lockState map[string]uint8

// checkLockState runs a may-analysis over the body's CFG: at every
// Unlock, the mutex must be locked on all incoming paths.
func checkLockState(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// Quick scan: which mutex expressions does this body touch?
	keys := make(map[string]bool)
	walkShallow(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, _, ok := mutexOp(info, call); ok {
				keys[key] = true
			}
		}
	})
	if len(keys) == 0 {
		return
	}

	g := BuildCFG(body)
	spec := FlowSpec[lockState]{
		Dir: Forward,
		Boundary: func() lockState {
			s := make(lockState, len(keys))
			for k := range keys {
				s[k] = mayUnlocked
			}
			return s
		},
		Bottom: func() lockState { return make(lockState) },
		Copy: func(s lockState) lockState {
			out := make(lockState, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
		Merge: func(dst, src lockState) bool {
			changed := false
			for k, v := range src {
				if dst[k]|v != dst[k] {
					dst[k] |= v
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *Block, in lockState) lockState {
			for _, n := range b.Nodes {
				applyLockOps(info, n, in, nil)
			}
			return in
		},
	}
	in := Solve(g, spec)

	// Reporting pass: replay each block from its fixpoint in-state.
	for _, b := range g.Blocks {
		state := spec.Copy(in[b])
		for _, n := range b.Nodes {
			applyLockOps(info, n, state, func(key string, call *ast.CallExpr) {
				if p.ExemptAt(call.Pos(), DirSyncOK) {
					return
				}
				p.Reportf(call.Pos(), "%s.Unlock may run without a preceding Lock on some path", strings.TrimPrefix(key, "r:"))
			})
		}
	}
}

// applyLockOps updates lock state across one CFG node in syntactic
// order, invoking report at each Unlock whose in-state admits an
// unlocked path. Function literals are opaque (their bodies are
// separate CFGs).
func applyLockOps(info *types.Info, n ast.Node, state lockState, report func(string, *ast.CallExpr)) {
	walkShallowNode(n, func(c ast.Node) {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return
		}
		key, op, ok := mutexOp(info, call)
		if !ok {
			return
		}
		switch op {
		case "Lock", "RLock":
			state[key] = mayLocked
		case "Unlock", "RUnlock":
			if report != nil && state[key]&mayUnlocked != 0 {
				report(key, call)
			}
			state[key] = mayUnlocked
		}
	})
}

// mutexOp matches a call to sync.Mutex/RWMutex Lock/Unlock/RLock/
// RUnlock (including via embedding) and returns a stable key for the
// receiver expression. Read-lock ops get a distinct "r:" key space.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, okSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	m := syncMethod(info, call)
	switch m {
	case "Mutex.Lock", "Mutex.Unlock", "RWMutex.Lock", "RWMutex.Unlock", "RWMutex.RLock", "RWMutex.RUnlock":
	default:
		return "", "", false
	}
	op = m[strings.LastIndexByte(m, '.')+1:]
	key = exprKey(sel.X)
	if op == "RLock" || op == "RUnlock" {
		key = "r:" + key
	}
	return key, op, true
}

// syncMethod returns "Type.Method" when call invokes a method declared
// in package sync, else "".
func syncMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// isParallelPoolCall reports whether call invokes a method on the
// repo's internal/parallel.Pool.
func isParallelPoolCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/internal/parallel")
}

// isFuncish reports whether t is a function type or a slice/array of
// functions (the shapes handed to pool methods).
func isFuncish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Signature:
		return true
	case *types.Slice:
		_, ok := u.Elem().Underlying().(*types.Signature)
		return ok
	case *types.Array:
		_, ok := u.Elem().Underlying().(*types.Signature)
		return ok
	}
	return false
}

// walkShallow visits every node under body without entering function
// literal bodies.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// walkShallowNode is walkShallow for a single CFG node.
func walkShallowNode(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if c != nil {
			visit(c)
		}
		return true
	})
}

// exprKey renders a stable identity string for a mutex receiver
// expression: the root object plus the selector path.
func exprKey(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.IndexExpr:
		return exprKey(e.X) + "[]"
	}
	return "?"
}
