package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The compiler-evidence ledger: a committed, per-package summary of
// what the instrumented build proved (results/COMPILER_evidence.json).
// Where the findings gate answers "is the tree clean right now", the
// ledger makes the *accepted* machine-level state diffable PR over PR:
// a new escape waiver, a kernel that fell out of the inline budget, or
// a bounds check creeping back into a hot loop shows up as a counted
// regression against the committed file even though the findings gate
// (which honors the waiver) stays green.

// Ledger metric names. Each carries a direction: +1 means an increase
// is a regression (accepted debt grew), -1 means a decrease is a
// regression (proven coverage shrank), 0 is informational (logged on
// change, never failed).
const (
	MetricHotpathFuncs    = "hotpath_functions"    // info: escapecheck coverage breadth
	MetricEscapesWaived   = "escapes_waived"       // +1: //nessa:alloc-ok'd heap escapes
	MetricInlinable       = "inlinable_kernels"    // -1: //nessa:inline functions gc can inline
	MetricHotCallsInlined = "hot_calls_inlined"    // -1: annotated callees inlined at hot sites
	MetricHotCallsWaived  = "hot_calls_waived"     // +1: //nessa:inline-ok'd non-inlined hot sites
	MetricBCEWaived       = "bounds_checks_waived" // +1: //nessa:bce-ok'd surviving bounds checks
	MetricFMAFastTier     = "fma_fast_tier_sites"  // info: FMA sites inside the fast-tier file set
)

// ledgerDirections maps each metric to its regression direction.
var ledgerDirections = map[string]int{
	MetricHotpathFuncs:    0,
	MetricEscapesWaived:   +1,
	MetricInlinable:       -1,
	MetricHotCallsInlined: -1,
	MetricHotCallsWaived:  +1,
	MetricBCEWaived:       +1,
	MetricFMAFastTier:     0,
}

// PackageCounts is one package's evidence tallies, keyed by metric.
type PackageCounts map[string]int

// Ledger is the decoded form of results/COMPILER_evidence.json.
type Ledger struct {
	GoVersion string                   `json:"go"`
	Packages  map[string]PackageCounts `json:"packages"`
}

// NewLedger returns an empty ledger for the given toolchain.
func NewLedger(goVersion string) *Ledger {
	return &Ledger{GoVersion: goVersion, Packages: make(map[string]PackageCounts)}
}

// Add bumps a metric for a package.
func (l *Ledger) Add(pkg, metric string, delta int) {
	if l.Packages == nil {
		l.Packages = make(map[string]PackageCounts)
	}
	if l.Packages[pkg] == nil {
		l.Packages[pkg] = make(PackageCounts)
	}
	l.Packages[pkg][metric] += delta
}

// LoadLedger reads a ledger file. A missing file decodes as an empty
// ledger so first-time generation needs no special case.
func LoadLedger(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewLedger(""), nil
	}
	if err != nil {
		return nil, err
	}
	l := NewLedger("")
	if err := json.Unmarshal(data, l); err != nil {
		return nil, fmt.Errorf("ledger %s: %v", path, err)
	}
	return l, nil
}

// Write serializes the ledger to path with deterministic key order
// (encoding/json sorts map keys), creating parent directories.
func (l *Ledger) Write(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareLedgers diffs the freshly computed ledger against the
// committed one. Regressions (debt up, coverage down) must fail CI;
// improvements and informational changes are returned separately so
// the caller can log them and move on — the committed file is
// regenerated deliberately, with review, via -write-ledger.
func CompareLedgers(committed, current *Ledger) (regressions, improvements []string) {
	if committed.GoVersion != "" && committed.GoVersion != current.GoVersion {
		improvements = append(improvements, fmt.Sprintf(
			"toolchain changed %s -> %s (counts may shift; regenerate the ledger if so)",
			committed.GoVersion, current.GoVersion))
	}
	pkgs := make(map[string]bool)
	for p := range committed.Packages {
		pkgs[p] = true
	}
	for p := range current.Packages {
		pkgs[p] = true
	}
	names := make([]string, 0, len(pkgs))
	for p := range pkgs {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, pkg := range names {
		old, cur := committed.Packages[pkg], current.Packages[pkg]
		metrics := make(map[string]bool)
		for m := range old {
			metrics[m] = true
		}
		for m := range cur {
			metrics[m] = true
		}
		mnames := make([]string, 0, len(metrics))
		for m := range metrics {
			mnames = append(mnames, m)
		}
		sort.Strings(mnames)
		for _, m := range mnames {
			ov, cv := old[m], cur[m]
			if ov == cv {
				continue
			}
			dir := ledgerDirections[m]
			line := fmt.Sprintf("%s: %s %d -> %d", pkg, m, ov, cv)
			switch {
			case dir > 0 && cv > ov, dir < 0 && cv < ov:
				regressions = append(regressions, line)
			default:
				improvements = append(improvements, line)
			}
		}
	}
	return regressions, improvements
}
