// Compiler-evidence collection for nessa-vet. The source-level
// analyzers check what the code *says*; the compiler-evidence layer
// checks what gc actually *emits*. One instrumented build of the
// module —
//
//	go build -gcflags='-m=2 -S -d=ssa/check_bce/debug=1' ./...
//
// — yields three diagnostic streams on stderr, which this file parses
// into position-keyed facts:
//
//   - escape analysis ("moved to heap: x", "make(...) escapes to heap")
//   - inlining decisions ("can inline F with cost N", "cannot inline
//     F: cost N exceeds budget M", "inlining call to F")
//   - surviving bounds checks ("Found IsInBounds", from the ssa
//     check_bce debug pass)
//   - the exact instruction mnemonics gc emitted per source line (the
//     -S listing), of which only the fused-multiply-add family is
//     retained
//
// The -S listing is used instead of `go tool objdump` on package
// archives deliberately: objdump's linear decoder loses sync around
// unresolved relocations in unlinked objects (verified: a
// VFMADD231SD following an R_CALL reloc decodes as garbage), while
// the -S listing is the compiler's own record of what it emitted.
// Hand-written assembly files never pass through gc, so they are
// scanned textually by the asmfma analyzer instead.
//
// Diagnostic formats are not a stable API, so evidence collection is
// pinned to the toolchains it has been validated against (see
// ToolchainSupported); an unknown toolchain yields ErrToolchain and
// the caller skips with a warning rather than mis-parsing.
package analysis

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// CompilerFlags is the -gcflags value of the instrumented build. The
// build cache stores and replays compiler diagnostics, so repeated
// collections after the first compile only pay cache replay.
const CompilerFlags = "-m=2 -S -d=ssa/check_bce/debug=1"

// ErrToolchain reports that the active go toolchain is not one the
// diagnostic parser has been validated against. Callers treat it as
// "skip with a warning", never as a failure.
var ErrToolchain = errors.New("analysis: unsupported toolchain for compiler evidence")

// toolchainRe extracts the minor version from strings like "go1.24.0",
// "go1.22", or "devel go1.25-abcdef".
var toolchainRe = regexp.MustCompile(`go1\.(\d+)`)

// ToolchainSupported reports whether the gc diagnostic formats of the
// given toolchain version are pinned by this parser. The accepted
// range covers the formats verified stable for -m=2, the check_bce
// debug output, and the -S listing.
func ToolchainSupported(version string) bool {
	m := toolchainRe.FindStringSubmatch(version)
	if m == nil {
		return false
	}
	minor, err := strconv.Atoi(m[1])
	if err != nil {
		return false
	}
	return minor >= 22 && minor <= 26
}

// FactKind classifies one compiler-evidence fact.
type FactKind int

const (
	// FactEscape: a value at this position was heap-allocated by
	// escape analysis ("moved to heap: x", "<expr> escapes to heap").
	// String-constant escapes are dropped at parse time: a constant
	// string converted to an interface (a panic argument, typically)
	// points at static data and never allocates.
	FactEscape FactKind = iota
	// FactCanInline: the function declared at this position is
	// inlinable; Detail carries "cost N".
	FactCanInline
	// FactCannotInline: the function declared at this position is not
	// inlinable; Detail carries gc's reason (e.g. "cost 105 exceeds
	// budget 80").
	FactCannotInline
	// FactInlineCall: the call at this position was inlined; Name is
	// the callee.
	FactInlineCall
	// FactBoundsCheck: a bounds check survived SSA optimization at
	// this position; Name is IsInBounds or IsSliceInBounds.
	FactBoundsCheck
	// FactFusedMulAdd: gc emitted a fused-multiply-add instruction
	// (VFMADD*/VFNMADD* family) attributed to this source line; Name
	// is the mnemonic.
	FactFusedMulAdd
)

func (k FactKind) String() string {
	switch k {
	case FactEscape:
		return "escape"
	case FactCanInline:
		return "can-inline"
	case FactCannotInline:
		return "cannot-inline"
	case FactInlineCall:
		return "inline-call"
	case FactBoundsCheck:
		return "bounds-check"
	case FactFusedMulAdd:
		return "fused-mul-add"
	}
	return "unknown"
}

// Fact is one parsed compiler diagnostic, keyed by source position.
// File is absolute and cleaned; Col is 0 when the diagnostic stream
// only carries line granularity (the -S listing).
type Fact struct {
	Kind   FactKind
	File   string
	Line   int
	Col    int
	Name   string // subject: variable, function, callee, check kind, or mnemonic
	Detail string // free-form compiler justification (cost, reason)
}

// Evidence is the parsed result of one instrumented build: every
// retained fact, indexed by absolute file path.
type Evidence struct {
	// GoVersion is the toolchain that produced the diagnostics
	// (e.g. "go1.24.0").
	GoVersion string
	files     map[string][]Fact
	// inlineDecls maps file -> line -> function name for every
	// //nessa:inline declaration seen by RunCompiler, so the
	// call-site rule resolves annotated callees across packages.
	inlineDecls map[string]map[int]string
}

// FactsIn returns the facts recorded for the given absolute file path,
// in diagnostic-stream order.
func (e *Evidence) FactsIn(file string) []Fact {
	return e.files[filepath.Clean(file)]
}

// Span returns the facts in file whose line lies in [lo, hi].
func (e *Evidence) Span(file string, lo, hi int) []Fact {
	var out []Fact
	for _, f := range e.FactsIn(file) {
		if f.Line >= lo && f.Line <= hi {
			out = append(out, f)
		}
	}
	return out
}

// Files returns the number of distinct files with recorded facts.
func (e *Evidence) Files() int { return len(e.files) }

// markInline records a //nessa:inline declaration for cross-package
// call-site resolution.
func (e *Evidence) markInline(file string, line int, name string) {
	if e.inlineDecls == nil {
		e.inlineDecls = make(map[string]map[int]string)
	}
	file = filepath.Clean(file)
	if e.inlineDecls[file] == nil {
		e.inlineDecls[file] = make(map[int]string)
	}
	e.inlineDecls[file][line] = name
}

// inlineDeclAt reports whether the declaration at file:line is marked
// //nessa:inline, and its name.
func (e *Evidence) inlineDeclAt(file string, line int) (string, bool) {
	name, ok := e.inlineDecls[filepath.Clean(file)][line]
	return name, ok
}

// CollectEvidence runs the instrumented build of the module rooted at
// root and parses the diagnostics. It returns ErrToolchain (wrapped)
// when the active toolchain's formats are not pinned, and a hard error
// when the build itself fails.
func CollectEvidence(root string) (*Evidence, error) {
	version, err := goEnvVersion(root)
	if err != nil {
		return nil, err
	}
	return collectEvidence(root, version)
}

// collectEvidence is the version-injectable core of CollectEvidence,
// split out so tests can drive the toolchain guard directly.
func collectEvidence(root, version string) (*Evidence, error) {
	if !ToolchainSupported(version) {
		return nil, fmt.Errorf("%w: %q (validated range go1.22–go1.26)", ErrToolchain, version)
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if resolved, err := filepath.EvalSymlinks(abs); err == nil {
		abs = resolved
	}
	cmd := exec.Command("go", "build", "-gcflags="+CompilerFlags, "./...")
	cmd.Dir = abs
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("analysis: starting instrumented build: %w", err)
	}
	facts, tail, perr := parseDiagnostics(abs, stderr)
	werr := cmd.Wait()
	if werr != nil {
		return nil, fmt.Errorf("analysis: instrumented build failed (%v):\n%s", werr, strings.Join(tail, "\n"))
	}
	if perr != nil {
		return nil, perr
	}
	ev := &Evidence{GoVersion: version, files: make(map[string][]Fact)}
	for _, f := range facts {
		ev.files[f.File] = append(ev.files[f.File], f)
	}
	return ev, nil
}

// goEnvVersion asks the go command (the one that will run the
// instrumented build, which may differ from the toolchain this binary
// was built with) for its version.
func goEnvVersion(root string) (string, error) {
	cmd := exec.Command("go", "env", "GOVERSION")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go env GOVERSION: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Diagnostic-line shapes. Position lines are `path:line:col: message`;
// -S listing instruction lines are `\t0xOFF DEC (path:line)\tMNEMONIC\targs`.
var (
	posLineRe = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.+)$`)
	asmLineRe = regexp.MustCompile(`^\t0x[0-9a-f]+ \d+ \((.+?):(\d+)\)\t([A-Z][A-Z0-9.]*)`)
	costRe    = regexp.MustCompile(`^can inline (.+?) with cost (\d+)`)
	fmaMnemRe = regexp.MustCompile(`^VFN?MADD`)
)

// ParseDiagnostics parses one instrumented-build stderr stream into
// facts, dropping anything attributed to files outside root. Exposed
// for tests; CollectEvidence is the production entry point.
func ParseDiagnostics(root string, lines []string) []Fact {
	var (
		facts []Fact
		seen  = make(map[Fact]bool)
	)
	for _, line := range lines {
		if f, ok := parseDiagnosticLine(root, line); ok && !seen[f] {
			seen[f] = true
			facts = append(facts, f)
		}
	}
	return facts
}

func parseDiagnostics(root string, r io.Reader) ([]Fact, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		facts []Fact
		tail  []string
		seen  = make(map[Fact]bool)
	)
	for sc.Scan() {
		line := sc.Text()
		tail = appendTail(tail, line)
		if f, ok := parseDiagnosticLine(root, line); ok && !seen[f] {
			seen[f] = true
			facts = append(facts, f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, tail, fmt.Errorf("analysis: reading build diagnostics: %w", err)
	}
	return facts, tail, nil
}

// appendTail keeps a bounded ring of recent lines for build-failure
// error messages.
func appendTail(tail []string, line string) []string {
	const keep = 30
	// Assembly listing and flow-explanation lines are useless context
	// for a failed build; keep only plain diagnostic/error lines.
	if strings.HasPrefix(line, "\t") || strings.HasPrefix(line, " ") {
		return tail
	}
	tail = append(tail, line)
	if len(tail) > keep {
		tail = tail[1:]
	}
	return tail
}

// parseDiagnosticLine classifies one stderr line. The bool result is
// false for lines that carry no retained fact (section headers, flow
// explanations, uninteresting messages, files outside root).
func parseDiagnosticLine(root, line string) (Fact, bool) {
	if m := asmLineRe.FindStringSubmatch(line); m != nil {
		if !fmaMnemRe.MatchString(m[3]) {
			return Fact{}, false
		}
		file, ok := canonPath(root, m[1])
		if !ok {
			return Fact{}, false
		}
		ln, _ := strconv.Atoi(m[2])
		return Fact{Kind: FactFusedMulAdd, File: file, Line: ln, Name: m[3]}, true
	}
	if strings.HasPrefix(line, "\t") || strings.HasPrefix(line, " ") || strings.HasPrefix(line, "#") {
		return Fact{}, false
	}
	m := posLineRe.FindStringSubmatch(line)
	if m == nil {
		return Fact{}, false
	}
	file, ok := canonPath(root, m[1])
	if !ok {
		return Fact{}, false
	}
	ln, _ := strconv.Atoi(m[2])
	col, _ := strconv.Atoi(m[3])
	msg := m[4]
	fact := Fact{File: file, Line: ln, Col: col}
	switch {
	case strings.HasPrefix(msg, "moved to heap: "):
		fact.Kind = FactEscape
		fact.Name = strings.TrimPrefix(msg, "moved to heap: ")
		fact.Detail = "moved to heap"
	case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
		subject := strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
		// A constant string escaping (a panic argument, typically)
		// points at static data — no runtime allocation, no fact.
		if strings.HasPrefix(subject, `"`) {
			return Fact{}, false
		}
		fact.Kind = FactEscape
		fact.Name = subject
		fact.Detail = "escapes to heap"
	case strings.HasPrefix(msg, "inlining call to "):
		fact.Kind = FactInlineCall
		fact.Name = strings.TrimPrefix(msg, "inlining call to ")
	case strings.HasPrefix(msg, "can inline "):
		cm := costRe.FindStringSubmatch(msg)
		if cm == nil {
			return Fact{}, false
		}
		fact.Kind = FactCanInline
		fact.Name = cm[1]
		fact.Detail = "cost " + cm[2]
	case strings.HasPrefix(msg, "cannot inline "):
		rest := strings.TrimPrefix(msg, "cannot inline ")
		name, reason, found := strings.Cut(rest, ": ")
		if !found {
			return Fact{}, false
		}
		fact.Kind = FactCannotInline
		fact.Name = name
		fact.Detail = reason
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		fact.Kind = FactBoundsCheck
		fact.Name = strings.TrimPrefix(msg, "Found ")
	default:
		return Fact{}, false
	}
	return fact, true
}

// canonPath resolves a diagnostic path (absolute in the -S listing,
// root-relative in -m output) to a cleaned absolute path, rejecting
// files outside root (stdlib sources, <autogenerated>).
func canonPath(root, p string) (string, bool) {
	if strings.HasPrefix(p, "<") { // <autogenerated>, <unknown line number>
		return "", false
	}
	if !filepath.IsAbs(p) {
		p = filepath.Join(root, p)
	}
	p = filepath.Clean(p)
	if p != root && !strings.HasPrefix(p, root+string(filepath.Separator)) {
		return "", false
	}
	return p, true
}

// InlineCost extracts the numeric cost from a can-inline fact's Detail
// ("cost 79"), or from a cannot-inline reason ("cost 105 exceeds
// budget 80"). Returns -1 when no cost is present (e.g. "no function
// body").
func InlineCost(f Fact) int {
	fields := strings.Fields(f.Detail)
	for i, w := range fields {
		if w == "cost" && i+1 < len(fields) {
			if n, err := strconv.Atoi(strings.TrimSuffix(fields[i+1], ":")); err == nil {
				return n
			}
		}
	}
	return -1
}
