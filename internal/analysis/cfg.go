package analysis

import (
	"go/ast"
	"go/token"
)

// Control-flow graph construction. BuildCFG lowers one function body
// into basic blocks connected by successor/predecessor edges, the
// substrate for the dataflow analyses in dataflow.go and the
// flow-sensitive analyzers (concurrency, scratchlife, seedflow).
//
// Design notes:
//
//   - Blocks hold ast.Node elements in execution order. Compound
//     statements are decomposed: an if statement contributes its Init
//     and Cond to the current block and its branches to fresh blocks,
//     so a block never contains a node whose sub-statements execute
//     elsewhere. The one exception is ast.RangeStmt, which appears as
//     the head node of its loop-header block (analyses interpret only
//     its X/Key/Value there; the body lives in its own blocks).
//   - Function literals are opaque expression nodes: their bodies are
//     NOT wired into the enclosing CFG (they execute at call time, not
//     at the point of appearance). Analyzers build a separate CFG per
//     literal.
//   - defer statements appear at their syntactic position. For the
//     lock-state analysis this models the repo idiom
//     `mu.Lock(); defer mu.Unlock()` as an unlock at the defer site,
//     which is the conservative reading the unlock-without-lock rule
//     needs.
//   - A statement-level call to the panic builtin terminates its block
//     with an edge to Exit, so code after a guard-and-panic is not
//     polluted by the panicking path.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// loopCtx tracks where break/continue jump for one enclosing loop,
// switch, or select (break only for the latter two).
type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type cfgBuilder struct {
	g            *CFG
	cur          *Block
	loops        []loopCtx
	labels       map[string]*Block // goto targets
	gotos        []pendingGoto
	pendingLabel string // label of an immediately enclosing LabeledStmt
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*Block)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes blk current, linking from the previous current
// block when fallthrough is possible.
func (b *cfgBuilder) startBlock(blk *Block, linkFromCur bool) {
	if linkFromCur {
		b.edge(b.cur, blk)
	}
	b.cur = blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.startBlock(thenBlk, false)
		b.edge(condBlk, thenBlk)
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.startBlock(elseBlk, false)
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.startBlock(join, false)

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = appendNode(head.Nodes, s.Cond)
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		post.Nodes = appendNode(post.Nodes, s.Post)
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit)
		}
		b.loops = append(b.loops, loopCtx{label: b.pendingLabel, breakTo: exit, continueTo: post})
		b.pendingLabel = ""
		b.startBlock(body, false)
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.edge(post, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.startBlock(exit, false)

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.loops = append(b.loops, loopCtx{label: b.pendingLabel, breakTo: exit, continueTo: head})
		b.pendingLabel = ""
		b.startBlock(body, false)
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.startBlock(exit, false)

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.caseClauses(s.Body.List, false)

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.caseClauses(s.Body.List, false)

	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, true)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.startBlock(b.newBlock(), false)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.labels[s.Label.Name] = target
		b.startBlock(target, false)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.startBlock(b.newBlock(), false)
		}

	case nil:
		// nothing

	default:
		// Assign, IncDec, Decl, Defer, Go, Send, Empty: straight-line.
		b.add(s)
	}
}

// caseClauses lowers the clause list of a switch, type switch, or
// select. Each clause gets its own block chain; fallthrough links a
// case body to the next clause's body.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, isSelect bool) {
	head := b.cur
	join := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: b.pendingLabel, breakTo: join})
	b.pendingLabel = ""

	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cs := range clauses {
		blk := bodies[i]
		b.edge(head, blk)
		b.startBlock(blk, false)
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				b.add(e)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				b.add(cs.Comm)
			}
			stmts = cs.Body
		}
		fallsThrough := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, join)
		}
	}
	// A switch with no default (or an empty clause list) can skip every
	// clause. A select with no default always executes one clause.
	if (!hasDefault && !isSelect) || len(clauses) == 0 {
		b.edge(head, join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(join, false)
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if label == "" || b.loops[i].label == label {
				b.edge(b.cur, b.loops[i].breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].continueTo != nil && (label == "" || b.loops[i].label == label) {
				b.edge(b.cur, b.loops[i].continueTo)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	}
	b.startBlock(b.newBlock(), false)
}

func appendNode(nodes []ast.Node, n ast.Node) []ast.Node {
	if n == nil {
		return nodes
	}
	return append(nodes, n)
}

// isPanicCall reports whether e is a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}
