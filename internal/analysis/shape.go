package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Symbolic-dimension lattice for the shapecheck analyzer.
//
// A dimension is an element of a three-level lattice:
//
//	⊤ (unknown)
//	  |
//	polynomials over named symbols (n, dim, classes, rows(x), 10+4*d, n*d ...)
//	  |
//	integer constants (a polynomial with no symbols)
//
// Symbols name the dimension quantities the analysis cannot reduce to
// constants: function parameters, struct-field loads (train.X.Cols,
// spec.FeatureDim), slice lengths (len(idx)), range-clause values, and
// the named dims a //nessa:shape contract declares. Polynomials are
// kept canonical (sorted monomials, no zero coefficients), so two
// dimensions are equal exactly when their difference cancels to zero —
// which is how products for flattened buffers (rows*cols) and sliced
// windows (hi-lo) compare without any special cases.
//
// Mismatch reporting is deliberately asymmetric (see dimsConflict):
// a nonzero constant difference is always a finding, but two merely
// distinct symbols have an unknown relation and stay silent — except
// when every residual symbol is a contract-declared dim of one
// contract instance, where distinct names (out vs in) are distinct by
// declaration.

// symID indexes one symbol in a shapeState's table.
type symID int32

// symKey identifies a symbol: a root object (a variable, or the
// function object for contract dims bound in a contracted function's
// own body) plus a selector path. Path suffixes encode what quantity
// of the rooted value the symbol measures: "~len" (slice length),
// "~rows"/"~cols" (matrix dims), "#name" (a //nessa:shape contract
// dim, which can never collide with a field path).
type symKey struct {
	root types.Object
	path string
}

// symTable interns symbols and carries their display names.
type symTable struct {
	ids  map[symKey]symID
	keys []symKey
	disp []string
}

func newSymTable() *symTable {
	return &symTable{ids: make(map[symKey]symID)}
}

func (st *symTable) intern(k symKey, display string) symID {
	if id, ok := st.ids[k]; ok {
		return id
	}
	id := symID(len(st.keys))
	st.ids[k] = id
	st.keys = append(st.keys, k)
	st.disp = append(st.disp, display)
	return id
}

// contractDim reports whether id is a contract-declared named dim, and
// if so which root object (contract instance) it belongs to.
func (st *symTable) contractDim(id symID) (types.Object, bool) {
	k := st.keys[id]
	if strings.HasPrefix(k.path, "#") || strings.Contains(k.path, ".#") {
		return k.root, true
	}
	return nil, false
}

// ---------------------------------------------------------------------
// Polynomials
// ---------------------------------------------------------------------

// mono is one monomial: coeff * Π syms (syms sorted, with repetition
// for powers).
type mono struct {
	coeff int64
	syms  []symID
}

func (m mono) key() string {
	var b strings.Builder
	for _, s := range m.syms {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String()
}

// poly is a canonical multivariate polynomial, or ⊤. The zero value of
// *poly (nil) is NOT a valid dimension; use topPoly()/constPoly.
type poly struct {
	top bool
	ms  []mono // canonical: sorted by key, no zero coefficients
}

// polyTermLimit bounds polynomial growth: beyond this many monomials
// (or factors in one monomial) the dimension degrades to ⊤ rather than
// blow up on pathological arithmetic.
const polyTermLimit = 16

func topPoly() *poly          { return &poly{top: true} }
func constPoly(k int64) *poly { return canonPoly([]mono{{coeff: k}}) }
func symPoly(id symID) *poly  { return canonPoly([]mono{{coeff: 1, syms: []symID{id}}}) }
func (p *poly) isTop() bool   { return p == nil || p.top }
func (p *poly) isZero() bool  { return !p.isTop() && len(p.ms) == 0 }
func (p *poly) isConst() (int64, bool) {
	if p.isTop() {
		return 0, false
	}
	if len(p.ms) == 0 {
		return 0, true
	}
	if len(p.ms) == 1 && len(p.ms[0].syms) == 0 {
		return p.ms[0].coeff, true
	}
	return 0, false
}

// canonPoly sorts, merges, and prunes a monomial list.
func canonPoly(ms []mono) *poly {
	merged := make(map[string]*mono)
	var order []string
	for _, m := range ms {
		if len(m.syms) > polyTermLimit {
			return topPoly()
		}
		sort.Slice(m.syms, func(i, j int) bool { return m.syms[i] < m.syms[j] })
		k := m.key()
		if e, ok := merged[k]; ok {
			e.coeff += m.coeff
		} else {
			cp := m
			cp.syms = append([]symID(nil), m.syms...)
			merged[k] = &cp
			order = append(order, k)
		}
	}
	sort.Strings(order)
	out := make([]mono, 0, len(order))
	for _, k := range order {
		if m := merged[k]; m.coeff != 0 {
			out = append(out, *m)
		}
	}
	if len(out) > polyTermLimit {
		return topPoly()
	}
	return &poly{ms: out}
}

func addPoly(a, b *poly) *poly {
	if a.isTop() || b.isTop() {
		return topPoly()
	}
	return canonPoly(append(append([]mono(nil), a.ms...), b.ms...))
}

func negPoly(a *poly) *poly {
	if a.isTop() {
		return topPoly()
	}
	out := make([]mono, len(a.ms))
	for i, m := range a.ms {
		out[i] = mono{coeff: -m.coeff, syms: m.syms}
	}
	return &poly{ms: out}
}

func subPoly(a, b *poly) *poly { return addPoly(a, negPoly(b)) }

func mulPoly(a, b *poly) *poly {
	if a.isTop() || b.isTop() {
		// ⊤ absorbs, with one algebraic exception: 0 · ⊤ = 0 keeps
		// zero-extent edge cases (empty batches) precise.
		if a.isZero() || b.isZero() {
			return constPoly(0)
		}
		return topPoly()
	}
	var out []mono
	for _, x := range a.ms {
		for _, y := range b.ms {
			out = append(out, mono{
				coeff: x.coeff * y.coeff,
				syms:  append(append([]symID(nil), x.syms...), y.syms...),
			})
		}
	}
	if len(out) > polyTermLimit*polyTermLimit {
		return topPoly()
	}
	return canonPoly(out)
}

// substPoly replaces every occurrence of symbol id with rep.
func substPoly(p *poly, id symID, rep *poly) *poly {
	if p.isTop() {
		return p
	}
	out := constPoly(0)
	for _, m := range p.ms {
		term := constPoly(m.coeff)
		for _, s := range m.syms {
			if s == id {
				term = mulPoly(term, rep)
			} else {
				term = mulPoly(term, symPoly(s))
			}
		}
		out = addPoly(out, term)
	}
	return out
}

func polyEqual(a, b *poly) bool {
	if a.isTop() || b.isTop() {
		return a.isTop() && b.isTop()
	}
	return subPoly(a, b).isZero()
}

// render formats a polynomial with symbol names from st.
func (p *poly) render(st *symTable) string {
	if p.isTop() {
		return "?"
	}
	if len(p.ms) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, m := range p.ms {
		c := m.coeff
		if i > 0 {
			if c < 0 {
				b.WriteString("-")
				c = -c
			} else {
				b.WriteString("+")
			}
		} else if c < 0 && len(m.syms) > 0 {
			b.WriteString("-")
			c = -c
		}
		if len(m.syms) == 0 {
			fmt.Fprintf(&b, "%d", c)
			continue
		}
		if c != 1 {
			fmt.Fprintf(&b, "%d*", c)
		}
		for j, s := range m.syms {
			if j > 0 {
				b.WriteString("*")
			}
			b.WriteString(st.disp[s])
		}
	}
	return b.String()
}

// dimRelation classifies the relation between two dimensions.
type dimRelation int

const (
	dimsEqual dimRelation = iota
	dimsUnknown
	dimsConflict
)

// relateDims compares two dimensions. Both ⊤ or either ⊤ → unknown.
// Identical polynomials → equal. A nonzero constant difference is a
// conflict (provably different for every assignment of the symbols).
// Otherwise the difference still carries symbols, whose runtime values
// are unknown — EXCEPT when every residual symbol is a named dim of
// one //nessa:shape contract instance: the contract declares those
// names as the instance's distinct dimensions, so requiring out == in
// contradicts the declaration and is reported.
func relateDims(st *symTable, a, b *poly) dimRelation {
	if a.isTop() || b.isTop() {
		return dimsUnknown
	}
	d := subPoly(a, b)
	if d.isZero() {
		return dimsEqual
	}
	if _, ok := d.isConst(); ok {
		return dimsConflict
	}
	var root types.Object
	for _, m := range d.ms {
		for _, s := range m.syms {
			r, isContract := st.contractDim(s)
			if !isContract || r == nil {
				return dimsUnknown
			}
			if root == nil {
				root = r
			} else if root != r {
				return dimsUnknown
			}
		}
	}
	return dimsConflict
}

// ---------------------------------------------------------------------
// //nessa:shape contract parsing
// ---------------------------------------------------------------------

// Contract dimension keys.
const (
	shapeKeyRows   = "rows"
	shapeKeyCols   = "cols"
	shapeKeyLen    = "len"
	shapeKeyMinLen = "minlen"
)

// shapeClause constrains one target (a parameter name, or "" for the
// annotated declaration itself) with dimension expressions.
type shapeClause struct {
	Target string
	Dims   map[string]ast.Expr // key -> parsed dim expression
}

// shapeContract is one parsed //nessa:shape(...) directive.
type shapeContract struct {
	Pos     token.Pos
	Clauses []shapeClause
}

// clauseFor returns the clause for target, or nil.
func (c *shapeContract) clauseFor(target string) *shapeClause {
	for i := range c.Clauses {
		if c.Clauses[i].Target == target {
			return &c.Clauses[i]
		}
	}
	return nil
}

// names returns every identifier mentioned by the contract's dim
// expressions, in first-appearance order.
func (c *shapeContract) names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, cl := range c.Clauses {
		for _, key := range []string{shapeKeyRows, shapeKeyCols, shapeKeyLen, shapeKeyMinLen} {
			e, ok := cl.Dims[key]
			if !ok {
				continue
			}
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && !seen[id.Name] {
					seen[id.Name] = true
					out = append(out, id.Name)
				}
				return true
			})
		}
	}
	return out
}

// shapeDirectivePrefix is the raw comment prefix of a shape contract.
const shapeDirectivePrefix = "//nessa:shape"

// isShapeDirective reports whether one comment is a //nessa:shape
// contract (well-formed or not). //nessa:shape-ok, the waiver, is a
// different directive and does not match.
func isShapeDirective(text string) bool {
	rest, ok := strings.CutPrefix(text, shapeDirectivePrefix)
	if !ok {
		return false
	}
	rest = strings.TrimRight(rest, " \t")
	return rest == "" || rest[0] == '(' || rest[0] == ' ' || rest[0] == '\t'
}

// cutShapeBody extracts the balanced (...) argument list of a shape
// directive. Text after the closing parenthesis is free-form
// justification, like the trailing text of every other //nessa:
// directive.
func cutShapeBody(text string) (string, error) {
	rest, ok := strings.CutPrefix(text, shapeDirectivePrefix)
	if !ok {
		return "", fmt.Errorf("not a shape directive")
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || rest[0] != '(' {
		return "", fmt.Errorf("missing argument list (want //nessa:shape(key=expr, ...))")
	}
	depth := 0
	for i, r := range rest {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return rest[1:i], nil
			}
		}
	}
	return "", fmt.Errorf("missing closing parenthesis")
}

// parseShapeContract parses the argument list of one //nessa:shape
// directive. The grammar is
//
//	//nessa:shape(item, item, ...) optional justification
//	item   = [target ":"] key "=" expr
//	key    = "rows" | "cols" | "len" | "minlen"
//	expr   = identifiers, integer literals, + - * and parentheses
//
// A target names a function parameter; once given it sticks for the
// following key=value pairs until the next target. Without any target
// the clause binds the annotated declaration itself (a struct field,
// or a function's result).
func parseShapeContract(text string, pos token.Pos) (*shapeContract, error) {
	body, err := cutShapeBody(strings.TrimSpace(text))
	if err != nil {
		return nil, err
	}
	c := &shapeContract{Pos: pos}
	cur := &shapeClause{Dims: make(map[string]ast.Expr)}
	c.Clauses = append(c.Clauses, *cur)
	curIdx := 0
	for _, item := range splitShapeItems(body) {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("empty item (stray comma?)")
		}
		if i := strings.Index(item, ":"); i >= 0 {
			target := strings.TrimSpace(item[:i])
			if !validShapeIdent(target) {
				return nil, fmt.Errorf("invalid target %q", target)
			}
			item = strings.TrimSpace(item[i+1:])
			if cl := c.clauseFor(target); cl != nil {
				return nil, fmt.Errorf("duplicate target %q", target)
			}
			c.Clauses = append(c.Clauses, shapeClause{Target: target, Dims: make(map[string]ast.Expr)})
			curIdx = len(c.Clauses) - 1
		}
		eq := strings.Index(item, "=")
		if eq < 0 {
			return nil, fmt.Errorf("item %q is not key=value", item)
		}
		key := strings.TrimSpace(item[:eq])
		switch key {
		case shapeKeyRows, shapeKeyCols, shapeKeyLen, shapeKeyMinLen:
		default:
			return nil, fmt.Errorf("unknown key %q (want rows, cols, len, or minlen)", key)
		}
		if _, dup := c.Clauses[curIdx].Dims[key]; dup {
			return nil, fmt.Errorf("duplicate key %q for target %q", key, c.Clauses[curIdx].Target)
		}
		val := strings.TrimSpace(item[eq+1:])
		expr, err := parseShapeExpr(val)
		if err != nil {
			return nil, fmt.Errorf("value %q: %v", val, err)
		}
		c.Clauses[curIdx].Dims[key] = expr
	}
	// Drop an unused empty default clause (fully targeted contract).
	if len(c.Clauses) > 1 && len(c.Clauses[0].Dims) == 0 {
		c.Clauses = c.Clauses[1:]
	}
	if len(c.Clauses) == 1 && len(c.Clauses[0].Dims) == 0 {
		return nil, fmt.Errorf("contract declares no dimensions")
	}
	return c, nil
}

// splitShapeItems splits on commas that are not nested in parentheses.
func splitShapeItems(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func validShapeIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

// parseShapeExpr parses one dim expression and rejects anything beyond
// identifiers, integer literals, + - *, and parentheses.
func parseShapeExpr(s string) (ast.Expr, error) {
	e, err := parser.ParseExpr(s)
	if err != nil {
		return nil, fmt.Errorf("parse error")
	}
	var bad error
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil, *ast.Ident, *ast.ParenExpr:
		case *ast.BasicLit:
			if n.Kind != token.INT {
				bad = fmt.Errorf("literal %s is not an integer", n.Value)
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD && n.Op != token.SUB && n.Op != token.MUL {
				bad = fmt.Errorf("operator %s not allowed (want + - *)", n.Op)
			}
		case *ast.UnaryExpr:
			if n.Op != token.SUB {
				bad = fmt.Errorf("operator %s not allowed", n.Op)
			}
		default:
			bad = fmt.Errorf("construct %T not allowed", n)
		}
		return bad == nil
	})
	if bad != nil {
		return nil, bad
	}
	return e, nil
}

// evalContractExpr evaluates a contract dim expression given a binding
// from contract names to dimensions. Unbound names resolve through
// bind; bind returns nil for names it cannot (yet) resolve, which
// makes the whole expression ⊤.
func evalContractExpr(e ast.Expr, bind func(name string) *poly) *poly {
	switch e := e.(type) {
	case *ast.Ident:
		if p := bind(e.Name); p != nil {
			return p
		}
		return topPoly()
	case *ast.BasicLit:
		v, err := strconv.ParseInt(e.Value, 0, 64)
		if err != nil {
			return topPoly()
		}
		return constPoly(v)
	case *ast.ParenExpr:
		return evalContractExpr(e.X, bind)
	case *ast.UnaryExpr:
		return negPoly(evalContractExpr(e.X, bind))
	case *ast.BinaryExpr:
		x := evalContractExpr(e.X, bind)
		y := evalContractExpr(e.Y, bind)
		switch e.Op {
		case token.ADD:
			return addPoly(x, y)
		case token.SUB:
			return subPoly(x, y)
		case token.MUL:
			return mulPoly(x, y)
		}
	}
	return topPoly()
}
