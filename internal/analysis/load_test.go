package analysis

import (
	"path/filepath"
	"testing"
)

// tensorFilesFor loads internal/tensor with the loader pinned to the
// given GOARCH and returns the base names of the files that entered
// the package. A nil-error load is the type-check cleanliness proof.
func tensorFilesFor(t *testing.T, arch string) map[string]bool {
	t.Helper()
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.SetGOARCH(arch)
	pkg, err := l.LoadDir(filepath.Join(root, "internal", "tensor"), "nessa/internal/tensor")
	if err != nil {
		t.Fatalf("GOARCH=%s: loading internal/tensor: %v", arch, err)
	}
	files := make(map[string]bool)
	for _, f := range pkg.Files {
		files[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)] = true
	}
	return files
}

// TestLoaderResolvesBuildConstraints pins the loader's constraint
// evaluation on the build-gated tensor kernels: the amd64 load must
// select the assembly dispatch file, every other port the portable
// fallback — and both variants must type-check cleanly.
func TestLoaderResolvesBuildConstraints(t *testing.T) {
	cases := []struct {
		arch    string
		want    string
		wantNot string
	}{
		{"amd64", "gemm_amd64.go", "gemm_noasm.go"},
		{"arm64", "gemm_noasm.go", "gemm_amd64.go"},
		{"riscv64", "gemm_noasm.go", "gemm_amd64.go"},
	}
	for _, c := range cases {
		t.Run(c.arch, func(t *testing.T) {
			files := tensorFilesFor(t, c.arch)
			if !files[c.want] {
				t.Errorf("GOARCH=%s: %s not loaded; got %v", c.arch, c.want, files)
			}
			if files[c.wantNot] {
				t.Errorf("GOARCH=%s: %s loaded but should be constrained out", c.arch, c.wantNot)
			}
		})
	}
}
