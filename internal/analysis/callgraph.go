package analysis

import (
	"go/ast"
	"go/types"
)

// A types-based, intraprocedurally-conservative call graph for one
// package: nodes are the functions and methods declared in the
// package, edges are static call sites resolved through go/types.
// Dynamic calls (interface methods, function values) resolve to the
// interface method object or nothing, and therefore never reach a
// declared body — callers treat missing summaries as "unknown" and
// stay conservative. The seedflow and scratchlife analyzers run small
// boolean summary fixpoints over this graph.
type CallGraph struct {
	pkg *Package
	// Decls maps every function object declared in the package to its
	// syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Callees maps a declared function to the distinct function
	// objects it calls directly (in source order, deduplicated).
	Callees map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the call graph of one loaded package.
func BuildCallGraph(pkg *Package) *CallGraph {
	cg := &CallGraph{
		pkg:     pkg,
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		Callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.Decls[fn] = fd
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pkg.Info, call); callee != nil && !seen[callee] {
					seen[callee] = true
					cg.Callees[fn] = append(cg.Callees[fn], callee)
				}
				return true
			})
		}
	}
	return cg
}

// StaticCallee resolves the function object a call expression invokes,
// or nil when the callee is dynamic (a function value), a builtin, or
// a type conversion. Interface method calls resolve to the interface's
// method object, which has no declaration in any package.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Fixpoint iterates a boolean per-function summary to a fixed point.
// eval decides, for one declared function and the current summary map,
// whether the function has the property; it may consult cur for
// callees (missing entries mean "not known to have it"). The result
// is monotone: once a function's summary turns true it stays true.
func (cg *CallGraph) Fixpoint(eval func(fn *types.Func, decl *ast.FuncDecl, cur map[*types.Func]bool) bool) map[*types.Func]bool {
	cur := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for fn, decl := range cg.Decls {
			if cur[fn] {
				continue
			}
			if eval(fn, decl, cur) {
				cur[fn] = true
				changed = true
			}
		}
	}
	return cur
}
