package analysis

import (
	"go/ast"
)

// BCECheckAnalyzer verifies that the index expressions in the
// innermost loops of the kernel packages' //nessa:hotpath functions
// were bounds-check-eliminated by SSA, per the ssa/check_bce debug
// log. A bounds check the prover could not discharge costs a compare
// and branch per element exactly where the GEMM and loss kernels spin
// tightest — and it appears or vanishes silently as the surrounding
// slicing hints change, which is why the gate reads the compiler's
// verdict instead of eyeballing the hints.
//
// Scope is deliberately the innermost loops (loop bodies containing no
// nested loop) of annotated functions in internal/tensor and
// internal/nn: setup code, panics, and outer blocking loops
// legitimately keep their checks. Only IsInBounds (indexing) facts are
// gated; IsSliceInBounds facts come from slice expressions, which in
// these kernels carve a row or panel per iteration and amortize their
// one check over the multi-element operation they feed — a different
// cost class from a check paid per scalar load. A check that survives
// for a reason the prover cannot see (data-dependent invariant,
// documented tail case) takes a //nessa:bce-ok waiver with a
// justification.
func BCECheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "bcecheck",
		Doc:    "prove inner-loop index expressions in //nessa:hotpath kernel functions are bounds-check-eliminated",
		Waiver: DirBCEOK,
		Run:    runBCECheck,
	}
}

// bceScoped mirrors the fma analyzer's scope: the numeric kernel
// packages whose inner loops carry the throughput.
func bceScoped(module, importPath string) bool {
	return pathIn(importPath,
		module+"/internal/tensor",
		module+"/internal/nn",
	)
}

func runBCECheck(p *Pass) {
	if p.Evidence == nil {
		return
	}
	if !bceScoped(moduleOf(p.Pkg.ImportPath), p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasDirective(fn.Doc, DirHotpath) {
				continue
			}
			checkInnerLoopBCE(p, fn)
		}
	}
}

// innermostLoopSpans returns the body spans of loops that contain no
// nested loop — the per-element kernels.
func innermostLoopSpans(fn *ast.FuncDecl) []span {
	var spans []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		if !containsLoop(body) {
			spans = append(spans, span{body.Pos(), body.End()})
		}
		return true
	})
	return spans
}

func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		case *ast.FuncLit:
			// A nested closure's loops are its own problem.
			return false
		}
		return !found
	})
	return found
}

func checkInnerLoopBCE(p *Pass, fn *ast.FuncDecl) {
	loops := innermostLoopSpans(fn)
	if len(loops) == 0 {
		return
	}
	start := p.Pkg.Fset.Position(fn.Pos())
	end := p.Pkg.Fset.Position(fn.End())
	for _, fact := range p.Evidence.Span(start.Filename, start.Line, end.Line) {
		if fact.Kind != FactBoundsCheck || fact.Name != "IsInBounds" {
			continue
		}
		pos := p.PosAt(fact.File, fact.Line, fact.Col)
		if !pos.IsValid() || !anyContains(loops, pos) {
			continue
		}
		if p.ExemptAt(pos, DirBCEOK) {
			p.Metric(MetricBCEWaived, 1)
			continue
		}
		p.Reportf(pos, "ssa/check_bce: %s survives in an innermost loop of //nessa:hotpath function %s — the hot kernel pays a bounds check per element (hoist the proof with a full-slice re-slice, or annotate //nessa:bce-ok with a justification)",
			fact.Name, fn.Name.Name)
	}
}
