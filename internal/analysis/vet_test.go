package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// wantRe matches the golden-fixture expectation comments:
//
//	expr // want "substring of the diagnostic"
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// readWants returns line -> expected message substrings for every
// `// want "..."` comment in the fixture file.
func readWants(t *testing.T, file string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int][]string)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}
	return wants
}

// runFixture loads one testdata package under the given import path
// (paths matter: several analyzers scope their rules by package), runs
// a single analyzer, and matches findings against the fixture's
// `// want` comments one-to-one.
func runFixture(t *testing.T, analyzer, dir, importPath string) {
	t.Helper()
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	fixDir := filepath.Join(root, "internal", "analysis", "testdata", dir)
	pkg, err := l.LoadDir(fixDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	az, err := ByName([]string{analyzer})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, az)
	matchWants(t, findings, collectWants(t, fixDir, ".go"))
}

// collectWants gathers the `// want` expectations from every fixture
// file in dir with one of the given extensions, keyed by line.
func collectWants(t *testing.T, dir string, exts ...string) map[int][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int][]string)
	for _, e := range entries {
		for _, ext := range exts {
			if strings.HasSuffix(e.Name(), ext) {
				for line, subs := range readWants(t, filepath.Join(dir, e.Name())) {
					wants[line] = append(wants[line], subs...)
				}
				break
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture directory %s declares no // want comments", dir)
	}
	return wants
}

// matchWants checks findings against want expectations one-to-one by
// line number and message substring.
func matchWants(t *testing.T, findings []Finding, wants map[int][]string) {
	t.Helper()
	for _, f := range findings {
		line := f.Pos.Line
		matched := -1
		for i, sub := range wants[line] {
			if strings.Contains(f.Message, sub) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at line %d: %s", line, f.Message)
			continue
		}
		wants[line] = append(wants[line][:matched], wants[line][matched+1:]...)
		if len(wants[line]) == 0 {
			delete(wants, line)
		}
	}
	for line, subs := range wants {
		for _, sub := range subs {
			t.Errorf("line %d: expected a finding containing %q, got none", line, sub)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	// Any import path outside internal/bench, cmd, and examples is in
	// scope for the determinism rules.
	runFixture(t, "determinism", "determinism", "nessa/internal/fixture/determinism")
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, "maporder", "maporder", "nessa/internal/fixture/maporder")
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, "hotpath", "hotpath", "nessa/internal/fixture/hotpath")
}

func TestFMAFixture(t *testing.T) {
	// The fma rules only fire inside the kernel packages, so the
	// fixture is loaded as if it lived under internal/tensor.
	runFixture(t, "fma", "fma", "nessa/internal/tensor/fixture")
}

func TestErrHygieneFixture(t *testing.T) {
	// errhygiene scopes to the sentinel-error packages.
	runFixture(t, "errhygiene", "errhygiene", "nessa/internal/storage/fixture")
	// The erasure package joined the scope with the device-loss
	// recovery work: the same fixture must fire there too.
	runFixture(t, "errhygiene", "errhygiene", "nessa/internal/erasure/fixture")
}

// TestRepoVetClean is the clean-tree gate: every analyzer over every
// package in the repository must report zero findings at HEAD.
func TestRepoVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree type check is slow; skipped in -short mode")
	}
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("LoadAll found only %d packages; loader is likely skipping the tree", len(pkgs))
	}
	findings := Run(pkgs, All())
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}

// pinnedHotPaths are the PR2 steady-state training entry points that
// must keep their //nessa:hotpath annotation: losing one silently
// removes the analyzer's allocation coverage for that kernel.
var pinnedHotPaths = map[string][]string{
	"internal/tensor":  {"MatMul", "MatMulTransB", "MatMulTransA", "MatMulTransAAcc", "gemmMicro4x4", "gemmMicroP4x4", "axpyRow", "Dot", "Softmax"},
	"internal/nn":      {"Forward", "ForwardInto", "Backward", "SoftmaxCEInto"},
	"internal/trainer": {"TrainEpoch"},
}

func TestHotPathAnnotationsPinned(t *testing.T) {
	root := repoRoot(t)
	for rel, fns := range pinnedHotPaths {
		annotated := make(map[string]bool)
		fset := token.NewFileSet()
		pkgDir := filepath.Join(root, rel)
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok && HasDirective(fn.Doc, DirHotpath) {
					annotated[fn.Name.Name] = true
				}
			}
		}
		for _, name := range fns {
			if !annotated[name] {
				t.Errorf("%s: %s has lost its //nessa:hotpath annotation", rel, name)
			}
		}
	}
}

// TestInjectedAllocationCaught is the acceptance mutation test: inject
// an unguarded make into the MatMul driver on a scratch copy of
// internal/tensor and the hotpath analyzer must flag it; strip the
// annotation from the same copy and the finding must disappear.
func TestInjectedAllocationCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies and repeated type checks are slow; skipped in -short mode")
	}
	root := repoRoot(t)
	srcDir := filepath.Join(root, "internal", "tensor")

	copyTensor := func(t *testing.T, mutate func(name string, src []byte) []byte) string {
		t.Helper()
		dst := t.TempDir()
		entries, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			if !strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, ".s") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(srcDir, name))
			if err != nil {
				t.Fatal(err)
			}
			data = mutate(name, data)
			if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}

	const driver = "func MatMul(dst, a, b *Matrix) {\n"
	const injected = driver + "\tprobe := make([]float32, 1)\n\t_ = probe\n"

	hotpathFindings := func(t *testing.T, dir string) []Finding {
		t.Helper()
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(dir, "nessa/internal/tensor")
		if err != nil {
			t.Fatalf("loading mutated copy: %v", err)
		}
		az, err := ByName([]string{"hotpath"})
		if err != nil {
			t.Fatal(err)
		}
		return Run([]*Package{pkg}, az)
	}

	t.Run("annotated driver flags injected make", func(t *testing.T) {
		dir := copyTensor(t, func(name string, src []byte) []byte {
			if name != "gemm.go" {
				return src
			}
			if !strings.Contains(string(src), driver) {
				t.Fatalf("gemm.go no longer contains the MatMul driver signature")
			}
			return []byte(strings.Replace(string(src), driver, injected, 1))
		})
		findings := hotpathFindings(t, dir)
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, "make in //nessa:hotpath function MatMul") {
				found = true
			} else {
				t.Errorf("unexpected extra finding: %s", f.String())
			}
		}
		if !found {
			t.Fatalf("injected make in MatMul was not flagged; findings: %v", findings)
		}
	})

	t.Run("stripping the annotation silences the analyzer", func(t *testing.T) {
		dir := copyTensor(t, func(name string, src []byte) []byte {
			if name != "gemm.go" {
				return src
			}
			s := strings.Replace(string(src), driver, injected, 1)
			// Drop only the directive line immediately above MatMul.
			lines := strings.Split(s, "\n")
			for i, line := range lines {
				if strings.HasPrefix(line, "func MatMul(") {
					for j := i - 1; j >= 0 && strings.HasPrefix(strings.TrimSpace(lines[j]), "//"); j-- {
						if strings.TrimSpace(lines[j]) == "//nessa:hotpath" {
							lines = append(lines[:j], lines[j+1:]...)
							break
						}
					}
					break
				}
			}
			return []byte(strings.Join(lines, "\n"))
		})
		findings := hotpathFindings(t, dir)
		for _, f := range findings {
			if strings.Contains(f.Message, "function MatMul") {
				t.Errorf("annotation stripped but MatMul still flagged: %s", f.String())
			}
		}
	})
}

func TestConcurrencyFixture(t *testing.T) {
	runFixture(t, "concurrency", "concurrency", "nessa/internal/fixture/concurrency")
}

func TestScratchLifeFixture(t *testing.T) {
	runFixture(t, "scratchlife", "scratchlife", "nessa/internal/fixture/scratchlife")
}

func TestSeedFlowFixture(t *testing.T) {
	// Library-scoped import path: bench, cmd, and examples are exempt
	// wholesale, so the fixture must not load under those prefixes.
	runFixture(t, "seedflow", "seedflow", "nessa/internal/fixture/seedflow")
}
