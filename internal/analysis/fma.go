package analysis

import (
	"go/ast"
	"go/token"
)

// FMAAnalyzer flags floating-point expressions of the shape a*b + c
// (and a*b - c, c + a*b, x += a*b, x -= a*b) in the numeric kernel
// packages. The Go specification permits an implementation to fuse a
// multiplication and addition that occur within a single expression
// into one FMA instruction, which rounds once instead of twice —
// producing different low bits than the two-rounding sequence. The
// repository's amd64 SSE kernels and the portable Go kernels must be
// bit-identical (that equality is the cross-architecture
// reproducibility contract from the zero-allocation training PR), so
// kernel code must materialize the product into an explicit temporary:
// assignment forces the value to round to its declared type, which
// legally forbids fusion:
//
//	t := a * b   // rounds the product to float32
//	sum += t     // plain add, nothing left to fuse
//
// The analyzer runs only over internal/tensor and internal/nn — the
// packages whose outputs feed the bit-identity gates. Constant-folded
// expressions are ignored. Opt-out: //nessa:fma-ok on (or above) the
// line.
func FMAAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "fma",
		Waiver: DirFMAOK,
		Doc:    "flag fusable float multiply-add expressions in kernel packages",
		Run:    runFMA,
	}
}

// fmaScoped reports whether the package is one of the numeric kernel
// packages the bit-identity contract covers.
func fmaScoped(module, importPath string) bool {
	return pathIn(importPath,
		module+"/internal/tensor",
		module+"/internal/nn",
	)
}

func runFMA(p *Pass) {
	if !fmaScoped(moduleOf(p.Pkg.ImportPath), p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.ADD && n.Op != token.SUB {
					return true
				}
				if !isFloat(p.Pkg.Info.TypeOf(n)) || isConstant(p, n) {
					return true
				}
				if !isFloatMul(p, n.X) && !isFloatMul(p, n.Y) {
					return true
				}
				if p.ExemptAt(n.Pos(), DirFMAOK) {
					return true
				}
				p.Reportf(n.Pos(),
					"float multiply-%s in a single expression may compile to a fused multiply-add and break amd64-vs-portable bit identity; assign the product to an explicit temporary first", opName(n.Op))
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
					return true
				}
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				if !isFloat(p.Pkg.Info.TypeOf(n.Lhs[0])) {
					return true
				}
				if !isFloatMul(p, n.Rhs[0]) {
					return true
				}
				if p.ExemptAt(n.Pos(), DirFMAOK) {
					return true
				}
				p.Reportf(n.Pos(),
					"x %s a*b is a single expression the compiler may fuse into an FMA, breaking amd64-vs-portable bit identity; assign the product to an explicit temporary first", n.Tok)
			}
			return true
		})
	}
}

// isFloatMul reports whether e (stripped of parentheses, which do not
// inhibit fusion) is a non-constant floating-point multiplication.
func isFloatMul(p *Pass, e ast.Expr) bool {
	b, ok := unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != token.MUL {
		return false
	}
	return isFloat(p.Pkg.Info.TypeOf(b)) && !isConstant(p, b)
}

func opName(op token.Token) string {
	if op == token.SUB {
		return "subtract"
	}
	return "add"
}
