package analysis

import (
	"go/ast"
)

// EscapeCheckAnalyzer verifies the //nessa:hotpath zero-allocation
// contract against gc's escape analysis instead of against syntax.
// The source-level hotpath analyzer can only flag constructs that
// *look* allocating (make, append, composite literals); escape
// analysis sees the ones it structurally cannot — an interface
// conversion that boxes, a slice captured by a closure, a local the
// compiler moved to the heap because a pointer outlived the frame.
// Every "moved to heap" / "escapes to heap" fact inside an annotated
// function is a finding unless it sits in the same automatically
// exempt spans the source analyzer honors (panic arguments, len/cap
// growth guards) or carries a //nessa:alloc-ok waiver.
//
// The analyzer reports nothing without compiler evidence attached
// (nessa-vet -compiler); it is a proof layer, not a heuristic.
func EscapeCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "escapecheck",
		Doc:    "prove //nessa:hotpath functions have zero heap escapes in gc's escape analysis",
		Waiver: DirAllocOK,
		Run:    runEscapeCheck,
	}
}

func runEscapeCheck(p *Pass) {
	if p.Evidence == nil {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasDirective(fn.Doc, DirHotpath) {
				continue
			}
			p.Metric(MetricHotpathFuncs, 1)
			checkEscapes(p, fn)
		}
	}
}

func checkEscapes(p *Pass, fn *ast.FuncDecl) {
	// The span starts at the declaration, not the body: a parameter
	// gc moved to the heap is reported at the signature.
	start := p.Pkg.Fset.Position(fn.Pos())
	end := p.Pkg.Fset.Position(fn.End())
	panicSpans, guardSpans := hotExemptSpans(p, fn)
	for _, fact := range p.Evidence.Span(start.Filename, start.Line, end.Line) {
		if fact.Kind != FactEscape {
			continue
		}
		pos := p.PosAt(fact.File, fact.Line, fact.Col)
		if !pos.IsValid() || pos < fn.Pos() || pos >= fn.End() {
			continue
		}
		if anyContains(panicSpans, pos) || anyContains(guardSpans, pos) {
			continue
		}
		if p.ExemptAt(pos, DirAllocOK) {
			p.Metric(MetricEscapesWaived, 1)
			continue
		}
		p.Reportf(pos, "gc escape analysis: %s %s in //nessa:hotpath function %s — the compiled steady-state path heap-allocates here even though the source shows no allocating construct (annotate //nessa:alloc-ok with a justification if amortized)",
			fact.Name, fact.Detail, fn.Name.Name)
	}
}
