// Fixture for the maporder analyzer: order-sensitive accumulation
// over randomized map iteration is a violation; the collect-then-sort
// idiom and the //nessa:sorted-iteration annotation are escapes.
package fixture

import "sort"

// SumWeights folds floats in map order: the sum's low bits depend on
// the randomized iteration order.
func SumWeights(w map[string]float64) float64 {
	var sum float64
	for _, v := range w {
		sum += v // want "floating-point accumulation inside map iteration"
	}
	return sum
}

// Collect appends in map order without sorting afterwards.
func Collect(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want "append inside map iteration"
	}
	return out
}

// SortedKeys is the sanctioned idiom: collect, then sort. No finding.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MaxWeight is order-independent and carries the annotation saying so.
func MaxWeight(w map[string]float64) float64 {
	var sum float64
	//nessa:sorted-iteration max-style reduction rewritten as sum of positives is order-independent here
	for _, v := range w {
		sum += v
	}
	return sum
}

// IntCount is not flagged: integer addition is exactly commutative.
func IntCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
