// Golden fixture for the inlinegate compiler-evidence analyzer: the
// declaration rule (annotated kernels must stay inlinable, with gc's
// cost report quoted on failure) and the call-site rule (hot calls to
// annotated kernels must actually inline).
package inlfix

// Out keeps results observable so nothing is dead-code-eliminated.
var Out float32

// Add is the declaration-rule true negative: a leaf far under the
// inline budget.
//
//nessa:inline
func Add(a, b float32) float32 { return a + b }

// Huge is the declaration-rule true positive: the body is far over
// the inline budget (and carries a loop), so gc refuses to inline it
// and the gate quotes gc's reason.
//
//nessa:inline
func Huge(xs []float32) float32 { // want "gc cannot inline //nessa:inline function Huge"
	s := float32(1)
	for _, x := range xs {
		s += x * 1.0001
		s *= x + 0.5
		s += x * 2.0002
		s *= x + 1.5
		s += x * 3.0003
		s *= x + 2.5
		s += x * 4.0004
		s *= x + 3.5
		s += x * 5.0005
		s *= x + 4.5
		s += x * 6.0006
		s *= x + 5.5
		s += x * 7.0007
		s *= x + 6.5
		s += x * 8.0008
		s *= x + 7.5
		s += x * 9.0009
		s *= x + 8.5
		s += x * 10.001
		s *= x + 9.5
	}
	return s
}

// Hot exercises the call-site rule: the Add call inlines (true
// negative), the first Huge call cannot inline and is flagged, the
// second is identical but waived.
//
//nessa:hotpath
func Hot(xs []float32) {
	s := Add(2, 3)
	s += Huge(xs) // want "call to //nessa:inline function Huge was not inlined"
	//nessa:inline-ok fixture: dispatch-amortized call, one per chunk
	s += Huge(xs)
	Out = s
}
