// Fixture for the seedflow analyzer: every tensor.NewRNG and
// faults.NewInjector in library code must be seeded from configuration
// — a parameter, a Seed field, or a draw on an existing stream.
package fixture

import (
	"nessa/internal/faults"
	"nessa/internal/tensor"
)

// Options is this fixture's configuration surface.
type Options struct {
	Seed    uint64
	Workers int
}

// FromOptions seeds from configuration.
func FromOptions(o Options) *tensor.RNG {
	return tensor.NewRNG(o.Seed)
}

// FromParam derives the seed from a parameter; arithmetic over a
// traceable value stays traceable.
func FromParam(seed uint64) *tensor.RNG {
	return tensor.NewRNG(seed*2 + 1)
}

// Derived seeds a second stream from a draw on an existing one.
func Derived(r *tensor.RNG) *tensor.RNG {
	return tensor.NewRNG(r.Uint64())
}

// mix derives per-worker seeds from the configured one; every return
// is traceable, so call sites inherit traceability from the summary.
func mix(o Options, w int) uint64 {
	return o.Seed + uint64(w)*0x9e3779b97f4a7c15
}

// ViaHelper threads configuration through a package helper.
func ViaHelper(o Options, w int) *tensor.RNG {
	return tensor.NewRNG(mix(o, w))
}

// LocalFlow traces the seed through locals and a branch join.
func LocalFlow(o Options) *tensor.RNG {
	s := o.Seed
	if o.Workers > 1 {
		s = s*2 + 1
	}
	return tensor.NewRNG(s)
}

// HardCoded pins the stream identity invisibly: reruns cannot re-seed
// it from the outside.
func HardCoded() *tensor.RNG {
	return tensor.NewRNG(42) // want "hard-coded seed in library code: tensor.NewRNG"
}

// Untraceable derives the seed from unrelated configuration state.
func Untraceable(o Options) *tensor.RNG {
	return tensor.NewRNG(uint64(o.Workers)) // want "seed for tensor.NewRNG does not flow from a configured seed"
}

// Fallback is the documented deterministic nil-RNG fallback, waived at
// the site.
func Fallback(r *tensor.RNG) *tensor.RNG {
	if r == nil {
		//nessa:seed-ok fixture demonstrates the documented fallback waiver
		r = tensor.NewRNG(1)
	}
	return r
}

// InjectorSeeded builds a chaos injector from a configured profile.
func InjectorSeeded(prof faults.Profile) *faults.Injector {
	return faults.NewInjector(prof)
}

// InjectorDerived rebuilds a profile around a parameter seed.
func InjectorDerived(seed uint64, rate float64) *faults.Injector {
	return faults.NewInjector(faults.Profile{Seed: seed, CorruptRate: rate})
}

// InjectorLiteral pins the whole chaos schedule.
func InjectorLiteral() *faults.Injector {
	return faults.NewInjector(faults.Profile{Seed: 7}) // want "hard-coded seed in library code: faults.NewInjector"
}

// InjectorZeroSeed omits Seed entirely, pinning the zero seed.
func InjectorZeroSeed(rate float64) *faults.Injector {
	return faults.NewInjector(faults.Profile{CorruptRate: rate}) // want "hard-coded seed in library code: faults.NewInjector"
}
