// Golden fixture for the asmfma compiler-evidence analyzer. The
// harness loads this package under internal/tensor (the kernel scope)
// and only runs on amd64, where math.FMA compiles to a VFMADD231SD
// behind a CPU-feature check.
package fmafix

import "math"

// FusedPortable is the compiled-code true positive: a fused multiply-
// add emitted outside the fast-tier file set breaks the bit-exact
// tier's single-rounding-per-step contract.
func FusedPortable(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want "gc emitted VFMADD231SD"
}

// Mul2Add is the clean true negative: separate multiply and add round
// twice and emit no fused instruction.
func Mul2Add(a, b, c float64) float64 {
	t := a * b
	return t + c
}
