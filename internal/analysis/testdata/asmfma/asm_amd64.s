//go:build amd64

#include "textflag.h"

// func fmaAsm(a, b, c float64) float64
// Hand-written FMA outside the fast-tier file set: the textual scan
// must flag the mnemonic below.
TEXT ·fmaAsm(SB), NOSPLIT, $0-32
	MOVSD a+0(FP), X0
	MOVSD b+8(FP), X1
	MOVSD c+16(FP), X2
	VFMADD231SD X1, X2, X0 // want "hand-written VFMADD231SD outside the fast-tier file set"
	MOVSD X0, ret+24(FP)
	RET

// func fmaAsmWaived(a, b, c float64) float64
// The same instruction under an //nessa:fma-ok waiver is accepted.
TEXT ·fmaAsmWaived(SB), NOSPLIT, $0-32
	MOVSD a+0(FP), X0
	MOVSD b+8(FP), X1
	MOVSD c+16(FP), X2
	//nessa:fma-ok fixture: justified fused kernel, tolerance documented at the call site
	VFMADD231SD X1, X2, X0
	MOVSD X0, ret+24(FP)
	RET
