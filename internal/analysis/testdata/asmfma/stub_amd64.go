//go:build amd64

package fmafix

// fmaAsm is implemented in asm_amd64.s: the hand-written-assembly true
// positive and waiver cases for the textual scanner.
//
//go:noescape
func fmaAsm(a, b, c float64) float64

// fmaAsmWaived is implemented in asm_amd64.s.
//
//go:noescape
func fmaAsmWaived(a, b, c float64) float64
