// Fast-tier true negative: this file's gemm_fast prefix puts it in the
// dispatch-gated file set, where fusing is the whole point.
package fmafix

import "math"

// FusedFast may fuse freely — the BitExact=false tier documents its
// rounding tolerance.
func FusedFast(a, b, c float64) float64 {
	return math.FMA(a, b, c)
}
