// Fixture for the fma analyzer: single-expression float multiply-adds
// may fuse into an FMA and are violations in the kernel packages; the
// explicit-temporary form and integer arithmetic are clean.
package fixture

// MulAdd is the canonical fusable shape.
func MulAdd(a, b, c float32) float32 {
	return a*b + c // want "fused multiply-add"
}

// MulSub fuses just the same.
func MulSub(a, b, c float64) float64 {
	return c - a*b // want "fused multiply-add"
}

// AccumLoop is the compound-assignment form of the same hazard.
func AccumLoop(xs, ys []float32) float32 {
	var s float32
	for i := range xs {
		s += xs[i] * ys[i] // want "fuse into an FMA"
	}
	return s
}

// IntMulAdd is integer arithmetic: exact, never flagged.
func IntMulAdd(a, b, c int) int { return a*b + c }

// TempOK is the required fix: assignment rounds the product first.
func TempOK(a, b, c float32) float32 {
	t := a * b
	return t + c
}

// ConstOK is folded at compile time.
func ConstOK() float64 { return 2.0*3.0 + 1.0 }

// Waived carries the site-level opt-out.
func Waived(a, b, c float64) float64 {
	//nessa:fma-ok fixture demonstrates the opt-out
	return a*b - c
}
