// Fixture for the hotpath analyzer: allocating and formatting
// constructs inside //nessa:hotpath functions are violations unless
// they sit in a panic argument, under an amortized growth guard, or on
// a //nessa:alloc-ok line.
package fixture

import "fmt"

// Kernel is annotated hot: every construct below must be flagged.
//
//nessa:hotpath
func Kernel(dst, a []float32) []float32 {
	buf := make([]float32, len(a)) // want "make in"
	copy(buf, a)
	dst = append(dst, buf...) // want "append"
	pair := []int{1, 2}       // want "composite literal"
	_ = pair
	f := func() {} // want "closure"
	f()
	fmt.Println("hot") // want "call to fmt.Println"
	return dst
}

// Label concatenates strings on the hot path.
//
//nessa:hotpath
func Label(a, b string) string {
	return a + b // want "string concatenation"
}

// Warm demonstrates every sanctioned escape: growth guard, panic
// argument, and the alloc-ok annotation. No findings.
//
//nessa:hotpath
func Warm(buf []float32, n int) []float32 {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	if cap(buf) < n {
		buf = make([]float32, n)
	}
	//nessa:alloc-ok demonstrates the site-level opt-out
	extra := make([]int, 1)
	_ = extra
	return buf[:n]
}

// Cold carries no annotation: identical constructs, no findings.
func Cold(n int) []float32 {
	fmt.Println("cold")
	return make([]float32, n)
}
