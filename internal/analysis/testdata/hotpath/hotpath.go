// Fixture for the hotpath analyzer: allocating and formatting
// constructs inside //nessa:hotpath functions are violations unless
// they sit in a panic argument, under an amortized growth guard, or on
// a //nessa:alloc-ok line.
package fixture

import (
	"fmt"
	"sync"
)

// Kernel is annotated hot: every construct below must be flagged.
//
//nessa:hotpath
func Kernel(dst, a []float32) []float32 {
	buf := make([]float32, len(a)) // want "make in"
	copy(buf, a)
	dst = append(dst, buf...) // want "append"
	pair := []int{1, 2}       // want "composite literal"
	_ = pair
	f := func() {} // want "closure"
	f()
	fmt.Println("hot") // want "call to fmt.Println"
	return dst
}

// Label concatenates strings on the hot path.
//
//nessa:hotpath
func Label(a, b string) string {
	return a + b // want "string concatenation"
}

// Warm demonstrates every sanctioned escape: growth guard, panic
// argument, and the alloc-ok annotation. No findings.
//
//nessa:hotpath
func Warm(buf []float32, n int) []float32 {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	if cap(buf) < n {
		buf = make([]float32, n)
	}
	//nessa:alloc-ok demonstrates the site-level opt-out
	extra := make([]int, 1)
	_ = extra
	return buf[:n]
}

// Cold carries no annotation: identical constructs, no findings.
func Cold(n int) []float32 {
	fmt.Println("cold")
	return make([]float32, n)
}

var scratchPool = sync.Pool{New: func() any { b := make([]float32, 64); return &b }}

// Pooled reaches for sync.Pool on the hot path: the GC drains the pool
// between epochs, so the steady state keeps allocating.
//
//nessa:hotpath
func Pooled(x float32) float32 {
	buf := scratchPool.Get().(*[]float32) // want "sync.Pool.Get"
	(*buf)[0] = x
	v := (*buf)[0]
	scratchPool.Put(buf) // want "sync.Pool.Put"
	return v
}

// PooledWaived documents an intended sync.Pool use.
//
//nessa:hotpath
func PooledWaived(x float32) float32 {
	//nessa:alloc-ok demonstrates the site-level opt-out for pools
	buf := scratchPool.Get().(*[]float32)
	(*buf)[0] = x
	v := (*buf)[0]
	//nessa:alloc-ok demonstrates the site-level opt-out for pools
	scratchPool.Put(buf)
	return v
}

// ColdPool carries no annotation: no findings.
func ColdPool() *[]float32 {
	return scratchPool.Get().(*[]float32)
}

// SketchUpdate mirrors the streaming sketch's per-record kernel
// (streaming.Sketch.Update): append a row into a preallocated buffer
// by cursor, accumulate a scalar, and hand off to an unannotated
// helper when the buffer fills. No findings — the eigendecomposition
// inside the helper is amortized over 2ℓ records and not on the
// per-record path.
//
//nessa:hotpath
func SketchUpdate(buf []float32, rows *int, row []float32) {
	copy(buf[*rows*len(row):(*rows+1)*len(row)], row)
	*rows++
	if *rows == cap(buf)/len(row) {
		shrinkHelper(buf, rows)
	}
}

// shrinkHelper is the amortized slow path: unannotated, so its
// allocations are out of the hot-path contract's scope.
func shrinkHelper(buf []float32, rows *int) {
	tmp := make([]float64, len(buf))
	_ = tmp
	*rows /= 2
}

// SievePushAlloc stages each record's candidate through fresh memory —
// one allocation and one growth per record, both violations of the
// zero-alloc streaming contract.
//
//nessa:hotpath
func SievePushAlloc(dst [][]float32, row []float32) [][]float32 {
	tmp := make([]float32, len(row)) // want "make in"
	copy(tmp, row)
	return append(dst, tmp) // want "append"
}

// SievePush is the sanctioned shape (streaming.classSieve.push): level
// buffers are preallocated at plan time, so the per-record write is a
// copy into owned memory behind an amortized growth guard.
//
//nessa:hotpath
func SievePush(ids []int, emb []float32, id int, row []float32, count *int) []int {
	if cap(ids) < *count+1 {
		ids = make([]int, *count+1, 2*(*count+1))
	}
	ids = ids[:*count+1]
	ids[*count] = id
	copy(emb[*count*len(row):], row)
	*count++
	return ids
}
