// Directive-hygiene cases for //nessa:shape: malformed contracts are
// findings at the directive, and a directive detached from its
// declaration by a blank line (the gofmt hazard) is flagged rather
// than silently unenforced.
package fixture

import "nessa/internal/tensor"

//nessa:shape(rows) // want "is not key=value"
func MalformedItem(m *tensor.Matrix) { _ = m }

//nessa:shape(rows=n, rows=d) // want "duplicate key"
func DuplicateKey(m *tensor.Matrix) { _ = m }

//nessa:shape(width=3) // want "unknown key"
func UnknownKey(m *tensor.Matrix) { _ = m }

//nessa:shape(q: rows=n) // want "not a parameter"
func WrongTarget(m *tensor.Matrix) { _ = m }

//nessa:shape(rows=n, cols=d) // want "not attached to a function or struct field declaration"

func Detached(m *tensor.Matrix) { _ = m }
