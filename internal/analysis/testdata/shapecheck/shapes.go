// Fixture for the shapecheck analyzer: symbolic tensor-dimension
// mismatches across the tensor/nn APIs, //nessa:shape contracts on
// functions and struct fields, and interprocedural guard
// preconditions. Clean functions prove the analysis stays silent on
// the idioms the real packages use.
package fixture

import (
	"nessa/internal/nn"
	"nessa/internal/tensor"
)

// ConstMatMul feeds a GEMM an inner dimension that disagrees by
// constants.
func ConstMatMul() *tensor.Matrix {
	a := tensor.NewMatrix(4, 8)
	b := tensor.NewMatrix(9, 3)
	dst := tensor.NewMatrix(4, 3)
	tensor.MatMul(dst, a, b) // want "a cols is 8 but b rows is 9"
	return dst
}

// CleanMatMul is the same wiring with agreeing dimensions.
func CleanMatMul(n, k, m int) *tensor.Matrix {
	a := tensor.NewMatrix(n, k)
	b := tensor.NewMatrix(k, m)
	dst := tensor.NewMatrix(n, m)
	tensor.MatMul(dst, a, b)
	return dst
}

// GatherOffByOne sizes the destination one row past the index set.
func GatherOffByOne(src *tensor.Matrix, idx []int) *tensor.Matrix {
	dst := tensor.NewMatrix(len(idx)+1, src.Cols)
	tensor.GatherRows(dst, src, idx) // want "dst rows is 1+len(idx) but len(idx) is len(idx)"
	return dst
}

// GatherClean threads len(idx) and src.Cols through symbolically.
func GatherClean(src *tensor.Matrix, idx []int) *tensor.Matrix {
	dst := tensor.NewMatrix(len(idx), src.Cols)
	tensor.GatherRows(dst, src, idx)
	return dst
}

// BiasTooWide adds a row vector one element wider than the matrix.
func BiasTooWide(m *tensor.Matrix) {
	v := make([]float32, m.Cols+1)
	tensor.AddRowVec(m, v) // want "len(v) is 1+m.Cols but m cols is m.Cols"
}

// FlatDotClean compares a flattened buffer against the rows*cols
// product — symbolically equal.
func FlatDotClean(m *tensor.Matrix) float32 {
	buf := make([]float32, m.Rows*m.Cols)
	return tensor.Dot(buf, m.Data)
}

// FlatDotPad pads the flattened buffer, breaking the product.
func FlatDotPad(m *tensor.Matrix) float32 {
	buf := make([]float32, m.Rows*m.Cols+4)
	return tensor.Dot(buf, m.Data) // want "len(a) is 4+m.Rows*m.Cols but len(b) is m.Rows*m.Cols"
}

// EmbMismatch sizes the embedding buffer off the batch by one.
func EmbMismatch(logits *tensor.Matrix, labels []int) {
	emb := tensor.NewMatrix(logits.Rows+1, logits.Cols)
	nn.GradEmbeddingsInto(emb, logits, labels) // want "emb rows is 1+logits.Rows but logits rows is logits.Rows"
}

// scale is an uncontracted helper whose guard becomes a caller-side
// precondition through its interprocedural summary.
func scale(dst, src []float32) {
	if len(dst) != len(src) {
		panic("scale: length mismatch")
	}
	for i := range dst {
		dst[i] *= src[i]
	}
}

// UseScaleBad violates scale's guard with constant lengths.
func UseScaleBad() {
	a := make([]float32, 8)
	b := make([]float32, 9)
	scale(a, b) // want "len(dst) is 8 but len(src) is 9"
}

// UseScaleClean satisfies the guard symbolically.
func UseScaleClean(n int) {
	a := make([]float32, n)
	b := make([]float32, n)
	scale(a, b)
}

// Patch pairs a matrix with the row indices it was gathered from; the
// contracts tie both to one k.
type Patch struct {
	//nessa:shape(rows=k, cols=d)
	M *tensor.Matrix
	//nessa:shape(len=k)
	Idx []int
}

// NewPatch threads m.Rows into both contracted fields.
func NewPatch(m *tensor.Matrix) *Patch {
	return &Patch{M: m, Idx: make([]int, m.Rows)}
}

// BadPatch binds k to m.Rows via M, then contradicts it via Idx.
func BadPatch(m *tensor.Matrix) *Patch {
	return &Patch{M: m, Idx: make([]int, m.Cols)} // want "len(Idx) is m.Cols but contract dim k is m.Rows"
}

// perSample writes one value per logits row; the contract ties the
// output length to the batch size.
//
//nessa:shape(out: len=n, logits: rows=n)
func perSample(out []float32, logits *tensor.Matrix) {
	for i := range out {
		out[i] = float32(i)
	}
}

// UsePerSample exercises both a satisfying and a violating binding.
func UsePerSample(logits *tensor.Matrix) {
	out := make([]float32, logits.Rows)
	perSample(out, logits)
	bad := make([]float32, logits.Cols)
	perSample(bad, logits) // want "logits rows is logits.Rows but contract dim n is logits.Cols"
}

// unpack's buffer floor is an affine expression of the index count.
//
//nessa:shape(buf: minlen=3*k+2, idx: len=k)
func unpack(buf []byte, idx []int) {
	for i := range idx {
		idx[i] = int(buf[2+3*i])
	}
}

// UseUnpackShort undershoots the affine floor by one byte.
func UseUnpackShort() {
	idx := make([]int, 5)
	buf := make([]byte, 16)
	unpack(buf, idx) // want "len(buf) is 16 but the contract requires at least 17"
}

// UseUnpackClean meets the floor exactly.
func UseUnpackClean() {
	idx := make([]int, 5)
	buf := make([]byte, 17)
	unpack(buf, idx)
}

// Waived is ConstMatMul's mismatch under a //nessa:shape-ok waiver —
// no finding.
func Waived() {
	a := tensor.NewMatrix(4, 8)
	b := tensor.NewMatrix(9, 3)
	dst := tensor.NewMatrix(4, 3)
	//nessa:shape-ok fixture: deliberate mismatch kept as a waiver probe
	tensor.MatMul(dst, a, b)
}
