// Golden fixture for the escapecheck compiler-evidence analyzer. The
// harness compiles this package with the instrumented flags, so every
// expectation below is checked against what gc actually reported.
package escfix

// sink keeps escaping values reachable so escape analysis must heap-
// allocate them.
var sink []float32

// Leak is the true positive: the buffer escapes through the package
// sink, and the hotpath contract forbids uncovered heap escapes.
//
//nessa:hotpath
func Leak(n int) {
	buf := make([]float32, n) // want "escapes to heap in //nessa:hotpath function Leak"
	sink = buf
}

// Waived is the escape-hatch true negative: the same escape under an
// //nessa:alloc-ok waiver is accepted (and counted in the ledger).
//
//nessa:hotpath
func Waived(n int) {
	//nessa:alloc-ok fixture: amortized setup buffer, built once per session
	buf := make([]float32, n)
	sink = buf
}

// Cold is the scope true negative: escapes outside //nessa:hotpath
// functions are not escapecheck's business.
func Cold(n int) {
	sink = make([]float32, n)
}

// StackOnly is the clean true negative: nothing here escapes, so the
// instrumented build records no escape fact in the function's span.
//
//nessa:hotpath
func StackOnly(xs []float32) float32 {
	var acc [4]float32
	for i, x := range xs {
		acc[i%4] += x
	}
	return acc[0] + acc[1] + acc[2] + acc[3]
}
