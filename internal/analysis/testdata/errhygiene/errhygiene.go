// Fixture for the errhygiene analyzer: identity comparison against
// sentinels, message-text matching, and unwrapped fmt.Errorf are
// violations in the sentinel-error packages.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

// ErrGone is this fixture's sentinel.
var ErrGone = errors.New("gone")

// Identity compares a (possibly wrapped) error by identity.
func Identity(err error) bool {
	return err == ErrGone // want "compared by identity"
}

// TextContains matches on the rendered message.
func TextContains(err error) bool {
	return strings.Contains(err.Error(), "gone") // want "strings.Contains over err.Error"
}

// TextEqual compares the rendered message.
func TextEqual(err error) bool {
	return err.Error() == "gone" // want "matched by message text"
}

// StringifyWrap loses the cause from the errors.Is chain.
func StringifyWrap(err error) error {
	return fmt.Errorf("reading shard: %v", err) // want "without %w"
}

// NilCheck is fine: nil comparisons are the idiomatic presence test.
func NilCheck(err error) bool { return err == nil }

// IsCheck is the sanctioned sentinel test.
func IsCheck(err error) bool { return errors.Is(err, ErrGone) }

// GoodWrap keeps the chain intact.
func GoodWrap(err error) error { return fmt.Errorf("reading shard: %w", err) }

// NoCause has no error argument at all: nothing to wrap.
func NoCause(n int) error { return fmt.Errorf("bad shard count %d", n) }

// Waived carries the site-level opt-out.
func Waived(err error) bool {
	//nessa:err-ok fixture demonstrates the opt-out
	return err == ErrGone
}

// ErrDeviceGone mirrors faults.ErrDeviceLost: the permanent whole-
// device sentinel the recovery paths classify on.
var ErrDeviceGone = errors.New("device lost")

// LostIdentity classifies a device loss by identity. The recovery
// stack wraps the sentinel at every layer (scan → shard → stripe), so
// identity silently stops matching.
func LostIdentity(err error) bool {
	return err == ErrDeviceGone // want "compared by identity"
}

// LostIs is the sanctioned classification on the recovery paths.
func LostIs(err error) bool { return errors.Is(err, ErrDeviceGone) }

// LostWaived carries the opt-out where identity is deliberate.
func LostWaived(err error) bool {
	//nessa:err-ok recovery fixture demonstrates the opt-out
	return err == ErrDeviceGone
}
