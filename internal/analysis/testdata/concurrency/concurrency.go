// Fixture for the concurrency analyzer: loop capture in spawned and
// deferred closures, shared writes from pool tasks, copied locks,
// WaitGroup.Add placement, and unlock-without-lock paths — plus the
// sanctioned idioms each rule must leave alone.
package fixture

import (
	"sync"

	"nessa/internal/parallel"
)

// LoopCaptureGo spawns goroutines that capture the range variable.
func LoopCaptureGo(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = it // want "loop variable it captured by concurrently executed closure"
		}()
	}
	wg.Wait()
}

// LoopCaptureTasks builds a task list for the pool and captures the
// loop index inside the queued closures.
func LoopCaptureTasks(pool *parallel.Pool, n int) {
	var tasks []func()
	for i := 0; i < n; i++ {
		tasks = append(tasks, func() {
			_ = i // want "loop variable i captured by concurrently executed closure"
		})
	}
	pool.Run(tasks)
}

// DeferredCapture defers a closure that captures the loop variable.
func DeferredCapture(items []int) {
	for _, it := range items {
		defer func() {
			_ = it // want "loop variable it captured by deferred closure"
		}()
	}
}

// RebindClean is the sanctioned idiom: rebinding pins one iteration's
// value, so the closure captures the copy.
func RebindClean(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = it
		}()
	}
	wg.Wait()
}

// SharedSum accumulates into a captured scalar from concurrent chunks.
func SharedSum(xs []float64) float64 {
	pool := parallel.Default()
	sum := 0.0
	pool.ForChunks(len(xs), func(c, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want "write to captured variable sum inside concurrently executed closure may race"
		}
	})
	return sum
}

// SlotSum is the sanctioned reduction: each chunk writes its own
// disjoint slot, merged after the barrier.
func SlotSum(xs []float64) float64 {
	pool := parallel.Default()
	partial := make([]float64, parallel.Chunks(len(xs)))
	pool.ForChunks(len(xs), func(c, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		partial[c] = s
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// WaivedWrite documents a single-writer invariant with the sync-ok
// escape hatch: the only write happens before done is signalled.
func WaivedWrite(done func()) int {
	total := 0
	go func() {
		//nessa:sync-ok single writer; the reader joins via done before reading
		total = 1
		done()
	}()
	return total
}

// guarded is a lock-bearing struct for the copylock cases.
type guarded struct {
	mu  sync.Mutex
	val int
}

// CopyParam takes a WaitGroup by value — every Add/Wait pair splits
// across two copies.
func CopyParam(wg sync.WaitGroup) { // want "sync.WaitGroup passed by value copies the lock"
	wg.Wait()
}

// CopyAssign copies a mutex out of a guarded struct.
func CopyAssign(g *guarded) int {
	m := g.mu // want "assignment copies a value containing sync.Mutex"
	m.Lock()
	return g.val
}

// CopyRange iterates lock-bearing values by value.
func CopyRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range clause copies a value containing sync.Mutex"
		total += g.val
	}
	return total
}

// sink receives a guarded value: the signature itself is a violation,
// and each call site copying one in is another.
func sink(g guarded) int { // want "sync.Mutex passed by value copies the lock"
	return g.val
}

// CopyCall copies a lock-bearing value into a call.
func CopyCall(g *guarded) int {
	return sink(*g) // want "call argument copies a value containing sync.Mutex"
}

// PointerClean passes locks the sanctioned way.
func PointerClean(g *guarded, mu *sync.Mutex) {
	mu.Lock()
	g.val++
	mu.Unlock()
}

// AddInside calls WaitGroup.Add from within the goroutine it tracks —
// Wait can run before Add does.
func AddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "sync.WaitGroup.Add inside the spawned closure races with Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// UnlockMaybe unlocks on a path where the lock was never taken.
func UnlockMaybe(mu *sync.Mutex, cond bool) {
	if cond {
		mu.Lock()
	}
	mu.Unlock() // want "mu.Unlock may run without a preceding Lock on some path"
}

// LockDefer is the sanctioned shape: the deferred unlock always runs
// with the lock held.
func LockDefer(mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}

// RWDiscipline keeps read and write locks in separate key spaces: the
// RUnlock pairs with the RLock even with a write Lock in between.
func RWDiscipline(mu *sync.RWMutex) {
	mu.RLock()
	mu.RUnlock()
	mu.Lock()
	mu.Unlock()
}
