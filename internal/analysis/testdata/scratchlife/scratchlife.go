// Fixture for the scratchlife analyzer: pooled and arena-backed
// scratch escaping its epoch through returns, stores, channel sends,
// and use-after-Put — next to the documented ownership-transfer and
// bounded-view idioms that must stay silent.
package fixture

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]float32, 256); return &b }}

// grab is the documented ownership-transfer helper: every caller
// returns the buffer with bufPool.Put before it exits. The summary
// pass still marks its results pooled, so call sites carry taint.
//
//nessa:scratch-ok ownership transfer: callers Put the buffer back
func grab() *[]float32 {
	return bufPool.Get().(*[]float32)
}

// LeakReturn hands pooled scratch to the caller with no contract.
func LeakReturn() *[]float32 {
	buf := grab()
	return buf // want "returns pool/arena-backed scratch memory"
}

// UseAfterPut reads the buffer through an alias after recycling it.
func UseAfterPut() float32 {
	buf := grab()
	b := *buf
	b[0] = 1
	bufPool.Put(buf)
	return b[0] // want "use of pool-backed scratch b after it was returned with Put"
}

// CleanUse copies the value out of the scratch before recycling; a
// scalar never carries taint.
func CleanUse() float32 {
	buf := grab()
	v := (*buf)[0]
	bufPool.Put(buf)
	return v
}

// Reuse re-reads after Put under an explicit, justified waiver.
func Reuse() float32 {
	buf := grab()
	bufPool.Put(buf)
	//nessa:scratch-ok single-threaded re-read before any concurrent Get can reuse the buffer
	return (*buf)[0]
}

// scratch is an epoch-scoped arena: its memory is overwritten by the
// next pass.
//
//nessa:arena valid for one pass, overwritten by the next
type scratch struct {
	buf []float32
}

// cache is a long-lived structure unrelated to any arena.
type cache struct {
	rows map[int][]float32
	last []float32
}

// StashInField parks arena memory in a long-lived struct.
func StashInField(c *cache, s *scratch) {
	c.last = s.buf // want "scratch memory stored in field last of a non-scratch value outlives its epoch"
}

var lastScratch []float32

// StashGlobal parks arena memory in a package-level variable.
func StashGlobal(s *scratch) {
	lastScratch = s.buf // want "scratch memory stored in package-level variable lastScratch outlives its epoch"
}

var rowCache = map[int][]float32{}

// StashContainer parks arena memory in a package-level container.
func StashContainer(s *scratch, k int) {
	rowCache[k] = s.buf // want "scratch memory stored in package-level container outlives its epoch"
}

// Publish sends pooled scratch to another goroutine.
func Publish(ch chan []float32) {
	buf := grab()
	ch <- *buf // want "scratch memory escapes through a channel send"
}

// View is the documented bounded-view idiom: the doc-level waiver
// covers every return in the function.
//
//nessa:scratch-ok callers consume the view before the next pass overwrites it
func (s *scratch) View(lo, hi int) []float32 {
	return s.buf[lo:hi]
}

// CopyOut materializes arena contents into caller-owned memory —
// fresh allocation, no taint.
func CopyOut(s *scratch) []float32 {
	out := make([]float32, len(s.buf))
	copy(out, s.buf)
	return out
}

// WorkerLocal mirrors parallel.WorkerLocal: per-worker slots reused by
// the next loop on the same worker. Get is a pooled-taint source by
// receiver type name, so the fixture needs no import.
type WorkerLocal[T any] struct{ slots []*T }

func (l *WorkerLocal[T]) Get(w int) *T { return l.slots[w] }

var evalArena = &WorkerLocal[scratch]{}

// LeakWorkerSlot hands a worker's arena slot to the caller: the next
// chunk scheduled on worker w overwrites it.
func LeakWorkerSlot(w int) []float32 {
	sc := evalArena.Get(w)
	return sc.buf // want "returns pool/arena-backed scratch memory"
}

var lastSlot *scratch

// StashWorkerSlot parks a worker slot in a package-level variable.
func StashWorkerSlot(w int) {
	lastSlot = evalArena.Get(w) // want "scratch memory stored in package-level variable lastSlot outlives its epoch"
}

// SlotScalarOut copies a scalar out of a worker slot — never tainted.
func SlotScalarOut(w int) float32 {
	sc := evalArena.Get(w)
	return sc.buf[0]
}

// SlotGrow grows a slot's buffer in place: a store into a base that is
// itself scratch stays silent (arena-to-arena).
func SlotGrow(w int, n int) {
	sc := evalArena.Get(w)
	if cap(sc.buf) < n {
		sc.buf = make([]float32, n)
	}
}

// sketchState mirrors the streaming sketch's persistent buffer set:
// arena-owned for the whole pass, every row overwritten as the stream
// advances past the next shrink.
//
//nessa:arena sketch rows are rewritten in place by the next shrink
type sketchState struct {
	rows []float32
}

// LeakSketchRows hands the live sketch buffer to the caller with no
// contract; the next Update rewrites it under the caller's feet.
func LeakSketchRows(s *sketchState) []float32 {
	return s.rows // want "returns pool/arena-backed scratch memory"
}

// SketchRowsView is the documented read-only view idiom the real
// Sketch.Rows accessor uses.
//
//nessa:scratch-ok callers copy the rows out before pushing more records
func SketchRowsView(s *sketchState) []float32 {
	return s.rows
}

var lastRows []float32

// StashSketchRows parks the sketch buffer in a package-level variable
// across batches.
func StashSketchRows(s *sketchState) {
	lastRows = s.rows // want "scratch memory stored in package-level variable lastRows outlives its epoch"
}

// SketchEnergy folds the buffer to a scalar — never tainted.
func SketchEnergy(s *sketchState) float32 {
	var e float32
	for _, v := range s.rows {
		e += v * v
	}
	return e
}
