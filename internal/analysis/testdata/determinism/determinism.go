// Fixture for the determinism analyzer: wall-clock reads and
// math/rand imports outside the exempt packages are violations.
package fixture

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// Stamp reads the wall clock three ways.
func Stamp() time.Duration {
	start := time.Now()          // want "time.Now"
	time.Sleep(time.Millisecond) // want "time.Sleep"
	return time.Since(start)     // want "time.Since"
}

// Roll uses the unseeded global generator.
func Roll() int { return rand.Intn(6) }

// SimulatedOnly shows the clean pattern: durations on a virtual
// timeline carry no wall-clock dependence and are not flagged.
func SimulatedOnly(d time.Duration) time.Duration { return 2 * d }

// Waived reads the clock under an explicit, justified waiver.
func Waived() time.Time {
	//nessa:wallclock fixture demonstrates the site-level opt-out
	return time.Now()
}
