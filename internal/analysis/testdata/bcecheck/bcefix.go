// Golden fixture for the bcecheck compiler-evidence analyzer: inner-
// loop index expressions in hotpath kernel functions must be bounds-
// check-eliminated, per the ssa/check_bce debug log of the
// instrumented build.
package bcefix

// GatherSum is the true positive: the gather index is data-dependent,
// so the prover cannot discharge the check and it survives in the
// innermost loop of a hotpath function.
//
//nessa:hotpath
func GatherSum(xs []float32, idx []int) float32 {
	var s float32
	for _, i := range idx {
		s += xs[i] // want "IsInBounds survives in an innermost loop of //nessa:hotpath function GatherSum"
	}
	return s
}

// WaivedGather is the escape-hatch true negative: the identical check
// under an //nessa:bce-ok waiver is accepted (and counted).
//
//nessa:hotpath
func WaivedGather(xs []float32, idx []int) float32 {
	var s float32
	for _, i := range idx {
		//nessa:bce-ok fixture: data-dependent gather, check is the corruption guard
		s += xs[i]
	}
	return s
}

// RangeSum is the clean true negative: range-derived indexing is
// provably in bounds, so check_bce records nothing here.
//
//nessa:hotpath
func RangeSum(xs []float32) float32 {
	var s float32
	for i := range xs {
		s += xs[i]
	}
	return s
}

// ColdGather is the scope true negative: the same surviving check
// outside a //nessa:hotpath function is not gated.
func ColdGather(xs []float32, idx []int) float32 {
	var s float32
	for _, i := range idx {
		s += xs[i]
	}
	return s
}
