package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The scratchlife analyzer tracks pooled and epoch-scoped scratch
// memory — sync.Pool buffers and the arena types/fields annotated
// //nessa:arena — flow-sensitively through each function and flags the
// four escape shapes that would let scratch outlive its epoch:
//
//   - use-after-put: any read of a pooled value (or an alias of it)
//     after the sync.Pool.Put that recycles it
//   - return: a function returning scratch-backed memory
//   - store: scratch stored into a field of a non-scratch value or a
//     package-level variable
//   - send: scratch sent on a channel
//
// Taint starts at sync.Pool.Get results, at calls to functions whose
// summary says they return pooled memory (computed to fixpoint over
// the package call graph — e.g. tensor's gemmBuf), at reads of
// //nessa:arena fields, and at parameters of //nessa:arena types. It
// propagates through assignments, slicing, dereference, address-of,
// composite literals, and calls that receive a tainted argument and
// return a pointer-bearing type. Scalar results (float32, int, bool)
// never carry taint, so copying *data out of* scratch is always clean,
// as are stores into a base that is itself scratch (arena-to-arena).
//
// //nessa:scratch-ok in a function's doc comment waives every return
// in that function (the documented ownership-transfer / bounded-view
// idiom); on a flagged line (or the line above) it waives that one
// site.

// ScratchLifeAnalyzer returns the scratchlife analyzer.
func ScratchLifeAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "scratchlife",
		Waiver: DirScratchOK,
		Doc:    "pooled/arena scratch memory escaping its epoch: use-after-Put, returns, stores, channel sends",
		Run:    runScratchLife,
	}
}

func runScratchLife(p *Pass) {
	ctx := &scratchCtx{
		p:           p,
		arenaTypes:  make(map[*types.TypeName]bool),
		arenaFields: make(map[types.Object]bool),
	}
	ctx.collectArenas()
	ctx.returnsPooled = ctx.buildPoolSummaries()

	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := newScratchState()
			for _, obj := range funcParams(p.Pkg.Info, fd) {
				if ctx.isArenaType(obj.Type()) {
					st.tainted[obj] = true
				}
			}
			ctx.analyzeBody(fd.Body, st, HasDirective(fd.Doc, DirScratchOK))
		}
	}
}

type scratchCtx struct {
	p             *Pass
	arenaTypes    map[*types.TypeName]bool
	arenaFields   map[types.Object]bool
	returnsPooled map[*types.Func]bool
}

// collectArenas indexes the //nessa:arena annotations: named types and
// struct fields whose declarations carry the directive.
func (c *scratchCtx) collectArenas() {
	info := c.p.Pkg.Info
	for _, f := range c.p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if HasDirective(gd.Doc, DirArena) || HasDirective(ts.Doc, DirArena) || HasDirective(ts.Comment, DirArena) {
					if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
						c.arenaTypes[tn] = true
					}
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !HasDirective(field.Doc, DirArena) && !HasDirective(field.Comment, DirArena) {
						continue
					}
					for _, name := range field.Names {
						if obj := info.Defs[name]; obj != nil {
							c.arenaFields[obj] = true
						}
					}
				}
			}
		}
	}
}

// isArenaType reports whether t is (a pointer to) an annotated arena
// type.
func (c *scratchCtx) isArenaType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && c.arenaTypes[named.Obj()]
}

// buildPoolSummaries computes, to fixpoint over the package call
// graph, which declared functions return sync.Pool-backed memory
// (directly or via a callee with the property). The scan inside each
// function is flow-insensitive: a local becomes pooled if any
// assignment binds it to a pooled source.
func (c *scratchCtx) buildPoolSummaries() map[*types.Func]bool {
	info := c.p.Pkg.Info
	cg := BuildCallGraph(c.p.Pkg)
	return cg.Fixpoint(func(fn *types.Func, decl *ast.FuncDecl, cur map[*types.Func]bool) bool {
		pooled := make(map[types.Object]bool)
		var isPooledExpr func(e ast.Expr) bool
		isPooledExpr = func(e ast.Expr) bool {
			switch e := unparen(e).(type) {
			case *ast.Ident:
				obj := objOf(info, e)
				return obj != nil && pooled[obj]
			case *ast.CallExpr:
				if isPoolGet(info, e) {
					return true
				}
				callee := StaticCallee(info, e)
				return callee != nil && cur[callee]
			case *ast.TypeAssertExpr:
				return isPooledExpr(e.X)
			case *ast.StarExpr:
				return isPooledExpr(e.X)
			case *ast.UnaryExpr:
				return e.Op == token.AND && isPooledExpr(e.X)
			case *ast.IndexExpr:
				return isPooledExpr(e.X)
			case *ast.SliceExpr:
				return isPooledExpr(e.X)
			}
			return false
		}
		for changed := true; changed; {
			changed = false
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					if i >= len(as.Rhs) {
						break
					}
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := objOf(info, id)
					if obj == nil || pooled[obj] {
						continue
					}
					if isPooledExpr(as.Rhs[i]) {
						pooled[obj] = true
						changed = true
					}
				}
				return true
			})
		}
		returns := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if isPooledExpr(res) {
					returns = true
				}
			}
			return true
		})
		return returns
	})
}

// ---------------------------------------------------------------------
// Per-function flow analysis
// ---------------------------------------------------------------------

type scratchState struct {
	tainted  map[types.Object]bool
	released map[types.Object]bool
}

func newScratchState() *scratchState {
	return &scratchState{
		tainted:  make(map[types.Object]bool),
		released: make(map[types.Object]bool),
	}
}

func (s *scratchState) clone() *scratchState {
	out := newScratchState()
	for o := range s.tainted {
		out.tainted[o] = true
	}
	for o := range s.released {
		out.released[o] = true
	}
	return out
}

func (s *scratchState) merge(src *scratchState) bool {
	changed := false
	for o := range src.tainted {
		if !s.tainted[o] {
			s.tainted[o] = true
			changed = true
		}
	}
	for o := range src.released {
		if !s.released[o] {
			s.released[o] = true
			changed = true
		}
	}
	return changed
}

// analyzeBody runs the taint/release dataflow over one function (or
// function literal) body and reports escapes. docWaived marks a body
// whose doc comment carries //nessa:scratch-ok, waiving return
// findings wholesale.
func (c *scratchCtx) analyzeBody(body *ast.BlockStmt, entry *scratchState, docWaived bool) {
	g := BuildCFG(body)
	aliases := c.buildAliases(body, entry)

	spec := FlowSpec[*scratchState]{
		Dir:      Forward,
		Boundary: func() *scratchState { return entry.clone() },
		Bottom:   newScratchState,
		Copy:     func(s *scratchState) *scratchState { return s.clone() },
		Merge:    func(dst, src *scratchState) bool { return dst.merge(src) },
		Transfer: func(b *Block, in *scratchState) *scratchState {
			for _, n := range b.Nodes {
				c.applyScratch(n, in, aliases, nil)
			}
			return in
		},
	}
	in := Solve(g, spec)

	// Liveness gates the use-after-put reporting: once every released
	// object is dead, the replay skips the per-node identifier scan.
	live := BuildLiveness(g, c.p.Pkg.Info)

	for _, b := range g.Blocks {
		state := in[b].clone()
		for i, n := range b.Nodes {
			c.applyScratch(n, state, aliases, &reportCtx{
				docWaived: docWaived,
				live:      live, block: b, idx: i,
			})
		}
	}
}

type reportCtx struct {
	docWaived bool
	live      *Liveness
	block     *Block
	idx       int
}

// applyScratch interprets one CFG node: updates taint/release state
// and, when rep is non-nil (the replay pass), reports escapes.
// Function literals are analyzed recursively at their occurrence with
// a snapshot of the current state.
func (c *scratchCtx) applyScratch(n ast.Node, st *scratchState, aliases *unionFind, rep *reportCtx) {
	info := c.p.Pkg.Info

	if rep != nil {
		// Use-after-put: any read of a released object.
		c.checkReleasedUses(n, st, rep)
		// Recurse into function literals with the state at this point.
		ast.Inspect(n, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok {
				sub := st.clone()
				for _, obj := range litParams(info, lit) {
					if c.isArenaType(obj.Type()) {
						sub.tainted[obj] = true
					}
				}
				c.analyzeBody(lit.Body, sub, false)
				return false
			}
			return true
		})
	}

	switch n := n.(type) {
	case *ast.AssignStmt:
		c.applyAssign(n, st, aliases, rep)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							obj := info.Defs[name]
							if obj != nil && c.exprTainted(vs.Values[i], st) && pointerish(obj.Type()) {
								st.tainted[obj] = true
							}
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		if n.Tok == token.DEFINE && n.Value != nil && c.exprTainted(n.X, st) {
			if id, ok := unparen(n.Value).(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil && pointerish(obj.Type()) {
					st.tainted[obj] = true
				}
			}
		}
	case *ast.ReturnStmt:
		if rep != nil {
			for _, res := range n.Results {
				if !c.exprTainted(res, st) {
					continue
				}
				if rep.docWaived || c.p.ExemptAt(res.Pos(), DirScratchOK) || c.p.ExemptAt(n.Pos(), DirScratchOK) {
					continue
				}
				c.p.Reportf(res.Pos(), "returns pool/arena-backed scratch memory; copy it out or annotate the function //nessa:scratch-ok")
			}
		}
	case *ast.SendStmt:
		if rep != nil && c.exprTainted(n.Value, st) {
			if !c.p.ExemptAt(n.Pos(), DirScratchOK) {
				c.p.Reportf(n.Value.Pos(), "scratch memory escapes through a channel send")
			}
		}
	case *ast.ExprStmt:
		c.applyPut(unparen(n.X), st, aliases)
	case *ast.DeferStmt:
		c.applyPut(n.Call, st, aliases)
	}
}

// applyAssign handles taint propagation and store-escape reporting for
// one assignment.
func (c *scratchCtx) applyAssign(as *ast.AssignStmt, st *scratchState, aliases *unionFind, rep *reportCtx) {
	info := c.p.Pkg.Info
	multi := len(as.Lhs) > 1 && len(as.Rhs) == 1
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if multi {
			rhs = as.Rhs[0]
		} else if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		if rhs == nil {
			continue
		}
		rhsTainted := c.exprTainted(rhs, st)
		switch lhs := unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := objOf(info, lhs)
			if obj == nil {
				continue
			}
			if isPackageLevel(obj) {
				if rep != nil && rhsTainted && !c.p.ExemptAt(as.Pos(), DirScratchOK) {
					c.p.Reportf(lhs.Pos(), "scratch memory stored in package-level variable %s outlives its epoch", lhs.Name)
				}
				continue
			}
			if rhsTainted && pointerish(obj.Type()) {
				st.tainted[obj] = true
				if root := rootObject(info, rhs); root != nil {
					aliases.union(obj, root)
				}
			} else {
				// Whole-variable overwrite with clean data.
				delete(st.tainted, obj)
				delete(st.released, obj)
			}
		case *ast.SelectorExpr:
			if rep != nil && rhsTainted && !c.exprTainted(lhs.X, st) && !c.arenaFields[info.Uses[lhs.Sel]] &&
				!c.p.ExemptAt(as.Pos(), DirScratchOK) {
				c.p.Reportf(lhs.Pos(), "scratch memory stored in field %s of a non-scratch value outlives its epoch", lhs.Sel.Name)
			}
		case *ast.IndexExpr:
			if rep != nil && rhsTainted && !c.exprTainted(lhs.X, st) {
				if root := rootObject(info, lhs.X); root != nil && isPackageLevel(root) &&
					!c.p.ExemptAt(as.Pos(), DirScratchOK) {
					c.p.Reportf(lhs.Pos(), "scratch memory stored in package-level container outlives its epoch")
				}
			}
		}
	}
}

// applyPut marks the alias group of x released at `pool.Put(x)`.
func (c *scratchCtx) applyPut(e ast.Expr, st *scratchState, aliases *unionFind) {
	call, ok := e.(*ast.CallExpr)
	if !ok || !isPoolPut(c.p.Pkg.Info, call) || len(call.Args) != 1 {
		return
	}
	root := rootObject(c.p.Pkg.Info, call.Args[0])
	if root == nil {
		return
	}
	for _, obj := range aliases.group(root) {
		if st.tainted[obj] || obj == root {
			st.released[obj] = true
		}
	}
}

// checkReleasedUses reports reads of released objects within node n.
// The argument of the releasing Put itself is never flagged: releases
// apply after the Put's node is processed, so its argument is still
// unreleased when its own node is scanned. Liveness prunes the scan:
// a node before which no released object is live cannot contain a
// flagged use.
func (c *scratchCtx) checkReleasedUses(n ast.Node, st *scratchState, rep *reportCtx) {
	if len(st.released) == 0 {
		return
	}
	anyLive := false
	for obj := range st.released {
		if rep.live.LiveAfter(rep.block, rep.idx-1, obj) {
			anyLive = true
			break
		}
	}
	if !anyLive {
		return
	}
	info := c.p.Pkg.Info
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !st.released[obj] {
			return true
		}
		if c.p.ExemptAt(id.Pos(), DirScratchOK) {
			return true
		}
		c.p.Reportf(id.Pos(), "use of pool-backed scratch %s after it was returned with Put", id.Name)
		return true
	})
}

// exprTainted reports whether e evaluates to scratch-backed memory
// under state st.
func (c *scratchCtx) exprTainted(e ast.Expr, st *scratchState) bool {
	info := c.p.Pkg.Info
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(info, e)
		return obj != nil && st.tainted[obj]
	case *ast.SelectorExpr:
		if c.arenaFields[info.Uses[e.Sel]] {
			return true
		}
		if c.isArenaType(info.TypeOf(e)) {
			return true
		}
		return c.exprTainted(e.X, st) && pointerish(info.TypeOf(e))
	case *ast.IndexExpr:
		return c.exprTainted(e.X, st) && pointerish(info.TypeOf(e))
	case *ast.SliceExpr:
		return c.exprTainted(e.X, st)
	case *ast.StarExpr:
		return c.exprTainted(e.X, st)
	case *ast.UnaryExpr:
		return e.Op == token.AND && c.exprTainted(e.X, st)
	case *ast.TypeAssertExpr:
		return c.exprTainted(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.exprTainted(el, st) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if isPoolGet(info, e) {
			return true
		}
		if callee := StaticCallee(info, e); callee != nil && c.returnsPooled[callee] {
			return true
		}
		if !pointerish(info.TypeOf(e)) {
			return false
		}
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok && c.exprTainted(sel.X, st) {
			return true
		}
		for _, arg := range e.Args {
			if c.exprTainted(arg, st) {
				return true
			}
		}
		return false
	}
	return false
}

// buildAliases pre-computes, flow-insensitively, which locals can
// share a backing store: direct binds x := y, x := *y, x := &y,
// x := y[...] join x and y's groups.
func (c *scratchCtx) buildAliases(body *ast.BlockStmt, entry *scratchState) *unionFind {
	info := c.p.Pkg.Info
	uf := newUnionFind()
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			l := objOf(info, id)
			r := rootObject(info, as.Rhs[i])
			if l != nil && r != nil {
				uf.union(l, r)
			}
		}
		return true
	})
	return uf
}

// rootObject returns the variable at the root of a chain of deref /
// address-of / index / slice / paren / type-assert wrappers, or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(info, e)
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	case *ast.StarExpr:
		return rootObject(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rootObject(info, e.X)
		}
	case *ast.IndexExpr:
		return rootObject(info, e.X)
	case *ast.SliceExpr:
		return rootObject(info, e.X)
	case *ast.TypeAssertExpr:
		return rootObject(info, e.X)
	}
	return nil
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	return isSyncPoolMethod(info, call, "Get") || isWorkerLocalGet(info, call)
}
func isPoolPut(info *types.Info, call *ast.CallExpr) bool { return isSyncPoolMethod(info, call, "Put") }

// isWorkerLocalGet matches (*WorkerLocal[T]).Get — the worker-scoped
// arena accessor (parallel.WorkerLocal in the real tree). A slot is
// reused by the next loop that runs on the same worker, so memory
// reached through Get carries the same epoch-scoped lifetime as a
// sync.Pool buffer. There is no Put: slots are never released, so only
// the taint rules (return / store / send) apply. Matching by receiver
// type name keeps the rule reachable from self-contained fixtures.
func isWorkerLocalGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "WorkerLocal"
}

func isSyncPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// pointerish reports whether values of type t can carry a reference to
// scratch backing memory. Scalars and strings cannot.
func pointerish(t types.Type) bool {
	return pointerishRec(t, make(map[types.Type]bool))
}

func pointerishRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerishRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return pointerishRec(u.Elem(), seen)
	}
	return false
}

// isPackageLevel reports whether obj is a package-scope variable.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// funcParams returns the parameter and receiver objects of a declared
// function.
func funcParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// litParams returns the parameter objects of a function literal.
func litParams(info *types.Info, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// unionFind is a tiny union-find over types.Object.
type unionFind struct {
	parent map[types.Object]types.Object
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[types.Object]types.Object)}
}

func (u *unionFind) find(o types.Object) types.Object {
	p, ok := u.parent[o]
	if !ok || p == o {
		u.parent[o] = o
		return o
	}
	r := u.find(p)
	u.parent[o] = r
	return r
}

func (u *unionFind) union(a, b types.Object) {
	u.parent[u.find(a)] = u.find(b)
}

// group returns every object sharing o's set (including o).
func (u *unionFind) group(o types.Object) []types.Object {
	root := u.find(o)
	var out []types.Object
	for obj := range u.parent {
		if u.find(obj) == root {
			//nessa:sorted-iteration the group feeds set-semantic release marking; order never observed
			out = append(out, obj)
		}
	}
	return out
}
