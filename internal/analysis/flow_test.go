package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// loadSrc type-checks one synthetic file as its own package and
// returns it. Each call uses a fresh loader so memoization never leaks
// between tests.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "nessa/internal/fixture/flowtest")
	if err != nil {
		t.Fatalf("loading synthetic package: %v", err)
	}
	return pkg
}

// funcBody returns the body of the named function in pkg.
func funcBody(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// reachable returns the set of blocks reachable from b.
func reachable(b *Block) map[*Block]bool {
	seen := map[*Block]bool{b: true}
	stack := []*Block{b}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cur.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func TestCFGIfJoin(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}
`)
	g := BuildCFG(funcBody(t, pkg, "f").Body)
	seen := reachable(g.Entry)
	if !seen[g.Exit] {
		t.Fatal("exit not reachable from entry")
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("exit block has successors: %v", g.Exit.Succs)
	}
	// The branch head must fork: two successors for then/else.
	forked := false
	for b := range seen {
		if len(b.Succs) == 2 {
			forked = true
		}
	}
	if !forked {
		t.Error("if/else produced no two-way branch block")
	}
	// All four assignments/returns must land in reachable blocks.
	nodes := 0
	for b := range seen {
		nodes += len(b.Nodes)
	}
	if nodes < 4 {
		t.Errorf("expected at least 4 reachable nodes, got %d", nodes)
	}
}

func TestCFGLoopHasCycleAndBreakEdge(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 7 {
			break
		}
		s += i
	}
	return s
}
`)
	g := BuildCFG(funcBody(t, pkg, "f").Body)
	seen := reachable(g.Entry)
	if !seen[g.Exit] {
		t.Fatal("exit not reachable (break edge missing)")
	}
	// A loop must put some block on a cycle: reachable from itself.
	cyclic := false
	for b := range seen {
		for s := range reachable(b) {
			if s != b {
				for _, back := range s.Succs {
					if back == b {
						cyclic = true
					}
				}
			}
		}
	}
	if !cyclic {
		t.Error("for loop produced an acyclic CFG")
	}
}

func TestCFGPanicTerminatesBlock(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(c bool) int {
	if c {
		panic("no")
	}
	return 1
}
`)
	g := BuildCFG(funcBody(t, pkg, "f").Body)
	// The node after a panic must not execute: the block holding the
	// panic call has no fallthrough successor carrying the return.
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						if i != len(b.Nodes)-1 {
							t.Error("panic is not the last node of its block")
						}
						// The only way out of a panic is the function
						// exit — no fallthrough to the return.
						if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
							t.Errorf("panic block must edge only to exit, got %v", b.Succs)
						}
					}
				}
			}
		}
	}
}

// nodeOf finds the block and index of the first node satisfying match.
func nodeOf(g *CFG, match func(ast.Node) bool) (*Block, int) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if match(n) {
				return b, i
			}
		}
	}
	return nil, 0
}

// assignTo matches an assignment whose first target is the named
// identifier.
func assignTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func objNamed(t *testing.T, pkg *Package, name string) types.Object {
	t.Helper()
	for id, obj := range pkg.Info.Defs {
		if obj != nil && id.Name == name {
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
		}
	}
	t.Fatalf("no variable %s defined in package", name)
	return nil
}

func TestReachingDefsJoin(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(p int) int {
	x := 1
	if p > 0 {
		x = 2
	}
	return x
}
`)
	fd := funcBody(t, pkg, "f")
	g := BuildCFG(fd.Body)
	rd := BuildReachingDefs(g, pkg.Info, nil)
	x := objNamed(t, pkg, "x")
	b, idx := nodeOf(g, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	if b == nil {
		t.Fatal("return node not found")
	}
	sites := rd.At(b, idx, x)
	if len(sites) != 2 {
		t.Fatalf("expected 2 reaching definitions of x at the return (x := 1 and x = 2), got %d", len(sites))
	}
	for _, s := range sites {
		if s.RHS == nil {
			t.Error("definition site lost its RHS expression")
		}
	}
}

func TestReachingDefsKill(t *testing.T) {
	pkg := loadSrc(t, `package p
func f() int {
	x := 1
	x = 2
	return x
}
`)
	fd := funcBody(t, pkg, "f")
	g := BuildCFG(fd.Body)
	rd := BuildReachingDefs(g, pkg.Info, nil)
	x := objNamed(t, pkg, "x")
	b, idx := nodeOf(g, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	sites := rd.At(b, idx, x)
	if len(sites) != 1 {
		t.Fatalf("straight-line overwrite must kill: expected 1 reaching def, got %d", len(sites))
	}
	if lit, ok := sites[0].RHS.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Errorf("surviving definition is not x = 2: %v", sites[0].RHS)
	}
}

func TestLiveness(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(p int) int {
	a := p
	b := a + 1
	if p > 0 {
		return b
	}
	return 0
}
`)
	fd := funcBody(t, pkg, "f")
	g := BuildCFG(fd.Body)
	lv := BuildLiveness(g, pkg.Info)
	a := objNamed(t, pkg, "a")

	ba, ia := nodeOf(g, assignTo("a"))
	bb, ib := nodeOf(g, assignTo("b"))
	if ba == nil || bb == nil {
		t.Fatal("assignment nodes not found")
	}
	if !lv.LiveAfter(ba, ia, a) {
		t.Error("a must be live after a := p (read by b := a + 1)")
	}
	if lv.LiveAfter(bb, ib, a) {
		t.Error("a must be dead after its last read")
	}
}

func TestCallGraphFixpoint(t *testing.T) {
	pkg := loadSrc(t, `package p
func a() int { return b() }
func b() int { return c() }
func c() int { return 1 }
func loner() int { return other() }
func other() int { return loner() }
`)
	cg := BuildCallGraph(pkg)
	if len(cg.Decls) != 5 {
		t.Fatalf("expected 5 declared functions, got %d", len(cg.Decls))
	}
	// Property: "returns a literal, or calls only functions with the
	// property". c holds it directly; b and a inherit it through the
	// fixpoint; the loner/other cycle never bootstraps.
	res := cg.Fixpoint(func(fn *types.Func, decl *ast.FuncDecl, cur map[*types.Func]bool) bool {
		ok := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			ret, isRet := n.(*ast.ReturnStmt)
			if !isRet || len(ret.Results) == 0 {
				return true
			}
			switch r := ret.Results[0].(type) {
			case *ast.BasicLit:
				ok = true
			case *ast.CallExpr:
				if callee := StaticCallee(pkg.Info, r); callee != nil && cur[callee] {
					ok = true
				}
			}
			return true
		})
		return ok
	})
	got := make(map[string]bool)
	for fn, v := range res {
		got[fn.Name()] = v
	}
	for _, name := range []string{"a", "b", "c"} {
		if !got[name] {
			t.Errorf("%s should reach the fixpoint property", name)
		}
	}
	for _, name := range []string{"loner", "other"} {
		if got[name] {
			t.Errorf("%s is a bare cycle and must stay false", name)
		}
	}
}

func TestByNameTrimsAndDeduplicates(t *testing.T) {
	az, err := ByName([]string{" fma", " hotpath ", "hotpath", ""})
	if err != nil {
		t.Fatal(err)
	}
	if len(az) != 2 {
		names := make([]string, 0, len(az))
		for _, a := range az {
			names = append(names, a.Name)
		}
		t.Fatalf("expected [fma hotpath], got %v", names)
	}
	if az[0].Name != "fma" || az[1].Name != "hotpath" {
		t.Errorf("wrong analyzers: %s, %s", az[0].Name, az[1].Name)
	}
	if _, err := ByName([]string{"fma", "nosuch"}); err == nil {
		t.Error("unknown analyzer name must error")
	}
}

// TestRunDeterministic loads the same fixture tree twice through
// independent loaders and requires byte-identical finding sequences —
// the ordering contract CI diffs and baselines depend on.
func TestRunDeterministic(t *testing.T) {
	root := repoRoot(t)
	dirs := []struct{ dir, path string }{
		{"concurrency", "nessa/internal/fixture/concurrency"},
		{"scratchlife", "nessa/internal/fixture/scratchlife"},
		{"seedflow", "nessa/internal/fixture/seedflow"},
	}
	load := func() []string {
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		var pkgs []*Package
		for _, d := range dirs {
			pkg, err := l.LoadDir(filepath.Join(root, "internal", "analysis", "testdata", d.dir), d.path)
			if err != nil {
				t.Fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
		var out []string
		for _, f := range Run(pkgs, All()) {
			out = append(out, f.String())
		}
		return out
	}
	first, second := load(), load()
	if len(first) == 0 {
		t.Fatal("fixture tree produced no findings; determinism test is vacuous")
	}
	if len(first) != len(second) {
		t.Fatalf("finding counts differ across loads: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("finding %d differs across loads:\n  %s\n  %s", i, first[i], second[i])
		}
	}
}

func TestBaselineDiff(t *testing.T) {
	mk := func(analyzer, file string, line int, msg string) Finding {
		return Finding{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: file, Line: line, Column: 1},
			Severity: SeverityError,
			Message:  msg,
		}
	}
	root := string(filepath.Separator) + "repo"
	old := []Finding{
		mk("seedflow", filepath.Join(root, "a.go"), 10, "hard-coded seed"),
		mk("seedflow", filepath.Join(root, "a.go"), 20, "hard-coded seed"),
	}
	base := NewBaseline(old, root)

	// Identical findings are absorbed, even at shifted lines.
	shifted := []Finding{
		mk("seedflow", filepath.Join(root, "a.go"), 13, "hard-coded seed"),
		mk("seedflow", filepath.Join(root, "a.go"), 27, "hard-coded seed"),
	}
	if fresh := base.Diff(shifted, root); len(fresh) != 0 {
		t.Errorf("line-shifted findings should be baselined, got %d fresh", len(fresh))
	}

	// A third instance of the same key exceeds the recorded count.
	three := append(shifted, mk("seedflow", filepath.Join(root, "a.go"), 30, "hard-coded seed"))
	if fresh := base.Diff(three, root); len(fresh) != 1 {
		t.Errorf("count overflow must surface: want 1 fresh, got %d", len(fresh))
	}

	// New file, new analyzer, or new message → fresh.
	for _, f := range []Finding{
		mk("seedflow", filepath.Join(root, "b.go"), 10, "hard-coded seed"),
		mk("scratchlife", filepath.Join(root, "a.go"), 10, "hard-coded seed"),
		mk("seedflow", filepath.Join(root, "a.go"), 10, "other message"),
	} {
		if fresh := base.Diff([]Finding{f}, root); len(fresh) != 1 {
			t.Errorf("%v should be fresh against the baseline", f)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")

	// A missing file is the empty baseline.
	empty, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Entries) != 0 {
		t.Fatalf("missing baseline should be empty, got %d entries", len(empty.Entries))
	}

	root := string(filepath.Separator) + "repo"
	findings := []Finding{
		{Analyzer: "concurrency", Pos: token.Position{Filename: filepath.Join(root, "x.go"), Line: 5, Column: 2}, Message: "m1"},
		{Analyzer: "concurrency", Pos: token.Position{Filename: filepath.Join(root, "x.go"), Line: 9, Column: 2}, Message: "m1"},
		{Analyzer: "seedflow", Pos: token.Position{Filename: filepath.Join(root, "y.go"), Line: 1, Column: 1}, Message: "m2"},
	}
	if err := NewBaseline(findings, root).Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != 2 {
		t.Fatalf("expected 2 aggregated entries, got %d", len(loaded.Entries))
	}
	if fresh := loaded.Diff(findings, root); len(fresh) != 0 {
		t.Errorf("round-tripped baseline must absorb its own findings, got %d fresh", len(fresh))
	}
}

// TestCFGLabeledBreakExitsOuterLoop pins the successor edge of a
// labeled break: it must leave the labeled (outer) loop entirely, not
// just the innermost one. shapecheck's joins ride on these edges.
func TestCFGLabeledBreakExitsOuterLoop(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				s = 1
				break outer
			}
		}
		s = 2
	}
	s = 3
	return s
}
`)
	g := BuildCFG(funcBody(t, pkg, "f").Body)
	// Pin each s-assignment block by its constant right-hand side.
	var breakBlock, afterOuter, innerTail *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			lit, ok := as.Rhs[0].(*ast.BasicLit)
			if !ok {
				continue
			}
			switch lit.Value {
			case "1":
				breakBlock = b
			case "2":
				innerTail = b
			case "3":
				afterOuter = b
			}
		}
	}
	if breakBlock == nil || innerTail == nil || afterOuter == nil {
		t.Fatal("could not locate the three s-assignments in the CFG")
	}
	seen := reachable(breakBlock)
	if !seen[afterOuter] {
		t.Error("break outer: the statement after the outer loop is not reachable")
	}
	if seen[innerTail] {
		t.Error("break outer fell back into the outer loop body (labeled break mishandled)")
	}
}

// TestCFGLabeledContinueTargetsOuterPost pins labeled continue: its
// successor must be the labeled loop's post statement, not the inner
// loop's.
func TestCFGLabeledContinueTargetsOuterPost(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				s = 1
				continue outer
			}
		}
	}
	return s
}
`)
	g := BuildCFG(funcBody(t, pkg, "f").Body)
	var contBlock, outerPost, innerPost *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if lit, ok := n.Rhs[0].(*ast.BasicLit); ok && lit.Value == "1" {
					contBlock = b
				}
			case *ast.IncDecStmt:
				if id, ok := n.X.(*ast.Ident); ok {
					switch id.Name {
					case "i":
						outerPost = b
					case "j":
						innerPost = b
					}
				}
			}
		}
	}
	if contBlock == nil || outerPost == nil || innerPost == nil {
		t.Fatal("could not locate the continue block and loop posts in the CFG")
	}
	succs := make(map[*Block]bool)
	for _, s := range contBlock.Succs {
		succs[s] = true
	}
	if !succs[outerPost] {
		t.Error("continue outer does not edge to the outer loop's post statement")
	}
	if succs[innerPost] {
		t.Error("continue outer edges to the inner loop's post statement (label ignored)")
	}
}

// TestCFGGotoForwardSkips pins forward goto: the skipped statement
// must not be reachable from the jump, while the label target is.
func TestCFGGotoForwardSkips(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(c bool) int {
	s := 0
	if c {
		s = 9
		goto done
	}
	s = 1
done:
	s = 2
	return s
}
`)
	g := BuildCFG(funcBody(t, pkg, "f").Body)
	// Branch statements carry no node of their own — the jump is pure
	// edges — so the goto's block is pinned by the s = 9 marker
	// immediately before it.
	var gotoBlock, skipped, target *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
				switch lit.Value {
				case "9":
					gotoBlock = b
				case "1":
					skipped = b
				case "2":
					target = b
				}
			}
		}
	}
	if gotoBlock == nil || skipped == nil || target == nil {
		t.Fatal("could not locate goto, skipped, and target blocks in the CFG")
	}
	seen := reachable(gotoBlock)
	if !seen[target] {
		t.Error("goto done: label target not reachable from the jump")
	}
	if seen[skipped] {
		t.Error("goto done: the skipped statement is reachable from the jump")
	}
}

// TestCFGGotoBackwardFormsCycle pins backward goto: it must create a
// loop in the graph (and the exit must stay reachable through the
// conditional).
func TestCFGGotoBackwardFormsCycle(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(n int) int {
	i := 0
again:
	i++
	if i < n {
		goto again
	}
	return i
}
`)
	g := BuildCFG(funcBody(t, pkg, "f").Body)
	var incBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if inc, ok := n.(*ast.IncDecStmt); ok {
				if id, ok := inc.X.(*ast.Ident); ok && id.Name == "i" {
					incBlock = b
				}
			}
		}
	}
	if incBlock == nil {
		t.Fatal("could not locate the i++ block in the CFG")
	}
	if !reachable(incBlock)[incBlock] {
		// reachable() seeds with the block itself, so probe successors.
		t.Fatal("unreachable")
	}
	cyclic := false
	for _, s := range incBlock.Succs {
		if reachable(s)[incBlock] {
			cyclic = true
		}
	}
	if !cyclic {
		t.Error("backward goto produced an acyclic CFG")
	}
	if !reachable(g.Entry)[g.Exit] {
		t.Error("exit not reachable: the conditional around the goto lost its fallthrough edge")
	}
}
