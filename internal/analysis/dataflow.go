package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// objOf resolves an identifier to its object via Uses or Defs (the
// *types.Info counterpart of objectOf, for code that has no Pass).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// Iterative dataflow over the CFG of one function. Two classic
// problems are provided — reaching definitions (forward) and live
// variables (backward) — plus the generic worklist solver they share,
// which the concurrency analyzer reuses for its lock-state lattice.

// Direction selects forward or backward propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// FlowSpec describes one dataflow problem over states of type S.
// Merge joins src into dst and reports whether dst changed; Transfer
// maps a block's in-state (its own copy) to its out-state.
type FlowSpec[S any] struct {
	Dir      Direction
	Boundary func() S // state entering Entry (forward) / Exit (backward)
	Bottom   func() S // initial state elsewhere
	Copy     func(S) S
	Merge    func(dst, src S) bool
	Transfer func(b *Block, in S) S
}

// Solve runs the worklist algorithm to fixpoint and returns the
// in-state of every block (state before the block executes in the
// direction of flow).
func Solve[S any](g *CFG, spec FlowSpec[S]) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	out := make(map[*Block]S, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = spec.Bottom()
		out[b] = spec.Bottom()
	}
	boundary := g.Entry
	if spec.Dir == Backward {
		boundary = g.Exit
	}
	in[boundary] = spec.Boundary()

	preds := func(b *Block) []*Block { return b.Preds }
	if spec.Dir == Backward {
		preds = func(b *Block) []*Block { return b.Succs }
	}

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make([]bool, len(g.Blocks))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		state := in[b]
		for _, p := range preds(b) {
			spec.Merge(state, out[p])
		}
		in[b] = state
		newOut := spec.Transfer(b, spec.Copy(state))
		if spec.Merge(out[b], newOut) {
			next := b.Succs
			if spec.Dir == Backward {
				next = b.Preds
			}
			for _, s := range next {
				if !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

// DefSite is one definition of a variable: the node that assigns it
// and, when syntactically available, the assigned expression. RHS is
// nil for definitions with no usable source expression (range
// variables, zero-value declarations, parameters).
type DefSite struct {
	Node ast.Node
	RHS  ast.Expr
	// FromCall marks a definition from one result of a multi-value
	// call or a range clause, where RHS (if set) is the whole
	// call/range expression rather than the value itself.
	FromCall bool
}

type defSet map[types.Object]map[DefSite]bool

// ReachingDefs holds, per block, the definitions live on entry.
type ReachingDefs struct {
	info *types.Info
	in   map[*Block]defSet
}

// BuildReachingDefs solves reaching definitions for one function body.
// params are the function's parameter (and receiver) objects, which
// act as boundary definitions with a nil RHS.
func BuildReachingDefs(g *CFG, info *types.Info, params []types.Object) *ReachingDefs {
	spec := FlowSpec[defSet]{
		Dir: Forward,
		Boundary: func() defSet {
			s := make(defSet)
			for _, p := range params {
				s[p] = map[DefSite]bool{{}: true}
			}
			return s
		},
		Bottom: func() defSet { return make(defSet) },
		Copy:   copyDefSet,
		Merge:  mergeDefSet,
		Transfer: func(b *Block, in defSet) defSet {
			for _, n := range b.Nodes {
				applyDefs(n, info, in)
			}
			return in
		},
	}
	return &ReachingDefs{info: info, in: Solve(g, spec)}
}

// At returns the definitions of obj reaching block b just before its
// idx-th node executes.
func (rd *ReachingDefs) At(b *Block, idx int, obj types.Object) []DefSite {
	state := copyDefSet(rd.in[b])
	for i := 0; i < idx && i < len(b.Nodes); i++ {
		applyDefs(b.Nodes[i], rd.info, state)
	}
	var out []DefSite
	for site := range state[obj] {
		//nessa:sorted-iteration consumers join over the site set; the lattice join is commutative
		out = append(out, site)
	}
	return out
}

func copyDefSet(s defSet) defSet {
	out := make(defSet, len(s))
	for o, sites := range s {
		cp := make(map[DefSite]bool, len(sites))
		for site := range sites {
			cp[site] = true
		}
		out[o] = cp
	}
	return out
}

func mergeDefSet(dst, src defSet) bool {
	changed := false
	for o, sites := range src {
		d := dst[o]
		if d == nil {
			d = make(map[DefSite]bool, len(sites))
			dst[o] = d
		}
		for site := range sites {
			if !d[site] {
				d[site] = true
				changed = true
			}
		}
	}
	return changed
}

// applyDefs updates the reaching-def state across one CFG node. Only
// whole-variable writes (plain identifier targets) kill; writes
// through selectors or indices mutate the referent, not the binding.
func applyDefs(n ast.Node, info *types.Info, state defSet) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		multi := len(n.Lhs) > 1 && len(n.Rhs) == 1
		for i, lhs := range n.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(info, id)
			if obj == nil {
				continue
			}
			site := DefSite{Node: n}
			if multi {
				site.RHS = n.Rhs[0]
				site.FromCall = true
			} else if i < len(n.Rhs) {
				site.RHS = n.Rhs[i]
			}
			state[obj] = map[DefSite]bool{site: true}
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				state[obj] = map[DefSite]bool{{Node: n, RHS: n.X}: true}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := objOf(info, name)
				if obj == nil || name.Name == "_" {
					continue
				}
				site := DefSite{Node: n}
				if len(vs.Values) == len(vs.Names) {
					site.RHS = vs.Values[i]
				} else if len(vs.Values) == 1 {
					site.RHS = vs.Values[0]
					site.FromCall = true
				}
				state[obj] = map[DefSite]bool{site: true}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
				if obj := objOf(info, id); obj != nil {
					state[obj] = map[DefSite]bool{{Node: n, RHS: n.X, FromCall: true}: true}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

type liveSet map[types.Object]bool

// Liveness holds, per block, the variables live on exit (the in-state
// of the backward problem).
type Liveness struct {
	info    *types.Info
	liveOut map[*Block]liveSet
}

// BuildLiveness solves live variables for one function body.
func BuildLiveness(g *CFG, info *types.Info) *Liveness {
	spec := FlowSpec[liveSet]{
		Dir:      Backward,
		Boundary: func() liveSet { return make(liveSet) },
		Bottom:   func() liveSet { return make(liveSet) },
		Copy: func(s liveSet) liveSet {
			out := make(liveSet, len(s))
			for o := range s {
				out[o] = true
			}
			return out
		},
		Merge: func(dst, src liveSet) bool {
			changed := false
			for o := range src {
				if !dst[o] {
					dst[o] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(b *Block, out liveSet) liveSet {
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				applyLiveness(b.Nodes[i], info, out)
			}
			return out
		},
	}
	return &Liveness{info: info, liveOut: Solve(g, spec)}
}

// LiveAfter reports whether obj is live immediately after block b's
// idx-th node.
func (lv *Liveness) LiveAfter(b *Block, idx int, obj types.Object) bool {
	state := make(liveSet, len(lv.liveOut[b]))
	for o := range lv.liveOut[b] {
		state[o] = true
	}
	for i := len(b.Nodes) - 1; i > idx; i-- {
		applyLiveness(b.Nodes[i], lv.info, state)
	}
	return state[obj]
}

// applyLiveness updates the live set backward across one node:
// kill whole-variable definitions, then generate uses.
func applyLiveness(n ast.Node, info *types.Info, live liveSet) {
	written := make(map[types.Object]bool)
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					written[obj] = true
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := unparen(e).(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					written[obj] = true
				}
			}
		}
	}
	for obj := range written {
		delete(live, obj)
	}
	for obj := range usedObjects(n, info) {
		live[obj] = true
	}
}

// usedObjects collects the variable objects read by node n. Plain
// identifier assignment targets are excluded (they are writes); bases
// of selector/index targets count as reads. Function literals read
// every free variable they mention. For a RangeStmt only the ranged
// expression counts — the body lives in other CFG blocks.
func usedObjects(n ast.Node, info *types.Info) map[types.Object]bool {
	used := make(map[types.Object]bool)
	if rs, ok := n.(*ast.RangeStmt); ok {
		n = rs.X
	}
	skip := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				// x = ... writes x; x += ... also reads it.
				if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
					skip[id] = true
				}
			}
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		if obj := objOf(info, id); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				used[obj] = true
			}
		}
		return true
	})
	return used
}
