// Package analysis implements nessa-vet, the repository's custom
// static-analysis suite. Five analyzers machine-check the source-level
// contracts the test suite otherwise only samples at runtime:
//
//   - determinism: no wall-clock or math/rand in device/core code
//   - maporder:    no order-sensitive accumulation over map iteration
//   - hotpath:     no allocating or formatting constructs in functions
//     annotated //nessa:hotpath
//   - fma:         no fusable a*b±c float expressions in the kernels
//   - errhygiene:  sentinel errors compared with errors.Is and wrapped
//     with %w, never matched by identity or message text
//
// Every analyzer reports position-accurate findings and honors a
// source-level opt-out annotation (see the directive constants below
// and DESIGN.md §4.7). The suite is built purely on the standard
// library — go/parser, go/ast, go/token, go/types with a
// source-loading importer — preserving the repository's
// no-external-dependency rule.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive names recognized after the "//nessa:" comment prefix.
const (
	// DirHotpath marks a function whose body must stay free of
	// allocating and formatting constructs (opt-in for the hotpath
	// analyzer).
	DirHotpath = "hotpath"
	// DirSortedIteration marks a map-range statement whose iteration
	// order has been made irrelevant or whose keys are externally
	// sorted (opt-out for maporder).
	DirSortedIteration = "sorted-iteration"
	// DirAllocOK exempts one flagged site inside a hotpath function
	// (e.g. a pool-miss refill or a once-per-call dispatch closure).
	DirAllocOK = "alloc-ok"
	// DirWallclock exempts one wall-clock or math/rand use from the
	// determinism analyzer.
	DirWallclock = "wallclock"
	// DirFMAOK exempts one fusable float expression from the fma
	// analyzer.
	DirFMAOK = "fma-ok"
	// DirErrOK exempts one error-handling site from errhygiene.
	DirErrOK = "err-ok"
	// DirArena marks a type or struct field whose memory is pooled or
	// epoch-scoped scratch (opt-in seed for the scratchlife analyzer):
	// values read from it are valid only until the owning pool Put or
	// the next epoch, and must not outlive that boundary.
	DirArena = "arena"
	// DirScratchOK waives one scratchlife escape: either a function
	// documented to hand out scratch-backed memory (ownership transfer
	// to a caller that returns it, or a view with a documented
	// lifetime), or a single flagged line.
	DirScratchOK = "scratch-ok"
	// DirSeedOK exempts one RNG/injector construction whose seed does
	// not flow from a configured seed (e.g. a documented deterministic
	// fallback for a nil RNG argument).
	DirSeedOK = "seed-ok"
	// DirSyncOK exempts one concurrency finding (e.g. a shared write
	// the caller serializes by other means).
	DirSyncOK = "sync-ok"
)

// Finding severities. Every rule reports SeverityError except the
// loop-variable-capture rule, which is a contract violation but — with
// the module at go >= 1.22 per-iteration loop variables — no longer a
// language-level data race.
const (
	SeverityError = "error"
	SeverityWarn  = "warn"
)

// Finding is one diagnostic: where, which analyzer, how severe, and
// why.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Severity string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		MapOrderAnalyzer(),
		HotPathAnalyzer(),
		FMAAnalyzer(),
		ErrHygieneAnalyzer(),
		ConcurrencyAnalyzer(),
		ScratchLifeAnalyzer(),
		SeedFlowAnalyzer(),
	}
}

// ByName returns the named analyzers, or an error naming the first
// unknown one. Names are trimmed of surrounding whitespace (so
// "fma, hotpath" works) and deduplicated in first-occurrence order;
// empty segments are ignored.
func ByName(names []string) ([]*Analyzer, error) {
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	seen := make(map[string]bool)
	var out []*Analyzer
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass is the per-package context handed to an analyzer's Run.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	findings *[]Finding
	// directives maps filename -> line -> directive names present on
	// that line, for line-level opt-out lookup.
	directives map[string]map[int][]string
}

// Reportf records a finding at pos with SeverityError.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, SeverityError, format, args...)
}

// Warnf records a finding at pos with SeverityWarn.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.report(pos, SeverityWarn, format, args...)
}

func (p *Pass) report(pos token.Pos, severity, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Severity: severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExemptAt reports whether the line of pos, or the line immediately
// above it, carries the named //nessa: directive — the suite's
// site-level opt-out convention.
func (p *Pass) ExemptAt(pos token.Pos, name string) bool {
	position := p.Pkg.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, d := range lines[position.Line] {
		if d == name {
			return true
		}
	}
	for _, d := range lines[position.Line-1] {
		if d == name {
			return true
		}
	}
	return false
}

// parseDirective extracts the directive name from one comment, or ""
// if the comment is not a //nessa: directive. Trailing words after the
// name are free-form justification text:
//
//	//nessa:alloc-ok pool miss, steady state reuses the buffer
func parseDirective(text string) string {
	rest, ok := strings.CutPrefix(text, "//nessa:")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest)
}

// HasDirective reports whether a doc comment group carries the named
// //nessa: directive (function-level annotations such as hotpath).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if parseDirective(c.Text) == name {
			return true
		}
	}
	return false
}

// buildDirectives indexes every //nessa: comment in the package by
// file and line.
func buildDirectives(pkg *Package) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseDirective(c.Text)
				if name == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return out
}

// Run executes the given analyzers over the given packages and returns
// all findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs := buildDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Pkg:        pkg,
				analyzer:   a,
				findings:   &findings,
				directives: dirs,
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}

// pathIn reports whether importPath equals one of the prefixes or sits
// beneath one of them ("nessa/internal/tensor" matches prefix
// "nessa/internal/tensor" and so does "nessa/internal/tensor/sub").
func pathIn(importPath string, prefixes ...string) bool {
	for _, p := range prefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}
