// Package analysis implements nessa-vet, the repository's custom
// static-analysis suite. Nine analyzers machine-check the source-level
// contracts the test suite otherwise only samples at runtime:
//
//   - determinism: no wall-clock or math/rand in device/core code
//   - maporder:    no order-sensitive accumulation over map iteration
//   - hotpath:     no allocating or formatting constructs in functions
//     annotated //nessa:hotpath
//   - fma:         no fusable a*b±c float expressions in the kernels
//   - errhygiene:  sentinel errors compared with errors.Is and wrapped
//     with %w, never matched by identity or message text
//   - concurrency: loop capture, unsynchronized shared writes, copied
//     locks, and divergent lock-state paths
//   - scratchlife: pooled/arena scratch must not outlive its epoch
//   - seedflow:    RNG seeds must flow from configuration
//   - shapecheck:  tensor dimensions must agree symbolically across
//     the tensor/nn/data APIs and //nessa:shape contracts
//
// A second, compiler-evidence suite (escapecheck, inlinegate,
// bcecheck, asmfma) runs under nessa-vet -compiler against an
// instrumented build; see README's analyzer reference table.
//
// Every analyzer reports position-accurate findings and honors a
// source-level opt-out annotation (see the directive constants below
// and DESIGN.md §4.7). The suite is built purely on the standard
// library — go/parser, go/ast, go/token, go/types with a
// source-loading importer — preserving the repository's
// no-external-dependency rule.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive names recognized after the "//nessa:" comment prefix.
const (
	// DirHotpath marks a function whose body must stay free of
	// allocating and formatting constructs (opt-in for the hotpath
	// analyzer).
	DirHotpath = "hotpath"
	// DirSortedIteration marks a map-range statement whose iteration
	// order has been made irrelevant or whose keys are externally
	// sorted (opt-out for maporder).
	DirSortedIteration = "sorted-iteration"
	// DirAllocOK exempts one flagged site inside a hotpath function
	// (e.g. a pool-miss refill or a once-per-call dispatch closure).
	DirAllocOK = "alloc-ok"
	// DirWallclock exempts one wall-clock or math/rand use from the
	// determinism analyzer.
	DirWallclock = "wallclock"
	// DirFMAOK exempts one fusable float expression from the fma
	// analyzer.
	DirFMAOK = "fma-ok"
	// DirErrOK exempts one error-handling site from errhygiene.
	DirErrOK = "err-ok"
	// DirArena marks a type or struct field whose memory is pooled or
	// epoch-scoped scratch (opt-in seed for the scratchlife analyzer):
	// values read from it are valid only until the owning pool Put or
	// the next epoch, and must not outlive that boundary.
	DirArena = "arena"
	// DirScratchOK waives one scratchlife escape: either a function
	// documented to hand out scratch-backed memory (ownership transfer
	// to a caller that returns it, or a view with a documented
	// lifetime), or a single flagged line.
	DirScratchOK = "scratch-ok"
	// DirSeedOK exempts one RNG/injector construction whose seed does
	// not flow from a configured seed (e.g. a documented deterministic
	// fallback for a nil RNG argument).
	DirSeedOK = "seed-ok"
	// DirSyncOK exempts one concurrency finding (e.g. a shared write
	// the caller serializes by other means).
	DirSyncOK = "sync-ok"
	// DirInline marks a leaf kernel that must stay within gc's inline
	// budget and actually inline at hot call sites (opt-in for the
	// inlinegate compiler-evidence analyzer).
	DirInline = "inline"
	// DirInlineOK exempts one call site to a //nessa:inline function
	// from the must-inline rule (a cold or dispatch-amortized call).
	DirInlineOK = "inline-ok"
	// DirBCEOK exempts one surviving bounds check in a hot inner loop
	// from the bcecheck compiler-evidence analyzer, with a
	// justification for why it cannot (or need not) be eliminated.
	DirBCEOK = "bce-ok"
	// DirShape declares a shape contract on a function or struct field
	// (opt-in boundary facts for the shapecheck analyzer):
	//
	//	//nessa:shape(features: len=nf, buf: minlen=10+4*nf)
	//
	// Clause targets name parameters (omitted on struct fields, where
	// the field itself is the target); keys are rows/cols/len/minlen
	// and dims are integer expressions over named symbols.
	DirShape = "shape"
	// DirShapeOK waives one shapecheck finding, with a justification
	// for why the flagged dimensions are in fact compatible.
	DirShapeOK = "shape-ok"
)

// Finding severities. Every rule reports SeverityError except the
// loop-variable-capture rule, which is a contract violation but — with
// the module at go >= 1.22 per-iteration loop variables — no longer a
// language-level data race.
const (
	SeverityError = "error"
	SeverityWarn  = "warn"
)

// Finding is one diagnostic: where, which analyzer, how severe, and
// why. Suggestion names the //nessa:* waiver directive applicable at
// the site (empty when no directive can waive the rule), so editor and
// CI integrations can render a quick-fix.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Severity   string
	Message    string
	Suggestion string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// JSONFinding is the wire form of a Finding emitted by nessa-vet
// -json: one object per line. It round-trips losslessly with
// ToJSON/FromJSON.
type JSONFinding struct {
	Analyzer   string `json:"analyzer"`
	Severity   string `json:"severity"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

// ToJSON converts a Finding to its wire form.
func ToJSON(f Finding) JSONFinding {
	return JSONFinding{
		Analyzer:   f.Analyzer,
		Severity:   f.Severity,
		File:       f.Pos.Filename,
		Line:       f.Pos.Line,
		Col:        f.Pos.Column,
		Message:    f.Message,
		Suggestion: f.Suggestion,
	}
}

// FromJSON converts a wire-form finding back to a Finding.
func FromJSON(j JSONFinding) Finding {
	return Finding{
		Analyzer:   j.Analyzer,
		Severity:   j.Severity,
		Pos:        token.Position{Filename: j.File, Line: j.Line, Column: j.Col},
		Message:    j.Message,
		Suggestion: j.Suggestion,
	}
}

// Analyzer is one named check run over a type-checked package. Waiver
// names the //nessa:* directive that exempts one flagged site (empty
// when the analyzer has no site-level waiver); it is copied into every
// finding's Suggestion.
type Analyzer struct {
	Name   string
	Doc    string
	Waiver string
	Run    func(*Pass)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		MapOrderAnalyzer(),
		HotPathAnalyzer(),
		FMAAnalyzer(),
		ErrHygieneAnalyzer(),
		ConcurrencyAnalyzer(),
		ScratchLifeAnalyzer(),
		SeedFlowAnalyzer(),
		ShapeCheckAnalyzer(),
	}
}

// CompilerAll returns the compiler-evidence analyzer suite in a
// stable order. These run only under nessa-vet -compiler, with an
// Evidence attached to the pass; they are not part of All() because
// they are inert without an instrumented build.
func CompilerAll() []*Analyzer {
	return []*Analyzer{
		EscapeCheckAnalyzer(),
		InlineGateAnalyzer(),
		BCECheckAnalyzer(),
		AsmFMAAnalyzer(),
	}
}

// ByName returns the named analyzers, or an error naming the first
// unknown one. Both the source-level and compiler-evidence suites are
// addressable. Names are trimmed of surrounding whitespace (so
// "fma, hotpath" works) and deduplicated in first-occurrence order;
// empty segments are ignored.
func ByName(names []string) ([]*Analyzer, error) {
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	for _, a := range CompilerAll() {
		index[a.Name] = a
	}
	seen := make(map[string]bool)
	var out []*Analyzer
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		a, ok := index[n]
		if !ok {
			valid := make([]string, 0, len(index))
			for name := range index {
				//nessa:sorted-iteration keys are sorted immediately below
				valid = append(valid, name)
			}
			sort.Strings(valid)
			return nil, fmt.Errorf("analysis: unknown analyzer %q (valid: %s)", n, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass is the per-package context handed to an analyzer's Run.
type Pass struct {
	Pkg *Package
	// Universe lists every package of the current Run, the one under
	// analysis included, so cross-package indexes (shapecheck's
	// contract and summary caches) can see declarations in sibling
	// packages of the same load.
	Universe []*Package
	analyzer *Analyzer
	findings *[]Finding
	// directives maps filename -> line -> directive names present on
	// that line, for line-level opt-out lookup.
	directives map[string]map[int][]string
	// Evidence carries the parsed instrumented-build facts during a
	// nessa-vet -compiler run; nil for source-level passes. The
	// compiler-evidence analyzers report nothing when it is nil.
	Evidence *Evidence
	// ledger accumulates per-package evidence tallies during a
	// compiler run; nil otherwise.
	ledger *Ledger
}

// Metric bumps a ledger tally for the current package. A no-op when
// no ledger is attached (source-level passes, fixture tests that do
// not care about counts).
func (p *Pass) Metric(name string, delta int) {
	if p.ledger != nil {
		p.ledger.Add(p.Pkg.ImportPath, name, delta)
	}
}

// PosAt translates an evidence fact position (absolute file, 1-based
// line and column) into a token.Pos of the package's file set, so
// facts can be tested against AST spans and directive lines. Returns
// token.NoPos when the file is not part of this package's load or the
// line is out of range.
func (p *Pass) PosAt(file string, line, col int) token.Pos {
	var tf *token.File
	p.Pkg.Fset.Iterate(func(f *token.File) bool {
		if f.Name() == file {
			tf = f
			return false
		}
		return true
	})
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	pos := tf.LineStart(line)
	if col > 1 {
		// Columns are byte offsets within the line; clamp to the file.
		off := tf.Offset(pos) + col - 1
		if off >= tf.Size() {
			off = tf.Size() - 1
		}
		pos = tf.Pos(off)
	}
	return pos
}

// Reportf records a finding at pos with SeverityError.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, SeverityError, format, args...)
}

// Warnf records a finding at pos with SeverityWarn.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.report(pos, SeverityWarn, format, args...)
}

func (p *Pass) report(pos token.Pos, severity, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer:   p.analyzer.Name,
		Pos:        p.Pkg.Fset.Position(pos),
		Severity:   severity,
		Message:    fmt.Sprintf(format, args...),
		Suggestion: p.analyzer.Waiver,
	})
}

// ReportPosition records a finding at an already-resolved file
// position — the escape hatch for facts about files the FileSet does
// not cover (hand-written assembly scanned by asmfma).
func (p *Pass) ReportPosition(pos token.Position, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer:   p.analyzer.Name,
		Pos:        pos,
		Severity:   SeverityError,
		Message:    fmt.Sprintf(format, args...),
		Suggestion: p.analyzer.Waiver,
	})
}

// ExemptAt reports whether the line of pos, or the line immediately
// above it, carries the named //nessa: directive — the suite's
// site-level opt-out convention.
func (p *Pass) ExemptAt(pos token.Pos, name string) bool {
	position := p.Pkg.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, d := range lines[position.Line] {
		if d == name {
			return true
		}
	}
	for _, d := range lines[position.Line-1] {
		if d == name {
			return true
		}
	}
	return false
}

// parseDirective extracts the directive name from one comment, or ""
// if the comment is not a //nessa: directive. Trailing words after the
// name are free-form justification text:
//
//	//nessa:alloc-ok pool miss, steady state reuses the buffer
func parseDirective(text string) string {
	rest, ok := strings.CutPrefix(text, "//nessa:")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest)
}

// HasDirective reports whether a doc comment group carries the named
// //nessa: directive (function-level annotations such as hotpath).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if parseDirective(c.Text) == name {
			return true
		}
	}
	return false
}

// buildDirectives indexes every //nessa: comment in the package by
// file and line.
func buildDirectives(pkg *Package) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseDirective(c.Text)
				if name == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return out
}

// Run executes the given analyzers over the given packages and returns
// all findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return run(pkgs, analyzers, nil)
}

// RunCompiler executes compiler-evidence analyzers over the packages
// with the parsed facts of an instrumented build attached, returning
// the findings plus the per-package evidence ledger. Before the
// analyzers run, every //nessa:inline declaration across the loaded
// packages is indexed into the evidence so inlinegate's call-site rule
// resolves annotated callees across package boundaries.
func RunCompiler(pkgs []*Package, analyzers []*Analyzer, ev *Evidence) ([]Finding, *Ledger) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !HasDirective(fn.Doc, DirInline) {
					continue
				}
				pos := pkg.Fset.Position(fn.Name.Pos())
				ev.markInline(pos.Filename, pos.Line, fn.Name.Name)
			}
		}
	}
	ledger := NewLedger(ev.GoVersion)
	findings := run(pkgs, analyzers, &compilerCtx{ev: ev, ledger: ledger})
	return findings, ledger
}

type compilerCtx struct {
	ev     *Evidence
	ledger *Ledger
}

func run(pkgs []*Package, analyzers []*Analyzer, ctx *compilerCtx) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs := buildDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Pkg:        pkg,
				Universe:   pkgs,
				analyzer:   a,
				findings:   &findings,
				directives: dirs,
			}
			if ctx != nil {
				pass.Evidence = ctx.ev
				pass.ledger = ctx.ledger
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}

// pathIn reports whether importPath equals one of the prefixes or sits
// beneath one of them ("nessa/internal/tensor" matches prefix
// "nessa/internal/tensor" and so does "nessa/internal/tensor/sub").
func pathIn(importPath string, prefixes ...string) bool {
	for _, p := range prefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}
