package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAnalyzer enforces the zero-allocation contract on functions
// annotated //nessa:hotpath in their doc comment: no make, new, or
// append (each may allocate or grow), no composite literals, no
// closures, no fmt.* calls, and no string concatenation. These are the
// functions whose AllocsPerRun budgets the trainer and gradcheck tests
// pin at runtime; the annotation pins the same property syntactically
// so a regression is caught at vet time, with a file:line, instead of
// by a benchmark gate.
//
// Two construct classes are recognized as legitimate and exempted
// automatically:
//
//   - arguments of panic(...) — the failure path never runs hot;
//   - make/new/append/composite-literal/closure sites inside an if
//     whose condition calls len or cap — the amortized warm-up growth
//     idiom (buffers grow to high-water capacity once, then steady
//     state allocates nothing).
//
// Anything else needs a //nessa:alloc-ok annotation on (or above) the
// line, with a justification (e.g. a pool-miss refill, or a
// once-per-dispatch closure amortized over a whole banded GEMM).
func HotPathAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "hotpath",
		Waiver: DirAllocOK,
		Doc:    "forbid allocating and formatting constructs in //nessa:hotpath functions",
		Run:    runHotPath,
	}
}

func runHotPath(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !HasDirective(fn.Doc, DirHotpath) {
				continue
			}
			checkHotPathBody(p, fn)
		}
	}
}

// span is a half-open position interval [lo, hi).
type span struct{ lo, hi token.Pos }

func (s span) contains(pos token.Pos) bool { return s.lo <= pos && pos < s.hi }

func anyContains(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

// hotExemptSpans computes the two automatically exempt position
// classes of a hotpath function body: panic arguments (the failure
// path never runs hot) and bodies of ifs whose condition calls len or
// cap (the amortized warm-up growth idiom). Shared by the source-level
// hotpath analyzer and the compiler-evidence escapecheck analyzer so
// both excuse exactly the same sites.
func hotExemptSpans(p *Pass, fn *ast.FuncDecl) (panicSpans, guardSpans []span) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(p, n.Fun, "panic") {
				panicSpans = append(panicSpans, span{n.Lparen, n.Rparen + 1})
			}
		case *ast.IfStmt:
			if condHasLenOrCap(p, n.Cond) {
				guardSpans = append(guardSpans, span{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	return panicSpans, guardSpans
}

func checkHotPathBody(p *Pass, fn *ast.FuncDecl) {
	panicSpans, guardSpans := hotExemptSpans(p, fn)

	// allocFlag reports an allocation-class construct, honoring the
	// growth-guard spans and the alloc-ok annotation.
	allocFlag := func(pos token.Pos, what string) {
		if anyContains(panicSpans, pos) || anyContains(guardSpans, pos) {
			return
		}
		if p.ExemptAt(pos, DirAllocOK) {
			return
		}
		p.Reportf(pos, "%s in //nessa:hotpath function %s: the steady-state training path must not allocate (annotate //nessa:alloc-ok with a justification if this site is amortized)", what, fn.Name.Name)
	}
	// coldFlag reports a formatting-class construct: never excused by a
	// growth guard, only by panic context or an explicit annotation.
	coldFlag := func(pos token.Pos, what string) {
		if anyContains(panicSpans, pos) {
			return
		}
		if p.ExemptAt(pos, DirAllocOK) {
			return
		}
		p.Reportf(pos, "%s in //nessa:hotpath function %s (annotate //nessa:alloc-ok with a justification if unavoidable)", what, fn.Name.Name)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(p, n.Fun, "make"):
				allocFlag(n.Pos(), "make")
			case isBuiltin(p, n.Fun, "new"):
				allocFlag(n.Pos(), "new")
			case isBuiltin(p, n.Fun, "append"):
				allocFlag(n.Pos(), "append (may grow the backing array)")
			default:
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
					if isSyncPoolMethod(p.Pkg.Info, n, "Get") || isSyncPoolMethod(p.Pkg.Info, n, "Put") {
						// sync.Pool is wrong on the steady-state path twice
						// over: Get allocates on a miss, and the GC drains
						// the pool between epochs so misses recur forever.
						coldFlag(n.Pos(), "sync.Pool."+sel.Sel.Name+" (the GC drains sync.Pool, so misses — and their allocations — recur; use a parallel.WorkerLocal arena or a persistent free list)")
					} else if obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
						obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
						coldFlag(n.Pos(), "call to fmt."+obj.Name())
					}
				}
			}
		case *ast.CompositeLit:
			allocFlag(n.Pos(), "composite literal")
		case *ast.FuncLit:
			allocFlag(n.Pos(), "closure (function literal captures escape to the heap)")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.Pkg.Info.TypeOf(n)) && !isConstant(p, n) {
				coldFlag(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(p.Pkg.Info.TypeOf(n.Lhs[0])) {
				coldFlag(n.Pos(), "string concatenation")
			}
		}
		return true
	})
}

// condHasLenOrCap reports whether cond contains a call to the len or
// cap builtin — the signature of an amortized growth guard.
func condHasLenOrCap(p *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isBuiltin(p, call.Fun, "len") || isBuiltin(p, call.Fun, "cap") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isString reports whether t is (or has underlying) string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstant reports whether the expression is a compile-time constant
// (constant folding happens before codegen, so constant concatenation
// never allocates at run time).
func isConstant(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
