package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are the package-level time functions that read or
// depend on the wall clock. Device and core code must express time on
// the simulated clock (internal/simtime) so that every experiment is
// reproducible and independent of host speed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// DeterminismAnalyzer forbids wall-clock reads (time.Now, time.Since,
// time.Sleep, ...) and math/rand imports outside the benchmark
// harness, command binaries, and examples. Core and device code must
// use internal/simtime for time and the seeded SplitMix64 generators
// (tensor.RNG) for randomness, so that selection subsets and training
// trajectories replay bit-identically from a single seed.
//
// Opt-out: //nessa:wallclock on (or immediately above) the offending
// line.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "determinism",
		Waiver: DirWallclock,
		Doc:    "forbid wall-clock and math/rand outside bench, cmd, and examples",
		Run:    runDeterminism,
	}
}

// determinismExempt reports whether a package may legitimately touch
// the wall clock: benchmark emitters measure real elapsed time, and
// command/example binaries stamp reports with real dates.
func determinismExempt(module, importPath string) bool {
	return pathIn(importPath,
		module+"/internal/bench",
		module+"/cmd",
		module+"/examples",
	)
}

func runDeterminism(p *Pass) {
	module := moduleOf(p.Pkg.ImportPath)
	if determinismExempt(module, p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				if p.ExemptAt(imp.Pos(), DirWallclock) {
					continue
				}
				p.Reportf(imp.Pos(),
					"import of %s: device/core code must use the seeded deterministic RNGs (tensor.RNG) so runs replay from a single seed", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !wallClockFuncs[fn.Name()] {
				return true
			}
			if p.ExemptAt(sel.Pos(), DirWallclock) {
				return true
			}
			p.Reportf(sel.Pos(),
				"call to time.%s reads the wall clock: device/core code must use internal/simtime so experiments are deterministic", fn.Name())
			return true
		})
	}
}

// moduleOf extracts the module path prefix from an import path of this
// repository ("nessa/internal/x" -> "nessa"). Fixture packages use
// synthetic paths under the real module, so the first segment is
// always the module.
func moduleOf(importPath string) string {
	if i := strings.Index(importPath, "/"); i >= 0 {
		return importPath[:i]
	}
	return importPath
}
