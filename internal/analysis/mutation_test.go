package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyPkg copies the non-test Go files (and assembly) of srcDir into a
// temp dir, passing each file through mutate.
func copyPkg(t *testing.T, srcDir string, mutate func(name string, src []byte) []byte) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, ".s") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), mutate(name, data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// analyzerFindings loads dir under importPath and runs one analyzer.
func analyzerFindings(t *testing.T, analyzer, dir, importPath string) []Finding {
	t.Helper()
	l, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading mutated copy: %v", err)
	}
	az, err := ByName([]string{analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, az)
}

// TestInjectedLoopCaptureCaught is the concurrency acceptance mutation:
// deleting the rebind line from the per-class CRAIG fan-out reverts the
// closures to capturing the loop variables, and the analyzer must flag
// it; the pristine tree stays silent.
func TestInjectedLoopCaptureCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies and repeated type checks are slow; skipped in -short mode")
	}
	root := repoRoot(t)
	srcDir := filepath.Join(root, "internal", "selection")
	const rebind = "ci, cand := ci, cand"

	t.Run("stripped rebind flags the captured loop variables", func(t *testing.T) {
		sawRebind := false
		dir := copyPkg(t, srcDir, func(name string, src []byte) []byte {
			if name != "craig.go" {
				return src
			}
			var out []string
			for _, line := range strings.Split(string(src), "\n") {
				if strings.TrimSpace(line) == rebind {
					sawRebind = true
					continue
				}
				out = append(out, line)
			}
			return []byte(strings.Join(out, "\n"))
		})
		if !sawRebind {
			t.Fatalf("craig.go no longer contains the %q rebind; update the mutation", rebind)
		}
		findings := analyzerFindings(t, "concurrency", dir, "nessa/internal/selection")
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, "loop variable") && strings.Contains(f.Message, "captured by concurrently executed closure") {
				found = true
			}
		}
		if !found {
			t.Fatalf("stripped rebind was not flagged; findings: %v", findings)
		}
	})

	t.Run("pristine package is silent", func(t *testing.T) {
		dir := copyPkg(t, srcDir, func(name string, src []byte) []byte { return src })
		for _, f := range analyzerFindings(t, "concurrency", dir, "nessa/internal/selection") {
			t.Errorf("pristine selection flagged: %s", f.String())
		}
	})
}

// TestInjectedScratchLeakCaught is the scratchlife acceptance mutation:
// a method returning a raw arena slice out of the model's forward
// scratch must be flagged; the pristine package stays silent.
func TestInjectedScratchLeakCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies and repeated type checks are slow; skipped in -short mode")
	}
	root := repoRoot(t)
	srcDir := filepath.Join(root, "internal", "nn")
	const leak = "\n// LeakScratch exposes the forward arena without a contract.\n" +
		"func (m *MLP) LeakScratch() *tensor.Matrix { return m.acts[0] }\n"

	t.Run("arena-slice return is flagged", func(t *testing.T) {
		dir := copyPkg(t, srcDir, func(name string, src []byte) []byte {
			if name != "model.go" {
				return src
			}
			return append(src, []byte(leak)...)
		})
		findings := analyzerFindings(t, "scratchlife", dir, "nessa/internal/nn")
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, "returns pool/arena-backed scratch memory") {
				found = true
			} else {
				t.Errorf("unexpected extra finding: %s", f.String())
			}
		}
		if !found {
			t.Fatalf("injected arena leak was not flagged; findings: %v", findings)
		}
	})

	t.Run("pristine package is silent", func(t *testing.T) {
		dir := copyPkg(t, srcDir, func(name string, src []byte) []byte { return src })
		for _, f := range analyzerFindings(t, "scratchlife", dir, "nessa/internal/nn") {
			t.Errorf("pristine nn flagged: %s", f.String())
		}
	})
}
