package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestShapeCheckFixture(t *testing.T) {
	runFixture(t, "shapecheck", "shapecheck", "nessa/internal/fixture/shapecheck")
}

// TestByNameErrorListsValidAnalyzers pins the -run typo experience:
// the error enumerates every valid name from both suites.
func TestByNameErrorListsValidAnalyzers(t *testing.T) {
	_, err := ByName([]string{"shapechekc"})
	if err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"shapechekc"`) {
		t.Errorf("error does not quote the unknown name: %s", msg)
	}
	for _, a := range All() {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error does not list source analyzer %s: %s", a.Name, msg)
		}
	}
	for _, a := range CompilerAll() {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error does not list compiler analyzer %s: %s", a.Name, msg)
		}
	}
}

// TestParseShapeContract covers the //nessa:shape grammar edge cases
// beyond what the golden fixture exercises positionally.
func TestParseShapeContract(t *testing.T) {
	cases := []struct {
		name    string
		text    string
		wantErr string // substring of the expected error, "" for ok
		clauses int
	}{
		{"single clause", "//nessa:shape(rows=n, cols=d)", "", 1},
		{"targeted clauses", "//nessa:shape(a: rows=n, b: cols=n)", "", 2},
		{"sticky target", "//nessa:shape(a: rows=n, cols=d)", "", 1},
		{"affine expr", "//nessa:shape(buf: minlen=10+4*nf)", "", 1},
		{"trailing justification", "//nessa:shape(len=k) header plus payload", "", 1},
		{"missing argument list", "//nessa:shape", "missing argument list", 0},
		{"unbalanced parens", "//nessa:shape(rows=(n", "missing closing parenthesis", 0},
		{"not key=value", "//nessa:shape(rows)", "is not key=value", 0},
		{"empty item", "//nessa:shape(rows=n,,cols=d)", "empty item", 0},
		{"duplicate key", "//nessa:shape(rows=n, rows=d)", "duplicate key", 0},
		{"duplicate key across sticky target", "//nessa:shape(a: rows=n, rows=d)", "duplicate key", 0},
		{"duplicate target", "//nessa:shape(a: rows=n, b: rows=d, a: cols=m)", "duplicate target", 0},
		{"unknown key", "//nessa:shape(width=3)", "unknown key", 0},
		{"empty argument list", "//nessa:shape()", "empty item", 0},
		{"bad expr operator", "//nessa:shape(rows=n/2)", "not allowed", 0},
		{"non-integer literal", "//nessa:shape(rows=1.5)", "", -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseShapeContract(tc.text, token.NoPos)
			if tc.wantErr == "" && tc.clauses >= 0 {
				if err != nil {
					t.Fatalf("parseShapeContract(%q): %v", tc.text, err)
				}
				if len(c.Clauses) != tc.clauses {
					t.Fatalf("parseShapeContract(%q): %d clauses, want %d", tc.text, len(c.Clauses), tc.clauses)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseShapeContract(%q) succeeded, want error", tc.text)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseShapeContract(%q) error %q does not contain %q", tc.text, err, tc.wantErr)
			}
		})
	}
}

// copyPackage copies the non-test Go (and asm) sources of srcDir into
// a temp dir, applying mutate to each file, and returns the copy's
// path. The shared helper behind the shape mutation tests below.
func copyPackage(t *testing.T, srcDir string, mutate func(name string, src []byte) []byte) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, ".s") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		data = mutate(name, data)
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// mustReplace asserts the mutation target still exists in the source
// before substituting — a silent miss would make the test vacuous.
func mustReplace(t *testing.T, name string, src []byte, old, new string) []byte {
	t.Helper()
	if !strings.Contains(string(src), old) {
		t.Fatalf("%s no longer contains %q; update the mutation test", name, old)
	}
	return []byte(strings.ReplaceAll(string(src), old, new))
}

func shapeFindings(t *testing.T, pkgs []*Package) []Finding {
	t.Helper()
	az, err := ByName([]string{"shapecheck"})
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkgs, az)
}

func assertFindingContains(t *testing.T, findings []Finding, subs ...string) {
	t.Helper()
	for _, f := range findings {
		ok := true
		for _, sub := range subs {
			if !strings.Contains(f.Message, sub) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
	t.Errorf("no finding contains all of %q; got %d finding(s):", subs, len(findings))
	for _, f := range findings {
		t.Logf("  %s", f)
	}
}

func assertNoFindings(t *testing.T, findings []Finding) {
	t.Helper()
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestShapeMutationTransposedGEMM is the first acceptance mutation:
// swap the transposed GEMM in the nn forward pass for the plain one
// (same arguments) and shapecheck must name the out/in contract dims
// that stop agreeing; strip the Dense contracts from the same copy and
// the finding must disappear.
func TestShapeMutationTransposedGEMM(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies and repeated type checks are slow; skipped in -short mode")
	}
	root := repoRoot(t)
	nnDir := filepath.Join(root, "internal", "nn")
	const forward = "tensor.MatMulTransB(out, cur, l.W)"
	const transposed = "tensor.MatMul(out, cur, l.W)"

	load := func(t *testing.T, dir string) []Finding {
		t.Helper()
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(dir, "nessa/internal/nn")
		if err != nil {
			t.Fatalf("loading mutated copy: %v", err)
		}
		return shapeFindings(t, []*Package{pkg})
	}

	t.Run("contracted layer flags transposed GEMM", func(t *testing.T) {
		dir := copyPackage(t, nnDir, func(name string, src []byte) []byte {
			if name != "model.go" {
				return src
			}
			return mustReplace(t, name, src, forward, transposed)
		})
		assertFindingContains(t, load(t, dir), "dst cols is out", "b cols is in")
	})
	t.Run("stripped contract is silent", func(t *testing.T) {
		dir := copyPackage(t, nnDir, func(name string, src []byte) []byte {
			if name != "model.go" {
				return src
			}
			src = mustReplace(t, name, src, forward, transposed)
			src = mustReplace(t, name, src, "//nessa:shape(rows=out, cols=in)\n", "")
			return mustReplace(t, name, src, "//nessa:shape(len=out)\n", "")
		})
		assertNoFindings(t, load(t, dir))
	})
}

// TestShapeMutationSwappedHiddenWidths is the second acceptance
// mutation: transpose newDense's NewMatrix arguments (an in×out weight
// for an out×in contract) and the Dense literal must flag the swap by
// its contract dims; stripping the contracts silences it.
func TestShapeMutationSwappedHiddenWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies and repeated type checks are slow; skipped in -short mode")
	}
	root := repoRoot(t)
	nnDir := filepath.Join(root, "internal", "nn")
	const alloc = "tensor.NewMatrix(out, in)"
	const swapped = "tensor.NewMatrix(in, out)"

	load := func(t *testing.T, dir string) []Finding {
		t.Helper()
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(dir, "nessa/internal/nn")
		if err != nil {
			t.Fatalf("loading mutated copy: %v", err)
		}
		return shapeFindings(t, []*Package{pkg})
	}

	t.Run("contracted Dense flags swapped widths", func(t *testing.T) {
		dir := copyPackage(t, nnDir, func(name string, src []byte) []byte {
			if name != "model.go" {
				return src
			}
			return mustReplace(t, name, src, alloc, swapped)
		})
		assertFindingContains(t, load(t, dir), "len(B) is out", "contract dim out is in")
	})
	t.Run("stripped contract is silent", func(t *testing.T) {
		dir := copyPackage(t, nnDir, func(name string, src []byte) []byte {
			if name != "model.go" {
				return src
			}
			src = mustReplace(t, name, src, alloc, swapped)
			src = mustReplace(t, name, src, "//nessa:shape(rows=out, cols=in)\n", "")
			return mustReplace(t, name, src, "//nessa:shape(len=out)\n", "")
		})
		assertNoFindings(t, load(t, dir))
	})
}

// TestShapeMutationShrunkenDecodeBuffer is the third acceptance
// mutation: shrink the streaming scan's per-record window below the
// codec's affine floor (header + 4 bytes per feature) and the
// DecodeRecordInto minlen contract must flag the window against the
// symbolic feature count; stripping the contract from the data package
// silences it. The data package is loaded explicitly so the bench
// copy's import resolves to it and its contract (or absence) is in the
// analysis universe.
func TestShapeMutationShrunkenDecodeBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies and repeated type checks are slow; skipped in -short mode")
	}
	root := repoRoot(t)
	benchDir := filepath.Join(root, "internal", "bench")
	dataDir := filepath.Join(root, "internal", "data")
	const window = "buf[off:off+rec]"
	const shrunken = "buf[off : off+8]"
	const contract = "//nessa:shape(features: len=nf, buf: minlen=10+4*nf) header is recordHeader bytes, then 4 bytes per feature\n"

	load := func(t *testing.T, dataSrc, benchSrc string) []Finding {
		t.Helper()
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		dataPkg, err := l.LoadDir(dataSrc, "nessa/internal/data")
		if err != nil {
			t.Fatalf("loading data package: %v", err)
		}
		benchPkg, err := l.LoadDir(benchSrc, "nessa/internal/bench")
		if err != nil {
			t.Fatalf("loading mutated bench copy: %v", err)
		}
		return shapeFindings(t, []*Package{dataPkg, benchPkg})
	}

	mutateBench := func(t *testing.T) string {
		return copyPackage(t, benchDir, func(name string, src []byte) []byte {
			if name != "streambench.go" {
				return src
			}
			return mustReplace(t, name, src, window, shrunken)
		})
	}

	t.Run("contracted decode flags shrunken window", func(t *testing.T) {
		findings := load(t, dataDir, mutateBench(t))
		assertFindingContains(t, findings, "len(buf) is 8", "requires at least")
	})
	t.Run("stripped contract is silent", func(t *testing.T) {
		strippedData := copyPackage(t, dataDir, func(name string, src []byte) []byte {
			if name != "codec.go" {
				return src
			}
			return mustReplace(t, name, src, contract, "")
		})
		assertNoFindings(t, load(t, strippedData, mutateBench(t)))
	})
}
