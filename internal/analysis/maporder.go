package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderAnalyzer flags range statements over maps whose bodies do
// order-sensitive work: appending to a slice (element order then
// depends on Go's randomized map iteration) or accumulating a
// floating-point value (float addition is not associative, so the sum
// bits depend on visit order). Either breaks the repository's
// bit-identical reproducibility contract.
//
// Two escapes:
//
//   - appending keys that are subsequently passed to a sort.* or
//     slices.Sort* call in the same function is recognized as the
//     collect-then-sort idiom and allowed;
//   - //nessa:sorted-iteration on (or immediately above) the range
//     statement asserts the order has been made irrelevant by other
//     means.
//
// Integer accumulation is deliberately not flagged: integer addition
// is exactly commutative, so visit order cannot change the result.
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "maporder",
		Waiver: DirSortedIteration,
		Doc:    "flag order-sensitive accumulation over map iteration",
		Run:    runMapOrder,
	}
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			sorted := sortedObjects(p, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if p.ExemptAt(rs.Pos(), DirSortedIteration) {
					return true
				}
				checkMapRangeBody(p, rs, sorted)
				return true
			})
			return true
		})
	}
}

// checkMapRangeBody reports order-sensitive statements in the body of
// a map-range statement.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...): element order inherits map order
			// unless x is sorted afterwards.
			for i, rhs := range n.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(p, call.Fun, "append") {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok {
						if obj := objectOf(p, id); obj != nil && sorted[obj] {
							continue
						}
					}
				}
				if p.ExemptAt(call.Pos(), DirSortedIteration) {
					continue
				}
				p.Reportf(call.Pos(),
					"append inside map iteration: element order follows the randomized map order; sort the keys first (or sort the result, or annotate //nessa:sorted-iteration)")
			}
			// x += <float>, x -= <float>, ...: float reduction order
			// follows map order.
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloat(p.Pkg.Info.TypeOf(n.Lhs[0])) {
					if p.ExemptAt(n.Pos(), DirSortedIteration) {
						return true
					}
					p.Reportf(n.Pos(),
						"floating-point accumulation inside map iteration: float addition is order-sensitive and map order is randomized; iterate sorted keys (or annotate //nessa:sorted-iteration)")
				}
			}
		}
		return true
	})
}

// sortedObjects collects the objects passed (possibly through one
// conversion) to a sort.* or slices.Sort* call anywhere in body — the
// second half of the collect-then-sort idiom.
func sortedObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Pkg.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		arg := unparen(call.Args[0])
		// sort.Sort(byName(keys)): look through a single conversion or
		// wrapper call.
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = unparen(inner.Args[0])
		}
		if id, ok := arg.(*ast.Ident); ok {
			if obj := objectOf(p, id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// objectOf resolves an identifier to its object via Uses or Defs.
func objectOf(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// isBuiltin reports whether fun denotes the named predeclared builtin.
func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// isFloat reports whether t is (or has underlying) float32/float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
