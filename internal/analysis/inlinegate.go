package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// InlineGateAnalyzer pins gc's inlining decisions for the leaf kernels
// annotated //nessa:inline. Two rules, both checked against the
// instrumented build rather than inferred:
//
//  1. declaration rule — the annotated function must carry a
//     "can inline ... with cost N" fact. When it does not, the finding
//     quotes gc's own reason ("cost 105 exceeds budget 80"), so a
//     refactor that pushes a kernel over the inline budget fails
//     loudly with the exact cost report instead of costing a silent
//     call-per-element in the hot loop.
//  2. call-site rule — every static call to an annotated function from
//     inside a //nessa:hotpath function must carry an "inlining call
//     to" fact. A hot call the inliner skipped (wrapped in a method
//     value, moved behind an interface, or demoted when the callee
//     grew) is a finding unless waived with //nessa:inline-ok.
//
// Annotated declarations are indexed module-wide by RunCompiler, so
// the call-site rule resolves callees across package boundaries
// (nn's hot loops calling tensor.Dot, for example).
func InlineGateAnalyzer() *Analyzer {
	return &Analyzer{
		Name:   "inlinegate",
		Doc:    "prove //nessa:inline kernels stay inlinable and inline at //nessa:hotpath call sites",
		Waiver: DirInlineOK,
		Run:    runInlineGate,
	}
}

func runInlineGate(p *Pass) {
	if p.Evidence == nil {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if HasDirective(fn.Doc, DirInline) {
				checkInlinable(p, fn)
			}
			if HasDirective(fn.Doc, DirHotpath) {
				checkHotCallSites(p, fn)
			}
		}
	}
}

// checkInlinable enforces the declaration rule.
func checkInlinable(p *Pass, fn *ast.FuncDecl) {
	pos := p.Pkg.Fset.Position(fn.Name.Pos())
	var cannot *Fact
	for _, fact := range p.Evidence.Span(pos.Filename, pos.Line, pos.Line) {
		switch fact.Kind {
		case FactCanInline:
			p.Metric(MetricInlinable, 1)
			return
		case FactCannotInline:
			f := fact
			cannot = &f
		}
	}
	if cannot != nil {
		p.Reportf(fn.Name.Pos(), "gc cannot inline //nessa:inline function %s: %s — trim the body back under the inline budget or drop the annotation with a plan for the call overhead",
			fn.Name.Name, cannot.Detail)
		return
	}
	p.Reportf(fn.Name.Pos(), "no inlining decision recorded for //nessa:inline function %s — the instrumented build did not compile this declaration (check build constraints against the analysis GOARCH)",
		fn.Name.Name)
}

// checkHotCallSites enforces the call-site rule inside one hotpath
// function.
func checkHotCallSites(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(p.Pkg.Info, call)
		if callee == nil {
			return true
		}
		declPos := p.Pkg.Fset.Position(callee.Pos())
		name, marked := p.Evidence.inlineDeclAt(declPos.Filename, declPos.Line)
		if !marked {
			return true
		}
		callPos := p.Pkg.Fset.Position(call.Pos())
		if inlinedAt(p.Evidence, callPos.Filename, callPos.Line, name) {
			p.Metric(MetricHotCallsInlined, 1)
			return true
		}
		if p.ExemptAt(call.Pos(), DirInlineOK) {
			p.Metric(MetricHotCallsWaived, 1)
			return true
		}
		p.Reportf(call.Pos(), "call to //nessa:inline function %s was not inlined in //nessa:hotpath function %s — the hot loop pays a call per iteration (annotate //nessa:inline-ok with a justification if this site is cold or dispatch-amortized)",
			name, fn.Name.Name)
		return true
	})
}

// inlinedAt reports whether an "inlining call to" fact for the named
// callee exists on the call's line. The fact's callee is matched by
// suffix: gc prints package-qualified and receiver-qualified names
// ("tensor.Dot", "(*Matrix).Row") while the declaration index holds
// the bare name.
func inlinedAt(ev *Evidence, file string, line int, name string) bool {
	for _, fact := range ev.Span(file, line, line) {
		if fact.Kind != FactInlineCall {
			continue
		}
		callee := fact.Name
		if i := strings.LastIndexByte(callee, '.'); i >= 0 {
			callee = callee[i+1:]
		}
		if callee == name {
			return true
		}
	}
	return false
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes: a plain identifier, a package-qualified
// selector, or a method selector. Calls through function values,
// interfaces, or builtins resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
