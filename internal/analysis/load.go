// Package loading for nessa-vet. The loader resolves and type-checks
// repository packages using only the standard library: go/build for
// build-constraint evaluation, go/parser for syntax, and go/types for
// type information. Imports within this module are resolved straight
// from the repository tree; standard-library imports are delegated to
// the stdlib source importer (go/importer, compiler "source"), so the
// tool needs no pre-compiled export data and no golang.org/x/tools
// dependency — the same stdlib-only rule the rest of the repository
// follows.
package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the repository: the
// unit every analyzer runs over.
type Package struct {
	// ImportPath is the package's import path ("nessa/internal/tensor").
	// Analyzer scoping (exempt packages, per-package rule sets) keys off
	// this path.
	ImportPath string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module rooted at a
// directory containing go.mod. It memoizes by import path, so shared
// dependencies are checked once and type identity is preserved across
// the whole load.
type Loader struct {
	Fset   *token.FileSet
	root   string // module root (directory containing go.mod)
	module string // module path from go.mod
	std    types.Importer
	pkgs   map[string]*Package
	ctxt   build.Context
}

// NewLoader returns a loader for the module rooted at root. The module
// path is read from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	// The loader parses every file itself; go/build is used only to
	// evaluate build constraints, so keep its behavior hermetic.
	ctxt.UseAllFiles = false
	return &Loader{
		Fset:   fset,
		root:   abs,
		module: mod,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
		ctxt:   ctxt,
	}, nil
}

// Root reports the module root directory.
func (l *Loader) Root() string { return l.root }

// SetGOARCH overrides the architecture used for build-constraint
// evaluation (file suffixes like _amd64.go and //go:build lines), so a
// load can resolve a different port's file set than the host's — e.g.
// the portable fallback kernels instead of the amd64 assembly ones.
// Must be called before the first load; already-memoized packages keep
// the constraint set they were loaded under.
func (l *Loader) SetGOARCH(arch string) { l.ctxt.GOARCH = arch }

// Module reports the module path.
func (l *Loader) Module() string { return l.module }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// repository tree, everything else falls through to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// load loads (or returns the memoized) module package for path.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	pkg, err := l.loadDir(l.dirFor(path), path)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// LoadDir parses and type-checks the non-test Go files of dir as the
// package importPath, honoring build constraints for the current
// GOOS/GOARCH. Used both for repository packages and for test
// fixtures, whose synthetic import paths place them inside whatever
// analyzer scope the test wants to exercise.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadDir(dir, importPath)
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	names = append(names, bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadAll walks the module tree and loads every buildable non-test
// package, skipping testdata, hidden, and underscore-prefixed
// directories. Packages are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.ctxt.ImportDir(dir, 0); err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue
			}
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
