package zzreviewtmp

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 8); return &b }}

func H() byte {
	v := pool.Get().(*[]byte)
	defer pool.Put(v)
	return (*v)[0]
}
