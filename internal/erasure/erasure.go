// Package erasure implements a small, deterministic Reed–Solomon
// erasure code over GF(2^8) for the SmartSSD cluster's redundant
// shard placement (DESIGN.md §4.11).
//
// The code is systematic: the first DataShards shards hold the
// original bytes untouched and the last ParityShards shards hold
// parity, so the clean read path never pays a decode. Any
// ParityShards shards — data or parity, in any combination — can be
// lost and reconstructed exactly from the survivors.
//
// Everything here is pure Go over the standard library: GF(256)
// arithmetic uses log/exp tables generated from the AES/QR polynomial
// x^8+x^4+x^3+x^2+1 (0x11d), and the coding matrix is the classic
// systematic Vandermonde construction (V · V_top⁻¹), whose every
// DataShards×DataShards submatrix is invertible. The construction is
// a pure function of (DataShards, ParityShards): two clusters with
// the same placement always agree on parity bytes, which is what
// makes degraded scans bit-identical across runs.
package erasure

import "fmt"

// gfPoly is the irreducible polynomial generating GF(2^8).
const gfPoly = 0x11d

// expTable[i] = g^i for the generator g=2; doubled so products of two
// logs index without a mod. logTable inverts it (logTable[0] unused).
var (
	expTable [510]byte
	logTable [256]byte
	mulTable [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		expTable[i+255] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
	}
}

func gfMul(a, b byte) byte { return mulTable[a][b] }

// gfInv returns the multiplicative inverse of a (a must be non-zero).
func gfInv(a byte) byte { return expTable[255-int(logTable[a])] }

// Code is an immutable (DataShards, ParityShards) Reed–Solomon code.
type Code struct {
	data   int
	parity int
	// matrix is the full systematic coding matrix: (data+parity) rows
	// × data columns. The top data rows are the identity; row data+r
	// holds the coefficients producing parity shard r.
	matrix [][]byte
}

// New builds the systematic code for the given shard counts.
func New(dataShards, parityShards int) (*Code, error) {
	if dataShards < 1 || parityShards < 1 {
		return nil, fmt.Errorf("erasure: need at least 1 data and 1 parity shard, got %d+%d", dataShards, parityShards)
	}
	if dataShards+parityShards > 255 {
		return nil, fmt.Errorf("erasure: %d total shards exceeds the GF(256) limit of 255", dataShards+parityShards)
	}
	total := dataShards + parityShards
	// Vandermonde matrix over distinct evaluation points 0..total-1:
	// v[r][c] = r^c. Any dataShards of its rows are linearly
	// independent, which the right-multiplication by V_top⁻¹ preserves.
	v := make([][]byte, total)
	for r := range v {
		v[r] = make([]byte, dataShards)
		p := byte(1)
		for c := 0; c < dataShards; c++ {
			v[r][c] = p
			p = gfMul(p, byte(r))
		}
	}
	top := make([][]byte, dataShards)
	for r := range top {
		top[r] = append([]byte(nil), v[r]...)
	}
	topInv, err := invertMatrix(top)
	if err != nil {
		return nil, fmt.Errorf("erasure: building systematic matrix: %w", err)
	}
	m := matMul(v, topInv)
	return &Code{data: dataShards, parity: parityShards, matrix: m}, nil
}

// DataShards returns the data shard count k.
func (c *Code) DataShards() int { return c.data }

// ParityShards returns the parity shard count m.
func (c *Code) ParityShards() int { return c.parity }

// Encode fills shards[data:] with parity computed from shards[:data].
// All data+parity shards must be present and the same length.
func (c *Code) Encode(shards [][]byte) error {
	if err := c.checkShape(shards, true); err != nil {
		return err
	}
	for r := 0; r < c.parity; r++ {
		row := c.matrix[c.data+r]
		out := shards[c.data+r]
		for i := range out {
			out[i] = 0
		}
		for j := 0; j < c.data; j++ {
			mulAddSlice(row[j], shards[j], out)
		}
	}
	return nil
}

// Reconstruct rebuilds every missing shard (nil entries) in place,
// allocating the replacements. It needs at least DataShards surviving
// shards; with fewer it reports how many were lost versus tolerable.
func (c *Code) Reconstruct(shards [][]byte) error {
	if err := c.checkShape(shards, false); err != nil {
		return err
	}
	present := make([]int, 0, c.data)
	missing := 0
	size := -1
	for i, s := range shards {
		if s == nil {
			missing++
			continue
		}
		size = len(s)
		if len(present) < c.data {
			present = append(present, i)
		}
	}
	if missing == 0 {
		return nil
	}
	if len(present) < c.data {
		return fmt.Errorf("erasure: %d shards lost but only %d parity shards configured", missing, c.parity)
	}
	// Invert the submatrix of coding rows for the shards we hold:
	// inv maps the surviving shard vector back to the data vector.
	sub := make([][]byte, c.data)
	for r, idx := range present {
		sub[r] = append([]byte(nil), c.matrix[idx]...)
	}
	inv, err := invertMatrix(sub)
	if err != nil {
		return fmt.Errorf("erasure: decode matrix is singular: %w", err)
	}
	for j := 0; j < c.data; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		for k, idx := range present {
			mulAddSlice(inv[j][k], shards[idx], out)
		}
		shards[j] = out
	}
	// With all data shards in hand, missing parity is a re-encode.
	for r := 0; r < c.parity; r++ {
		if shards[c.data+r] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.matrix[c.data+r]
		for j := 0; j < c.data; j++ {
			mulAddSlice(row[j], shards[j], out)
		}
		shards[c.data+r] = out
	}
	return nil
}

func (c *Code) checkShape(shards [][]byte, full bool) error {
	if len(shards) != c.data+c.parity {
		return fmt.Errorf("erasure: got %d shards, placement is %d+%d", len(shards), c.data, c.parity)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if full {
				return fmt.Errorf("erasure: shard %d is nil", i)
			}
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("erasure: shard %d is %d bytes, want %d (shards must be equal length)", i, len(s), size)
		}
	}
	if size == -1 {
		return fmt.Errorf("erasure: every shard is nil")
	}
	return nil
}

// mulAddSlice does out[i] ^= coef*in[i] over GF(256).
func mulAddSlice(coef byte, in, out []byte) {
	if coef == 0 {
		return
	}
	if coef == 1 {
		for i, v := range in {
			out[i] ^= v
		}
		return
	}
	mt := &mulTable[coef]
	for i, v := range in {
		out[i] ^= mt[v]
	}
}

// matMul multiplies a (n×k) by b (k×k).
func matMul(a, b [][]byte) [][]byte {
	n, k := len(a), len(b)
	out := make([][]byte, n)
	for r := 0; r < n; r++ {
		out[r] = make([]byte, k)
		for c := 0; c < k; c++ {
			var acc byte
			for i := 0; i < k; i++ {
				acc ^= gfMul(a[r][i], b[i][c])
			}
			out[r][c] = acc
		}
	}
	return out
}

// invertMatrix Gauss–Jordan-inverts a square matrix over GF(256),
// leaving the input untouched beyond its own working copy.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	work := make([][]byte, n)
	inv := make([][]byte, n)
	for r := 0; r < n; r++ {
		work[r] = append([]byte(nil), m[r]...)
		inv[r] = make([]byte, n)
		inv[r][r] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("singular at column %d", col)
		}
		work[col], work[pivot] = work[pivot], work[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		scale := gfInv(work[col][col])
		scaleRow(work[col], scale)
		scaleRow(inv[col], scale)
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			mulAddRow(work[r], work[col], f)
			mulAddRow(inv[r], inv[col], f)
		}
	}
	return inv, nil
}

func scaleRow(row []byte, f byte) {
	for i := range row {
		row[i] = gfMul(row[i], f)
	}
}

// mulAddRow does dst ^= f*src element-wise.
func mulAddRow(dst, src []byte, f byte) {
	for i := range dst {
		dst[i] ^= gfMul(f, src[i])
	}
}
