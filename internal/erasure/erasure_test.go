package erasure

import (
	"bytes"
	"testing"

	"nessa/internal/tensor"
)

func TestGFFieldLaws(t *testing.T) {
	// Spot-check the table-driven arithmetic against the field axioms.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d, want 1", got, a)
		}
		if got := gfMul(byte(a), 1); got != byte(a) {
			t.Fatalf("a*1 = %d for a=%d", got, a)
		}
		if got := gfMul(byte(a), 0); got != 0 {
			t.Fatalf("a*0 = %d for a=%d", got, a)
		}
	}
	// Associativity + distributivity on a deterministic sample.
	rng := tensor.NewRNG(1)
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64())
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("associativity broken for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity broken for %d,%d,%d", a, b, c)
		}
	}
}

func TestSystematicMatrix(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for j := 0; j < 4; j++ {
			want := byte(0)
			if r == j {
				want = 1
			}
			if c.matrix[r][j] != want {
				t.Fatalf("top of coding matrix is not the identity at (%d,%d): %d", r, j, c.matrix[r][j])
			}
		}
	}
}

func randShards(rng *tensor.RNG, n, size int) [][]byte {
	shards := make([][]byte, n)
	for i := range shards {
		shards[i] = make([]byte, size)
		for j := range shards[i] {
			shards[i][j] = byte(rng.Uint64())
		}
	}
	return shards
}

// TestReconstructAllErasures kills every combination of up to m shards
// for several placements and demands exact recovery.
func TestReconstructAllErasures(t *testing.T) {
	placements := []struct{ k, m int }{{1, 1}, {2, 1}, {3, 1}, {3, 2}, {4, 2}, {5, 3}}
	rng := tensor.NewRNG(7)
	for _, p := range placements {
		c, err := New(p.k, p.m)
		if err != nil {
			t.Fatal(err)
		}
		total := p.k + p.m
		shards := randShards(rng, total, 257) // odd size: no alignment luck
		for i := p.k; i < total; i++ {
			for j := range shards[i] {
				shards[i][j] = 0
			}
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, total)
		for i := range shards {
			want[i] = append([]byte(nil), shards[i]...)
		}
		for _, lost := range loseCombos(total, p.m) {
			got := make([][]byte, total)
			for i := range shards {
				got[i] = append([]byte(nil), shards[i]...)
			}
			for _, i := range lost {
				got[i] = nil
			}
			if err := c.Reconstruct(got); err != nil {
				t.Fatalf("placement %d+%d lost %v: %v", p.k, p.m, lost, err)
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("placement %d+%d lost %v: shard %d differs after reconstruction", p.k, p.m, lost, i)
				}
			}
		}
	}
}

// loseCombos enumerates every non-empty subset of [0,n) with at most
// max elements.
func loseCombos(n, max int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<n; mask++ {
		var s []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, i)
			}
		}
		if len(s) <= max {
			out = append(out, s)
		}
	}
	return out
}

func TestReconstructTooManyLost(t *testing.T) {
	c, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards := randShards(tensor.NewRNG(9), 4, 64)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[2] = nil, nil
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstructing 2 lost shards with 1 parity should fail")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1 := randShards(tensor.NewRNG(11), 6, 128)
	s2 := make([][]byte, 6)
	for i := range s1 {
		s2[i] = append([]byte(nil), s1[i]...)
	}
	if err := a.Encode(s1); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(s2); err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if !bytes.Equal(s1[i], s2[i]) {
			t.Fatalf("two identically configured codes disagree on shard %d", i)
		}
	}
}

func TestShapeErrors(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("New(0,1) should fail")
	}
	if _, err := New(3, 0); err == nil {
		t.Fatal("New(3,0) should fail")
	}
	if _, err := New(200, 100); err == nil {
		t.Fatal("over-255 total shards should fail")
	}
	c, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Encode([][]byte{make([]byte, 4), make([]byte, 4)}); err == nil {
		t.Fatal("wrong shard count should fail")
	}
	if err := c.Encode([][]byte{make([]byte, 4), make([]byte, 8), make([]byte, 4)}); err == nil {
		t.Fatal("unequal shard lengths should fail")
	}
	if err := c.Reconstruct([][]byte{nil, nil, nil}); err == nil {
		t.Fatal("all-nil reconstruct should fail")
	}
}
