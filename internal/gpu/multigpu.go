package gpu

import (
	"fmt"
	"time"
)

// DataParallel models synchronous data-parallel training across
// multiple GPUs — the GPU half of the paper's §5 future work ("scaling
// over multiple SmartSSDs and GPUs"). Each step splits the global
// batch across workers and pays a ring all-reduce of the gradients.
type DataParallel struct {
	GPU        GPU
	Workers    int
	LinkBW     float64 // bytes/s per NVLink/PCIe hop of the ring
	AllReduceL time.Duration
}

// NewDataParallel builds an n-GPU group with NVLink-class interconnect.
func NewDataParallel(g GPU, n int) (*DataParallel, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: worker count %d must be positive", n)
	}
	return &DataParallel{
		GPU:        g,
		Workers:    n,
		LinkBW:     50e9, // NVLink-class per-hop bandwidth
		AllReduceL: 20 * time.Microsecond,
	}, nil
}

// AllReduceTime models a ring all-reduce of gradientBytes across the
// workers: 2·(W−1)/W of the payload crosses each link.
func (d *DataParallel) AllReduceTime(gradientBytes int64) time.Duration {
	if d.Workers == 1 || gradientBytes <= 0 {
		return 0
	}
	w := float64(d.Workers)
	volume := 2 * (w - 1) / w * float64(gradientBytes)
	sec := volume / d.LinkBW
	return d.AllReduceL + time.Duration(sec*float64(time.Second))
}

// EpochTime reports the per-epoch wall time of training n images of a
// model with fwdGFLOPs forward cost and paramBytes of gradients, at
// the given global batch size: compute parallelizes across workers,
// while each of the n/batch steps pays one all-reduce.
func (d *DataParallel) EpochTime(n int, fwdGFLOPs float64, paramBytes int64, batch int) time.Duration {
	if n <= 0 || batch <= 0 {
		return 0
	}
	compute := time.Duration(int64(n)) * d.GPU.ComputeTimePerImage(fwdGFLOPs) / time.Duration(d.Workers)
	steps := (n + batch - 1) / batch
	sync := time.Duration(steps) * d.AllReduceTime(paramBytes)
	return compute + sync
}

// Speedup reports the parallel efficiency of the group on the
// workload versus a single GPU.
func (d *DataParallel) Speedup(n int, fwdGFLOPs float64, paramBytes int64, batch int) float64 {
	single, err := NewDataParallel(d.GPU, 1)
	if err != nil {
		return 0
	}
	t1 := single.EpochTime(n, fwdGFLOPs, paramBytes, batch)
	tn := d.EpochTime(n, fwdGFLOPs, paramBytes, batch)
	if tn <= 0 {
		return 0
	}
	return t1.Seconds() / tn.Seconds()
}
