package gpu

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpochOverlappedTakesMax(t *testing.T) {
	g := V100()
	plain := g.Epoch(50_000, 3*1024, 0.041)
	over := g.EpochOverlapped(50_000, 3*1024, 0.041)
	if over.Total != maxDur(plain.Compute, plain.Load) {
		t.Fatalf("overlapped total %v != max(compute %v, load %v)", over.Total, plain.Compute, plain.Load)
	}
	if over.Total > plain.Total {
		t.Fatal("overlap made the epoch slower")
	}
}

func TestOverlapNeverSlower(t *testing.T) {
	f := func(nRaw uint16, kbRaw uint8, gfRaw uint8) bool {
		g := V100()
		n := int(nRaw) + 1
		bytes := (int64(kbRaw) + 1) * 1024
		gf := float64(gfRaw)/50 + 0.001
		plain := g.Epoch(n, bytes, gf)
		over := g.EpochOverlapped(n, bytes, gf)
		return over.Total <= plain.Total && over.Total >= plain.Total/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMovementShareZeroTotal(t *testing.T) {
	var b EpochBreakdown
	if got := b.MovementShare(); got != 0 {
		t.Fatalf("zero-total share = %v, want 0", got)
	}
}

func TestLoadTimeZeroBytes(t *testing.T) {
	if got := V100().LoadTimePerImage(0, 100); got != 0 {
		t.Fatalf("zero-byte load = %v, want 0", got)
	}
}

func TestEpochZeroImages(t *testing.T) {
	b := V100().Epoch(0, 1024, 1)
	if b.Total != 0 {
		t.Fatalf("zero-image epoch = %v, want 0", b.Total)
	}
}

func TestSelectionComputeTimeFormula(t *testing.T) {
	c := DefaultHostCPU()
	// 400 GFLOPs at 400 GFLOP/s = 1 s.
	if got := c.SelectionComputeTime(400e9); got != time.Second {
		t.Fatalf("compute time = %v, want 1s", got)
	}
	if c.SelectionComputeTime(0) != 0 || c.SelectionComputeTime(-5) != 0 {
		t.Error("degenerate FLOPs should cost zero")
	}
}
