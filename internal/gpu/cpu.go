package gpu

import "time"

// HostCPU models the server CPU that the CPU-based selection baselines
// (CRAIG and k-Centers in Fig 4) run on. CPU-side selection must first
// move the candidate data from storage into host memory — the data
// movement NeSSA eliminates by selecting near-storage — and then pay
// the proxy forward pass and distance computations at CPU throughput.
type HostCPU struct {
	Name           string
	SustainedFLOPS float64 // dense f32 throughput across cores
	LoadBW         float64 // bytes/s from the drive into host DRAM (§4.4: 1.4 GB/s)
}

// DefaultHostCPU is a contemporary 16-core AVX-512 server CPU.
func DefaultHostCPU() HostCPU {
	return HostCPU{Name: "Xeon-16c", SustainedFLOPS: 400e9, LoadBW: 1.4e9}
}

// LoadTime reports the time to stage bytes of candidate data into host
// memory for selection.
func (c HostCPU) LoadTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / c.LoadBW * float64(time.Second))
}

// SelectionComputeTime reports the time for flops floating-point
// operations of selection math on the CPU.
func (c HostCPU) SelectionComputeTime(flops float64) time.Duration {
	if flops <= 0 {
		return 0
	}
	return time.Duration(flops / c.SustainedFLOPS * float64(time.Second))
}

// ln(1/0.1): stochastic-greedy candidate evaluations per element at
// ε = 0.1 (Mirzasoleiman et al. 2015).
const stochasticGreedyFactor = 2.302585

// proxyFwdFrac is the fraction of the target network's forward cost
// that the selection-side proxy forward pass costs (last stage +
// classifier head re-evaluated on cached activations).
const proxyFwdFrac = 0.05

// CRAIGSelectionFLOPs estimates the per-epoch selection cost of
// CPU-side CRAIG over n candidates selecting k medoids: a proxy
// forward pass to refresh last-layer gradients plus stochastic-greedy
// facility-location distance evaluations on gradDim-dimensional
// gradient proxies (3 FLOPs per dimension per evaluation).
func CRAIGSelectionFLOPs(n, k, gradDim int, targetFwdGFLOPs float64) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	fwd := float64(n) * targetFwdGFLOPs * 1e9 * proxyFwdFrac
	dist := float64(n) * stochasticGreedyFactor * 3 * float64(gradDim)
	return fwd + dist
}

// KCentersSelectionFLOPs estimates per-epoch CPU k-Centers (greedy
// farthest-point, Sener & Savarese) over penultimate-layer feature
// embeddings: a forward pass to extract featDim-dimensional features
// plus the classic O(n·k·d) farthest-point sweep — each of the k
// selected centers requires one min-distance update scan over all n
// candidates. Because it clusters wide feature embeddings with a
// per-center full scan instead of C-dimensional gradient proxies with
// a stochastic scan, its cost dwarfs CRAIG's — which is why Fig 4
// shows it slowest.
func KCentersSelectionFLOPs(n, k, featDim int, targetFwdGFLOPs float64) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	fwd := float64(n) * targetFwdGFLOPs * 1e9 * proxyFwdFrac
	dist := float64(n) * float64(k) * 3 * float64(featDim)
	return fwd + dist
}
