package gpu

// ModelProfile is the compute profile of one image-classification
// architecture: forward GFLOPs per image at its native input
// resolution, plus parameter count for transfer-size modelling.
type ModelProfile struct {
	Name          string
	Year          int     // publication year (Fig 1 x-axis)
	ForwardGFLOPs float64 // per image
	MParams       float64 // millions of parameters
}

// Fig1Catalog returns the decade of ImageNet-1k classifiers whose
// per-epoch training time Fig 1 plots, in chronological order. FLOP
// counts are the standard published per-image forward costs at each
// model's native resolution.
func Fig1Catalog() []ModelProfile {
	return []ModelProfile{
		{Name: "AlexNet", Year: 2012, ForwardGFLOPs: 0.72, MParams: 61},
		{Name: "VGG-16", Year: 2014, ForwardGFLOPs: 15.5, MParams: 138},
		{Name: "GoogLeNet", Year: 2014, ForwardGFLOPs: 1.5, MParams: 6.8},
		{Name: "ResNet-50", Year: 2015, ForwardGFLOPs: 4.1, MParams: 25.6},
		{Name: "ResNet-152", Year: 2016, ForwardGFLOPs: 11.5, MParams: 60.2},
		{Name: "DenseNet-201", Year: 2017, ForwardGFLOPs: 4.3, MParams: 20},
		{Name: "SENet-154", Year: 2018, ForwardGFLOPs: 20.7, MParams: 115},
		{Name: "EfficientNet-B7", Year: 2019, ForwardGFLOPs: 37, MParams: 66},
		{Name: "ViT-L/16", Year: 2021, ForwardGFLOPs: 61.6, MParams: 307},
	}
}

// NetworkProfile maps the Table 1 target networks (at each dataset's
// input resolution) to their per-image forward cost. These drive the
// GPU-side timing of Table 2 / Figs 2 and 4.
//
//	ResNet-20      — CIFAR-style 32×32 (He et al. CIFAR variant)
//	ResNet-18      — CIFAR-style 32×32
//	ResNet-18@64   — TinyImageNet 64×64 (4× the pixels of 32×32)
//	ResNet-50      — ImageNet-style 224×224
func NetworkProfile(name string) (ModelProfile, bool) {
	switch name {
	case "ResNet-20":
		return ModelProfile{Name: "ResNet-20", Year: 2015, ForwardGFLOPs: 0.041, MParams: 0.27}, true
	case "ResNet-18":
		return ModelProfile{Name: "ResNet-18", Year: 2015, ForwardGFLOPs: 0.556, MParams: 11.2}, true
	case "ResNet-18@64":
		return ModelProfile{Name: "ResNet-18@64", Year: 2015, ForwardGFLOPs: 2.22, MParams: 11.2}, true
	case "ResNet-50":
		return ModelProfile{Name: "ResNet-50", Year: 2015, ForwardGFLOPs: 4.1, MParams: 25.6}, true
	}
	return ModelProfile{}, false
}

// DatasetNetwork resolves a Table 1 dataset's network name (adjusting
// ResNet-18 to its 64×64 variant for TinyImageNet).
func DatasetNetwork(dataset, network string) (ModelProfile, bool) {
	if dataset == "TinyImageNet" && network == "ResNet-18" {
		return NetworkProfile("ResNet-18@64")
	}
	return NetworkProfile(network)
}
