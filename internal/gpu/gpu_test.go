package gpu

import (
	"math"
	"testing"
	"time"

	"nessa/internal/data"
)

func TestFig2MNISTMovementShare(t *testing.T) {
	// Paper §1: MNIST (0.5 KB/image, 50 K images) spends ~5.4 % of
	// training time on data movement on a V100.
	g := V100()
	m, _ := NetworkProfile("ResNet-20")
	b := g.Epoch(50_000, 512, m.ForwardGFLOPs)
	share := b.MovementShare() * 100
	if share < 4.0 || share > 7.0 {
		t.Fatalf("MNIST movement share = %.1f %%, want ~5.4 %%", share)
	}
}

func TestFig2ImageNet100MovementShare(t *testing.T) {
	// Paper §1: ImageNet-100 (130 KB/image, 130 K images) spends
	// ~40.4 % of training time on data movement.
	g := V100()
	m, _ := NetworkProfile("ResNet-50")
	spec, _ := data.Lookup("ImageNet-100")
	b := g.Epoch(spec.Train, spec.BytesPerImage, m.ForwardGFLOPs)
	share := b.MovementShare() * 100
	if share < 35.0 || share > 48.0 {
		t.Fatalf("ImageNet-100 movement share = %.1f %%, want ~40.4 %%", share)
	}
}

func TestMovementShareGrowsWithImageBytes(t *testing.T) {
	g := V100()
	m, _ := NetworkProfile("ResNet-50")
	small := g.Epoch(130_000, 3*1024, m.ForwardGFLOPs).MovementShare()
	big := g.Epoch(130_000, 129*1024, m.ForwardGFLOPs).MovementShare()
	if big <= small {
		t.Fatalf("movement share should grow with image size: %.3f vs %.3f", small, big)
	}
}

func TestColdCacheSlowerThanWarm(t *testing.T) {
	g := V100()
	warm := g.LoadTimePerImage(3*1024, 1024*1024) // tiny dataset: cached
	cold := g.LoadTimePerImage(3*1024, 100*1024*1024*1024)
	if cold <= warm {
		t.Fatalf("cold load (%v) should exceed cached load (%v)", cold, warm)
	}
}

func TestFig1TrainingTimesRise(t *testing.T) {
	// Fig 1: per-epoch ImageNet-1k training time grows dramatically
	// from AlexNet (2012) to ViT-L (2021).
	g := A100()
	spec := data.ImageNet1k()
	cat := Fig1Catalog()
	first := g.EpochOverlapped(spec.Train, spec.BytesPerImage, cat[0].ForwardGFLOPs).Total
	last := g.EpochOverlapped(spec.Train, spec.BytesPerImage, cat[len(cat)-1].ForwardGFLOPs).Total
	if ratio := last.Seconds() / first.Seconds(); ratio < 20 {
		t.Fatalf("ViT-L/AlexNet epoch-time ratio = %.1f, want > 20×", ratio)
	}
	// Spot values: AlexNet tens of seconds, ViT-L around an hour.
	if first < 20*time.Second || first > 5*time.Minute {
		t.Errorf("AlexNet epoch = %v, want O(1 min)", first)
	}
	if last < 30*time.Minute || last > 3*time.Hour {
		t.Errorf("ViT-L epoch = %v, want O(1 h)", last)
	}
}

func TestFig1CatalogChronological(t *testing.T) {
	cat := Fig1Catalog()
	if len(cat) < 8 {
		t.Fatalf("catalog has %d models, want a decade's worth (>=8)", len(cat))
	}
	for i := 1; i < len(cat); i++ {
		if cat[i].Year < cat[i-1].Year {
			t.Fatalf("catalog not chronological at %s", cat[i].Name)
		}
	}
}

func TestNetworkProfiles(t *testing.T) {
	for _, name := range []string{"ResNet-20", "ResNet-18", "ResNet-18@64", "ResNet-50"} {
		m, ok := NetworkProfile(name)
		if !ok || m.ForwardGFLOPs <= 0 {
			t.Errorf("missing or invalid profile %q", name)
		}
	}
	if _, ok := NetworkProfile("LeNet"); ok {
		t.Error("unexpected profile for unknown network")
	}
}

func TestDatasetNetworkTinyImageNetUpscales(t *testing.T) {
	m, ok := DatasetNetwork("TinyImageNet", "ResNet-18")
	if !ok || m.Name != "ResNet-18@64" {
		t.Fatalf("TinyImageNet should map to ResNet-18@64, got %v", m.Name)
	}
	m, _ = DatasetNetwork("CIFAR-100", "ResNet-18")
	if m.Name != "ResNet-18" {
		t.Fatalf("CIFAR-100 should keep ResNet-18, got %v", m.Name)
	}
}

func TestComputeTimeLinearInFLOPs(t *testing.T) {
	g := V100()
	a := g.ComputeTimePerImage(1)
	b := g.ComputeTimePerImage(2)
	if b != 2*a {
		t.Fatalf("compute time not linear: %v vs %v", a, b)
	}
	if g.ComputeTimePerImage(0) != 0 {
		t.Error("zero FLOPs should take zero time")
	}
}

func TestEpochNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative image count")
		}
	}()
	V100().Epoch(-1, 100, 1)
}

func TestHostCPULoadTime(t *testing.T) {
	c := DefaultHostCPU()
	// 1.4 GB at 1.4 GB/s = 1 s.
	got := c.LoadTime(1_400_000_000)
	if math.Abs(got.Seconds()-1) > 1e-9 {
		t.Fatalf("load time = %v, want 1s", got)
	}
	if c.LoadTime(0) != 0 {
		t.Error("zero bytes should take zero time")
	}
}

func TestKCentersCostlierThanCRAIG(t *testing.T) {
	// The structural reason Fig 4 orders k-Centers slowest: it clusters
	// wide feature embeddings instead of C-dim gradient proxies.
	n, k := 50_000, 15_000
	craig := CRAIGSelectionFLOPs(n, k, 10, 0.041)
	kc := KCentersSelectionFLOPs(n, k, 512, 0.041)
	if kc <= craig {
		t.Fatalf("k-Centers FLOPs (%.3g) should exceed CRAIG's (%.3g)", kc, craig)
	}
	if ratio := kc / craig; ratio < 2 {
		t.Errorf("k-Centers/CRAIG cost ratio = %.1f, want a wide gap", ratio)
	}
}

func TestSelectionFLOPsDegenerate(t *testing.T) {
	if CRAIGSelectionFLOPs(0, 5, 10, 1) != 0 || KCentersSelectionFLOPs(5, 0, 10, 1) != 0 {
		t.Error("degenerate selection should cost zero")
	}
}

func TestGPUCatalogPower(t *testing.T) {
	// §2.2's energy argument: K1200 45 W, A100 250 W (vs FPGA 7.5 W).
	if K1200().Watts != 45 {
		t.Errorf("K1200 = %v W, want 45", K1200().Watts)
	}
	if A100().Watts != 250 {
		t.Errorf("A100 = %v W, want 250", A100().Watts)
	}
}

func TestKCentersScalesWithK(t *testing.T) {
	// The O(n·k·d) sweep: doubling k should nearly double the distance
	// cost (the forward-pass term is shared).
	a := KCentersSelectionFLOPs(50_000, 5_000, 512, 0)
	b := KCentersSelectionFLOPs(50_000, 10_000, 512, 0)
	if math.Abs(b/a-2) > 1e-9 {
		t.Fatalf("k-Centers distance cost ratio = %v, want exactly 2", b/a)
	}
}
