package gpu

import (
	"testing"
	"time"
)

func TestDataParallelValidation(t *testing.T) {
	if _, err := NewDataParallel(V100(), 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestAllReduceSingleWorkerFree(t *testing.T) {
	d, _ := NewDataParallel(V100(), 1)
	if got := d.AllReduceTime(1 << 30); got != 0 {
		t.Fatalf("single-worker all-reduce = %v, want 0", got)
	}
}

func TestAllReduceVolumeFormula(t *testing.T) {
	d, _ := NewDataParallel(V100(), 4)
	// 2·(3/4)·1 GB at 50 GB/s = 30 ms plus latency.
	got := d.AllReduceTime(1e9)
	want := d.AllReduceL + 30*time.Millisecond
	if got != want {
		t.Fatalf("all-reduce = %v, want %v", got, want)
	}
}

func TestMultiGPUSpeedupNearLinearForBigModels(t *testing.T) {
	// ResNet-50-class work (compute-heavy): 4 GPUs should deliver
	// >3× despite the sync cost.
	d, _ := NewDataParallel(V100(), 4)
	s := d.Speedup(50_000, 4.1, 100*1024*1024, 128)
	if s < 3.0 || s > 4.0 {
		t.Fatalf("4-GPU ResNet-50 speed-up = %.2f, want in (3,4]", s)
	}
}

func TestMultiGPUSyncBoundForTinyModels(t *testing.T) {
	// A tiny model with huge gradients is all-reduce-bound: scaling
	// efficiency collapses.
	d, _ := NewDataParallel(V100(), 8)
	tiny := d.Speedup(50_000, 0.001, 500*1024*1024, 128)
	big := d.Speedup(50_000, 10, 500*1024*1024, 128)
	if tiny >= big {
		t.Fatalf("sync-bound speed-up (%.2f) not below compute-bound (%.2f)", tiny, big)
	}
	if tiny > 2 {
		t.Fatalf("sync-bound config scaled %.2fx; all-reduce model too cheap", tiny)
	}
}

func TestEpochTimeDegenerate(t *testing.T) {
	d, _ := NewDataParallel(V100(), 2)
	if d.EpochTime(0, 1, 1024, 128) != 0 {
		t.Error("zero images should take zero time")
	}
	if d.EpochTime(100, 1, 1024, 0) != 0 {
		t.Error("zero batch should take zero time")
	}
}

func TestMoreWorkersNeverSlowerWhenComputeBound(t *testing.T) {
	prev := time.Duration(1 << 62)
	for _, w := range []int{1, 2, 4, 8} {
		d, _ := NewDataParallel(V100(), w)
		cur := d.EpochTime(50_000, 4.1, 25*1024*1024, 128)
		if cur > prev {
			t.Fatalf("%d workers slower than %d", w, w/2)
		}
		prev = cur
	}
}
