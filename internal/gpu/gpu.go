// Package gpu models the training-side hardware of the NeSSA system:
// a GPU catalog (the K1200, V100, and A100 the paper references), a
// FLOP registry of image-classification architectures (Fig 1), a
// data-loading pipeline model that exposes the data-movement share of
// training time (Fig 2), and a host-CPU cost model for the CPU-based
// selection baselines of Fig 4.
//
// Times produced here are simulated wall clock on a virtual timeline —
// the paper measured the same quantities on real hardware; see
// DESIGN.md §1 for the substitution rationale.
package gpu

import (
	"fmt"
	"time"
)

// GPU describes one accelerator's sustained training characteristics.
type GPU struct {
	Name           string
	SustainedFLOPS float64 // sustained training FLOP/s (fwd+bwd mix)
	Watts          float64
	IngestCachedBW float64 // bytes/s re-reading a dataset in page cache
	IngestColdBW   float64 // bytes/s streaming small files from disk
	CacheBytes     int64   // host page cache available for the dataset
	DecodeFixed    time.Duration
	DecodePerKB    time.Duration
}

// V100 is the profiling GPU of Fig 2.
func V100() GPU {
	return GPU{
		Name:           "V100",
		SustainedFLOPS: 12e12,
		Watts:          300,
		IngestCachedBW: 10e9,
		IngestColdBW:   0.18e9,
		CacheBytes:     12 * 1024 * 1024 * 1024,
		DecodeFixed:    400 * time.Nanosecond,
		DecodePerKB:    270 * time.Nanosecond,
	}
}

// A100 is the Fig 1 GPU.
func A100() GPU {
	return GPU{
		Name:           "A100",
		SustainedFLOPS: 60e12,
		Watts:          250,
		IngestCachedBW: 16e9,
		IngestColdBW:   3e9, // NVMe sequential streaming with a tuned loader
		CacheBytes:     24 * 1024 * 1024 * 1024,
		DecodeFixed:    400 * time.Nanosecond,
		DecodePerKB:    270 * time.Nanosecond,
	}
}

// K1200 is the low-power GPU the paper contrasts against the FPGA's
// 7.5 W envelope (§2.2). Included for the energy comparison.
func K1200() GPU {
	return GPU{
		Name:           "K1200",
		SustainedFLOPS: 0.8e12,
		Watts:          45,
		IngestCachedBW: 6e9,
		IngestColdBW:   0.15e9,
		CacheBytes:     8 * 1024 * 1024 * 1024,
		DecodeFixed:    400 * time.Nanosecond,
		DecodePerKB:    270 * time.Nanosecond,
	}
}

// ComputeTimePerImage reports the training compute time for one image
// of a model with fwdGFLOPs forward cost. Training ≈ 3× forward
// (forward + input/weight backward), the standard rule of thumb.
func (g GPU) ComputeTimePerImage(fwdGFLOPs float64) time.Duration {
	if fwdGFLOPs <= 0 {
		return 0
	}
	sec := 3 * fwdGFLOPs * 1e9 / g.SustainedFLOPS
	return time.Duration(sec * float64(time.Second))
}

// LoadTimePerImage reports the data-pipeline cost of delivering one
// record of bytesPerImage to the GPU when the full dataset occupies
// datasetBytes: storage/ingest transfer (page-cached if the dataset
// fits the cache, cold small-file streaming otherwise) plus CPU decode
// and augmentation.
func (g GPU) LoadTimePerImage(bytesPerImage, datasetBytes int64) time.Duration {
	if bytesPerImage <= 0 {
		return 0
	}
	bw := g.IngestCachedBW
	if datasetBytes > g.CacheBytes {
		bw = g.IngestColdBW
	}
	transfer := time.Duration(float64(bytesPerImage) / bw * float64(time.Second))
	decode := g.DecodeFixed + time.Duration(float64(bytesPerImage)/1024*float64(g.DecodePerKB))
	return transfer + decode
}

// EpochBreakdown is the per-epoch time split of a training run.
type EpochBreakdown struct {
	Compute time.Duration // GPU gradient computation
	Load    time.Duration // data movement + decode
	Total   time.Duration // Compute + Load (the paper's Fig 2 is unoverlapped shares)
}

// MovementShare reports the fraction of epoch time spent on data
// movement, the quantity Fig 2 plots.
func (b EpochBreakdown) MovementShare() float64 {
	if b.Total <= 0 {
		return 0
	}
	return b.Load.Seconds() / b.Total.Seconds()
}

// Epoch computes the breakdown of one epoch over n images of
// bytesPerImage each with a model of fwdGFLOPs forward cost per image.
// Compute and load serialize, matching the unoverlapped shares Fig 2
// profiles.
func (g GPU) Epoch(n int, bytesPerImage int64, fwdGFLOPs float64) EpochBreakdown {
	if n < 0 {
		panic(fmt.Sprintf("gpu: negative image count %d", n))
	}
	compute := time.Duration(int64(n)) * g.ComputeTimePerImage(fwdGFLOPs)
	load := time.Duration(int64(n)) * g.LoadTimePerImage(bytesPerImage, int64(n)*bytesPerImage)
	return EpochBreakdown{Compute: compute, Load: load, Total: compute + load}
}

// EpochOverlapped is Epoch under a fully pipelined loader (prefetch
// threads hide whichever of compute/load is shorter): the epoch takes
// the maximum of the two. This is the regime of the tuned ImageNet-1k
// training runs Fig 1 samples.
func (g GPU) EpochOverlapped(n int, bytesPerImage int64, fwdGFLOPs float64) EpochBreakdown {
	b := g.Epoch(n, bytesPerImage, fwdGFLOPs)
	b.Total = maxDur(b.Compute, b.Load)
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
