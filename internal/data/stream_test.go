package data

import (
	"encoding/binary"
	"testing"

	"nessa/internal/parallel"
)

func streamSpec() Spec {
	return Spec{
		Name: "stream-test", Classes: 5, BytesPerImage: 128,
		FeatureDim: 16, Spread: 0.1, HardFrac: 0.2, NoiseFrac: 0.05, Seed: 71,
		Modes: 3, ModeSpread: 1.0, ModeDecay: 0.6,
	}
}

// TestRecordStreamFillDeterministic: Fill is a pure function of the
// range — re-reads, unaligned reads, and whole-object reads all agree.
func TestRecordStreamFillDeterministic(t *testing.T) {
	rs, err := NewRecordStream(streamSpec(), 50)
	if err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, rs.Size())
	rs.Fill(0, whole)
	again := make([]byte, rs.Size())
	rs.Fill(0, again)
	for i := range whole {
		if whole[i] != again[i] {
			t.Fatalf("fill not deterministic at byte %d", i)
		}
	}
	// Unaligned span: must match the corresponding slice of the whole.
	span := make([]byte, 300)
	off := int64(37)
	rs.Fill(off, span)
	for i := range span {
		if span[i] != whole[off+int64(i)] {
			t.Fatalf("unaligned fill diverges at byte %d", i)
		}
	}
}

// TestRecordStreamRecordsValid: every synthesized record passes the
// codec's CRC and carries the label that Label(i) predicts.
func TestRecordStreamRecordsValid(t *testing.T) {
	rs, err := NewRecordStream(streamSpec(), 200)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, rs.RecordBytes())
	feats := make([]float32, rs.Spec.FeatureDim)
	for i := 0; i < rs.Len(); i++ {
		rs.EncodeRecord(i, rec)
		if err := VerifyRecord(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		label := int(binary.LittleEndian.Uint16(rec[0:2]))
		if want := rs.Label(i); label != want {
			t.Fatalf("record %d encodes label %d, Label says %d", i, label, want)
		}
		if got := rs.Sample(i, feats); got != label {
			t.Fatalf("record %d: Sample label %d, encoded %d", i, got, label)
		}
	}
}

// TestRecordStreamCountLabels: the parallel tally matches a serial
// count and is worker-count invariant.
func TestRecordStreamCountLabels(t *testing.T) {
	rs, err := NewRecordStream(streamSpec(), 500)
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]int, rs.Spec.Classes)
	for i := 0; i < rs.Len(); i++ {
		serial[rs.Label(i)]++
	}
	for _, w := range []int{1, 4} {
		parallel.SetDefaultWorkers(w)
		counts := rs.CountLabels()
		parallel.SetDefaultWorkers(0)
		total := 0
		for y, c := range counts {
			if c != serial[y] {
				t.Fatalf("workers=%d: class %d count %d, want %d", w, y, c, serial[y])
			}
			total += c
		}
		if total != rs.Len() {
			t.Fatalf("workers=%d: counts sum %d, want %d", w, total, rs.Len())
		}
	}
}

func TestRecordStreamValidation(t *testing.T) {
	if _, err := NewRecordStream(streamSpec(), 0); err == nil {
		t.Fatal("zero-length stream accepted")
	}
	spec := streamSpec()
	spec.FeatureDim = 0
	if _, err := NewRecordStream(spec, 10); err == nil {
		t.Fatal("spec without simulation scale accepted")
	}
}
