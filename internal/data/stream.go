package data

import (
	"encoding/binary"
	"fmt"
	"math"

	"nessa/internal/parallel"
	"nessa/internal/tensor"
)

// RecordStream synthesizes an arbitrarily large dataset one record at
// a time. It shares the Gaussian-mixture structure of Generate (the
// same Spec difficulty knobs), but draws every sample from its own
// avalanche-mixed RNG stream (the ClassStream idiom), so record i can
// be produced in O(1) without generating records 0..i-1. That makes
// the stream usable as a storage.FillFunc: the simulated drive holds a
// 10M+ sample object whose bytes are synthesized on demand, and two
// reads of the same range always see the same bytes.
//
// The per-record draw order puts every label decision before the
// feature noise, so Label(i) costs a handful of RNG draws rather than
// FeatureDim of them.
type RecordStream struct {
	Spec Spec
	N    int

	mix  *mixture
	size int64

	// Record scratch for unaligned Fill spans. FillFunc calls are
	// serialized under the drive mutex, so one buffer suffices.
	rec []byte
}

// NewRecordStream builds a deterministic record stream of n samples
// for spec. The mixture (class centers, sub-modes) is derived from
// spec.Seed exactly as in Generate; the per-sample streams are
// independent of Generate's sequential sampling, so a RecordStream is
// a different (same-distribution) dataset than Generate's.
func NewRecordStream(spec Spec, n int) (*RecordStream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("data: record stream needs a positive sample count, got %d", n)
	}
	size, err := RecordSize(spec)
	if err != nil {
		return nil, err
	}
	if spec.FeatureDim <= 0 || spec.Classes <= 0 {
		return nil, fmt.Errorf("data: spec %q has no simulation scale", spec.Name)
	}
	rng := tensor.NewRNG(spec.Seed)
	return &RecordStream{
		Spec: spec,
		N:    n,
		mix:  newMixture(rng, spec),
		size: size,
		rec:  make([]byte, size),
	}, nil
}

// Len reports the number of records in the stream.
func (s *RecordStream) Len() int { return s.N }

// RecordBytes reports the on-disk size of one record.
func (s *RecordStream) RecordBytes() int64 { return s.size }

// Size reports the total on-disk size of the stream object.
func (s *RecordStream) Size() int64 { return s.size * int64(s.N) }

// recordRNG derives the avalanche-mixed RNG for record i.
func (s *RecordStream) recordRNG(i int) *tensor.RNG {
	return tensor.NewRNG(s.Spec.Seed + uint64(i)).Split()
}

// drawLabel runs the label portion of record i's draw sequence:
// class, mode, hard-tail pull target, and label flip.
func (s *RecordStream) drawLabel(i int, rng *tensor.RNG) (label, cls, mode, hardOther int) {
	spec := s.Spec
	cls = i % spec.Classes // balanced classes, as in Generate
	mode = s.mix.pick(rng)
	hardOther = -1
	if rng.Float64() < spec.HardFrac && spec.Classes > 1 {
		other := rng.Intn(spec.Classes)
		for other == cls {
			other = rng.Intn(spec.Classes)
		}
		hardOther = other
	}
	label = cls
	if rng.Float64() < spec.NoiseFrac && spec.Classes > 1 {
		flip := rng.Intn(spec.Classes)
		for flip == cls {
			flip = rng.Intn(spec.Classes)
		}
		label = flip
	}
	return label, cls, mode, hardOther
}

// Label reports the label of record i without synthesizing features.
func (s *RecordStream) Label(i int) int {
	label, _, _, _ := s.drawLabel(i, s.recordRNG(i))
	return label
}

// Sample synthesizes record i's features into the given slice (which
// must have length Spec.FeatureDim) and returns its label.
func (s *RecordStream) Sample(i int, features []float32) int {
	rng := s.recordRNG(i)
	label, cls, mode, hardOther := s.drawLabel(i, rng)
	copy(features, s.mix.center(cls, mode))
	if hardOther >= 0 {
		orow := s.mix.center(hardOther, 0)
		for j := range features {
			features[j] = 0.55*features[j] + 0.45*orow[j]
		}
	}
	for j := range features {
		features[j] += rng.NormFloat32() * float32(s.Spec.Spread)
	}
	return label
}

// EncodeRecord serializes record i into rec, which must be exactly
// RecordBytes long. The layout and CRC match EncodeSample.
func (s *RecordStream) EncodeRecord(i int, rec []byte) {
	if int64(len(rec)) != s.size {
		panic(fmt.Sprintf("data: record buffer is %d bytes, want %d", len(rec), s.size))
	}
	for j := range rec {
		rec[j] = 0
	}
	features := make([]float32, s.Spec.FeatureDim)
	label := s.Sample(i, features)
	binary.LittleEndian.PutUint16(rec[0:2], uint16(label))
	binary.LittleEndian.PutUint32(rec[2:6], uint32(s.Spec.FeatureDim))
	for j, v := range features {
		binary.LittleEndian.PutUint32(rec[recordHeader+4*j:], math.Float32bits(v))
	}
	binary.LittleEndian.PutUint32(rec[crcOff:crcOff+4], recordCRC(rec))
}

// Fill implements storage.FillFunc over the stream's record layout:
// it synthesizes the bytes of [off, off+len(buf)), record-aligned or
// not. Aligned full records are encoded straight into buf; partial
// head/tail records go through the stream's scratch record.
func (s *RecordStream) Fill(off int64, buf []byte) {
	for len(buf) > 0 {
		i := int(off / s.size)
		rOff := off % s.size
		if rOff == 0 && int64(len(buf)) >= s.size {
			s.EncodeRecord(i, buf[:s.size])
			off += s.size
			buf = buf[s.size:]
			continue
		}
		s.EncodeRecord(i, s.rec)
		n := copy(buf, s.rec[rOff:])
		off += int64(n)
		buf = buf[n:]
	}
}

// CountLabels tallies the exact per-class record counts of the stream
// with a parallel label-only pass (no feature synthesis). The chunk
// grid is fixed, and each chunk's tally lands in its own slot, so the
// result is identical at any worker count.
func (s *RecordStream) CountLabels() []int {
	pool := parallel.Default()
	chunks := parallel.Chunks(s.N)
	partial := make([]int, chunks*s.Spec.Classes)
	pool.ForChunks(s.N, func(c, lo, hi int) {
		row := partial[c*s.Spec.Classes : (c+1)*s.Spec.Classes]
		for i := lo; i < hi; i++ {
			row[s.Label(i)]++
		}
	})
	counts := make([]int, s.Spec.Classes)
	for c := 0; c < chunks; c++ {
		for y := 0; y < s.Spec.Classes; y++ {
			counts[y] += partial[c*s.Spec.Classes+y]
		}
	}
	return counts
}
