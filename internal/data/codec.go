package data

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"nessa/internal/faults"
	"nessa/internal/tensor"
)

// Record layout on the simulated SSD. Every sample occupies exactly
// Spec.BytesPerImage bytes so that storage-side byte accounting matches
// the paper's per-image sizes (§4.4: CIFAR-10 images are 0.003 MB,
// ImageNet-100 images 0.126 MB). The payload is:
//
//	[0:2]   uint16 label (little endian)
//	[2:6]   uint32 feature count
//	[6:10]  uint32 CRC32C of the whole record with this field zeroed
//	[10:..] float32 features
//	[..:]   zero padding up to BytesPerImage
//
// The CRC covers the entire record — header, features, and padding —
// so a bit flip anywhere in the stored bytes is detected (DESIGN.md
// §4.6); single-bit NAND errors are always caught by CRC32C. RecordSize
// validates that the features fit the record.
const (
	recordHeader = 10
	crcOff       = 6
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum real storage stacks use for end-to-end
// data integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordCRC computes the record checksum: CRC32C over buf with the
// 4-byte CRC field treated as zero.
func recordCRC(buf []byte) uint32 {
	crc := crc32.Update(0, castagnoli, buf[:crcOff])
	var zeros [4]byte
	crc = crc32.Update(crc, castagnoli, zeros[:])
	return crc32.Update(crc, castagnoli, buf[crcOff+4:])
}

// RecordSize reports the per-sample on-disk record size for spec and
// validates that the simulated feature payload fits within it.
func RecordSize(spec Spec) (int64, error) {
	need := int64(recordHeader + 4*spec.FeatureDim)
	if spec.BytesPerImage < need {
		return 0, fmt.Errorf("data: %s record size %d cannot hold %d feature bytes",
			spec.Name, spec.BytesPerImage, need)
	}
	return spec.BytesPerImage, nil
}

// EncodeSample serializes sample i of d into a fresh record buffer.
func EncodeSample(d *Dataset, i int) ([]byte, error) {
	size, err := RecordSize(d.Spec)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= d.Len() {
		return nil, fmt.Errorf("data: sample index %d out of range [0,%d)", i, d.Len())
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint16(buf[0:2], uint16(d.Labels[i]))
	binary.LittleEndian.PutUint32(buf[2:6], uint32(d.X.Cols))
	row := d.X.Row(i)
	for j, v := range row {
		binary.LittleEndian.PutUint32(buf[recordHeader+4*j:], math.Float32bits(v))
	}
	binary.LittleEndian.PutUint32(buf[crcOff:crcOff+4], recordCRC(buf))
	return buf, nil
}

// VerifyRecord checks a record's CRC32C without decoding it. A mismatch
// returns an error wrapping faults.ErrCorruptRecord.
func VerifyRecord(buf []byte) error {
	if len(buf) < recordHeader {
		return fmt.Errorf("data: record too short (%d bytes)", len(buf))
	}
	stored := binary.LittleEndian.Uint32(buf[crcOff : crcOff+4])
	if got := recordCRC(buf); got != stored {
		return fmt.Errorf("data: stored CRC %08x, computed %08x: %w",
			stored, got, faults.ErrCorruptRecord)
	}
	return nil
}

// VerifyImage CRC-checks every record of a contiguous record image —
// the integrity pass the controller runs over each near-storage scan.
// It returns nil if every record is clean, or an error wrapping
// faults.ErrCorruptRecord identifying the first corrupt record.
func VerifyImage(img []byte, recordSize int64) error {
	if recordSize <= 0 {
		return fmt.Errorf("data: record size %d must be positive", recordSize)
	}
	if int64(len(img))%recordSize != 0 {
		return fmt.Errorf("data: image length %d not a multiple of record size %d", len(img), recordSize)
	}
	for off := int64(0); off < int64(len(img)); off += recordSize {
		if err := VerifyRecord(img[off : off+recordSize]); err != nil {
			return fmt.Errorf("data: record %d: %w", off/recordSize, err)
		}
	}
	return nil
}

// DecodeSample parses a record buffer into a label and feature vector,
// verifying the record CRC first: a corrupted record fails with an
// error wrapping faults.ErrCorruptRecord rather than silently decoding
// flipped bits into training data.
func DecodeSample(buf []byte) (label int, features []float32, err error) {
	if err := VerifyRecord(buf); err != nil {
		return 0, nil, err
	}
	features = make([]float32, binary.LittleEndian.Uint32(buf[2:6]))
	label, err = DecodeRecordInto(buf, features)
	if err != nil {
		return 0, nil, err
	}
	return label, features, nil
}

// DecodeRecordInto parses a record's label and features into the given
// slice without allocating: features must have exactly the record's
// feature count. The CRC is not checked — pair with VerifyRecord or
// VerifyImage when integrity matters; streaming scans verify a whole
// chunk at once and then decode records from it with this.
//
//nessa:shape(features: len=nf, buf: minlen=10+4*nf) header is recordHeader bytes, then 4 bytes per feature
func DecodeRecordInto(buf []byte, features []float32) (int, error) {
	if len(buf) < recordHeader {
		return 0, fmt.Errorf("data: record too short (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[2:6]))
	if n != len(features) {
		return 0, fmt.Errorf("data: record holds %d features, caller expects %d", n, len(features))
	}
	if len(buf) < recordHeader+4*n {
		return 0, fmt.Errorf("data: record truncated: %d features need %d bytes, have %d",
			n, recordHeader+4*n, len(buf))
	}
	for j := range features {
		features[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[recordHeader+4*j:]))
	}
	return int(binary.LittleEndian.Uint16(buf[0:2])), nil
}

// Encode serializes the whole dataset into one contiguous byte image
// (sample i at offset i*BytesPerImage), the layout written to the
// simulated SSD.
func Encode(d *Dataset) ([]byte, error) {
	size, err := RecordSize(d.Spec)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size*int64(d.Len()))
	for i := 0; i < d.Len(); i++ {
		rec, err := EncodeSample(d, i)
		if err != nil {
			return nil, err
		}
		copy(out[int64(i)*size:], rec)
	}
	return out, nil
}

// Decode parses a byte image produced by Encode back into a Dataset.
// spec must match the encoding spec.
func Decode(spec Spec, img []byte) (*Dataset, error) {
	size, err := RecordSize(spec)
	if err != nil {
		return nil, err
	}
	if int64(len(img))%size != 0 {
		return nil, fmt.Errorf("data: image length %d not a multiple of record size %d", len(img), size)
	}
	n := int(int64(len(img)) / size)
	d := &Dataset{Spec: spec, Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		label, feats, err := DecodeSample(img[int64(i)*size : int64(i+1)*size])
		if err != nil {
			return nil, fmt.Errorf("data: sample %d: %w", i, err)
		}
		if d.X == nil {
			d.X = tensor.NewMatrix(n, len(feats))
		}
		copy(d.X.Row(i), feats)
		d.Labels[i] = label
	}
	if d.X == nil {
		d.X = tensor.NewMatrix(0, spec.FeatureDim)
	}
	return d, nil
}
