package data

import (
	"encoding/binary"
	"fmt"
	"math"

	"nessa/internal/tensor"
)

// Record layout on the simulated SSD. Every sample occupies exactly
// Spec.BytesPerImage bytes so that storage-side byte accounting matches
// the paper's per-image sizes (§4.4: CIFAR-10 images are 0.003 MB,
// ImageNet-100 images 0.126 MB). The payload is:
//
//	[0:2]   uint16 label (little endian)
//	[2:6]   uint32 feature count
//	[6:..]  float32 features
//	[..:]   zero padding up to BytesPerImage
//
// RecordSize validates that the features fit the record.
const recordHeader = 6

// RecordSize reports the per-sample on-disk record size for spec and
// validates that the simulated feature payload fits within it.
func RecordSize(spec Spec) (int64, error) {
	need := int64(recordHeader + 4*spec.FeatureDim)
	if spec.BytesPerImage < need {
		return 0, fmt.Errorf("data: %s record size %d cannot hold %d feature bytes",
			spec.Name, spec.BytesPerImage, need)
	}
	return spec.BytesPerImage, nil
}

// EncodeSample serializes sample i of d into a fresh record buffer.
func EncodeSample(d *Dataset, i int) ([]byte, error) {
	size, err := RecordSize(d.Spec)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= d.Len() {
		return nil, fmt.Errorf("data: sample index %d out of range [0,%d)", i, d.Len())
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint16(buf[0:2], uint16(d.Labels[i]))
	binary.LittleEndian.PutUint32(buf[2:6], uint32(d.X.Cols))
	row := d.X.Row(i)
	for j, v := range row {
		binary.LittleEndian.PutUint32(buf[recordHeader+4*j:], math.Float32bits(v))
	}
	return buf, nil
}

// DecodeSample parses a record buffer into a label and feature vector.
func DecodeSample(buf []byte) (label int, features []float32, err error) {
	if len(buf) < recordHeader {
		return 0, nil, fmt.Errorf("data: record too short (%d bytes)", len(buf))
	}
	label = int(binary.LittleEndian.Uint16(buf[0:2]))
	n := int(binary.LittleEndian.Uint32(buf[2:6]))
	if len(buf) < recordHeader+4*n {
		return 0, nil, fmt.Errorf("data: record truncated: %d features need %d bytes, have %d",
			n, recordHeader+4*n, len(buf))
	}
	features = make([]float32, n)
	for j := range features {
		features[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[recordHeader+4*j:]))
	}
	return label, features, nil
}

// Encode serializes the whole dataset into one contiguous byte image
// (sample i at offset i*BytesPerImage), the layout written to the
// simulated SSD.
func Encode(d *Dataset) ([]byte, error) {
	size, err := RecordSize(d.Spec)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size*int64(d.Len()))
	for i := 0; i < d.Len(); i++ {
		rec, err := EncodeSample(d, i)
		if err != nil {
			return nil, err
		}
		copy(out[int64(i)*size:], rec)
	}
	return out, nil
}

// Decode parses a byte image produced by Encode back into a Dataset.
// spec must match the encoding spec.
func Decode(spec Spec, img []byte) (*Dataset, error) {
	size, err := RecordSize(spec)
	if err != nil {
		return nil, err
	}
	if int64(len(img))%size != 0 {
		return nil, fmt.Errorf("data: image length %d not a multiple of record size %d", len(img), size)
	}
	n := int(int64(len(img)) / size)
	d := &Dataset{Spec: spec, Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		label, feats, err := DecodeSample(img[int64(i)*size : int64(i+1)*size])
		if err != nil {
			return nil, fmt.Errorf("data: sample %d: %w", i, err)
		}
		if d.X == nil {
			d.X = tensor.NewMatrix(n, len(feats))
		}
		copy(d.X.Row(i), feats)
		d.Labels[i] = label
	}
	if d.X == nil {
		d.X = tensor.NewMatrix(0, spec.FeatureDim)
	}
	return d, nil
}
