package data

import (
	"errors"
	"testing"
	"testing/quick"

	"nessa/internal/faults"
	"nessa/internal/tensor"
)

func TestRegistryMatchesTable1(t *testing.T) {
	want := []struct {
		name    string
		classes int
		train   int
		network string
	}{
		{"CIFAR-10", 10, 50000, "ResNet-20"},
		{"SVHN", 10, 73000, "ResNet-18"},
		{"CINIC-10", 10, 90000, "ResNet-18"},
		{"CIFAR-100", 100, 50000, "ResNet-18"},
		{"TinyImageNet", 200, 100000, "ResNet-18"},
		{"ImageNet-100", 100, 130000, "ResNet-50"},
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d datasets, want %d", len(reg), len(want))
	}
	for i, w := range want {
		got := reg[i]
		if got.Name != w.name || got.Classes != w.classes || got.Train != w.train || got.Network != w.network {
			t.Errorf("registry[%d] = %+v, want %+v", i, got, w)
		}
	}
}

func TestRegistryImageSizesMatchPaper(t *testing.T) {
	// §1/§4.4: CIFAR-scale images ~3 KB, ImageNet-100 ~0.126 MB.
	c10, _ := Lookup("CIFAR-10")
	if c10.BytesPerImage != 3*1024 {
		t.Errorf("CIFAR-10 bytes/image = %d, want 3072", c10.BytesPerImage)
	}
	in100, _ := Lookup("ImageNet-100")
	mb := float64(in100.BytesPerImage) / (1024 * 1024)
	if mb < 0.12 || mb > 0.13 {
		t.Errorf("ImageNet-100 image = %.4f MB, want ~0.126", mb)
	}
	mnist := MNIST()
	if mnist.BytesPerImage != 512 {
		t.Errorf("MNIST bytes/image = %d, want 512 (0.5 KB)", mnist.BytesPerImage)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("CIFAR-100"); !ok {
		t.Error("CIFAR-100 not found")
	}
	if _, ok := Lookup("MNIST"); !ok {
		t.Error("MNIST not found")
	}
	if _, ok := Lookup("ImageNet-1k"); !ok {
		t.Error("ImageNet-1k not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unexpected dataset found")
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	spec, _ := Lookup("CIFAR-10")
	tr1, te1 := Generate(spec)
	tr2, _ := Generate(spec)

	if tr1.Len() != spec.SimTrain || te1.Len() != spec.SimTest {
		t.Fatalf("sizes = %d/%d, want %d/%d", tr1.Len(), te1.Len(), spec.SimTrain, spec.SimTest)
	}
	if tr1.X.Cols != spec.FeatureDim {
		t.Fatalf("feature dim = %d, want %d", tr1.X.Cols, spec.FeatureDim)
	}
	for i := range tr1.X.Data {
		if tr1.X.Data[i] != tr2.X.Data[i] {
			t.Fatal("generation is not deterministic for a fixed seed")
		}
	}
}

func TestGenerateBalancedClasses(t *testing.T) {
	spec, _ := Lookup("CIFAR-10")
	spec.NoiseFrac = 0 // label noise perturbs exact balance
	tr, _ := Generate(spec)
	counts := make([]int, spec.Classes)
	for _, y := range tr.Labels {
		counts[y]++
	}
	for c, n := range counts {
		if n != spec.SimTrain/spec.Classes {
			t.Errorf("class %d has %d samples, want %d", c, n, spec.SimTrain/spec.Classes)
		}
	}
}

func TestGenerateLabelsInRange(t *testing.T) {
	for _, spec := range Registry() {
		tr, te := Generate(spec)
		for _, d := range []*Dataset{tr, te} {
			for i, y := range d.Labels {
				if y < 0 || y >= spec.Classes {
					t.Fatalf("%s sample %d label %d out of range", spec.Name, i, y)
				}
			}
		}
	}
}

func TestSubset(t *testing.T) {
	spec, _ := Lookup("CIFAR-10")
	tr, _ := Generate(spec)
	idx := []int{5, 0, 17}
	s := tr.Subset(idx)
	if s.Len() != 3 {
		t.Fatalf("subset len = %d, want 3", s.Len())
	}
	for i, src := range idx {
		if s.Labels[i] != tr.Labels[src] {
			t.Errorf("subset label %d = %d, want %d", i, s.Labels[i], tr.Labels[src])
		}
		for j := 0; j < s.X.Cols; j++ {
			if s.X.At(i, j) != tr.X.At(src, j) {
				t.Fatalf("subset row %d differs from source row %d", i, src)
			}
		}
	}
}

func TestClassIndexPartition(t *testing.T) {
	spec, _ := Lookup("CIFAR-100")
	tr, _ := Generate(spec)
	idx := tr.ClassIndex()
	if len(idx) != spec.Classes {
		t.Fatalf("class index has %d classes, want %d", len(idx), spec.Classes)
	}
	total := 0
	for c, list := range idx {
		total += len(list)
		for _, i := range list {
			if tr.Labels[i] != c {
				t.Fatalf("index %d listed under class %d but has label %d", i, c, tr.Labels[i])
			}
		}
	}
	if total != tr.Len() {
		t.Fatalf("class index covers %d samples, want %d", total, tr.Len())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	spec, _ := Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 50, 10
	tr, _ := Generate(spec)
	img, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(img)) != int64(tr.Len())*spec.BytesPerImage {
		t.Fatalf("encoded %d bytes, want %d", len(img), int64(tr.Len())*spec.BytesPerImage)
	}
	back, err := Decode(spec, img)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("decoded %d samples, want %d", back.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if back.Labels[i] != tr.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for j := 0; j < tr.X.Cols; j++ {
			if back.X.At(i, j) != tr.X.At(i, j) {
				t.Fatalf("feature (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		spec := Spec{
			Name: "prop", Classes: 1 + r.Intn(20), BytesPerImage: 4096,
			SimTrain: 1 + r.Intn(20), SimTest: 1, FeatureDim: 1 + r.Intn(64),
			Spread: 0.5, Seed: seed,
		}
		tr, _ := Generate(spec)
		img, err := Encode(tr)
		if err != nil {
			return false
		}
		back, err := Decode(spec, img)
		if err != nil || back.Len() != tr.Len() {
			return false
		}
		for i := range tr.Labels {
			if back.Labels[i] != tr.Labels[i] {
				return false
			}
		}
		for i := range tr.X.Data {
			if back.X.Data[i] != tr.X.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecordSizeTooSmall(t *testing.T) {
	spec := Spec{Name: "tiny", BytesPerImage: 8, FeatureDim: 100}
	if _, err := RecordSize(spec); err == nil {
		t.Fatal("expected error for record too small")
	}
}

func TestDecodeBadImage(t *testing.T) {
	spec, _ := Lookup("CIFAR-10")
	if _, err := Decode(spec, make([]byte, 100)); err == nil {
		t.Fatal("expected error for non-multiple image length")
	}
}

func TestDecodeTruncatedRecord(t *testing.T) {
	if _, _, err := DecodeSample([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for short record")
	}
	// Header claims more features than the buffer holds.
	buf := make([]byte, recordHeader+4)
	buf[2] = 200
	if _, _, err := DecodeSample(buf); err == nil {
		t.Fatal("expected error for truncated features")
	}
}

func TestCRCDetectsEveryByteFlip(t *testing.T) {
	spec, _ := Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 2, 1
	tr, _ := Generate(spec)
	rec, err := EncodeSample(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRecord(rec); err != nil {
		t.Fatalf("fresh record failed verification: %v", err)
	}
	// Flip one bit at every byte position — header, CRC field, features,
	// and padding alike — and require detection each time.
	for i := range rec {
		rec[i] ^= 0x40
		if err := VerifyRecord(rec); !errors.Is(err, faults.ErrCorruptRecord) {
			t.Fatalf("flip at byte %d undetected (err=%v)", i, err)
		}
		if _, _, err := DecodeSample(rec); !errors.Is(err, faults.ErrCorruptRecord) {
			t.Fatalf("DecodeSample accepted corrupt record (flip at %d)", i)
		}
		rec[i] ^= 0x40
	}
	if err := VerifyRecord(rec); err != nil {
		t.Fatalf("restored record failed verification: %v", err)
	}
}

func TestVerifyImage(t *testing.T) {
	spec, _ := Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 8, 1
	tr, _ := Generate(spec)
	img, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyImage(img, spec.BytesPerImage); err != nil {
		t.Fatalf("clean image failed verification: %v", err)
	}
	img[5*spec.BytesPerImage+17] ^= 1
	if err := VerifyImage(img, spec.BytesPerImage); !errors.Is(err, faults.ErrCorruptRecord) {
		t.Fatalf("corrupt record 5 undetected: %v", err)
	}
	if err := VerifyImage(img, 0); err == nil {
		t.Error("zero record size accepted")
	}
	if err := VerifyImage(img[:len(img)-1], spec.BytesPerImage); err == nil {
		t.Error("non-multiple image length accepted")
	}
}

func TestPaperBytes(t *testing.T) {
	spec, _ := Lookup("ImageNet-100")
	want := int64(130000) * 129 * 1024
	if got := spec.PaperBytes(); got != want {
		t.Fatalf("PaperBytes = %d, want %d", got, want)
	}
}

func TestHardFracProducesBoundarySamples(t *testing.T) {
	// With a large HardFrac and tiny spread, hard samples sit measurably
	// farther from their own class center than clean ones.
	spec := Spec{
		Name: "hard", Classes: 4, BytesPerImage: 4096,
		SimTrain: 400, SimTest: 10, FeatureDim: 16,
		Spread: 0.05, HardFrac: 0.5, Seed: 9,
	}
	tr, _ := Generate(spec)
	// Recompute per-class means as center estimates.
	idx := tr.ClassIndex()
	var near, far int
	for c, list := range idx {
		mean := make([]float32, spec.FeatureDim)
		for _, i := range list {
			row := tr.X.Row(i)
			for j := range mean {
				mean[j] += row[j]
			}
		}
		for j := range mean {
			mean[j] /= float32(len(list))
		}
		for _, i := range list {
			d := tensor.SqDist(tr.X.Row(i), mean)
			if d < 0.05 {
				near++
			} else if d > 0.1 {
				far++
			}
		}
		_ = c
	}
	if near == 0 || far == 0 {
		t.Fatalf("expected a bimodal near/far split, got near=%d far=%d", near, far)
	}
}
