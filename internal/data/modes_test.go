package data

import (
	"testing"

	"nessa/internal/tensor"
)

// Tests of the long-tail intra-class mode structure that makes subset
// selection a meaningful problem (DESIGN.md §1).

func TestModeFrequenciesDecayGeometrically(t *testing.T) {
	spec := Spec{
		Name: "modes", Classes: 2, BytesPerImage: 4096,
		SimTrain: 20000, SimTest: 10, FeatureDim: 16,
		Spread: 0.01, Seed: 5, Modes: 4, ModeSpread: 1.0, ModeDecay: 0.5,
	}
	rng := tensor.NewRNG(spec.Seed)
	mix := newMixture(rng, spec)

	counts := make([]int, mix.modes)
	draw := tensor.NewRNG(7)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[mix.pick(draw)]++
	}
	// Expected frequencies with decay 0.5 over 4 modes: 8/15, 4/15, 2/15, 1/15.
	want := []float64{8.0 / 15, 4.0 / 15, 2.0 / 15, 1.0 / 15}
	for j, c := range counts {
		got := float64(c) / n
		if got < want[j]*0.9 || got > want[j]*1.1 {
			t.Errorf("mode %d frequency = %.4f, want ~%.4f", j, got, want[j])
		}
	}
	// Rarer modes must actually be rarer.
	for j := 1; j < mix.modes; j++ {
		if counts[j] >= counts[j-1] {
			t.Errorf("mode %d (%d draws) not rarer than mode %d (%d)", j, counts[j], j-1, counts[j-1])
		}
	}
}

func TestRareModesSitNearForeignClasses(t *testing.T) {
	spec := Spec{
		Name: "hardmodes", Classes: 6, BytesPerImage: 4096,
		SimTrain: 60, SimTest: 10, FeatureDim: 32,
		Spread: 0.01, Seed: 9, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
	}
	rng := tensor.NewRNG(spec.Seed)
	base := classCenters(rng, spec.Classes, spec.FeatureDim)
	mix := newMixture(tensor.NewRNG(spec.Seed), spec)

	// The rarest mode of each class must be closer to some foreign
	// class center than the dominant mode is.
	for c := 0; c < spec.Classes; c++ {
		nearestForeign := func(x []float32) float32 {
			best := float32(1e30)
			for o := 0; o < spec.Classes; o++ {
				if o == c {
					continue
				}
				if d := tensor.SqDist(x, base.Row(o)); d < best {
					best = d
				}
			}
			return best
		}
		domDist := nearestForeign(mix.center(c, 0))
		rareDist := nearestForeign(mix.center(c, mix.modes-1))
		if rareDist >= domDist {
			t.Errorf("class %d rare mode (%.3f) not nearer a foreign class than its dominant mode (%.3f)",
				c, rareDist, domDist)
		}
	}
}

func TestUnimodalSpecUnchangedByModeFields(t *testing.T) {
	spec := Spec{
		Name: "uni", Classes: 3, BytesPerImage: 4096,
		SimTrain: 90, SimTest: 30, FeatureDim: 8,
		Spread: 0.05, Seed: 11, // Modes zero: unimodal
	}
	tr, _ := Generate(spec)
	// With a single mode and tiny spread, samples of a class cluster
	// tightly around one center.
	idx := tr.ClassIndex()
	for c, list := range idx {
		mean := make([]float32, spec.FeatureDim)
		for _, i := range list {
			row := tr.X.Row(i)
			for j := range mean {
				mean[j] += row[j]
			}
		}
		for j := range mean {
			mean[j] /= float32(len(list))
		}
		for _, i := range list {
			if d := tensor.SqDist(tr.X.Row(i), mean); d > 0.5 {
				t.Fatalf("class %d sample %d far from its center (%.3f) despite unimodal spec", c, i, d)
			}
		}
	}
}

func TestRandomSubsetUndersamplesRareModes(t *testing.T) {
	// The structural premise of Table 3: a small random subset contains
	// proportionally few rare-mode samples, while the dataset's rare
	// modes carry a disproportionate share of the decision boundary.
	spec := Spec{
		Name: "tail", Classes: 4, BytesPerImage: 4096,
		SimTrain: 4000, SimTest: 10, FeatureDim: 16,
		Spread: 0.02, Seed: 13, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
	}
	tr, _ := Generate(spec)
	rng := tensor.NewRNG(spec.Seed)
	mix := newMixture(rng, spec)

	modeOf := func(i int) int {
		c := tr.Labels[i]
		best, bd := 0, float32(1e30)
		for j := 0; j < mix.modes; j++ {
			if d := tensor.SqDist(tr.X.Row(i), mix.center(c, j)); d < bd {
				bd, best = d, j
			}
		}
		return best
	}
	rareTotal := 0
	for i := 0; i < tr.Len(); i++ {
		if modeOf(i) >= 4 {
			rareTotal++
		}
	}
	if rareTotal == 0 {
		t.Fatal("no rare-mode samples generated; tail structure broken")
	}
	// A 5 % uniform subset carries ~5 % of the rare samples.
	sub := tensor.NewRNG(17).Perm(tr.Len())[:tr.Len()/20]
	rareInSub := 0
	for _, i := range sub {
		if modeOf(i) >= 4 {
			rareInSub++
		}
	}
	frac := float64(rareInSub) / float64(rareTotal)
	if frac > 0.12 {
		t.Errorf("random 5%% subset holds %.0f%% of rare samples; tail should be undersampled", frac*100)
	}
}
