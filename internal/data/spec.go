// Package data provides the dataset substrate: the registry of the
// paper's evaluation datasets (Table 1 plus the MNIST and ImageNet-1k
// workloads used in Figs 1–2), a seeded synthetic generator that stands
// in for the image datasets (see DESIGN.md §1), and a binary codec for
// laying datasets out on the simulated SSD.
//
// Each Spec carries two scales: the paper scale (Train, BytesPerImage)
// drives every storage- and time-model experiment, byte for byte; the
// sim scale (SimTrain, FeatureDim, difficulty knobs) drives the real
// training runs that produce accuracy numbers.
package data

import "fmt"

// Spec describes one dataset at both paper scale and simulation scale.
type Spec struct {
	Name          string
	Classes       int
	Train         int    // paper training-set size (Table 1)
	BytesPerImage int64  // on-disk record size per image
	Network       string // target model the paper trains (Table 1)

	// Synthetic-proxy parameters for real training runs.
	SimTrain   int     // generated training samples
	SimTest    int     // generated test samples
	FeatureDim int     // feature-vector dimensionality
	Spread     float64 // intra-class Gaussian std (unit class separation)
	HardFrac   float64 // fraction of samples pulled toward a foreign class
	NoiseFrac  float64 // fraction of labels flipped uniformly
	Seed       uint64  // generator seed

	// Intra-class structure: each class is a mixture of Modes
	// sub-concepts whose frequencies decay geometrically (mode j has
	// weight ModeDecay^j). Rare modes are what make subset *choice*
	// matter: a random or poorly chosen subset undersamples them,
	// while facility-location medoids cover every mode (Table 3).
	Modes      int     // sub-modes per class (0/1 = unimodal)
	ModeSpread float64 // distance of mode centers from the class center
	ModeDecay  float64 // geometric frequency decay across modes
}

// PaperBytes reports the total on-disk size of the paper-scale
// training set.
func (s Spec) PaperBytes() int64 { return int64(s.Train) * s.BytesPerImage }

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s(%d classes, %d train, %s)", s.Name, s.Classes, s.Train, s.Network)
}

// Registry returns the six Table 1 datasets in paper order. Image byte
// sizes follow §1 and §4.4: CIFAR-scale images are 3 KB (0.003 MB),
// ImageNet-100 images are 126 KB (0.126 MB); SVHN/CINIC are CIFAR-sized
// crops; TinyImageNet 64×64×3 ≈ 12 KB.
func Registry() []Spec {
	return []Spec{
		{
			Name: "CIFAR-10", Classes: 10, Train: 50000, BytesPerImage: 3 * 1024, Network: "ResNet-20",
			SimTrain: 3000, SimTest: 1000, FeatureDim: 32, Spread: 0.05, HardFrac: 0.22, NoiseFrac: 0.01, Seed: 101, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
		},
		{
			Name: "SVHN", Classes: 10, Train: 73000, BytesPerImage: 3 * 1024, Network: "ResNet-18",
			SimTrain: 3600, SimTest: 1200, FeatureDim: 32, Spread: 0.04, HardFrac: 0.14, NoiseFrac: 0.005, Seed: 102, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
		},
		{
			Name: "CINIC-10", Classes: 10, Train: 90000, BytesPerImage: 3 * 1024, Network: "ResNet-18",
			SimTrain: 4000, SimTest: 1200, FeatureDim: 32, Spread: 0.14, HardFrac: 0.30, NoiseFrac: 0.04, Seed: 103, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
		},
		{
			Name: "CIFAR-100", Classes: 100, Train: 50000, BytesPerImage: 3 * 1024, Network: "ResNet-18",
			SimTrain: 5000, SimTest: 1500, FeatureDim: 64, Spread: 0.185, HardFrac: 0.25, NoiseFrac: 0.02, Seed: 104, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
		},
		{
			Name: "TinyImageNet", Classes: 200, Train: 100000, BytesPerImage: 12 * 1024, Network: "ResNet-18",
			SimTrain: 10000, SimTest: 2000, FeatureDim: 96, Spread: 0.185, HardFrac: 0.28, NoiseFrac: 0.03, Seed: 105, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
		},
		{
			Name: "ImageNet-100", Classes: 100, Train: 130000, BytesPerImage: 129 * 1024, Network: "ResNet-50",
			SimTrain: 5000, SimTest: 1500, FeatureDim: 64, Spread: 0.138, HardFrac: 0.18, NoiseFrac: 0.01, Seed: 106, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
		},
	}
}

// Lookup finds a registry dataset by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, true
		}
	}
	switch name {
	case "MNIST":
		return MNIST(), true
	case "ImageNet-1k":
		return ImageNet1k(), true
	}
	return Spec{}, false
}

// MNIST is the smallest workload of the Fig 2 data-movement profile
// (0.5 KB/image, 50 K train in the paper's profiling run).
func MNIST() Spec {
	return Spec{
		Name: "MNIST", Classes: 10, Train: 50000, BytesPerImage: 512, Network: "ResNet-20",
		SimTrain: 2000, SimTest: 800, FeatureDim: 24, Spread: 0.05, HardFrac: 0.05, NoiseFrac: 0.002, Seed: 100, Modes: 6, ModeSpread: 1.0, ModeDecay: 0.6,
	}
}

// ImageNet1k is the Fig 1 workload: 1.28 M images at roughly 130 KB
// each, the scale at which per-epoch training time explodes.
func ImageNet1k() Spec {
	return Spec{
		Name: "ImageNet-1k", Classes: 1000, Train: 1281167, BytesPerImage: 130 * 1024, Network: "varied",
		SimTrain: 0, SimTest: 0, FeatureDim: 0, Seed: 107,
	}
}
