package data

import (
	"fmt"

	"nessa/internal/tensor"
)

// Dataset is an in-memory labelled feature dataset.
type Dataset struct {
	Spec   Spec
	X      *tensor.Matrix // n × FeatureDim
	Labels []int          // n, in [0, Classes)
}

// Len reports the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Generate builds the seeded synthetic train/test pair for spec.
//
// The generator produces a Gaussian mixture with one unit-norm center
// per class. Three difficulty knobs reproduce the data-selection
// dynamics of natural image datasets:
//
//   - Spread: intra-class Gaussian std. Larger spread → more class
//     overlap → lower ceiling accuracy (CINIC-10 vs SVHN).
//   - HardFrac: this fraction of samples is pulled 45 % of the way
//     toward a random other class center — a "hard tail" that produces
//     large gradients late into training, which is exactly the
//     population subset biasing (§3.2.2) must keep selecting.
//   - NoiseFrac: uniformly flipped labels, bounding achievable
//     accuracy and testing that selection does not fixate on
//     unlearnable points.
func Generate(spec Spec) (train, test *Dataset) {
	if spec.SimTrain <= 0 || spec.FeatureDim <= 0 {
		panic(fmt.Sprintf("data: spec %q has no simulation scale", spec.Name))
	}
	rng := tensor.NewRNG(spec.Seed)
	mix := newMixture(rng, spec)
	train = sample(rng.Split(), spec, mix, spec.SimTrain)
	test = sample(rng.Split(), spec, mix, spec.SimTest)
	return train, test
}

// mixture holds the per-class sub-mode centers and their cumulative
// sampling frequencies.
type mixture struct {
	modes   int
	centers *tensor.Matrix // (classes×modes) × dim, row c*modes+j
	cum     []float64      // cumulative mode frequencies, len modes
}

func newMixture(rng *tensor.RNG, spec Spec) *mixture {
	base := classCenters(rng, spec.Classes, spec.FeatureDim)
	modes := spec.Modes
	if modes < 1 {
		modes = 1
	}
	m := &mixture{
		modes:   modes,
		centers: tensor.NewMatrix(spec.Classes*modes, spec.FeatureDim),
	}
	for c := 0; c < spec.Classes; c++ {
		for j := 0; j < modes; j++ {
			row := m.centers.Row(c*modes + j)
			copy(row, base.Row(c))
			if j == 0 || spec.ModeSpread <= 0 {
				continue
			}
			// Rarer sub-modes sit progressively closer to a foreign
			// class's territory (β grows with j). An untrained model
			// misclassifies them toward that class, so a subset that
			// fails to cover rare modes pays measurable accuracy —
			// mirroring the long-tail structure of natural datasets.
			beta := float32(0.65) * float32(j) / float32(modes-1)
			if spec.Classes > 1 {
				other := (c + 1 + j) % spec.Classes
				if other == c {
					// Never pull a mode toward its own class.
					other = (c + 1) % spec.Classes
				}
				orow := base.Row(other)
				for d := range row {
					row[d] = (1-beta)*row[d] + beta*orow[d]
				}
			}
			// A small random offset keeps sub-modes of different
			// classes from collapsing onto identical boundary points.
			off := make([]float32, spec.FeatureDim)
			for d := range off {
				off[d] = rng.NormFloat32()
			}
			if n := tensor.Norm(off); n > 0 {
				scale := float32(0.25*spec.ModeSpread) / n
				for d := range row {
					row[d] += off[d] * scale
				}
			}
			if rn := tensor.Norm(row); rn > 0 {
				inv := 1 / rn
				for d := range row {
					row[d] *= inv
				}
			}
		}
	}
	decay := spec.ModeDecay
	if decay <= 0 || decay >= 1 {
		decay = 0.55
	}
	var total float64
	w := 1.0
	weights := make([]float64, modes)
	for j := 0; j < modes; j++ {
		weights[j] = w
		total += w
		w *= decay
	}
	m.cum = make([]float64, modes)
	acc := 0.0
	for j, wj := range weights {
		acc += wj / total
		m.cum[j] = acc
	}
	return m
}

// pick draws a mode index according to the frequency distribution.
func (m *mixture) pick(rng *tensor.RNG) int {
	u := rng.Float64()
	for j, c := range m.cum {
		if u <= c {
			return j
		}
	}
	return m.modes - 1
}

// center returns the center of class c's mode j.
func (m *mixture) center(c, j int) []float32 { return m.centers.Row(c*m.modes + j) }

// classCenters draws one unit-norm direction per class.
func classCenters(rng *tensor.RNG, classes, dim int) *tensor.Matrix {
	c := tensor.NewMatrix(classes, dim)
	for i := 0; i < classes; i++ {
		row := c.Row(i)
		for j := range row {
			row[j] = rng.NormFloat32()
		}
		n := tensor.Norm(row)
		if n == 0 {
			row[0] = 1
			continue
		}
		inv := 1 / n
		for j := range row {
			row[j] *= inv
		}
	}
	return c
}

func sample(rng *tensor.RNG, spec Spec, mix *mixture, n int) *Dataset {
	d := &Dataset{
		Spec:   spec,
		X:      tensor.NewMatrix(n, spec.FeatureDim),
		Labels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		cls := i % spec.Classes // balanced classes
		d.Labels[i] = cls
		row := d.X.Row(i)
		copy(row, mix.center(cls, mix.pick(rng)))

		if rng.Float64() < spec.HardFrac {
			// Pull toward a foreign class: a boundary sample.
			other := rng.Intn(spec.Classes)
			for other == cls && spec.Classes > 1 {
				other = rng.Intn(spec.Classes)
			}
			orow := mix.center(other, 0)
			for j := range row {
				row[j] = 0.55*row[j] + 0.45*orow[j]
			}
		}
		for j := range row {
			row[j] += rng.NormFloat32() * float32(spec.Spread)
		}
		if rng.Float64() < spec.NoiseFrac && spec.Classes > 1 {
			flip := rng.Intn(spec.Classes)
			for flip == cls {
				flip = rng.Intn(spec.Classes)
			}
			d.Labels[i] = flip
		}
	}
	return d
}

// Subset returns a new dataset containing the rows of d at the given
// indices, in order.
func (d *Dataset) Subset(indices []int) *Dataset {
	s := &Dataset{
		Spec:   d.Spec,
		X:      tensor.NewMatrix(len(indices), d.X.Cols),
		Labels: make([]int, len(indices)),
	}
	for i, idx := range indices {
		copy(s.X.Row(i), d.X.Row(idx))
		s.Labels[i] = d.Labels[idx]
	}
	return s
}

// ClassIndex groups sample indices by label: result[c] lists the
// indices with label c. Selection operates per class (paper §3.2.3:
// "pairwise similarities between all examples from the same class").
func (d *Dataset) ClassIndex() [][]int {
	idx := make([][]int, d.Spec.Classes)
	for i, y := range d.Labels {
		idx[y] = append(idx[y], i)
	}
	return idx
}
