package fpga

import (
	"sort"
	"time"
)

// Workload is a reference selection job for throughput estimation:
// scan n candidate records, run the quantized forward pass
// (macsPerSample each), and select k medoids over dim-dimensional
// gradient embeddings.
type Workload struct {
	N             int
	MACsPerSample int64
	K             int
	Dim           int
	RecordBytes   int64
}

// Time reports the kernel time for the workload under config c.
func (c KernelConfig) Time(w Workload) time.Duration {
	return c.ForwardTime(w.N, w.MACsPerSample) + c.SelectionTime(w.N, w.K, w.Dim, 0.1)
}

// Throughput reports candidate records processed per second.
func (c KernelConfig) Throughput(w Workload) float64 {
	d := c.Time(w)
	if d <= 0 {
		return 0
	}
	return float64(w.N) / d.Seconds()
}

// DesignPoint is one explored kernel configuration.
type DesignPoint struct {
	Config     KernelConfig
	Usage      Usage
	Util       Utilization
	Throughput float64 // records/second on the reference workload
	Fits       bool
}

// Explore sweeps PE-array and distance-lane sizes around the deployed
// kernel and reports every design point's resource usage and
// throughput on the reference workload — the ablation behind the
// "reconfigurable, low-cost" claim of §2.2: unlike an ASIC, the kernel
// can be re-synthesized per model/dataset.
func Explore(budget Budget, w Workload) []DesignPoint {
	base := DefaultKernel()
	var points []DesignPoint
	for _, pes := range []int{128, 256, 512, 1024, 1536} {
		for _, dus := range []int{16, 32, 64, 128} {
			cfg := base
			cfg.PEs = pes
			cfg.DistUnits = dus
			u := cfg.Estimate()
			points = append(points, DesignPoint{
				Config:     cfg,
				Usage:      u,
				Util:       u.Utilization(budget),
				Throughput: cfg.Throughput(w),
				Fits:       u.Fits(budget),
			})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Throughput > points[j].Throughput })
	return points
}

// BestFit returns the highest-throughput explored configuration that
// fits the budget, and whether any fits at all.
func BestFit(budget Budget, w Workload) (DesignPoint, bool) {
	for _, p := range Explore(budget, w) {
		if p.Fits {
			return p, true
		}
	}
	return DesignPoint{}, false
}

// EnergyJoules reports the energy of running the workload at the given
// power draw for duration d — the §2.2 comparison: the SmartSSD FPGA
// filters data at ~7.5 W where a K1200 draws 45 W and an A100 250 W.
func EnergyJoules(watts float64, d time.Duration) float64 {
	return watts * d.Seconds()
}
