package fpga

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTable4Reproduction(t *testing.T) {
	// Table 4: LUT 67.53 %, FF 23.14 %, BRAM 50.30 %, DSP 42.67 %.
	u := DefaultKernel().Estimate().Utilization(PaperKU15P())
	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s utilization = %.2f %%, want %.2f ± %.2f", name, got, want, tol)
		}
	}
	check("LUT", u.LUT, 67.53, 0.5)
	check("FF", u.FF, 23.14, 0.5)
	check("BRAM", u.BRAM, 50.30, 0.5)
	check("DSP", u.DSP, 42.67, 0.5)
}

func TestKernelFitsKU15P(t *testing.T) {
	if err := DefaultKernel().Validate(PaperKU15P()); err != nil {
		t.Fatalf("default kernel does not fit: %v", err)
	}
}

func TestOversizedKernelRejected(t *testing.T) {
	c := DefaultKernel()
	c.PEs = 5000 // DSP blowout
	if err := c.Validate(PaperKU15P()); err == nil {
		t.Fatal("expected oversized kernel to fail validation")
	}
}

func TestInvalidKernelRejected(t *testing.T) {
	c := DefaultKernel()
	c.ClockMHz = 0
	if err := c.Validate(PaperKU15P()); err == nil {
		t.Fatal("expected zero-clock kernel to fail validation")
	}
}

func TestUsageMonotoneInUnits(t *testing.T) {
	f := func(pes, dus uint8) bool {
		a := KernelConfig{PEs: 1 + int(pes), DistUnits: 1 + int(dus), ClockMHz: 250}
		b := a
		b.PEs++
		b.DistUnits++
		ua, ub := a.Estimate(), b.Estimate()
		return ub.LUT > ua.LUT && ub.FF > ua.FF && ub.DSP > ua.DSP && ub.BRAM >= ua.BRAM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForwardTimeScaling(t *testing.T) {
	c := DefaultKernel()
	one := c.ForwardTime(1000, 100_000)
	two := c.ForwardTime(2000, 100_000)
	if absDur(two-2*one) > 2 { // tolerate 1 ns Duration rounding
		t.Fatalf("forward time not linear in n: %v vs %v", one, two)
	}
	if c.ForwardTime(0, 100) != 0 || c.ForwardTime(100, 0) != 0 {
		t.Error("degenerate forward pass should take zero time")
	}
}

func TestForwardTimeFormula(t *testing.T) {
	c := KernelConfig{PEs: 100, MACsPerCycle: 1, DistUnits: 1, ClockMHz: 100}
	// 1000 samples × 10000 MACs / 100 PEs = 100 000 cycles at 100 MHz = 1 ms.
	if got := c.ForwardTime(1000, 10_000); got != time.Millisecond {
		t.Fatalf("forward time = %v, want 1ms", got)
	}
}

func TestMACPackingSpeedsForward(t *testing.T) {
	// int8 DSP packing: 4 MACs/cycle quarters the forward time.
	slow := KernelConfig{PEs: 100, MACsPerCycle: 1, DistUnits: 1, ClockMHz: 100}
	fast := slow
	fast.MACsPerCycle = 4
	if got := fast.ForwardTime(1000, 10_000); got != slow.ForwardTime(1000, 10_000)/4 {
		t.Fatalf("packed forward = %v, want quarter of unpacked", got)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestSelectionTimeScaling(t *testing.T) {
	c := DefaultKernel()
	base := c.SelectionTime(10_000, 1000, 10, 0.1)
	if base <= 0 {
		t.Fatal("selection time should be positive")
	}
	// Stochastic greedy is O(N): doubling n doubles time (modulo 1 ns
	// of Duration rounding).
	if got := c.SelectionTime(20_000, 1000, 10, 0.1); absDur(got-2*base) > 2 {
		t.Fatalf("selection time not O(N): %v vs 2×%v", got, base)
	}
	// Wider embedding costs more.
	if got := c.SelectionTime(10_000, 1000, 20, 0.1); got <= base {
		t.Fatal("selection time should grow with embedding dim")
	}
}

func TestSelectionTimeBadEpsDefaults(t *testing.T) {
	c := DefaultKernel()
	a := c.SelectionTime(1000, 100, 10, 0)
	b := c.SelectionTime(1000, 100, 10, 0.1)
	if a != b {
		t.Fatalf("eps=0 should default to 0.1: %v vs %v", a, b)
	}
}

func TestLogInv(t *testing.T) {
	cases := []struct{ eps, want float64 }{
		{0.1, 2.302585},
		{0.5, 0.693147},
		{0.01, 4.605170},
	}
	for _, c := range cases {
		if got := logInv(c.eps); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("logInv(%v) = %v, want %v", c.eps, got, c.want)
		}
	}
}

func TestOperationalIntensityIsLow(t *testing.T) {
	// EISC criterion: cycles/byte must stay low (well under the ~10
	// cycles/byte at which a 250 MHz kernel can no longer saturate a
	// 3 GB/s link — 250e6·10/3e9 < 1).
	c := DefaultKernel()
	// CIFAR-10-like: 50 K records of 3 KB, ResNet-20-proxy forward of
	// ~50 K MACs on the selection model, k = 15 K, 10-dim embeddings.
	oi := c.OperationalIntensity(50_000, 3*1024, 50_000, 15_000, 10)
	if oi <= 0 {
		t.Fatal("operational intensity should be positive")
	}
	maxOI := c.ClockMHz * 1e6 / 3e9 // cycles/byte above which the kernel can't keep up with the link
	if oi > maxOI {
		t.Errorf("operational intensity %.4f cycles/byte exceeds link-saturation bound %.4f", oi, maxOI)
	}
}

func TestPowerEnvelope(t *testing.T) {
	// §2.2: FPGA ≈7.5 W vs 45 W (K1200) and 250 W (A100).
	if PowerWatts() != 7.5 {
		t.Fatalf("FPGA power = %v W, want 7.5", PowerWatts())
	}
}

func TestUtilizationZeroBudget(t *testing.T) {
	u := Usage{LUT: 10}
	if got := u.Utilization(Budget{}); got.LUT != 0 {
		t.Fatalf("zero budget utilization = %v, want 0", got.LUT)
	}
}

func TestAvailableBufferBytes(t *testing.T) {
	b := PaperKU15P()
	free := DefaultKernel().AvailableBufferBytes(b)
	if free <= 0 {
		t.Fatal("default kernel should leave BRAM headroom for streaming state")
	}
	// Consistency: free bytes = (budget − estimate) BRAMs × 4 KB.
	want := int64(b.BRAM-DefaultKernel().Estimate().BRAM) * bramBytesEach
	if free != want {
		t.Fatalf("AvailableBufferBytes = %d, want %d", free, want)
	}
	// A kernel that already exhausts BRAM has nothing left.
	big := DefaultKernel()
	big.DistUnits = 10_000
	if got := big.AvailableBufferBytes(b); got != 0 {
		t.Fatalf("over-budget kernel reports %d free bytes, want 0", got)
	}
}

func TestBramCount(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {4096, 1}, {4097, 2}, {512 * 1024, 128},
	}
	for _, c := range cases {
		if got := bramCount(c.bytes); got != c.want {
			t.Errorf("bramCount(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}
