// Package fpga models the Kintex KU15P FPGA on the SmartSSD: the
// device resource budget the paper reports against (Table 4), a
// bottom-up resource estimator for the NeSSA selection kernel, and a
// cycle-level time model used to cost near-storage selection (Fig 4)
// and to check the low-operational-intensity condition for in-storage
// workloads (paper §2.2, citing the EISC analysis).
package fpga

import (
	"fmt"
	"time"
)

// Budget is the available resource pool of an FPGA. PaperKU15P returns
// the budget row of Table 4.
type Budget struct {
	LUT  int
	FF   int
	BRAM int
	DSP  int
}

// PaperKU15P returns the "Available" column of Table 4.
func PaperKU15P() Budget {
	return Budget{LUT: 432_000, FF: 919_000, BRAM: 738, DSP: 1962}
}

// Usage is an absolute resource consumption.
type Usage struct {
	LUT  int
	FF   int
	BRAM int
	DSP  int
}

// Add accumulates o into u.
func (u *Usage) Add(o Usage) {
	u.LUT += o.LUT
	u.FF += o.FF
	u.BRAM += o.BRAM
	u.DSP += o.DSP
}

// Utilization is Usage expressed as a percentage of a Budget.
type Utilization struct {
	LUT, FF, BRAM, DSP float64
}

// Utilization computes u as percentages of b.
func (u Usage) Utilization(b Budget) Utilization {
	pct := func(used, avail int) float64 {
		if avail == 0 {
			return 0
		}
		return 100 * float64(used) / float64(avail)
	}
	return Utilization{
		LUT:  pct(u.LUT, b.LUT),
		FF:   pct(u.FF, b.FF),
		BRAM: pct(u.BRAM, b.BRAM),
		DSP:  pct(u.DSP, b.DSP),
	}
}

// Fits reports whether u fits within b.
func (u Usage) Fits(b Budget) bool {
	return u.LUT <= b.LUT && u.FF <= b.FF && u.BRAM <= b.BRAM && u.DSP <= b.DSP
}

// KernelConfig parameterizes the NeSSA selection kernel: an int8 MAC
// processing-element array for the quantized forward pass, a bank of
// squared-distance units for the facility-location similarity
// computation, fixed infrastructure (lazy-greedy priority logic, DMA
// engines, P2P controller, control plane), and on-chip buffers for the
// quantized weights and one partition's gradient embeddings.
type KernelConfig struct {
	PEs              int     // int8 multiply-accumulate processing elements
	MACsPerCycle     int     // int8 MACs per PE per cycle (DSP48 packing)
	DistUnits        int     // parallel squared-distance lanes
	ClockMHz         float64 // kernel clock
	WeightBufBytes   int64   // on-chip quantized-weight buffer
	EmbeddingBufSize int64   // on-chip per-chunk embedding buffer
}

// DefaultKernel returns the deployed NeSSA kernel configuration,
// calibrated so its utilization on the KU15P reproduces Table 4
// (LUT 67.53 %, FF 23.14 %, BRAM 50.30 %, DSP 42.67 %).
func DefaultKernel() KernelConfig {
	return KernelConfig{
		PEs:              512,
		MACsPerCycle:     4, // two int8 MACs per DSP48E2 plus dual-pumping
		DistUnits:        64,
		ClockMHz:         250,
		WeightBufBytes:   220 * 1024,
		EmbeddingBufSize: 512 * 1024,
	}
}

// Per-unit synthesis costs (LUT, FF, BRAM, DSP) of the kernel building
// blocks. These are in line with published SmartSSD accelerator
// reports: an int8 MAC PE with its operand registers and accumulator, a
// pipelined squared-distance lane, and the fixed DMA/greedy/control
// infrastructure.
var (
	peCost        = Usage{LUT: 350, FF: 240, BRAM: 0, DSP: 1}
	distUnitCost  = Usage{LUT: 634, FF: 528, BRAM: 2, DSP: 4}
	fixedInfra    = Usage{LUT: 72_000, FF: 56_000, BRAM: 60, DSP: 69}
	bramBytesEach = int64(4096) // usable bytes per BRAM for buffering
)

// Estimate computes the kernel's resource usage.
func (c KernelConfig) Estimate() Usage {
	u := fixedInfra
	u.Add(Usage{
		LUT: c.PEs * peCost.LUT, FF: c.PEs * peCost.FF,
		BRAM: c.PEs * peCost.BRAM, DSP: c.PEs * peCost.DSP,
	})
	u.Add(Usage{
		LUT: c.DistUnits * distUnitCost.LUT, FF: c.DistUnits * distUnitCost.FF,
		BRAM: c.DistUnits * distUnitCost.BRAM, DSP: c.DistUnits * distUnitCost.DSP,
	})
	u.Add(Usage{BRAM: bramCount(c.WeightBufBytes) + bramCount(c.EmbeddingBufSize)})
	return u
}

func bramCount(bytes int64) int {
	if bytes <= 0 {
		return 0
	}
	return int((bytes + bramBytesEach - 1) / bramBytesEach)
}

// AvailableBufferBytes reports how many bytes of on-chip buffering the
// budget b still has to give after the kernel c is placed: the free
// BRAM blocks times the usable bytes per block. This is the memory
// pool the streaming selection state (gradient sketch, sieve ladder,
// reservoirs) must fit into — the DRAM-resident embedding matrix of
// the batch path is exactly what streaming selection exists to avoid.
func (c KernelConfig) AvailableBufferBytes(b Budget) int64 {
	free := b.BRAM - c.Estimate().BRAM
	if free <= 0 {
		return 0
	}
	return int64(free) * bramBytesEach
}

// Validate checks the kernel against a budget.
func (c KernelConfig) Validate(b Budget) error {
	if c.PEs <= 0 || c.DistUnits <= 0 || c.ClockMHz <= 0 {
		return fmt.Errorf("fpga: invalid kernel config %+v", c)
	}
	if u := c.Estimate(); !u.Fits(b) {
		return fmt.Errorf("fpga: kernel %+v does not fit budget %+v (needs %+v)", c, b, u)
	}
	return nil
}

// ForwardTime models the quantized selection forward pass: n samples
// through a model with macsPerSample multiply-accumulates, spread over
// the PE array at the kernel clock.
func (c KernelConfig) ForwardTime(n int, macsPerSample int64) time.Duration {
	if n <= 0 || macsPerSample <= 0 {
		return 0
	}
	lanes := c.PEs * c.macsPerCycle()
	cycles := float64(int64(n)*macsPerSample) / float64(lanes)
	return c.cycles(cycles)
}

func (c KernelConfig) macsPerCycle() int {
	if c.MACsPerCycle <= 0 {
		return 1
	}
	return c.MACsPerCycle
}

// SelectionTime models the facility-location greedy selection of k
// medoids from n candidates with dim-dimensional embeddings using
// stochastic greedy: each of the k rounds evaluates n/k·ln(1/ε)
// candidates, and each evaluation is a dim-element squared distance
// spread across the distance lanes. eps is the stochastic-greedy
// accuracy parameter (the paper cites the O(N) lazier-than-lazy
// variant; ε=0.1 gives ≈2.3 candidate evaluations per element).
func (c KernelConfig) SelectionTime(n, k, dim int, eps float64) time.Duration {
	if n <= 0 || k <= 0 || dim <= 0 {
		return 0
	}
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	lnInv := logInv(eps)
	evals := float64(n) * lnInv // k rounds × (n/k)·ln(1/ε) each
	cycles := evals * float64(dim) / float64(c.DistUnits)
	return c.cycles(cycles)
}

func logInv(eps float64) float64 {
	// ln(1/eps) via the identity ln(1/x) = -ln(x); small custom ln to
	// keep math usage explicit. Accuracy to ~1e-9 is irrelevant here.
	x := 1 / eps
	// ln via halving to [1,2) and atanh series.
	k := 0.0
	for x >= 2 {
		x /= 2
		k++
	}
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for i := 1; i < 30; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	return 2*sum + k*0.6931471805599453
}

func (c KernelConfig) cycles(n float64) time.Duration {
	sec := n / (c.ClockMHz * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// OperationalIntensity reports kernel cycles spent per byte read from
// storage for a selection pass over n samples of recordBytes each.
// The EISC criterion (paper §2.2) wants this LOW so the kernel can
// saturate drive bandwidth; the training-dynamics selection model
// satisfies it because it only runs a small quantized forward pass and
// C-dimensional distance comparisons per record.
func (c KernelConfig) OperationalIntensity(n int, recordBytes, macsPerSample int64, k, dim int) float64 {
	if n <= 0 || recordBytes <= 0 {
		return 0
	}
	totalCycles := (c.ForwardTime(n, macsPerSample) + c.SelectionTime(n, k, dim, 0.1)).Seconds() * c.ClockMHz * 1e6
	return totalCycles / float64(int64(n)*recordBytes)
}

// PowerWatts reports the FPGA power envelope (paper §2.2: ~7.5 W,
// versus 45 W for a K1200 and 250 W for an A100).
func PowerWatts() float64 { return 7.5 }
