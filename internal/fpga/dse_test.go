package fpga

import (
	"testing"
	"time"
)

func refWorkload() Workload {
	// CIFAR-10-scale selection: 50 K records, 5 % ResNet-20 int8 proxy
	// forward, k = 15 K, 10-dim embeddings.
	return Workload{N: 50_000, MACsPerSample: 1_000_000, K: 15_000, Dim: 10, RecordBytes: 3 * 1024}
}

func TestExploreCoversGrid(t *testing.T) {
	points := Explore(PaperKU15P(), refWorkload())
	if len(points) != 20 {
		t.Fatalf("explored %d points, want 5×4 = 20", len(points))
	}
	// Sorted by throughput descending.
	for i := 1; i < len(points); i++ {
		if points[i].Throughput > points[i-1].Throughput {
			t.Fatal("design points not sorted by throughput")
		}
	}
	// At least the deployed configuration must fit.
	anyFits := false
	for _, p := range points {
		if p.Fits {
			anyFits = true
		}
	}
	if !anyFits {
		t.Fatal("no design point fits the KU15P")
	}
}

func TestBiggestConfigsBlowBudget(t *testing.T) {
	points := Explore(PaperKU15P(), refWorkload())
	for _, p := range points {
		if p.Config.PEs == 1536 && p.Config.DistUnits == 128 {
			if p.Fits {
				t.Fatal("1536 PE + 128 DU should exceed the KU15P DSP budget")
			}
			return
		}
	}
	t.Fatal("expected grid point missing")
}

func TestBestFitIsDeployableAndFast(t *testing.T) {
	best, ok := BestFit(PaperKU15P(), refWorkload())
	if !ok {
		t.Fatal("no feasible design")
	}
	if !best.Usage.Fits(PaperKU15P()) {
		t.Fatal("best design does not fit")
	}
	deployed := DefaultKernel()
	if best.Throughput < deployed.Throughput(refWorkload()) {
		t.Fatalf("best-fit throughput %.0f below deployed %.0f",
			best.Throughput, deployed.Throughput(refWorkload()))
	}
}

func TestThroughputMonotoneInPEs(t *testing.T) {
	w := refWorkload()
	small := DefaultKernel()
	small.PEs = 128
	big := DefaultKernel()
	big.PEs = 1024
	if big.Throughput(w) <= small.Throughput(w) {
		t.Fatal("throughput should grow with PE count")
	}
}

func TestBestFitImpossibleBudget(t *testing.T) {
	if _, ok := BestFit(Budget{LUT: 1, FF: 1, BRAM: 1, DSP: 1}, refWorkload()); ok {
		t.Fatal("design fit an impossible budget")
	}
}

func TestEnergyJoules(t *testing.T) {
	if got := EnergyJoules(7.5, 2*time.Second); got != 15 {
		t.Fatalf("energy = %v J, want 15", got)
	}
}

func TestFPGASelectionEnergyBeatsGPU(t *testing.T) {
	// §2.2: even if a GPU ran selection 10× faster, the 7.5 W FPGA
	// wins on energy against a 250 W A100.
	w := refWorkload()
	fpgaT := DefaultKernel().Time(w)
	fpgaE := EnergyJoules(PowerWatts(), fpgaT)
	gpuE := EnergyJoules(250, fpgaT/10)
	if fpgaE >= gpuE {
		t.Fatalf("FPGA energy %.2f J not below GPU energy %.2f J", fpgaE, gpuE)
	}
}
