package bench

import (
	"fmt"

	"nessa/internal/core"
	"nessa/internal/data"
	"nessa/internal/trainer"
)

// Table3Variant names one column of the paper's Table 3 ablation.
type Table3Variant string

const (
	VariantVanilla  Table3Variant = "Vanilla"   // NeSSA without SB and PA
	VariantSB       Table3Variant = "SB"        // + subset biasing (§3.2.2)
	VariantPA       Table3Variant = "PA"        // + dataset partitioning (§3.2.3)
	VariantSBPA     Table3Variant = "SB+PA"     // both (full NeSSA)
	VariantCRAIG    Table3Variant = "CRAIG"     // prior work: stale CPU-side selection
	VariantKCenters Table3Variant = "K-Centers" // prior work: farthest-point
)

// Table3Variants lists the ablation columns in paper order.
func Table3Variants() []Table3Variant {
	return []Table3Variant{VariantVanilla, VariantSB, VariantPA, VariantSBPA, VariantCRAIG, VariantKCenters}
}

// variantOptions maps a Table 3 column to controller options at a
// fixed subset fraction (Table 3 pins the subset size, so dynamic
// sizing is off everywhere).
func variantOptions(v Table3Variant, frac float64, quick bool) core.Options {
	opt := runOptions(quick)
	opt.SubsetFrac = frac
	opt.DynamicSizing = false
	opt.SubsetBias = false
	opt.Partition = false
	switch v {
	case VariantVanilla:
	case VariantSB:
		opt.SubsetBias = true
	case VariantPA:
		opt.Partition = true
	case VariantSBPA:
		opt.SubsetBias = true
		opt.Partition = true
	case VariantCRAIG:
		// CRAIG re-selects only every 5 epochs (staging data to the
		// host each epoch is prohibitive) and has no quantized
		// feedback loop keeping the selection model fresh.
		opt.QuantFeedback = false
		opt.SelectEvery = 5
	case VariantKCenters:
		opt.Selector = core.SelectorKCenters
		opt.QuantFeedback = false
		opt.SelectEvery = 5
	}
	return opt
}

// Table3Result is the accuracy grid of the ablation.
type Table3Result struct {
	Fracs   []float64
	Acc     map[Table3Variant][]float64 // per variant, aligned with Fracs
	Goal    float64                     // full-data accuracy
	GoalMet *trainer.Metrics
	Dataset data.Spec
}

// RunTable3 trains every Table 3 cell on CIFAR-10: the four NeSSA
// ablations plus the two prior-work baselines at each subset fraction,
// and the full-data "Goal".
func RunTable3(fracs []float64, quick bool) (*Table3Result, error) {
	spec, _ := data.Lookup("CIFAR-10")
	spec = scaleSpec(spec, quick)
	train, test := data.Generate(spec)
	cfg := runConfig(quick)

	_, goal := trainer.TrainFull(train, test, cfg)
	res := &Table3Result{
		Fracs:   fracs,
		Acc:     make(map[Table3Variant][]float64),
		Goal:    goal.FinalAcc,
		GoalMet: goal,
		Dataset: spec,
	}
	for _, v := range Table3Variants() {
		for _, f := range fracs {
			rep, err := core.Run(train, test, cfg, variantOptions(v, f, quick))
			if err != nil {
				return nil, fmt.Errorf("bench: table3 %s@%.0f%%: %w", v, f*100, err)
			}
			res.Acc[v] = append(res.Acc[v], rep.Metrics.FinalAcc)
		}
	}
	return res, nil
}

// Table3 renders the ablation grid (paper Table 3).
func Table3(res *Table3Result) *Table {
	t := &Table{
		ID:     "table3",
		Title:  "CIFAR-10 accuracy: NeSSA ablations vs prior work at fixed subset sizes",
		Note:   "SB = subset biasing, PA = dataset partitioning; Goal = full dataset",
		Header: []string{"Subset (%)", "Vanilla (%)", "SB (%)", "PA (%)", "SB+PA (%)", "CRAIG (%)", "K-Centers (%)", "Goal (%)"},
	}
	for i, f := range res.Fracs {
		row := []string{fmt.Sprintf("%.0f", f*100)}
		for _, v := range Table3Variants() {
			row = append(row, fmt.Sprintf("%.2f", res.Acc[v][i]*100))
		}
		row = append(row, fmt.Sprintf("%.2f", res.Goal*100))
		t.AddRow(row...)
	}
	return t
}
