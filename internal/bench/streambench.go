package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nessa/internal/data"
	"nessa/internal/nn"
	"nessa/internal/parallel"
	"nessa/internal/selection"
	"nessa/internal/selection/streaming"
	"nessa/internal/smartssd"
	"nessa/internal/tensor"
)

// Gates on the streaming-selection artifact, checked by nessa-bench and
// scripts/check.sh.
const (
	// StreamingBandwidthGate is the minimum fraction of the modeled
	// sequential-read bound the simulated scan must achieve: the
	// single-pass driver exists to run selection at link rate, so a scan
	// that stalls the link below 80 % of its floor is a regression.
	StreamingBandwidthGate = 0.8
	// StreamingQualityGate is the minimum ratio between the streaming
	// subset's exact facility-location objective and exact LazyGreedy's
	// on a DRAM-sized reference instance.
	StreamingQualityGate = 0.9
)

// StreamingBenchSpec fixes the streaming-selection workload: a
// synthetic record stream larger than the SmartSSD's 4 GB device DRAM,
// scanned once with sieve + sketch state planned against the KU15P's
// leftover on-chip memory.
type StreamingBenchSpec struct {
	Records      int    `json:"records"`
	Classes      int    `json:"classes"`
	FeatureDim   int    `json:"featureDim"`
	RecordBytes  int64  `json:"recordBytes"`
	K            int    `json:"k"`
	ChunkRecords int    `json:"chunkRecords"`
	SketchRows   int    `json:"sketchRows"`  // frequent-directions ℓ over ∇W
	SketchEvery  int    `json:"sketchEvery"` // sketch sampling stride
	DetRecords   int    `json:"detRecords"`  // pass size for the worker-invariance check
	RefRecords   int    `json:"refRecords"`  // reference instance for exact-quality comparison
	RefK         int    `json:"refK"`
	Seed         uint64 `json:"seed"`
}

// DefaultStreamingBenchSpec sizes the full workload at 10 M records ×
// 512 B = 5.12 GB — deliberately past the 4 GB of device DRAM, so the
// pass cannot be replayed from a materialized embedding matrix. quick
// shrinks the stream (but not the state planning) to seconds.
func DefaultStreamingBenchSpec(quick bool) StreamingBenchSpec {
	s := StreamingBenchSpec{
		Records: 10_000_000, Classes: 10, FeatureDim: 32, RecordBytes: 512,
		K: 500, ChunkRecords: 8192, SketchRows: 16, SketchEvery: 128,
		DetRecords: 150_000, RefRecords: 2000, RefK: 40, Seed: 99,
	}
	if quick {
		s.Records = 200_000
		s.DetRecords = 20_000
	}
	return s
}

// dataSpec derives the record-stream dataset from the bench spec.
// NoiseFrac stays zero so per-class counts are exactly the balanced
// i mod Classes split and the budget planner needs no counting pass.
func (s StreamingBenchSpec) dataSpec() data.Spec {
	return data.Spec{
		Name: "stream-bench", Classes: s.Classes,
		BytesPerImage: s.RecordBytes, FeatureDim: s.FeatureDim,
		Spread: 0.35, HardFrac: 0.1, Seed: s.Seed,
		Modes: 3, ModeSpread: 1.0, ModeDecay: 0.6,
	}
}

// StreamingBenchResult is the JSON artifact written to
// results/BENCH_streaming.json.
type StreamingBenchResult struct {
	GeneratedAt   string `json:"generatedAt"`
	CPUs          int    `json:"cpus"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	EffectiveCPUs int    `json:"effectiveCPUs"`

	Spec StreamingBenchSpec `json:"spec"`

	// The memory story: the stream doesn't fit device DRAM, the
	// selection state fits on-chip.
	DatasetBytes    int64 `json:"datasetBytes"`
	DeviceDRAMBytes int64 `json:"deviceDRAMBytes"`

	Scan  streaming.ScanStats `json:"scan"`  // simulated I/O vs the sequential bound
	Stats streaming.Stats     `json:"stats"` // selection state, sketch capture

	// Host wall-clock throughput of the whole pass (decode + selection-
	// model forward + gradient embedding + sieve + sketch). An ungated
	// trend number: the gated bandwidth claim lives in Scan.FracOfBound,
	// which the simulated clock charges for I/O only, because on the
	// device the FPGA kernel overlaps this compute with the next chunk's
	// NAND read (DESIGN.md §4.10).
	WallSeconds       float64 `json:"wallSeconds"`
	WallRecordsPerSec float64 `json:"wallRecordsPerSec"`

	// Quality vs exact LazyGreedy on a reference instance small enough
	// to solve exactly, both subsets scored with selection.Objective.
	StreamObjective float64 `json:"streamObjective"`
	ExactObjective  float64 `json:"exactObjective"`
	QualityRatio    float64 `json:"qualityRatio"`

	// IdenticalSubsets: the DetRecords pass selects a bit-identical
	// weighted subset at workers=1 and workers=all.
	IdenticalSubsets bool `json:"identicalSubsets"`
}

// streamingPass is one full scan-and-select over a fresh device.
type streamingPass struct {
	res   selection.Result
	stats streaming.Stats
	scan  streaming.ScanStats
	wall  time.Duration
}

// runStreamingPass stores an n-record virtual stream object on a fresh
// SmartSSD and runs the single-pass pipeline over it: chunked resilient
// P2P reads (CRC-verified), record decode, a fixed random selection
// model's forward + gradient embeddings, and the streaming selector.
func runStreamingPass(spec StreamingBenchSpec, n int) (streamingPass, error) {
	var p streamingPass
	dev, err := smartssd.New()
	if err != nil {
		return p, err
	}
	rs, err := data.NewRecordStream(spec.dataSpec(), n)
	if err != nil {
		return p, err
	}
	if err := dev.StoreVirtualDataset("stream", rs.Size(), rs.Fill); err != nil {
		return p, err
	}
	counts := make([]int, spec.Classes)
	for c := range counts {
		counts[c] = n / spec.Classes
		if c < n%spec.Classes {
			counts[c]++
		}
	}
	sel, err := streaming.NewSelector(streaming.Config{
		Classes:     spec.Classes,
		Dim:         spec.Classes, // last-layer gradient embedding dim
		K:           spec.K,
		ClassCounts: counts,
		SketchRows:  spec.SketchRows,
		SketchDim:   spec.Classes * spec.FeatureDim, // sketch the full ∇W = g·xᵀ
		SketchEvery: spec.SketchEvery,
		Seed:        spec.Seed,
	})
	if err != nil {
		return p, err
	}

	// The frozen selection model: a fixed random last layer, as the
	// device would hold between host feedback rounds.
	w := tensor.NewMatrix(spec.Classes, spec.FeatureDim)
	w.FillNormal(tensor.NewRNG(spec.Seed+1), 0.5)

	rec := rs.RecordBytes()
	chunk := spec.ChunkRecords
	feats := tensor.NewMatrix(chunk, spec.FeatureDim)
	logits := tensor.NewMatrix(chunk, spec.Classes)
	emb := tensor.NewMatrix(chunk, spec.Classes)
	labels := make([]int, chunk)

	t0 := time.Now()
	p.scan, err = streaming.ScanRecords(dev, streaming.ScanConfig{
		Object:       "stream",
		RecordBytes:  rec,
		Records:      n,
		ChunkRecords: chunk,
		Verify:       func(buf []byte) error { return data.VerifyImage(buf, rec) },
	}, func(_, lo, hi int, base int64, buf []byte) error {
		m := hi - lo
		fv := tensor.Matrix{Rows: m, Cols: spec.FeatureDim, Data: feats.Data[:m*spec.FeatureDim]}
		for i := 0; i < m; i++ {
			off := (int64(lo+i) - base) * rec
			label, err := data.DecodeRecordInto(buf[off:off+rec], fv.Row(i))
			if err != nil {
				return err
			}
			labels[i] = label
		}
		lv := tensor.Matrix{Rows: m, Cols: spec.Classes, Data: logits.Data[:m*spec.Classes]}
		ev := tensor.Matrix{Rows: m, Cols: spec.Classes, Data: emb.Data[:m*spec.Classes]}
		tensor.MatMulTransB(&lv, &fv, w)
		nn.GradEmbeddingsInto(&ev, &lv, labels[:m])
		return sel.Push(&ev, &fv, labels[:m])
	})
	if err != nil {
		return p, err
	}
	p.wall = time.Since(t0)
	p.res, p.stats, err = sel.Finish()
	return p, err
}

// refEmbeddings builds the clustered reference instance for the exact-
// quality comparison: n points in d dims drawn around `clusters`
// Gaussian centers.
func refEmbeddings(seed uint64, n, d, clusters int) *tensor.Matrix {
	rng := tensor.NewRNG(seed)
	centers := tensor.NewMatrix(clusters, d)
	centers.FillNormal(rng, 2)
	emb := tensor.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(rng.Intn(clusters))
		row := emb.Row(i)
		for j := range row {
			row[j] = c[j] + rng.NormFloat32()*0.3
		}
	}
	return emb
}

// RunStreamingBench measures the single-pass streaming selector: one
// sequential scan of a bigger-than-device-DRAM stream, a worker-count
// invariance check, and an exact-quality comparison against LazyGreedy.
func RunStreamingBench(spec StreamingBenchSpec) (*StreamingBenchResult, error) {
	effective := runtime.NumCPU()
	if gmp := runtime.GOMAXPROCS(0); gmp < effective {
		effective = gmp
	}
	res := &StreamingBenchResult{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		CPUs:            runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		EffectiveCPUs:   effective,
		Spec:            spec,
		DatasetBytes:    int64(spec.Records) * spec.RecordBytes,
		DeviceDRAMBytes: smartssd.DefaultSpec().DRAMBytes,
	}

	main, err := runStreamingPass(spec, spec.Records)
	if err != nil {
		return nil, fmt.Errorf("bench: streaming pass: %w", err)
	}
	res.Scan = main.scan
	res.Stats = main.stats
	res.WallSeconds = main.wall.Seconds()
	if res.WallSeconds > 0 {
		res.WallRecordsPerSec = float64(spec.Records) / res.WallSeconds
	}

	// Worker invariance on a medium stream: the determinism contract
	// says the selected weighted subset is bit-identical at any worker
	// count.
	defer parallel.SetDefaultWorkers(0)
	parallel.SetDefaultWorkers(1)
	one, err := runStreamingPass(spec, spec.DetRecords)
	if err != nil {
		return nil, fmt.Errorf("bench: workers=1 pass: %w", err)
	}
	parallel.SetDefaultWorkers(runtime.NumCPU())
	all, err := runStreamingPass(spec, spec.DetRecords)
	if err != nil {
		return nil, fmt.Errorf("bench: workers=%d pass: %w", runtime.NumCPU(), err)
	}
	parallel.SetDefaultWorkers(0)
	res.IdenticalSubsets = equalInts(one.res.Selected, all.res.Selected) &&
		equalFloats(one.res.Weights, all.res.Weights) &&
		one.res.Objective == all.res.Objective

	// Exact-quality reference: small enough that LazyGreedy is exact
	// ground truth; both subsets are scored with the exact objective
	// (the streaming estimate is a reservoir extrapolation).
	emb := refEmbeddings(spec.Seed+31, spec.RefRecords, 8, 12)
	cand := make([]int, spec.RefRecords)
	for i := range cand {
		cand[i] = i
	}
	stream, err := streaming.Maximizer(streaming.Config{Seed: spec.Seed})(emb, cand, spec.RefK)
	if err != nil {
		return nil, fmt.Errorf("bench: streaming reference selection: %w", err)
	}
	exact, err := selection.LazyGreedy(emb, cand, spec.RefK)
	if err != nil {
		return nil, fmt.Errorf("bench: exact reference selection: %w", err)
	}
	res.StreamObjective = selection.Objective(emb, cand, stream.Selected)
	res.ExactObjective = selection.Objective(emb, cand, exact.Selected)
	if res.ExactObjective > 0 {
		res.QualityRatio = res.StreamObjective / res.ExactObjective
	}
	return res, nil
}

// WriteStreamingBench runs the benchmark and writes the JSON artifact,
// returning both the result and a renderable table.
func WriteStreamingBench(path string, quick bool) (*StreamingBenchResult, *Table, error) {
	res, err := RunStreamingBench(DefaultStreamingBenchSpec(quick))
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, nil, err
	}
	return res, StreamingBenchTable(res), nil
}

// StreamingBenchTable renders the measurement as a bench artifact.
func StreamingBenchTable(res *StreamingBenchResult) *Table {
	const gb = 1 << 30
	t := &Table{
		ID:    "bench-streaming",
		Title: "Streaming selection: one sequential NAND pass in fixed on-chip memory",
		Note: fmt.Sprintf("%d records on %d CPUs; gates: ≥ %.0f %% of sequential bound, state ≤ on-chip budget, ≥ %.0f %% of exact LazyGreedy",
			res.Spec.Records, res.CPUs, StreamingBandwidthGate*100, StreamingQualityGate*100),
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("dataset / device DRAM", fmt.Sprintf("%.2f GB / %.2f GB",
		float64(res.DatasetBytes)/gb, float64(res.DeviceDRAMBytes)/gb))
	t.AddRow("fraction of sequential bound", fmt.Sprintf("%.3f", res.Scan.FracOfBound))
	t.AddRow("simulated scan time", res.Scan.IOTime.String())
	t.AddRow("host throughput (records/s)", fmt.Sprintf("%.0f", res.WallRecordsPerSec))
	t.AddRow("selection state / on-chip budget", fmt.Sprintf("%d / %d bytes",
		res.Stats.StateBytes, res.Stats.BudgetBytes))
	t.AddRow("reservoir rows × classes", fmt.Sprintf("%d × %d", res.Stats.Reservoir, res.Spec.Classes))
	t.AddRow("sketch ℓ / shrinks / capture", fmt.Sprintf("%d / %d / %.3f",
		res.Stats.SketchRows, res.Stats.SketchShrinks, res.Stats.SketchCapture))
	t.AddRow("objective vs exact LazyGreedy", fmt.Sprintf("%.4f", res.QualityRatio))
	t.AddRow("identical subsets across workers", fmt.Sprintf("%v", res.IdenticalSubsets))
	return t
}

func equalFloats(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
