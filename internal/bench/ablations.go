package bench

import (
	"fmt"
	"time"

	"nessa/internal/data"
	"nessa/internal/fpga"
	"nessa/internal/gpu"
	"nessa/internal/nn"
	"nessa/internal/quant"
	"nessa/internal/selection"
	"nessa/internal/smartssd"
	"nessa/internal/tensor"
	"nessa/internal/trainer"
)

// ablationEmbeddings trains a small model briefly on CIFAR-10 and
// returns gradient embeddings + class index + per-sample losses — the
// realistic selection input the ablations sweep over.
func ablationEmbeddings() (*tensor.Matrix, [][]int, []float32) {
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 1200, 100
	train, _ := data.Generate(spec)
	cfg := trainer.Default()
	tr := trainer.New(spec, cfg)
	for e := 0; e < 3; e++ {
		tr.SetEpoch(e)
		tr.TrainEpoch(train.X, train.Labels, nil)
	}
	logits := tr.Model.Forward(train.X)
	emb := nn.GradEmbeddings(logits, train.Labels)
	losses := nn.SoftmaxCE(logits, train.Labels, nil, nil)
	return emb, train.ClassIndex(), losses
}

// AblationEps sweeps the stochastic-greedy ε: the accuracy/latency
// trade-off of the O(N) maximizer the FPGA kernel runs (§3.1).
// Objective quality is reported relative to exact lazy greedy.
func AblationEps() *Table {
	emb, classes, _ := ablationEmbeddings()
	t := &Table{
		ID:     "ablation-eps",
		Title:  "Stochastic-greedy ε vs selection quality and time (CIFAR-10 embeddings, k=15%)",
		Note:   "objective relative to exact lazy greedy; wall time measured on this host",
		Header: []string{"eps", "Objective ratio", "Wall time"},
	}
	k := emb.Rows * 15 / 100
	exact, err := selection.PerClass(emb, classes, k, selection.LazyMaximizer())
	if err != nil {
		t.AddRow("error", err.Error(), "")
		return t
	}
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
		start := time.Now()
		res, err := selection.PerClass(emb, classes, k,
			selection.StochasticMaximizer(eps, tensor.NewRNG(1)))
		if err != nil {
			t.AddRow(fmt.Sprintf("%.2f", eps), "error: "+err.Error(), "")
			continue
		}
		t.AddRow(fmt.Sprintf("%.2f", eps),
			fmt.Sprintf("%.4f", res.Objective/exact.Objective),
			time.Since(start).Round(10*time.Microsecond).String())
	}
	return t
}

// AblationPartition sweeps the §3.2.3 chunk size m: the on-chip
// working set shrinks with m while the selection objective degrades
// only mildly — the paper's memory/quality trade-off.
func AblationPartition() *Table {
	emb, classes, _ := ablationEmbeddings()
	t := &Table{
		ID:     "ablation-partition",
		Title:  "Dataset-partitioning chunk size m vs selection quality and on-chip bytes (§3.2.3)",
		Note:   "working set = largest chunk's embeddings; FPGA budget is 4.32 MB",
		Header: []string{"m", "Objective ratio", "Max chunk bytes", "Fits on chip"},
	}
	k := emb.Rows * 15 / 100
	exact, err := selection.PerClass(emb, classes, k, selection.LazyMaximizer())
	if err != nil {
		t.AddRow("error", err.Error(), "", "")
		return t
	}
	dev, _ := smartssd.New()
	for _, m := range []int{4, 8, 16, 32, 64} {
		res, err := selection.PerClass(emb, classes, k,
			selection.PartitionedMaximizer(m, tensor.NewRNG(1), selection.LazyMaximizer()))
		if err != nil {
			t.AddRow(fmt.Sprintf("%d", m), "error: "+err.Error(), "", "")
			continue
		}
		// Largest per-class chunk: class candidates / chunks, where
		// chunks = ceil(k_c/m). Bound with the largest class.
		maxClass := 0
		for _, c := range classes {
			if len(c) > maxClass {
				maxClass = len(c)
			}
		}
		kc := k / len(classes)
		chunks := (kc + m - 1) / m
		if chunks < 1 {
			chunks = 1
		}
		chunkLen := (maxClass + chunks - 1) / chunks
		bytes := selection.ChunkBytes(chunkLen, emb.Cols)
		t.AddRow(fmt.Sprintf("%d", m),
			fmt.Sprintf("%.4f", res.Objective/exact.Objective),
			fmt.Sprintf("%d", bytes),
			fmt.Sprintf("%t", dev.FitsOnChip(bytes)))
	}
	return t
}

// AblationBits sweeps the feedback quantization bit width (§3.2.1):
// prediction agreement with the float model vs feedback transfer size.
func AblationBits() *Table {
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 1200, 100
	train, _ := data.Generate(spec)
	cfg := trainer.Default()
	tr := trainer.New(spec, cfg)
	for e := 0; e < 5; e++ {
		tr.SetEpoch(e)
		tr.TrainEpoch(train.X, train.Labels, nil)
	}
	t := &Table{
		ID:     "ablation-bits",
		Title:  "Feedback quantization width vs selection-model fidelity and transfer size (§3.2.1)",
		Note:   "agreement = fraction of argmax predictions shared with the float32 model",
		Header: []string{"Bits", "Agreement", "Feedback bytes", "vs float32"},
	}
	floatBytes := int64(4 * tr.Model.NumParams())
	for _, bits := range []int{2, 4, 8, 16} {
		qm, err := quant.QuantizeModelBits(tr.Model, bits)
		if err != nil {
			t.AddRow(fmt.Sprintf("%d", bits), "error: "+err.Error(), "", "")
			continue
		}
		agr := quant.AgreementWithFloat(tr.Model, qm, train.X)
		t.AddRow(fmt.Sprintf("%d", bits),
			fmt.Sprintf("%.4f", agr),
			fmt.Sprintf("%d", qm.SizeBytes()),
			fmt.Sprintf("%.2fx smaller", float64(floatBytes)/float64(qm.SizeBytes())))
	}
	return t
}

// AblationDSE reports the FPGA design-space exploration: kernel
// configurations around the deployed point, their KU15P utilization,
// and selection throughput.
func AblationDSE() *Table {
	w := fpga.Workload{N: 50_000, MACsPerSample: 1_000_000, K: 15_000, Dim: 10, RecordBytes: 3 * 1024}
	t := &Table{
		ID:     "ablation-dse",
		Title:  "FPGA kernel design space (CIFAR-10 selection workload)",
		Note:   "the deployed kernel is 512 PE / 64 DU (Table 4); throughput in records/s",
		Header: []string{"PEs", "DistUnits", "LUT %", "DSP %", "Fits", "Throughput"},
	}
	for _, p := range fpga.Explore(fpga.PaperKU15P(), w) {
		t.AddRow(fmt.Sprintf("%d", p.Config.PEs),
			fmt.Sprintf("%d", p.Config.DistUnits),
			fmt.Sprintf("%.1f", p.Util.LUT),
			fmt.Sprintf("%.1f", p.Util.DSP),
			fmt.Sprintf("%t", p.Fits),
			fmt.Sprintf("%.2e", p.Throughput))
	}
	return t
}

// AblationCluster reports the multi-SmartSSD scaling of the paper's
// future work (§5): candidate-scan wall time for 1–8 drives.
func AblationCluster() *Table {
	spec, _ := data.Lookup("CIFAR-10")
	t := &Table{
		ID:     "ablation-cluster",
		Title:  "Multi-SmartSSD scaling: candidate-scan wall time (paper §5 future work)",
		Note:   "ideal record-sharded parallel scan at paper scale (50 K × 3 KB)",
		Header: []string{"Drives", "Scan wall time", "Speed-up"},
	}
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		c, err := smartssd.NewCluster(n)
		if err != nil {
			t.AddRow(fmt.Sprintf("%d", n), "error: "+err.Error(), "")
			continue
		}
		link := c.Devices[0].P2P
		per := link.Duration(spec.PaperBytes()/int64(n), spec.Train/n)
		if n == 1 {
			base = per.Seconds()
		}
		t.AddRow(fmt.Sprintf("%d", n),
			per.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", base/per.Seconds()))
	}
	return t
}

// AblationEnergy compares selection energy across devices (§2.2's
// power argument: FPGA 7.5 W vs K1200 45 W vs A100 250 W). Each device
// runs the CIFAR-10 selection workload at its own speed, and pays for
// staging the candidate data to itself: the FPGA streams it over the
// on-board P2P link (overlapped with compute), while a GPU must pull
// every record across the 1.4 GB/s host path while burning its full
// power envelope.
func AblationEnergy() *Table {
	spec, _ := data.Lookup("CIFAR-10")
	w := fpga.Workload{N: spec.Train, MACsPerSample: 1_000_000, K: 15_000, Dim: 10, RecordBytes: spec.BytesPerImage}
	kernel := fpga.DefaultKernel()
	p2p := smartssd.P2PLink()
	host := smartssd.HostLink()
	totalBytes := spec.PaperBytes()

	t := &Table{
		ID:     "ablation-energy",
		Title:  "Selection energy by device incl. data staging (CIFAR-10 workload, §2.2)",
		Note:   "GPU selection must stage all candidates over the 1.4 GB/s host path at full power",
		Header: []string{"Device", "Power (W)", "Stage+select time", "Energy (J)"},
	}
	// FPGA: P2P scan pipelined with the int8 forward pass.
	fpgaT := maxDur(p2p.Duration(totalBytes, w.N), kernel.ForwardTime(w.N, w.MACsPerSample)) +
		kernel.SelectionTime(w.N, w.K, w.Dim, 0.1)
	t.AddRow("SmartSSD FPGA", fmt.Sprintf("%.1f", fpga.PowerWatts()),
		fpgaT.Round(time.Millisecond).String(),
		fmt.Sprintf("%.2f", fpga.EnergyJoules(fpga.PowerWatts(), fpgaT)))

	flops := float64(w.N) * float64(w.MACsPerSample) * 2
	for _, g := range []gpu.GPU{gpu.K1200(), gpu.A100()} {
		compute := time.Duration(flops / g.SustainedFLOPS * float64(time.Second))
		stage := host.Duration(totalBytes, w.N)
		d := stage + compute
		t.AddRow(g.Name, fmt.Sprintf("%.0f", g.Watts),
			d.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", fpga.EnergyJoules(g.Watts, d)))
	}
	return t
}
