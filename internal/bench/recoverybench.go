package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"nessa/internal/core"
	"nessa/internal/data"
	"nessa/internal/faults"
	"nessa/internal/smartssd"
	"nessa/internal/trainer"
)

// RecoveryBenchSpec fixes the workload of the device-loss recovery
// benchmark: end-to-end cluster training runs with and without parity
// placement (the clean-path price of erasure coding), a kill-one-
// device run that must stay bit-identical, a checkpointed run that
// must resume exactly, and a simulated-time degraded-scan measurement
// against the modeled reconstruction bound.
type RecoveryBenchSpec struct {
	Classes       int   `json:"classes"`
	Train         int   `json:"train"`
	Test          int   `json:"test"`
	FeatureDim    int   `json:"featureDim"`
	BytesPerImage int64 `json:"bytesPerImage"`
	Epochs        int   `json:"epochs"`
	Reps          int   `json:"reps"` // timing repetitions (best-of)

	DataShards   int `json:"dataShards"`
	ParityShards int `json:"parityShards"`
	// KillAfterScans is the scripted whole-device kill point of the
	// loss run: device 1 dies after that many completed scans.
	KillAfterScans int64 `json:"killAfterScans"`
}

// DefaultRecoveryBenchSpec mirrors the fault benchmark's sizing —
// training compute dominates the scan, the regime where the clean-path
// overhead gate is honest — with the paper-scale k+1 placement.
func DefaultRecoveryBenchSpec(quick bool) RecoveryBenchSpec {
	s := RecoveryBenchSpec{
		Classes: 10, Train: 1024, Test: 128, FeatureDim: 64,
		BytesPerImage: 512, Epochs: 10, Reps: 5,
		DataShards: 3, ParityShards: 1, KillAfterScans: 3,
	}
	if quick {
		s.Train, s.Epochs, s.Reps = 512, 8, 3
	}
	return s
}

// RecoveryBenchResult is the JSON artifact written to
// results/BENCH_recovery.json. Host-clock numbers (MS/US suffixes on
// Plain/Striped/ScanDelta) price the erasure machinery; simulated-
// clock numbers (the *Wall fields) check the degraded scan against
// the cost model. The three booleans are the CI gates.
type RecoveryBenchResult struct {
	GeneratedAt string            `json:"generatedAt"`
	Spec        RecoveryBenchSpec `json:"spec"`

	PlainMS   float64 `json:"plainMS"`   // e2e best-of-Reps, unprotected sharding
	StripedMS float64 `json:"stripedMS"` // e2e best-of-Reps, k+m parity placement

	// ScanDeltaUS is the host-time cost one clean striped scan adds
	// over one unprotected scan (placement lookup, health checks —
	// systematic coding means no GF work on the clean path), from an
	// interleaved microbenchmark. OverheadPct projects it over the
	// run's scans against the plain end-to-end time: the clean-path
	// price of configuring parity. Gate: <= 2%.
	ScanDeltaUS float64 `json:"scanDeltaUS"`
	OverheadPct float64 `json:"overheadPct"`

	// IdenticalTrajectories is true when the clean striped run, the
	// kill-one-device run, and the plain unprotected run all produce
	// bit-identical loss/accuracy trajectories. Gate.
	IdenticalTrajectories bool `json:"identicalTrajectories"`

	// ResumeExact is true when a session checkpointed mid-run and
	// resumed reproduces the uninterrupted trajectory bit for bit. Gate.
	ResumeExact bool `json:"resumeExact"`

	// Simulated-clock degraded-scan measurement: one scan with a lost
	// device against the clean scan plus the modeled reconstruction
	// bound (host probe + parity stripe fetch + GF decode). Gate:
	// DegradedWallUS - CleanWallUS <= BoundUS.
	CleanWallUS         float64 `json:"cleanWallUS"`
	DegradedWallUS      float64 `json:"degradedWallUS"`
	BoundUS             float64 `json:"boundUS"`
	DegradedWithinBound bool    `json:"degradedWithinBound"`

	DevicesLost        int     `json:"devicesLost"`
	DegradedReads      int     `json:"degradedReads"`
	ReconstructedBytes int64   `json:"reconstructedBytes"`
	RebuildSimMS       float64 `json:"rebuildSimMS"` // simulated rebuild wall
}

func recoveryBenchDataSpec(spec RecoveryBenchSpec) data.Spec {
	return data.Spec{
		Name: "recoverybench", Classes: spec.Classes, Train: spec.Train,
		BytesPerImage: spec.BytesPerImage,
		SimTrain:      spec.Train, SimTest: spec.Test, FeatureDim: spec.FeatureDim,
		Spread: 0.15, HardFrac: 0.1, NoiseFrac: 0.02, Seed: 5,
	}
}

func recoveryBenchOptions(spec RecoveryBenchSpec) (trainer.Config, core.Options) {
	cfg := trainer.Default()
	cfg.Epochs = spec.Epochs
	cfg.Hidden = []int{128, 64}
	opt := core.DefaultOptions()
	opt.SelectEvery = 1 // every epoch pays a scan
	opt.SubsetBias = false
	opt.DynamicSizing = false
	opt.Workers = 1
	return cfg, opt
}

// recoveryCluster builds a fresh cluster holding the benchmark dataset
// either striped with parity or plainly sharded across DataShards
// devices.
func recoveryCluster(spec RecoveryBenchSpec, striped bool) (*smartssd.Cluster, *data.Dataset, *data.Dataset, error) {
	ds := recoveryBenchDataSpec(spec)
	train, test := data.Generate(ds)
	img, err := data.Encode(train)
	if err != nil {
		return nil, nil, nil, err
	}
	devices := spec.DataShards
	if striped {
		devices += spec.ParityShards
	}
	c, err := smartssd.NewCluster(devices)
	if err != nil {
		return nil, nil, nil, err
	}
	if striped {
		_, err = c.StripeDataset(ds.Name, img, spec.BytesPerImage, smartssd.Placement{
			DataShards: spec.DataShards, ParityShards: spec.ParityShards,
		})
	} else {
		_, err = c.ShardDataset(ds.Name, img, spec.BytesPerImage)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return c, train, test, nil
}

// runClusterOnce executes one cluster-attached training run on a
// fresh cluster and returns the report and host wall time.
func runClusterOnce(spec RecoveryBenchSpec, striped bool, mutate func(*smartssd.Cluster, *core.Options)) (*core.Report, time.Duration, error) {
	c, train, test, err := recoveryCluster(spec, striped)
	if err != nil {
		return nil, 0, err
	}
	cfg, opt := recoveryBenchOptions(spec)
	opt.Cluster = c
	opt.DatasetName = recoveryBenchDataSpec(spec).Name
	if mutate != nil {
		mutate(c, &opt)
	}
	t0 := time.Now()
	rep, err := core.Run(train, test, cfg, opt)
	return rep, time.Since(t0), err
}

// measureClusterPair times the plain-sharded and parity-striped
// configurations interleaved rep by rep, best of Reps each.
func measureClusterPair(spec RecoveryBenchSpec, reps int) (plainMS, stripedMS float64, plainRep, stripedRep *core.Report, err error) {
	if _, _, err = runClusterOnce(spec, false, nil); err != nil { // warm-up
		return 0, 0, nil, nil, err
	}
	if _, _, err = runClusterOnce(spec, true, nil); err != nil {
		return 0, 0, nil, nil, err
	}
	var bestPlain, bestStriped time.Duration
	for i := 0; i < reps; i++ {
		var dt time.Duration
		if plainRep, dt, err = runClusterOnce(spec, false, nil); err != nil {
			return 0, 0, nil, nil, err
		}
		if bestPlain == 0 || dt < bestPlain {
			bestPlain = dt
		}
		if stripedRep, dt, err = runClusterOnce(spec, true, nil); err != nil {
			return 0, 0, nil, nil, err
		}
		if bestStriped == 0 || dt < bestStriped {
			bestStriped = dt
		}
	}
	return float64(bestPlain.Nanoseconds()) / 1e6, float64(bestStriped.Nanoseconds()) / 1e6, plainRep, stripedRep, nil
}

// stripedScanDelta measures the host-time cost a clean striped scan
// adds over a plain scan of the same payload, interleaved batches,
// best of reps.
func stripedScanDelta(spec RecoveryBenchSpec, reps int) (time.Duration, error) {
	name := recoveryBenchDataSpec(spec).Name
	plain, _, _, err := recoveryCluster(spec, false)
	if err != nil {
		return 0, err
	}
	striped, _, _, err := recoveryCluster(spec, true)
	if err != nil {
		return 0, err
	}
	const scans = 32
	batch := func(c *smartssd.Cluster) (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < scans; i++ {
			if _, _, _, err := c.ParallelScan(name, spec.BytesPerImage); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	if _, err := batch(plain); err != nil { // warm-up both paths
		return 0, err
	}
	if _, err := batch(striped); err != nil {
		return 0, err
	}
	var bestPlain, bestStriped time.Duration
	for i := 0; i < reps; i++ {
		dt, err := batch(plain)
		if err != nil {
			return 0, err
		}
		if bestPlain == 0 || dt < bestPlain {
			bestPlain = dt
		}
		if dt, err = batch(striped); err != nil {
			return 0, err
		}
		if bestStriped == 0 || dt < bestStriped {
			bestStriped = dt
		}
	}
	delta := (bestStriped - bestPlain) / scans
	if delta < 0 {
		delta = 0
	}
	return delta, nil
}

// RunRecoveryBench measures the device-loss recovery machinery four
// ways: clean-path overhead of parity placement, trajectory identity
// through a whole-device kill, checkpoint/resume exactness, and the
// degraded scan against its modeled simulated-time bound.
func RunRecoveryBench(spec RecoveryBenchSpec) (*RecoveryBenchResult, error) {
	res := &RecoveryBenchResult{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Spec:        spec,
	}

	plainMS, stripedMS, plainRep, stripedRep, err := measureClusterPair(spec, spec.Reps)
	if err != nil {
		return nil, fmt.Errorf("overhead measurement: %w", err)
	}
	delta, err := stripedScanDelta(spec, spec.Reps)
	if err != nil {
		return nil, fmt.Errorf("scan-overhead measurement: %w", err)
	}
	res.PlainMS = plainMS
	res.StripedMS = stripedMS
	res.ScanDeltaUS = float64(delta.Nanoseconds()) / 1e3
	// One scan per epoch (SelectEvery=1): project the per-scan delta
	// over the run against the plain end-to-end time.
	scanCostMS := float64(delta.Nanoseconds()) * float64(spec.Epochs) / 1e6
	res.OverheadPct = safeRatio(scanCostMS, plainMS) * 100

	// Kill device 1 mid-run: with k+1 parity the trajectory must not
	// move by a single bit.
	killRep, _, err := runClusterOnce(spec, true, func(c *smartssd.Cluster, o *core.Options) {
		o.Injector = faults.NewInjector(faults.Profile{
			Seed:  17,
			Kills: []faults.DeviceKill{{Device: 1, AfterScans: spec.KillAfterScans}},
		})
	})
	if err != nil {
		return nil, fmt.Errorf("kill-one-device run: %w", err)
	}
	res.DevicesLost = killRep.Recovery.DevicesLost
	res.DegradedReads = killRep.Recovery.DegradedReads
	res.ReconstructedBytes = killRep.Recovery.ReconstructedBytes
	res.IdenticalTrajectories =
		reflect.DeepEqual(stripedRep.Metrics.EpochLoss, killRep.Metrics.EpochLoss) &&
			reflect.DeepEqual(stripedRep.Metrics.EpochAcc, killRep.Metrics.EpochAcc) &&
			reflect.DeepEqual(stripedRep.Metrics.EpochLoss, plainRep.Metrics.EpochLoss) &&
			reflect.DeepEqual(stripedRep.Metrics.EpochAcc, plainRep.Metrics.EpochAcc) &&
			killRep.Recovery.DevicesLost == 1 && killRep.Recovery.DegradedReads > 0

	// Checkpoint halfway, resume, and demand the identical trajectory.
	resumeAt := spec.Epochs / 2
	var blob []byte
	if _, _, err := runClusterOnce(spec, true, func(c *smartssd.Cluster, o *core.Options) {
		o.CheckpointEvery = resumeAt
		o.CheckpointSink = func(epoch int, b []byte) error {
			if epoch == resumeAt {
				blob = append([]byte(nil), b...)
			}
			return nil
		}
	}); err != nil {
		return nil, fmt.Errorf("checkpointed run: %w", err)
	}
	if blob == nil {
		return nil, fmt.Errorf("no checkpoint captured at epoch %d", resumeAt)
	}
	resumedRep, _, err := runClusterOnce(spec, true, func(c *smartssd.Cluster, o *core.Options) {
		o.Resume = blob
	})
	if err != nil {
		return nil, fmt.Errorf("resumed run: %w", err)
	}
	res.ResumeExact = resumedRep.Recovery.ResumedFromEpoch == resumeAt &&
		reflect.DeepEqual(stripedRep.Metrics.EpochLoss, resumedRep.Metrics.EpochLoss) &&
		reflect.DeepEqual(stripedRep.Metrics.EpochAcc, resumedRep.Metrics.EpochAcc)

	// Degraded scan vs the cost model, in simulated time (exact and
	// machine-independent): clean scan, kill, degraded scan, rebuild.
	name := recoveryBenchDataSpec(spec).Name
	c, _, _, err := recoveryCluster(spec, true)
	if err != nil {
		return nil, err
	}
	_, _, cleanWall, err := c.ParallelScan(name, spec.BytesPerImage)
	if err != nil {
		return nil, fmt.Errorf("clean simulated scan: %w", err)
	}
	res.CleanWallUS = float64(cleanWall.Nanoseconds()) / 1e3
	c.SetInjector(faults.NewInjector(faults.Profile{
		Seed:  17,
		Kills: []faults.DeviceKill{{Device: 1, AfterScans: 1}},
	}))
	_, _, degradedWall, err := c.ParallelScan(name, spec.BytesPerImage)
	if err != nil {
		return nil, fmt.Errorf("degraded simulated scan: %w", err)
	}
	res.DegradedWallUS = float64(degradedWall.Nanoseconds()) / 1e3
	bound, err := c.DegradedScanBound(name, 1)
	if err != nil {
		return nil, err
	}
	res.BoundUS = float64(bound.Nanoseconds()) / 1e3
	res.DegradedWithinBound = res.DegradedWallUS-res.CleanWallUS <= res.BoundUS
	spare, err := smartssd.New()
	if err != nil {
		return nil, err
	}
	c.AttachSpare(spare)
	rebuildWall, err := c.Rebuild(name)
	if err != nil {
		return nil, fmt.Errorf("rebuild: %w", err)
	}
	res.RebuildSimMS = float64(rebuildWall.Nanoseconds()) / 1e6
	return res, nil
}

// WriteRecoveryBench runs the benchmark and writes the JSON artifact,
// returning both the result and a renderable table.
func WriteRecoveryBench(path string, quick bool) (*RecoveryBenchResult, *Table, error) {
	res, err := RunRecoveryBench(DefaultRecoveryBenchSpec(quick))
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, nil, err
	}
	return res, RecoveryBenchTable(res), nil
}

// RecoveryBenchTable renders the measurement as a bench artifact.
func RecoveryBenchTable(res *RecoveryBenchResult) *Table {
	t := &Table{
		ID:    "bench-recovery",
		Title: "Device-loss recovery: parity overhead, degraded scans, checkpointed resume",
		Note: fmt.Sprintf("%d samples × %d epochs over %d+%d drives, best of %d; plain %.1f ms vs striped %.1f ms e2e; parity cost %.1f µs/scan = %.2f%% of the run",
			res.Spec.Train, res.Spec.Epochs, res.Spec.DataShards, res.Spec.ParityShards,
			res.Spec.Reps, res.PlainMS, res.StripedMS, res.ScanDeltaUS, res.OverheadPct),
		Header: []string{"Check", "Value"},
	}
	t.AddRow("identical trajectories (clean / killed / plain)", fmt.Sprintf("%v", res.IdenticalTrajectories))
	t.AddRow("resume reproduces trajectory", fmt.Sprintf("%v", res.ResumeExact))
	t.AddRow("degraded scan within modeled bound", fmt.Sprintf("%v (Δ %.1f µs <= %.1f µs)",
		res.DegradedWithinBound, res.DegradedWallUS-res.CleanWallUS, res.BoundUS))
	t.AddRow("devices lost / degraded reads", fmt.Sprintf("%d / %d", res.DevicesLost, res.DegradedReads))
	t.AddRow("reconstructed bytes", fmt.Sprintf("%d", res.ReconstructedBytes))
	t.AddRow("simulated rebuild wall", fmt.Sprintf("%.2f ms", res.RebuildSimMS))
	return t
}
