package bench

import (
	"fmt"

	"nessa/internal/core"
	"nessa/internal/data"
	"nessa/internal/trainer"
)

// DatasetRun bundles the training runs (all data, NeSSA, and the two
// prior-work baselines) that Table 2, Fig 5, and §4.3 consume.
type DatasetRun struct {
	Spec  data.Spec
	Full  *trainer.Metrics
	NeSSA *core.Report
	CRAIG *core.Report // stale-selection baseline at a fixed 30 % subset
	KC    *core.Report // k-Centers baseline at a fixed 30 % subset
}

// scaleSpec optionally shrinks a dataset for quick runs (tests and Go
// benchmarks) while keeping its geometry.
func scaleSpec(spec data.Spec, quick bool) data.Spec {
	if !quick {
		return spec
	}
	spec.SimTrain /= 4
	spec.SimTest /= 4
	// Many-class datasets need a per-class sample floor to remain
	// learnable at the reduced scale.
	if spec.SimTrain < spec.Classes*15 {
		spec.SimTrain = spec.Classes * 15
	}
	if spec.SimTest < spec.Classes*3 {
		spec.SimTest = spec.Classes * 3
	}
	return spec
}

func runConfig(quick bool) trainer.Config {
	cfg := trainer.Default()
	if quick {
		cfg.Epochs = 20
	}
	return cfg
}

func runOptions(quick bool) core.Options {
	opt := core.DefaultOptions()
	if quick {
		opt.BiasEvery = 7
		opt.BiasWindow = 3
		opt.PartitionM = 8
		opt.ShrinkPatience = 2
		opt.LossDecayRate = 0.03
	}
	return opt
}

// AccuracyRun trains one dataset four ways: full data, NeSSA, and the
// CRAIG and k-Centers baselines (the latter two at the fixed 30 %
// subset of Table 3's middle row).
func AccuracyRun(spec data.Spec, quick bool) (DatasetRun, error) {
	spec = scaleSpec(spec, quick)
	train, test := data.Generate(spec)
	cfg := runConfig(quick)
	_, full := trainer.TrainFull(train, test, cfg)
	rep, err := core.Run(train, test, cfg, runOptions(quick))
	if err != nil {
		return DatasetRun{}, fmt.Errorf("bench: %s: %w", spec.Name, err)
	}
	craig, err := core.Run(train, test, cfg, baselineOptions(core.SelectorFacility, quick))
	if err != nil {
		return DatasetRun{}, fmt.Errorf("bench: %s craig: %w", spec.Name, err)
	}
	kc, err := core.Run(train, test, cfg, baselineOptions(core.SelectorKCenters, quick))
	if err != nil {
		return DatasetRun{}, fmt.Errorf("bench: %s kcenters: %w", spec.Name, err)
	}
	return DatasetRun{Spec: spec, Full: full, NeSSA: rep, CRAIG: craig, KC: kc}, nil
}

// baselineOptions configures the prior-work baselines: fixed 30 %
// subsets, no biasing/partitioning/dynamic sizing, selection refreshed
// only every 5 epochs (host staging cost), no quantized feedback loop.
func baselineOptions(sel core.Selector, quick bool) core.Options {
	opt := runOptions(quick)
	opt.Selector = sel
	opt.SubsetFrac = 0.30
	opt.DynamicSizing = false
	opt.SubsetBias = false
	opt.Partition = false
	opt.QuantFeedback = false
	opt.SelectEvery = 5
	return opt
}

// AccuracyRuns trains every Table 1 dataset both ways. With quick=false
// this is the full Table 2 reproduction (roughly a minute of CPU).
func AccuracyRuns(quick bool) ([]DatasetRun, error) {
	var runs []DatasetRun
	for _, spec := range data.Registry() {
		r, err := AccuracyRun(spec, quick)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// Table2 renders the accuracy-and-subset-ratio comparison (paper
// Table 2) from completed runs.
func Table2(runs []DatasetRun) *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Accuracy and data ratio: NeSSA vs training on the full dataset",
		Note:   "measured on the synthetic dataset proxies (DESIGN.md §1); Subset % is the final epoch's fraction",
		Header: []string{"Dataset", "All Data (%)", "NeSSA (%)", "Subset (%)", "Avg subset (%)"},
	}
	for _, r := range runs {
		t.AddRow(r.Spec.Name,
			fmt.Sprintf("%.2f", r.Full.FinalAcc*100),
			fmt.Sprintf("%.2f", r.NeSSA.Metrics.FinalAcc*100),
			fmt.Sprintf("%.0f", r.NeSSA.FinalSubsetFrac*100),
			fmt.Sprintf("%.0f", r.NeSSA.AvgSubsetFrac*100))
	}
	return t
}

// Figure5 renders convergence curves (paper Fig 5): test accuracy over
// the training process for NeSSA (solid in the paper) vs the full
// dataset (dotted), sampled every stride epochs.
func Figure5(runs []DatasetRun, stride int) *Table {
	if stride < 1 {
		stride = 1
	}
	t := &Table{
		ID:    "figure5",
		Title: "Accuracy over the training process: NeSSA vs full dataset",
		Note:  "columns are <dataset>/nessa and <dataset>/full test accuracy (%)",
	}
	t.Header = []string{"Epoch"}
	for _, r := range runs {
		t.Header = append(t.Header, r.Spec.Name+"/nessa", r.Spec.Name+"/full")
	}
	epochs := 0
	for _, r := range runs {
		if len(r.Full.EpochAcc) > epochs {
			epochs = len(r.Full.EpochAcc)
		}
	}
	for e := 0; e < epochs; e += stride {
		row := []string{fmt.Sprintf("%d", e+1)}
		for _, r := range runs {
			row = append(row, accAt(r.NeSSA.Metrics.EpochAcc, e), accAt(r.Full.EpochAcc, e))
		}
		t.AddRow(row...)
	}
	return t
}

func accAt(series []float64, e int) string {
	if e >= len(series) {
		return ""
	}
	return fmt.Sprintf("%.1f", series[e]*100)
}

// EarlyConvergenceAdvantage quantifies Fig 5's claim that NeSSA "is
// closer to convergence within the first 30 epochs": it reports, for
// one run, NeSSA's and full training's mean accuracy over the first
// third of training.
func EarlyConvergenceAdvantage(r DatasetRun) (nessa, full float64) {
	third := len(r.Full.EpochAcc) / 3
	if third < 1 {
		third = 1
	}
	for e := 0; e < third; e++ {
		full += r.Full.EpochAcc[e]
		nessa += r.NeSSA.Metrics.EpochAcc[e]
	}
	return nessa / float64(third), full / float64(third)
}
