package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"nessa/internal/core"
	"nessa/internal/data"
	"nessa/internal/faults"
	"nessa/internal/smartssd"
	"nessa/internal/trainer"
)

// FaultBenchSpec fixes the workload of the fault-tolerance benchmark:
// an end-to-end device-attached training run timed with the raw scan
// path (the pre-fault-tolerance pipeline) versus the resilient scan
// path (per-record CRC verify + recovery loop), plus chaos-profile
// completion runs.
type FaultBenchSpec struct {
	Classes       int   `json:"classes"`
	Train         int   `json:"train"`
	Test          int   `json:"test"`
	FeatureDim    int   `json:"featureDim"`
	BytesPerImage int64 `json:"bytesPerImage"`
	Epochs        int   `json:"epochs"`
	Reps          int   `json:"reps"` // timing repetitions (best-of)

	ChaosSeeds []uint64 `json:"chaosSeeds"`
}

// DefaultFaultBenchSpec sizes the run so per-epoch training compute
// dominates the scan, as it does at paper scale — the honest regime
// for pricing the CRC verify that rides on every candidate scan.
func DefaultFaultBenchSpec(quick bool) FaultBenchSpec {
	s := FaultBenchSpec{
		Classes: 10, Train: 1024, Test: 128, FeatureDim: 64,
		BytesPerImage: 512, Epochs: 10, Reps: 5,
		ChaosSeeds: []uint64{40, 41, 45},
	}
	if quick {
		s.Train, s.Epochs, s.Reps = 512, 8, 5
		s.ChaosSeeds = s.ChaosSeeds[:2]
	}
	return s
}

// ChaosRun records one chaos-profile completion run.
type ChaosRun struct {
	Seed           uint64           `json:"seed"`
	Completed      bool             `json:"completed"`
	Epochs         int              `json:"epochs"`
	Retries        int              `json:"retries"`
	Transient      int              `json:"transient"`
	CorruptCaught  int              `json:"corruptCaught"`
	HostFallbacks  int              `json:"hostFallbacks"`
	FallbackEpochs int              `json:"fallbackEpochs"`
	Injected       map[string]int64 `json:"injected"`
}

// FaultBenchResult is the JSON artifact written to
// results/BENCH_faults.json: the clean-path cost of the fault-tolerance
// machinery and the pipeline's behaviour under the standard chaos
// profile.
type FaultBenchResult struct {
	GeneratedAt string         `json:"generatedAt"`
	Spec        FaultBenchSpec `json:"spec"`

	RawMS       float64 `json:"rawMS"`       // end-to-end best-of-Reps, RawScan path
	ResilientMS float64 `json:"resilientMS"` // end-to-end best-of-Reps, CRC + recovery loop

	// ScanDeltaUS is the added cost of one clean resilient scan over one
	// raw scan (CRC verify + injector/stats hooks), from an interleaved
	// high-repetition microbenchmark of the two read paths. OverheadPct
	// projects that delta over the run's scans against the raw
	// end-to-end time — the clean-path price of fault tolerance. The
	// microbenchmark numerator keeps the gate stable where a difference
	// of two noisy end-to-end timings would not be.
	ScanDeltaUS float64 `json:"scanDeltaUS"`
	OverheadPct float64 `json:"overheadPct"`

	// IdenticalTrajectories is true when the raw path, the resilient
	// path, and the resilient path with a zero-rate injector attached
	// all produce bit-identical loss/accuracy trajectories.
	IdenticalTrajectories bool `json:"identicalTrajectories"`

	ChaosRuns     []ChaosRun `json:"chaosRuns"`
	ChaosAllDone  bool       `json:"chaosAllDone"`
	CleanFallback int        `json:"cleanFallback"` // fallback epochs on the clean path (must be 0)
}

// faultBenchDataSpec derives the synthetic dataset of the benchmark.
func faultBenchDataSpec(spec FaultBenchSpec) data.Spec {
	return data.Spec{
		Name: "faultbench", Classes: spec.Classes, Train: spec.Train,
		BytesPerImage: spec.BytesPerImage,
		SimTrain:      spec.Train, SimTest: spec.Test, FeatureDim: spec.FeatureDim,
		Spread: 0.15, HardFrac: 0.1, NoiseFrac: 0.02, Seed: 5,
	}
}

// faultBenchOptions builds the controller configuration: selection
// every epoch (so every epoch pays a scan), serial workers (so the
// timing is scheduler-noise-free), and wider hidden layers so training
// compute dominates as it does at paper scale.
func faultBenchOptions(spec FaultBenchSpec) (trainer.Config, core.Options) {
	cfg := trainer.Default()
	cfg.Epochs = spec.Epochs
	cfg.Hidden = []int{128, 64}
	opt := core.DefaultOptions()
	opt.SelectEvery = 1
	opt.SubsetBias = false
	opt.DynamicSizing = false
	opt.Workers = 1
	return cfg, opt
}

// runOnce executes one device-attached training run on a fresh device
// and returns the report and wall time.
func runOnce(spec FaultBenchSpec, mutate func(*core.Options)) (*core.Report, time.Duration, error) {
	ds := faultBenchDataSpec(spec)
	train, test := data.Generate(ds)
	dev, err := smartssd.New()
	if err != nil {
		return nil, 0, err
	}
	img, err := data.Encode(train)
	if err != nil {
		return nil, 0, err
	}
	if err := dev.StoreDataset(ds.Name, img); err != nil {
		return nil, 0, err
	}
	cfg, opt := faultBenchOptions(spec)
	opt.Device = dev
	opt.DatasetName = ds.Name
	if mutate != nil {
		mutate(&opt)
	}
	t0 := time.Now()
	rep, err := core.Run(train, test, cfg, opt)
	return rep, time.Since(t0), err
}

// measurePair times the raw and resilient configurations back to back,
// interleaved rep by rep so both see the same machine conditions, and
// returns each one's fastest run in milliseconds. An untimed warm-up
// pair fills caches and pools first.
func measurePair(spec FaultBenchSpec, reps int) (rawMS, resMS float64, rawRep, resRep *core.Report, err error) {
	raw := func(o *core.Options) { o.RawScan = true }
	if _, _, err = runOnce(spec, raw); err != nil {
		return 0, 0, nil, nil, err
	}
	if _, _, err = runOnce(spec, nil); err != nil {
		return 0, 0, nil, nil, err
	}
	var bestRaw, bestRes time.Duration
	for i := 0; i < reps; i++ {
		var dt time.Duration
		if rawRep, dt, err = runOnce(spec, raw); err != nil {
			return 0, 0, nil, nil, err
		}
		if bestRaw == 0 || dt < bestRaw {
			bestRaw = dt
		}
		if resRep, dt, err = runOnce(spec, nil); err != nil {
			return 0, 0, nil, nil, err
		}
		if bestRes == 0 || dt < bestRes {
			bestRes = dt
		}
	}
	return float64(bestRaw.Nanoseconds()) / 1e6, float64(bestRes.Nanoseconds()) / 1e6, rawRep, resRep, nil
}

// scanDelta measures the per-scan cost the resilience machinery adds
// on the clean path: per-record CRC verification plus the injector and
// stats hooks. Raw and resilient scan batches run interleaved, best of
// reps batches each, so drift hits both sides alike.
func scanDelta(spec FaultBenchSpec, reps int) (time.Duration, error) {
	ds := faultBenchDataSpec(spec)
	train, _ := data.Generate(ds)
	dev, err := smartssd.New()
	if err != nil {
		return 0, err
	}
	img, err := data.Encode(train)
	if err != nil {
		return 0, err
	}
	if err := dev.StoreDataset(ds.Name, img); err != nil {
		return 0, err
	}
	rec, err := data.RecordSize(ds)
	if err != nil {
		return 0, err
	}
	length := int64(len(img))
	n := int(length / rec)
	verify := func(b []byte) error { return data.VerifyImage(b, rec) }

	const scans = 32
	rawBatch := func() (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < scans; i++ {
			if _, err := dev.ReadToFPGA(ds.Name, 0, length, n); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	resBatch := func() (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < scans; i++ {
			if _, _, err := dev.ReadResilient(ds.Name, 0, length, n, verify, smartssd.RetryPolicy{}); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	if _, err := rawBatch(); err != nil { // warm-up both paths
		return 0, err
	}
	if _, err := resBatch(); err != nil {
		return 0, err
	}
	var bestRaw, bestRes time.Duration
	for i := 0; i < reps; i++ {
		dt, err := rawBatch()
		if err != nil {
			return 0, err
		}
		if bestRaw == 0 || dt < bestRaw {
			bestRaw = dt
		}
		if dt, err = resBatch(); err != nil {
			return 0, err
		}
		if bestRes == 0 || dt < bestRes {
			bestRes = dt
		}
	}
	delta := (bestRes - bestRaw) / scans
	if delta < 0 {
		delta = 0
	}
	return delta, nil
}

// RunFaultBench measures the fault-tolerance machinery three ways:
// clean-path overhead (raw vs resilient scan, best-of-Reps), the
// trajectory-identity guarantee, and completion under the standard
// chaos profile.
func RunFaultBench(spec FaultBenchSpec) (*FaultBenchResult, error) {
	res := &FaultBenchResult{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Spec:        spec,
	}

	rawMS, resMS, rawRep, resRep, err := measurePair(spec, spec.Reps)
	if err != nil {
		return nil, fmt.Errorf("overhead measurement: %w", err)
	}
	zeroRep, _, err := runOnce(spec, func(o *core.Options) {
		o.Injector = faults.NewInjector(faults.Profile{Seed: 99})
	})
	if err != nil {
		return nil, fmt.Errorf("zero-rate-injector run: %w", err)
	}

	delta, err := scanDelta(spec, spec.Reps)
	if err != nil {
		return nil, fmt.Errorf("scan-overhead measurement: %w", err)
	}

	res.RawMS = rawMS
	res.ResilientMS = resMS
	res.ScanDeltaUS = float64(delta.Nanoseconds()) / 1e3
	// One scan per epoch (SelectEvery=1): project the per-scan delta
	// over the run against the raw end-to-end time.
	scanCostMS := float64(delta.Nanoseconds()) * float64(spec.Epochs) / 1e6
	res.OverheadPct = safeRatio(scanCostMS, rawMS) * 100
	res.IdenticalTrajectories =
		reflect.DeepEqual(rawRep.Metrics.EpochLoss, resRep.Metrics.EpochLoss) &&
			reflect.DeepEqual(rawRep.Metrics.EpochAcc, resRep.Metrics.EpochAcc) &&
			reflect.DeepEqual(rawRep.Metrics.EpochLoss, zeroRep.Metrics.EpochLoss) &&
			reflect.DeepEqual(rawRep.Metrics.EpochAcc, zeroRep.Metrics.EpochAcc)
	res.CleanFallback = resRep.Faults.FallbackEpochs + zeroRep.Faults.FallbackEpochs

	res.ChaosAllDone = true
	for _, seed := range spec.ChaosSeeds {
		p := faults.DefaultChaosProfile()
		p.Seed = seed
		rep, _, err := runOnce(spec, func(o *core.Options) {
			o.Injector = faults.NewInjector(p)
		})
		run := ChaosRun{Seed: seed}
		if err != nil {
			res.ChaosAllDone = false
		} else {
			run.Completed = true
			run.Epochs = len(rep.Metrics.EpochLoss)
			run.Retries = rep.Faults.Retries
			run.Transient = rep.Faults.TransientErrors
			run.CorruptCaught = rep.Faults.CorruptDetected
			run.HostFallbacks = rep.Faults.HostFallbacks
			run.FallbackEpochs = rep.Faults.FallbackEpochs
			run.Injected = map[string]int64{}
			for c, n := range rep.Faults.Injected {
				run.Injected[string(c)] = n
			}
			if run.Epochs != spec.Epochs {
				res.ChaosAllDone = false
			}
		}
		res.ChaosRuns = append(res.ChaosRuns, run)
	}
	return res, nil
}

// WriteFaultBench runs the benchmark and writes the JSON artifact,
// returning both the result and a renderable table.
func WriteFaultBench(path string, quick bool) (*FaultBenchResult, *Table, error) {
	res, err := RunFaultBench(DefaultFaultBenchSpec(quick))
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, nil, err
	}
	return res, FaultBenchTable(res), nil
}

// FaultBenchTable renders the measurement as a bench artifact.
func FaultBenchTable(res *FaultBenchResult) *Table {
	t := &Table{
		ID:    "bench-faults",
		Title: "Fault tolerance: clean-path overhead and chaos-profile resilience",
		Note: fmt.Sprintf("%d samples × %d epochs, best of %d; raw %.1f ms vs resilient %.1f ms e2e; CRC+hook cost %.1f µs/scan = %.2f%% of the run; identical trajectories: %v",
			res.Spec.Train, res.Spec.Epochs, res.Spec.Reps, res.RawMS, res.ResilientMS, res.ScanDeltaUS, res.OverheadPct, res.IdenticalTrajectories),
		Header: []string{"Chaos seed", "Completed", "Epochs", "Retries", "Corrupt caught", "Host fallbacks", "Fallback epochs"},
	}
	for _, r := range res.ChaosRuns {
		t.AddRow(fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%v", r.Completed),
			fmt.Sprintf("%d", r.Epochs),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.CorruptCaught),
			fmt.Sprintf("%d", r.HostFallbacks),
			fmt.Sprintf("%d", r.FallbackEpochs))
	}
	return t
}
