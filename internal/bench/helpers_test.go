package bench

import (
	"fmt"

	"nessa/internal/data"
)

// fmtSscan wraps fmt.Sscan for the cell-parsing tests.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// fmtSscanStat parses a "mean ± std" cell.
func fmtSscanStat(s string, mean, std *float64) (int, error) {
	return fmt.Sscanf(s, "%f ± %f", mean, std)
}

// lookupSpec wraps data.Lookup for tests.
func lookupSpec(name string) (data.Spec, bool) { return data.Lookup(name) }
