package bench

import (
	"strconv"
	"strings"
	"testing"
)

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.Fields(cell)[0], "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

func TestAblationEpsQualityNearExact(t *testing.T) {
	tab := AblationEps()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio := cellFloat(t, row[1])
		// Stochastic greedy's (1−1/e−ε) guarantee is loose; in practice
		// facility-location objectives stay near-exact.
		if ratio < 0.95 || ratio > 1.001 {
			t.Errorf("eps=%s objective ratio %v outside [0.95, 1.001]", row[0], ratio)
		}
	}
}

func TestAblationPartitionTradeoff(t *testing.T) {
	tab := AblationPartition()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// All chunk sizes must fit the 4.32 MB on-chip memory (that is the
	// optimization's purpose), and quality should not degrade as m
	// grows (fewer, larger chunks).
	prev := 0.0
	for _, row := range tab.Rows {
		if row[3] != "true" {
			t.Errorf("m=%s working set does not fit on chip", row[0])
		}
		ratio := cellFloat(t, row[1])
		if ratio < prev-0.02 {
			t.Errorf("objective ratio decreased at m=%s: %v -> %v", row[0], prev, ratio)
		}
		prev = ratio
	}
}

func TestAblationBitsMonotone(t *testing.T) {
	tab := AblationBits()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	prevAgr := 0.0
	prevBytes := 0.0
	for _, row := range tab.Rows {
		agr := cellFloat(t, row[1])
		bytes := cellFloat(t, row[2])
		if agr < prevAgr-0.05 {
			t.Errorf("agreement regressed at %s bits: %v -> %v", row[0], prevAgr, agr)
		}
		if bytes <= prevBytes {
			t.Errorf("feedback bytes not growing at %s bits", row[0])
		}
		prevAgr, prevBytes = agr, bytes
	}
	// The deployed int8 point: high agreement at ~4× compression.
	int8Row := tab.Rows[2]
	if a := cellFloat(t, int8Row[1]); a < 0.97 {
		t.Errorf("int8 agreement = %v, want >= 0.97 (the §3.2.1 design point)", a)
	}
}

func TestAblationDSEDeployedPointPresent(t *testing.T) {
	tab := AblationDSE()
	found := false
	for _, row := range tab.Rows {
		if row[0] == "512" && row[1] == "64" {
			found = true
			if row[4] != "true" {
				t.Error("deployed 512/64 kernel reported as not fitting")
			}
		}
	}
	if !found {
		t.Fatal("deployed design point missing from DSE table")
	}
}

func TestAblationClusterLinearScaling(t *testing.T) {
	tab := AblationCluster()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	last := tab.Rows[3]
	speedup := cellFloat(t, last[2])
	if speedup < 7.5 || speedup > 8.5 {
		t.Errorf("8-drive speed-up = %v, want ~8x", speedup)
	}
}

func TestAblationScaleOutGrid(t *testing.T) {
	tab := AblationScaleOut()
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 3×3 grid", len(tab.Rows))
	}
	// The 4×4 corner must beat the 1×1 corner substantially.
	last := tab.Rows[8]
	if last[0] != "4" || last[1] != "4" {
		t.Fatalf("unexpected final row %v", last)
	}
	speed := cellFloat(t, last[5])
	if speed < 2.0 {
		t.Errorf("4 drives × 4 GPUs speed-up = %.2fx, want > 2x", speed)
	}
	// First row is the baseline.
	if got := cellFloat(t, tab.Rows[0][5]); got != 1.0 {
		t.Errorf("1×1 baseline = %v, want 1.00x", got)
	}
}

func TestAblationEnergyFPGAWins(t *testing.T) {
	tab := AblationEnergy()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	fpgaJ := cellFloat(t, tab.Rows[0][3])
	for _, row := range tab.Rows[1:] {
		if gpuJ := cellFloat(t, row[3]); gpuJ <= fpgaJ {
			t.Errorf("%s energy %v J not above FPGA's %v J", row[0], gpuJ, fpgaJ)
		}
	}
}
