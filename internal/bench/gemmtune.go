// GEMM block-size autotuner: searches a small MC/KC/NR candidate grid
// with timed kernel runs and persists the per-tier winners as a
// tensor.TuningRecord (results/GEMM_tuning.json). nessa-train applies
// the record at startup with -tuning; the bit-exact tier's candidates
// only move banding (results are unaffected by construction), while the
// fast tier's candidates also choose the k-block depth and panel width
// its reassociated kernels run at.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nessa/internal/tensor"
)

// gemmTuneShape is the workload the autotuner times: the forward-pass
// kernel shape of the training benchmark.
type gemmTuneShape struct{ n, k, m int }

func defaultGemmTuneShape(quick bool) gemmTuneShape {
	if quick {
		return gemmTuneShape{n: 256, k: 128, m: 128}
	}
	return gemmTuneShape{n: 512, k: 256, m: 256}
}

// gemmTuneCandidate is one measured grid point.
type gemmTuneCandidate struct {
	tier   string // "bit-exact" | "fast"
	tuning tensor.Tuning
	gflops float64
	winner bool
}

// bitExactCandidates is the bit-exact tier's grid: only MC matters
// there (KC is ignored, NR unused), so the sweep is one-dimensional.
// NR is pinned to 8 so a record's bit-exact entry can never veto the
// fast tier if both tiers end up sharing a tuning.
func bitExactCandidates(quick bool) []tensor.Tuning {
	mcs := []int{0, 16, 32, 64}
	if quick {
		mcs = []int{0, 32}
	}
	out := make([]tensor.Tuning, 0, len(mcs))
	for _, mc := range mcs {
		out = append(out, tensor.Tuning{MC: mc, KC: 0, NR: 8})
	}
	return out
}

// fastCandidates is the fast tier's grid: banding × k-block depth ×
// panel width. NR=4 is the deliberate degrade candidate — it runs the
// bit-exact 4-wide kernels, and wins only if the AVX2 path loses on
// this machine.
func fastCandidates(quick bool) []tensor.Tuning {
	mcs := []int{0, 16, 32, 64}
	kcs := []int{0, 64, 128, 256}
	nrs := []int{8, 4}
	if quick {
		mcs, kcs, nrs = []int{0, 32}, []int{0, 256}, []int{8}
	}
	out := make([]tensor.Tuning, 0, len(mcs)*len(kcs)*len(nrs))
	for _, nr := range nrs {
		for _, kc := range kcs {
			for _, mc := range mcs {
				out = append(out, tensor.Tuning{MC: mc, KC: kc, NR: nr})
			}
		}
	}
	return out
}

// timeGemm measures MatMulTransB throughput (GFLOP/s) under the
// currently installed tier and tuning.
func timeGemm(sh gemmTuneShape, gd, ga, gb *tensor.Matrix, reps int) float64 {
	tensor.MatMulTransB(gd, ga, gb) // warm panels under this tuning
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		tensor.MatMulTransB(gd, ga, gb)
	}
	sec := time.Since(t0).Seconds()
	flops := 2 * float64(sh.n) * float64(sh.k) * float64(sh.m) * float64(reps)
	return flops / sec / 1e9
}

// RunGEMMTune sweeps both tiers' candidate grids and returns the
// persistable record plus the full measurement table. The process-wide
// tier and tuning are restored before returning.
func RunGEMMTune(quick bool) (*tensor.TuningRecord, *Table, error) {
	sh := defaultGemmTuneShape(quick)
	reps := 8
	if quick {
		reps = 3
	}
	ga := tensor.NewMatrix(sh.n, sh.k)
	gb := tensor.NewMatrix(sh.m, sh.k)
	gd := tensor.NewMatrix(sh.n, sh.m)
	r := tensor.NewRNG(98765)
	ga.FillNormal(r, 1)
	gb.FillNormal(r, 1)

	prevTuning := tensor.CurrentTuning()
	prevFast := tensor.FastMathActive()
	defer func() {
		tensor.SetFastMath(prevFast)
		_ = tensor.SetTuning(prevTuning)
	}()

	rec := &tensor.TuningRecord{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		CPUs:          runtime.NumCPU(),
		FastSupported: tensor.FastMathSupported(),
		// Fall back to the defaults for any tier that is not measured.
		BitExact: tensor.DefaultTuning(),
		Fast:     tensor.DefaultTuning(),
	}

	var cands []gemmTuneCandidate
	sweep := func(tier string, on bool, grid []tensor.Tuning) (tensor.Tuning, float64, error) {
		tensor.SetFastMath(on)
		best, bestG := tensor.Tuning{}, -1.0
		for _, t := range grid {
			if err := tensor.SetTuning(t); err != nil {
				return best, bestG, err
			}
			g := timeGemm(sh, gd, ga, gb, reps)
			cands = append(cands, gemmTuneCandidate{tier: tier, tuning: t, gflops: g})
			if g > bestG {
				best, bestG = t, g
			}
		}
		for i := range cands {
			if cands[i].tier == tier && cands[i].tuning == best {
				cands[i].winner = true
			}
		}
		return best, bestG, nil
	}

	best, g, err := sweep("bit-exact", false, bitExactCandidates(quick))
	if err != nil {
		return nil, nil, err
	}
	rec.BitExact, rec.BitExactGFLOPS = best, g

	if rec.FastSupported {
		best, g, err = sweep("fast", true, fastCandidates(quick))
		if err != nil {
			return nil, nil, err
		}
		rec.Fast, rec.FastGFLOPS = best, g
	}

	t := &Table{
		ID:    "bench-gemmtune",
		Title: "GEMM block-size autotuning: MC/KC/NR candidate sweep per kernel tier",
		Note: fmt.Sprintf("%d×%d·(%d×%d)ᵀ, %d reps per candidate on %d CPUs; fast tier supported: %v; winners persisted to the tuning record",
			sh.n, sh.k, sh.m, sh.k, reps, rec.CPUs, rec.FastSupported),
		Header: []string{"Tier", "MC", "KC", "NR", "GFLOP/s", "Winner"},
	}
	for _, c := range cands {
		mark := ""
		if c.winner {
			mark = "*"
		}
		t.AddRow(c.tier, fmt.Sprintf("%d", c.tuning.MC), fmt.Sprintf("%d", c.tuning.KC),
			fmt.Sprintf("%d", c.tuning.NR), fmt.Sprintf("%.1f", c.gflops), mark)
	}
	return rec, t, nil
}

// WriteGEMMTune runs the autotuner and persists the record to path
// (conventionally results/GEMM_tuning.json).
func WriteGEMMTune(path string, quick bool) (*tensor.TuningRecord, *Table, error) {
	rec, t, err := RunGEMMTune(quick)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	if err := tensor.SaveTuningRecord(path, rec); err != nil {
		return nil, nil, err
	}
	return rec, t, nil
}
