package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nessa/internal/parallel"
	"nessa/internal/selection"
	"nessa/internal/tensor"
)

// SelectionBenchSpec fixes the synthetic workload of the parallel-
// selection benchmark: a CIFAR-10-shaped epoch selection step (10
// classes, per-class facility location over gradient-sized embeddings)
// plus the two kernels underneath it (a full gain scan and a selection-
// model GEMM).
type SelectionBenchSpec struct {
	Classes  int `json:"classes"`
	PerClass int `json:"perClass"`
	Dim      int `json:"dim"`
	K        int `json:"k"`

	GainN   int `json:"gainN"`   // candidates in the gain-scan kernel
	GainDim int `json:"gainDim"` // embedding dim of the gain-scan kernel

	// GEMM shape (n×k)·(k×m).
	MatN int `json:"matN"`
	MatK int `json:"matK"`
	MatM int `json:"matM"`
}

// DefaultSelectionBenchSpec sizes the workload so one measurement runs
// in roughly a second per worker setting on a laptop core.
func DefaultSelectionBenchSpec() SelectionBenchSpec {
	return SelectionBenchSpec{
		Classes: 10, PerClass: 400, Dim: 32, K: 400,
		GainN: 8192, GainDim: 64,
		MatN: 512, MatK: 256, MatM: 256,
	}
}

// SelectionBenchRun is one worker setting's measurement.
type SelectionBenchRun struct {
	Workers    int     `json:"workers"`
	PerClassMS float64 `json:"perClassMS"` // full CRAIG epoch selection step
	GainScanMS float64 `json:"gainScanMS"` // 100 facility gain scans
	MatMulMS   float64 `json:"matMulMS"`   // 20 selection-model GEMMs
}

// SelectionBenchResult is the JSON artifact written to
// results/BENCH_selection.json so the speed trajectory of the
// selection engine is tracked from PR to PR.
type SelectionBenchResult struct {
	GeneratedAt   string `json:"generatedAt"`
	CPUs          int    `json:"cpus"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	EffectiveCPUs int    `json:"effectiveCPUs"` // min(cpus, gomaxprocs): the real parallelism budget

	Spec SelectionBenchSpec  `json:"spec"`
	Runs []SelectionBenchRun `json:"runs"`

	// Speedups compare workers=1 against workers=max. They are null
	// (and SpeedupWarning set) when the process has fewer than 2
	// effective CPUs: a sweep time-sliced onto one core cannot measure
	// scaling, and writing a fabricated 1.0 would poison the PR-to-PR
	// trend (same convention as BENCH_training.json).
	SpeedupPerClass  *float64 `json:"speedupPerClass"`
	SpeedupGainScan  *float64 `json:"speedupGainScan"`
	SpeedupMatMul    *float64 `json:"speedupMatMul"`
	SpeedupWarning   string   `json:"speedupWarning,omitempty"`
	IdenticalSubsets bool     `json:"identicalSubsets"` // workers=1 vs max select the same set
}

// RunSelectionBench measures the parallel selection engine at 1 worker
// and at every available core, verifying along the way that both
// settings select the identical subset (the determinism contract of
// internal/parallel).
func RunSelectionBench(spec SelectionBenchSpec) (*SelectionBenchResult, error) {
	r := tensor.NewRNG(12345)
	n := spec.Classes * spec.PerClass
	emb := tensor.NewMatrix(n, spec.Dim)
	emb.FillNormal(r, 1)
	classes := make([][]int, spec.Classes)
	for i := 0; i < n; i++ {
		classes[i%spec.Classes] = append(classes[i%spec.Classes], i)
	}

	gainEmb := tensor.NewMatrix(spec.GainN, spec.GainDim)
	gainEmb.FillNormal(r, 1)
	gainCand := make([]int, spec.GainN)
	for i := range gainCand {
		gainCand[i] = i
	}

	a := tensor.NewMatrix(spec.MatN, spec.MatK)
	bm := tensor.NewMatrix(spec.MatK, spec.MatM)
	dst := tensor.NewMatrix(spec.MatN, spec.MatM)
	a.FillNormal(r, 1)
	bm.FillNormal(r, 1)

	perClass := func() (selection.Result, error) {
		return selection.PerClassWith(emb, classes, spec.K, func(ci int) selection.Maximizer {
			return selection.StochasticMaximizer(0.1, selection.ClassStream(7, ci))
		})
	}

	effective := runtime.NumCPU()
	if gmp := runtime.GOMAXPROCS(0); gmp < effective {
		effective = gmp
	}
	workerSettings := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		workerSettings = workerSettings[:1]
	}
	res := &SelectionBenchResult{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		CPUs:             runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		EffectiveCPUs:    effective,
		Spec:             spec,
		IdenticalSubsets: true,
	}
	defer parallel.SetDefaultWorkers(0)

	var baseline []int
	for _, w := range workerSettings {
		parallel.SetDefaultWorkers(w)

		t0 := time.Now()
		sel, err := perClass()
		if err != nil {
			return nil, fmt.Errorf("bench: per-class selection: %w", err)
		}
		perClassMS := float64(time.Since(t0).Microseconds()) / 1e3

		if baseline == nil {
			baseline = sel.Selected
		} else if !equalInts(baseline, sel.Selected) {
			res.IdenticalSubsets = false
		}

		// The gain-scan proxy: a facility objective over 32 medoids is
		// 32 chunked candidate scans, the same loop gain/absorb run.
		t0 = time.Now()
		for i := 0; i < 20; i++ {
			selection.Objective(gainEmb, gainCand, gainCand[:32])
		}
		gainMS := float64(time.Since(t0).Microseconds()) / 1e3

		t0 = time.Now()
		for i := 0; i < 20; i++ {
			tensor.MatMul(dst, a, bm)
		}
		matMS := float64(time.Since(t0).Microseconds()) / 1e3

		res.Runs = append(res.Runs, SelectionBenchRun{
			Workers:    w,
			PerClassMS: perClassMS,
			GainScanMS: gainMS,
			MatMulMS:   matMS,
		})
	}

	if effective < 2 {
		res.SpeedupWarning = fmt.Sprintf(
			"effective CPUs = %d (< 2): the worker sweep ran time-sliced on one core, so selection speedup is not measurable; speedups withheld",
			effective)
	} else {
		first, last := res.Runs[0], res.Runs[len(res.Runs)-1]
		pc := safeRatio(first.PerClassMS, last.PerClassMS)
		gs := safeRatio(first.GainScanMS, last.GainScanMS)
		mm := safeRatio(first.MatMulMS, last.MatMulMS)
		res.SpeedupPerClass = &pc
		res.SpeedupGainScan = &gs
		res.SpeedupMatMul = &mm
	}
	return res, nil
}

// WriteSelectionBench runs the benchmark and writes the JSON artifact,
// returning both the result and a renderable table.
func WriteSelectionBench(path string) (*SelectionBenchResult, *Table, error) {
	res, err := RunSelectionBench(DefaultSelectionBenchSpec())
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, nil, err
	}
	return res, SelectionBenchTable(res), nil
}

// SelectionBenchTable renders the measurement as a bench artifact.
func SelectionBenchTable(res *SelectionBenchResult) *Table {
	t := &Table{
		ID:    "bench-selection",
		Title: "Parallel selection engine: per-class CRAIG step, gain scan, GEMM",
		Note: fmt.Sprintf("synthetic workload (%d classes × %d cand, dim %d, k=%d) on %d CPUs; identical subsets across worker counts: %v",
			res.Spec.Classes, res.Spec.PerClass, res.Spec.Dim, res.Spec.K, res.CPUs, res.IdenticalSubsets),
		Header: []string{"Workers", "PerClass (ms)", "GainScan (ms)", "MatMul (ms)"},
	}
	for _, run := range res.Runs {
		t.AddRow(fmt.Sprintf("%d", run.Workers),
			fmt.Sprintf("%.1f", run.PerClassMS),
			fmt.Sprintf("%.1f", run.GainScanMS),
			fmt.Sprintf("%.1f", run.MatMulMS))
	}
	t.AddRow("speedup",
		fmtSpeedup(res.SpeedupPerClass),
		fmtSpeedup(res.SpeedupGainScan),
		fmtSpeedup(res.SpeedupMatMul))
	return t
}

// fmtSpeedup renders a possibly-withheld speedup measurement.
func fmtSpeedup(s *float64) string {
	if s == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", *s)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}
