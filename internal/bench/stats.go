package bench

import (
	"fmt"
	"math"

	"nessa/internal/core"
	"nessa/internal/data"
	"nessa/internal/trainer"
)

// Stat is a mean ± standard deviation over repeated runs.
type Stat struct {
	Mean, Std float64
	N         int
}

// NewStat computes sample statistics (σ uses n−1).
func NewStat(xs []float64) Stat {
	s := Stat{N: len(xs)}
	if s.N == 0 {
		return s
	}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N-1))
	return s
}

// String renders "mean ± std" as percentages.
func (s Stat) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean*100, s.Std*100)
}

// SeedVariance repeats the full-data and NeSSA runs on one dataset
// across seeds and reports accuracy mean ± std — the error bars behind
// the single-seed Table 2 cells. The dataset itself stays fixed (its
// generator seed identifies it); only training/selection randomness
// varies.
func SeedVariance(spec data.Spec, quick bool, seeds []uint64) (*Table, error) {
	spec = scaleSpec(spec, quick)
	train, test := data.Generate(spec)

	var fullAcc, nessaAcc, subset []float64
	for _, seed := range seeds {
		cfg := runConfig(quick)
		cfg.Seed = seed
		_, full := trainer.TrainFull(train, test, cfg)
		fullAcc = append(fullAcc, full.FinalAcc)

		opt := runOptions(quick)
		opt.Seed = seed
		rep, err := core.Run(train, test, cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: seed %d: %w", seed, err)
		}
		nessaAcc = append(nessaAcc, rep.Metrics.FinalAcc)
		subset = append(subset, rep.FinalSubsetFrac)
	}
	t := &Table{
		ID:     "seed-variance",
		Title:  fmt.Sprintf("Accuracy variance across %d seeds — %s", len(seeds), spec.Name),
		Note:   "dataset fixed; training and selection randomness varies",
		Header: []string{"Quantity", "Mean ± Std (%)", "Runs"},
	}
	t.AddRow("All data", NewStat(fullAcc).String(), fmt.Sprintf("%d", len(fullAcc)))
	t.AddRow("NeSSA", NewStat(nessaAcc).String(), fmt.Sprintf("%d", len(nessaAcc)))
	t.AddRow("Final subset", NewStat(subset).String(), fmt.Sprintf("%d", len(subset)))
	return t, nil
}
