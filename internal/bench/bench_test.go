package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:     "test",
		Title:  "A test table",
		Note:   "a note",
		Header: []string{"A", "LongHeader"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")

	var text bytes.Buffer
	if err := tab.Render(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"TEST", "A test table", "a note", "LongHeader", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	var csv bytes.Buffer
	if err := tab.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "A,LongHeader" || lines[2] != "333,4" {
		t.Fatalf("bad CSV: %q", csv.String())
	}
}

func TestFigure1ShapeRisesAcrossDecade(t *testing.T) {
	tab := Figure1()
	if len(tab.Rows) < 8 {
		t.Fatalf("figure1 has %d rows, want the decade of models", len(tab.Rows))
	}
	// First (AlexNet) epoch-seconds column must be far below the last
	// (ViT-L).
	first := tab.Rows[0][4]
	last := tab.Rows[len(tab.Rows)-1][4]
	if !(len(first) < len(last)) && first >= last {
		t.Errorf("epoch time did not grow: %s -> %s", first, last)
	}
}

func TestFigure2EndpointsMatchPaper(t *testing.T) {
	tab := Figure2()
	if len(tab.Rows) != 4 {
		t.Fatalf("figure2 has %d rows, want 4", len(tab.Rows))
	}
	// MNIST row: movement ~5.4 %; ImageNet-100 row: ~40.4 %.
	mnist := tab.Rows[0]
	in100 := tab.Rows[3]
	if mnist[0] != "MNIST" || in100[0] != "ImageNet-100" {
		t.Fatalf("unexpected row order: %v / %v", mnist, in100)
	}
	checkPct(t, "MNIST movement", mnist[3], 4.0, 7.0)
	checkPct(t, "ImageNet-100 movement", in100[3], 35.0, 48.0)
}

func checkPct(t *testing.T, name, cell string, lo, hi float64) {
	t.Helper()
	var v float64
	if _, err := fmtSscan(cell, &v); err != nil {
		t.Fatalf("%s: cannot parse %q", name, cell)
	}
	if v < lo || v > hi {
		t.Errorf("%s = %v, want in [%v, %v]", name, v, lo, hi)
	}
}

func TestTable4MatchesPaperUtilization(t *testing.T) {
	tab := Table4()
	want := map[string]float64{"LUT": 67.53, "FF": 23.14, "BRAM": 50.30, "DSP": 42.67}
	for _, row := range tab.Rows {
		var v float64
		if _, err := fmtSscan(row[3], &v); err != nil {
			t.Fatalf("cannot parse %q", row[3])
		}
		target := want[row[0]]
		if v < target-0.5 || v > target+0.5 {
			t.Errorf("%s utilization = %v, want ~%v", row[0], v, target)
		}
	}
}

func TestFigure6ThroughputShape(t *testing.T) {
	tab := Figure6()
	var prev float64 = -1
	var cifar, in100 float64
	for _, row := range tab.Rows {
		var v float64
		if _, err := fmtSscan(row[3], &v); err != nil {
			t.Fatalf("cannot parse %q", row[3])
		}
		if v < prev {
			t.Errorf("throughput not monotone at %s: %v < %v", row[0], v, prev)
		}
		prev = v
		switch row[0] {
		case "CIFAR-10":
			cifar = v
		case "ImageNet-100":
			in100 = v
		}
	}
	if cifar < 1.3 || cifar > 1.6 {
		t.Errorf("CIFAR-10 throughput = %v GB/s, paper measures 1.46", cifar)
	}
	if in100 < 2.1 || in100 > 2.5 {
		t.Errorf("ImageNet-100 throughput = %v GB/s, paper measures 2.28", in100)
	}
}

func TestFigure4Ordering(t *testing.T) {
	rows := Figure4Rows(0.28)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]time.Duration{}
	for _, r := range rows {
		byName[r.Method] = r.Total
		if r.Total <= 0 {
			t.Errorf("%s total time is non-positive", r.Method)
		}
	}
	nessa, craig := byName["NeSSA"], byName["CRAIG (CPU)"]
	kc, full := byName["K-Centers (CPU)"], byName["Full dataset"]
	// The paper's Fig 4 ordering: NeSSA fastest; CRAIG comparable to
	// full; k-Centers slowest (slower than training on everything).
	if !(nessa < craig && nessa < full && nessa < kc) {
		t.Errorf("NeSSA (%v) is not the fastest: craig=%v full=%v kc=%v", nessa, craig, full, kc)
	}
	if kc <= full {
		t.Errorf("k-Centers (%v) should be slower than full training (%v)", kc, full)
	}
	if craig > 2*full {
		t.Errorf("CRAIG (%v) should be comparable to full training (%v)", craig, full)
	}
	// NeSSA's per-epoch advantage should be a real multiple.
	if ratio := full.Seconds() / nessa.Seconds(); ratio < 1.5 {
		t.Errorf("NeSSA per-epoch speed-up = %.2fx, want > 1.5x", ratio)
	}
}

func TestMethodEpochTimesBiggerDatasetsBiggerWins(t *testing.T) {
	// §4.4: "as the dataset size increases, storage-assisted training
	// becomes more effective". ImageNet-100's NeSSA speed-up should
	// beat CIFAR-10's.
	speedup := func(name string) float64 {
		spec, ok := lookupSpec(name)
		if !ok {
			t.Fatalf("missing dataset %s", name)
		}
		rows := MethodEpochTimes(spec, 0.3)
		return rows[3].Total.Seconds() / rows[0].Total.Seconds()
	}
	small := speedup("CIFAR-10")
	big := speedup("ImageNet-100")
	if big <= small {
		t.Errorf("ImageNet-100 speed-up (%.2fx) not above CIFAR-10's (%.2fx)", big, small)
	}
}

func TestSection44AverageNearPaper(t *testing.T) {
	tab := Section44(map[string]float64{
		"CIFAR-10": 0.28, "SVHN": 0.15, "CINIC-10": 0.30,
		"CIFAR-100": 0.38, "TinyImageNet": 0.34, "ImageNet-100": 0.28,
	})
	// With the paper's own Table 2 subset ratios the average reduction
	// should land near the paper's 3.47×.
	var avg float64
	for _, row := range tab.Rows {
		if row[0] == "AVERAGE" {
			if _, err := fmtSscan(strings.TrimSuffix(row[3], "x"), &avg); err != nil {
				t.Fatalf("cannot parse %q", row[3])
			}
		}
	}
	if avg < 3.0 || avg > 4.2 {
		t.Errorf("average movement reduction = %.2fx, paper reports 3.47x", avg)
	}
}

func TestQuickAccuracyRunPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	spec, _ := lookupSpec("CIFAR-10")
	r, err := AccuracyRun(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Full.FinalAcc < 0.5 || r.NeSSA.Metrics.FinalAcc < 0.5 {
		t.Errorf("quick runs did not learn: full=%.3f nessa=%.3f",
			r.Full.FinalAcc, r.NeSSA.Metrics.FinalAcc)
	}
	if r.CRAIG == nil || r.KC == nil {
		t.Fatal("baseline runs missing")
	}

	tab := Table2([]DatasetRun{r})
	if len(tab.Rows) != 1 {
		t.Fatalf("table2 rows = %d, want 1", len(tab.Rows))
	}
	fig5 := Figure5([]DatasetRun{r}, 5)
	if len(fig5.Rows) == 0 || len(fig5.Header) != 3 {
		t.Fatalf("figure5 shape wrong: %d rows, %d cols", len(fig5.Rows), len(fig5.Header))
	}
	s43 := Section43([]DatasetRun{r})
	if len(s43.Rows) != 2 { // dataset + average
		t.Fatalf("section4.3 rows = %d, want 2", len(s43.Rows))
	}
	fr := AvgSubsetFracs([]DatasetRun{r})
	if fr["CIFAR-10"] <= 0 || fr["CIFAR-10"] > 1 {
		t.Fatalf("bad avg subset frac %v", fr["CIFAR-10"])
	}
}

func TestQuickTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	res, err := RunTable3([]float64{0.2}, true)
	if err != nil {
		t.Fatal(err)
	}
	tab := Table3(res)
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 8 {
		t.Fatalf("table3 shape = %dx%d, want 1x8", len(tab.Rows), len(tab.Rows[0]))
	}
	for _, v := range Table3Variants() {
		accs := res.Acc[v]
		if len(accs) != 1 || accs[0] <= 0.3 {
			t.Errorf("%s accuracy %v implausibly low", v, accs)
		}
	}
}

func TestScaleSpecFloors(t *testing.T) {
	spec, _ := lookupSpec("TinyImageNet")
	q := scaleSpec(spec, true)
	if q.SimTrain < q.Classes*15 {
		t.Errorf("quick scale starves many-class dataset: %d samples for %d classes", q.SimTrain, q.Classes)
	}
	full := scaleSpec(spec, false)
	if full.SimTrain != spec.SimTrain {
		t.Error("non-quick scaling should be identity")
	}
}

func TestEpochsOrFallback(t *testing.T) {
	if epochsOr(-1, 9) != 9 || epochsOr(3, 9) != 3 {
		t.Error("epochsOr wrong")
	}
}
