package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nessa/internal/data"
	"nessa/internal/parallel"
	"nessa/internal/tensor"
	"nessa/internal/trainer"
)

// TrainingSpeedupGate is the minimum workers=1 → workers=2 epoch
// speedup the training hot path must deliver on a real multi-core
// machine. nessa-bench enforces it whenever the speedup is measurable
// (effective CPUs >= 2); below that the measurement is refused rather
// than gated, because a 2-worker run pinned to one core measures
// scheduling overhead, not scaling.
const TrainingSpeedupGate = 1.5

// TrainingBenchSpec fixes the synthetic workload of the training
// hot-path benchmark: weighted mini-batch epochs over a CIFAR-10-shaped
// proxy dataset, the chunked evaluation pass, and the forward GEMM
// kernel underneath both.
type TrainingBenchSpec struct {
	Classes    int   `json:"classes"`
	Train      int   `json:"train"`
	Test       int   `json:"test"`
	FeatureDim int   `json:"featureDim"`
	Epochs     int   `json:"epochs"`
	BatchSize  int   `json:"batchSize"`
	Hidden     []int `json:"hidden"`

	// GEMM shape (n×k)·(m×k)ᵀ — the forward-pass kernel.
	MatN int `json:"matN"`
	MatK int `json:"matK"`
	MatM int `json:"matM"`
}

// DefaultTrainingBenchSpec mirrors the shapes the accuracy experiments
// train at: 4096 samples × 64 features, batch 128, one 64-wide hidden
// layer.
func DefaultTrainingBenchSpec(quick bool) TrainingBenchSpec {
	s := TrainingBenchSpec{
		Classes: 10, Train: 4096, Test: 512, FeatureDim: 64,
		Epochs: 12, BatchSize: 128, Hidden: []int{64},
		MatN: 512, MatK: 256, MatM: 256,
	}
	if quick {
		s.Train, s.Epochs = 1024, 4
	}
	return s
}

// TrainingBenchRun is one worker setting's measurement. The bit-exact
// tier's numbers are always present; the fast-tier columns are zero
// when the host cannot run AVX2/FMA.
type TrainingBenchRun struct {
	Workers        int     `json:"workers"`
	GoMaxProcs     int     `json:"gomaxprocs"` // recorded per run: the OS-thread budget the run actually had
	NsPerEpoch     int64   `json:"nsPerEpoch"`
	MSPerEpoch     float64 `json:"msPerEpoch"`
	AllocsPerEpoch float64 `json:"allocsPerEpoch"` // runtime.MemStats Mallocs delta
	EvalMS         float64 `json:"evalMS"`         // chunked EvaluateModel pass
	GemmGFLOPS     float64 `json:"gemmGFLOPS"`     // bit-exact forward-kernel throughput

	FastMSPerEpoch float64 `json:"fastMSPerEpoch,omitempty"` // AVX2/FMA tier epoch time
	FastGemmGFLOPS float64 `json:"fastGemmGFLOPS,omitempty"` // AVX2/FMA tier kernel throughput
}

// TrainingBenchResult is the JSON artifact written to
// results/BENCH_training.json so the speed trajectory of the training
// hot path is tracked from PR to PR.
type TrainingBenchResult struct {
	GeneratedAt   string `json:"generatedAt"`
	CPUs          int    `json:"cpus"`
	GoMaxProcs    int    `json:"gomaxprocs"`
	EffectiveCPUs int    `json:"effectiveCPUs"` // min(cpus, gomaxprocs): the real parallelism budget

	Spec TrainingBenchSpec  `json:"spec"`
	Runs []TrainingBenchRun `json:"runs"` // worker sweep: 1, 2, NumCPU (deduplicated)

	// SpeedupEpoch is the workers=1 → workers=2 epoch speedup — the
	// gated scaling number. It is null (and SpeedupWarning set) when
	// the process has fewer than 2 effective CPUs: a sweep squeezed
	// onto one core cannot measure scaling, and writing a number would
	// poison the PR-to-PR trend. SpeedupEpochBest compares workers=1
	// against the fastest sweep entry.
	SpeedupEpoch     *float64 `json:"speedupEpoch"`
	SpeedupEpochBest *float64 `json:"speedupEpochBest"`
	SpeedupWarning   string   `json:"speedupWarning,omitempty"`

	// IdenticalTrajectories is the bit-exact determinism contract:
	// every epoch loss, every final parameter bit, and the evaluated
	// accuracy agree across the whole worker sweep.
	IdenticalTrajectories bool `json:"identicalTrajectories"`

	// Fast-tier reporting, kept strictly separate from the bit-exact
	// numbers: whether the host can run it, whether its trajectories
	// are bit-identical across worker counts (they must be — the tier
	// is reassociated, not nondeterministic), and the largest relative
	// epoch-loss divergence from the bit-exact tier actually observed.
	FastTierSupported     bool    `json:"fastTierSupported"`
	FastTierDeterministic bool    `json:"fastTierDeterministic"`
	FastVsBitExactMaxRel  float64 `json:"fastVsBitExactMaxRel,omitempty"`
}

// trainingTrajectory is one tier+worker setting's measured trajectory
// and timings.
type trainingTrajectory struct {
	losses  []float64
	bits    []uint32
	acc     float64
	elapsed time.Duration
	allocs  float64
}

// runTrajectory trains a fresh model for spec.Epochs at the current
// worker/tier setting, returning the trajectory, steady-state timing
// (one warm-up epoch fills every arena and free list first), and the
// trained model for the eval-pass measurement.
func runTrajectory(ds data.Spec, cfg trainer.Config, spec TrainingBenchSpec, train *data.Dataset, weights []float32) (trainingTrajectory, *trainer.Trainer) {
	tt := trainer.New(ds, cfg)
	tt.SetEpoch(0)
	tt.TrainEpoch(train.X, train.Labels, weights)

	losses := make([]float64, spec.Epochs)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for e := 0; e < spec.Epochs; e++ {
		tt.SetEpoch(e)
		losses[e] = tt.TrainEpoch(train.X, train.Labels, weights)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	bits := make([]uint32, 0, tt.Model.NumParams())
	for _, l := range tt.Model.Layers {
		for _, v := range l.W.Data {
			bits = append(bits, math.Float32bits(v))
		}
		for _, v := range l.B {
			bits = append(bits, math.Float32bits(v))
		}
	}
	return trainingTrajectory{
		losses:  losses,
		bits:    bits,
		elapsed: elapsed,
		allocs:  float64(m1.Mallocs-m0.Mallocs) / float64(spec.Epochs),
	}, tt
}

// gemmThroughput times the forward kernel at the current worker/tier
// setting and reports GFLOP/s.
func gemmThroughput(spec TrainingBenchSpec, gd, ga, gb *tensor.Matrix) float64 {
	tensor.MatMulTransB(gd, ga, gb) // warm the panel free list
	const reps = 20
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		tensor.MatMulTransB(gd, ga, gb)
	}
	sec := time.Since(t0).Seconds()
	flops := 2 * float64(spec.MatN) * float64(spec.MatK) * float64(spec.MatM) * reps
	return flops / sec / 1e9
}

// benchWorkerSweep is the measured worker ladder: serial, the gated
// 2-worker point, and every core. Deduplicated and ordered.
func benchWorkerSweep() []int {
	sweep := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		sweep = append(sweep, n)
	}
	return sweep
}

// RunTrainingBench measures the training hot path across the worker
// sweep on both kernel tiers, verifying along the way that the
// bit-exact tier's trajectories are bit-identical at every worker
// count and that the fast tier is deterministic (bit-identical to
// itself across worker counts) and within tolerance of bit-exact.
func RunTrainingBench(spec TrainingBenchSpec) (*TrainingBenchResult, error) {
	ds := data.Spec{
		Name: "bench", Classes: spec.Classes, Train: spec.Train,
		SimTrain: spec.Train, SimTest: spec.Test, FeatureDim: spec.FeatureDim,
		Spread: 0.15, HardFrac: 0.1, NoiseFrac: 0.02, Seed: 5,
	}
	train, test := data.Generate(ds)
	weights := make([]float32, train.Len())
	for i := range weights {
		weights[i] = 1 + float32(i%3)
	}
	cfg := trainer.Default()
	cfg.Epochs = spec.Epochs
	cfg.BatchSize = spec.BatchSize
	cfg.Hidden = spec.Hidden

	ga := tensor.NewMatrix(spec.MatN, spec.MatK)
	gb := tensor.NewMatrix(spec.MatM, spec.MatK)
	gd := tensor.NewMatrix(spec.MatN, spec.MatM)
	r := tensor.NewRNG(12345)
	ga.FillNormal(r, 1)
	gb.FillNormal(r, 1)

	effective := runtime.NumCPU()
	if gmp := runtime.GOMAXPROCS(0); gmp < effective {
		effective = gmp
	}
	res := &TrainingBenchResult{
		GeneratedAt:           time.Now().UTC().Format(time.RFC3339),
		CPUs:                  runtime.NumCPU(),
		GoMaxProcs:            runtime.GOMAXPROCS(0),
		EffectiveCPUs:         effective,
		Spec:                  spec,
		IdenticalTrajectories: true,
		FastTierSupported:     tensor.FastMathSupported(),
		FastTierDeterministic: true,
	}
	defer parallel.SetDefaultWorkers(0)
	defer tensor.SetFastMath(false)

	var ref, fastRef *trainingTrajectory
	for _, w := range benchWorkerSweep() {
		parallel.SetDefaultWorkers(w)

		tensor.SetFastMath(false)
		tj, tt := runTrajectory(ds, cfg, spec, train, weights)
		trainer.EvaluateModel(tt.Model, test) // warm eval arenas
		t0 := time.Now()
		tj.acc = trainer.EvaluateModel(tt.Model, test)
		evalMS := float64(time.Since(t0).Microseconds()) / 1e3
		gflops := gemmThroughput(spec, gd, ga, gb)

		if ref == nil {
			tjCopy := tj
			ref = &tjCopy
		} else if !equalFloat64s(tj.losses, ref.losses) || !equalUint32s(tj.bits, ref.bits) || tj.acc != ref.acc {
			res.IdenticalTrajectories = false
		}

		run := TrainingBenchRun{
			Workers:        w,
			GoMaxProcs:     runtime.GOMAXPROCS(0),
			NsPerEpoch:     tj.elapsed.Nanoseconds() / int64(spec.Epochs),
			MSPerEpoch:     float64(tj.elapsed.Nanoseconds()) / float64(spec.Epochs) / 1e6,
			AllocsPerEpoch: tj.allocs,
			EvalMS:         evalMS,
			GemmGFLOPS:     gflops,
		}

		if res.FastTierSupported {
			tensor.SetFastMath(true)
			ftj, _ := runTrajectory(ds, cfg, spec, train, weights)
			run.FastMSPerEpoch = float64(ftj.elapsed.Nanoseconds()) / float64(spec.Epochs) / 1e6
			run.FastGemmGFLOPS = gemmThroughput(spec, gd, ga, gb)
			tensor.SetFastMath(false)

			if fastRef == nil {
				ftjCopy := ftj
				fastRef = &ftjCopy
			} else if !equalFloat64s(ftj.losses, fastRef.losses) || !equalUint32s(ftj.bits, fastRef.bits) {
				res.FastTierDeterministic = false
			}
			for e := range ftj.losses {
				d := math.Abs(ftj.losses[e] - tj.losses[e])
				if m := math.Max(math.Abs(tj.losses[e]), 1); m > 0 {
					d /= m
				}
				if d > res.FastVsBitExactMaxRel {
					res.FastVsBitExactMaxRel = d
				}
			}
		}

		res.Runs = append(res.Runs, run)
	}

	if effective < 2 {
		res.SpeedupWarning = fmt.Sprintf(
			"effective CPUs = %d (< 2): the worker sweep ran time-sliced on one core, so epoch speedup is not measurable; speedupEpoch withheld",
			effective)
	} else {
		for _, run := range res.Runs {
			if run.Workers == 2 {
				s := safeRatio(res.Runs[0].MSPerEpoch, run.MSPerEpoch)
				res.SpeedupEpoch = &s
			}
		}
		best := math.Inf(1)
		for _, run := range res.Runs {
			if run.MSPerEpoch < best {
				best = run.MSPerEpoch
			}
		}
		sb := safeRatio(res.Runs[0].MSPerEpoch, best)
		res.SpeedupEpochBest = &sb
	}
	return res, nil
}

// WriteTrainingBench runs the benchmark and writes the JSON artifact,
// returning both the result and a renderable table.
func WriteTrainingBench(path string, quick bool) (*TrainingBenchResult, *Table, error) {
	res, err := RunTrainingBench(DefaultTrainingBenchSpec(quick))
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, nil, err
	}
	return res, TrainingBenchTable(res), nil
}

// TrainingBenchTable renders the measurement as a bench artifact.
func TrainingBenchTable(res *TrainingBenchResult) *Table {
	t := &Table{
		ID:    "bench-training",
		Title: "Training hot path: weighted SGD epoch, chunked evaluation, forward GEMM",
		Note: fmt.Sprintf("%d samples × %d features, batch %d, %d epochs on %d CPUs (GOMAXPROCS %d); bit-identical trajectories across worker counts: %v; fast tier: supported=%v deterministic=%v max rel vs bit-exact %.2g",
			res.Spec.Train, res.Spec.FeatureDim, res.Spec.BatchSize, res.Spec.Epochs, res.CPUs, res.GoMaxProcs,
			res.IdenticalTrajectories, res.FastTierSupported, res.FastTierDeterministic, res.FastVsBitExactMaxRel),
		Header: []string{"Workers", "Epoch (ms)", "Allocs/epoch", "Eval (ms)", "GEMM (GFLOP/s)", "FMA epoch (ms)", "FMA GEMM (GFLOP/s)"},
	}
	for _, run := range res.Runs {
		fastEpoch, fastGemm := "-", "-"
		if res.FastTierSupported {
			fastEpoch = fmt.Sprintf("%.2f", run.FastMSPerEpoch)
			fastGemm = fmt.Sprintf("%.1f", run.FastGemmGFLOPS)
		}
		t.AddRow(fmt.Sprintf("%d", run.Workers),
			fmt.Sprintf("%.2f", run.MSPerEpoch),
			fmt.Sprintf("%.1f", run.AllocsPerEpoch),
			fmt.Sprintf("%.2f", run.EvalMS),
			fmt.Sprintf("%.1f", run.GemmGFLOPS),
			fastEpoch, fastGemm)
	}
	switch {
	case res.SpeedupEpoch != nil:
		t.AddRow("speedup @2", fmt.Sprintf("%.2fx", *res.SpeedupEpoch), "", "", "", "", "")
	default:
		t.AddRow("speedup @2", "null (single-CPU host)", "", "", "", "", "")
	}
	if res.SpeedupEpochBest != nil {
		t.AddRow("speedup best", fmt.Sprintf("%.2fx", *res.SpeedupEpochBest), "", "", "", "", "")
	}
	return t
}

func equalFloat64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalUint32s(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
