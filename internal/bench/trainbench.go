package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nessa/internal/data"
	"nessa/internal/parallel"
	"nessa/internal/tensor"
	"nessa/internal/trainer"
)

// TrainingBenchSpec fixes the synthetic workload of the training
// hot-path benchmark: weighted mini-batch epochs over a CIFAR-10-shaped
// proxy dataset, the chunked evaluation pass, and the forward GEMM
// kernel underneath both.
type TrainingBenchSpec struct {
	Classes    int   `json:"classes"`
	Train      int   `json:"train"`
	Test       int   `json:"test"`
	FeatureDim int   `json:"featureDim"`
	Epochs     int   `json:"epochs"`
	BatchSize  int   `json:"batchSize"`
	Hidden     []int `json:"hidden"`

	// GEMM shape (n×k)·(m×k)ᵀ — the forward-pass kernel.
	MatN int `json:"matN"`
	MatK int `json:"matK"`
	MatM int `json:"matM"`
}

// DefaultTrainingBenchSpec mirrors the shapes the accuracy experiments
// train at: 4096 samples × 64 features, batch 128, one 64-wide hidden
// layer.
func DefaultTrainingBenchSpec(quick bool) TrainingBenchSpec {
	s := TrainingBenchSpec{
		Classes: 10, Train: 4096, Test: 512, FeatureDim: 64,
		Epochs: 12, BatchSize: 128, Hidden: []int{64},
		MatN: 512, MatK: 256, MatM: 256,
	}
	if quick {
		s.Train, s.Epochs = 1024, 4
	}
	return s
}

// TrainingBenchRun is one worker setting's measurement.
type TrainingBenchRun struct {
	Workers        int     `json:"workers"`
	NsPerEpoch     int64   `json:"nsPerEpoch"`
	MSPerEpoch     float64 `json:"msPerEpoch"`
	AllocsPerEpoch float64 `json:"allocsPerEpoch"` // runtime.MemStats Mallocs delta
	EvalMS         float64 `json:"evalMS"`         // chunked EvaluateModel pass
	GemmGFLOPS     float64 `json:"gemmGFLOPS"`     // forward-kernel throughput
}

// TrainingBenchResult is the JSON artifact written to
// results/BENCH_training.json so the speed trajectory of the training
// hot path is tracked from PR to PR.
type TrainingBenchResult struct {
	GeneratedAt           string             `json:"generatedAt"`
	CPUs                  int                `json:"cpus"`
	Spec                  TrainingBenchSpec  `json:"spec"`
	Runs                  []TrainingBenchRun `json:"runs"`
	SpeedupEpoch          float64            `json:"speedupEpoch"` // workers=1 vs max
	IdenticalTrajectories bool               `json:"identicalTrajectories"`
}

// RunTrainingBench measures the training hot path at 1 worker and at
// every available core, verifying along the way that both settings
// produce bit-identical optimization trajectories — every epoch loss,
// every final parameter, and the evaluated accuracy (the determinism
// contract of the blocked GEMM and the chunked evaluation).
func RunTrainingBench(spec TrainingBenchSpec) (*TrainingBenchResult, error) {
	ds := data.Spec{
		Name: "bench", Classes: spec.Classes, Train: spec.Train,
		SimTrain: spec.Train, SimTest: spec.Test, FeatureDim: spec.FeatureDim,
		Spread: 0.15, HardFrac: 0.1, NoiseFrac: 0.02, Seed: 5,
	}
	train, test := data.Generate(ds)
	weights := make([]float32, train.Len())
	for i := range weights {
		weights[i] = 1 + float32(i%3)
	}
	cfg := trainer.Default()
	cfg.Epochs = spec.Epochs
	cfg.BatchSize = spec.BatchSize
	cfg.Hidden = spec.Hidden

	ga := tensor.NewMatrix(spec.MatN, spec.MatK)
	gb := tensor.NewMatrix(spec.MatM, spec.MatK)
	gd := tensor.NewMatrix(spec.MatN, spec.MatM)
	r := tensor.NewRNG(12345)
	ga.FillNormal(r, 1)
	gb.FillNormal(r, 1)

	workerSettings := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		// Still exercise the banded code paths for the identity check.
		workerSettings[1] = 2
	}
	res := &TrainingBenchResult{
		GeneratedAt:           time.Now().UTC().Format(time.RFC3339),
		CPUs:                  runtime.NumCPU(),
		Spec:                  spec,
		IdenticalTrajectories: true,
	}
	defer parallel.SetDefaultWorkers(0)

	var refLosses []float64
	var refWeights []uint32
	var refAcc float64
	for _, w := range workerSettings {
		parallel.SetDefaultWorkers(w)
		tt := trainer.New(ds, cfg)
		losses := make([]float64, spec.Epochs)

		// One warm-up epoch fills every scratch arena and pool so the
		// measurement sees the steady state (both settings run it, so
		// trajectories stay comparable).
		tt.SetEpoch(0)
		tt.TrainEpoch(train.X, train.Labels, weights)

		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for e := 0; e < spec.Epochs; e++ {
			tt.SetEpoch(e)
			losses[e] = tt.TrainEpoch(train.X, train.Labels, weights)
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)

		t0 = time.Now()
		acc := trainer.EvaluateModel(tt.Model, test)
		evalMS := float64(time.Since(t0).Microseconds()) / 1e3

		bits := make([]uint32, 0, tt.Model.NumParams())
		for _, l := range tt.Model.Layers {
			for _, v := range l.W.Data {
				bits = append(bits, math.Float32bits(v))
			}
			for _, v := range l.B {
				bits = append(bits, math.Float32bits(v))
			}
		}
		if refLosses == nil {
			refLosses, refWeights, refAcc = losses, bits, acc
		} else if !equalFloat64s(losses, refLosses) || !equalUint32s(bits, refWeights) || acc != refAcc {
			res.IdenticalTrajectories = false
		}

		// Forward-kernel throughput at this worker setting.
		tensor.MatMulTransB(gd, ga, gb) // warm the panel pool
		const reps = 20
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			tensor.MatMulTransB(gd, ga, gb)
		}
		gemmSec := time.Since(t0).Seconds()
		flops := 2 * float64(spec.MatN) * float64(spec.MatK) * float64(spec.MatM) * reps

		perEpoch := elapsed.Nanoseconds() / int64(spec.Epochs)
		res.Runs = append(res.Runs, TrainingBenchRun{
			Workers:        w,
			NsPerEpoch:     perEpoch,
			MSPerEpoch:     float64(perEpoch) / 1e6,
			AllocsPerEpoch: float64(m1.Mallocs-m0.Mallocs) / float64(spec.Epochs),
			EvalMS:         evalMS,
			GemmGFLOPS:     flops / gemmSec / 1e9,
		})
	}
	first, last := res.Runs[0], res.Runs[len(res.Runs)-1]
	res.SpeedupEpoch = safeRatio(first.MSPerEpoch, last.MSPerEpoch)
	return res, nil
}

// WriteTrainingBench runs the benchmark and writes the JSON artifact,
// returning both the result and a renderable table.
func WriteTrainingBench(path string, quick bool) (*TrainingBenchResult, *Table, error) {
	res, err := RunTrainingBench(DefaultTrainingBenchSpec(quick))
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, nil, err
	}
	return res, TrainingBenchTable(res), nil
}

// TrainingBenchTable renders the measurement as a bench artifact.
func TrainingBenchTable(res *TrainingBenchResult) *Table {
	t := &Table{
		ID:    "bench-training",
		Title: "Training hot path: weighted SGD epoch, chunked evaluation, forward GEMM",
		Note: fmt.Sprintf("%d samples × %d features, batch %d, %d epochs on %d CPUs; bit-identical trajectories across worker counts: %v",
			res.Spec.Train, res.Spec.FeatureDim, res.Spec.BatchSize, res.Spec.Epochs, res.CPUs, res.IdenticalTrajectories),
		Header: []string{"Workers", "Epoch (ms)", "Allocs/epoch", "Eval (ms)", "GEMM (GFLOP/s)"},
	}
	for _, run := range res.Runs {
		t.AddRow(fmt.Sprintf("%d", run.Workers),
			fmt.Sprintf("%.2f", run.MSPerEpoch),
			fmt.Sprintf("%.1f", run.AllocsPerEpoch),
			fmt.Sprintf("%.2f", run.EvalMS),
			fmt.Sprintf("%.1f", run.GemmGFLOPS))
	}
	t.AddRow("speedup", fmt.Sprintf("%.2fx", res.SpeedupEpoch), "", "", "")
	return t
}

func equalFloat64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalUint32s(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
