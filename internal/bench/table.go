// Package bench regenerates every table and figure of the paper's
// evaluation section. Each emitter returns a Table whose rows mirror
// the published artifact: analytic emitters (Figs 1, 2, 4, 6 and
// Tables 1, 4, plus the §4.3/§4.4 headline numbers) evaluate the
// calibrated device models; training emitters (Tables 2, 3, Fig 5) run
// real optimization on the synthetic dataset proxies.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact.
type Table struct {
	ID     string // e.g. "table2", "figure5"
	Title  string
	Note   string // provenance / substitution note
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned text rendering of the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len([]rune(c)); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quotes are not
// needed: no emitter produces cells containing commas).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
