package bench

import (
	"testing"
)

// The gate semantics live in cmd/nessa-bench; here we pin the artifact
// shape and the properties the gates read, at a small spec so the test
// stays fast.
func TestStreamingBenchArtifact(t *testing.T) {
	spec := DefaultStreamingBenchSpec(true)
	spec.Records, spec.DetRecords = 20_000, 5_000
	spec.RefRecords, spec.RefK = 600, 20
	spec.K, spec.ChunkRecords = 200, 2048
	res, err := RunStreamingBench(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IdenticalSubsets {
		t.Error("streaming selection diverged across worker counts")
	}
	if res.Scan.FracOfBound < StreamingBandwidthGate {
		t.Errorf("scan achieved %.3f of the sequential bound, gate is %.2f",
			res.Scan.FracOfBound, StreamingBandwidthGate)
	}
	if res.Stats.StateBytes > res.Stats.BudgetBytes {
		t.Errorf("selection state %d bytes over the %d-byte on-chip budget",
			res.Stats.StateBytes, res.Stats.BudgetBytes)
	}
	if res.QualityRatio < StreamingQualityGate {
		t.Errorf("quality ratio %.3f below the %.2f gate", res.QualityRatio, StreamingQualityGate)
	}
	if res.Scan.Records != spec.Records {
		t.Errorf("scanned %d records, want %d", res.Scan.Records, spec.Records)
	}
	if res.DatasetBytes != int64(spec.Records)*spec.RecordBytes {
		t.Errorf("dataset bytes %d, want %d", res.DatasetBytes, int64(spec.Records)*spec.RecordBytes)
	}
	if res.Stats.SketchShrinks == 0 || res.Stats.SketchCapture <= 0 {
		t.Errorf("sketch never engaged: %d shrinks, capture %.3f",
			res.Stats.SketchShrinks, res.Stats.SketchCapture)
	}

	tab := StreamingBenchTable(res)
	if tab.ID != "bench-streaming" || len(tab.Rows) == 0 {
		t.Errorf("table id %q with %d rows, want bench-streaming", tab.ID, len(tab.Rows))
	}
}
