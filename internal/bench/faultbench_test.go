package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The gate semantics live in cmd/nessa-bench; here we pin the artifact
// shape and the properties the gates read, at a small spec so the test
// stays fast.
func TestFaultBenchArtifact(t *testing.T) {
	spec := DefaultFaultBenchSpec(true)
	spec.Train, spec.Epochs, spec.Reps = 256, 4, 2
	spec.ChaosSeeds = spec.ChaosSeeds[:1]
	res, err := RunFaultBench(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IdenticalTrajectories {
		t.Error("clean resilient path diverged from the raw path")
	}
	if res.CleanFallback != 0 {
		t.Errorf("clean path engaged degraded mode %d times", res.CleanFallback)
	}
	if !res.ChaosAllDone {
		t.Error("chaos run failed to complete")
	}
	for _, r := range res.ChaosRuns {
		if !r.Completed || r.Epochs != spec.Epochs {
			t.Errorf("chaos seed %d: completed=%v epochs=%d, want full run", r.Seed, r.Completed, r.Epochs)
		}
	}
	if res.RawMS <= 0 || res.ResilientMS <= 0 {
		t.Errorf("non-positive timings: raw %.2f resilient %.2f", res.RawMS, res.ResilientMS)
	}

	tab := FaultBenchTable(res)
	if tab.ID != "bench-faults" || len(tab.Rows) != len(res.ChaosRuns) {
		t.Errorf("table id %q with %d rows, want bench-faults with %d", tab.ID, len(tab.Rows), len(res.ChaosRuns))
	}
}

func TestWriteFaultBenchRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("writes and re-runs the full quick benchmark")
	}
	path := filepath.Join(t.TempDir(), "BENCH_faults.json")
	res, tab, err := WriteFaultBench(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil {
		t.Fatal("no table returned")
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back FaultBenchResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Spec.Train != res.Spec.Train || back.OverheadPct != res.OverheadPct ||
		len(back.ChaosRuns) != len(res.ChaosRuns) {
		t.Error("artifact round-trip lost fields")
	}
}
