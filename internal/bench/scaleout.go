package bench

import (
	"fmt"
	"time"

	"nessa/internal/data"
	"nessa/internal/fpga"
	"nessa/internal/gpu"
	"nessa/internal/smartssd"
)

// AblationScaleOut models the full §5 future-work deployment: D
// SmartSSDs shard the candidate scan and selection, and G GPUs train
// the selected subset data-parallel. Reported is the NeSSA per-epoch
// wall time for ImageNet-100 + ResNet-50 (the workload where scale
// matters most) across the (D, G) grid.
func AblationScaleOut() *Table {
	spec, _ := data.Lookup("ImageNet-100")
	net, _ := gpu.DatasetNetwork(spec.Name, spec.Network)
	kernel := fpga.DefaultKernel()
	p2p := smartssd.P2PLink()
	gpuLink := smartssd.GPULink()
	g := gpu.V100()

	const subsetFrac = 0.28
	n := spec.Train
	k := int(subsetFrac * float64(n))
	rec := spec.BytesPerImage
	selMACs := int64(net.ForwardGFLOPs * 1e9 / 2 * 0.05)
	paramBytes := int64(net.MParams * 1e6 * 4)

	t := &Table{
		ID:     "ablation-scaleout",
		Title:  "Scale-out deployment (§5): NeSSA epoch time, ImageNet-100 + ResNet-50",
		Note:   "D SmartSSDs shard scan+selection; G GPUs train data-parallel on the 28 % subset",
		Header: []string{"Drives", "GPUs", "Selection", "Train", "Epoch total", "vs 1x1"},
	}
	var base float64
	for _, drives := range []int{1, 2, 4} {
		for _, gpus := range []int{1, 2, 4} {
			// Per-drive shard: scan pipelined with the int8 forward.
			shardN := n / drives
			scan := p2p.Duration(int64(shardN)*rec, shardN)
			fwd := kernel.ForwardTime(shardN, selMACs)
			sel := maxDur(scan, fwd) + kernel.SelectionTime(shardN, k/drives, spec.Classes, 0.1)

			dp, err := gpu.NewDataParallel(g, gpus)
			if err != nil {
				t.AddRow(fmt.Sprintf("%d", drives), fmt.Sprintf("%d", gpus), "error", err.Error(), "", "")
				continue
			}
			train := dp.EpochTime(k, net.ForwardGFLOPs, paramBytes, 128)
			transfer := gpuLink.Duration(int64(k)*rec, k/128+1)
			total := sel + transfer + train
			if base == 0 {
				base = total.Seconds()
			}
			t.AddRow(fmt.Sprintf("%d", drives), fmt.Sprintf("%d", gpus),
				sel.Round(time.Millisecond).String(),
				train.Round(time.Millisecond).String(),
				total.Round(time.Millisecond).String(),
				fmt.Sprintf("%.2fx", base/total.Seconds()))
		}
	}
	return t
}
