package bench

import (
	"fmt"
	"time"

	"nessa/internal/data"
	"nessa/internal/fpga"
	"nessa/internal/gpu"
	"nessa/internal/smartssd"
)

// Figure1 regenerates the paper's Fig 1: per-epoch ImageNet-1k training
// time on an A100 for a decade of image classifiers.
func Figure1() *Table {
	g := gpu.A100()
	spec := data.ImageNet1k()
	t := &Table{
		ID:     "figure1",
		Title:  "Training time per epoch on ImageNet-1k (A100)",
		Note:   "roofline time model over published per-image FLOP counts; overlapped data pipeline",
		Header: []string{"Model", "Year", "Fwd GFLOPs/img", "Epoch time", "Epoch (s)"},
	}
	for _, m := range gpu.Fig1Catalog() {
		b := g.EpochOverlapped(spec.Train, spec.BytesPerImage, m.ForwardGFLOPs)
		t.AddRow(m.Name, fmt.Sprintf("%d", m.Year),
			fmt.Sprintf("%.1f", m.ForwardGFLOPs),
			b.Total.Round(time.Second).String(),
			fmt.Sprintf("%.0f", b.Total.Seconds()))
	}
	return t
}

// Figure2 regenerates Fig 2: the share of training time spent moving
// data for MNIST, CIFAR-10, CIFAR-100, and ImageNet-100 on a V100.
// The paper's cited endpoints are 5.4 % (MNIST) and 40.4 %
// (ImageNet-100).
func Figure2() *Table {
	g := gpu.V100()
	t := &Table{
		ID:     "figure2",
		Title:  "Time distribution of training (V100): data movement vs compute",
		Note:   "unoverlapped pipeline shares; networks per Table 1 ",
		Header: []string{"Dataset", "Bytes/img", "Network", "Movement %", "Compute %"},
	}
	for _, name := range []string{"MNIST", "CIFAR-10", "CIFAR-100", "ImageNet-100"} {
		spec, _ := data.Lookup(name)
		net, _ := gpu.DatasetNetwork(spec.Name, spec.Network)
		b := g.Epoch(spec.Train, spec.BytesPerImage, net.ForwardGFLOPs)
		move := b.MovementShare() * 100
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", spec.BytesPerImage),
			net.Name,
			fmt.Sprintf("%.1f", move),
			fmt.Sprintf("%.1f", 100-move))
	}
	return t
}

// Table1 reprints the dataset registry (paper Table 1) along with the
// synthetic-proxy scale used for accuracy runs.
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Dataset overview",
		Header: []string{"Dataset", "Classes", "Train", "Network", "Bytes/img", "Sim train", "Sim dim"},
	}
	for _, s := range data.Registry() {
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.Classes),
			fmt.Sprintf("%d", s.Train),
			s.Network,
			fmt.Sprintf("%d", s.BytesPerImage),
			fmt.Sprintf("%d", s.SimTrain),
			fmt.Sprintf("%d", s.FeatureDim))
	}
	return t
}

// Table4 regenerates the FPGA resource-utilization table from the
// bottom-up kernel estimator (paper: LUT 67.53, FF 23.14, BRAM 50.30,
// DSP 42.67).
func Table4() *Table {
	budget := fpga.PaperKU15P()
	usage := fpga.DefaultKernel().Estimate()
	util := usage.Utilization(budget)
	t := &Table{
		ID:     "table4",
		Title:  "FPGA resource utilization (KU15P, NeSSA selection kernel)",
		Note:   "bottom-up estimate: 512 int8 PEs, 64 distance lanes, greedy/DMA infra, on-chip buffers",
		Header: []string{"Resource", "Available", "Used", "Util (%)"},
	}
	t.AddRow("LUT", fmt.Sprintf("%d", budget.LUT), fmt.Sprintf("%d", usage.LUT), fmt.Sprintf("%.2f", util.LUT))
	t.AddRow("FF", fmt.Sprintf("%d", budget.FF), fmt.Sprintf("%d", usage.FF), fmt.Sprintf("%.2f", util.FF))
	t.AddRow("BRAM", fmt.Sprintf("%d", budget.BRAM), fmt.Sprintf("%d", usage.BRAM), fmt.Sprintf("%.2f", util.BRAM))
	t.AddRow("DSP", fmt.Sprintf("%d", budget.DSP), fmt.Sprintf("%d", usage.DSP), fmt.Sprintf("%.2f", util.DSP))
	return t
}

// Figure6 regenerates the FPGA↔SSD transfer-throughput figure: the
// effective P2P throughput of a 128-image batch for each dataset
// (paper: 1.46 GB/s for CIFAR-10 up to 2.28 GB/s for ImageNet-100).
func Figure6() *Table {
	link := smartssd.P2PLink()
	const batch = 128
	t := &Table{
		ID:     "figure6",
		Title:  "Data transfer throughput between FPGA and on-board SSD (avg of read/write)",
		Note:   "P2P link model, 128-image batches, one command per image",
		Header: []string{"Dataset", "MB/img", "Batch MB", "Throughput GB/s"},
	}
	for _, name := range []string{"MNIST", "CIFAR-10", "SVHN", "CINIC-10", "CIFAR-100", "TinyImageNet", "ImageNet-100"} {
		spec, _ := data.Lookup(name)
		bytes := int64(batch) * spec.BytesPerImage
		eff := link.EffectiveThroughput(bytes, batch)
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3f", float64(spec.BytesPerImage)/(1024*1024)),
			fmt.Sprintf("%.2f", float64(bytes)/(1024*1024)),
			fmt.Sprintf("%.2f", eff/1e9))
	}
	return t
}

// EpochTime is one Fig 4 bar decomposed into its pipeline stages.
type EpochTime struct {
	Method    string
	Selection time.Duration // selection compute (FPGA or CPU) incl. staging reads
	Transfer  time.Duration // subset/feedback movement to the GPU
	Train     time.Duration // GPU gradient computation + loading
	Total     time.Duration
}

// Figure4Rows computes the average per-epoch training time of CIFAR-10
// + ResNet-20 (50 K images, 3 KB each) under the four Fig 4 regimes.
// subsetFrac is the trained fraction for the three selection methods
// (the paper's CIFAR-10 run converges to 28 %).
func Figure4Rows(subsetFrac float64) []EpochTime {
	spec, _ := data.Lookup("CIFAR-10")
	return MethodEpochTimes(spec, subsetFrac)
}

// MethodEpochTimes decomposes the per-epoch wall time of the four
// training regimes (NeSSA, CPU CRAIG, CPU k-Centers, full data) for
// any Table 1 dataset at paper scale.
func MethodEpochTimes(spec data.Spec, subsetFrac float64) []EpochTime {
	net, _ := gpu.DatasetNetwork(spec.Name, spec.Network)
	g := gpu.V100()
	cpuHost := gpu.DefaultHostCPU()
	kernel := fpga.DefaultKernel()
	p2p := smartssd.P2PLink()
	gpuLink := smartssd.GPULink()

	n := spec.Train
	k := int(subsetFrac * float64(n))
	rec := spec.BytesPerImage
	gradDim := spec.Classes

	// Full-data epoch: load everything through the host pipeline and
	// compute every gradient.
	full := g.Epoch(n, rec, net.ForwardGFLOPs)

	computeK := time.Duration(int64(k)) * g.ComputeTimePerImage(net.ForwardGFLOPs)
	loadK := time.Duration(int64(k)) * g.LoadTimePerImage(rec, int64(n)*rec)

	// NeSSA: the FPGA scans all candidates over the P2P link, pipelined
	// with the int8 selection forward pass; stochastic-greedy selection
	// runs on the distance lanes; the chosen subset ships to the GPU as
	// decoded tensors (no host decode cost).
	selMACs := int64(net.ForwardGFLOPs * 1e9 / 2 * 0.05) // int8 proxy pass: 5% of target fwd MACs
	scan := p2p.Duration(int64(n)*rec, n)
	fwd := kernel.ForwardTime(n, selMACs)
	sel := maxDur(scan, fwd) + kernel.SelectionTime(n, k, gradDim, 0.1)
	// Subset ships in 128-image DMA bursts; the quantized feedback is
	// one small transfer.
	nessaTransfer := gpuLink.Duration(int64(k)*rec, k/128+1) + gpuLink.Duration(300*1024, 1)
	nessa := EpochTime{
		Method:    "NeSSA",
		Selection: sel,
		Transfer:  nessaTransfer,
		Train:     computeK,
	}
	nessa.Total = nessa.Selection + nessa.Transfer + nessa.Train

	// CRAIG (CPU): stage all candidate data into host DRAM, run the
	// proxy forward + stochastic greedy on the CPU, then train with the
	// regular (decode-paying) loader.
	craigSel := cpuHost.LoadTime(int64(n)*rec) +
		cpuHost.SelectionComputeTime(gpu.CRAIGSelectionFLOPs(n, k, gradDim, net.ForwardGFLOPs))
	craig := EpochTime{
		Method:    "CRAIG (CPU)",
		Selection: craigSel,
		Transfer:  0,
		Train:     computeK + loadK,
	}
	craig.Total = craig.Selection + craig.Train

	// k-Centers (CPU): same staging, but O(n·k·d) farthest-point over
	// 512-dim feature embeddings.
	kcSel := cpuHost.LoadTime(int64(n)*rec) +
		cpuHost.SelectionComputeTime(gpu.KCentersSelectionFLOPs(n, k, 512, net.ForwardGFLOPs))
	kc := EpochTime{
		Method:    "K-Centers (CPU)",
		Selection: kcSel,
		Transfer:  0,
		Train:     computeK + loadK,
	}
	kc.Total = kc.Selection + kc.Train

	fullRow := EpochTime{Method: "Full dataset", Train: full.Total, Total: full.Total}
	return []EpochTime{nessa, craig, kc, fullRow}
}

// Figure4 renders Figure4Rows at the paper's converged CIFAR-10 subset
// fraction (28 %).
func Figure4() *Table {
	t := &Table{
		ID:     "figure4",
		Title:  "Average per-epoch training time, CIFAR-10 + ResNet-20 (V100)",
		Note:   "selection/transfer/train decomposition from the calibrated device models; 28 % subset",
		Header: []string{"Method", "Selection", "Transfer", "Train", "Total", "vs Full"},
	}
	rows := Figure4Rows(0.28)
	fullTotal := rows[len(rows)-1].Total
	for _, r := range rows {
		t.AddRow(r.Method,
			r.Selection.Round(time.Millisecond).String(),
			r.Transfer.Round(time.Millisecond).String(),
			r.Train.Round(time.Millisecond).String(),
			r.Total.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", fullTotal.Seconds()/r.Total.Seconds()))
	}
	return t
}

// Section44 regenerates the §4.4 headline numbers: the 2.14× P2P
// bandwidth advantage and the per-dataset (and average) data-movement
// reduction, whose cross-dataset average the paper reports as 3.47×.
// avgSubsetFrac is the average trained fraction (movement on the host
// interconnect scales with it).
func Section44(avgSubsetFrac map[string]float64) *Table {
	t := &Table{
		ID:     "section4.4",
		Title:  "Benefits of storage-assisted training",
		Note:   "host-interconnect bytes: full = N·img; NeSSA = subset·img + quantized feedback",
		Header: []string{"Dataset", "Full GB/epoch", "NeSSA GB/epoch", "Reduction"},
	}
	dev, _ := smartssd.New()
	var sumRatio float64
	var count int
	for _, spec := range data.Registry() {
		frac, ok := avgSubsetFrac[spec.Name]
		if !ok {
			frac = 0.30
		}
		fullBytes := float64(spec.PaperBytes())
		feedback := 300.0 * 1024 // quantized target-model weights
		nessaBytes := fullBytes*frac + feedback
		ratio := fullBytes / nessaBytes
		sumRatio += ratio
		count++
		t.AddRow(spec.Name,
			fmt.Sprintf("%.2f", fullBytes/1e9),
			fmt.Sprintf("%.2f", nessaBytes/1e9),
			fmt.Sprintf("%.2fx", ratio))
	}
	t.AddRow("AVERAGE", "", "", fmt.Sprintf("%.2fx", sumRatio/float64(count)))
	t.AddRow("P2P vs host bandwidth", "", "", fmt.Sprintf("%.2fx", dev.SpeedupP2PvsHost()))
	return t
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
