package bench

import (
	"fmt"
	"time"
)

// Section43 regenerates the §4.3 headline numbers: end-to-end training
// speed-up of NeSSA versus training on the full dataset (paper average
// 5.37×) and versus the CPU-side CRAIG and k-Centers baselines (paper:
// 4.3× and 8.1×).
//
// End-to-end time = (epochs to reach the common accuracy target,
// measured on the real training runs) × (per-epoch wall time from the
// calibrated device models at paper scale). The baselines are assumed
// to need at least NeSSA's epoch count — conservative, since stale
// selection converges no faster (Table 3).
func Section43(runs []DatasetRun) *Table {
	t := &Table{
		ID:    "section4.3",
		Title: "End-to-end training speed-up (time to common accuracy target)",
		Note:  "epochs from measured convergence; per-epoch time from device models at paper scale; per-epoch column isolates the hardware win from substrate convergence",
		Header: []string{"Dataset", "Target (%)", "Full epochs", "NeSSA epochs",
			"Full epoch t", "NeSSA epoch t", "Per-epoch", "Speed-up", "vs CRAIG", "vs K-Centers"},
	}
	var sumFull, sumCraig, sumKC, sumEpoch float64
	var n int
	for _, r := range runs {
		target := minF(r.Full.FinalAcc, r.NeSSA.Metrics.FinalAcc) * 0.98
		eFull := epochsOr(r.Full.EpochsToReach(target), len(r.Full.EpochAcc))
		eNessa := epochsOr(r.NeSSA.Metrics.EpochsToReach(target), len(r.NeSSA.Metrics.EpochAcc))
		// Baseline epoch counts are measured when the baseline runs are
		// present; a baseline that never reaches the target is charged
		// its full budget (conservative).
		eCraig, eKC := eNessa, eNessa
		if r.CRAIG != nil {
			eCraig = epochsOr(r.CRAIG.Metrics.EpochsToReach(target), len(r.CRAIG.Metrics.EpochAcc))
		}
		if r.KC != nil {
			eKC = epochsOr(r.KC.Metrics.EpochsToReach(target), len(r.KC.Metrics.EpochAcc))
		}

		times := MethodEpochTimes(r.Spec, r.NeSSA.AvgSubsetFrac)
		nessaT, craigT, kcT, fullT := times[0].Total, times[1].Total, times[2].Total, times[3].Total

		nessaE2E := float64(eNessa) * nessaT.Seconds()
		speedFull := float64(eFull) * fullT.Seconds() / nessaE2E
		speedCraig := float64(eCraig) * craigT.Seconds() / nessaE2E
		speedKC := float64(eKC) * kcT.Seconds() / nessaE2E

		perEpoch := fullT.Seconds() / nessaT.Seconds()
		sumFull += speedFull
		sumCraig += speedCraig
		sumKC += speedKC
		sumEpoch += perEpoch
		n++
		t.AddRow(r.Spec.Name,
			fmt.Sprintf("%.1f", target*100),
			fmt.Sprintf("%d", eFull),
			fmt.Sprintf("%d", eNessa),
			fullT.Round(time.Millisecond).String(),
			nessaT.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", perEpoch),
			fmt.Sprintf("%.2fx", speedFull),
			fmt.Sprintf("%.2fx", speedCraig),
			fmt.Sprintf("%.2fx", speedKC))
	}
	if n > 0 {
		t.AddRow("AVERAGE", "", "", "", "", "",
			fmt.Sprintf("%.2fx", sumEpoch/float64(n)),
			fmt.Sprintf("%.2fx", sumFull/float64(n)),
			fmt.Sprintf("%.2fx", sumCraig/float64(n)),
			fmt.Sprintf("%.2fx", sumKC/float64(n)))
	}
	return t
}

// FinalSubsetFracs extracts the per-dataset converged subset fractions
// (Table 2's "Subset %" column) — the ratios the paper's §4.4 movement
// reduction uses.
func FinalSubsetFracs(runs []DatasetRun) map[string]float64 {
	m := make(map[string]float64, len(runs))
	for _, r := range runs {
		m[r.Spec.Name] = r.NeSSA.FinalSubsetFrac
	}
	return m
}

// AvgSubsetFracs extracts the per-dataset average subset fractions from
// completed runs, the input Section44 needs.
func AvgSubsetFracs(runs []DatasetRun) map[string]float64 {
	m := make(map[string]float64, len(runs))
	for _, r := range runs {
		m[r.Spec.Name] = r.NeSSA.AvgSubsetFrac
	}
	return m
}

func epochsOr(e, fallback int) int {
	if e <= 0 {
		return fallback
	}
	return e
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
