package bench

import (
	"math"
	"testing"
)

func TestNewStat(t *testing.T) {
	s := NewStat([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("std = %v, want ~2.138 (sample std)", s.Std)
	}
	if s.N != 8 {
		t.Fatalf("n = %d, want 8", s.N)
	}
}

func TestNewStatDegenerate(t *testing.T) {
	if s := NewStat(nil); s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty stat = %+v", s)
	}
	if s := NewStat([]float64{3}); s.Mean != 3 || s.Std != 0 {
		t.Fatalf("single-value stat = %+v", s)
	}
}

func TestSeedVarianceStable(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	spec, _ := lookupSpec("CIFAR-10")
	tab, err := SeedVariance(spec, true, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// The NeSSA accuracy std across seeds should be modest (a few
	// points at quick scale); a blow-up indicates seed-sensitive
	// instability in the controller.
	var mean, std float64
	if _, err := fmtSscanStat(tab.Rows[1][1], &mean, &std); err != nil {
		t.Fatalf("cannot parse %q", tab.Rows[1][1])
	}
	if mean < 50 {
		t.Errorf("NeSSA mean accuracy %v%% implausibly low", mean)
	}
	if std > 6 {
		t.Errorf("NeSSA accuracy std %v%% across seeds; controller is unstable", std)
	}
}
