// Blocked GEMM kernels: cache-blocked, register-tiled matrix products
// behind the deterministic row-band parallel dispatch.
//
// All three layouts (MatMul, MatMulTransA, MatMulTransB) share one
// structure:
//
//   - The B-side operand is packed once per call into 4-wide,
//     k-interleaved *panels* (pooled scratch, zero steady-state
//     allocation), so the innermost loop reads one sequential stream
//     instead of four strided ones.
//   - Destination rows are computed by a 4×4 micro-kernel: sixteen
//     register accumulators, four A values and four packed B values
//     loaded per k step. Each dst element owns exactly one accumulator
//     that adds products in ascending k — the same association order as
//     the naive serial loop — so outputs are bit-identical for any
//     worker count and any band split.
//   - The accumulator chain over k is never split: a strip-wise
//     partial-sum scheme would re-associate the floating-point sums
//     and break bitwise reproducibility, so cache locality comes from
//     the panel layout (sequential streams prefetch well at any k)
//     rather than k-blocking.
//   - Row tails (< 4 rows per band) use a 1×4 micro-kernel; column
//     tails (cols % 4) fall back to scalar loops with the identical
//     accumulation order.
//   - MatMul and MatMulTransA additionally carry a *sparsity-adaptive*
//     path: when the A-side operand has a meaningful fraction of exact
//     zeros — which ReLU-masked gradient matrices always do — an
//     axpy-style band that skips zero A elements beats the dense
//     micro-kernel, because every skipped element removes real
//     multiply-adds while the accumulation order of the surviving terms
//     is unchanged. The path choice depends only on the operand data,
//     never on the worker count, so results remain reproducible across
//     worker counts. (Skipping an exact-zero term can flip the sign of
//     an exact-zero output or drop a NaN/Inf propagation; training data
//     is finite and sign-of-zero is invisible to ==, so the contract
//     holds wherever it is observed.)
//
// Parallel dispatch bands over destination rows exactly as before: each
// output row is written by one band, and banding never changes what a
// band computes, only who computes it.
package tensor

import (
	"fmt"
	"sync"

	"nessa/internal/parallel"
)

const (
	// gemmMR × gemmNR is the register micro-tile. 4×4 needs 16 float32
	// accumulators — what the amd64/arm64 register files hold without
	// spilling — and cuts A/B load traffic 4× versus the naive loop.
	gemmMR = 4
	gemmNR = 4
)

// gemmParallelFlops is the approximate multiply-add count below which
// a GEMM runs serially: small products (a few thousand flops) finish
// faster than the goroutine fan-out costs. Above it, the product is
// banded over destination rows on the shared worker pool. Each output
// element accumulates in the same ascending-k order as the serial
// loop, so results are bit-identical for any worker count.
const gemmParallelFlops = 64 * 1024

// gemmScratch pools panel-packing buffers so steady-state GEMM calls
// allocate nothing.
var gemmScratch sync.Pool

//nessa:hotpath
//nessa:scratch-ok ownership transfer: every caller returns the buffer with gemmScratch.Put before it exits
func gemmBuf(n int) *[]float32 {
	if v := gemmScratch.Get(); v != nil {
		s := v.(*[]float32)
		if cap(*s) >= n {
			*s = (*s)[:n]
			return s
		}
	}
	//nessa:alloc-ok pool miss: first call at this size allocates; steady state reuses pooled buffers
	s := make([]float32, n)
	return &s
}

// gemmSerial reports whether a product with the given inner dimension
// and output shape is too small to benefit from the pool.
//
//nessa:hotpath
func gemmSerial(rows, inner, cols int) bool {
	if parallel.Default().Workers() <= 1 {
		return true
	}
	return rows*inner*cols < gemmParallelFlops
}

// gemmSparseA reports whether at least 1/8 of a's elements are exact
// zeros, the break-even point past which the skip bands beat the dense
// micro-kernels. The counting pass is O(|a|) reads against O(|a|·m)
// multiply-adds saved, and the verdict depends only on the data, so the
// same inputs take the same path at every worker count.
//
//nessa:hotpath
func gemmSparseA(a *Matrix) bool {
	zeros := 0
	for _, v := range a.Data {
		if v == 0 {
			zeros++
		}
	}
	return zeros*8 >= len(a.Data)
}

// MatMul computes dst = a·b where a is (n×k) and b is (k×m).
// dst must be n×m and is overwritten; it must not alias a or b.
// Large products are banded over dst rows on the shared worker pool.
//
//nessa:hotpath
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch: (%dx%d)·(%dx%d) -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	if n == 0 || m == 0 {
		return
	}
	if k > 0 && gemmSparseA(a) {
		if gemmSerial(n, k, m) {
			matMulSkipBand(dst, a, b, 0, n)
		} else {
			//nessa:alloc-ok one dispatch closure per call, amortized over the whole banded product
			parallel.Default().For(n, 0, func(lo, hi int) {
				matMulSkipBand(dst, a, b, lo, hi)
			})
		}
		return
	}
	np := m / gemmNR
	var packed []float32
	var buf *[]float32
	if np > 0 && k > 0 {
		buf = gemmBuf(np * gemmNR * k)
		packed = *buf
		packColPanels(packed, b, np)
	}
	if gemmSerial(n, k, m) {
		matMulBand(dst, a, b, packed, 0, n)
	} else {
		//nessa:alloc-ok one dispatch closure per call, amortized over the whole banded product
		parallel.Default().For(n, 0, func(lo, hi int) {
			matMulBand(dst, a, b, packed, lo, hi)
		})
	}
	if buf != nil {
		gemmScratch.Put(buf)
	}
}

// MatMulTransB computes dst = a·bᵀ where a is (n×k) and b is (m×k).
// dst must be n×m and must not alias a or b. This is the layout used
// for Dense layers whose weights are stored (out×in).
//
//nessa:hotpath
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch: (%dx%d)·(%dx%d)ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Rows
	if n == 0 || m == 0 {
		return
	}
	np := m / gemmNR
	var packed []float32
	var buf *[]float32
	if np > 0 && k > 0 {
		buf = gemmBuf(np * gemmNR * k)
		packed = *buf
		packRowPanels(packed, b, np)
	}
	if gemmSerial(n, k, m) {
		matMulTransBBand(dst, a, b, packed, 0, n)
	} else {
		//nessa:alloc-ok one dispatch closure per call, amortized over the whole banded product
		parallel.Default().For(n, 0, func(lo, hi int) {
			matMulTransBBand(dst, a, b, packed, lo, hi)
		})
	}
	if buf != nil {
		gemmScratch.Put(buf)
	}
}

// MatMulTransA computes dst = aᵀ·b where a is (k×n) and b is (k×m).
// dst must be n×m and must not alias a or b. Used for weight
// gradients: dW = dOutᵀ·X. Bands cover dst rows (columns of a); within
// a band every element accumulates in ascending k, matching the serial
// order exactly.
//
//nessa:hotpath
func MatMulTransA(dst, a, b *Matrix) {
	matMulTransAInto(dst, a, b, false)
}

// MatMulTransAAcc computes dst += aᵀ·b: the accumulating form backprop
// uses to add weight gradients directly into a freshly zeroed gradient
// tensor with no temporary and no extra pass. When dst is zero the
// result is bit-identical to MatMulTransA. For nonzero dst the terms
// still arrive in ascending k, but whether they are folded into dst
// one by one or summed first and added once differs between the tiled
// and skip paths — path choice depends only on operand data, so the
// output remains deterministic and worker-count invariant either way.
//
//nessa:hotpath
func MatMulTransAAcc(dst, a, b *Matrix) {
	matMulTransAInto(dst, a, b, true)
}

//nessa:hotpath
func matMulTransAInto(dst, a, b *Matrix, acc bool) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch: (%dx%d)ᵀ·(%dx%d) -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n, k, m := a.Cols, a.Rows, b.Cols
	if n == 0 || m == 0 {
		return
	}
	if k > 0 && gemmSparseA(a) {
		if gemmSerial(n, k, m) {
			matMulTransASkipBand(dst, a, b, acc, 0, n)
		} else {
			//nessa:alloc-ok one dispatch closure per call, amortized over the whole banded product
			parallel.Default().For(n, 0, func(lo, hi int) {
				matMulTransASkipBand(dst, a, b, acc, lo, hi)
			})
		}
		return
	}
	np := m / gemmNR
	var packed []float32
	var buf *[]float32
	if np > 0 && k > 0 {
		buf = gemmBuf(np * gemmNR * k)
		packed = *buf
		packColPanels(packed, b, np)
	}
	if gemmSerial(n, k, m) {
		matMulTransABand(dst, a, b, packed, acc, 0, n)
	} else {
		//nessa:alloc-ok one dispatch closure per call, amortized over the whole banded product
		parallel.Default().For(n, 0, func(lo, hi int) {
			matMulTransABand(dst, a, b, packed, acc, lo, hi)
		})
	}
	if buf != nil {
		gemmScratch.Put(buf)
	}
}

// packColPanels packs b's first np·4 columns into 4-wide k-interleaved
// panels: out[(jp·k + kk)·4 + c] = b[kk][jp·4+c]. Panels are disjoint,
// so packing parallelizes trivially for large operands.
//
//nessa:hotpath
func packColPanels(out []float32, b *Matrix, np int) {
	if np*b.Rows*gemmNR >= gemmParallelFlops && parallel.Default().Workers() > 1 {
		//nessa:alloc-ok one dispatch closure per call, amortized over the whole packing fan-out
		parallel.Default().For(np, 1, func(lo, hi int) {
			packColRange(out, b, lo, hi)
		})
		return
	}
	packColRange(out, b, 0, np)
}

//nessa:hotpath
func packColRange(out []float32, b *Matrix, lo, hi int) {
	k := b.Rows
	for jp := lo; jp < hi; jp++ {
		j0 := jp * gemmNR
		o := jp * k * gemmNR
		for kk := 0; kk < k; kk++ {
			row := b.Row(kk)[j0 : j0+gemmNR]
			out[o] = row[0]
			out[o+1] = row[1]
			out[o+2] = row[2]
			out[o+3] = row[3]
			o += gemmNR
		}
	}
}

// packRowPanels packs b's first np·4 rows (the columns of bᵀ) into the
// same panel layout: out[(jp·k + kk)·4 + c] = b[jp·4+c][kk].
//
//nessa:hotpath
func packRowPanels(out []float32, b *Matrix, np int) {
	if np*b.Cols*gemmNR >= gemmParallelFlops && parallel.Default().Workers() > 1 {
		//nessa:alloc-ok one dispatch closure per call, amortized over the whole packing fan-out
		parallel.Default().For(np, 1, func(lo, hi int) {
			packRowRange(out, b, lo, hi)
		})
		return
	}
	packRowRange(out, b, 0, np)
}

//nessa:hotpath
func packRowRange(out []float32, b *Matrix, lo, hi int) {
	k := b.Cols
	for jp := lo; jp < hi; jp++ {
		j0 := jp * gemmNR
		r0, r1, r2, r3 := b.Row(j0), b.Row(j0+1), b.Row(j0+2), b.Row(j0+3)
		o := jp * k * gemmNR
		for kk := 0; kk < k; kk++ {
			out[o] = r0[kk]
			out[o+1] = r1[kk]
			out[o+2] = r2[kk]
			out[o+3] = r3[kk]
			o += gemmNR
		}
	}
}

// packAPanel packs gemmMR columns of a (starting at i0) over rows
// [k0,k1) into a 4-interleaved strip: pa[(kk−k0)·4 + r] = a[kk][i0+r].
//
//nessa:hotpath
func packAPanel(pa []float32, a *Matrix, i0, k0, k1 int) {
	o := 0
	for kk := k0; kk < k1; kk++ {
		row := a.Row(kk)[i0 : i0+gemmMR]
		pa[o] = row[0]
		pa[o+1] = row[1]
		pa[o+2] = row[2]
		pa[o+3] = row[3]
		o += gemmNR
	}
}

// zeroRows clears dst rows [lo,hi).
//
//nessa:hotpath
func zeroRows(dst *Matrix, lo, hi int) {
	z := dst.Data[lo*dst.Cols : hi*dst.Cols]
	for i := range z {
		z[i] = 0
	}
}

// gemmPanelCore computes the paneled columns [0, np·4) of dst rows
// [lo,hi) for a dot-product GEMM whose A rows are natural matrix rows.
// dst rows must be pre-zeroed; the micro-kernels accumulate.
//
//nessa:hotpath
func gemmPanelCore(dst, a *Matrix, packed []float32, np, lo, hi int) {
	k := a.Cols
	for jp := 0; jp < np; jp++ {
		panel := packed[jp*k*gemmNR : (jp+1)*k*gemmNR]
		j0 := jp * gemmNR
		i := lo
		for ; i+gemmMR <= hi; i += gemmMR {
			gemmMicro4x4(dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3), j0,
				a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3), panel)
		}
		for ; i < hi; i++ {
			gemmMicro1x4(dst.Row(i), j0, a.Row(i), panel)
		}
	}
}

// matMulBand computes dst rows [lo,hi) of dst = a·b.
//
//nessa:hotpath
func matMulBand(dst, a, b *Matrix, packed []float32, lo, hi int) {
	k, m := a.Cols, b.Cols
	np := m / gemmNR
	zeroRows(dst, lo, hi)
	gemmPanelCore(dst, a, packed, np, lo, hi)
	for j := np * gemmNR; j < m; j++ {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			var sum float32
			for kk := 0; kk < k; kk++ {
				// Round each product before the add so the compiler
				// cannot fuse it into an FMA (bit-identity contract).
				t := arow[kk] * b.Data[kk*m+j]
				sum += t
			}
			dst.Row(i)[j] = sum
		}
	}
}

// matMulTransBBand computes dst rows [lo,hi) of dst = a·bᵀ.
//
//nessa:hotpath
func matMulTransBBand(dst, a, b *Matrix, packed []float32, lo, hi int) {
	m := b.Rows
	np := m / gemmNR
	zeroRows(dst, lo, hi)
	gemmPanelCore(dst, a, packed, np, lo, hi)
	for j := np * gemmNR; j < m; j++ {
		brow := b.Row(j)
		for i := lo; i < hi; i++ {
			dst.Row(i)[j] = Dot(a.Row(i), brow)
		}
	}
}

// matMulSkipBand computes dst rows [lo,hi) of dst = a·b for a sparse
// A operand, skipping zero A elements. b rows are read contiguously
// and each dst element accumulates in ascending k — the identical
// term order as the dense path, minus the zero products.
//
//nessa:hotpath
func matMulSkipBand(dst, a, b *Matrix, lo, hi int) {
	k := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			axpyRow(drow, b.Row(kk), av)
		}
	}
}

// matMulTransASkipBand computes dst rows [lo,hi) of dst = aᵀ·b (or
// dst += aᵀ·b when acc) for a sparse A operand — the ReLU-masked delta
// of backprop, where typically half the elements are exact zeros. The
// k-outer loop reads a and b rows sequentially; dst rows of the band
// stay cache-resident. Every dst element accumulates in ascending k.
//
//nessa:hotpath
func matMulTransASkipBand(dst, a, b *Matrix, acc bool, lo, hi int) {
	k := a.Rows
	if !acc {
		zeroRows(dst, lo, hi)
	}
	for kk := 0; kk < k; kk++ {
		arow := a.Row(kk)
		brow := b.Row(kk)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpyRow(dst.Row(i), brow, av)
		}
	}
}

// matMulTransABand computes dst rows [lo,hi) of dst = aᵀ·b (or
// dst += aᵀ·b when acc). dst rows are columns of a, so the A side is
// packed per 4-row tile into a pooled strip buffer.
//
//nessa:hotpath
func matMulTransABand(dst, a, b *Matrix, packed []float32, acc bool, lo, hi int) {
	k, m := a.Rows, b.Cols
	np := m / gemmNR
	if !acc {
		zeroRows(dst, lo, hi)
	}
	iTileEnd := lo + (hi-lo)/gemmMR*gemmMR

	if np > 0 && iTileEnd > lo {
		buf := gemmBuf(gemmMR * k)
		pa := *buf
		for i := lo; i < iTileEnd; i += gemmMR {
			packAPanel(pa, a, i, 0, k)
			for jp := 0; jp < np; jp++ {
				panel := packed[jp*k*gemmNR : (jp+1)*k*gemmNR]
				gemmMicroP4x4(dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3),
					jp*gemmNR, pa, panel)
			}
		}
		gemmScratch.Put(buf)
	}
	// Column tail for the tiled rows. += so the acc form composes;
	// the non-acc form pre-zeroed the band.
	for j := np * gemmNR; j < m; j++ {
		for i := lo; i < iTileEnd; i++ {
			var sum float32
			for kk := 0; kk < k; kk++ {
				// Round each product before the add (no FMA).
				t := a.Data[kk*a.Cols+i] * b.Data[kk*m+j]
				sum += t
			}
			dst.Row(i)[j] += sum
		}
	}
	// Row tail: full width, vectorized axpy per k step.
	for i := iTileEnd; i < hi; i++ {
		drow := dst.Row(i)
		for kk := 0; kk < k; kk++ {
			axpyRow(drow, b.Row(kk), a.Data[kk*a.Cols+i])
		}
	}
}
