// Blocked GEMM kernels: cache-blocked, register-tiled matrix products
// behind the deterministic row-band parallel dispatch.
//
// All three layouts (MatMul, MatMulTransA, MatMulTransB) share one
// structure:
//
//   - The B-side operand is packed once per call into k-interleaved
//     *panels* (persistent pooled scratch, zero steady-state
//     allocation), so the innermost loop reads one sequential stream
//     instead of several strided ones. Panels are 4-wide on the
//     bit-exact tier and 8-wide on the AVX2/FMA fast tier.
//   - Destination rows are computed by a register micro-kernel (4×4
//     bit-exact, 4×8 fast tier). Each dst element owns exactly one
//     accumulator that adds products in ascending k — the same
//     association order as the naive serial loop — so bit-exact
//     outputs are identical for any worker count and any band split.
//   - On the bit-exact tier the accumulator chain over k is never
//     split: a strip-wise partial-sum scheme would re-associate the
//     floating-point sums and break bitwise reproducibility, so cache
//     locality comes from the panel layout (sequential streams
//     prefetch well at any k) rather than k-blocking. The fast tier is
//     explicitly allowed to fuse multiply-adds (FMA) and to block over
//     k (the KC tuning knob) — its results differ from the bit-exact
//     tier within a documented tolerance but remain deterministic and
//     worker-count invariant, because the association order is still
//     fixed by the data layout and tuning record alone.
//   - Row tails (< 4 rows per band) use a 1-row micro-kernel; column
//     tails (cols % NR) fall back to scalar loops with the identical
//     accumulation order.
//   - MatMul and MatMulTransA additionally carry a *sparsity-adaptive*
//     path: when the A-side operand has a meaningful fraction of exact
//     zeros — which ReLU-masked gradient matrices always do — an
//     axpy-style band that skips zero A elements beats the dense
//     micro-kernel, because every skipped element removes real
//     multiply-adds while the accumulation order of the surviving terms
//     is unchanged. The path choice depends only on the operand data,
//     never on the worker count, so results remain reproducible across
//     worker counts. (Skipping an exact-zero term can flip the sign of
//     an exact-zero output or drop a NaN/Inf propagation; training data
//     is finite and sign-of-zero is invisible to ==, so the contract
//     holds wherever it is observed.)
//
// # Zero-allocation dispatch
//
// Parallel dispatch bands over destination rows: each output row is
// written by one band, and banding never changes what a band computes,
// only who computes it. A dispatch allocates nothing in steady state:
// the per-call band descriptors (gemmTask) come from a free list and
// carry closures pre-bound at construction, B panels come from a
// persistent buffer free list, and the per-band A strips of
// MatMulTransA live in a parallel.WorkerLocal arena keyed by the
// worker ID the pool hands each band.
package tensor

import (
	"fmt"
	"sync"

	"nessa/internal/parallel"
)

const (
	// gemmMR × gemmNR is the bit-exact register micro-tile. 4×4 needs
	// 16 float32 accumulators — what the amd64/arm64 register files
	// hold without spilling — and cuts A/B load traffic 4× versus the
	// naive loop.
	gemmMR = 4
	gemmNR = 4
	// gemmNRFast is the fast-tier panel width: one 8-lane YMM vector
	// per dst row in the AVX2/FMA micro-kernels.
	gemmNRFast = 8
)

// gemmParallelFlops is the approximate multiply-add count below which
// a GEMM runs serially: small products (a few thousand flops) finish
// faster than the goroutine fan-out costs. Above it, the product is
// banded over destination rows on the shared worker pool. Each output
// element accumulates in the same ascending-k order as the serial
// loop, so results are bit-identical for any worker count.
const gemmParallelFlops = 64 * 1024

// gemmNRActive reports the panel width of the active kernel tier.
//
//nessa:hotpath
func gemmNRActive() int {
	if fastKernels {
		return gemmNRFast
	}
	return gemmNR
}

// ---------------------------------------------------------------------
// Persistent scratch: panel buffers, strip arenas, task descriptors
// ---------------------------------------------------------------------

// panelFree recycles B-panel packing buffers. Unlike a sync.Pool it is
// never drained by the garbage collector, so once every holder has
// grown to the largest panel a workload packs, steady-state GEMM calls
// allocate nothing at all.
var panelFree struct {
	mu   sync.Mutex
	list []*[]float32
}

//nessa:hotpath
//nessa:scratch-ok ownership transfer: every caller returns the buffer with putPanel before it exits
func getPanel(n int) *[]float32 {
	pf := &panelFree
	pf.mu.Lock()
	var s *[]float32
	if ln := len(pf.list); ln > 0 {
		s = pf.list[ln-1]
		pf.list = pf.list[:ln-1]
	}
	pf.mu.Unlock()
	if s == nil {
		//nessa:alloc-ok free-list miss: first concurrent holder at this depth allocates; steady state reuses
		s = new([]float32)
	}
	if cap(*s) < n {
		//nessa:alloc-ok grow-once: a holder that has seen the workload's largest panel never grows again
		*s = make([]float32, n)
	}
	*s = (*s)[:n]
	return s
}

//nessa:hotpath
func putPanel(s *[]float32) {
	pf := &panelFree
	pf.mu.Lock()
	//nessa:alloc-ok amortized: the list caps at the peak concurrent holder count and never grows past it
	pf.list = append(pf.list, s)
	pf.mu.Unlock()
}

// stripArena holds the per-worker A-side packing strips of
// MatMulTransA: each band packs 4 A columns at a time into its own
// worker's strip, so concurrent bands never share a buffer and a warm
// worker never allocates.
var stripArena = parallel.NewWorkerLocal[[]float32](nil)

//nessa:hotpath
//nessa:scratch-ok bounded view: the strip is consumed inside the caller's band and never outlives the dispatch
func workerStrip(w, n int) []float32 {
	s := stripArena.Get(w)
	if cap(*s) < n {
		//nessa:alloc-ok grow-once per worker slot; steady-state bands reuse the strip
		*s = make([]float32, n)
	}
	return (*s)[:n]
}

// gemmTask is a pooled band-dispatch descriptor: the operands of one
// GEMM call plus closures pre-bound to the descriptor at construction,
// so handing the pool a band body never allocates a per-call closure.
type gemmTask struct {
	kind   uint8
	acc    bool
	dst    *Matrix
	a      *Matrix
	b      *Matrix
	packed []float32

	run     func(w, lo, hi int) // bound once to (*gemmTask).band
	runPack func(lo, hi int)    // bound once to (*gemmTask).pack
}

const (
	tkMatMul uint8 = iota
	tkMatMulSkip
	tkTransB
	tkTransA
	tkTransASkip
	tkPackCol
	tkPackRow
)

var gemmTaskFree struct {
	mu   sync.Mutex
	list []*gemmTask
}

//nessa:hotpath
//nessa:scratch-ok ownership transfer: every caller returns the descriptor with putGemmTask before it exits
func getGemmTask(kind uint8, dst, a, b *Matrix, packed []float32, acc bool) *gemmTask {
	gf := &gemmTaskFree
	gf.mu.Lock()
	var t *gemmTask
	if ln := len(gf.list); ln > 0 {
		t = gf.list[ln-1]
		gf.list = gf.list[:ln-1]
	}
	gf.mu.Unlock()
	if t == nil {
		//nessa:alloc-ok free-list miss: descriptor and its two bound closures are built once and recycled forever
		t = &gemmTask{}
		//nessa:alloc-ok method values allocate once per descriptor lifetime and are recycled with it
		t.run, t.runPack = t.band, t.pack
	}
	t.kind, t.dst, t.a, t.b, t.packed, t.acc = kind, dst, a, b, packed, acc
	return t
}

//nessa:hotpath
func putGemmTask(t *gemmTask) {
	t.dst, t.a, t.b, t.packed = nil, nil, nil, nil
	gf := &gemmTaskFree
	gf.mu.Lock()
	//nessa:alloc-ok amortized: the list caps at the peak concurrent descriptor count and never grows past it
	gf.list = append(gf.list, t)
	gf.mu.Unlock()
}

// band runs one row band of the descriptor's GEMM. w is the worker ID
// owning this band's scratch strips.
//
//nessa:hotpath
func (t *gemmTask) band(w, lo, hi int) {
	switch t.kind {
	case tkMatMul:
		matMulBand(t.dst, t.a, t.b, t.packed, lo, hi)
	case tkMatMulSkip:
		matMulSkipBand(t.dst, t.a, t.b, lo, hi)
	case tkTransB:
		matMulTransBBand(t.dst, t.a, t.b, t.packed, lo, hi)
	case tkTransA:
		matMulTransABand(t.dst, t.a, t.b, t.packed, t.acc, w, lo, hi)
	case tkTransASkip:
		matMulTransASkipBand(t.dst, t.a, t.b, t.acc, lo, hi)
	}
}

// pack runs one panel range of the descriptor's packing fan-out.
//
//nessa:hotpath
func (t *gemmTask) pack(lo, hi int) {
	switch t.kind {
	case tkPackCol:
		packColRange(t.packed, t.b, lo, hi)
	case tkPackRow:
		packRowRange(t.packed, t.b, lo, hi)
	}
}

// gemmGrain resolves the row-band width of a dispatch: the whole range
// when the product is too small to parallelize (the pool then runs one
// band inline on the calling goroutine), the tuned MC when set, or 0
// for the pool's automatic banding.
//
//nessa:hotpath
func gemmGrain(rows, inner, cols int) int {
	if gemmSerial(rows, inner, cols) {
		return rows
	}
	return tuning.MC
}

// gemmSerial reports whether a product with the given inner dimension
// and output shape is too small to benefit from the pool.
//
//nessa:hotpath
func gemmSerial(rows, inner, cols int) bool {
	if parallel.Default().Workers() <= 1 {
		return true
	}
	return rows*inner*cols < gemmParallelFlops
}

// gemmSparseA reports whether at least 1/8 of a's elements are exact
// zeros, the break-even point past which the skip bands beat the dense
// micro-kernels. The counting pass is O(|a|) reads against O(|a|·m)
// multiply-adds saved, and the verdict depends only on the data, so the
// same inputs take the same path at every worker count.
//
//nessa:hotpath
func gemmSparseA(a *Matrix) bool {
	zeros := 0
	for _, v := range a.Data {
		if v == 0 {
			zeros++
		}
	}
	return zeros*8 >= len(a.Data)
}

// MatMul computes dst = a·b where a is (n×k) and b is (k×m).
// dst must be n×m and is overwritten; it must not alias a or b.
// Large products are banded over dst rows on the shared worker pool.
//
//nessa:hotpath
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch: (%dx%d)·(%dx%d) -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	if n == 0 || m == 0 {
		return
	}
	if k > 0 && gemmSparseA(a) {
		t := getGemmTask(tkMatMulSkip, dst, a, b, nil, false)
		parallel.Default().ForW(n, gemmGrain(n, k, m), t.run)
		putGemmTask(t)
		return
	}
	nr := gemmNRActive()
	np := m / nr
	var packed []float32
	var buf *[]float32
	if np > 0 && k > 0 {
		buf = getPanel(np * nr * k)
		packed = *buf
		packColPanels(packed, b, np)
	}
	t := getGemmTask(tkMatMul, dst, a, b, packed, false)
	parallel.Default().ForW(n, gemmGrain(n, k, m), t.run)
	putGemmTask(t)
	if buf != nil {
		putPanel(buf)
	}
}

// MatMulTransB computes dst = a·bᵀ where a is (n×k) and b is (m×k).
// dst must be n×m and must not alias a or b. This is the layout used
// for Dense layers whose weights are stored (out×in).
//
//nessa:hotpath
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch: (%dx%d)·(%dx%d)ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Rows
	if n == 0 || m == 0 {
		return
	}
	nr := gemmNRActive()
	np := m / nr
	var packed []float32
	var buf *[]float32
	if np > 0 && k > 0 {
		buf = getPanel(np * nr * k)
		packed = *buf
		packRowPanels(packed, b, np)
	}
	t := getGemmTask(tkTransB, dst, a, b, packed, false)
	parallel.Default().ForW(n, gemmGrain(n, k, m), t.run)
	putGemmTask(t)
	if buf != nil {
		putPanel(buf)
	}
}

// MatMulTransA computes dst = aᵀ·b where a is (k×n) and b is (k×m).
// dst must be n×m and must not alias a or b. Used for weight
// gradients: dW = dOutᵀ·X. Bands cover dst rows (columns of a); within
// a band every element accumulates in ascending k, matching the serial
// order exactly.
//
//nessa:hotpath
func MatMulTransA(dst, a, b *Matrix) {
	matMulTransAInto(dst, a, b, false)
}

// MatMulTransAAcc computes dst += aᵀ·b: the accumulating form backprop
// uses to add weight gradients directly into a freshly zeroed gradient
// tensor with no temporary and no extra pass. When dst is zero the
// result is bit-identical to MatMulTransA. For nonzero dst the terms
// still arrive in ascending k, but whether they are folded into dst
// one by one or summed first and added once differs between the tiled
// and skip paths — path choice depends only on operand data, so the
// output remains deterministic and worker-count invariant either way.
//
//nessa:hotpath
func MatMulTransAAcc(dst, a, b *Matrix) {
	matMulTransAInto(dst, a, b, true)
}

//nessa:hotpath
func matMulTransAInto(dst, a, b *Matrix, acc bool) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch: (%dx%d)ᵀ·(%dx%d) -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n, k, m := a.Cols, a.Rows, b.Cols
	if n == 0 || m == 0 {
		return
	}
	if k > 0 && gemmSparseA(a) {
		t := getGemmTask(tkTransASkip, dst, a, b, nil, acc)
		parallel.Default().ForW(n, gemmGrain(n, k, m), t.run)
		putGemmTask(t)
		return
	}
	nr := gemmNRActive()
	np := m / nr
	var packed []float32
	var buf *[]float32
	if np > 0 && k > 0 {
		buf = getPanel(np * nr * k)
		packed = *buf
		packColPanels(packed, b, np)
	}
	t := getGemmTask(tkTransA, dst, a, b, packed, acc)
	parallel.Default().ForW(n, gemmGrain(n, k, m), t.run)
	putGemmTask(t)
	if buf != nil {
		putPanel(buf)
	}
}

// packColPanels packs b's first np·NR columns into NR-wide
// k-interleaved panels: out[(jp·k + kk)·NR + c] = b[kk][jp·NR+c].
// Panels are disjoint, so packing parallelizes trivially for large
// operands.
//
//nessa:hotpath
func packColPanels(out []float32, b *Matrix, np int) {
	if np*b.Rows*gemmNRActive() >= gemmParallelFlops && parallel.Default().Workers() > 1 {
		t := getGemmTask(tkPackCol, nil, nil, b, out, false)
		parallel.Default().For(np, 1, t.runPack)
		putGemmTask(t)
		return
	}
	packColRange(out, b, 0, np)
}

//nessa:hotpath
func packColRange(out []float32, b *Matrix, lo, hi int) {
	if fastKernels {
		packColRange8(out, b, lo, hi)
		return
	}
	k := b.Rows
	for jp := lo; jp < hi; jp++ {
		j0 := jp * gemmNR
		o := jp * k * gemmNR
		for kk := 0; kk < k; kk++ {
			row := b.Row(kk)[j0 : j0+gemmNR]
			// Constant-length destination window: one slice check,
			// zero per-element index checks.
			d := out[o:][:gemmNR]
			d[0] = row[0]
			d[1] = row[1]
			d[2] = row[2]
			d[3] = row[3]
			o += gemmNR
		}
	}
}

// packRowPanels packs b's first np·NR rows (the columns of bᵀ) into
// the same panel layout: out[(jp·k + kk)·NR + c] = b[jp·NR+c][kk].
//
//nessa:hotpath
func packRowPanels(out []float32, b *Matrix, np int) {
	if np*b.Cols*gemmNRActive() >= gemmParallelFlops && parallel.Default().Workers() > 1 {
		t := getGemmTask(tkPackRow, nil, nil, b, out, false)
		parallel.Default().For(np, 1, t.runPack)
		putGemmTask(t)
		return
	}
	packRowRange(out, b, 0, np)
}

//nessa:hotpath
func packRowRange(out []float32, b *Matrix, lo, hi int) {
	if fastKernels {
		packRowRange8(out, b, lo, hi)
		return
	}
	k := b.Cols
	for jp := lo; jp < hi; jp++ {
		j0 := jp * gemmNR
		// The [:k] re-slices pin each row's length to the loop bound
		// and the [:gemmNR] window pins the destination's, so every
		// check below is discharged by the prover.
		r0, r1, r2, r3 := b.Row(j0)[:k], b.Row(j0 + 1)[:k], b.Row(j0 + 2)[:k], b.Row(j0 + 3)[:k]
		o := jp * k * gemmNR
		for kk := 0; kk < k; kk++ {
			d := out[o:][:gemmNR]
			d[0] = r0[kk]
			d[1] = r1[kk]
			d[2] = r2[kk]
			d[3] = r3[kk]
			o += gemmNR
		}
	}
}

// packAPanel packs gemmMR columns of a (starting at i0) over rows
// [k0,k1) into a 4-interleaved strip: pa[(kk−k0)·4 + r] = a[kk][i0+r].
//
//nessa:hotpath
func packAPanel(pa []float32, a *Matrix, i0, k0, k1 int) {
	o := 0
	for kk := k0; kk < k1; kk++ {
		row := a.Row(kk)[i0 : i0+gemmMR]
		d := pa[o:][:gemmMR]
		d[0] = row[0]
		d[1] = row[1]
		d[2] = row[2]
		d[3] = row[3]
		o += gemmMR
	}
}

// zeroRows clears dst rows [lo,hi).
//
//nessa:hotpath
//nessa:inline
func zeroRows(dst *Matrix, lo, hi int) {
	z := dst.Data[lo*dst.Cols : hi*dst.Cols]
	for i := range z {
		z[i] = 0
	}
}

// gemmPanelCore computes the paneled columns [0, np·NR) of dst rows
// [lo,hi) for a dot-product GEMM whose A rows are natural matrix rows.
// dst rows must be pre-zeroed; the micro-kernels accumulate.
//
//nessa:hotpath
func gemmPanelCore(dst, a *Matrix, packed []float32, np, lo, hi int) {
	if fastKernels {
		gemmPanelCoreFast(dst, a, packed, np, lo, hi)
		return
	}
	k := a.Cols
	for jp := 0; jp < np; jp++ {
		panel := packed[jp*k*gemmNR : (jp+1)*k*gemmNR]
		j0 := jp * gemmNR
		i := lo
		for ; i+gemmMR <= hi; i += gemmMR {
			gemmMicro4x4(dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3), j0,
				a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3), panel)
		}
		for ; i < hi; i++ {
			gemmMicro1x4(dst.Row(i), j0, a.Row(i), panel)
		}
	}
}

// matMulBand computes dst rows [lo,hi) of dst = a·b.
//
//nessa:hotpath
func matMulBand(dst, a, b *Matrix, packed []float32, lo, hi int) {
	k, m := a.Cols, b.Cols
	np := m / gemmNRActive()
	zeroRows(dst, lo, hi)
	gemmPanelCore(dst, a, packed, np, lo, hi)
	for j := np * gemmNRActive(); j < m; j++ {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			var sum float32
			for kk := 0; kk < k; kk++ {
				// Round each product before the add so the compiler
				// cannot fuse it into an FMA (bit-identity contract).
				//nessa:bce-ok column tail (< NR columns): the stride-m walk down b.Data defeats the prover
				t := arow[kk] * b.Data[kk*m+j]
				sum += t
			}
			dst.Row(i)[j] = sum
		}
	}
}

// matMulTransBBand computes dst rows [lo,hi) of dst = a·bᵀ.
//
//nessa:hotpath
func matMulTransBBand(dst, a, b *Matrix, packed []float32, lo, hi int) {
	m := b.Rows
	np := m / gemmNRActive()
	zeroRows(dst, lo, hi)
	gemmPanelCore(dst, a, packed, np, lo, hi)
	for j := np * gemmNRActive(); j < m; j++ {
		brow := b.Row(j)
		for i := lo; i < hi; i++ {
			//nessa:bce-ok one store per k-length Dot; j is a column-tail index the prover cannot bound
			dst.Row(i)[j] = Dot(a.Row(i), brow)
		}
	}
}

// matMulSkipBand computes dst rows [lo,hi) of dst = a·b for a sparse
// A operand, skipping zero A elements. b rows are read contiguously
// and each dst element accumulates in ascending k — the identical
// term order as the dense path, minus the zero products.
//
//nessa:hotpath
func matMulSkipBand(dst, a, b *Matrix, lo, hi int) {
	k := a.Cols
	for i := lo; i < hi; i++ {
		// [:k] ties the row length to the kk loop bound for the prover.
		arow := a.Row(i)[:k]
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			axpyRow(drow, b.Row(kk), av)
		}
	}
}

// matMulTransASkipBand computes dst rows [lo,hi) of dst = aᵀ·b (or
// dst += aᵀ·b when acc) for a sparse A operand — the ReLU-masked delta
// of backprop, where typically half the elements are exact zeros. The
// k-outer loop reads a and b rows sequentially; dst rows of the band
// stay cache-resident. Every dst element accumulates in ascending k.
//
//nessa:hotpath
func matMulTransASkipBand(dst, a, b *Matrix, acc bool, lo, hi int) {
	k := a.Rows
	if !acc {
		zeroRows(dst, lo, hi)
	}
	for kk := 0; kk < k; kk++ {
		brow := b.Row(kk)
		// Ranging over the band's window of the row keeps the sparse
		// scan check-free where an indexed arow[i] read would not be.
		for io, av := range a.Row(kk)[lo:hi] {
			if av == 0 {
				continue
			}
			axpyRow(dst.Row(lo+io), brow, av)
		}
	}
}

// matMulTransABand computes dst rows [lo,hi) of dst = aᵀ·b (or
// dst += aᵀ·b when acc). dst rows are columns of a, so the A side is
// packed per 4-row tile into the band worker's strip arena.
//
//nessa:hotpath
func matMulTransABand(dst, a, b *Matrix, packed []float32, acc bool, w, lo, hi int) {
	nr := gemmNRActive()
	k, m := a.Rows, b.Cols
	np := m / nr
	if !acc {
		zeroRows(dst, lo, hi)
	}
	iTileEnd := lo + (hi-lo)/gemmMR*gemmMR

	if np > 0 && iTileEnd > lo {
		pa := workerStrip(w, gemmMR*k)
		if fastKernels {
			transACoreFast(dst, a, packed, pa, np, lo, iTileEnd)
		} else {
			for i := lo; i < iTileEnd; i += gemmMR {
				packAPanel(pa, a, i, 0, k)
				for jp := 0; jp < np; jp++ {
					panel := packed[jp*k*gemmNR : (jp+1)*k*gemmNR]
					gemmMicroP4x4(dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3),
						jp*gemmNR, pa, panel)
				}
			}
		}
	}
	// On the fast tier the band's tail rows run the same per-row
	// blocked-FMA chain as the tiled rows: the tile/tail split moves
	// with the band boundaries (hence with the worker count under
	// automatic MC), so the two paths must agree bit-for-bit.
	scalarRowEnd := iTileEnd
	if fastKernels && np > 0 {
		pa := workerStrip(w, gemmMR*k)
		for i := iTileEnd; i < hi; i++ {
			transARowFast(dst.Row(i), a, packed, pa[:k], np, i)
		}
		scalarRowEnd = hi
	}
	// Column tail for the rows whose paneled columns are already
	// computed. += so the acc form composes; the non-acc form
	// pre-zeroed the band.
	for j := np * nr; j < m; j++ {
		for i := lo; i < scalarRowEnd; i++ {
			var sum float32
			for kk := 0; kk < k; kk++ {
				// Round each product before the add (no FMA).
				//nessa:bce-ok column tail (< NR columns): stride-walks down both Data arrays defeat the prover
				t := a.Data[kk*a.Cols+i] * b.Data[kk*m+j]
				sum += t
			}
			dst.Row(i)[j] += sum
		}
	}
	// Row tail (bit-exact tier, or a panel-less product): full width,
	// vectorized axpy per k step.
	for i := scalarRowEnd; i < hi; i++ {
		drow := dst.Row(i)
		for kk := 0; kk < k; kk++ {
			//nessa:bce-ok one strided scalar load per m-wide axpy; stride a.Cols defeats the prover
			axpyRow(drow, b.Row(kk), a.Data[kk*a.Cols+i])
		}
	}
}
