//go:build amd64

package tensor

// hasFMAAsm marks this build as carrying the AVX2/FMA micro-kernels in
// gemm_avx2_amd64.s. Unlike the SSE baseline they still need runtime
// feature detection (cpuFastTierOK below) before dispatch.
const hasFMAAsm = true

// cpuFastTierOK is resolved once at init: the fast tier needs AVX2 and
// FMA3 in hardware *and* an OS that context-switches the YMM state
// (OSXSAVE set and XCR0 enabling both XMM and YMM saves). Without the
// XCR0 check an AVX2-capable CPU under a non-AVX-aware kernel would
// fault on the first VEX instruction.
var cpuFastTierOK = detectFastTier()

func detectFastTier() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma3    = 1 << 12
		osxsave = 1 << 27
	)
	if c1&fma3 == 0 || c1&osxsave == 0 {
		return false
	}
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 { // XMM (bit 1) and YMM (bit 2) state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// Implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// AVX2/FMA micro-kernels in gemm_avx2_amd64.s. Each destination
// element owns one YMM lane whose products are *fused* into the
// accumulator (VFMADD231PS: one rounding per term) — deterministic,
// but not bit-identical to the MULPS/ADDPS tier.

//go:noescape
func fmaMicro4x8(d0, d1, d2, d3, a0, a1, a2, a3, p *float32, kn int)

//go:noescape
func fmaMicro1x8(d, a, p *float32, kn int)

//go:noescape
func fmaMicroP4x8(d0, d1, d2, d3, pa, p *float32, kn int)
