package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values in 64 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(5) value %d drawn %d/5000 times; distribution is badly skewed", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(123)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(5)
	a := root.Split()
	b := root.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams start identically; expected independent streams")
	}
}
