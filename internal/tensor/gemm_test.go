package tensor

import (
	"testing"

	"nessa/internal/parallel"
)

// Naive reference products, accumulating in ascending k like the
// blocked kernels claim to.
func refMatMul(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, sum)
		}
	}
}

func refMatMulTransB(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float32
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, sum)
		}
	}
}

func refMatMulTransA(dst, a, b *Matrix) {
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for k := 0; k < a.Rows; k++ {
				sum += a.At(k, i) * b.At(k, j)
			}
			dst.Set(i, j, sum)
		}
	}
}

// TestBlockedGEMMMatchesReference sweeps shapes around every tail
// boundary of the 4×4 micro-kernels (rows%4, cols%4, tiny k, k just
// past the gemmKC cache strip) and checks all three blocked kernels
// against the naive ascending-k reference, bit for bit.
func TestBlockedGEMMMatchesReference(t *testing.T) {
	r := NewRNG(99)
	shapes := []struct{ n, k, m int }{
		{1, 1, 1}, {1, 3, 5}, {2, 2, 2}, {3, 7, 3}, {4, 4, 4},
		{5, 9, 6}, {7, 16, 9}, {8, 8, 8}, {13, 31, 17}, {16, 64, 12},
		{33, 5, 33}, {64, 2, 3}, {3, 600, 7}, {9, 2051, 10},
	}
	for _, s := range shapes {
		a := NewMatrix(s.n, s.k)
		b := NewMatrix(s.k, s.m)
		bt := NewMatrix(s.m, s.k)
		at := NewMatrix(s.k, s.n)
		a.FillNormal(r, 1)
		b.FillNormal(r, 1)
		bt.FillNormal(r, 1)
		at.FillNormal(r, 1)

		got := NewMatrix(s.n, s.m)
		want := NewMatrix(s.n, s.m)

		MatMul(got, a, b)
		refMatMul(want, a, b)
		compare(t, "MatMul", s.n, s.k, s.m, got, want)

		MatMulTransB(got, a, bt)
		refMatMulTransB(want, a, bt)
		compare(t, "MatMulTransB", s.n, s.k, s.m, got, want)

		MatMulTransA(got, at, b)
		refMatMulTransA(want, at, b)
		compare(t, "MatMulTransA", s.n, s.k, s.m, got, want)
	}
}

func compare(t *testing.T, name string, n, k, m int, got, want *Matrix) {
	t.Helper()
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s %dx%dx%d: element %d = %v, want %v (bitwise)",
				name, n, k, m, i, got.Data[i], want.Data[i])
		}
	}
}

// TestBlockedGEMMWorkerCountInvariant runs each kernel at several
// worker counts on a shape with both row and column tails and demands
// bit-identical output — the determinism contract the training loop
// (serial-vs-parallel trajectory guard) builds on.
func TestBlockedGEMMWorkerCountInvariant(t *testing.T) {
	r := NewRNG(123)
	a := NewMatrix(131, 67)
	b := NewMatrix(67, 93)
	bt := NewMatrix(93, 67)
	at := NewMatrix(67, 131)
	a.FillNormal(r, 1)
	b.FillNormal(r, 1)
	bt.FillNormal(r, 1)
	at.FillNormal(r, 1)

	kernels := []struct {
		name string
		run  func(dst *Matrix)
		rows int
	}{
		{"MatMul", func(d *Matrix) { MatMul(d, a, b) }, a.Rows},
		{"MatMulTransB", func(d *Matrix) { MatMulTransB(d, a, bt) }, a.Rows},
		{"MatMulTransA", func(d *Matrix) { MatMulTransA(d, at, b) }, at.Cols},
	}
	defer parallel.SetDefaultWorkers(0)
	for _, kc := range kernels {
		parallel.SetDefaultWorkers(1)
		serial := NewMatrix(kc.rows, b.Cols)
		kc.run(serial)
		for _, w := range []int{2, 3, 8, 16} {
			parallel.SetDefaultWorkers(w)
			par := NewMatrix(kc.rows, b.Cols)
			kc.run(par)
			for i := range serial.Data {
				if serial.Data[i] != par.Data[i] {
					t.Fatalf("%s workers=%d: element %d differs: %v vs %v",
						kc.name, w, i, serial.Data[i], par.Data[i])
				}
			}
		}
	}
}

// sparsify zeroes a deterministic ~60% of m's elements so the
// sparsity-adaptive skip bands engage.
func sparsify(m *Matrix) {
	for i := range m.Data {
		if (i*2654435761)%10 < 6 {
			m.Data[i] = 0
		}
	}
}

// TestSparseGEMMMatchesReference drives MatMul and MatMulTransA with
// ReLU-like sparse A operands — the regime where the zero-skipping
// bands take over — and checks them against the dense ascending-k
// reference, bit for bit on finite data.
func TestSparseGEMMMatchesReference(t *testing.T) {
	r := NewRNG(7)
	shapes := []struct{ n, k, m int }{
		{1, 1, 1}, {5, 9, 6}, {13, 31, 17}, {33, 5, 33}, {128, 64, 64},
	}
	for _, s := range shapes {
		a := NewMatrix(s.n, s.k)
		at := NewMatrix(s.k, s.n)
		b := NewMatrix(s.k, s.m)
		a.FillNormal(r, 1)
		at.FillNormal(r, 1)
		b.FillNormal(r, 1)
		sparsify(a)
		sparsify(at)

		got := NewMatrix(s.n, s.m)
		want := NewMatrix(s.n, s.m)

		MatMul(got, a, b)
		refMatMul(want, a, b)
		compare(t, "MatMul/sparse", s.n, s.k, s.m, got, want)

		MatMulTransA(got, at, b)
		refMatMulTransA(want, at, b)
		compare(t, "MatMulTransA/sparse", s.n, s.k, s.m, got, want)

		// Accumulating form into a zeroed dst is bit-identical to the
		// plain product — the contract backprop relies on.
		got.Zero()
		MatMulTransAAcc(got, at, b)
		compare(t, "MatMulTransAAcc/sparse", s.n, s.k, s.m, got, want)
	}
}

// TestMatMulTransAAccDense checks the accumulating form on a dense
// operand (micro-kernel path): bit-identical to the plain product from
// a zeroed dst, and numerically dst0 + aᵀ·b from a nonzero dst (the
// folding order of the appended terms is path-dependent, so the
// nonzero case is checked to float tolerance).
func TestMatMulTransAAccDense(t *testing.T) {
	r := NewRNG(17)
	at := NewMatrix(37, 13)
	b := NewMatrix(37, 11)
	at.FillNormal(r, 1)
	b.FillNormal(r, 1)
	prod := NewMatrix(13, 11)
	refMatMulTransA(prod, at, b)

	got := NewMatrix(13, 11)
	MatMulTransAAcc(got, at, b)
	compare(t, "MatMulTransAAcc/dense-zero", 13, 37, 11, got, prod)

	got.FillNormal(r, 1)
	dst0 := got.Clone()
	MatMulTransAAcc(got, at, b)
	for i := range got.Data {
		want := dst0.Data[i] + prod.Data[i]
		diff := got.Data[i] - want
		if diff < -1e-4 || diff > 1e-4 {
			t.Fatalf("MatMulTransAAcc nonzero dst: element %d = %v, want ≈ %v", i, got.Data[i], want)
		}
	}
}

// TestSparseGEMMWorkerCountInvariant pins the skip bands to the same
// any-worker-count bitwise contract as the dense kernels. The path
// choice itself depends only on operand data, never the worker count.
func TestSparseGEMMWorkerCountInvariant(t *testing.T) {
	r := NewRNG(29)
	a := NewMatrix(131, 67)
	at := NewMatrix(67, 131)
	b := NewMatrix(67, 93)
	bm := NewMatrix(131, 93)
	a.FillNormal(r, 1)
	at.FillNormal(r, 1)
	b.FillNormal(r, 1)
	bm.FillNormal(r, 1)
	sparsify(a)
	sparsify(at)

	defer parallel.SetDefaultWorkers(0)
	kernels := []struct {
		name string
		run  func(dst *Matrix)
		rows int
	}{
		{"MatMul", func(d *Matrix) { MatMul(d, a, b) }, a.Rows},
		{"MatMulTransA", func(d *Matrix) { MatMulTransA(d, at, b) }, at.Cols},
	}
	for _, kc := range kernels {
		parallel.SetDefaultWorkers(1)
		serial := NewMatrix(kc.rows, b.Cols)
		kc.run(serial)
		for _, w := range []int{2, 3, 8} {
			parallel.SetDefaultWorkers(w)
			par := NewMatrix(kc.rows, b.Cols)
			kc.run(par)
			for i := range serial.Data {
				if serial.Data[i] != par.Data[i] {
					t.Fatalf("%s sparse workers=%d: element %d differs: %v vs %v",
						kc.name, w, i, serial.Data[i], par.Data[i])
				}
			}
		}
	}
}

// TestGatherRows checks the fused permuted copy.
func TestGatherRows(t *testing.T) {
	src := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	dst := NewMatrix(3, 2)
	GatherRows(dst, src, []int{3, 0, 2})
	want := []float32{7, 8, 1, 2, 5, 6}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("GatherRows data[%d] = %v, want %v", i, dst.Data[i], v)
		}
	}
}

func TestGatherRowsShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	GatherRows(NewMatrix(2, 2), NewMatrix(4, 3), []int{0, 1})
}

// BenchmarkGEMMKernels measures the blocked micro-kernels at training
// shapes (forward TransB, gradient TransA, backprop MatMul) serially —
// the per-core throughput the training hot path sees.
func BenchmarkGEMMKernels(b *testing.B) {
	r := NewRNG(8)
	x := NewMatrix(128, 256)   // batch × features
	w := NewMatrix(256, 256)   // out × in (TransB operand)
	d := NewMatrix(128, 256)   // delta
	dst := NewMatrix(128, 256) // activations
	dw := NewMatrix(256, 256)  // weight grads
	x.FillNormal(r, 1)
	w.FillNormal(r, 1)
	d.FillNormal(r, 1)
	flops := int64(2) * 128 * 256 * 256

	parallel.SetDefaultWorkers(1)
	defer parallel.SetDefaultWorkers(0)
	b.Run("TransB", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			MatMulTransB(dst, x, w)
		}
	})
	b.Run("TransA", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			MatMulTransA(dw, d, x)
		}
	})
	ds := d.Clone()
	sparsify(ds)
	b.Run("TransA-sparse", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			MatMulTransA(dw, ds, x)
		}
	})
	b.Run("MatMul", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			MatMul(dst, d, w)
		}
	})
}
