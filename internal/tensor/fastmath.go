// The fast-math switch. The default tier is *bit-exact*: every kernel
// — portable Go, SSE assembly, any worker count — performs one IEEE-754
// single-precision multiply and one add per term in ascending k, so
// outputs are identical bit patterns everywhere. SetFastMath(true)
// opts into the non-bit-exact tier: AVX2/FMA 8-wide micro-kernels that
// fuse each multiply-add into a single rounding and may block the
// accumulation over k (the KC tuning knob). Fast-tier results differ
// from the bit-exact tier within a small documented tolerance (see
// DESIGN.md §4.9) but remain fully deterministic: run-to-run AND
// across worker counts, the association order is fixed by the data
// layout and the tuning record alone, never by scheduling.
//
// The switch is process-global, mirroring the worker-count knob in
// internal/parallel: flip it between runs, never concurrently with
// executing kernels.
package tensor

// FastTierTolerance is the documented bound on the relative divergence
// between fast-tier and bit-exact results for one GEMM (DESIGN.md
// §4.9): FMA fusion and KC blocking perturb each accumulation by a few
// ULPs, far below this bound for the repo's shapes. The tolerance
// tests and the bench-training gate both enforce it.
const FastTierTolerance = 1e-5

var (
	// fastMathOn records the caller's request (core.Options.BitExact
	// = false → SetFastMath(true)).
	fastMathOn bool
	// fastKernels is the resolved dispatch flag the kernels read: the
	// fast tier was requested, the CPU supports AVX2+FMA (with OS
	// AVX state enabled), and the tuning selects the 8-wide kernels.
	fastKernels bool
)

// SetFastMath requests (or revokes) the non-bit-exact AVX2/FMA kernel
// tier and reports whether it is now active. On hardware without
// AVX2/FMA — or off amd64 entirely — the request is remembered but the
// kernels silently stay on the bit-exact tier, so BitExact=false is
// *permission* to diverge, never a requirement. Must not be called
// concurrently with running kernels.
func SetFastMath(on bool) bool {
	fastMathOn = on
	recomputeFastKernels()
	return fastKernels
}

// FastMathActive reports whether the fast tier is currently dispatched.
func FastMathActive() bool { return fastKernels }

// FastMathSupported reports whether this CPU and build can run the
// AVX2/FMA tier at all.
func FastMathSupported() bool { return hasFMAAsm && cpuFastTierOK }

func recomputeFastKernels() {
	fastKernels = fastMathOn && FastMathSupported() && tuning.NR == gemmNRFast
}
