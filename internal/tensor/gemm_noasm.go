//go:build !amd64

package tensor

// useAsmKernels is false off amd64: the portable Go micro-kernels in
// gemm_kernels.go run everywhere and define the reference semantics.
const useAsmKernels = false

// The SSE entry points exist only so the dispatch wrappers compile;
// the constant above makes every call site dead code.

func sseMicro4x4(d0, d1, d2, d3, a0, a1, a2, a3, p *float32, kn int) {
	panic("tensor: SSE kernel called on non-amd64")
}

func sseMicro1x4(d, a, p *float32, kn int) {
	panic("tensor: SSE kernel called on non-amd64")
}

func sseMicroP4x4(d0, d1, d2, d3, pa, p *float32, kn int) {
	panic("tensor: SSE kernel called on non-amd64")
}

func sseAxpy(dst, src *float32, alpha float32, n int) {
	panic("tensor: SSE kernel called on non-amd64")
}
