// SSE micro-kernels behind the gemm dispatch wrappers in
// gemm_kernels.go.
//
// Bitwise contract: no FMA is used anywhere — every term is one MULPS
// then one ADDPS, per-lane IEEE-754 single-precision rounding — and
// each destination element owns exactly one vector lane that
// accumulates its products in ascending k. That is the identical
// operation chain of the portable Go kernels, so both builds produce
// identical bit patterns. SSE is part of the amd64 baseline, so these
// run everywhere without feature detection.

#include "textflag.h"

// func sseMicro4x4(d0, d1, d2, d3, a0, a1, a2, a3, p *float32, kn int)
// X0..X3 hold one dst row each (columns j0..j0+3). Per k step: load
// the packed panel quad, splat each A value, multiply, accumulate.
// Callers guarantee kn >= 1.
TEXT ·sseMicro4x4(SB), NOSPLIT, $0-80
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ a0+32(FP), DX
	MOVQ a1+40(FP), SI
	MOVQ a2+48(FP), DI
	MOVQ a3+56(FP), R12
	MOVQ p+64(FP), BX
	MOVQ kn+72(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  AX, AX

m44loop:
	MOVUPS (BX), X4
	MOVSS  (DX)(AX*4), X5
	SHUFPS $0x00, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVSS  (SI)(AX*4), X6
	SHUFPS $0x00, X6, X6
	MULPS  X4, X6
	ADDPS  X6, X1
	MOVSS  (DI)(AX*4), X7
	SHUFPS $0x00, X7, X7
	MULPS  X4, X7
	ADDPS  X7, X2
	MOVSS  (R12)(AX*4), X8
	SHUFPS $0x00, X8, X8
	MULPS  X4, X8
	ADDPS  X8, X3
	ADDQ   $16, BX
	INCQ   AX
	CMPQ   AX, CX
	JLT    m44loop

	MOVUPS (R8), X4
	ADDPS  X0, X4
	MOVUPS X4, (R8)
	MOVUPS (R9), X5
	ADDPS  X1, X5
	MOVUPS X5, (R9)
	MOVUPS (R10), X6
	ADDPS  X2, X6
	MOVUPS X6, (R10)
	MOVUPS (R11), X7
	ADDPS  X3, X7
	MOVUPS X7, (R11)
	RET

// func sseMicro1x4(d, a, p *float32, kn int)
// Row-tail variant: one dst row in X0.
TEXT ·sseMicro1x4(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), R8
	MOVQ a+8(FP), DX
	MOVQ p+16(FP), BX
	MOVQ kn+24(FP), CX
	XORPS X0, X0
	XORQ  AX, AX

m14loop:
	MOVUPS (BX), X4
	MOVSS  (DX)(AX*4), X5
	SHUFPS $0x00, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0
	ADDQ   $16, BX
	INCQ   AX
	CMPQ   AX, CX
	JLT    m14loop

	MOVUPS (R8), X4
	ADDPS  X0, X4
	MOVUPS X4, (R8)
	RET

// func sseMicroP4x4(d0, d1, d2, d3, pa, p *float32, kn int)
// Both-sides-packed variant: the A quad arrives as one MOVUPS and is
// splatted lane-by-lane with SHUFPS immediates.
TEXT ·sseMicroP4x4(SB), NOSPLIT, $0-56
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ pa+32(FP), DX
	MOVQ p+40(FP), BX
	MOVQ kn+48(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3

p44loop:
	MOVUPS (BX), X4
	MOVUPS (DX), X5
	MOVAPS X5, X6
	SHUFPS $0x00, X6, X6
	MULPS  X4, X6
	ADDPS  X6, X0
	MOVAPS X5, X7
	SHUFPS $0x55, X7, X7
	MULPS  X4, X7
	ADDPS  X7, X1
	MOVAPS X5, X8
	SHUFPS $0xAA, X8, X8
	MULPS  X4, X8
	ADDPS  X8, X2
	SHUFPS $0xFF, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X3
	ADDQ   $16, BX
	ADDQ   $16, DX
	DECQ   CX
	JNE    p44loop

	MOVUPS (R8), X4
	ADDPS  X0, X4
	MOVUPS X4, (R8)
	MOVUPS (R9), X5
	ADDPS  X1, X5
	MOVUPS X5, (R9)
	MOVUPS (R10), X6
	ADDPS  X2, X6
	MOVUPS X6, (R10)
	MOVUPS (R11), X7
	ADDPS  X3, X7
	MOVUPS X7, (R11)
	RET

// func sseAxpy(dst, src *float32, alpha float32, n int)
// dst[j] += alpha*src[j]: quads first, scalar tail. Works for any
// n >= 1.
TEXT ·sseAxpy(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), R8
	MOVQ  src+8(FP), SI
	MOVSS alpha+16(FP), X0
	SHUFPS $0x00, X0, X0
	MOVQ  n+24(FP), CX
	MOVQ  CX, DX
	SHRQ  $2, CX
	JEQ   axtail

axquad:
	MOVUPS (SI), X1
	MULPS  X0, X1
	MOVUPS (R8), X2
	ADDPS  X1, X2
	MOVUPS X2, (R8)
	ADDQ   $16, SI
	ADDQ   $16, R8
	DECQ   CX
	JNE    axquad

axtail:
	ANDQ $3, DX
	JEQ  axdone

axone:
	MOVSS (SI), X1
	MULSS X0, X1
	MOVSS (R8), X2
	ADDSS X1, X2
	MOVSS X2, (R8)
	ADDQ  $4, SI
	ADDQ  $4, R8
	DECQ  DX
	JNE   axone

axdone:
	RET
