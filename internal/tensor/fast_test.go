package tensor

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"nessa/internal/parallel"
)

// withFastTier runs f with the fast tier active, restoring the
// bit-exact default (and the prior tuning) afterwards. Skips when the
// host cannot run AVX2/FMA.
func withFastTier(t *testing.T, f func()) {
	t.Helper()
	if !FastMathSupported() {
		if SetFastMath(true) {
			t.Fatal("SetFastMath(true) claims active on unsupported hardware")
		}
		SetFastMath(false)
		t.Skip("AVX2/FMA unavailable on this host")
	}
	prev := CurrentTuning()
	if !SetFastMath(true) {
		t.Fatal("SetFastMath(true) inactive on supported hardware")
	}
	defer func() {
		SetFastMath(false)
		if err := SetTuning(prev); err != nil {
			t.Fatal(err)
		}
	}()
	f()
}

func fillDeterministic(m *Matrix, seed float32) {
	for i := range m.Data {
		m.Data[i] = seed + float32(i%17) - 8 + float32(i%5)*0.25
	}
}

func maxRelErr(a, b *Matrix) float64 {
	worst := 0.0
	for i := range a.Data {
		x, y := float64(a.Data[i]), float64(b.Data[i])
		d := math.Abs(x - y)
		if m := math.Max(math.Abs(x), math.Abs(y)); m > 1 {
			d /= m
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestFastTierWithinTolerance compares every GEMM layout on the fast
// tier against the bit-exact reference: close within the documented
// tolerance, never bit-required to match.
func TestFastTierWithinTolerance(t *testing.T) {
	n, k, m := 37, 41, 43 // awkward shapes: row tails, column tails, odd k
	a := NewMatrix(n, k)
	at := NewMatrix(k, n)
	b := NewMatrix(k, m)
	bt := NewMatrix(m, k)
	fillDeterministic(a, 0.5)
	fillDeterministic(at, 0.5)
	fillDeterministic(b, -1.25)
	fillDeterministic(bt, -1.25)

	ref := NewMatrix(n, m)
	got := NewMatrix(n, m)
	check := func(name string) {
		if err := maxRelErr(ref, got); err > FastTierTolerance {
			t.Errorf("%s: fast tier diverges by %.3g (tolerance %.3g)", name, err, FastTierTolerance)
		}
	}

	MatMul(ref, a, b)
	withFastTier(t, func() { MatMul(got, a, b) })
	check("MatMul")

	MatMulTransB(ref, a, bt)
	withFastTier(t, func() { MatMulTransB(got, a, bt) })
	check("MatMulTransB")

	MatMulTransA(ref, at, b)
	withFastTier(t, func() { MatMulTransA(got, at, b) })
	check("MatMulTransA")

	fillDeterministic(ref, 2)
	fillDeterministic(got, 2)
	MatMulTransAAcc(ref, at, b)
	withFastTier(t, func() { MatMulTransAAcc(got, at, b) })
	check("MatMulTransAAcc")
}

// TestFastTierWorkerCountInvariant pins the fast tier's determinism
// contract: not bit-exact with the default tier, but bit-identical to
// itself across worker counts and KC-independent of banding.
func TestFastTierWorkerCountInvariant(t *testing.T) {
	// Odd shapes so every product has row, column, and tile tails, and
	// MC=0 (automatic banding) alongside fixed grains: automatic band
	// boundaries move with the worker count, which is exactly where a
	// tile/tail association mismatch shows up.
	n, k, m := 63, 96, 41
	a := NewMatrix(n, k)
	b := NewMatrix(k, m)
	at := NewMatrix(k, n)
	bt := NewMatrix(m, k)
	fillDeterministic(a, 1.5)
	fillDeterministic(b, -0.75)
	fillDeterministic(at, 0.9)
	fillDeterministic(bt, -1.1)

	ops := []struct {
		name string
		run  func(dst *Matrix)
	}{
		{"MatMul", func(dst *Matrix) { MatMul(dst, a, b) }},
		{"MatMulTransB", func(dst *Matrix) { MatMulTransB(dst, a, bt) }},
		{"MatMulTransA", func(dst *Matrix) { MatMulTransA(dst, at, b) }},
	}
	withFastTier(t, func() {
		prevW := parallel.Default().Workers()
		defer parallel.SetDefaultWorkers(prevW)
		for _, tn := range []Tuning{{MC: 0, KC: 256, NR: gemmNRFast}, {MC: 8, KC: 32, NR: gemmNRFast}, {MC: 5, KC: 0, NR: gemmNRFast}} {
			if err := SetTuning(tn); err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				parallel.SetDefaultWorkers(1)
				serial := NewMatrix(n, m)
				op.run(serial)
				for _, w := range []int{2, 3, 7} {
					parallel.SetDefaultWorkers(w)
					got := NewMatrix(n, m)
					op.run(got)
					for i := range got.Data {
						if got.Data[i] != serial.Data[i] {
							t.Fatalf("%s tuning %+v not worker-count invariant at workers=%d, element %d: %x vs %x",
								op.name, tn, w, i, math.Float32bits(got.Data[i]), math.Float32bits(serial.Data[i]))
						}
					}
				}
			}
		}
	})
}

// TestTuningValidation exercises the tuning guard rails and the
// NR-gated fast dispatch.
func TestTuningValidation(t *testing.T) {
	prev := CurrentTuning()
	defer func() {
		if err := SetTuning(prev); err != nil {
			t.Fatal(err)
		}
	}()
	for _, bad := range []Tuning{{MC: -1, KC: 0, NR: 8}, {MC: 0, KC: -2, NR: 8}, {MC: 0, KC: 0, NR: 5}} {
		if err := SetTuning(bad); err == nil {
			t.Errorf("SetTuning(%+v) accepted an invalid tuning", bad)
		}
	}
	if err := SetTuning(Tuning{MC: 16, KC: 128, NR: 4}); err != nil {
		t.Fatal(err)
	}
	if FastMathSupported() {
		// NR=4 must veto the 8-wide dispatch even when requested.
		if SetFastMath(true) {
			t.Error("fast tier active despite NR=4 tuning")
		}
		SetFastMath(false)
	}
}

// TestTuningRecordRoundTrip checks the persisted autotuning artifact:
// save, load, apply for the active tier.
func TestTuningRecordRoundTrip(t *testing.T) {
	prev := CurrentTuning()
	defer func() {
		if err := SetTuning(prev); err != nil {
			t.Fatal(err)
		}
	}()
	rec := &TuningRecord{
		GeneratedAt:   "2026-01-01T00:00:00Z",
		CPUs:          4,
		FastSupported: true,
		BitExact:      Tuning{MC: 32, KC: 0, NR: 8},
		Fast:          Tuning{MC: 16, KC: 192, NR: 8},
	}
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := SaveTuningRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTuningRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rec {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
	applied, err := ApplyTuningRecord(got)
	if err != nil {
		t.Fatal(err)
	}
	if applied != rec.BitExact || CurrentTuning() != rec.BitExact {
		t.Fatalf("bit-exact apply installed %+v, want %+v", CurrentTuning(), rec.BitExact)
	}
	if _, err := LoadTuningRecord(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing record: got %v, want IsNotExist", err)
	}
	bad := &TuningRecord{BitExact: Tuning{NR: 3}, Fast: Tuning{NR: 8}}
	if err := SaveTuningRecord(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTuningRecord(path); err == nil {
		t.Fatal("LoadTuningRecord accepted an invalid NR")
	}
}

// TestGEMMSteadyStateAllocs locks the zero-allocation dispatch in for
// the tensor layer itself: once panels, tasks, worker IDs, and strips
// are warm, parallel GEMM calls allocate nothing.
func TestGEMMSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	prevW := parallel.Default().Workers()
	parallel.SetDefaultWorkers(4)
	defer parallel.SetDefaultWorkers(prevW)
	n, k, m := 64, 96, 64
	a := NewMatrix(n, k)
	at := NewMatrix(k, n)
	b := NewMatrix(k, m)
	bt := NewMatrix(m, k)
	fillDeterministic(a, 1)
	fillDeterministic(at, 1)
	fillDeterministic(b, 2)
	fillDeterministic(bt, 2)
	dst := NewMatrix(n, m)
	loops := map[string]func(){
		"MatMul":          func() { MatMul(dst, a, b) },
		"MatMulTransB":    func() { MatMulTransB(dst, a, bt) },
		"MatMulTransA":    func() { MatMulTransA(dst, at, b) },
		"MatMulTransAAcc": func() { MatMulTransAAcc(dst, at, b) },
	}
	for name, loop := range loops {
		for i := 0; i < 3; i++ {
			loop()
		}
		if avg := testing.AllocsPerRun(50, loop); avg > 0 {
			t.Errorf("%s allocates %.2f times per call in steady state, want 0", name, avg)
		}
	}
}
