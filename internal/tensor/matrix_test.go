package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float32) bool {
	return float32(math.Abs(float64(a-b))) <= tol
}

func TestMatMulHandChecked(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := [][]float32{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if dst.At(i, j) != want[i][j] {
				t.Errorf("MatMul[%d][%d] = %v, want %v", i, j, dst.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(7)
	a := NewMatrix(4, 4)
	a.FillNormal(r, 1)
	id := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	dst := NewMatrix(4, 4)
	MatMul(dst, a, id)
	for i := range a.Data {
		if !almostEq(dst.Data[i], a.Data[i], 1e-6) {
			t.Fatalf("A·I != A at %d: %v vs %v", i, dst.Data[i], a.Data[i])
		}
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	r := NewRNG(11)
	a := NewMatrix(3, 5)
	b := NewMatrix(4, 5)
	a.FillNormal(r, 1)
	b.FillNormal(r, 1)

	bt := NewMatrix(5, 4)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := NewMatrix(3, 4)
	MatMul(want, a, bt)
	got := NewMatrix(3, 4)
	MatMulTransB(got, a, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulTransB mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	r := NewRNG(13)
	a := NewMatrix(6, 3)
	b := NewMatrix(6, 4)
	a.FillNormal(r, 1)
	b.FillNormal(r, 1)

	at := NewMatrix(3, 6)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := NewMatrix(3, 4)
	MatMul(want, at, b)
	got := NewMatrix(3, 4)
	MatMulTransA(got, a, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulTransA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(16)
		logits := make([]float32, n)
		for i := range logits {
			logits[i] = r.NormFloat32() * 10
		}
		out := make([]float32, n)
		Softmax(out, logits)
		var sum float64
		for _, p := range out {
			if p < 0 || p > 1 || math.IsNaN(float64(p)) {
				return false
			}
			sum += float64(p)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStableUnderLargeLogits(t *testing.T) {
	logits := []float32{1000, 1001, 999}
	out := make([]float32, 3)
	Softmax(out, logits)
	if Argmax(out) != 1 {
		t.Errorf("argmax = %d, want 1", Argmax(out))
	}
	for _, p := range out {
		if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			t.Fatalf("softmax produced non-finite value %v", p)
		}
	}
}

func TestSqDistSymmetricNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(32)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = r.NormFloat32()
			b[i] = r.NormFloat32()
		}
		d1 := SqDist(a, b)
		d2 := SqDist(b, a)
		return d1 >= 0 && almostEq(d1, d2, 1e-5) && SqDist(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArgmax(t *testing.T) {
	cases := []struct {
		in   []float32
		want int
	}{
		{nil, -1},
		{[]float32{3}, 0},
		{[]float32{1, 5, 2}, 1},
		{[]float32{5, 5, 2}, 0}, // ties to lowest index
		{[]float32{-3, -1, -2}, 1},
	}
	for _, c := range cases {
		if got := Argmax(c.in); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float32{3, 4}
	if got := Norm(a); !almostEq(got, 5, 1e-6) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Dot(a, a); !almostEq(got, 25, 1e-6) {
		t.Errorf("Dot = %v, want 25", got)
	}
}

func TestAXPY(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{10, 20}})
	AXPY(a, 0.5, b)
	if a.At(0, 0) != 6 || a.At(0, 1) != 12 {
		t.Errorf("AXPY result = %v, want [6 12]", a.Data)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}
