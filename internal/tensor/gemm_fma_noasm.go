//go:build !amd64

package tensor

// Off amd64 the fast tier does not exist: hasFMAAsm gates
// FastMathSupported to false, so SetFastMath(true) is remembered but
// never dispatches and the entry points below are unreachable. They
// exist only so the fast-tier wrappers compile on every architecture.
const hasFMAAsm = false

var cpuFastTierOK = false

func fmaMicro4x8(d0, d1, d2, d3, a0, a1, a2, a3, p *float32, kn int) {
	panic("tensor: FMA kernel called on non-amd64")
}

func fmaMicro1x8(d, a, p *float32, kn int) {
	panic("tensor: FMA kernel called on non-amd64")
}

func fmaMicroP4x8(d0, d1, d2, d3, pa, p *float32, kn int) {
	panic("tensor: FMA kernel called on non-amd64")
}
