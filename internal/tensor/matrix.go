// Package tensor implements the dense float32 linear-algebra kernels
// used by the neural-network training substrate and the selection
// algorithms: row-major matrices, GEMM variants, vector helpers, and a
// deterministic random number generator.
//
// The package deliberately stays small: NeSSA's selection model only
// needs forward passes and last-layer gradient embeddings, so a full
// autodiff engine is unnecessary.
package tensor

import (
	"fmt"

	"nessa/internal/parallel"
)

// gemmParallelFlops is the approximate multiply-add count below which
// a GEMM runs serially: small products (a few thousand flops) finish
// faster than the goroutine fan-out costs. Above it, the product is
// banded over destination rows on the shared worker pool. Each output
// row is written by exactly one band and accumulates in the same inner
// k-order as the serial loop, so results are bit-identical for any
// worker count.
const gemmParallelFlops = 64 * 1024

// Matrix is a dense row-major float32 matrix. Data is a single backing
// slice of length Rows*Cols; row i occupies Data[i*Cols : (i+1)*Cols].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FillNormal fills m with N(0, std²) variates from r.
func (m *Matrix) FillNormal(r *RNG, std float32) {
	for i := range m.Data {
		m.Data[i] = r.NormFloat32() * std
	}
}

// MatMul computes dst = a·b where a is (n×k) and b is (k×m).
// dst must be n×m and is overwritten. It panics on shape mismatch.
// Large products are banded over dst rows on the shared worker pool.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch: (%dx%d)·(%dx%d) -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
			for k := 0; k < a.Cols; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range drow {
					drow[j] += av * brow[j]
				}
			}
		}
	}
	if gemmSerial(a.Rows, a.Cols, b.Cols) {
		body(0, a.Rows)
		return
	}
	parallel.Default().For(a.Rows, 0, body)
}

// MatMulTransB computes dst = a·bᵀ where a is (n×k) and b is (m×k).
// dst must be n×m. This is the layout used for Dense layers whose
// weights are stored (out×in).
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch: (%dx%d)·(%dx%d)ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var sum float32
				for k := range arow {
					sum += arow[k] * brow[k]
				}
				drow[j] = sum
			}
		}
	}
	if gemmSerial(a.Rows, a.Cols, b.Rows) {
		body(0, a.Rows)
		return
	}
	parallel.Default().For(a.Rows, 0, body)
}

// MatMulTransA computes dst = aᵀ·b where a is (k×n) and b is (k×m).
// dst must be n×m. Used for weight gradients: dW = dOutᵀ·X.
// Bands cover dst rows (columns of a); within a band the reduction
// still walks a's rows in ascending k, matching the serial
// accumulation order exactly.
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch: (%dx%d)ᵀ·(%dx%d) -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
		}
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				drow := dst.Row(i)
				for j := range brow {
					drow[j] += av * brow[j]
				}
			}
		}
	}
	if gemmSerial(a.Rows, a.Cols, b.Cols) {
		body(0, a.Cols)
		return
	}
	parallel.Default().For(a.Cols, 0, body)
}

// gemmSerial reports whether a product with the given inner dimension
// and output shape is too small to benefit from the pool.
func gemmSerial(rows, inner, cols int) bool {
	if parallel.Default().Workers() <= 1 {
		return true
	}
	return rows*inner*cols < gemmParallelFlops
}

// AddRowVec adds vector v to every row of m in place.
func AddRowVec(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec length %d, want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes dst += alpha*src elementwise. Shapes must match.
func AXPY(dst *Matrix, alpha float32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: AXPY shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}
