// Package tensor implements the dense float32 linear-algebra kernels
// used by the neural-network training substrate and the selection
// algorithms: row-major matrices, GEMM variants, vector helpers, and a
// deterministic random number generator.
//
// The package deliberately stays small: NeSSA's selection model only
// needs forward passes and last-layer gradient embeddings, so a full
// autodiff engine is unnecessary.
package tensor

import "fmt"

// Matrix is a dense row-major float32 matrix. Data is a single backing
// slice of length Rows*Cols; row i occupies Data[i*Cols : (i+1)*Cols].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
//
//nessa:inline
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
//
//nessa:inline
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FillNormal fills m with N(0, std²) variates from r.
func (m *Matrix) FillNormal(r *RNG, std float32) {
	for i := range m.Data {
		m.Data[i] = r.NormFloat32() * std
	}
}

// GatherRows copies src rows idx[i] into dst rows i in one fused pass
// — the permuted-batch gather of the training loop. dst must have
// len(idx) rows and src's column count.
//
//nessa:hotpath
func GatherRows(dst, src *Matrix, idx []int) {
	if dst.Cols != src.Cols || dst.Rows != len(idx) {
		panic(fmt.Sprintf("tensor: GatherRows shape mismatch: dst %dx%d, src cols %d, %d indices",
			dst.Rows, dst.Cols, src.Cols, len(idx)))
	}
	for i, s := range idx {
		copy(dst.Row(i), src.Row(s))
	}
}

// EnsureShape returns m resized to rows×cols, reusing its backing
// array whenever capacity allows — the scratch-arena primitive behind
// the zero-allocation training loop. A nil m or insufficient capacity
// allocates fresh; contents are unspecified either way (callers
// overwrite). Shrinking (e.g. for a short tail batch) keeps the full
// capacity, so the next full-size batch reuses the same storage.
//
//nessa:hotpath
func EnsureShape(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return NewMatrix(rows, cols)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// AddRowVec adds vector v to every row of m in place.
//
//nessa:hotpath
func AddRowVec(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec length %d, want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		// Pinning the row length to len(v) lets the prover discharge
		// both index checks in the element loop.
		row := m.Row(i)[:len(v)]
		for j := range row {
			row[j] += v[j]
		}
	}
}

// AddRowVecReLU adds vector v to every row of m and applies
// max(0, ·), in one pass: the fused bias + activation epilogue of a
// hidden layer. Identical values to AddRowVec followed by a separate
// clamp, without re-streaming m through the cache.
//
//nessa:hotpath
func AddRowVecReLU(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVecReLU length %d, want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)[:len(v)]
		for j := range row {
			t := row[j] + v[j]
			if t < 0 {
				t = 0
			}
			row[j] = t
		}
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes dst += alpha*src elementwise. Shapes must match.
//
//nessa:inline
func AXPY(dst *Matrix, alpha float32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: AXPY shape mismatch")
	}
	axpyRow(dst.Data, src.Data, alpha)
}
