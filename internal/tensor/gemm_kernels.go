// Portable micro-kernel implementations. On amd64 the SSE versions in
// gemm_amd64.s take over; these remain the reference semantics — the
// vector kernels compute the identical per-element operation chains
// (one IEEE-754 single-precision multiply and add per term, ascending
// k), so both produce bit-identical output.
package tensor

// gemmMicro4x4 dispatches the 4×4 micro-kernel: SSE on amd64, the
// portable loop below elsewhere. The slicing bounds-checks every
// pointer handed to assembly once per call.
//
//nessa:hotpath
func gemmMicro4x4(d0, d1, d2, d3 []float32, j0 int, a0, a1, a2, a3, p []float32) {
	if !useAsmKernels {
		goMicro4x4(d0, d1, d2, d3, j0, a0, a1, a2, a3, p)
		return
	}
	kn := len(a0)
	if kn == 0 {
		return
	}
	dv0 := d0[j0 : j0+gemmNR]
	dv1 := d1[j0 : j0+gemmNR]
	dv2 := d2[j0 : j0+gemmNR]
	dv3 := d3[j0 : j0+gemmNR]
	av1 := a1[:kn]
	av2 := a2[:kn]
	av3 := a3[:kn]
	pv := p[:gemmNR*kn]
	sseMicro4x4(&dv0[0], &dv1[0], &dv2[0], &dv3[0],
		&a0[0], &av1[0], &av2[0], &av3[0], &pv[0], kn)
}

// gemmMicro1x4 dispatches the row-tail micro-kernel.
//
//nessa:hotpath
func gemmMicro1x4(d []float32, j0 int, a, p []float32) {
	if !useAsmKernels {
		goMicro1x4(d, j0, a, p)
		return
	}
	kn := len(a)
	if kn == 0 {
		return
	}
	dv := d[j0 : j0+gemmNR]
	pv := p[:gemmNR*kn]
	sseMicro1x4(&dv[0], &a[0], &pv[0], kn)
}

// gemmMicroP4x4 dispatches the both-sides-packed micro-kernel.
//
//nessa:hotpath
func gemmMicroP4x4(d0, d1, d2, d3 []float32, j0 int, pa, p []float32) {
	if !useAsmKernels {
		goMicroP4x4(d0, d1, d2, d3, j0, pa, p)
		return
	}
	kn := len(pa) / gemmNR
	if kn == 0 {
		return
	}
	dv0 := d0[j0 : j0+gemmNR]
	dv1 := d1[j0 : j0+gemmNR]
	dv2 := d2[j0 : j0+gemmNR]
	dv3 := d3[j0 : j0+gemmNR]
	pav := pa[:gemmNR*kn]
	pv := p[:gemmNR*kn]
	sseMicroP4x4(&dv0[0], &dv1[0], &dv2[0], &dv3[0], &pav[0], &pv[0], kn)
}

// axpyRow adds alpha·src into dst element-wise — the inner loop of the
// sparse skip bands. The SSE form processes four lanes per step, but
// each element still sees exactly one multiply then one add, so the
// result matches the scalar loop bit for bit.
//
//nessa:hotpath
func axpyRow(dst, src []float32, alpha float32) {
	if len(src) != len(dst) {
		panic("tensor: axpyRow length mismatch")
	}
	if useAsmKernels && len(dst) > 0 {
		sseAxpy(&dst[0], &src[0], alpha, len(dst))
		return
	}
	for j, v := range src {
		// Round the product before the add (no FMA; see goMicro4x4).
		t := alpha * v
		dst[j] += t
	}
}

// goMicro4x4 accumulates the 4×4 destination tile at columns
// [j0,j0+4) of rows d0..d3 with the products of four A rows against
// one packed panel. Every accumulator adds in ascending k.
//
//nessa:hotpath
func goMicro4x4(d0, d1, d2, d3 []float32, j0 int, a0, a1, a2, a3, p []float32) {
	kn := len(a0)
	if kn == 0 {
		return
	}
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	a0 = a0[:kn:kn]
	a1 = a1[:kn:kn]
	a2 = a2[:kn:kn]
	a3 = a3[:kn:kn]
	p = p[: gemmNR*kn : gemmNR*kn]
	for k := 0; k < kn; k++ {
		// One slice check in place of four index checks: pb has
		// constant length gemmNR, so pb[0..3] are provably in bounds.
		pb := p[k*gemmNR:][:gemmNR]
		bv0, bv1, bv2, bv3 := pb[0], pb[1], pb[2], pb[3]
		av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
		// The products are materialized into temporaries before the
		// adds: the spec lets `c += a*b` fuse into one FMA (a single
		// rounding), while an assignment forces the product to round
		// to float32 first — exactly what the SSE kernels do, keeping
		// the two paths bit-identical on every architecture.
		m0, m1, m2, m3 := av0*bv0, av0*bv1, av0*bv2, av0*bv3
		c00, c01, c02, c03 = c00+m0, c01+m1, c02+m2, c03+m3
		m0, m1, m2, m3 = av1*bv0, av1*bv1, av1*bv2, av1*bv3
		c10, c11, c12, c13 = c10+m0, c11+m1, c12+m2, c13+m3
		m0, m1, m2, m3 = av2*bv0, av2*bv1, av2*bv2, av2*bv3
		c20, c21, c22, c23 = c20+m0, c21+m1, c22+m2, c23+m3
		m0, m1, m2, m3 = av3*bv0, av3*bv1, av3*bv2, av3*bv3
		c30, c31, c32, c33 = c30+m0, c31+m1, c32+m2, c33+m3
	}
	d0 = d0[j0 : j0+gemmNR]
	d0[0] += c00
	d0[1] += c01
	d0[2] += c02
	d0[3] += c03
	d1 = d1[j0 : j0+gemmNR]
	d1[0] += c10
	d1[1] += c11
	d1[2] += c12
	d1[3] += c13
	d2 = d2[j0 : j0+gemmNR]
	d2[0] += c20
	d2[1] += c21
	d2[2] += c22
	d2[3] += c23
	d3 = d3[j0 : j0+gemmNR]
	d3[0] += c30
	d3[1] += c31
	d3[2] += c32
	d3[3] += c33
}

// goMicro1x4 is the row-tail variant: one A row against one panel.
//
//nessa:hotpath
func goMicro1x4(d []float32, j0 int, a, p []float32) {
	kn := len(a)
	if kn == 0 {
		return
	}
	var c0, c1, c2, c3 float32
	a = a[:kn:kn]
	p = p[: gemmNR*kn : gemmNR*kn]
	for k := 0; k < kn; k++ {
		pb := p[k*gemmNR:][:gemmNR]
		av := a[k]
		// Explicit product temporaries: see goMicro4x4.
		m0, m1, m2, m3 := av*pb[0], av*pb[1], av*pb[2], av*pb[3]
		c0, c1, c2, c3 = c0+m0, c1+m1, c2+m2, c3+m3
	}
	d = d[j0 : j0+gemmNR]
	d[0] += c0
	d[1] += c1
	d[2] += c2
	d[3] += c3
}

// goMicroP4x4 is the both-sides-packed variant used by MatMulTransA:
// pa holds four A columns and p four B columns, both 4-interleaved
// over the same k range.
//
//nessa:hotpath
func goMicroP4x4(d0, d1, d2, d3 []float32, j0 int, pa, p []float32) {
	kn := len(pa) / gemmNR
	if kn == 0 {
		return
	}
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	pa = pa[: gemmNR*kn : gemmNR*kn]
	p = p[: gemmNR*kn : gemmNR*kn]
	for k := 0; k < kn; k++ {
		pav := pa[k*gemmNR:][:gemmNR]
		pb := p[k*gemmNR:][:gemmNR]
		av0, av1, av2, av3 := pav[0], pav[1], pav[2], pav[3]
		bv0, bv1, bv2, bv3 := pb[0], pb[1], pb[2], pb[3]
		// Explicit product temporaries: see goMicro4x4.
		m0, m1, m2, m3 := av0*bv0, av0*bv1, av0*bv2, av0*bv3
		c00, c01, c02, c03 = c00+m0, c01+m1, c02+m2, c03+m3
		m0, m1, m2, m3 = av1*bv0, av1*bv1, av1*bv2, av1*bv3
		c10, c11, c12, c13 = c10+m0, c11+m1, c12+m2, c13+m3
		m0, m1, m2, m3 = av2*bv0, av2*bv1, av2*bv2, av2*bv3
		c20, c21, c22, c23 = c20+m0, c21+m1, c22+m2, c23+m3
		m0, m1, m2, m3 = av3*bv0, av3*bv1, av3*bv2, av3*bv3
		c30, c31, c32, c33 = c30+m0, c31+m1, c32+m2, c33+m3
	}
	d0 = d0[j0 : j0+gemmNR]
	d0[0] += c00
	d0[1] += c01
	d0[2] += c02
	d0[3] += c03
	d1 = d1[j0 : j0+gemmNR]
	d1[0] += c10
	d1[1] += c11
	d1[2] += c12
	d1[3] += c13
	d2 = d2[j0 : j0+gemmNR]
	d2[0] += c20
	d2[1] += c21
	d2[2] += c22
	d2[3] += c23
	d3 = d3[j0 : j0+gemmNR]
	d3[0] += c30
	d3[1] += c31
	d3[2] += c32
	d3[3] += c33
}
