package tensor

import (
	"testing"

	"nessa/internal/parallel"
)

// TestGEMMParallelSerialBitIdentical verifies the banded parallel GEMM
// produces bit-identical output to the serial path for all three
// layouts: every dst row accumulates in the same inner order
// regardless of banding.
func TestGEMMParallelSerialBitIdentical(t *testing.T) {
	r := NewRNG(21)
	a := NewMatrix(130, 70)
	b := NewMatrix(70, 90)
	bt := NewMatrix(90, 70)
	a.FillNormal(r, 1)
	b.FillNormal(r, 1)
	bt.FillNormal(r, 1)

	type gemm struct {
		name       string
		run        func(dst *Matrix)
		rows, cols int
	}
	cases := []gemm{
		{"MatMul", func(d *Matrix) { MatMul(d, a, b) }, a.Rows, b.Cols},
		{"MatMulTransB", func(d *Matrix) { MatMulTransB(d, a, bt) }, a.Rows, bt.Rows},
		{"MatMulTransA", func(d *Matrix) { MatMulTransA(d, b, b) }, b.Cols, b.Cols},
	}
	for _, tc := range cases {
		serial := NewMatrix(tc.rows, tc.cols)
		par := NewMatrix(tc.rows, tc.cols)
		parallel.SetDefaultWorkers(1)
		tc.run(serial)
		parallel.SetDefaultWorkers(8)
		tc.run(par)
		parallel.SetDefaultWorkers(0)
		for i := range serial.Data {
			if serial.Data[i] != par.Data[i] {
				t.Fatalf("%s: element %d differs: %v (serial) vs %v (parallel)",
					tc.name, i, serial.Data[i], par.Data[i])
			}
		}
	}
}

// BenchmarkMatMulParallel measures the blocked GEMM on a selection-
// model-sized product at 1 worker vs all cores.
func BenchmarkMatMulParallel(b *testing.B) {
	r := NewRNG(4)
	x := NewMatrix(512, 256)
	w := NewMatrix(256, 256)
	dst := NewMatrix(512, 256)
	x.FillNormal(r, 1)
	w.FillNormal(r, 1)
	for _, workers := range []int{1, 0} { // 0 = NumCPU
		name := "workers=1"
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			parallel.SetDefaultWorkers(workers)
			defer parallel.SetDefaultWorkers(0)
			b.SetBytes(int64(x.Rows) * int64(x.Cols) * int64(w.Cols) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(dst, x, w)
			}
		})
	}
}
