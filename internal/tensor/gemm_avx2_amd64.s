// AVX2/FMA micro-kernels behind the fast-tier wrappers in
// gemm_fast.go. These are the *non-bit-exact* tier: every term is one
// VFMADD231PS — multiply and add fused with a single rounding — which
// is why they live behind the BitExact option instead of replacing the
// SSE kernels. Determinism still holds: each destination element owns
// one lane of one YMM accumulator that receives its terms in ascending
// k within the caller's KC block, an order fixed by data layout and
// tuning alone.
//
// Dispatch requires cpuFastTierOK (AVX2 + FMA3 + OS YMM state), so no
// instruction here runs on a machine that cannot execute it.

#include "textflag.h"

// func fmaMicro4x8(d0, d1, d2, d3, a0, a1, a2, a3, p *float32, kn int)
// Y0..Y3 hold one dst row each (columns j0..j0+7). Per k step: load
// the packed panel octet, broadcast each A value, fuse into the
// accumulators. Callers guarantee kn >= 1.
TEXT ·fmaMicro4x8(SB), NOSPLIT, $0-80
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ a0+32(FP), DX
	MOVQ a1+40(FP), SI
	MOVQ a2+48(FP), DI
	MOVQ a3+56(FP), R12
	MOVQ p+64(FP), BX
	MOVQ kn+72(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX

f48loop:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (DX)(AX*4), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS (SI)(AX*4), Y6
	VFMADD231PS  Y4, Y6, Y1
	VBROADCASTSS (DI)(AX*4), Y7
	VFMADD231PS  Y4, Y7, Y2
	VBROADCASTSS (R12)(AX*4), Y8
	VFMADD231PS  Y4, Y8, Y3
	ADDQ         $32, BX
	INCQ         AX
	CMPQ         AX, CX
	JLT          f48loop

	VMOVUPS (R8), Y4
	VADDPS  Y0, Y4, Y4
	VMOVUPS Y4, (R8)
	VMOVUPS (R9), Y5
	VADDPS  Y1, Y5, Y5
	VMOVUPS Y5, (R9)
	VMOVUPS (R10), Y6
	VADDPS  Y2, Y6, Y6
	VMOVUPS Y6, (R10)
	VMOVUPS (R11), Y7
	VADDPS  Y3, Y7, Y7
	VMOVUPS Y7, (R11)
	VZEROUPPER
	RET

// func fmaMicro1x8(d, a, p *float32, kn int)
// Row-tail variant: one dst row in Y0.
TEXT ·fmaMicro1x8(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), R8
	MOVQ a+8(FP), DX
	MOVQ p+16(FP), BX
	MOVQ kn+24(FP), CX
	VXORPS Y0, Y0, Y0
	XORQ AX, AX

f18loop:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (DX)(AX*4), Y5
	VFMADD231PS  Y4, Y5, Y0
	ADDQ         $32, BX
	INCQ         AX
	CMPQ         AX, CX
	JLT          f18loop

	VMOVUPS (R8), Y4
	VADDPS  Y0, Y4, Y4
	VMOVUPS Y4, (R8)
	VZEROUPPER
	RET

// func fmaMicroP4x8(d0, d1, d2, d3, pa, p *float32, kn int)
// Both-sides-packed variant: pa holds four A values per k step
// (4-interleaved), p holds the 8-wide panel.
TEXT ·fmaMicroP4x8(SB), NOSPLIT, $0-56
	MOVQ d0+0(FP), R8
	MOVQ d1+8(FP), R9
	MOVQ d2+16(FP), R10
	MOVQ d3+24(FP), R11
	MOVQ pa+32(FP), DX
	MOVQ p+40(FP), BX
	MOVQ kn+48(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

p48loop:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (DX), Y5
	VFMADD231PS  Y4, Y5, Y0
	VBROADCASTSS 4(DX), Y6
	VFMADD231PS  Y4, Y6, Y1
	VBROADCASTSS 8(DX), Y7
	VFMADD231PS  Y4, Y7, Y2
	VBROADCASTSS 12(DX), Y8
	VFMADD231PS  Y4, Y8, Y3
	ADDQ         $32, BX
	ADDQ         $16, DX
	DECQ         CX
	JNE          p48loop

	VMOVUPS (R8), Y4
	VADDPS  Y0, Y4, Y4
	VMOVUPS Y4, (R8)
	VMOVUPS (R9), Y5
	VADDPS  Y1, Y5, Y5
	VMOVUPS Y5, (R9)
	VMOVUPS (R10), Y6
	VADDPS  Y2, Y6, Y6
	VMOVUPS Y6, (R10)
	VMOVUPS (R11), Y7
	VADDPS  Y3, Y7, Y7
	VMOVUPS Y7, (R11)
	VZEROUPPER
	RET
