package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64) used everywhere randomness is needed so that every
// experiment in the repository is reproducible from a single seed.
// It intentionally does not use math/rand so that results cannot drift
// with Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	// Reject u1 == 0 so the log is finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormFloat32 returns a standard normal variate as a float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Split derives an independent generator from this one. Useful for
// giving each worker or dataset its own stream while preserving
// determinism from the root seed.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// State returns the generator's cursor. Together with SetState it lets
// checkpoints capture and replay a stream mid-sequence: a generator
// restored onto a saved state produces exactly the draws the original
// would have produced next.
func (r *RNG) State() uint64 { return r.state }

// SetState repositions the generator onto a previously captured cursor.
func (r *RNG) SetState(s uint64) { r.state = s }
