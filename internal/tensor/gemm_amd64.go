//go:build amd64

package tensor

// useAsmKernels routes the micro-kernels through the SSE
// implementations in gemm_amd64.s. SSE (MOVUPS/MULPS/ADDPS) is part of
// the amd64 baseline, so no runtime feature detection is needed. The
// vector kernels perform exactly one single-precision multiply and one
// add per term — never a fused multiply-add — so every output element
// is bit-identical to the portable Go kernels.
const useAsmKernels = true

//go:noescape
func sseMicro4x4(d0, d1, d2, d3, a0, a1, a2, a3, p *float32, kn int)

//go:noescape
func sseMicro1x4(d, a, p *float32, kn int)

//go:noescape
func sseMicroP4x4(d0, d1, d2, d3, pa, p *float32, kn int)

//go:noescape
func sseAxpy(dst, src *float32, alpha float32, n int)
