// GEMM block-size tuning. The kernels read three knobs:
//
//   - MC: rows per parallel band. Banding over destination rows never
//     changes what a band computes, so MC is legal on both tiers and
//     only moves cache locality and load balance. 0 means the pool's
//     automatic banding (a few bands per worker).
//   - KC: the fast tier's k-block depth. A KC block's register sums
//     are folded into dst once per block, which re-associates the
//     accumulation chain — allowed only on the non-bit-exact tier (the
//     bit-exact tier ignores KC and keeps one unbroken chain per
//     element). 0 means unblocked.
//   - NR: the fast tier's panel width. 8 selects the AVX2/FMA 8-wide
//     micro-kernels; 4 degrades the fast tier to the bit-exact 4-wide
//     kernels (useful as an autotuner candidate and as the forced
//     fallback where AVX2 is unavailable).
//
// The autotuner in internal/bench searches a small candidate grid with
// the bench harness and persists the winner as a TuningRecord
// (results/GEMM_tuning.json); processes load it at startup with
// LoadTuningRecord + ApplyTuningRecord. Tuning never changes bit-exact
// results — only the fast tier's numeric association — so a record is
// a pure performance artifact.
package tensor

import (
	"encoding/json"
	"fmt"
	"os"
)

// Tuning is one tier's GEMM block-size setting.
type Tuning struct {
	MC int `json:"mc"` // rows per parallel band; 0 = automatic
	KC int `json:"kc"` // fast-tier k-block depth; 0 = unblocked
	NR int `json:"nr"` // fast-tier panel width: 8 (AVX2/FMA) or 4 (bit-exact kernels)
}

// DefaultTuning is the untuned configuration: automatic banding, a
// 256-deep k block (8 KB of panel per block — comfortably L1-resident)
// and the 8-wide fast kernels.
func DefaultTuning() Tuning { return Tuning{MC: 0, KC: 256, NR: gemmNRFast} }

// tuning is the active setting. Written only through SetTuning, which
// must not race with running kernels (flip it between runs, like
// SetFastMath).
var tuning = DefaultTuning()

// Validate reports whether t is a usable tuning.
func (t Tuning) Validate() error {
	if t.MC < 0 {
		return fmt.Errorf("tensor: tuning MC %d must be >= 0", t.MC)
	}
	if t.KC < 0 {
		return fmt.Errorf("tensor: tuning KC %d must be >= 0", t.KC)
	}
	if t.NR != gemmNR && t.NR != gemmNRFast {
		return fmt.Errorf("tensor: tuning NR %d must be %d or %d", t.NR, gemmNR, gemmNRFast)
	}
	return nil
}

// SetTuning installs t as the active GEMM tuning. Like SetFastMath it
// must not be called concurrently with running kernels. Bit-exact
// results are unaffected by any valid tuning.
func SetTuning(t Tuning) error {
	if err := t.Validate(); err != nil {
		return err
	}
	tuning = t
	recomputeFastKernels()
	return nil
}

// CurrentTuning reports the active GEMM tuning.
func CurrentTuning() Tuning { return tuning }

// TuningRecord is the persisted autotuning artifact: the winning
// setting per kernel tier plus the environment it was measured on, so
// a record tuned on one machine is recognizably foreign on another.
type TuningRecord struct {
	GeneratedAt    string  `json:"generatedAt"`
	CPUs           int     `json:"cpus"`
	FastSupported  bool    `json:"fastSupported"`
	BitExact       Tuning  `json:"bitExact"`
	Fast           Tuning  `json:"fast"`
	BitExactGFLOPS float64 `json:"bitExactGFLOPS"`
	FastGFLOPS     float64 `json:"fastGFLOPS"`
}

// SaveTuningRecord writes r as indented JSON.
func SaveTuningRecord(path string, r *TuningRecord) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// LoadTuningRecord reads a record written by SaveTuningRecord.
func LoadTuningRecord(path string) (*TuningRecord, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &TuningRecord{}
	if err := json.Unmarshal(buf, r); err != nil {
		return nil, fmt.Errorf("tensor: bad tuning record %s: %w", path, err)
	}
	if err := r.BitExact.Validate(); err != nil {
		return nil, err
	}
	if err := r.Fast.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// ApplyTuningRecord installs the record's setting for the tier that is
// active right now (fast when SetFastMath(true) took effect, bit-exact
// otherwise) and reports which tuning was applied.
func ApplyTuningRecord(r *TuningRecord) (Tuning, error) {
	t := r.BitExact
	if fastMathOn && FastMathSupported() {
		t = r.Fast
	}
	if err := SetTuning(t); err != nil {
		return Tuning{}, err
	}
	return t, nil
}
