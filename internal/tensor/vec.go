package tensor

import "math"

// Dot returns the inner product of a and b. Lengths must match.
//
//nessa:hotpath
//nessa:inline
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	for i := range a {
		// Round each product before the add: `s += a*b` is a single
		// expression the compiler may fuse into an FMA, which would
		// break the amd64-vs-portable bit-identity contract.
		t := a[i] * b[i]
		s += t
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b.
//
//nessa:hotpath
func SqDist(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: SqDist length mismatch")
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		// Round the square before the add (no FMA; see Dot).
		dd := d * d
		s += dd
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	var s float64
	for _, x := range v {
		// Round the square before the add (no FMA; see Dot).
		xx := float64(x) * float64(x)
		s += xx
	}
	return float32(math.Sqrt(s))
}

// Argmax returns the index of the largest element of v, or -1 if v is
// empty. Ties resolve to the lowest index.
//
//nessa:hotpath
func Argmax(v []float32) int {
	if len(v) == 0 {
		return -1
	}
	// Carrying the running maximum in a register instead of re-reading
	// v[best] removes the only bounds check the prover cannot discharge
	// (best is data-dependent). Same comparisons, same tie-breaking.
	best, bestVal := 0, v[0]
	for i := 1; i < len(v); i++ {
		if v[i] > bestVal {
			best, bestVal = i, v[i]
		}
	}
	return best
}

// Softmax writes the softmax of logits into out (which may alias
// logits). It is numerically stabilized by max subtraction.
//
//nessa:hotpath
func Softmax(out, logits []float32) {
	if len(out) != len(logits) {
		panic("tensor: Softmax length mismatch")
	}
	maxv := logits[0]
	for _, x := range logits[1:] {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range logits {
		e := math.Exp(float64(x - maxv))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float32) float32 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return float32(s / float64(len(v)))
}
