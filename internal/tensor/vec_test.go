package tensor

import "testing"

func TestMean(t *testing.T) {
	if got := Mean([]float32{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestScale(t *testing.T) {
	m := FromRows([][]float32{{1, -2}, {3, 0}})
	m.Scale(-2)
	want := []float32{-2, 4, -6, 0}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("Scale result[%d] = %v, want %v", i, m.Data[i], v)
		}
	}
}

func TestCloneDeep(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	m.Set(0, 0, 99)
	if c.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestZero(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left non-zero elements")
		}
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows = %dx%d, want 0x0", m.Rows, m.Cols)
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative shape")
		}
	}()
	NewMatrix(-1, 3)
}

func TestAddRowVec(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	AddRowVec(m, []float32{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVec result = %v", m.Data)
	}
}

func TestAddRowVecLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	AddRowVec(NewMatrix(1, 2), []float32{1})
}

func TestDotLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestSqDistLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SqDist([]float32{1}, []float32{1, 2})
}

func TestSoftmaxLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Softmax(make([]float32, 2), make([]float32, 3))
}

func TestAXPYShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	AXPY(NewMatrix(1, 2), 1, NewMatrix(2, 1))
}
