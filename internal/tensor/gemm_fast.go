// Fast-tier GEMM cores: the 8-wide packing and compute paths selected
// when fastKernels is set (SetFastMath(true) on a CPU with AVX2+FMA
// and a tuning that keeps NR=8). These paths are *not* bit-exact with
// the default tier — the micro-kernels fuse each multiply-add into a
// single rounding and the accumulation over k may be blocked (the KC
// tuning knob) — but they are fully deterministic and worker-count
// invariant: bands cover whole destination rows, and within a row the
// (jp, k-block, k) iteration order is fixed by the data layout and the
// tuning record alone.
//
// The sparse skip bands and all scalar tails stay on the bit-exact
// kernels even when the fast tier is active: only the dense paneled
// cores diverge, which keeps the documented tolerance small and makes
// sparse-dominated products identical across tiers.
package tensor

// kcBlock resolves the fast tier's k-block depth for an inner
// dimension of k: the tuned KC clamped to [1, k], with 0 meaning
// unblocked.
//
//nessa:hotpath
//nessa:inline
func kcBlock(k int) int {
	kc := tuning.KC
	if kc <= 0 || kc > k {
		kc = k
	}
	return kc
}

// packColRange8 is the 8-wide form of packColRange:
// out[(jp·k + kk)·8 + c] = b[kk][jp·8+c].
//
//nessa:hotpath
func packColRange8(out []float32, b *Matrix, lo, hi int) {
	k := b.Rows
	for jp := lo; jp < hi; jp++ {
		j0 := jp * gemmNRFast
		o := jp * k * gemmNRFast
		for kk := 0; kk < k; kk++ {
			copy(out[o:o+gemmNRFast], b.Row(kk)[j0:j0+gemmNRFast])
			o += gemmNRFast
		}
	}
}

// packRowRange8 is the 8-wide form of packRowRange:
// out[(jp·k + kk)·8 + c] = b[jp·8+c][kk].
//
//nessa:hotpath
func packRowRange8(out []float32, b *Matrix, lo, hi int) {
	k := b.Cols
	for jp := lo; jp < hi; jp++ {
		j0 := jp * gemmNRFast
		// Named rows re-sliced to [:k] (the kk loop bound) and a
		// constant-length destination window keep the inner loop free
		// of per-element bounds checks.
		r0, r1, r2, r3 := b.Row(j0)[:k], b.Row(j0 + 1)[:k], b.Row(j0 + 2)[:k], b.Row(j0 + 3)[:k]
		r4, r5, r6, r7 := b.Row(j0 + 4)[:k], b.Row(j0 + 5)[:k], b.Row(j0 + 6)[:k], b.Row(j0 + 7)[:k]
		o := jp * k * gemmNRFast
		for kk := 0; kk < k; kk++ {
			d := out[o:][:gemmNRFast]
			d[0] = r0[kk]
			d[1] = r1[kk]
			d[2] = r2[kk]
			d[3] = r3[kk]
			d[4] = r4[kk]
			d[5] = r5[kk]
			d[6] = r6[kk]
			d[7] = r7[kk]
			o += gemmNRFast
		}
	}
}

// gemmPanelCoreFast computes the paneled columns [0, np·8) of dst rows
// [lo,hi) with the FMA micro-kernels. The k loop is blocked by KC with
// the block loop *outside* the row-tile loop, so one 8·KC panel block
// (8 KB at KC=256) stays L1-resident across every row tile of the
// band. Each dst element still receives its k blocks in ascending
// order — the reassociation relative to the bit-exact tier is only the
// per-block register folding and the FMA fusion.
//
//nessa:hotpath
func gemmPanelCoreFast(dst, a *Matrix, packed []float32, np, lo, hi int) {
	k := a.Cols
	kc := kcBlock(k)
	for jp := 0; jp < np; jp++ {
		base := jp * k * gemmNRFast
		j0 := jp * gemmNRFast
		for k0 := 0; k0 < k; k0 += kc {
			k1 := k0 + kc
			if k1 > k {
				k1 = k
			}
			panel := packed[base+k0*gemmNRFast : base+k1*gemmNRFast]
			i := lo
			for ; i+gemmMR <= hi; i += gemmMR {
				fmaKernel4x8(dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3), j0,
					a.Row(i)[k0:k1], a.Row(i + 1)[k0:k1], a.Row(i + 2)[k0:k1], a.Row(i + 3)[k0:k1], panel)
			}
			for ; i < hi; i++ {
				fmaKernel1x8(dst.Row(i), j0, a.Row(i)[k0:k1], panel)
			}
		}
	}
}

// transACoreFast is the fast-tier core of matMulTransABand: the band's
// A columns are packed per 4-row tile into the worker strip pa (full
// k), then each tile runs the both-sides-packed FMA kernel per panel
// and KC block.
//
//nessa:hotpath
func transACoreFast(dst, a *Matrix, packed, pa []float32, np, lo, iTileEnd int) {
	k := a.Rows
	kc := kcBlock(k)
	for i := lo; i < iTileEnd; i += gemmMR {
		packAPanel(pa, a, i, 0, k)
		for jp := 0; jp < np; jp++ {
			base := jp * k * gemmNRFast
			j0 := jp * gemmNRFast
			for k0 := 0; k0 < k; k0 += kc {
				k1 := k0 + kc
				if k1 > k {
					k1 = k
				}
				fmaKernelP4x8(dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3), j0,
					pa[k0*gemmMR:k1*gemmMR], packed[base+k0*gemmNRFast:base+k1*gemmNRFast])
			}
		}
	}
}

// transARowFast computes the paneled columns [0, np·8) of one dst row
// of aᵀ·b with exactly transACoreFast's per-element association — jp
// outer, ascending KC blocks, one FMA chain per block folded into dst —
// so a row produces identical bits whether banding lands it inside a
// 4-row tile or in a band's row tail. Without this the tile/tail split
// (which moves with the band boundaries, which move with the worker
// count under automatic MC) would make fast-tier results depend on the
// worker count. col is a worker-owned strip of at least k elements that
// receives the contiguous copy of a's column i.
//
//nessa:hotpath
func transARowFast(drow []float32, a *Matrix, packed, col []float32, np, i int) {
	k := a.Rows
	kc := kcBlock(k)
	// [:k] ties the strip length to the loop bound; the strided read
	// down a.Data stays checked (and waived): stride a.Cols defeats
	// the prover, and the gather runs once per k elements of FMA work.
	col = col[:k]
	for kk := 0; kk < k; kk++ {
		//nessa:bce-ok strided column gather, once per row: stride a.Cols defeats the prover
		col[kk] = a.Data[kk*a.Cols+i]
	}
	for jp := 0; jp < np; jp++ {
		base := jp * k * gemmNRFast
		j0 := jp * gemmNRFast
		for k0 := 0; k0 < k; k0 += kc {
			k1 := k0 + kc
			if k1 > k {
				k1 = k
			}
			fmaKernel1x8(drow, j0, col[k0:k1], packed[base+k0*gemmNRFast:base+k1*gemmNRFast])
		}
	}
}

// fmaKernel4x8 dispatches the 4×8 FMA micro-kernel. The slicing
// bounds-checks every pointer handed to assembly once per call.
// fastKernels implies hasFMAAsm, so there is no portable body: off
// amd64 (or without AVX2) this is never reached.
//
//nessa:hotpath
func fmaKernel4x8(d0, d1, d2, d3 []float32, j0 int, a0, a1, a2, a3, p []float32) {
	kn := len(a0)
	if kn == 0 {
		return
	}
	dv0 := d0[j0 : j0+gemmNRFast]
	dv1 := d1[j0 : j0+gemmNRFast]
	dv2 := d2[j0 : j0+gemmNRFast]
	dv3 := d3[j0 : j0+gemmNRFast]
	av1 := a1[:kn]
	av2 := a2[:kn]
	av3 := a3[:kn]
	pv := p[:gemmNRFast*kn]
	fmaMicro4x8(&dv0[0], &dv1[0], &dv2[0], &dv3[0],
		&a0[0], &av1[0], &av2[0], &av3[0], &pv[0], kn)
}

// fmaKernel1x8 dispatches the row-tail FMA micro-kernel.
//
//nessa:hotpath
func fmaKernel1x8(d []float32, j0 int, a, p []float32) {
	kn := len(a)
	if kn == 0 {
		return
	}
	dv := d[j0 : j0+gemmNRFast]
	pv := p[:gemmNRFast*kn]
	fmaMicro1x8(&dv[0], &a[0], &pv[0], kn)
}

// fmaKernelP4x8 dispatches the both-sides-packed FMA micro-kernel.
//
//nessa:hotpath
func fmaKernelP4x8(d0, d1, d2, d3 []float32, j0 int, pa, p []float32) {
	kn := len(pa) / gemmMR
	if kn == 0 {
		return
	}
	dv0 := d0[j0 : j0+gemmNRFast]
	dv1 := d1[j0 : j0+gemmNRFast]
	dv2 := d2[j0 : j0+gemmNRFast]
	dv3 := d3[j0 : j0+gemmNRFast]
	pav := pa[:gemmMR*kn]
	pv := p[:gemmNRFast*kn]
	fmaMicroP4x8(&dv0[0], &dv1[0], &dv2[0], &dv3[0], &pav[0], &pv[0], kn)
}
