package parallel

import (
	"sync"
	"sync/atomic"
)

// WorkerLocal is a table of lazily created per-worker state slots,
// keyed by the worker IDs the W-variant loops (ForChunksW, ForW) hand
// their bodies. Because a worker ID is never shared by two concurrent
// loop participants, Get(w) returns memory the calling participant
// owns exclusively for the duration of the loop — per-worker scratch
// without locks — and because IDs are recycled LIFO across loops, the
// same few slots are reused run after run, so steady-state loops
// allocate nothing.
//
// The slot table grows copy-on-write under a mutex and is published
// through an atomic pointer, so the hot Get path is one atomic load
// and two bounds checks. Values must not be retained past the loop
// body that fetched them: the next loop may hand the same ID — and
// therefore the same slot — to a different goroutine. The scratchlife
// analyzer enforces this ownership contract the same way it does for
// sync.Pool: a WorkerLocal-backed value that escapes its epoch
// (returned, stored, or sent) is flagged.
type WorkerLocal[T any] struct {
	newFn func() *T
	mu    sync.Mutex
	slots atomic.Pointer[[]*T]
}

// NewWorkerLocal returns a WorkerLocal whose slots are created on
// first use by newFn; a nil newFn means new(T).
func NewWorkerLocal[T any](newFn func() *T) *WorkerLocal[T] {
	return &WorkerLocal[T]{newFn: newFn}
}

// Get returns worker w's slot, creating it on first use. The fast path
// never allocates and never locks.
//
//nessa:hotpath
func (l *WorkerLocal[T]) Get(w int) *T {
	if p := l.slots.Load(); p != nil && w >= 0 && w < len(*p) {
		if v := (*p)[w]; v != nil {
			return v
		}
	}
	return l.getSlow(w)
}

func (l *WorkerLocal[T]) getSlow(w int) *T {
	if w < 0 {
		panic("parallel: WorkerLocal.Get called with a negative worker ID")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var cur []*T
	if p := l.slots.Load(); p != nil {
		cur = *p
	}
	if w < len(cur) && cur[w] != nil {
		return cur[w]
	}
	size := len(cur)
	if size <= w {
		size = w + 1
	}
	// Copy-on-write: concurrent Gets keep reading the old table while
	// the grown one is built, then the atomic store publishes it.
	grown := make([]*T, size)
	copy(grown, cur)
	var v *T
	if l.newFn != nil {
		v = l.newFn()
	} else {
		v = new(T)
	}
	grown[w] = v
	l.slots.Store(&grown)
	return v
}

// Range calls f for every slot created so far, in worker-ID order.
// It must not run concurrently with loops using this WorkerLocal: it
// is for post-loop reduction, test inspection, and resets.
func (l *WorkerLocal[T]) Range(f func(w int, v *T)) {
	l.mu.Lock()
	p := l.slots.Load()
	l.mu.Unlock()
	if p == nil {
		return
	}
	for w, v := range *p {
		if v != nil {
			f(w, v)
		}
	}
}
