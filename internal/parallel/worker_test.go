package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestWorkerIDsUniqueAmongConcurrentParticipants is the worker-ID
// contract: no two loop participants that execute concurrently —
// including participants of loops nested inside other loops' bodies —
// ever hold the same ID. Each body claims its ID in a CAS-guarded
// table for the duration of one item; a failed claim means two live
// participants shared an ID.
func TestWorkerIDsUniqueAmongConcurrentParticipants(t *testing.T) {
	p := New(4)
	var claimed [1024]atomic.Int32
	claim := func(w int) {
		if w < 0 || w >= len(claimed) {
			t.Errorf("worker ID %d out of the expected dense range", w)
			return
		}
		if !claimed[w].CompareAndSwap(0, 1) {
			t.Errorf("worker ID %d held by two concurrent participants", w)
		}
	}
	release := func(w int) { claimed[w].Store(0) }

	for iter := 0; iter < 20; iter++ {
		p.ForW(64, 4, func(w, lo, hi int) {
			claim(w)
			// Nested dispatch from inside a participant: the inner
			// loop's IDs must be disjoint from every outer holder's.
			p.ForChunksW(2048, func(iw, c, ilo, ihi int) {
				if iw == w {
					t.Errorf("nested participant reused enclosing worker ID %d", w)
				}
				claim(iw)
				release(iw)
			})
			release(w)
		})
	}
}

// TestWorkerIDsReusedAcrossLoops pins the warm-arena property: once a
// workload shape has run, repeating it draws the same IDs from the
// free list instead of minting fresh ones, so WorkerLocal slots keyed
// on the IDs stay warm.
func TestWorkerIDsReusedAcrossLoops(t *testing.T) {
	p := New(4)
	for i := 0; i < 3; i++ { // warm the ID pool and helper set
		p.ForChunksW(8192, func(w, c, lo, hi int) {})
	}
	high := MaxWorkerID()
	for i := 0; i < 50; i++ {
		p.ForChunksW(8192, func(w, c, lo, hi int) {
			if w >= high {
				t.Errorf("loop %d minted fresh worker ID %d instead of reusing (< %d)", i, w, high)
			}
		})
	}
	if got := MaxWorkerID(); got != high {
		t.Fatalf("MaxWorkerID grew %d -> %d across identical loops; IDs are not being recycled", high, got)
	}
}

// TestWorkerLocalSlotsAreStable verifies Get returns the same slot for
// the same ID every time, creates independent slots per ID, and that
// Range visits exactly the created slots.
func TestWorkerLocalSlotsAreStable(t *testing.T) {
	type scratch struct{ buf []float64 }
	created := 0
	wl := NewWorkerLocal(func() *scratch {
		created++
		return &scratch{buf: make([]float64, 8)}
	})
	a, b := wl.Get(0), wl.Get(3)
	if a == b {
		t.Fatal("distinct worker IDs share a slot")
	}
	for i := 0; i < 100; i++ {
		if wl.Get(0) != a || wl.Get(3) != b {
			t.Fatal("WorkerLocal slot moved between Gets")
		}
	}
	if created != 2 {
		t.Fatalf("newFn ran %d times, want 2", created)
	}
	seen := map[int]bool{}
	wl.Range(func(w int, v *scratch) { seen[w] = true })
	if !seen[0] || !seen[3] || len(seen) != 2 {
		t.Fatalf("Range visited %v, want exactly {0, 3}", seen)
	}
	if nilNew := NewWorkerLocal[int](nil).Get(2); nilNew == nil {
		t.Fatal("nil newFn must fall back to new(T)")
	}
}

// TestWorkerLocalConcurrentGrow hammers the copy-on-write grow path
// from many goroutines (meaningful under -race): every goroutine must
// end up with its own slot and no Get may observe a torn table.
func TestWorkerLocalConcurrentGrow(t *testing.T) {
	wl := NewWorkerLocal[atomic.Int64](nil)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				wl.Get(id).Add(1)
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	wl.Range(func(w int, v *atomic.Int64) { total += v.Load() })
	if total != 16*200 {
		t.Fatalf("counted %d increments, want %d", total, 16*200)
	}
}

// TestSetWorkersMidStream resizes the pool concurrently with running
// loops (the -race run is the point): every index must still be
// visited exactly once per loop, at any moment of the resize.
func TestSetWorkersMidStream(t *testing.T) {
	p := New(4)
	stop := make(chan struct{})
	var resizes sync.WaitGroup
	resizes.Add(1)
	go func() {
		defer resizes.Done()
		w := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.SetWorkers(w%8 + 1)
			w++
		}
	}()
	const n = 4096
	counts := make([]atomic.Int32, n)
	for iter := 0; iter < 50; iter++ {
		for i := range counts {
			counts[i].Store(0)
		}
		p.ForChunksW(n, func(w, c, lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("iter %d: index %d visited %d times during live resize", iter, i, got)
			}
		}
	}
	close(stop)
	resizes.Wait()
}

// TestDispatchSteadyStateAllocs locks in the zero-allocation dispatch:
// once the helper set, job free list, and worker IDs are warm, a
// parallel loop with a pre-bound body allocates nothing — the property
// the training epoch's 0 allocs/epoch budget rests on.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	p := New(4)
	sink := make([]int64, Chunks(1<<15))
	body := func(w, c, lo, hi int) { sink[c] = int64(hi - lo) }
	loop := func() { p.ForChunksW(1<<15, body) }
	for i := 0; i < 3; i++ {
		loop() // spawn helpers, fill the job and ID free lists
	}
	if avg := testing.AllocsPerRun(100, loop); avg > 0 {
		t.Fatalf("steady-state ForChunksW allocates %.2f times per dispatch, want 0", avg)
	}
	bodyB := func(w, lo, hi int) { sink[0] = int64(hi - lo) }
	loopB := func() { p.ForW(1<<15, 512, bodyB) }
	loopB()
	if avg := testing.AllocsPerRun(100, loopB); avg > 0 {
		t.Fatalf("steady-state ForW allocates %.2f times per dispatch, want 0", avg)
	}
}
