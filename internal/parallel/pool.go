// Package parallel is the shared worker-pool execution layer behind
// every multicore hot path in the repository: facility-location
// gain/absorb scans, per-class CRAIG fan-out, the blocked GEMM
// kernels in internal/tensor, and the chunked evaluation passes in
// internal/trainer.
//
// Design goals, in order:
//
//  1. Determinism. Results must be bit-identical run-to-run AND across
//     worker counts, so a laptop and a 64-core server select the same
//     subsets. Reductions therefore run over a fixed chunk grid that
//     depends only on the problem size (never on the worker count or
//     on goroutine scheduling), and partial results are combined in
//     ascending chunk order.
//  2. Zero steady-state allocation. Loop execution reuses persistent
//     helper goroutines (parked on per-helper channels), pooled job
//     descriptors, and a free list of worker IDs, so a dispatch
//     allocates nothing once warm. Callers that also need allocation-
//     free bodies pre-bind their closures to pooled state and key
//     per-worker scratch off the WorkerLocal arena type.
//  3. Zero-cost serial mode. With one worker every loop runs inline on
//     the calling goroutine — no channels, no goroutines, no atomics —
//     so Workers=1 reproduces a purely serial execution.
//  4. Nestability. PerClass dispatches classes to the pool while each
//     class's facility kernel also uses the pool. A dispatcher only
//     hands work to helpers that are already idle and otherwise runs
//     the loop itself, so nesting can never deadlock: the inner loop
//     always makes progress on the calling goroutine.
//
// # Worker identity
//
// The W-suffixed loop variants (ForChunksW, ForW) pass each body a
// small dense worker ID that is unique among all *concurrently
// executing* loop participants — including participants of nested
// loops — and is recycled through a LIFO free list when a participant
// finishes. Consecutive loops therefore see the same few IDs over and
// over, which keeps WorkerLocal scratch arenas warm, while a nested
// loop's participants always draw IDs disjoint from every enclosing
// loop's. IDs say nothing about *which* chunk a worker runs (that is
// scheduling, which must never affect results); they exist solely so
// bodies can own per-worker scratch without locking.
//
// The pool mirrors the paper's FPGA compute units: the selection kernel
// of §3.1 evaluates candidate distances on parallel lanes and merges
// them through a fixed adder tree — the chunk grid plays the role of
// the lanes and the ordered reduction the role of the tree.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// reduceChunk is the fixed chunk size of the deterministic reduction
// grid. It depends only on this constant and the problem size — never
// on the worker count — so chunked sums associate identically no
// matter how many goroutines execute them.
const reduceChunk = 512

// Pool executes chunked data-parallel loops on up to Workers
// participants (the calling goroutine plus idle persistent helpers).
// The zero value is not useful; use New or Default. A Pool is safe for
// concurrent use; SetWorkers may be called at any time and only
// affects scheduling, never results.
type Pool struct {
	workers atomic.Int32
}

// New returns a pool running at most workers participants per loop.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	p := &Pool{}
	p.SetWorkers(workers)
	return p
}

var defaultPool = New(0)

// Default returns the process-wide shared pool used by the tensor and
// selection packages. Its worker count is a scheduling knob only:
// changing it never changes any computed result.
func Default() *Pool { return defaultPool }

// SetDefaultWorkers resizes the shared pool (0 → runtime.NumCPU()).
func SetDefaultWorkers(n int) { defaultPool.SetWorkers(n) }

// SetWorkers resizes the pool (0 or negative → runtime.NumCPU()).
func (p *Pool) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p.workers.Store(int32(n))
}

// Workers reports the current worker cap.
func (p *Pool) Workers() int { return int(p.workers.Load()) }

// Chunks returns the number of fixed-size reduction chunks covering
// [0, n). It is a pure function of n, so a caller can pre-size a
// partial-result slice that stays valid for any worker count.
func Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + reduceChunk - 1) / reduceChunk
}

// ChunkBounds returns the half-open range [lo, hi) of chunk c.
func ChunkBounds(c, n int) (lo, hi int) {
	lo = c * reduceChunk
	hi = lo + reduceChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ---------------------------------------------------------------------
// Worker identity
// ---------------------------------------------------------------------

// workerIDs hands out the dense per-participant IDs of the W-variant
// loops. The free list is LIFO so the IDs a finished loop releases are
// the first ones the next loop acquires — per-worker scratch keyed on
// the ID stays warm across loops. Only concurrent participants (which
// includes nesting) push the high-water mark up.
var workerIDs struct {
	mu   sync.Mutex
	free []int
	next int
}

func acquireWorkerID() int {
	ids := &workerIDs
	ids.mu.Lock()
	var id int
	if n := len(ids.free); n > 0 {
		id = ids.free[n-1]
		ids.free = ids.free[:n-1]
	} else {
		id = ids.next
		ids.next++
	}
	ids.mu.Unlock()
	return id
}

func releaseWorkerID(id int) {
	ids := &workerIDs
	ids.mu.Lock()
	ids.free = append(ids.free, id)
	ids.mu.Unlock()
}

// MaxWorkerID reports the number of distinct worker IDs ever handed
// out — an upper bound for pre-sizing per-worker state. IDs are dense:
// every ID ever seen is < MaxWorkerID().
func MaxWorkerID() int {
	workerIDs.mu.Lock()
	n := workerIDs.next
	workerIDs.mu.Unlock()
	return n
}

// ---------------------------------------------------------------------
// Job descriptors and persistent helpers
// ---------------------------------------------------------------------

type jobKind uint8

const (
	jobChunks jobKind = iota
	jobChunksW
	jobBands
	jobBandsW
	jobTasks
)

// loopJob describes one dispatched loop. Jobs are recycled through a
// free list, so steady-state dispatch allocates nothing; every
// reference-carrying field is cleared on release.
type loopJob struct {
	kind  jobKind
	n     int // item count: chunks, bands, or tasks
	total int // original range length for bound computation
	grain int // band width for jobBands/jobBandsW

	chunk  func(c, lo, hi int)
	chunkW func(w, c, lo, hi int)
	band   func(lo, hi int)
	bandW  func(w, lo, hi int)
	tasks  []func()

	next atomic.Int64
	wg   sync.WaitGroup
}

// needsID reports whether bodies of this job receive a worker ID.
func (j *loopJob) needsID() bool { return j.kind == jobChunksW || j.kind == jobBandsW }

// work drains the job's item counter on the calling goroutine. w is
// the participant's worker ID (ignored by the ID-less kinds).
func (j *loopJob) work(w int) {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		switch j.kind {
		case jobChunks:
			lo, hi := ChunkBounds(i, j.total)
			j.chunk(i, lo, hi)
		case jobChunksW:
			lo, hi := ChunkBounds(i, j.total)
			j.chunkW(w, i, lo, hi)
		case jobBands:
			lo, hi := bandBounds(i, j.grain, j.total)
			j.band(lo, hi)
		case jobBandsW:
			lo, hi := bandBounds(i, j.grain, j.total)
			j.bandW(w, lo, hi)
		case jobTasks:
			j.tasks[i]()
		}
	}
}

func bandBounds(b, grain, n int) (lo, hi int) {
	lo = b * grain
	hi = lo + grain
	if hi > n {
		hi = n
	}
	return lo, hi
}

var jobFree struct {
	mu   sync.Mutex
	list []*loopJob
}

func getJob() *loopJob {
	jf := &jobFree
	jf.mu.Lock()
	var j *loopJob
	if n := len(jf.list); n > 0 {
		j = jf.list[n-1]
		jf.list = jf.list[:n-1]
	}
	jf.mu.Unlock()
	if j == nil {
		j = &loopJob{}
	}
	return j
}

func putJob(j *loopJob) {
	j.chunk, j.chunkW, j.band, j.bandW, j.tasks = nil, nil, nil, nil, nil
	j.next.Store(0)
	jf := &jobFree
	jf.mu.Lock()
	jf.list = append(jf.list, j)
	jf.mu.Unlock()
}

// helper is one persistent worker goroutine, parked on its own
// channel. Helpers are shared process-wide across all Pools: a helper
// is a generic loop executor, and the per-dispatch worker cap comes
// from the dispatching pool.
type helper struct {
	ch chan *loopJob
}

// maxHelpers bounds the persistent helper goroutines ever spawned — a
// backstop against pathological nesting depth, far above any real
// demand (demand is nesting depth × workers). When the cap is hit a
// dispatch simply proceeds with fewer helpers; the dispatcher itself
// always runs the loop, so progress never depends on helper supply.
const maxHelpers = 256

var helperPool struct {
	mu      sync.Mutex
	idle    []*helper
	spawned int
}

// engageHelpers hands j to up to want idle helpers, lazily spawning
// new ones while under the cap. Each engaged helper is registered on
// j.wg before the job is sent, so the dispatcher's Wait observes every
// participant. Sends never block: only parked helpers are engaged and
// their channels hold one job.
func engageHelpers(j *loopJob, want int) {
	if want <= 0 {
		return
	}
	hp := &helperPool
	hp.mu.Lock()
	for e := 0; e < want; e++ {
		var h *helper
		if n := len(hp.idle); n > 0 {
			h = hp.idle[n-1]
			hp.idle = hp.idle[:n-1]
		} else if hp.spawned < maxHelpers {
			h = &helper{ch: make(chan *loopJob, 1)}
			hp.spawned++
			go h.loop()
		} else {
			break
		}
		j.wg.Add(1)
		h.ch <- j
	}
	hp.mu.Unlock()
}

// loop is a helper's life: receive a job, drain it under a freshly
// acquired worker ID, sign off, park again.
func (h *helper) loop() {
	for j := range h.ch {
		if j.needsID() {
			w := acquireWorkerID()
			j.work(w)
			releaseWorkerID(w)
		} else {
			j.work(-1)
		}
		j.wg.Done() // last touch: the dispatcher may recycle j now
		hp := &helperPool
		hp.mu.Lock()
		hp.idle = append(hp.idle, h)
		hp.mu.Unlock()
	}
}

// runJob fans j out to w-1 idle helpers, participates in the loop on
// the calling goroutine, waits for every engaged helper, and recycles
// the descriptor.
func (p *Pool) runJob(j *loopJob, w int) {
	engageHelpers(j, w-1)
	if j.needsID() {
		id := acquireWorkerID()
		j.work(id)
		releaseWorkerID(id)
	} else {
		j.work(-1)
	}
	j.wg.Wait()
	putJob(j)
}

// ---------------------------------------------------------------------
// Loop API
// ---------------------------------------------------------------------

// ForChunks runs body(c, lo, hi) for every chunk of the fixed grid over
// [0, n), on up to Workers participants. Each chunk executes exactly
// once; chunks touched by different participants are disjoint, so
// bodies writing to per-index or per-chunk slots need no locking.
// Bodies must not assume any execution order.
func (p *Pool) ForChunks(n int, body func(c, lo, hi int)) {
	nchunks := Chunks(n)
	if nchunks == 0 {
		return
	}
	w := p.Workers()
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		for c := 0; c < nchunks; c++ {
			lo, hi := ChunkBounds(c, n)
			body(c, lo, hi)
		}
		return
	}
	j := getJob()
	j.kind, j.n, j.total, j.chunk = jobChunks, nchunks, n, body
	p.runJob(j, w)
}

// ForChunksW is ForChunks with worker identity: body additionally
// receives the participant's worker ID (see the package comment),
// stable for the duration of the loop and safe to key WorkerLocal
// scratch on. The ID carries no information about which chunks a
// participant runs — results must never depend on it.
func (p *Pool) ForChunksW(n int, body func(w, c, lo, hi int)) {
	nchunks := Chunks(n)
	if nchunks == 0 {
		return
	}
	w := p.Workers()
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		id := acquireWorkerID()
		for c := 0; c < nchunks; c++ {
			lo, hi := ChunkBounds(c, n)
			body(id, c, lo, hi)
		}
		releaseWorkerID(id)
		return
	}
	j := getJob()
	j.kind, j.n, j.total, j.chunkW = jobChunksW, nchunks, n, body
	p.runJob(j, w)
}

// SumChunks evaluates body over every chunk of the fixed grid and
// returns the partial sums combined in ascending chunk order. Because
// the grid and the combination order are independent of the worker
// count, the result is bit-identical for any Workers setting.
func (p *Pool) SumChunks(n int, body func(lo, hi int) float64) float64 {
	nchunks := Chunks(n)
	switch nchunks {
	case 0:
		return 0
	case 1:
		return body(0, n)
	}
	partial := make([]float64, nchunks)
	p.ForChunks(n, func(c, lo, hi int) {
		partial[c] = body(lo, hi)
	})
	var sum float64
	for _, s := range partial {
		sum += s
	}
	return sum
}

// For runs body over [0, n) split into contiguous grain-sized bands on
// up to Workers participants. Unlike ForChunks the banding MAY depend
// on the worker count, so For is only for bodies whose results are
// independent of how the range is split — e.g. loops writing each
// index exactly once. grain <= 0 picks a band size automatically.
// With one worker (or a single band) body(0, n) runs inline.
func (p *Pool) For(n, grain int, body func(lo, hi int)) {
	w, bands, grain := p.bandPlan(n, grain)
	if n <= 0 {
		return
	}
	if w <= 1 || bands <= 1 {
		body(0, n)
		return
	}
	j := getJob()
	j.kind, j.n, j.total, j.grain, j.band = jobBands, bands, n, grain, body
	p.runJob(j, w)
}

// ForW is For with worker identity, mirroring ForChunksW: body
// receives the participant's worker ID ahead of its band bounds. The
// single-band inline path still acquires an ID, so bodies can key
// scratch on it unconditionally.
func (p *Pool) ForW(n, grain int, body func(w, lo, hi int)) {
	w, bands, grain := p.bandPlan(n, grain)
	if n <= 0 {
		return
	}
	if w <= 1 || bands <= 1 {
		id := acquireWorkerID()
		body(id, 0, n)
		releaseWorkerID(id)
		return
	}
	j := getJob()
	j.kind, j.n, j.total, j.grain, j.bandW = jobBandsW, bands, n, grain, body
	p.runJob(j, w)
}

// bandPlan resolves the participant count, band count, and band width
// of a For/ForW dispatch.
func (p *Pool) bandPlan(n, grain int) (w, bands, g int) {
	if n <= 0 {
		return 0, 0, 1
	}
	w = p.Workers()
	if grain <= 0 {
		// Aim for a few bands per worker to absorb imbalance.
		grain = n / (w * 4)
		if grain < 1 {
			grain = 1
		}
	}
	bands = (n + grain - 1) / grain
	if w > bands {
		w = bands
	}
	return w, bands, grain
}

// Run executes every task, at most Workers at a time. Task index order
// of completion is unspecified; with one worker tasks run inline in
// slice order. Tasks writing results should write to distinct slots of
// a caller-owned slice so the merge order is the caller's.
func (p *Pool) Run(tasks []func()) {
	n := len(tasks)
	if n == 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	j := getJob()
	j.kind, j.n, j.total, j.tasks = jobTasks, n, n, tasks
	p.runJob(j, w)
}
