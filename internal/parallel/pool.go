// Package parallel is the shared worker-pool execution layer behind
// every multicore hot path in the repository: facility-location
// gain/absorb scans, per-class CRAIG fan-out, and the blocked GEMM
// kernels in internal/tensor.
//
// Design goals, in order:
//
//  1. Determinism. Results must be bit-identical run-to-run AND across
//     worker counts, so a laptop and a 64-core server select the same
//     subsets. Reductions therefore run over a fixed chunk grid that
//     depends only on the problem size (never on the worker count or
//     on goroutine scheduling), and partial results are combined in
//     ascending chunk order.
//  2. Zero-cost serial mode. With one worker every loop runs inline on
//     the calling goroutine — no channels, no goroutines, no atomics —
//     so Workers=1 reproduces a purely serial execution.
//  3. Nestability. PerClass dispatches classes to the pool while each
//     class's facility kernel also uses the pool; every call spawns its
//     own bounded set of goroutines, so nesting cannot deadlock (at
//     worst it briefly oversubscribes, which the Go scheduler absorbs).
//
// The pool mirrors the paper's FPGA compute units: the selection kernel
// of §3.1 evaluates candidate distances on parallel lanes and merges
// them through a fixed adder tree — the chunk grid plays the role of
// the lanes and the ordered reduction the role of the tree.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// reduceChunk is the fixed chunk size of the deterministic reduction
// grid. It depends only on this constant and the problem size — never
// on the worker count — so chunked sums associate identically no
// matter how many goroutines execute them.
const reduceChunk = 512

// Pool executes chunked data-parallel loops on up to Workers
// goroutines. The zero value is not useful; use New or Default. A Pool
// is safe for concurrent use; SetWorkers may be called at any time and
// only affects scheduling, never results.
type Pool struct {
	workers atomic.Int32
}

// New returns a pool running at most workers goroutines per loop.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	p := &Pool{}
	p.SetWorkers(workers)
	return p
}

var defaultPool = New(0)

// Default returns the process-wide shared pool used by the tensor and
// selection packages. Its worker count is a scheduling knob only:
// changing it never changes any computed result.
func Default() *Pool { return defaultPool }

// SetDefaultWorkers resizes the shared pool (0 → runtime.NumCPU()).
func SetDefaultWorkers(n int) { defaultPool.SetWorkers(n) }

// SetWorkers resizes the pool (0 or negative → runtime.NumCPU()).
func (p *Pool) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p.workers.Store(int32(n))
}

// Workers reports the current worker cap.
func (p *Pool) Workers() int { return int(p.workers.Load()) }

// Chunks returns the number of fixed-size reduction chunks covering
// [0, n). It is a pure function of n, so a caller can pre-size a
// partial-result slice that stays valid for any worker count.
func Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + reduceChunk - 1) / reduceChunk
}

// ChunkBounds returns the half-open range [lo, hi) of chunk c.
func ChunkBounds(c, n int) (lo, hi int) {
	lo = c * reduceChunk
	hi = lo + reduceChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForChunks runs body(c, lo, hi) for every chunk of the fixed grid over
// [0, n), on up to Workers goroutines. Each chunk executes exactly
// once; chunks touched by different goroutines are disjoint, so bodies
// writing to per-index or per-chunk slots need no locking. Bodies must
// not assume any execution order.
func (p *Pool) ForChunks(n int, body func(c, lo, hi int)) {
	nchunks := Chunks(n)
	if nchunks == 0 {
		return
	}
	w := p.Workers()
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		for c := 0; c < nchunks; c++ {
			lo, hi := ChunkBounds(c, n)
			body(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo, hi := ChunkBounds(c, n)
				body(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// SumChunks evaluates body over every chunk of the fixed grid and
// returns the partial sums combined in ascending chunk order. Because
// the grid and the combination order are independent of the worker
// count, the result is bit-identical for any Workers setting.
func (p *Pool) SumChunks(n int, body func(lo, hi int) float64) float64 {
	nchunks := Chunks(n)
	switch nchunks {
	case 0:
		return 0
	case 1:
		return body(0, n)
	}
	partial := make([]float64, nchunks)
	p.ForChunks(n, func(c, lo, hi int) {
		partial[c] = body(lo, hi)
	})
	var sum float64
	for _, s := range partial {
		sum += s
	}
	return sum
}

// For runs body over [0, n) split into contiguous grain-sized bands on
// up to Workers goroutines. Unlike ForChunks the banding MAY depend on
// the worker count, so For is only for bodies whose results are
// independent of how the range is split — e.g. loops writing each
// index exactly once. grain <= 0 picks a band size automatically.
// With one worker (or a single band) body(0, n) runs inline.
func (p *Pool) For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if grain <= 0 {
		// Aim for a few bands per worker to absorb imbalance.
		grain = n / (w * 4)
		if grain < 1 {
			grain = 1
		}
	}
	bands := (n + grain - 1) / grain
	if w <= 1 || bands <= 1 {
		body(0, n)
		return
	}
	if w > bands {
		w = bands
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= bands {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Run executes every task, at most Workers at a time. Task index order
// of completion is unspecified; with one worker tasks run inline in
// slice order. Tasks writing results should write to distinct slots of
// a caller-owned slice so the merge order is the caller's.
func (p *Pool) Run(tasks []func()) {
	n := len(tasks)
	if n == 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tasks[i]()
			}
		}()
	}
	wg.Wait()
}
