package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForChunksCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, reduceChunk - 1, reduceChunk, reduceChunk + 1, 5000} {
		for _, w := range []int{1, 2, 7} {
			p := New(w)
			hits := make([]int32, n)
			p.ForChunks(n, func(c, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestSumChunksBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// The sum of ill-conditioned float terms depends on association
	// order; the fixed chunk grid must make it identical for every
	// worker count.
	n := 10_000
	vals := make([]float64, n)
	x := 1.0
	for i := range vals {
		x = x*1.0000001 + 1e-7
		vals[i] = x * float64(1+i%17)
	}
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	want := New(1).SumChunks(n, body)
	for _, w := range []int{2, 3, 4, runtime.NumCPU()} {
		if got := New(w).SumChunks(n, body); got != want {
			t.Fatalf("workers=%d: sum %v != serial %v", w, got, want)
		}
	}
}

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 1000} {
		for _, w := range []int{1, 3, 8} {
			p := New(w)
			hits := make([]int32, n)
			p.For(n, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	for _, w := range []int{1, 2, 5} {
		p := New(w)
		n := 40
		done := make([]int32, n)
		tasks := make([]func(), n)
		for i := range tasks {
			i := i
			tasks[i] = func() { atomic.AddInt32(&done[i], 1) }
		}
		p.Run(tasks)
		for i, d := range done {
			if d != 1 {
				t.Fatalf("w=%d: task %d ran %d times", w, i, d)
			}
		}
	}
}

func TestNestedPoolUseDoesNotDeadlock(t *testing.T) {
	p := New(4)
	var total atomic.Int64
	outer := make([]func(), 8)
	for i := range outer {
		outer[i] = func() {
			p.For(100, 0, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}
	}
	p.Run(outer)
	if total.Load() != 800 {
		t.Fatalf("nested total = %d, want 800", total.Load())
	}
}

func TestWorkersDefaultsToNumCPU(t *testing.T) {
	if got := New(0).Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := New(-3).Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	p := New(6)
	if got := p.Workers(); got != 6 {
		t.Fatalf("Workers() = %d, want 6", got)
	}
	p.SetWorkers(2)
	if got := p.Workers(); got != 2 {
		t.Fatalf("after SetWorkers(2): %d", got)
	}
}

func TestChunkBoundsPartitionRange(t *testing.T) {
	n := 3*reduceChunk + 17
	prev := 0
	for c := 0; c < Chunks(n); c++ {
		lo, hi := ChunkBounds(c, n)
		if lo != prev || hi <= lo {
			t.Fatalf("chunk %d bounds [%d,%d) not contiguous from %d", c, lo, hi, prev)
		}
		prev = hi
	}
	if prev != n {
		t.Fatalf("chunks cover [0,%d), want [0,%d)", prev, n)
	}
}
