//go:build race

package parallel

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates on its own, so alloc regressions are only
// measurable in non-race runs.
const raceEnabled = true
