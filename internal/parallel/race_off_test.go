//go:build !race

package parallel

const raceEnabled = false
