// Package core implements NeSSA itself: the SmartSSD+GPU training
// controller of paper §3. Each epoch it
//
//  1. runs the selection model (an int8-quantized snapshot of the
//     target model) over the remaining candidate pool near storage,
//  2. selects the most important subset by per-class facility-location
//     maximization over last-layer gradient embeddings (§3.1, Eq. 5),
//     optionally chunked to fit the FPGA's on-chip memory (§3.2.3),
//  3. ships only the subset to the GPU and trains the target model on
//     it with medoid-weighted SGD,
//  4. feeds the newly quantized weights and observed losses back to
//     the selection model (§3.2.1), drops learned samples from the
//     candidate pool (§3.2.2), and shrinks the subset when the loss
//     reduction rate decays (contribution 4).
//
// The controller runs real training (accuracy results are measured,
// not modelled); when a smartssd.Device is attached it also charges
// every byte the pipeline moves, so the same run yields the data-
// movement accounting of §4.4.
package core

import (
	"fmt"
	"runtime"
	"time"

	"nessa/internal/data"
	"nessa/internal/faults"
	"nessa/internal/nn"
	"nessa/internal/parallel"
	"nessa/internal/quant"
	"nessa/internal/selection"
	"nessa/internal/selection/streaming"
	"nessa/internal/smartssd"
	"nessa/internal/tensor"
	"nessa/internal/trainer"
)

// Selector names the subset-selection algorithm driving the loop.
type Selector string

const (
	// SelectorFacility is NeSSA's facility-location selection (and
	// CRAIG's, which differs by feedback staleness — see SelectEvery).
	SelectorFacility Selector = "facility"
	// SelectorKCenters is the Sener–Savarese k-Centers baseline.
	SelectorKCenters Selector = "kcenters"
	// SelectorRandom is the uniform random baseline.
	SelectorRandom Selector = "random"
	// SelectorTopLoss is the loss-based importance heuristic ("biggest
	// losers", §2.1's training-dynamics line of prior work).
	SelectorTopLoss Selector = "toploss"
)

// Options configures a NeSSA (or baseline) run. The zero value is not
// valid; start from DefaultOptions.
type Options struct {
	Selector   Selector
	SubsetFrac float64 // initial |S|/|V|

	// Feedback (§3.2.1). When true the selection model is the int8-
	// quantized snapshot of the target model, refreshed every
	// SelectEvery epochs. When false selection still uses the target
	// model's weights directly (an idealized, un-quantized feedback).
	QuantFeedback bool
	// SelectEvery is the number of epochs between selection-model
	// refreshes + re-selections. NeSSA's near-storage feedback loop
	// affords 1; the CPU-side CRAIG baseline re-selects every 5 epochs
	// because staging data to the host each epoch is prohibitive.
	SelectEvery int

	// Subset biasing (§3.2.2).
	SubsetBias    bool
	BiasWindow    int     // epochs of loss history considered (paper: 5)
	BiasEvery     int     // drop marked samples every this many epochs (paper: 20)
	BiasThreshold float32 // mean recent loss below which a sample is "learned"

	// Dataset partitioning (§3.2.3).
	Partition  bool
	PartitionM int // medoids selected per chunk (the paper's m)

	// Dynamic subset sizing (contribution 4).
	DynamicSizing  bool
	LossDecayRate  float64 // reduction rate below which the subset shrinks
	ShrinkFactor   float64 // multiplicative subset shrink
	MinSubsetFrac  float64
	ShrinkPatience int // consecutive slow epochs required

	Eps  float64 // stochastic-greedy ε
	Seed uint64

	// Workers caps the goroutines of the shared execution pool that
	// the selection kernels, the training-path GEMMs, and the chunked
	// evaluation/per-sample-loss passes run on — the software analogue
	// of the FPGA kernel's parallel compute units (Table 4's distance
	// lanes). 0 means runtime.NumCPU(); 1 runs fully serial. The
	// setting only changes wall-clock time: chunked deterministic
	// reductions and row-banded GEMMs make every result — selected
	// subsets and training trajectories alike — identical for any
	// worker count.
	Workers int

	// BitExact selects the kernel tier. True (the default) keeps every
	// result — training trajectories, selections, evaluations — bitwise
	// identical across worker counts, machines, and PRs: one IEEE-754
	// multiply and one add per term, never fused. False permits the
	// AVX2/FMA fast tier in internal/tensor: still deterministic and
	// worker-count invariant, but its fused roundings diverge from the
	// bit-exact trajectory within the tolerance documented in DESIGN.md
	// §4.9. On hardware without AVX2/FMA the flag is a no-op.
	BitExact bool

	// Optional storage integration: when Device is non-nil every
	// selection read, subset transfer, and feedback transfer is charged
	// to the device's clock and accountant. DatasetName must identify a
	// stored dataset image on the device.
	Device      *smartssd.Device
	DatasetName string

	// Fault tolerance (§4.6). Injector, when non-nil, is attached to
	// Device before the run and perturbs storage operations with its
	// seeded fault schedule; it requires Device. Retry bounds the
	// recovery loop around each candidate scan (zero value means
	// smartssd.DefaultRetryPolicy). When a scan still fails with a
	// degradable fault after retries, the epoch falls back to weighted-
	// random selection over a host-path read so the job completes;
	// permanent faults (addressing, capacity, missing data) abort.
	Injector *faults.Injector
	Retry    smartssd.RetryPolicy

	// RawScan bypasses the resilient read and per-record CRC verify on
	// the scan path, reading exactly as the pre-fault-tolerance
	// pipeline did. Benchmark-only: it exists so bench-faults can
	// price the clean-path overhead of the recovery machinery.
	RawScan bool

	// Streaming switches the facility selector to the single-pass
	// sketch/sieve pipeline (internal/selection/streaming): the
	// candidate scan is consumed chunk by chunk and the full embedding
	// matrix is never materialized, so selection state stays within
	// the FPGA's on-chip budget regardless of dataset size. Requires
	// SelectorFacility. StreamChunk is the records per scan chunk
	// (0 = 8192).
	Streaming   bool
	StreamChunk int

	// Device-loss recovery (§4.11). Cluster attaches a multi-device
	// group in place of Device: every reselection scan runs as one
	// ParallelScan of DatasetName, and when the dataset was placed
	// with parity (smartssd.StripeDataset) the scan survives whole-
	// device loss by reconstructing lost stripes from the survivors.
	// Mutually exclusive with Device; requires DatasetName. The
	// streaming selector and RawScan are single-device paths and are
	// rejected with a cluster. AutoRebuild, after a scan that reports
	// degraded reads while a spare is attached, rebuilds the lost
	// shard onto the spare before the next epoch and charges the wall
	// time to Report.Recovery.RebuildTime.
	Cluster     *smartssd.Cluster
	AutoRebuild bool

	// Checkpointed sessions (§4.11). When CheckpointSink is non-nil
	// the full session state — candidate pool, current subset and
	// weights, model and optimizer tensors, both RNG cursors, loss
	// history, metrics, and the epoch counter — is captured every
	// CheckpointEvery epochs (0 means every epoch) and handed to the
	// sink. Resume, when non-nil, restores a blob produced under the
	// same configuration and continues the run bit-identically from
	// its epoch.
	CheckpointEvery int
	CheckpointSink  func(epoch int, blob []byte) error
	Resume          []byte
}

// DefaultOptions returns the full NeSSA configuration (the "SB+PA"
// column of Table 3) with the paper's constants.
func DefaultOptions() Options {
	return Options{
		Selector:       SelectorFacility,
		SubsetFrac:     0.40,
		QuantFeedback:  true,
		SelectEvery:    1,
		SubsetBias:     true,
		BiasWindow:     5,
		BiasEvery:      20,
		BiasThreshold:  0.10,
		Partition:      true,
		PartitionM:     16,
		DynamicSizing:  true,
		LossDecayRate:  0.01,
		ShrinkFactor:   0.90,
		MinSubsetFrac:  0.15,
		ShrinkPatience: 5,
		Eps:            0.1,
		Seed:           7,
		Workers:        runtime.NumCPU(),
		BitExact:       true,
	}
}

// Report is the outcome of a run.
type Report struct {
	Metrics trainer.Metrics

	EpochSubsetFrac []float64 // |S|/|V| per epoch
	FinalSubsetFrac float64   // Table 2's "Subset (%)"
	AvgSubsetFrac   float64
	CandidatesLeft  int // candidate-pool size after biasing
	Dropped         int // samples pruned by subset biasing

	Faults   FaultReport    // what the recovery machinery did (§4.6)
	Recovery RecoveryReport // device-loss recovery activity (§4.11)
}

// FaultReport aggregates the fault-recovery activity of a run: what the
// resilient read layer absorbed, and how many epochs fell back to
// degraded-mode selection. All zero for a fault-free run.
type FaultReport struct {
	ScanAttempts    int // storage read issues across all epochs
	Retries         int // re-issues after recoverable failures
	TransientErrors int // transient I/O errors absorbed
	CorruptDetected int // CRC-verification failures caught and re-read
	HostFallbacks   int // reads that fell from the P2P to the host path
	FallbackEpochs  int // epochs trained on weighted-random fallback subsets

	// Injected counts the faults the attached injector actually fired,
	// by class — ground truth to compare the detection counters against.
	// Nil when no injector was attached.
	Injected map[faults.Class]int64
}

// RecoveryReport aggregates the device-loss recovery activity of a
// run (§4.11): what the erasure-coded placement reconstructed, what
// the background rebuild restored, and where a resumed session picked
// up. ResumedFromEpoch is -1 for a fresh run.
type RecoveryReport struct {
	DevicesLost        int           // devices confirmed lost during the run
	DegradedReads      int           // stripes served via parity reconstruction
	ReconstructedBytes int64         // payload bytes rebuilt from survivors
	RebuildTime        time.Duration // wall time spent rebuilding onto spares
	ResumedFromEpoch   int           // checkpoint epoch the run resumed from
}

// absorb folds one resilient read's stats into the report.
func (f *FaultReport) absorb(st smartssd.ReadStats) {
	f.ScanAttempts += st.Attempts
	f.Retries += st.Retries
	f.TransientErrors += st.Transient
	f.CorruptDetected += st.Corrupt
	if st.HostFallback {
		f.HostFallbacks++
	}
}

// Run trains on (train, test) with the given training recipe and
// selection options and returns the measured report.
func Run(train, test *data.Dataset, tcfg trainer.Config, opt Options) (*Report, error) {
	if err := validateOptions(&opt); err != nil {
		return nil, err
	}
	// Size the shared execution pool. This is a process-wide scheduling
	// knob: results are worker-count-independent by construction, so a
	// concurrent run with a different setting only affects timing.
	parallel.SetDefaultWorkers(opt.Workers)
	// Kernel-tier knob, same contract as the worker count: process-wide,
	// flipped between runs. With BitExact the fast tier is off and the
	// request below is a no-op that re-asserts the default.
	tensor.SetFastMath(!opt.BitExact)
	s, err := newSession(train, test, tcfg, opt)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// session is the complete mutable state of a run. Everything the
// epoch loop reads or writes lives here, so a checkpoint is one
// struct walk (checkpoint.go) and resuming is a field-for-field
// restore — the basis of the bit-identical-resume guarantee.
type session struct {
	train, test *data.Dataset
	tcfg        trainer.Config
	opt         Options

	n        int
	recBytes int64
	rng      *tensor.RNG // controller RNG: selection seeds and fallbacks
	tr       *trainer.Trainer

	epoch      int // next epoch to execute
	cands      []int
	hist       *lossHistory
	frac       float64
	slowEpochs int
	prevLoss   float64
	dropped    int
	current    selection.Result

	rep       *Report
	lostStart int // cluster losses that predate this run
}

func newSession(train, test *data.Dataset, tcfg trainer.Config, opt Options) (*session, error) {
	n := train.Len()
	if n == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	s := &session{
		train: train, test: test, tcfg: tcfg, opt: opt,
		n:        n,
		rng:      tensor.NewRNG(opt.Seed),
		hist:     newLossHistory(n, opt.BiasWindow),
		frac:     opt.SubsetFrac,
		prevLoss: -1,
		rep:      &Report{},
	}
	s.rep.Recovery.ResumedFromEpoch = -1
	if opt.Device != nil || opt.Cluster != nil {
		var err error
		s.recBytes, err = data.RecordSize(train.Spec)
		if err != nil {
			return nil, err
		}
	}
	if opt.Injector != nil {
		if opt.Cluster != nil {
			opt.Cluster.SetInjector(opt.Injector)
		} else {
			opt.Device.SetInjector(opt.Injector)
		}
	}
	if opt.Cluster != nil {
		// Per-record CRC verification on every scanned (and
		// reconstructed) stripe, same contract as the single-device
		// resilient read path.
		opt.Cluster.Verify = verifyRecords(s.recBytes)
		s.lostStart = opt.Cluster.LostCount()
	}
	if opt.Resume != nil {
		if err := s.restore(opt.Resume); err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		s.rep.Recovery.ResumedFromEpoch = s.epoch
	} else {
		s.tr = trainer.New(train.Spec, tcfg)
		s.cands = make([]int, n)
		for i := range s.cands {
			s.cands[i] = i
		}
	}
	return s, nil
}

func (s *session) run() (*Report, error) {
	opt, rep := s.opt, s.rep
	for e := s.epoch; e < s.tcfg.Epochs; e++ {
		s.tr.SetEpoch(e)

		reselect := e%opt.SelectEvery == 0 || s.current.Selected == nil
		if reselect {
			selModel := s.tr.Model
			if opt.QuantFeedback {
				qm := quant.QuantizeModel(s.tr.Model)
				selModel = qm.Dequantized()
				if opt.Device != nil {
					opt.Device.ReceiveFeedback(qm.SizeBytes())
				} else if opt.Cluster != nil {
					// The quantized selection model is broadcast to
					// every drive in the group.
					for _, d := range opt.Cluster.Devices {
						d.ReceiveFeedback(qm.SizeBytes())
					}
				}
			}
			degraded := false
			var res selection.Result
			var losses []float32
			if opt.Streaming {
				// Single-pass selection: the chunked scan charges its own
				// I/O, so there is no monolithic candidate read.
				var err error
				res, losses, err = selectSubsetStreaming(selModel, s.train, s.cands, s.frac, opt, s.rng, s.recBytes, &rep.Faults)
				if err != nil {
					if opt.Device == nil || !faults.IsDegradable(err) {
						return nil, fmt.Errorf("core: streaming selection: %w", err)
					}
					degraded = true
				}
			} else if opt.Device != nil {
				// Near-storage scan of the remaining candidates.
				length := int64(len(s.cands)) * s.recBytes
				if opt.RawScan {
					if _, err := opt.Device.ReadToFPGA(opt.DatasetName, 0, length, len(s.cands)); err != nil {
						return nil, fmt.Errorf("core: candidate scan: %w", err)
					}
				} else {
					_, st, err := opt.Device.ReadResilient(opt.DatasetName, 0, length, len(s.cands),
						verifyRecords(s.recBytes), opt.Retry)
					rep.Faults.absorb(st)
					if err != nil {
						if !faults.IsDegradable(err) {
							return nil, fmt.Errorf("core: candidate scan: %w", err)
						}
						// The near-storage pipeline is unavailable this
						// epoch even after retries; degrade rather than
						// abort the whole job.
						degraded = true
					}
				}
			} else if opt.Cluster != nil {
				// Striped scan across the group. Per-shard retry and
				// parity reconstruction have already absorbed every fault
				// the placement can mask, so a residual error is fatal:
				// more devices are gone than the parity budget covers.
				_, st, _, err := opt.Cluster.ParallelScan(opt.DatasetName, s.recBytes)
				rep.Faults.absorb(st.Read)
				rep.Faults.Retries += st.Reissues
				rep.Recovery.DegradedReads += st.DegradedReads
				rep.Recovery.ReconstructedBytes += st.ReconstructedBytes
				if err != nil {
					return nil, fmt.Errorf("core: cluster candidate scan: %w", err)
				}
				if st.DegradedReads > 0 && opt.AutoRebuild && opt.Cluster.Spares() > 0 {
					dur, err := opt.Cluster.Rebuild(opt.DatasetName)
					if err != nil {
						return nil, fmt.Errorf("core: rebuild after degraded scan: %w", err)
					}
					rep.Recovery.RebuildTime += dur
				}
			}
			if degraded {
				res, err := fallbackSubset(s.train, s.cands, s.frac, opt, s.rng, s.recBytes, &rep.Faults)
				if err != nil {
					return nil, err
				}
				s.current = res
				rep.Faults.FallbackEpochs++
				// No selection pass ran, so there are no fresh losses to
				// feed the subset-biasing history this epoch.
			} else {
				if !opt.Streaming {
					var err error
					res, losses, err = selectSubset(selModel, s.train, s.cands, s.frac, opt, s.rng)
					if err != nil {
						return nil, err
					}
				}
				s.current = res
				s.hist.record(s.cands, losses)
				shipped := int64(len(s.current.Selected)) * s.recBytes
				if opt.Device != nil {
					opt.Device.SendToGPU(shipped, len(s.current.Selected))
				} else if opt.Cluster != nil {
					// The subset ships to the GPU from the group's
					// aggregation point.
					opt.Cluster.Devices[0].SendToGPU(shipped, len(s.current.Selected))
				}
			}
		}

		subset := s.train.Subset(s.current.Selected)
		loss := s.tr.TrainEpoch(subset.X, subset.Labels, s.current.Weights)

		rep.Metrics.EpochLoss = append(rep.Metrics.EpochLoss, loss)
		rep.Metrics.EpochAcc = append(rep.Metrics.EpochAcc, s.tr.Evaluate(s.test))
		rep.Metrics.SubsetSizes = append(rep.Metrics.SubsetSizes, subset.Len())
		rep.EpochSubsetFrac = append(rep.EpochSubsetFrac, float64(subset.Len())/float64(s.n))

		// Subset biasing (§3.2.2): every BiasEvery epochs drop samples
		// whose recent losses mark them as learned.
		if opt.SubsetBias && (e+1)%opt.BiasEvery == 0 {
			kept := s.cands[:0]
			for _, c := range s.cands {
				if s.hist.learned(c, opt.BiasThreshold) {
					s.dropped++
					continue
				}
				kept = append(kept, c)
			}
			// Never bias below the current subset budget.
			minPool := int(s.frac*float64(s.n)) + 1
			if len(kept) >= minPool {
				s.cands = kept
				s.current.Selected = nil // force reselection from the pruned pool
			} else {
				s.dropped -= len(s.cands) - len(kept)
			}
		}

		// Dynamic subset sizing: shrink when the loss stops improving.
		if opt.DynamicSizing {
			if s.prevLoss > 0 {
				rate := (s.prevLoss - loss) / s.prevLoss
				if rate < opt.LossDecayRate {
					s.slowEpochs++
				} else {
					s.slowEpochs = 0
				}
				if s.slowEpochs >= opt.ShrinkPatience {
					next := s.frac * opt.ShrinkFactor
					if next < opt.MinSubsetFrac {
						next = opt.MinSubsetFrac
					}
					if next < s.frac {
						s.frac = next
						s.current.Selected = nil // reselect at the new size
					}
					s.slowEpochs = 0
				}
			}
			s.prevLoss = loss
		}

		// Checkpoint after ALL per-epoch bookkeeping, so a resumed
		// session re-enters the loop exactly where this one left it.
		if opt.CheckpointSink != nil {
			every := opt.CheckpointEvery
			if every <= 0 {
				every = 1
			}
			if (e+1)%every == 0 {
				if err := opt.CheckpointSink(e+1, s.checkpoint(e+1)); err != nil {
					return nil, fmt.Errorf("core: checkpoint sink: %w", err)
				}
			}
		}
	}

	rep.Metrics.FinalAcc = rep.Metrics.EpochAcc[len(rep.Metrics.EpochAcc)-1]
	rep.FinalSubsetFrac = rep.EpochSubsetFrac[len(rep.EpochSubsetFrac)-1]
	var sum float64
	for _, f := range rep.EpochSubsetFrac {
		sum += f
	}
	rep.AvgSubsetFrac = sum / float64(len(rep.EpochSubsetFrac))
	rep.CandidatesLeft = len(s.cands)
	rep.Dropped = s.dropped
	if opt.Injector != nil {
		rep.Faults.Injected = opt.Injector.Counts()
	}
	if opt.Cluster != nil {
		rep.Recovery.DevicesLost += opt.Cluster.LostCount() - s.lostStart
	}
	return rep, nil
}

// verifyRecords returns a per-record CRC verifier for scan payloads.
func verifyRecords(recordSize int64) func([]byte) error {
	return func(buf []byte) error { return data.VerifyImage(buf, recordSize) }
}

// subsetK sizes the subset: frac of the full set, clamped to [1, pool].
func subsetK(frac float64, n, pool int) int {
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	if k > pool {
		k = pool
	}
	return k
}

// fallbackSubset implements degraded-mode selection (§4.6): when the
// near-storage scan is unavailable even after retries, pick a weighted-
// random subset (the unbiased n/k-weighted baseline — no fresh loss or
// gradient information exists without a scan) and fetch exactly those
// records over the resilient host path. A failure here is fatal: both
// the near-storage and conventional paths are down.
func fallbackSubset(train *data.Dataset, cands []int, frac float64, opt Options, rng *tensor.RNG, recBytes int64, fr *FaultReport) (selection.Result, error) {
	k := subsetK(frac, train.Len(), len(cands))
	local := make([]int, len(cands))
	for i := range local {
		local[i] = i
	}
	res, err := selection.Random(local, k, rng)
	if err != nil {
		return selection.Result{}, fmt.Errorf("core: fallback selection: %w", err)
	}
	for i, s := range res.Selected {
		res.Selected[i] = cands[s]
	}
	length := int64(len(res.Selected)) * recBytes
	_, st, err := opt.Device.ReadResilientHost(opt.DatasetName, 0, length, len(res.Selected),
		verifyRecords(recBytes), opt.Retry)
	fr.absorb(st)
	if err != nil {
		return selection.Result{}, fmt.Errorf("core: degraded-mode host read: %w", err)
	}
	opt.Device.SendToGPU(length, len(res.Selected))
	return res, nil
}

// selectSubset runs one near-storage selection pass: a forward of the
// selection model over the candidates, gradient-embedding extraction,
// and the configured selector. It returns the selection and the
// candidates' current losses (the §3.2.2 feedback signal).
func selectSubset(selModel *nn.MLP, train *data.Dataset, cands []int, frac float64, opt Options, rng *tensor.RNG) (selection.Result, []float32, error) {
	candSet := train.Subset(cands)
	logits := selModel.Forward(candSet.X)
	losses := nn.SoftmaxCE(logits, candSet.Labels, nil, nil)
	localEmb := nn.GradEmbeddings(logits, candSet.Labels)

	k := subsetK(frac, train.Len(), len(cands))

	// Selection runs on local candidate positions; map back after.
	local := make([]int, len(cands))
	for i := range local {
		local[i] = i
	}

	var res selection.Result
	var err error
	switch opt.Selector {
	case SelectorFacility:
		classes := make([][]int, train.Spec.Classes)
		for i, y := range candSet.Labels {
			classes[y] = append(classes[y], i)
		}
		// One base seed per selection pass (drawn serially from the run
		// RNG), then an independent stream per class, so the per-class
		// fan-out is both race-free and deterministic for any worker
		// count.
		base := rng.Uint64()
		res, err = selection.PerClassWith(localEmb, classes, k, func(ci int) selection.Maximizer {
			crng := selection.ClassStream(base, ci)
			inner := selection.StochasticMaximizer(opt.Eps, crng)
			if opt.Partition {
				inner = selection.PartitionedMaximizer(opt.PartitionM, crng, inner)
			}
			return inner
		})
	case SelectorKCenters:
		res, err = selection.KCenters(localEmb, local, k)
		if err == nil {
			// Sener & Savarese train the k-centers subset unweighted
			// (active-learning style): no medoid reweighting corrects
			// the boundary-heavy sampling — the reason the baseline
			// collapses at small subsets in Table 3.
			for i := range res.Weights {
				res.Weights[i] = 1
			}
		}
	case SelectorRandom:
		res, err = selection.Random(local, k, rng)
	case SelectorTopLoss:
		res, err = selection.TopLoss(losses, local, k)
	default:
		err = fmt.Errorf("core: unknown selector %q", opt.Selector)
	}
	if err != nil {
		return selection.Result{}, nil, err
	}
	for i, s := range res.Selected {
		res.Selected[i] = cands[s]
	}
	return res, losses, nil
}

// selectSubsetStreaming runs one single-pass selection epoch: the
// candidate records stream through the selection model in chunks
// (double-buffered against NAND reads when a device is attached), each
// chunk's gradient embeddings feed the sieve, and the full embedding
// matrix never exists. Losses for the §3.2.2 feedback signal are
// captured per chunk into one O(n)-float slice — the only per-
// candidate state the pass keeps.
func selectSubsetStreaming(selModel *nn.MLP, train *data.Dataset, cands []int, frac float64, opt Options, rng *tensor.RNG, recBytes int64, fr *FaultReport) (selection.Result, []float32, error) {
	k := subsetK(frac, train.Len(), len(cands))
	classes := train.Spec.Classes
	counts := make([]int, classes)
	for _, c := range cands {
		counts[train.Labels[c]]++
	}
	sel, err := streaming.NewSelector(streaming.Config{
		Classes:     classes,
		Dim:         classes,
		K:           k,
		ClassCounts: counts,
		SketchEvery: -1, // the sketch is a bench/diagnostic artifact, not a selection input
		Seed:        rng.Uint64(),
	})
	if err != nil {
		return selection.Result{}, nil, err
	}
	chunk := opt.StreamChunk
	if chunk <= 0 {
		chunk = 8192
	}
	if chunk > len(cands) {
		chunk = len(cands)
	}
	losses := make([]float32, len(cands))
	feats := tensor.NewMatrix(chunk, train.X.Cols)
	emb := tensor.NewMatrix(chunk, classes)
	labels := make([]int, chunk)
	var scratch nn.FwdScratch
	probs := make([]float32, classes)
	process := func(lo, hi int) error {
		m := hi - lo
		fview := tensor.Matrix{Rows: m, Cols: feats.Cols, Data: feats.Data[:m*feats.Cols]}
		tensor.GatherRows(&fview, train.X, cands[lo:hi])
		for i := lo; i < hi; i++ {
			labels[i-lo] = train.Labels[cands[i]]
		}
		logits := selModel.ForwardInto(&scratch, &fview)
		nn.SoftmaxCEInto(losses[lo:hi], probs, logits, labels[:m], nil, nil)
		eview := tensor.Matrix{Rows: m, Cols: classes, Data: emb.Data[:m*classes]}
		nn.GradEmbeddingsInto(&eview, logits, labels[:m])
		return sel.Push(&eview, nil, labels[:m])
	}
	if opt.Device != nil {
		scan := streaming.ScanConfig{
			Object:       opt.DatasetName,
			RecordBytes:  recBytes,
			Candidates:   cands,
			ChunkRecords: chunk,
			Retry:        opt.Retry,
		}
		if !opt.RawScan {
			scan.Verify = verifyRecords(recBytes)
		}
		st, err := streaming.ScanRecords(opt.Device, scan, func(_, lo, hi int, _ int64, _ []byte) error {
			return process(lo, hi)
		})
		fr.absorb(st.Read)
		if err != nil {
			return selection.Result{}, nil, err
		}
	} else {
		for lo := 0; lo < len(cands); lo += chunk {
			hi := lo + chunk
			if hi > len(cands) {
				hi = len(cands)
			}
			if err := process(lo, hi); err != nil {
				return selection.Result{}, nil, err
			}
		}
	}
	res, _, err := sel.Finish()
	if err != nil {
		return selection.Result{}, nil, err
	}
	// Stream position p was candidate-list index p.
	for i, p := range res.Selected {
		res.Selected[i] = cands[p]
	}
	return res, losses, nil
}

func validateOptions(opt *Options) error {
	if opt.SubsetFrac <= 0 || opt.SubsetFrac > 1 {
		return fmt.Errorf("core: subset fraction %v out of (0,1]", opt.SubsetFrac)
	}
	if opt.SelectEvery <= 0 {
		opt.SelectEvery = 1
	}
	if opt.SubsetBias {
		if opt.BiasWindow <= 0 || opt.BiasEvery <= 0 {
			return fmt.Errorf("core: subset biasing needs positive window/interval, got %d/%d",
				opt.BiasWindow, opt.BiasEvery)
		}
	}
	if opt.Partition && opt.PartitionM <= 0 {
		return fmt.Errorf("core: partitioning needs positive m, got %d", opt.PartitionM)
	}
	if opt.DynamicSizing {
		if opt.ShrinkFactor <= 0 || opt.ShrinkFactor >= 1 {
			return fmt.Errorf("core: shrink factor %v out of (0,1)", opt.ShrinkFactor)
		}
		if opt.MinSubsetFrac <= 0 || opt.MinSubsetFrac > opt.SubsetFrac {
			return fmt.Errorf("core: min subset fraction %v invalid for initial %v",
				opt.MinSubsetFrac, opt.SubsetFrac)
		}
		if opt.ShrinkPatience <= 0 {
			opt.ShrinkPatience = 1
		}
	}
	if opt.Streaming && opt.Selector != SelectorFacility {
		return fmt.Errorf("core: streaming selection requires the facility selector, got %q", opt.Selector)
	}
	if opt.StreamChunk < 0 {
		return fmt.Errorf("core: stream chunk must be >= 0, got %d", opt.StreamChunk)
	}
	if opt.Workers < 0 {
		return fmt.Errorf("core: workers must be >= 0, got %d", opt.Workers)
	}
	if opt.Workers == 0 {
		opt.Workers = runtime.NumCPU()
	}
	if opt.Device != nil && opt.DatasetName == "" {
		return fmt.Errorf("core: device attached without a dataset name")
	}
	if opt.Cluster != nil {
		if opt.Device != nil {
			return fmt.Errorf("core: Device and Cluster are mutually exclusive")
		}
		if opt.DatasetName == "" {
			return fmt.Errorf("core: cluster attached without a dataset name")
		}
		if opt.Streaming {
			return fmt.Errorf("core: streaming selection is a single-device path; not supported with a cluster")
		}
		if opt.RawScan {
			return fmt.Errorf("core: raw scan is a single-device path; not supported with a cluster")
		}
	}
	if opt.Injector != nil && opt.Device == nil && opt.Cluster == nil {
		return fmt.Errorf("core: fault injector attached without a device or cluster")
	}
	if opt.CheckpointEvery < 0 {
		return fmt.Errorf("core: checkpoint interval must be >= 0, got %d", opt.CheckpointEvery)
	}
	if opt.CheckpointEvery > 0 && opt.CheckpointSink == nil {
		return fmt.Errorf("core: checkpoint interval set without a sink")
	}
	return nil
}
