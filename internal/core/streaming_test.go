package core

import (
	"testing"

	"nessa/internal/data"
	"nessa/internal/smartssd"
)

// TestStreamingSelectionTrains: the single-pass selector plugs into the
// full training loop and lands close to the batch selector's accuracy.
func TestStreamingSelectionTrains(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()

	batch := tinyOptions()
	batch.DynamicSizing = false
	batch.SubsetBias = false
	batch.SubsetFrac = 0.25

	stream := batch
	stream.Streaming = true
	stream.StreamChunk = 128

	repB, err := Run(tr, te, cfg, batch)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := Run(tr, te, cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Metrics.BestAcc() < repB.Metrics.BestAcc()-0.05 {
		t.Fatalf("streaming selection accuracy %.3f too far below batch %.3f",
			repS.Metrics.BestAcc(), repB.Metrics.BestAcc())
	}
}

// TestStreamingDeviceScan: with a device attached, the streaming path
// charges chunked P2P reads covering the full candidate scan per
// reselection epoch.
func TestStreamingDeviceScan(t *testing.T) {
	spec := tinySpec()
	tr, te := data.Generate(spec)
	cfg := tinyCfg()
	cfg.Epochs = 4

	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.StoreDataset("tiny", img); err != nil {
		t.Fatal(err)
	}

	opt := tinyOptions()
	opt.DynamicSizing = false
	opt.SubsetBias = false
	opt.SubsetFrac = 0.25
	opt.Streaming = true
	opt.StreamChunk = 100
	opt.Device = dev
	opt.DatasetName = "tiny"

	if _, err := Run(tr, te, cfg, opt); err != nil {
		t.Fatal(err)
	}
	p2p := dev.Acct.Bytes("p2p.read")
	want := int64(cfg.Epochs) * int64(tr.Len()) * spec.BytesPerImage
	if p2p != want {
		t.Fatalf("p2p.read = %d bytes, want %d (chunked full scan per epoch)", p2p, want)
	}
	if sent := dev.Acct.Bytes("gpu.send"); sent == 0 {
		t.Fatal("no subset bytes sent to the GPU")
	}
}

// TestStreamingMatchesAcrossWorkers: the full training trajectory under
// streaming selection is identical at 1 and 4 workers.
func TestStreamingMatchesAcrossWorkers(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	cfg.Epochs = 8

	run := func(workers int) *Report {
		opt := tinyOptions()
		opt.DynamicSizing = false
		opt.SubsetBias = false
		opt.SubsetFrac = 0.2
		opt.Streaming = true
		opt.Workers = workers
		rep, err := Run(tr, te, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r4 := run(1), run(4)
	for e := range r1.Metrics.EpochLoss {
		if r1.Metrics.EpochLoss[e] != r4.Metrics.EpochLoss[e] {
			t.Fatalf("epoch %d loss diverges across workers: %v vs %v",
				e, r1.Metrics.EpochLoss[e], r4.Metrics.EpochLoss[e])
		}
	}
}

// TestStreamingRequiresFacility: the streaming pipeline only implements
// the facility selector.
func TestStreamingRequiresFacility(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	opt := tinyOptions()
	opt.Streaming = true
	opt.Selector = SelectorRandom
	if _, err := Run(tr, te, tinyCfg(), opt); err == nil {
		t.Fatal("streaming with a non-facility selector accepted")
	}
}
