package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"nessa/internal/selection"
	"nessa/internal/trainer"
)

// Session checkpoints: a compact, versioned little-endian capture of
// the whole training session — candidate pool, current subset and
// weights, loss-history rings, metrics so far, fault and recovery
// counters, both RNG cursors, and the model/optimizer tensors (via
// the nn serialization formats). Restoring a blob into a freshly
// validated session reproduces the remaining epochs bit-identically:
// every input the epoch loop consumes is either immutable
// configuration or lives in this capture.
//
// Layout (all little-endian):
//
//	magic    uint32 'NSCP'
//	version  uint32 1
//	epoch    uint32  next epoch to execute
//	n        uint32  training-set size guard
//	frac     float64
//	prevLoss float64
//	slow     uint32
//	dropped  uint32
//	ctrlRNG  uint64  controller RNG cursor
//	trRNG    uint64  trainer RNG cursor
//	cands    uint32 count + count*uint32
//	selected uint32 count (cpNil = no current subset) + count*uint32
//	         + count*float32 weights
//	history  uint32 window, then per sample: uint32 present flag,
//	         [uint32 pos, uint32 count, window*float32]
//	metrics  uint32 epochs, then per epoch: float64 loss, float64 acc,
//	         uint32 subset size, float64 subset frac
//	faults   6*uint32 counters
//	recovery uint32 lost, uint32 degraded, uint64 reconstructed bytes,
//	         uint64 rebuild ns
//	model    uint32 len + MarshalModel bytes
//	sgd      uint32 len + MarshalSGD bytes
const (
	checkpointMagic   = 0x4e534350 // "NSCP"
	checkpointVersion = 1
	cpNil             = 0xffffffff // sentinel count: nil current subset
)

type cpWriter struct{ buf []byte }

func (w *cpWriter) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

func (w *cpWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (w *cpWriter) f32(v float32) { w.u32(math.Float32bits(v)) }
func (w *cpWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *cpWriter) ints(xs []int) {
	w.u32(uint32(len(xs)))
	for _, x := range xs {
		w.u32(uint32(x))
	}
}

func (w *cpWriter) blob(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// checkpoint captures the session after `epoch` completed epochs.
func (s *session) checkpoint(epoch int) []byte {
	model, sgd, trRNG := s.tr.Snapshot()
	w := &cpWriter{}
	w.u32(checkpointMagic)
	w.u32(checkpointVersion)
	w.u32(uint32(epoch))
	w.u32(uint32(s.n))
	w.f64(s.frac)
	w.f64(s.prevLoss)
	w.u32(uint32(s.slowEpochs))
	w.u32(uint32(s.dropped))
	w.u64(s.rng.State())
	w.u64(trRNG)
	w.ints(s.cands)
	if s.current.Selected == nil {
		w.u32(cpNil)
	} else {
		w.ints(s.current.Selected)
		for _, x := range s.current.Weights {
			w.f32(x)
		}
	}
	w.u32(uint32(s.hist.window))
	for i := 0; i < s.n; i++ {
		if s.hist.buf[i] == nil {
			w.u32(0)
			continue
		}
		w.u32(1)
		w.u32(uint32(s.hist.pos[i]))
		w.u32(uint32(s.hist.count[i]))
		for _, x := range s.hist.buf[i] {
			w.f32(x)
		}
	}
	m := &s.rep.Metrics
	w.u32(uint32(len(m.EpochLoss)))
	for i := range m.EpochLoss {
		w.f64(m.EpochLoss[i])
		w.f64(m.EpochAcc[i])
		w.u32(uint32(m.SubsetSizes[i]))
		w.f64(s.rep.EpochSubsetFrac[i])
	}
	f := &s.rep.Faults
	w.u32(uint32(f.ScanAttempts))
	w.u32(uint32(f.Retries))
	w.u32(uint32(f.TransientErrors))
	w.u32(uint32(f.CorruptDetected))
	w.u32(uint32(f.HostFallbacks))
	w.u32(uint32(f.FallbackEpochs))
	r := &s.rep.Recovery
	w.u32(uint32(r.DevicesLost))
	w.u32(uint32(r.DegradedReads))
	w.u64(uint64(r.ReconstructedBytes))
	w.u64(uint64(r.RebuildTime))
	w.blob(model)
	w.blob(sgd)
	return w.buf
}

type cpReader struct {
	buf []byte
	off int
	err error
}

func (r *cpReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *cpReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("checkpoint truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *cpReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("checkpoint truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *cpReader) f32() float32 { return math.Float32frombits(r.u32()) }
func (r *cpReader) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads a length field and bounds it: a corrupt count must not
// drive a giant allocation.
func (r *cpReader) count(what string, max int) int {
	v := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(v) > int64(max) {
		r.fail("checkpoint %s count %d exceeds bound %d", what, v, max)
		return 0
	}
	return int(v)
}

// indices reads c dataset indices, each validated against [0, n).
func (r *cpReader) indices(what string, c, n int) []int {
	xs := make([]int, c)
	for i := range xs {
		v := r.u32()
		if int64(v) >= int64(n) {
			r.fail("checkpoint %s index %d out of range [0,%d)", what, v, n)
			return nil
		}
		xs[i] = int(v)
	}
	return xs
}

func (r *cpReader) blob(what string) []byte {
	c := r.count(what, len(r.buf)-r.off)
	if r.err != nil {
		return nil
	}
	b := make([]byte, c)
	copy(b, r.buf[r.off:r.off+c])
	r.off += c
	return b
}

// restore rebuilds the session's mutable state from a checkpoint
// captured under the same configuration.
func (s *session) restore(buf []byte) error {
	r := &cpReader{buf: buf}
	if got := r.u32(); r.err == nil && got != checkpointMagic {
		return fmt.Errorf("bad magic %#x", got)
	}
	if got := r.u32(); r.err == nil && got != checkpointVersion {
		return fmt.Errorf("unsupported version %d", got)
	}
	epoch := int(r.u32())
	if r.err == nil && epoch > s.tcfg.Epochs {
		return fmt.Errorf("checkpoint epoch %d beyond configured %d epochs", epoch, s.tcfg.Epochs)
	}
	if n := int(r.u32()); r.err == nil && n != s.n {
		return fmt.Errorf("checkpoint for %d samples, training set has %d", n, s.n)
	}
	s.frac = r.f64()
	s.prevLoss = r.f64()
	s.slowEpochs = int(r.u32())
	s.dropped = int(r.u32())
	ctrlRNG := r.u64()
	trRNG := r.u64()
	nc := r.count("candidate", s.n)
	if r.err == nil && nc == 0 {
		return fmt.Errorf("checkpoint has an empty candidate pool")
	}
	s.cands = r.indices("candidate", nc, s.n)
	s.current = selection.Result{}
	if sc := r.u32(); sc != cpNil {
		if int64(sc) > int64(s.n) {
			return fmt.Errorf("checkpoint subset count %d exceeds %d samples", sc, s.n)
		}
		s.current.Selected = r.indices("subset", int(sc), s.n)
		s.current.Weights = make([]float32, sc)
		for i := range s.current.Weights {
			s.current.Weights[i] = r.f32()
		}
	}
	window := int(r.u32())
	if r.err == nil && window != s.hist.window {
		return fmt.Errorf("checkpoint loss-history window %d, configured %d", window, s.hist.window)
	}
	for i := 0; i < s.n && r.err == nil; i++ {
		if r.u32() == 0 {
			continue
		}
		pos, cnt := int(r.u32()), int(r.u32())
		if r.err == nil && (pos < 0 || pos >= window || cnt < 0 || cnt > window) {
			return fmt.Errorf("checkpoint loss-history ring %d corrupt (pos %d, count %d)", i, pos, cnt)
		}
		ring := make([]float32, window)
		for j := range ring {
			ring[j] = r.f32()
		}
		s.hist.buf[i], s.hist.pos[i], s.hist.count[i] = ring, pos, cnt
	}
	ne := r.count("metrics", epoch)
	if r.err == nil && ne != epoch {
		return fmt.Errorf("checkpoint holds %d epoch records for epoch %d", ne, epoch)
	}
	m := &s.rep.Metrics
	for i := 0; i < ne; i++ {
		m.EpochLoss = append(m.EpochLoss, r.f64())
		m.EpochAcc = append(m.EpochAcc, r.f64())
		m.SubsetSizes = append(m.SubsetSizes, int(r.u32()))
		s.rep.EpochSubsetFrac = append(s.rep.EpochSubsetFrac, r.f64())
	}
	f := &s.rep.Faults
	f.ScanAttempts = int(r.u32())
	f.Retries = int(r.u32())
	f.TransientErrors = int(r.u32())
	f.CorruptDetected = int(r.u32())
	f.HostFallbacks = int(r.u32())
	f.FallbackEpochs = int(r.u32())
	rec := &s.rep.Recovery
	rec.DevicesLost = int(r.u32())
	rec.DegradedReads = int(r.u32())
	rec.ReconstructedBytes = int64(r.u64())
	rec.RebuildTime = time.Duration(r.u64())
	model := r.blob("model")
	sgd := r.blob("optimizer")
	if r.err != nil {
		return r.err
	}
	if r.off != len(buf) {
		return fmt.Errorf("checkpoint has %d trailing bytes", len(buf)-r.off)
	}
	tr, err := trainer.Restore(s.train.Spec, s.tcfg, model, sgd, trRNG)
	if err != nil {
		return err
	}
	s.tr = tr
	s.rng.SetState(ctrlRNG)
	s.epoch = epoch
	return nil
}
