package core

import (
	"testing"
	"testing/quick"

	"nessa/internal/data"
	"nessa/internal/trainer"
)

// TestControllerRobustToOptionCombinations drives the controller with
// randomized (valid) option combinations on a small dataset and checks
// the run-level invariants: no error, per-epoch series complete,
// subset fractions within [MinSubsetFrac·0.99, SubsetFrac·1.01], and
// pool accounting consistent.
func TestControllerRobustToOptionCombinations(t *testing.T) {
	spec := data.Spec{
		Name: "prop", Classes: 4, Train: 100, BytesPerImage: 2048, Network: "ResNet-20",
		SimTrain: 240, SimTest: 80, FeatureDim: 12, Spread: 0.15, HardFrac: 0.1,
		NoiseFrac: 0.01, Seed: 33, Modes: 3, ModeSpread: 1.0, ModeDecay: 0.5,
	}
	train, test := data.Generate(spec)
	cfg := trainer.Default()
	cfg.Epochs = 10

	f := func(seed uint64) bool {
		rng := seed
		next := func(n int) int { // cheap deterministic chooser
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33) % n
		}
		opt := DefaultOptions()
		opt.Seed = seed
		opt.Selector = []Selector{SelectorFacility, SelectorKCenters, SelectorRandom, SelectorTopLoss}[next(4)]
		opt.SubsetFrac = []float64{0.15, 0.3, 0.5, 1.0}[next(4)]
		opt.MinSubsetFrac = opt.SubsetFrac / 2
		opt.QuantFeedback = next(2) == 0
		opt.SelectEvery = 1 + next(3)
		opt.SubsetBias = next(2) == 0
		opt.BiasEvery = 3 + next(4)
		opt.BiasWindow = 1 + next(3)
		opt.Partition = next(2) == 0
		opt.PartitionM = 2 + next(8)
		opt.DynamicSizing = next(2) == 0
		opt.ShrinkPatience = 1 + next(3)

		rep, err := Run(train, test, cfg, opt)
		if err != nil {
			t.Logf("seed %d options %+v: %v", seed, opt, err)
			return false
		}
		if len(rep.Metrics.EpochAcc) != cfg.Epochs || len(rep.EpochSubsetFrac) != cfg.Epochs {
			return false
		}
		for _, f := range rep.EpochSubsetFrac {
			if f < opt.MinSubsetFrac*0.99 || f > opt.SubsetFrac*1.01 {
				t.Logf("seed %d: subset frac %v outside [%v, %v]", seed, f, opt.MinSubsetFrac, opt.SubsetFrac)
				return false
			}
		}
		if rep.CandidatesLeft+rep.Dropped != train.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
