package core

import (
	"testing"

	"nessa/internal/data"
	"nessa/internal/smartssd"
	"nessa/internal/trainer"
)

// tinySpec is a fast dataset for controller tests.
func tinySpec() data.Spec {
	return data.Spec{
		Name: "tiny", Classes: 5, Train: 1000, BytesPerImage: 2048, Network: "ResNet-20",
		SimTrain: 600, SimTest: 250, FeatureDim: 16, Spread: 0.14, HardFrac: 0.15, NoiseFrac: 0.01, Seed: 21,
	}
}

func tinyCfg() trainer.Config {
	cfg := trainer.Default()
	cfg.Epochs = 30
	return cfg
}

// tinyOptions scales the paper constants to a 30-epoch run.
func tinyOptions() Options {
	opt := DefaultOptions()
	opt.BiasEvery = 10
	opt.BiasWindow = 3
	opt.PartitionM = 8
	// Faster shrink dynamics so 30-epoch test runs exercise them.
	opt.LossDecayRate = 0.05
	opt.ShrinkPatience = 2
	return opt
}

func TestNeSSACloseToFullData(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	_, fullMet := trainer.TrainFull(tr, te, cfg)

	rep, err := Run(tr, te, cfg, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.FinalAcc < fullMet.FinalAcc-0.06 {
		t.Fatalf("NeSSA accuracy %.3f too far below full-data %.3f", rep.Metrics.FinalAcc, fullMet.FinalAcc)
	}
	if rep.AvgSubsetFrac > 0.55 {
		t.Fatalf("NeSSA trained on %.0f%% of data on average; expected a real reduction", rep.AvgSubsetFrac*100)
	}
}

func TestNeSSABeatsRandomAtSameBudget(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()

	nessa := tinyOptions()
	nessa.DynamicSizing = false
	nessa.SubsetBias = false
	nessa.SubsetFrac = 0.2

	random := nessa
	random.Selector = SelectorRandom

	repN, err := Run(tr, te, cfg, nessa)
	if err != nil {
		t.Fatal(err)
	}
	repR, err := Run(tr, te, cfg, random)
	if err != nil {
		t.Fatal(err)
	}
	if repN.Metrics.BestAcc() < repR.Metrics.BestAcc()-0.01 {
		t.Fatalf("facility selection (%.3f) worse than random (%.3f) at 20%% budget",
			repN.Metrics.BestAcc(), repR.Metrics.BestAcc())
	}
}

func TestSubsetBiasingShrinksCandidatePool(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	opt := tinyOptions()
	opt.DynamicSizing = false

	rep, err := Run(tr, te, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatal("subset biasing never dropped a learned sample on an easy dataset")
	}
	if rep.CandidatesLeft >= tr.Len() {
		t.Fatal("candidate pool did not shrink")
	}
	if rep.CandidatesLeft+rep.Dropped != tr.Len() {
		t.Fatalf("pool accounting broken: %d left + %d dropped != %d",
			rep.CandidatesLeft, rep.Dropped, tr.Len())
	}
}

func TestDynamicSizingShrinksSubset(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	opt := tinyOptions()
	opt.SubsetBias = false

	rep, err := Run(tr, te, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.EpochSubsetFrac[0]
	last := rep.FinalSubsetFrac
	if last >= first {
		t.Fatalf("subset fraction never shrank: %.2f -> %.2f", first, last)
	}
	if last < opt.MinSubsetFrac-1e-9 {
		t.Fatalf("subset fraction %.3f fell below floor %.3f", last, opt.MinSubsetFrac)
	}
}

func TestFixedSubsetStaysFixed(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	opt := tinyOptions()
	opt.DynamicSizing = false
	opt.SubsetBias = false
	opt.SubsetFrac = 0.3

	rep, err := Run(tr, te, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for e, f := range rep.EpochSubsetFrac {
		if f < 0.29 || f > 0.31 {
			t.Fatalf("epoch %d subset fraction = %.3f, want 0.30 fixed", e, f)
		}
	}
}

func TestQuantFeedbackMatchesUnquantized(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	q := tinyOptions()
	q.DynamicSizing = false
	u := q
	u.QuantFeedback = false

	repQ, err := Run(tr, te, cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	repU, err := Run(tr, te, cfg, u)
	if err != nil {
		t.Fatal(err)
	}
	// int8 feedback should cost at most a couple points vs ideal float
	// feedback (§3.2.1's claim is that quantized feedback suffices).
	if repQ.Metrics.BestAcc() < repU.Metrics.BestAcc()-0.04 {
		t.Fatalf("quantized feedback %.3f much worse than unquantized %.3f",
			repQ.Metrics.BestAcc(), repU.Metrics.BestAcc())
	}
}

func TestKCentersAndRandomSelectorsRun(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	cfg.Epochs = 8
	for _, sel := range []Selector{SelectorKCenters, SelectorRandom, SelectorTopLoss} {
		opt := tinyOptions()
		opt.Selector = sel
		opt.DynamicSizing = false
		opt.SubsetBias = false
		rep, err := Run(tr, te, cfg, opt)
		if err != nil {
			t.Fatalf("%s: %v", sel, err)
		}
		if len(rep.Metrics.EpochAcc) != 8 {
			t.Fatalf("%s: %d epochs recorded, want 8", sel, len(rep.Metrics.EpochAcc))
		}
	}
}

func TestStaleSelectionIsWorseOrEqual(t *testing.T) {
	// The feedback-staleness knob behind NeSSA vs CRAIG: refreshing the
	// selection model every epoch should do at least as well as every 5.
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	fresh := tinyOptions()
	fresh.DynamicSizing = false
	fresh.SubsetBias = false
	fresh.SubsetFrac = 0.2
	stale := fresh
	stale.SelectEvery = 5

	repF, err := Run(tr, te, cfg, fresh)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := Run(tr, te, cfg, stale)
	if err != nil {
		t.Fatal(err)
	}
	if repF.Metrics.BestAcc() < repS.Metrics.BestAcc()-0.03 {
		t.Fatalf("fresh feedback %.3f clearly worse than stale %.3f — feedback loop broken",
			repF.Metrics.BestAcc(), repS.Metrics.BestAcc())
	}
}

func TestDeviceAccounting(t *testing.T) {
	spec := tinySpec()
	tr, te := data.Generate(spec)
	cfg := tinyCfg()
	cfg.Epochs = 6

	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.StoreDataset("tiny", img); err != nil {
		t.Fatal(err)
	}

	opt := tinyOptions()
	opt.DynamicSizing = false
	opt.SubsetBias = false
	opt.SubsetFrac = 0.25
	opt.Device = dev
	opt.DatasetName = "tiny"

	if _, err := Run(tr, te, cfg, opt); err != nil {
		t.Fatal(err)
	}

	p2p := dev.Acct.Bytes("p2p.read")
	sent := dev.Acct.Bytes("gpu.send")
	fb := dev.Acct.Bytes("gpu.feedback")
	rec := spec.BytesPerImage
	wantP2P := int64(cfg.Epochs) * int64(tr.Len()) * rec
	if p2p != wantP2P {
		t.Errorf("p2p.read = %d bytes, want %d (full candidate scan per epoch)", p2p, wantP2P)
	}
	wantSent := int64(cfg.Epochs) * int64(float64(tr.Len())*0.25) * rec
	if sent != wantSent {
		t.Errorf("gpu.send = %d bytes, want %d (subset per epoch)", sent, wantSent)
	}
	if fb == 0 {
		t.Error("no feedback bytes accounted")
	}
	// The §4.4 claim in miniature: host-interconnect traffic (subset +
	// feedback) is a fraction of the near-storage scan traffic.
	if sent+fb >= p2p {
		t.Errorf("host traffic (%d) not below near-storage traffic (%d)", sent+fb, p2p)
	}
	if dev.Clock.Now() <= 0 {
		t.Error("device clock did not advance")
	}
}

func TestDeviceWithoutNameFails(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	dev, _ := smartssd.New()
	opt := tinyOptions()
	opt.Device = dev
	if _, err := Run(tr, te, tinyCfg(), opt); err == nil {
		t.Fatal("expected error for device without dataset name")
	}
}

func TestOptionValidation(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	cases := []func(*Options){
		func(o *Options) { o.SubsetFrac = 0 },
		func(o *Options) { o.SubsetFrac = 1.5 },
		func(o *Options) { o.BiasWindow = 0 },
		func(o *Options) { o.PartitionM = 0 },
		func(o *Options) { o.ShrinkFactor = 1.2 },
		func(o *Options) { o.MinSubsetFrac = 0.9 }, // above initial 0.4
		func(o *Options) { o.Selector = "bogus" },
	}
	for i, mutate := range cases {
		opt := tinyOptions()
		mutate(&opt)
		if _, err := Run(tr, te, cfg, opt); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestReportInvariants(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	rep, err := Run(tr, te, cfg, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EpochSubsetFrac) != cfg.Epochs || len(rep.Metrics.EpochAcc) != cfg.Epochs {
		t.Fatal("per-epoch series length mismatch")
	}
	for e, f := range rep.EpochSubsetFrac {
		if f <= 0 || f > 1 {
			t.Fatalf("epoch %d subset fraction %v out of (0,1]", e, f)
		}
	}
	if rep.FinalSubsetFrac != rep.EpochSubsetFrac[cfg.Epochs-1] {
		t.Fatal("final subset fraction disagrees with last epoch")
	}
}

func TestLossHistory(t *testing.T) {
	h := newLossHistory(3, 2)
	if _, ok := h.mean(0); ok {
		t.Fatal("empty history should have no mean")
	}
	h.record([]int{0, 1}, []float32{1.0, 0.02})
	if h.learned(0, 0.1) || h.learned(1, 0.1) {
		t.Fatal("incomplete window must never mark a sample learned")
	}
	h.record([]int{0, 1}, []float32{0.5, 0.04})
	if m, _ := h.mean(0); m != 0.75 {
		t.Fatalf("mean = %v, want 0.75", m)
	}
	if h.learned(0, 0.1) {
		t.Fatal("high-loss sample marked learned")
	}
	if !h.learned(1, 0.1) {
		t.Fatal("low-loss sample with full window not marked learned")
	}
	// Ring overwrite: two more high losses displace sample 1's history.
	h.record([]int{1}, []float32{2})
	h.record([]int{1}, []float32{2})
	if h.learned(1, 0.1) {
		t.Fatal("stale low losses still marking sample learned after ring overwrite")
	}
}
