package core

import (
	"errors"
	"testing"
	"time"

	"nessa/internal/data"
	"nessa/internal/faults"
	"nessa/internal/smartssd"
	"nessa/internal/storage"
)

// Failure-injection tests: the controller must surface storage-layer
// failures as errors rather than silently training without the device
// accounting it was asked for.

func TestRunFailsWhenDatasetMissingFromDrive(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	opt := tinyOptions()
	opt.Device = dev
	opt.DatasetName = "never-stored"
	if _, err := Run(tr, te, tinyCfg(), opt); !errors.Is(err, faults.ErrNotFound) {
		t.Fatalf("err = %v, want wrapped faults.ErrNotFound", err)
	}
}

func TestRunFailsWhenStoredImageTruncated(t *testing.T) {
	spec := tinySpec()
	tr, te := data.Generate(spec)
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	// Store fewer records than the in-memory dataset: the candidate
	// scan reads past the stored extent and must fail.
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.StoreDataset("truncated", img[:len(img)/2]); err != nil {
		t.Fatal(err)
	}
	opt := tinyOptions()
	opt.Device = dev
	opt.DatasetName = "truncated"
	if _, err := Run(tr, te, tinyCfg(), opt); !errors.Is(err, faults.ErrOutOfRange) {
		t.Fatalf("err = %v, want wrapped faults.ErrOutOfRange", err)
	}
}

func TestRunFailsWhenFPGADRAMTooSmall(t *testing.T) {
	spec := tinySpec()
	tr, te := data.Generate(spec)
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.StoreDataset("tiny", img); err != nil {
		t.Fatal(err)
	}
	dev.Spec.DRAMBytes = 1024 // candidate scan cannot fit device DRAM
	opt := tinyOptions()
	opt.Device = dev
	opt.DatasetName = "tiny"
	if _, err := Run(tr, te, tinyCfg(), opt); err == nil {
		t.Fatal("expected error when the candidate scan exceeds FPGA DRAM")
	}
}

func TestStoreFailsOnFullDrive(t *testing.T) {
	cfg := storage.DefaultConfig()
	cfg.Capacity = 4 * 1024
	ssd, err := storage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	dev.SSD = ssd
	if err := dev.StoreDataset("big", make([]byte, 1<<20)); err == nil {
		t.Fatal("expected device-full error")
	}
}

func TestEmptyTrainingSetRejected(t *testing.T) {
	spec := tinySpec()
	empty := &data.Dataset{Spec: spec}
	_, te := data.Generate(spec)
	if _, err := Run(empty, te, tinyCfg(), tinyOptions()); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestInjectorRequiresDevice(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	opt := tinyOptions()
	opt.Injector = faults.NewInjector(faults.Profile{Seed: 1, TransientRate: 0.1})
	if _, err := Run(tr, te, tinyCfg(), opt); err == nil {
		t.Fatal("expected error for injector without a device")
	}
}

// faultRig generates the tiny dataset and a device with its image
// stored under "ds".
func faultRig(t *testing.T) (*data.Dataset, *data.Dataset, *smartssd.Device) {
	t.Helper()
	tr, te := data.Generate(tinySpec())
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.StoreDataset("ds", img); err != nil {
		t.Fatal(err)
	}
	return tr, te, dev
}

// TestFaultMatrix drives every fault class through the three outcomes
// the §4.6 recovery policy defines: retries recover, the degraded-mode
// fallback engages, or the run fails with a typed error when the fault
// is total and both paths are down. Seeds are pinned, so each row is a
// fixed, reproducible fault schedule.
func TestFaultMatrix(t *testing.T) {
	cases := []struct {
		name    string
		profile faults.Profile
		// fatal, when non-nil, is the sentinel the run error must wrap;
		// nil means the run must complete all epochs.
		fatal        error
		wantRetry    bool // Retries > 0
		wantFallback bool // FallbackEpochs > 0
		wantCorrupt  bool // CorruptDetected > 0
		wantHost     bool // HostFallbacks > 0
	}{
		{
			name:      "transient low: retries recover, no fallback",
			profile:   faults.Profile{Seed: 3, TransientRate: 0.15},
			wantRetry: true,
		},
		{
			name:         "transient heavy: scan exhausts, fallback completes the job",
			profile:      faults.Profile{Seed: 1, TransientRate: 0.55},
			wantRetry:    true,
			wantFallback: true,
		},
		{
			name:    "transient total: both paths down, fatal",
			profile: faults.Profile{Seed: 2, TransientRate: 1},
			fatal:   faults.ErrTransientIO,
		},
		{
			name:        "corrupt moderate: CRC detects, re-read recovers",
			profile:     faults.Profile{Seed: 1, CorruptRate: 0.3},
			wantRetry:   true,
			wantCorrupt: true,
		},
		{
			name:    "corrupt total: every re-read corrupt, fatal",
			profile: faults.Profile{Seed: 2, CorruptRate: 1},
			fatal:   faults.ErrCorruptRecord,
		},
		{
			name:     "link down total: host path carries every scan",
			profile:  faults.Profile{Seed: 1, LinkDownRate: 1},
			wantHost: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, te, dev := faultRig(t)
			opt := tinyOptions()
			opt.Device = dev
			opt.DatasetName = "ds"
			opt.Injector = faults.NewInjector(tc.profile)
			cfg := tinyCfg()
			rep, err := Run(tr, te, cfg, opt)
			if tc.fatal != nil {
				if !errors.Is(err, tc.fatal) {
					t.Fatalf("err = %v, want wrapped %v", err, tc.fatal)
				}
				return
			}
			if err != nil {
				t.Fatalf("run failed: %v (want recovery)", err)
			}
			if got := len(rep.Metrics.EpochLoss); got != cfg.Epochs {
				t.Fatalf("trained %d epochs, want %d", got, cfg.Epochs)
			}
			f := rep.Faults
			if tc.wantRetry && f.Retries == 0 {
				t.Error("no retries recorded")
			}
			if tc.wantFallback != (f.FallbackEpochs > 0) {
				t.Errorf("fallback epochs = %d, want engaged=%v", f.FallbackEpochs, tc.wantFallback)
			}
			if tc.wantCorrupt && f.CorruptDetected == 0 {
				t.Error("no corruption detected")
			}
			if tc.wantHost && f.HostFallbacks == 0 {
				t.Error("no host fallbacks recorded")
			}
			if f.Injected == nil || len(f.Injected) == 0 {
				t.Error("report carries no injected-fault ground truth")
			}
		})
	}
}

func TestLatencySpikesSlowTheClockButNotTheResult(t *testing.T) {
	trA, teA, devA := faultRig(t)
	optA := tinyOptions()
	optA.Device = devA
	optA.DatasetName = "ds"
	repA, err := Run(trA, teA, tinyCfg(), optA)
	if err != nil {
		t.Fatal(err)
	}

	trB, teB, devB := faultRig(t)
	optB := tinyOptions()
	optB.Device = devB
	optB.DatasetName = "ds"
	optB.Injector = faults.NewInjector(faults.Profile{Seed: 4, LatencyRate: 0.5, LatencySpike: 2 * time.Millisecond})
	repB, err := Run(trB, teB, tinyCfg(), optB)
	if err != nil {
		t.Fatal(err)
	}

	if devB.Clock.Now() <= devA.Clock.Now() {
		t.Errorf("spiked clock %v not slower than clean clock %v", devB.Clock.Now(), devA.Clock.Now())
	}
	// Latency faults perturb time only: the trajectory is untouched.
	for i := range repA.Metrics.EpochLoss {
		if repA.Metrics.EpochLoss[i] != repB.Metrics.EpochLoss[i] {
			t.Fatalf("epoch %d loss diverged under latency-only faults", i)
		}
	}
}
