package core

import (
	"testing"

	"nessa/internal/data"
	"nessa/internal/smartssd"
	"nessa/internal/storage"
)

// Failure-injection tests: the controller must surface storage-layer
// failures as errors rather than silently training without the device
// accounting it was asked for.

func TestRunFailsWhenDatasetMissingFromDrive(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	opt := tinyOptions()
	opt.Device = dev
	opt.DatasetName = "never-stored"
	if _, err := Run(tr, te, tinyCfg(), opt); err == nil {
		t.Fatal("expected error for dataset missing from the drive")
	}
}

func TestRunFailsWhenStoredImageTruncated(t *testing.T) {
	spec := tinySpec()
	tr, te := data.Generate(spec)
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	// Store fewer records than the in-memory dataset: the candidate
	// scan reads past the stored extent and must fail.
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.StoreDataset("truncated", img[:len(img)/2]); err != nil {
		t.Fatal(err)
	}
	opt := tinyOptions()
	opt.Device = dev
	opt.DatasetName = "truncated"
	if _, err := Run(tr, te, tinyCfg(), opt); err == nil {
		t.Fatal("expected error for truncated stored dataset")
	}
}

func TestRunFailsWhenFPGADRAMTooSmall(t *testing.T) {
	spec := tinySpec()
	tr, te := data.Generate(spec)
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.StoreDataset("tiny", img); err != nil {
		t.Fatal(err)
	}
	dev.Spec.DRAMBytes = 1024 // candidate scan cannot fit device DRAM
	opt := tinyOptions()
	opt.Device = dev
	opt.DatasetName = "tiny"
	if _, err := Run(tr, te, tinyCfg(), opt); err == nil {
		t.Fatal("expected error when the candidate scan exceeds FPGA DRAM")
	}
}

func TestStoreFailsOnFullDrive(t *testing.T) {
	cfg := storage.DefaultConfig()
	cfg.Capacity = 4 * 1024
	ssd, err := storage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	dev.SSD = ssd
	if err := dev.StoreDataset("big", make([]byte, 1<<20)); err == nil {
		t.Fatal("expected device-full error")
	}
}

func TestEmptyTrainingSetRejected(t *testing.T) {
	spec := tinySpec()
	empty := &data.Dataset{Spec: spec}
	_, te := data.Generate(spec)
	if _, err := Run(empty, te, tinyCfg(), tinyOptions()); err == nil {
		t.Fatal("expected error for empty training set")
	}
}
