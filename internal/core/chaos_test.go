package core

import (
	"reflect"
	"testing"

	"nessa/internal/faults"
)

// Chaos end-to-end tests: the full storage → selection → training
// pipeline under the standard fault profile (every fault class active
// at once) must complete, account for its recoveries, and — with
// faults disabled — produce a trajectory bit-identical to the raw
// pre-fault-tolerance path.

func TestChaosRunCompletes(t *testing.T) {
	for _, seed := range []uint64{40, 41, 45} {
		tr, te, dev := faultRig(t)
		opt := tinyOptions()
		opt.Device = dev
		opt.DatasetName = "ds"
		p := faults.DefaultChaosProfile()
		p.Seed = seed
		opt.Injector = faults.NewInjector(p)
		cfg := tinyCfg()
		rep, err := Run(tr, te, cfg, opt)
		if err != nil {
			t.Fatalf("seed %d: chaos run failed: %v", seed, err)
		}
		if got := len(rep.Metrics.EpochLoss); got != cfg.Epochs {
			t.Fatalf("seed %d: trained %d epochs, want %d", seed, got, cfg.Epochs)
		}
		f := rep.Faults
		if f.Retries == 0 {
			t.Errorf("seed %d: chaos run absorbed no retries", seed)
		}
		var injected int64
		for _, n := range f.Injected {
			injected += n
		}
		if injected == 0 {
			t.Errorf("seed %d: injector fired no faults under the chaos profile", seed)
		}
		// Every injected transient must be visible as an absorbed one —
		// the detection layer may not lose errors.
		if f.TransientErrors != int(f.Injected[faults.ClassTransient]) {
			t.Errorf("seed %d: absorbed %d transients, injector fired %d",
				seed, f.TransientErrors, f.Injected[faults.ClassTransient])
		}
	}
}

func TestChaosRunDeterministic(t *testing.T) {
	run := func() (*Report, error) {
		tr, te, dev := faultRig(t)
		opt := tinyOptions()
		opt.Device = dev
		opt.DatasetName = "ds"
		p := faults.DefaultChaosProfile()
		p.Seed = 41
		opt.Injector = faults.NewInjector(p)
		return Run(tr, te, tinyCfg(), opt)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Metrics.EpochLoss, b.Metrics.EpochLoss) {
		t.Fatal("identical chaos runs diverged in loss trajectory")
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatalf("identical chaos runs diverged in fault accounting:\n%+v\n%+v", a.Faults, b.Faults)
	}
}

// TestNoFaultTrajectoryBitIdentical pins the determinism guarantee of
// §4.6: the resilient scan path with no injector, with a zero-rate
// injector, and the raw pre-fault-tolerance path (RawScan) all produce
// exactly the same training trajectory. The recovery machinery is free
// on the clean path in the only sense that matters for reproducing the
// paper: it cannot perturb results.
func TestNoFaultTrajectoryBitIdentical(t *testing.T) {
	run := func(mutate func(*Options)) *Report {
		tr, te, dev := faultRig(t)
		opt := tinyOptions()
		opt.Device = dev
		opt.DatasetName = "ds"
		mutate(&opt)
		rep, err := Run(tr, te, tinyCfg(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	resilient := run(func(*Options) {})
	zeroRate := run(func(o *Options) { o.Injector = faults.NewInjector(faults.Profile{Seed: 99}) })
	raw := run(func(o *Options) { o.RawScan = true })

	if !reflect.DeepEqual(resilient.Metrics.EpochLoss, raw.Metrics.EpochLoss) ||
		!reflect.DeepEqual(resilient.Metrics.EpochAcc, raw.Metrics.EpochAcc) {
		t.Fatal("resilient clean path diverged from the raw scan path")
	}
	if !reflect.DeepEqual(resilient.Metrics.EpochLoss, zeroRate.Metrics.EpochLoss) ||
		!reflect.DeepEqual(resilient.Metrics.EpochAcc, zeroRate.Metrics.EpochAcc) {
		t.Fatal("zero-rate injector perturbed the trajectory")
	}
	if f := resilient.Faults; f.Retries != 0 || f.FallbackEpochs != 0 || f.CorruptDetected != 0 {
		t.Fatalf("clean run recorded recovery activity: %+v", f)
	}
}
