package core

// lossHistory keeps the most recent `window` observed losses per
// sample — the record behind subset biasing (§3.2.2): "We record
// losses of the current training examples from the most recent five
// epochs, mark the samples with small values, and drop the marked
// samples from the training set every twenty epochs."
type lossHistory struct {
	window int
	buf    [][]float32 // per-sample ring of recent losses
	pos    []int
	count  []int
}

func newLossHistory(n, window int) *lossHistory {
	if window <= 0 {
		window = 1
	}
	h := &lossHistory{
		window: window,
		buf:    make([][]float32, n),
		pos:    make([]int, n),
		count:  make([]int, n),
	}
	return h
}

// record stores one observed loss per listed sample.
func (h *lossHistory) record(indices []int, losses []float32) {
	for i, idx := range indices {
		if h.buf[idx] == nil {
			h.buf[idx] = make([]float32, h.window)
		}
		h.buf[idx][h.pos[idx]] = losses[i]
		h.pos[idx] = (h.pos[idx] + 1) % h.window
		if h.count[idx] < h.window {
			h.count[idx]++
		}
	}
}

// mean reports the mean of the recorded losses for sample idx and
// whether any observation exists.
func (h *lossHistory) mean(idx int) (float32, bool) {
	c := h.count[idx]
	if c == 0 {
		return 0, false
	}
	var sum float32
	for i := 0; i < c; i++ {
		sum += h.buf[idx][i]
	}
	return sum / float32(c), true
}

// learned reports whether the sample's full recent window sits below
// the threshold — i.e. the model has confidently learned it. Samples
// with an incomplete window are never marked: the paper gives the
// model "sufficient time to learn all the data points".
func (h *lossHistory) learned(idx int, threshold float32) bool {
	if h.count[idx] < h.window {
		return false
	}
	m, ok := h.mean(idx)
	return ok && m < threshold
}
