package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"nessa/internal/data"
	"nessa/internal/faults"
	"nessa/internal/smartssd"
)

// Device-loss recovery end-to-end tests (§4.11): erasure-coded
// placement keeps the training trajectory bit-identical through a
// whole-device loss, and checkpointed sessions resume exactly.

// clusterRig builds a k-data + m-parity cluster with the tiny dataset
// striped onto it.
func clusterRig(t *testing.T, dataShards, parityShards int) (*data.Dataset, *data.Dataset, *smartssd.Cluster) {
	t.Helper()
	spec := tinySpec()
	tr, te := data.Generate(spec)
	c, err := smartssd.NewCluster(dataShards + parityShards)
	if err != nil {
		t.Fatal(err)
	}
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StripeDataset("ds", img, spec.BytesPerImage, smartssd.Placement{
		DataShards: dataShards, ParityShards: parityShards,
	}); err != nil {
		t.Fatal(err)
	}
	return tr, te, c
}

func clusterOptions(c *smartssd.Cluster) Options {
	opt := tinyOptions()
	opt.Cluster = c
	opt.DatasetName = "ds"
	return opt
}

// assertSameTrajectory fails unless both reports trained identical
// epochs: same losses, accuracies, and subset sizes, bit for bit.
func assertSameTrajectory(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if !reflect.DeepEqual(a.Metrics.EpochLoss, b.Metrics.EpochLoss) {
		t.Errorf("%s: epoch losses diverge", label)
	}
	if !reflect.DeepEqual(a.Metrics.EpochAcc, b.Metrics.EpochAcc) {
		t.Errorf("%s: epoch accuracies diverge", label)
	}
	if !reflect.DeepEqual(a.Metrics.SubsetSizes, b.Metrics.SubsetSizes) {
		t.Errorf("%s: subset sizes diverge", label)
	}
	if !reflect.DeepEqual(a.EpochSubsetFrac, b.EpochSubsetFrac) {
		t.Errorf("%s: subset fractions diverge", label)
	}
}

func TestClusterRunMatchesDevicelessRun(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	plain, err := Run(tr, te, tinyCfg(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, _, c := clusterRig(t, 3, 1)
	rep, err := Run(tr, te, tinyCfg(), clusterOptions(c))
	if err != nil {
		t.Fatal(err)
	}
	// Parity configured but no fault: the clean path must not disturb
	// the trajectory, and nothing may be reconstructed.
	assertSameTrajectory(t, "cluster vs deviceless", plain, rep)
	if rep.Recovery.DegradedReads != 0 || rep.Recovery.DevicesLost != 0 {
		t.Fatalf("clean cluster run reported recovery activity: %+v", rep.Recovery)
	}
	if rep.Recovery.ResumedFromEpoch != -1 {
		t.Fatalf("fresh run ResumedFromEpoch = %d, want -1", rep.Recovery.ResumedFromEpoch)
	}
	if rep.Faults.ScanAttempts == 0 {
		t.Fatal("cluster scans recorded no read attempts")
	}
}

func TestKillOneDeviceMidRunBitIdentical(t *testing.T) {
	tr, te, c := clusterRig(t, 3, 1)
	clean, err := Run(tr, te, tinyCfg(), clusterOptions(c))
	if err != nil {
		t.Fatal(err)
	}

	// Same placement, but device 1 dies permanently after its third
	// completed scan — mid-reselection-schedule, well inside the run.
	_, _, killed := clusterRig(t, 3, 1)
	opt := clusterOptions(killed)
	opt.Injector = faults.NewInjector(faults.Profile{
		Seed:  9,
		Kills: []faults.DeviceKill{{Device: 1, AfterScans: 3}},
	})
	rep, err := Run(tr, te, tinyCfg(), opt)
	if err != nil {
		t.Fatalf("run with one lost device failed: %v", err)
	}
	assertSameTrajectory(t, "killed vs clean", clean, rep)
	if rep.Recovery.DevicesLost != 1 {
		t.Fatalf("DevicesLost = %d, want 1", rep.Recovery.DevicesLost)
	}
	if rep.Recovery.DegradedReads == 0 || rep.Recovery.ReconstructedBytes == 0 {
		t.Fatalf("loss absorbed without reconstruction: %+v", rep.Recovery)
	}
	if rep.Recovery.RebuildTime != 0 {
		t.Fatalf("no spare attached, yet RebuildTime = %v", rep.Recovery.RebuildTime)
	}
}

func TestAutoRebuildStopsDegradedReads(t *testing.T) {
	tr, te, c := clusterRig(t, 3, 1)
	spare, err := smartssd.New()
	if err != nil {
		t.Fatal(err)
	}
	c.AttachSpare(spare)
	opt := clusterOptions(c)
	opt.AutoRebuild = true
	opt.Injector = faults.NewInjector(faults.Profile{
		Seed:  9,
		Kills: []faults.DeviceKill{{Device: 1, AfterScans: 3}},
	})
	rep, err := Run(tr, te, tinyCfg(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovery.RebuildTime <= 0 {
		t.Fatal("auto-rebuild never ran")
	}
	// The first degraded scan triggers the rebuild; every later scan
	// runs on the restored group.
	if rep.Recovery.DegradedReads != 1 {
		t.Fatalf("DegradedReads = %d, want exactly 1 before the rebuild", rep.Recovery.DegradedReads)
	}
	if c.Spares() != 0 {
		t.Fatal("spare not consumed by the rebuild")
	}
	if got := c.DeviceHealth(1); got != smartssd.HealthHealthy {
		t.Fatalf("rebuilt slot health = %v, want healthy", got)
	}
}

func TestDoubleLossBeyondParityIsFatal(t *testing.T) {
	tr, te, c := clusterRig(t, 3, 1)
	opt := clusterOptions(c)
	opt.Injector = faults.NewInjector(faults.Profile{
		Seed: 9,
		Kills: []faults.DeviceKill{
			{Device: 0, AfterScans: 2},
			{Device: 2, AfterScans: 2},
		},
	})
	_, err := Run(tr, te, tinyCfg(), opt)
	if !errors.Is(err, faults.ErrDeviceLost) {
		t.Fatalf("err = %v, want wrapped faults.ErrDeviceLost (two losses, one parity)", err)
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()

	full, err := Run(tr, te, cfg, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Same run, checkpointing every 5 epochs; keep the mid-run blob.
	const resumeAt = 15
	var blob []byte
	opt := tinyOptions()
	opt.CheckpointEvery = 5
	opt.CheckpointSink = func(epoch int, b []byte) error {
		if epoch == resumeAt {
			blob = append([]byte(nil), b...)
		}
		return nil
	}
	chk, err := Run(tr, te, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpointing is observation only: the trajectory is untouched.
	assertSameTrajectory(t, "checkpointing vs plain", full, chk)
	if blob == nil {
		t.Fatalf("no checkpoint captured at epoch %d", resumeAt)
	}

	resumed := tinyOptions()
	resumed.Resume = blob
	rep, err := Run(tr, te, cfg, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovery.ResumedFromEpoch != resumeAt {
		t.Fatalf("ResumedFromEpoch = %d, want %d", rep.Recovery.ResumedFromEpoch, resumeAt)
	}
	// The resumed session replays epochs [resumeAt, Epochs) exactly:
	// the whole trajectory — carried prefix plus recomputed suffix —
	// is bit-identical to the uninterrupted run.
	assertSameTrajectory(t, "resumed vs uninterrupted", full, rep)
	if len(rep.Metrics.EpochLoss) != cfg.Epochs {
		t.Fatalf("resumed report holds %d epochs, want %d", len(rep.Metrics.EpochLoss), cfg.Epochs)
	}
	if rep.CandidatesLeft != full.CandidatesLeft || rep.Dropped != full.Dropped {
		t.Fatalf("pool bookkeeping diverged: %d/%d vs %d/%d",
			rep.CandidatesLeft, rep.Dropped, full.CandidatesLeft, full.Dropped)
	}
}

func TestResumeRejectsCorruptCheckpoints(t *testing.T) {
	tr, te := data.Generate(tinySpec())
	cfg := tinyCfg()
	var blob []byte
	opt := tinyOptions()
	opt.CheckpointSink = func(epoch int, b []byte) error {
		blob = append([]byte(nil), b...)
		return nil
	}
	if _, err := Run(tr, te, cfg, opt); err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte)) Options {
		bad := append([]byte(nil), blob...)
		mutate(bad)
		o := tinyOptions()
		o.Resume = bad
		return o
	}
	cases := []struct {
		name string
		opt  Options
	}{
		{"bad magic", corrupt(func(b []byte) { b[0] ^= 0xff })},
		{"bad version", corrupt(func(b []byte) { b[4] = 99 })},
		{"truncated", func() Options {
			o := tinyOptions()
			o.Resume = blob[:len(blob)/2]
			return o
		}()},
		{"trailing bytes", func() Options {
			o := tinyOptions()
			o.Resume = append(append([]byte(nil), blob...), 0)
			return o
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tr, te, cfg, tc.opt); err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
		})
	}

	// A checkpoint from a different loss-history window is a config
	// mismatch, not a corruption — still rejected.
	o := tinyOptions()
	o.BiasWindow = 4
	o.Resume = blob
	if _, err := Run(tr, te, cfg, o); err == nil {
		t.Fatal("checkpoint restored under a mismatched configuration")
	}
}

// TestClusterChaosMixedInjectors is the cluster chaos drill: one
// device stalls, one corrupts payloads, one dies outright — all at
// once, each on its own seeded schedule. The run must complete every
// epoch, absorb each fault class, and two identically-seeded runs
// must produce identical trajectories.
func TestClusterChaosMixedInjectors(t *testing.T) {
	run := func() (*Report, error) {
		tr, te, c := clusterRig(t, 3, 1)
		c.Devices[0].SetInjector(faults.NewInjector(faults.Profile{
			Seed: 31, StallRate: 0.3, StallFor: 2 * time.Millisecond,
		}))
		c.Devices[2].SetInjector(faults.NewInjector(faults.Profile{
			Seed: 32, CorruptRate: 0.2,
		}))
		c.Devices[1].SetInjector(faults.NewInjector(faults.Profile{
			Seed: 33, Kills: []faults.DeviceKill{{Device: 1, AfterScans: 2}},
		}))
		cfg := tinyCfg()
		return Run(tr, te, cfg, clusterOptions(c))
	}
	a, err := run()
	if err != nil {
		t.Fatalf("mixed-injector chaos run failed: %v", err)
	}
	if got, want := len(a.Metrics.EpochLoss), tinyCfg().Epochs; got != want {
		t.Fatalf("trained %d epochs, want %d", got, want)
	}
	if a.Recovery.DevicesLost != 1 || a.Recovery.DegradedReads == 0 {
		t.Fatalf("device loss not absorbed: %+v", a.Recovery)
	}
	if a.Faults.CorruptDetected == 0 {
		t.Fatal("corruption injector fired but no CRC failure was caught")
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrajectory(t, "chaos repeat", a, b)
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatalf("fault accounting diverged between identical runs:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if !reflect.DeepEqual(a.Recovery, b.Recovery) {
		t.Fatalf("recovery accounting diverged between identical runs:\n%+v\n%+v", a.Recovery, b.Recovery)
	}
}
