package quant

import (
	"math"
	"testing"
	"testing/quick"

	"nessa/internal/nn"
	"nessa/internal/tensor"
)

func TestQuantizeBitsRoundTripErrorBound(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		bits := 2 + r.Intn(15)
		m := tensor.NewMatrix(1+r.Intn(6), 1+r.Intn(6))
		m.FillNormal(r, 2)
		q, err := QuantizeBits(m, bits)
		if err != nil {
			return false
		}
		d := q.Dequantize()
		for i := range m.Data {
			if math.Abs(float64(m.Data[i]-d.Data[i])) > float64(q.Scale)/2+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeBitsMatchesInt8AtEight(t *testing.T) {
	r := tensor.NewRNG(3)
	m := tensor.NewMatrix(6, 6)
	m.FillNormal(r, 1)
	q8 := Quantize(m)
	qb, err := QuantizeBits(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q8.Data {
		if int16(q8.Data[i]) != qb.Data[i] {
			t.Fatalf("element %d: int8=%d bits8=%d", i, q8.Data[i], qb.Data[i])
		}
	}
}

func TestQuantizeBitsRejectsBadWidths(t *testing.T) {
	m := tensor.NewMatrix(2, 2)
	for _, bits := range []int{0, 1, 17, -3} {
		if _, err := QuantizeBits(m, bits); err == nil {
			t.Errorf("bit width %d accepted", bits)
		}
	}
}

func TestBitErrorShrinksWithWidth(t *testing.T) {
	r := tensor.NewRNG(7)
	m := tensor.NewMatrix(20, 20)
	m.FillNormal(r, 1)
	var prev float64 = math.Inf(1)
	for _, bits := range []int{2, 4, 8, 12, 16} {
		q, err := QuantizeBits(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		d := q.Dequantize()
		var worst float64
		for i := range m.Data {
			if e := math.Abs(float64(m.Data[i] - d.Data[i])); e > worst {
				worst = e
			}
		}
		if worst > prev {
			t.Fatalf("error grew from %v to %v at %d bits", prev, worst, bits)
		}
		prev = worst
	}
}

func TestBitSizePacking(t *testing.T) {
	m := tensor.NewMatrix(4, 4) // 16 elements
	q4, _ := QuantizeBits(m, 4)
	// 16 × 4 bits = 8 bytes + 4-byte scale.
	if got := q4.SizeBytes(); got != 12 {
		t.Fatalf("4-bit size = %d, want 12", got)
	}
	q8, _ := QuantizeBits(m, 8)
	if got := q8.SizeBytes(); got != 20 {
		t.Fatalf("8-bit size = %d, want 20", got)
	}
}

func TestBitModelAgreementImprovesWithWidth(t *testing.T) {
	r := tensor.NewRNG(11)
	m := nn.NewMLP(r, 16, []int{32}, 10)
	x := tensor.NewMatrix(128, 16)
	x.FillNormal(r, 1)

	var prev float64 = -1
	for _, bits := range []int{2, 4, 8, 16} {
		qm, err := QuantizeModelBits(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		agr := AgreementWithFloat(m, qm, x)
		if agr < prev-0.05 {
			t.Fatalf("agreement regressed at %d bits: %v -> %v", bits, prev, agr)
		}
		prev = agr
	}
	// 16-bit quantization should be essentially lossless for argmax.
	if prev < 0.99 {
		t.Fatalf("16-bit agreement = %v, want ~1", prev)
	}
}

func TestBitModelSizeScalesWithBits(t *testing.T) {
	r := tensor.NewRNG(13)
	m := nn.NewMLP(r, 64, []int{128}, 10)
	q4, _ := QuantizeModelBits(m, 4)
	q8, _ := QuantizeModelBits(m, 8)
	q16, _ := QuantizeModelBits(m, 16)
	if !(q4.SizeBytes() < q8.SizeBytes() && q8.SizeBytes() < q16.SizeBytes()) {
		t.Fatalf("sizes not increasing: %d, %d, %d", q4.SizeBytes(), q8.SizeBytes(), q16.SizeBytes())
	}
	// 16-bit payload should be roughly 2× the 8-bit payload.
	ratio := float64(q16.SizeBytes()) / float64(q8.SizeBytes())
	if ratio < 1.7 || ratio > 2.2 {
		t.Fatalf("16/8 bit size ratio = %v, want ~2", ratio)
	}
}

func TestAgreementEmptyBatch(t *testing.T) {
	r := tensor.NewRNG(17)
	m := nn.NewMLP(r, 4, nil, 3)
	qm, _ := QuantizeModelBits(m, 8)
	if got := AgreementWithFloat(m, qm, tensor.NewMatrix(0, 4)); got != 0 {
		t.Fatalf("empty batch agreement = %v, want 0", got)
	}
}
