package quant

import (
	"fmt"
	"math"

	"nessa/internal/nn"
	"nessa/internal/tensor"
)

// BitTensor is a symmetric fixed-point quantization of a matrix at an
// arbitrary bit width (2..16). It generalizes the int8 Tensor for the
// bit-width ablation: how much selection quality does NeSSA's feedback
// loop lose as the weight transfer shrinks?
type BitTensor struct {
	Rows, Cols int
	Bits       int
	Scale      float32
	Data       []int16 // values in [-(2^(b-1)-1), 2^(b-1)-1]
}

// QuantizeBits converts m to a signed fixed-point representation with
// the given bit width.
func QuantizeBits(m *tensor.Matrix, bits int) (*BitTensor, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("quant: bit width %d out of [2,16]", bits)
	}
	q := &BitTensor{Rows: m.Rows, Cols: m.Cols, Bits: bits, Data: make([]int16, len(m.Data))}
	limit := float64(int32(1)<<(bits-1) - 1)
	var maxAbs float32
	for _, v := range m.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		q.Scale = 1
		return q, nil
	}
	q.Scale = maxAbs / float32(limit)
	inv := 1 / q.Scale
	for i, v := range m.Data {
		r := math.Round(float64(v * inv))
		if r > limit {
			r = limit
		} else if r < -limit {
			r = -limit
		}
		q.Data[i] = int16(r)
	}
	return q, nil
}

// Dequantize expands q back to float32.
func (q *BitTensor) Dequantize() *tensor.Matrix {
	m := tensor.NewMatrix(q.Rows, q.Cols)
	for i, v := range q.Data {
		m.Data[i] = float32(v) * q.Scale
	}
	return m
}

// SizeBytes reports the packed wire size: bits·elements/8 rounded up,
// plus the 4-byte scale.
func (q *BitTensor) SizeBytes() int64 {
	return int64(len(q.Data)*q.Bits+7)/8 + 4
}

// BitModel is a bit-width-parameterized quantized model snapshot.
type BitModel struct {
	In, Classes int
	Bits        int
	Weights     []*BitTensor
	Biases      [][]float32
}

// QuantizeModelBits snapshots m at the given bit width.
func QuantizeModelBits(m *nn.MLP, bits int) (*BitModel, error) {
	qm := &BitModel{In: m.In, Classes: m.Classes, Bits: bits}
	for _, l := range m.Layers {
		w, err := QuantizeBits(l.W, bits)
		if err != nil {
			return nil, err
		}
		qm.Weights = append(qm.Weights, w)
		qm.Biases = append(qm.Biases, append([]float32(nil), l.B...))
	}
	return qm, nil
}

// Dequantized reconstructs the float32 model carrying the fixed-point
// rounding error.
func (qm *BitModel) Dequantized() *nn.MLP {
	m := &nn.MLP{In: qm.In, Classes: qm.Classes}
	for i, w := range qm.Weights {
		m.Layers = append(m.Layers, &nn.Dense{
			W: w.Dequantize(),
			B: append([]float32(nil), qm.Biases[i]...),
		})
	}
	return m
}

// SizeBytes reports the total feedback-transfer size at this bit width.
func (qm *BitModel) SizeBytes() int64 {
	var n int64
	for i, w := range qm.Weights {
		n += w.SizeBytes() + int64(4*len(qm.Biases[i]))
	}
	return n
}

// AgreementWithFloat measures, on a batch of inputs, the fraction of
// argmax predictions the quantized model shares with the float model —
// the selection-fidelity proxy for the bit-width ablation.
func AgreementWithFloat(m *nn.MLP, qm *BitModel, x *tensor.Matrix) float64 {
	if x.Rows == 0 {
		return 0
	}
	orig := m.Forward(x).Clone()
	deq := qm.Dequantized().Forward(x)
	agree := 0
	for i := 0; i < x.Rows; i++ {
		if tensor.Argmax(orig.Row(i)) == tensor.Argmax(deq.Row(i)) {
			agree++
		}
	}
	return float64(agree) / float64(x.Rows)
}
