package quant

import (
	"math"
	"testing"
	"testing/quick"

	"nessa/internal/nn"
	"nessa/internal/tensor"
)

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	// Property: reconstruction error per element never exceeds Scale/2.
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m := tensor.NewMatrix(1+r.Intn(8), 1+r.Intn(8))
		m.FillNormal(r, 3)
		q := Quantize(m)
		d := q.Dequantize()
		for i := range m.Data {
			e := math.Abs(float64(m.Data[i] - d.Data[i]))
			if e > float64(q.Scale)/2+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeZeroMatrix(t *testing.T) {
	m := tensor.NewMatrix(3, 3)
	q := Quantize(m)
	d := q.Dequantize()
	for _, v := range d.Data {
		if v != 0 {
			t.Fatalf("zero matrix round-trip produced %v", v)
		}
	}
}

func TestQuantizeExtremesMapTo127(t *testing.T) {
	m := tensor.FromRows([][]float32{{-2, 0, 2}})
	q := Quantize(m)
	if q.Data[0] != -127 || q.Data[2] != 127 {
		t.Fatalf("extremes = %d, %d; want -127, 127", q.Data[0], q.Data[2])
	}
	if q.Data[1] != 0 {
		t.Fatalf("zero maps to %d, want 0", q.Data[1])
	}
}

func TestQuantizeSignSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m := tensor.NewMatrix(2, 4)
		m.FillNormal(r, 1)
		neg := m.Clone()
		neg.Scale(-1)
		qa, qb := Quantize(m), Quantize(neg)
		for i := range qa.Data {
			if qa.Data[i] != -qb.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeModelRoundTripKeepsPredictions(t *testing.T) {
	r := tensor.NewRNG(5)
	m := nn.NewMLP(r, 16, []int{32}, 10)
	x := tensor.NewMatrix(32, 16)
	x.FillNormal(r, 1)

	orig := m.Forward(x).Clone()
	deq := QuantizeModel(m).Dequantized()
	got := deq.Forward(x)

	agree := 0
	for i := 0; i < x.Rows; i++ {
		if tensor.Argmax(orig.Row(i)) == tensor.Argmax(got.Row(i)) {
			agree++
		}
	}
	// int8 weights should rarely flip an argmax on random inputs.
	if agree < x.Rows*9/10 {
		t.Fatalf("only %d/%d predictions survived quantization", agree, x.Rows)
	}
}

func TestModelSizeBytes(t *testing.T) {
	r := tensor.NewRNG(6)
	m := nn.NewMLP(r, 4, nil, 3)
	qm := QuantizeModel(m)
	// One layer: 12 int8 weights + 4-byte scale + 3 float32 biases.
	want := int64(12 + 4 + 12)
	if got := qm.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestCompressionRatioNearFour(t *testing.T) {
	r := tensor.NewRNG(7)
	m := nn.NewMLP(r, 128, []int{256}, 100)
	ratio := CompressionRatio(m)
	if ratio < 3.5 || ratio > 4.01 {
		t.Fatalf("compression ratio = %v, want ~4", ratio)
	}
}

func TestMaxAbsErrorWithinHalfScale(t *testing.T) {
	r := tensor.NewRNG(8)
	m := tensor.NewMatrix(10, 10)
	m.FillNormal(r, 2)
	q := Quantize(m)
	if e := MaxAbsError(m); e > q.Scale/2+1e-6 {
		t.Fatalf("MaxAbsError = %v exceeds scale/2 = %v", e, q.Scale/2)
	}
}
