// Package quant implements the symmetric int8 weight quantization
// NeSSA uses for its feedback loop (paper §3.2.1, contribution 2): the
// target model trained on the GPU is quantized before being shipped
// back over the narrow host link to the FPGA, where the selection
// model runs its forward passes on the quantized weights. Quantizing
// both shrinks the feedback transfer by ~4× and matches the int8 MAC
// arrays the FPGA kernel is built from (see internal/fpga).
package quant

import (
	"fmt"
	"math"

	"nessa/internal/nn"
	"nessa/internal/tensor"
)

// Tensor is a symmetric per-tensor int8 quantization of a float32
// matrix: value ≈ Scale · int8.
type Tensor struct {
	Rows, Cols int
	Scale      float32
	Data       []int8
}

// Quantize converts m to int8 with a symmetric per-tensor scale chosen
// so the largest-magnitude element maps to ±127.
func Quantize(m *tensor.Matrix) *Tensor {
	q := &Tensor{Rows: m.Rows, Cols: m.Cols, Data: make([]int8, len(m.Data))}
	var maxAbs float32
	for _, v := range m.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		q.Scale = 1
		return q
	}
	q.Scale = maxAbs / 127
	inv := 1 / q.Scale
	for i, v := range m.Data {
		r := math.Round(float64(v * inv))
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Dequantize expands q back to float32.
func (q *Tensor) Dequantize() *tensor.Matrix {
	m := tensor.NewMatrix(q.Rows, q.Cols)
	for i, v := range q.Data {
		m.Data[i] = float32(v) * q.Scale
	}
	return m
}

// SizeBytes reports the wire size of the quantized tensor (int8 payload
// plus the 4-byte scale), which is what crosses the host link in the
// feedback transfer.
func (q *Tensor) SizeBytes() int64 { return int64(len(q.Data)) + 4 }

// Model is an int8-quantized snapshot of an nn.MLP: the selection model
// that lives on the FPGA. Biases stay float32 (they are tiny and feed
// the accumulators directly, as in standard int8 inference).
type Model struct {
	In, Classes int
	Weights     []*Tensor
	Biases      [][]float32
}

// QuantizeModel snapshots m into an int8 Model.
func QuantizeModel(m *nn.MLP) *Model {
	qm := &Model{In: m.In, Classes: m.Classes}
	for _, l := range m.Layers {
		qm.Weights = append(qm.Weights, Quantize(l.W))
		qm.Biases = append(qm.Biases, append([]float32(nil), l.B...))
	}
	return qm
}

// SizeBytes reports the total feedback-transfer size of the model:
// quantized weights plus float32 biases.
func (qm *Model) SizeBytes() int64 {
	var n int64
	for i, w := range qm.Weights {
		n += w.SizeBytes() + int64(4*len(qm.Biases[i]))
	}
	return n
}

// Dequantized reconstructs a float32 MLP from the quantized snapshot.
// This is the model the FPGA selection kernel evaluates: numerically it
// carries the int8 rounding error, exactly like running int8 MACs.
func (qm *Model) Dequantized() *nn.MLP {
	m := &nn.MLP{In: qm.In, Classes: qm.Classes}
	for i, w := range qm.Weights {
		m.Layers = append(m.Layers, &nn.Dense{
			W: w.Dequantize(),
			B: append([]float32(nil), qm.Biases[i]...),
		})
	}
	return m
}

// MaxAbsError reports the worst-case reconstruction error of quantizing
// m, which for symmetric rounding is at most Scale/2 per element.
func MaxAbsError(m *tensor.Matrix) float32 {
	q := Quantize(m)
	d := q.Dequantize()
	var worst float32
	for i := range m.Data {
		e := m.Data[i] - d.Data[i]
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
	}
	return worst
}

// CompressionRatio reports the float32→int8 transfer shrink factor for
// a model with the given parameter count; ≈4 for large models.
func CompressionRatio(m *nn.MLP) float64 {
	var f32, q int64
	for _, l := range m.Layers {
		f32 += int64(4 * (len(l.W.Data) + len(l.B)))
	}
	q = QuantizeModel(m).SizeBytes()
	if q == 0 {
		return 0
	}
	return float64(f32) / float64(q)
}

// String describes the tensor for diagnostics.
func (q *Tensor) String() string {
	return fmt.Sprintf("quant.Tensor(%dx%d, scale=%g)", q.Rows, q.Cols, q.Scale)
}
