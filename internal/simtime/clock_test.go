package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock()
		prev := c.Now()
		for _, s := range steps {
			now := c.Advance(time.Duration(s) * time.Microsecond)
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now = %v, want 0", c.Now())
	}
}

func TestAccountantBuckets(t *testing.T) {
	a := NewAccountant()
	a.AddTime("gpu.compute", 2*time.Second)
	a.AddTime("gpu.compute", 3*time.Second)
	a.AddTime("io.load", time.Second)
	a.AddBytes("p2p", 100)
	a.AddBytes("host", 50)

	if got := a.Time("gpu.compute"); got != 5*time.Second {
		t.Errorf("gpu.compute = %v, want 5s", got)
	}
	if got := a.TotalTime(); got != 6*time.Second {
		t.Errorf("TotalTime = %v, want 6s", got)
	}
	if got := a.TotalBytes(); got != 150 {
		t.Errorf("TotalBytes = %d, want 150", got)
	}
	if got := a.Bytes("missing"); got != 0 {
		t.Errorf("missing bucket = %d, want 0", got)
	}
}

func TestAccountantBucketsSorted(t *testing.T) {
	a := NewAccountant()
	a.AddTime("z", time.Second)
	a.AddTime("a", time.Second)
	a.AddTime("m", time.Second)
	buckets := a.TimeBuckets()
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i-1].Name >= buckets[i].Name {
			t.Fatalf("buckets not sorted: %v", buckets)
		}
	}
}

func TestAccountantReset(t *testing.T) {
	a := NewAccountant()
	a.AddTime("x", time.Second)
	a.AddBytes("x", 10)
	a.Reset()
	if a.TotalTime() != 0 || a.TotalBytes() != 0 {
		t.Error("Reset did not clear buckets")
	}
}

func TestAccountantNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative charge")
		}
	}()
	NewAccountant().AddTime("x", -time.Second)
}

func TestAccountantConcurrentUse(t *testing.T) {
	a := NewAccountant()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				a.AddTime("t", time.Millisecond)
				a.AddBytes("b", 1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := a.Time("t"); got != 800*time.Millisecond {
		t.Errorf("concurrent time sum = %v, want 800ms", got)
	}
	if got := a.Bytes("b"); got != 800 {
		t.Errorf("concurrent byte sum = %d, want 800", got)
	}
}
