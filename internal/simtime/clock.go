// Package simtime provides the discrete simulated clock and accounting
// log shared by every device model in the repository (SSD, SmartSSD
// links, FPGA kernel, GPU). All simulated durations are expressed as
// time.Duration values on a virtual timeline that is completely
// decoupled from wall-clock time, so experiments are deterministic and
// fast regardless of how much "hardware time" they model.
package simtime

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is a monotonically advancing simulated clock. The zero value is
// ready to use and starts at instant zero.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock positioned at instant zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated instant as an offset from zero.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new instant.
// Advancing by a negative duration panics: simulated time, like real
// time, only moves forward.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("simtime: cannot advance clock by negative duration %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Reset rewinds the clock to instant zero. Intended for reusing a clock
// between independent experiment runs.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Accountant aggregates simulated time and simulated bytes moved into
// named buckets (e.g. "p2p.read", "gpu.compute"). It is how experiments
// answer questions such as "what fraction of epoch time was data
// movement?" and "how many bytes crossed the host interconnect?".
type Accountant struct {
	mu    sync.Mutex
	time  map[string]time.Duration
	bytes map[string]int64
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{
		time:  make(map[string]time.Duration),
		bytes: make(map[string]int64),
	}
}

// AddTime charges d of simulated time to bucket name.
func (a *Accountant) AddTime(name string, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative time charge %v to %q", d, name))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.time[name] += d
}

// AddBytes charges n simulated bytes to bucket name.
func (a *Accountant) AddBytes(name string, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("simtime: negative byte charge %d to %q", n, name))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bytes[name] += n
}

// Time reports the accumulated simulated time in bucket name.
func (a *Accountant) Time(name string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.time[name]
}

// Bytes reports the accumulated simulated bytes in bucket name.
func (a *Accountant) Bytes(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytes[name]
}

// TotalTime reports the sum over every time bucket.
func (a *Accountant) TotalTime() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t time.Duration
	for _, d := range a.time {
		t += d
	}
	return t
}

// TotalBytes reports the sum over every byte bucket.
func (a *Accountant) TotalBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, b := range a.bytes {
		n += b
	}
	return n
}

// TimeBuckets returns the time buckets sorted by name, for stable
// reporting.
func (a *Accountant) TimeBuckets() []TimeBucket {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TimeBucket, 0, len(a.time))
	for k, v := range a.time {
		out = append(out, TimeBucket{Name: k, Duration: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByteBuckets returns the byte buckets sorted by name.
func (a *Accountant) ByteBuckets() []ByteBucket {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ByteBucket, 0, len(a.bytes))
	for k, v := range a.bytes {
		out = append(out, ByteBucket{Name: k, Bytes: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset clears every bucket.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.time = make(map[string]time.Duration)
	a.bytes = make(map[string]int64)
}

// TimeBucket is a named accumulation of simulated time.
type TimeBucket struct {
	Name     string
	Duration time.Duration
}

// ByteBucket is a named accumulation of simulated bytes.
type ByteBucket struct {
	Name  string
	Bytes int64
}
