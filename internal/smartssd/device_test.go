package smartssd

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"nessa/internal/data"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFig6CalibrationCIFAR10(t *testing.T) {
	// Paper §4.4: a 128-image CIFAR-10 batch (3 KB images) achieves
	// ~1.46 GB/s over the P2P link.
	l := P2PLink()
	batch := int64(128 * 3 * 1024)
	got := l.EffectiveThroughput(batch, 128) / 1e9
	if got < 1.30 || got > 1.60 {
		t.Fatalf("CIFAR-10 batch throughput = %.3f GB/s, want ~1.46", got)
	}
}

func TestFig6CalibrationImageNet100(t *testing.T) {
	// Paper §4.4: a 128-image ImageNet-100 batch (0.126 MB images)
	// achieves ~2.28 GB/s.
	l := P2PLink()
	batch := int64(128 * 129 * 1024)
	got := l.EffectiveThroughput(batch, 128) / 1e9
	if got < 2.10 || got > 2.50 {
		t.Fatalf("ImageNet-100 batch throughput = %.3f GB/s, want ~2.28", got)
	}
}

func TestFig6ThroughputMonotoneInImageSize(t *testing.T) {
	// Fig 6's qualitative claim: larger images saturate the link better.
	l := P2PLink()
	prev := -1.0
	for _, kb := range []int64{1, 3, 12, 64, 129} {
		eff := l.EffectiveThroughput(128*kb*1024, 128)
		if eff <= prev {
			t.Fatalf("throughput not monotone at %d KB images: %v <= %v", kb, eff, prev)
		}
		prev = eff
	}
}

func TestThroughputBelowPeak(t *testing.T) {
	f := func(kb uint16) bool {
		l := P2PLink()
		b := int64(kb)*1024 + 1
		return l.EffectiveThroughput(128*b, 128) < l.PeakBW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupP2PvsHostIs214x(t *testing.T) {
	d := newDevice(t)
	got := d.SpeedupP2PvsHost()
	if got < 2.13 || got > 2.16 {
		t.Fatalf("P2P vs host speed-up = %.3f×, want ~2.14×", got)
	}
}

func TestP2PFasterThanHostPath(t *testing.T) {
	d := newDevice(t)
	img := make([]byte, 8*1024*1024)
	if err := d.StoreDataset("ds", img); err != nil {
		t.Fatal(err)
	}
	t0 := d.Clock.Now()
	if _, err := d.ReadToFPGA("ds", 0, int64(len(img)), 128); err != nil {
		t.Fatal(err)
	}
	p2pT := d.Clock.Now() - t0
	t1 := d.Clock.Now()
	if _, err := d.ReadViaHost("ds", 0, int64(len(img)), 128); err != nil {
		t.Fatal(err)
	}
	hostT := d.Clock.Now() - t1
	if p2pT >= hostT {
		t.Fatalf("P2P read (%v) not faster than host read (%v)", p2pT, hostT)
	}
	ratio := float64(hostT) / float64(p2pT)
	if ratio < 1.5 {
		t.Fatalf("host/P2P time ratio = %.2f, expected a substantial gap", ratio)
	}
}

func TestReadReturnsStoredBytes(t *testing.T) {
	d := newDevice(t)
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 20, 5
	tr, _ := data.Generate(spec)
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreDataset("cifar", img); err != nil {
		t.Fatal(err)
	}
	// Read back records 3..7 and decode them.
	rec := spec.BytesPerImage
	buf, err := d.ReadToFPGA("cifar", 3*rec, 4*rec, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := data.Decode(spec, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got.Labels[i] != tr.Labels[3+i] {
			t.Fatalf("record %d label mismatch", i)
		}
	}
	if !bytes.Equal(buf[:rec], img[3*rec:4*rec]) {
		t.Fatal("raw record bytes differ")
	}
}

func TestDRAMCapacityEnforced(t *testing.T) {
	d := newDevice(t)
	d.Spec.DRAMBytes = 1024
	if err := d.StoreDataset("ds", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadToFPGA("ds", 0, 4096, 1); err == nil {
		t.Fatal("expected DRAM-capacity error")
	}
}

func TestAccountingByPath(t *testing.T) {
	d := newDevice(t)
	if err := d.StoreDataset("ds", make([]byte, 1024*1024)); err != nil {
		t.Fatal(err)
	}
	d.ReadToFPGA("ds", 0, 1024*1024, 16)
	d.ReadViaHost("ds", 0, 512*1024, 8)
	d.SendToGPU(256*1024, 4)
	d.ReceiveFeedback(64 * 1024)

	if got := d.Acct.Bytes("p2p.read"); got != 1024*1024 {
		t.Errorf("p2p.read bytes = %d, want %d", got, 1024*1024)
	}
	if got := d.Acct.Bytes("host.read"); got != 512*1024 {
		t.Errorf("host.read bytes = %d, want %d", got, 512*1024)
	}
	if got := d.Acct.Bytes("gpu.send"); got != 256*1024 {
		t.Errorf("gpu.send bytes = %d, want %d", got, 256*1024)
	}
	if got := d.Acct.Bytes("gpu.feedback"); got != 64*1024 {
		t.Errorf("gpu.feedback bytes = %d, want %d", got, 64*1024)
	}
	if d.Acct.TotalTime() <= 0 || d.Clock.Now() <= 0 {
		t.Error("transfers did not advance simulated time")
	}
}

func TestFitsOnChip(t *testing.T) {
	d := newDevice(t)
	if !d.FitsOnChip(4 * 1024 * 1024) {
		t.Error("4 MB should fit the 4.32 MB on-chip memory")
	}
	if d.FitsOnChip(5 * 1024 * 1024) {
		t.Error("5 MB should not fit the 4.32 MB on-chip memory")
	}
}

func TestLinkDurationZeroBytes(t *testing.T) {
	l := P2PLink()
	if d := l.Duration(0, 0); d != 0 {
		t.Fatalf("zero transfer took %v, want 0", d)
	}
}

func TestLinkDurationChargesCommandOverhead(t *testing.T) {
	l := P2PLink()
	one := l.Duration(1024, 1)
	many := l.Duration(1024, 64)
	if many-one != 63*l.CommandLatency {
		t.Fatalf("command overhead = %v, want %v", many-one, 63*l.CommandLatency)
	}
}

func TestLinkNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative transfer")
		}
	}()
	P2PLink().Duration(-1, 1)
}

func TestGPULinkFastEnoughToNotDominate(t *testing.T) {
	// Moving a 28 % CIFAR-10 subset (14 K images × 3 KB) to the GPU
	// should take ~3.6 ms — negligible against epoch times.
	d := newDevice(t)
	dur := d.SendToGPU(14000*3*1024, 14000)
	if dur > 100*time.Millisecond {
		t.Fatalf("subset transfer took %v, unreasonably slow", dur)
	}
}
