package smartssd

import (
	"errors"
	"fmt"
	"time"

	"nessa/internal/faults"
)

// RetryPolicy bounds the host-side recovery loop around device reads:
// up to MaxAttempts issues of the same read, with exponential backoff
// (doubling from BaseBackoff, capped at MaxBackoff) and injector-seeded
// jitter between attempts. The zero value means DefaultRetryPolicy.
type RetryPolicy struct {
	MaxAttempts int           // total read issues before giving up
	BaseBackoff time.Duration // backoff before the first retry
	MaxBackoff  time.Duration // backoff ceiling
}

// DefaultRetryPolicy returns the standard policy: four attempts with
// 200 µs → 5 ms exponential backoff. Four attempts drive the residual
// failure rate of independent transient faults below rate⁴ (one in
// 10⁴ at a 10 % fault rate) while bounding the worst-case stall under
// a hard outage to well under the cost of one degraded epoch.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond}
}

// normalize fills in defaults field by field, so a partially specified
// policy (say RetryPolicy{MaxAttempts: 6}) still gets the standard
// backoff curve instead of silently retrying with zero backoff.
func (p RetryPolicy) normalize() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	return p
}

// backoff reports the nominal pause before retry number n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	b := p.BaseBackoff
	for i := 1; i < n; i++ {
		b *= 2
		if p.MaxBackoff > 0 && b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// ReadStats reports what the recovery loop did for one resilient read.
type ReadStats struct {
	Attempts     int  // read issues, including the first
	Retries      int  // re-issues after a recoverable failure
	Transient    int  // transient I/O errors absorbed
	Corrupt      int  // corrupted payloads detected (verify failures)
	HostFallback bool // the P2P link was down and the host path took over
}

// Add accumulates other into s.
func (s *ReadStats) Add(other ReadStats) {
	s.Attempts += other.Attempts
	s.Retries += other.Retries
	s.Transient += other.Transient
	s.Corrupt += other.Corrupt
	s.HostFallback = s.HostFallback || other.HostFallback
}

// ReadResilient reads [off, off+length) of object name into FPGA DRAM
// with the §4.6 recovery policy wrapped around the raw P2P path:
//
//   - transient flash errors are retried with exponential backoff and
//     jitter, each backoff charged to the simulated clock;
//   - a down P2P link switches the read to the host-mediated path
//     (the paper's conventional path) for the remaining attempts;
//   - if verify is non-nil it runs over every successful payload, and a
//     verification failure (e.g. a CRC mismatch from a silent NAND
//     corruption) re-issues the read like a transient error;
//   - addressing and capacity errors are permanent and returned
//     immediately.
//
// On exhaustion the returned error wraps the last failure, so callers
// classify it with errors.Is (faults.ErrTransientIO,
// faults.ErrCorruptRecord, ...).
func (d *Device) ReadResilient(name string, off, length int64, commands int, verify func([]byte) error, pol RetryPolicy) ([]byte, ReadStats, error) {
	return d.readResilient(name, off, length, commands, verify, pol, false)
}

// ReadResilientHost is ReadResilient pinned to the host-mediated path —
// the degraded-mode read the controller uses when the near-storage
// pipeline is unavailable. Link-down faults do not apply; flash-level
// faults and verification retries behave identically.
func (d *Device) ReadResilientHost(name string, off, length int64, commands int, verify func([]byte) error, pol RetryPolicy) ([]byte, ReadStats, error) {
	return d.readResilient(name, off, length, commands, verify, pol, true)
}

func (d *Device) readResilient(name string, off, length int64, commands int, verify func([]byte) error, pol RetryPolicy, hostPath bool) ([]byte, ReadStats, error) {
	pol = pol.normalize()
	var st ReadStats
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			st.Retries++
			if b := d.Injector.BackoffJitter(pol.backoff(attempt - 1)); b > 0 {
				d.Clock.Advance(b)
				d.Acct.AddTime("retry.backoff", b)
			}
		}
		st.Attempts++
		var buf []byte
		var err error
		if hostPath {
			buf, err = d.ReadViaHost(name, off, length, commands)
		} else {
			buf, err = d.ReadToFPGA(name, off, length, commands)
		}
		switch {
		case err == nil:
			if verify != nil {
				if verr := verify(buf); verr != nil {
					st.Corrupt++
					lastErr = verr
					continue // corrupted payload: re-read the clean extent
				}
			}
			return buf, st, nil
		case errors.Is(err, faults.ErrTransientIO):
			st.Transient++
			lastErr = err
		case errors.Is(err, faults.ErrLinkDown):
			// P2P → host fallback: stay on the host path for the rest of
			// this read rather than probing a dead link again.
			hostPath = true
			st.HostFallback = true
			lastErr = err
		default:
			return nil, st, err // permanent: out of range, not found, DRAM
		}
	}
	return nil, st, fmt.Errorf("smartssd: read [%d,+%d) of %q failed after %d attempts: %w",
		off, length, name, st.Attempts, lastErr)
}
