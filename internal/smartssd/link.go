// Package smartssd models the Samsung SmartSSD computational storage
// device (paper §2.2): a Kintex KU15P FPGA with 4 GB DRAM connected to
// the on-board 3.84 TB NAND drive over a PCIe peer-to-peer link, plus
// the conventional host-mediated path used when the FPGA has no direct
// drive access. The link models are calibrated to the paper's measured
// numbers: P2P transfers saturate toward 3 GB/s (Fig 6: 1.46 GB/s for
// CIFAR-10 batches, 2.28 GB/s for ImageNet-100 batches) while the
// host-staged path is limited to 1.4 GB/s effective — the 2.14× gap of
// §4.4.
package smartssd

import (
	"fmt"
	"time"
)

// LinkModel describes one interconnect: per-command latency plus a
// sustained streaming bandwidth, with a separate theoretical peak used
// for reporting (real links never quite reach their peak).
type LinkModel struct {
	Name           string
	CommandLatency time.Duration // fixed cost per transfer command
	SustainedBW    float64       // bytes/second achieved while streaming
	PeakBW         float64       // theoretical bytes/second (for reporting)
}

// P2PLink returns the SmartSSD's on-board SSD↔FPGA peer-to-peer link.
// Calibration: a 128-image CIFAR-10 batch issues 128 3 KB commands and
// must land at ≈1.46 GB/s effective; a 128-image ImageNet-100 batch
// (129 KB commands) at ≈2.28 GB/s; asymptote below the 3 GB/s peak.
func P2PLink() LinkModel {
	return LinkModel{
		Name:           "p2p",
		CommandLatency: 850 * time.Nanosecond,
		SustainedBW:    2.40e9,
		PeakBW:         3.0e9,
	}
}

// HostLink returns the conventional SSD→CPU-DRAM→FPGA staged path used
// when the accelerator has no P2P access to the drive (§4.4): effective
// bandwidth collapses to 1.4 GB/s and every transfer pays two DMA
// commands (drive→host, host→FPGA).
func HostLink() LinkModel {
	return LinkModel{
		Name:           "host",
		CommandLatency: 2 * 850 * time.Nanosecond,
		SustainedBW:    1.4e9,
		PeakBW:         1.4e9,
	}
}

// GPULink returns the host interconnect between CPU/FPGA and the GPU
// (PCIe gen3 x16-class, ~12 GB/s effective): the path the selected
// subset travels on its way to training, and the quantized weights
// travel back.
func GPULink() LinkModel {
	return LinkModel{
		Name:           "gpu",
		CommandLatency: 5 * time.Microsecond,
		SustainedBW:    12.0e9,
		PeakBW:         12.5e9,
	}
}

// Duration reports the simulated time to move totalBytes split across
// commands transfer commands (e.g. one command per image read).
func (l LinkModel) Duration(totalBytes int64, commands int) time.Duration {
	if totalBytes < 0 || commands < 0 {
		panic(fmt.Sprintf("smartssd: negative transfer (%d bytes, %d cmds)", totalBytes, commands))
	}
	if commands == 0 && totalBytes > 0 {
		commands = 1
	}
	sec := float64(totalBytes) / l.SustainedBW
	return time.Duration(commands)*l.CommandLatency + time.Duration(sec*float64(time.Second))
}

// EffectiveThroughput reports bytes/second achieved moving totalBytes
// in the given number of commands — the quantity Fig 6 plots.
func (l LinkModel) EffectiveThroughput(totalBytes int64, commands int) float64 {
	d := l.Duration(totalBytes, commands)
	if d <= 0 {
		return 0
	}
	return float64(totalBytes) / d.Seconds()
}
