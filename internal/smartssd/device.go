package smartssd

import (
	"fmt"
	"time"

	"nessa/internal/faults"
	"nessa/internal/simtime"
	"nessa/internal/storage"
)

// Spec holds the fixed hardware parameters of the SmartSSD card
// (paper §2.2, §3.2.3): 4 GB of FPGA-attached DRAM, 4.32 MB of FPGA
// on-chip memory, and a ~7.5 W FPGA power envelope.
type Spec struct {
	DRAMBytes   int64
	OnChipBytes int64
	FPGAWatts   float64
}

// DefaultSpec returns the paper's SmartSSD parameters.
func DefaultSpec() Spec {
	return Spec{
		DRAMBytes:   4 * 1024 * 1024 * 1024,
		OnChipBytes: 4_320_000, // 4.32 MB of FPGA on-chip memory
		FPGAWatts:   7.5,
	}
}

// Device is a SmartSSD: an SSD plus links and capacity constraints.
// Every transfer advances the shared clock and is charged to the
// accountant, so experiments can report data movement and time by path.
type Device struct {
	Spec  Spec
	SSD   *storage.SSD
	P2P   LinkModel
	Host  LinkModel
	GPU   LinkModel
	Clock *simtime.Clock
	Acct  *simtime.Accountant

	// ID names the device to the fault injector's whole-device-loss
	// state, which is sticky per ID. Clusters assign unique IDs;
	// standalone devices default to 0.
	ID int
	// Scans counts completed cluster scans this device served — the
	// trigger for scripted DeviceKill{AfterScans: n} schedules.
	Scans int64

	// Injector, when non-nil, perturbs device operations with the
	// configured fault schedule: the P2P link consults it for link
	// drops, and SetInjector wires the same injector into the
	// underlying flash array for NAND-level faults. Use SetInjector
	// rather than assigning the field so both layers stay in sync.
	Injector *faults.Injector
}

// New assembles a SmartSSD with the default drive, links, and spec.
func New() (*Device, error) {
	ssd, err := storage.New(storage.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Device{
		Spec:  DefaultSpec(),
		SSD:   ssd,
		P2P:   P2PLink(),
		Host:  HostLink(),
		GPU:   GPULink(),
		Clock: simtime.NewClock(),
		Acct:  simtime.NewAccountant(),
	}, nil
}

// SetInjector attaches (or, with nil, detaches) a fault injector to
// both the device links and the underlying flash array.
func (d *Device) SetInjector(in *faults.Injector) {
	d.Injector = in
	d.SSD.SetInjector(in)
}

// lostCheck consults the injector's whole-device fault state before an
// operation on the given path. A lost device still charges the path's
// command setup — the host only learns of the loss when the command
// times out — and then fails with a wrapped faults.ErrDeviceLost.
func (d *Device) lostCheck(link LinkModel, bucket, op, name string) error {
	if !d.Injector.DeviceLoss(d.ID, d.Scans, d.Clock.Now()) {
		return nil
	}
	d.Clock.Advance(link.CommandLatency)
	d.Acct.AddTime(bucket, link.CommandLatency)
	return fmt.Errorf("smartssd: %s of %q on device %d: %w", op, name, d.ID, faults.ErrDeviceLost)
}

// StoreDataset writes a dataset image to the drive under name.
func (d *Device) StoreDataset(name string, img []byte) error {
	if err := d.lostCheck(d.Host, "ssd.error", "write", name); err != nil {
		return err
	}
	dur, err := d.SSD.Write(name, img)
	if err != nil {
		return err
	}
	d.Clock.Advance(dur)
	d.Acct.AddTime("ssd.write", dur)
	d.Acct.AddBytes("ssd.write", int64(len(img)))
	return nil
}

// StoreVirtualDataset lays out a virtual dataset object of size bytes
// under name: reads synthesize content through fill (see
// storage.FillFunc) so streaming-scale datasets — far beyond host or
// device DRAM — exist on the drive without being materialized
// anywhere. No clock time is charged; the object models data ingested
// before the experiment begins.
func (d *Device) StoreVirtualDataset(name string, size int64, fill storage.FillFunc) error {
	return d.SSD.PutVirtual(name, size, fill)
}

// ReadToFPGA reads [off, off+length) of object name into FPGA DRAM over
// the P2P link, issuing commands transfer commands (one per image when
// streaming a batch). Flash access and link streaming are pipelined, so
// the charged time is the maximum of the two plus the flash command
// setup.
func (d *Device) ReadToFPGA(name string, off, length int64, commands int) ([]byte, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("smartssd: p2p read [%d,+%d) of %q: %w", off, length, name, faults.ErrOutOfRange)
	}
	if length > d.Spec.DRAMBytes {
		return nil, fmt.Errorf("smartssd: transfer of %d bytes exceeds FPGA DRAM (%d)", length, d.Spec.DRAMBytes)
	}
	if err := d.lostCheck(d.P2P, "p2p.error", "p2p read", name); err != nil {
		return nil, err
	}
	if d.Injector.LinkDown() {
		// The DMA setup is spent before the link failure is observed.
		d.Clock.Advance(d.P2P.CommandLatency)
		d.Acct.AddTime("p2p.error", d.P2P.CommandLatency)
		return nil, fmt.Errorf("smartssd: p2p read of %q: %w", name, faults.ErrLinkDown)
	}
	buf, flashT, err := d.SSD.ReadAt(name, off, length)
	if err != nil {
		// A failed flash command still advances simulated time by its
		// reported setup cost, so retry storms are visible on the clock.
		d.Clock.Advance(flashT)
		d.Acct.AddTime("p2p.error", flashT)
		return nil, err
	}
	linkT := d.P2P.Duration(length, commands)
	dur := maxDur(flashT, linkT)
	d.Clock.Advance(dur)
	d.Acct.AddTime("p2p.read", dur)
	d.Acct.AddBytes("p2p.read", length)
	return buf, nil
}

// ReadViaHost performs the same read over the conventional path: the
// drive DMAs into host DRAM and the host DMAs into the FPGA. Flash and
// the staged copies serialize at the 1.4 GB/s effective host bandwidth.
func (d *Device) ReadViaHost(name string, off, length int64, commands int) ([]byte, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("smartssd: host read [%d,+%d) of %q: %w", off, length, name, faults.ErrOutOfRange)
	}
	if err := d.lostCheck(d.Host, "host.error", "host read", name); err != nil {
		return nil, err
	}
	buf, flashT, err := d.SSD.ReadAt(name, off, length)
	if err != nil {
		d.Clock.Advance(flashT)
		d.Acct.AddTime("host.error", flashT)
		return nil, err
	}
	linkT := d.Host.Duration(length, commands)
	dur := flashT + linkT // no P2P pipelining on the staged path
	d.Clock.Advance(dur)
	d.Acct.AddTime("host.read", dur)
	d.Acct.AddBytes("host.read", length)
	return buf, nil
}

// SendToGPU charges the transfer of length bytes (the selected subset)
// from the FPGA to the GPU over the host interconnect.
func (d *Device) SendToGPU(length int64, commands int) time.Duration {
	dur := d.GPU.Duration(length, commands)
	d.Clock.Advance(dur)
	d.Acct.AddTime("gpu.send", dur)
	d.Acct.AddBytes("gpu.send", length)
	return dur
}

// ReceiveFeedback charges the quantized-weight + loss feedback transfer
// from the GPU back to the FPGA (paper §3.2.1).
func (d *Device) ReceiveFeedback(length int64) time.Duration {
	dur := d.GPU.Duration(length, 1)
	d.Clock.Advance(dur)
	d.Acct.AddTime("gpu.feedback", dur)
	d.Acct.AddBytes("gpu.feedback", length)
	return dur
}

// FitsOnChip reports whether a working set of the given size fits the
// FPGA's on-chip memory — the constraint that motivates dataset
// partitioning (paper §3.2.3).
func (d *Device) FitsOnChip(bytes int64) bool { return bytes <= d.Spec.OnChipBytes }

// SpeedupP2PvsHost reports the theoretical peak-bandwidth advantage of
// the P2P path over the host path: 3.0/1.4 ≈ 2.14× (paper §4.4).
func (d *Device) SpeedupP2PvsHost() float64 { return d.P2P.PeakBW / d.Host.PeakBW }

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
