package smartssd

import (
	"errors"
	"fmt"
	"time"

	"nessa/internal/erasure"
	"nessa/internal/faults"
	"nessa/internal/simtime"
)

// This file is the cluster's durability layer (DESIGN.md §4.11):
// Reed–Solomon striped placement across devices, the per-device health
// state machine, degraded scans that reconstruct a lost device's
// stripe from its surviving peers, and background rebuild onto spares.

// Placement configures redundant striping: a dataset is split into
// DataShards record stripes with ParityShards parity stripes, laid out
// on the cluster's first DataShards+ParityShards devices. Any
// ParityShards concurrent whole-device losses are survivable.
type Placement struct {
	DataShards   int
	ParityShards int
}

// Total reports the device count the placement occupies.
func (p Placement) Total() int { return p.DataShards + p.ParityShards }

func (p Placement) validate(devices int) error {
	if p.DataShards < 1 || p.ParityShards < 1 {
		return fmt.Errorf("smartssd: placement needs at least 1 data and 1 parity shard, got %d+%d",
			p.DataShards, p.ParityShards)
	}
	if p.Total() > devices {
		return fmt.Errorf("smartssd: placement %d+%d needs %d devices, cluster has %d",
			p.DataShards, p.ParityShards, p.Total(), devices)
	}
	return nil
}

// Health is a device's position in the loss state machine. A scan
// error wrapping faults.ErrDeviceLost moves the device to
// HealthSuspect; a host-path liveness probe then either clears it back
// to HealthHealthy (the error was a fluke of a non-sticky fault
// source) or confirms HealthLost, which is terminal until a Rebuild
// swaps a spare into the slot.
type Health int

const (
	HealthHealthy Health = iota
	HealthSuspect
	HealthLost
)

// String renders the state for reports and errors.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthLost:
		return "lost"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// stripeMeta records how StripeDataset laid a dataset out.
type stripeMeta struct {
	place     Placement
	rec       int64         // record size the stripes are aligned to
	counts    []int         // records per data stripe
	stripeLen int64         // padded stripe length (record multiple)
	code      *erasure.Code // the (DataShards, ParityShards) RS code
}

// lenOf reports the true stored byte length of group member gi's
// stripe object: data stripes are stored unpadded, parity stripes are
// full coding stripes.
func (m *stripeMeta) lenOf(gi int) int64 {
	if gi < m.place.DataShards {
		return int64(m.counts[gi]) * m.rec
	}
	return m.stripeLen
}

// StripeDataset lays a record-aligned dataset image out with
// redundancy: the records are split into p.DataShards contiguous
// stripes on devices [0, DataShards), and p.ParityShards Reed–Solomon
// parity stripes are computed over them (stripes zero-padded to the
// longest stripe's length for the coding math) and stored on devices
// [DataShards, Total()). It returns the per-data-device record counts.
//
// The parity encode's GF-math time is charged to the cluster
// accountant's "stripe.encode" bucket; each stripe write is charged to
// its device like any StoreDataset.
func (c *Cluster) StripeDataset(name string, img []byte, recordSize int64, p Placement) ([]int, error) {
	if recordSize <= 0 {
		return nil, fmt.Errorf("smartssd: record size %d must be positive", recordSize)
	}
	if int64(len(img))%recordSize != 0 {
		return nil, fmt.Errorf("smartssd: image length %d not a multiple of record size %d", len(img), recordSize)
	}
	if err := p.validate(len(c.Devices)); err != nil {
		return nil, err
	}
	records := int(int64(len(img)) / recordSize)
	k := p.DataShards
	if records < k {
		return nil, fmt.Errorf("smartssd: %d records cannot stripe across %d data shards without empty stripes",
			records, k)
	}
	counts := make([]int, k)
	stripes := make([][]byte, k)
	var stripeLen int64
	for i := 0; i < k; i++ {
		lo := int64(i*records/k) * recordSize
		hi := int64((i+1)*records/k) * recordSize
		if lo == hi {
			return nil, fmt.Errorf("smartssd: striping %d records across %d data shards leaves stripe %d empty",
				records, k, i)
		}
		stripes[i] = img[lo:hi]
		counts[i] = int((hi - lo) / recordSize)
		if hi-lo > stripeLen {
			stripeLen = hi - lo
		}
	}
	code, err := erasure.New(k, p.ParityShards)
	if err != nil {
		return nil, err
	}
	shards := make([][]byte, p.Total())
	for i := 0; i < k; i++ {
		shards[i] = padStripe(stripes[i], stripeLen)
	}
	for r := 0; r < p.ParityShards; r++ {
		shards[k+r] = make([]byte, stripeLen)
	}
	if err := code.Encode(shards); err != nil {
		return nil, fmt.Errorf("smartssd: encoding parity for %q: %w", name, err)
	}
	c.acct().AddTime("stripe.encode", c.gfTime(int64(k)*stripeLen*int64(p.ParityShards)))
	for i := 0; i < k; i++ {
		if err := c.Devices[i].StoreDataset(name, stripes[i]); err != nil {
			return nil, fmt.Errorf("smartssd: data stripe %d: %w", i, err)
		}
	}
	for r := 0; r < p.ParityShards; r++ {
		if err := c.Devices[k+r].StoreDataset(name, shards[k+r]); err != nil {
			return nil, fmt.Errorf("smartssd: parity stripe %d: %w", r, err)
		}
	}
	c.ensureHealth()
	if c.stripes == nil {
		c.stripes = make(map[string]*stripeMeta)
	}
	c.stripes[name] = &stripeMeta{place: p, rec: recordSize, counts: counts, stripeLen: stripeLen, code: code}
	return counts, nil
}

// stripeFor reports the placement metadata of name, or nil for plain
// (sharded or single-object) datasets.
func (c *Cluster) stripeFor(name string) *stripeMeta { return c.stripes[name] }

// DeviceHealth reports device i's health state.
func (c *Cluster) DeviceHealth(i int) Health {
	c.ensureHealth()
	return c.health[i]
}

// LostCount reports how many devices the cluster has ever confirmed
// lost (rebuilt slots stay counted — the loss happened).
func (c *Cluster) LostCount() int { return c.lostEver }

// Spares reports how many spare devices are attached and unused.
func (c *Cluster) Spares() int { return len(c.spares) }

// AttachSpare registers a standby device for Rebuild to swap in after
// a loss. The spare gets a fresh cluster-unique ID; its injector, if
// any, is left exactly as the caller configured it.
func (c *Cluster) AttachSpare(d *Device) {
	d.ID = c.nextID
	c.nextID++
	c.spares = append(c.spares, d)
}

func (c *Cluster) ensureHealth() {
	if len(c.health) < len(c.Devices) {
		h := make([]Health, len(c.Devices))
		copy(h, c.health)
		c.health = h
	}
}

// noteLost runs the health state machine on a device that just failed
// with faults.ErrDeviceLost: mark it suspect, probe it with a
// zero-length host-path command, and either confirm the loss or clear
// it. Returns true when the device is confirmed lost.
func (c *Cluster) noteLost(i int, name string) bool {
	c.ensureHealth()
	if c.health[i] == HealthLost {
		return true
	}
	c.health[i] = HealthSuspect
	d := c.Devices[i]
	if _, err := d.ReadViaHost(name, 0, 0, 1); err != nil {
		if errors.Is(err, faults.ErrDeviceLost) {
			c.health[i] = HealthLost
			c.lostEver++
			return true
		}
	}
	c.health[i] = HealthHealthy
	return false
}

// stripedScan is ParallelScan over a StripeDataset layout: scan the
// data stripes, run the health machine on any device-lost failure, and
// serve confirmed-lost stripes by parity reconstruction. Only the data
// stripes are returned — parity is an implementation detail of the
// placement.
func (c *Cluster) stripedScan(name string, recordSize int64, meta *stripeMeta) ([][]byte, ScanStats, time.Duration, error) {
	var st ScanStats
	if recordSize != meta.rec {
		return nil, st, 0, fmt.Errorf("smartssd: scan of %q with record size %d, but it was striped at %d",
			name, recordSize, meta.rec)
	}
	c.ensureHealth()
	k, m := meta.place.DataShards, meta.place.ParityShards
	group := k + m
	starts := make([]time.Duration, group)
	for gi := 0; gi < group; gi++ {
		starts[gi] = c.Devices[gi].Clock.Now()
	}
	data := make([][]byte, k)
	var lost []int
	for i := 0; i < k; i++ {
		if c.health[i] == HealthLost {
			lost = append(lost, i)
			continue
		}
		buf, err := c.scanShard(i, c.Devices[i], name, recordSize, c.Verify, &st)
		if err == nil {
			data[i] = buf
			continue
		}
		if !errors.Is(err, faults.ErrDeviceLost) {
			return nil, st, 0, fmt.Errorf("smartssd: stripe %d: %w", i, err)
		}
		if c.noteLost(i, name) {
			lost = append(lost, i)
			continue
		}
		// The probe cleared the device; give the stripe one more scan.
		buf, err = c.scanShard(i, c.Devices[i], name, recordSize, c.Verify, &st)
		if err != nil {
			return nil, st, 0, fmt.Errorf("smartssd: stripe %d failed again after its probe cleared it: %w", i, err)
		}
		data[i] = buf
	}
	var extra time.Duration
	if len(lost) > 0 {
		recT, err := c.reconstructStripes(name, meta, data, lost, &st)
		if err != nil {
			return nil, st, 0, err
		}
		extra = recT
	}
	var wall time.Duration
	for gi := 0; gi < group; gi++ {
		if dt := c.Devices[gi].Clock.Now() - starts[gi]; dt > wall {
			wall = dt
		}
	}
	wall += extra
	c.bumpScans()
	return data, st, wall, nil
}

// reconstructStripes serves the lost data stripes from parity: pull
// enough surviving parity stripes, run the RS decode, and verify the
// rebuilt payloads. A verification failure means a parity read was
// silently corrupted in flight, so the parity pull and decode are
// retried once before giving up. Returns the simulated GF-math time
// (the parity reads advance their own devices' clocks directly).
func (c *Cluster) reconstructStripes(name string, meta *stripeMeta, data [][]byte, lost []int, st *ScanStats) (time.Duration, error) {
	k, m := meta.place.DataShards, meta.place.ParityShards
	if len(lost) > m {
		return 0, fmt.Errorf("smartssd: %d data stripes of %q lost with only %d parity stripes: %w",
			len(lost), name, m, faults.ErrDeviceLost)
	}
	var recT time.Duration
	var lastErr error
	const attempts = 2
	for attempt := 0; attempt < attempts; attempt++ {
		shards := make([][]byte, k+m)
		for i := 0; i < k; i++ {
			if data[i] != nil {
				shards[i] = padStripe(data[i], meta.stripeLen)
			}
		}
		needed := len(lost)
		for r := 0; r < m && needed > 0; r++ {
			pi := k + r
			if c.health[pi] == HealthLost {
				continue
			}
			d := c.Devices[pi]
			buf, rst, err := d.ReadResilient(name, 0, meta.stripeLen, int(meta.stripeLen/meta.rec), nil, RetryPolicy{})
			st.Read.Add(rst)
			if err != nil {
				if errors.Is(err, faults.ErrDeviceLost) {
					c.noteLost(pi, name)
					continue
				}
				return recT, fmt.Errorf("smartssd: parity stripe %d of %q: %w", r, name, err)
			}
			shards[pi] = buf
			c.acct().AddBytes("recover.parity", meta.stripeLen)
			needed--
		}
		if needed > 0 {
			return recT, fmt.Errorf("smartssd: %q is short %d surviving stripes for reconstruction: %w",
				name, needed, faults.ErrDeviceLost)
		}
		if err := meta.code.Reconstruct(shards); err != nil {
			return recT, fmt.Errorf("smartssd: reconstructing %q: %w", name, err)
		}
		// Each missing stripe is a k-term GF dot product over the
		// stripe length: k·stripeLen source bytes streamed per rebuild.
		dur := c.gfTime(int64(k) * meta.stripeLen * int64(len(lost)))
		c.acct().AddTime("recover.reconstruct", dur)
		recT += dur
		outs := make([][]byte, len(lost))
		ok := true
		for li, i := range lost {
			outs[li] = shards[i][:meta.lenOf(i)]
			if c.Verify != nil {
				if err := c.Verify(outs[li]); err != nil {
					st.Read.Corrupt++
					lastErr = err
					ok = false
					break
				}
			}
		}
		if !ok {
			continue // corrupted parity pull: re-read and decode again
		}
		for li, i := range lost {
			data[i] = outs[li]
			st.DegradedReads++
			st.ReconstructedBytes += int64(len(outs[li]))
			c.acct().AddBytes("recover.rebuilt", int64(len(outs[li])))
		}
		return recT, nil
	}
	return recT, fmt.Errorf("smartssd: reconstructed stripes of %q failed verification after %d attempts: %w",
		name, attempts, lastErr)
}

// Rebuild re-materializes every confirmed-lost device's stripe of the
// named striped dataset onto attached spares, swapping each spare into
// the lost slot (back to HealthHealthy). It reads DataShards surviving
// stripes — advancing those devices' simulated clocks, which is
// exactly how a background rebuild races foreground scans for link
// bandwidth — decodes the missing stripes, and writes each onto its
// spare. Returns the rebuild's simulated duration: the slowest
// survivor read, plus the GF-math time, plus the slowest spare write.
func (c *Cluster) Rebuild(name string) (time.Duration, error) {
	meta := c.stripeFor(name)
	if meta == nil {
		return 0, fmt.Errorf("smartssd: %q is not striped; nothing to rebuild", name)
	}
	c.ensureHealth()
	k, m := meta.place.DataShards, meta.place.ParityShards
	group := k + m
	var lost []int
	for gi := 0; gi < group; gi++ {
		if c.health[gi] == HealthLost {
			lost = append(lost, gi)
		}
	}
	if len(lost) == 0 {
		return 0, nil
	}
	if len(lost) > m {
		return 0, fmt.Errorf("smartssd: %d of %q's %d stripes lost with %d parity: %w",
			len(lost), name, group, m, faults.ErrDeviceLost)
	}
	if len(lost) > len(c.spares) {
		return 0, fmt.Errorf("smartssd: rebuilding %q needs %d spares, %d attached", name, len(lost), len(c.spares))
	}
	shards := make([][]byte, group)
	sources := 0
	var readWall time.Duration
	for gi := 0; gi < group && sources < k; gi++ {
		if c.health[gi] != HealthHealthy {
			continue
		}
		d := c.Devices[gi]
		length := meta.lenOf(gi)
		verify := c.Verify
		if gi >= k {
			verify = nil // parity stripes are not records
		}
		before := d.Clock.Now()
		buf, _, err := d.ReadResilient(name, 0, length, int(length/meta.rec), verify, RetryPolicy{})
		if err != nil {
			if errors.Is(err, faults.ErrDeviceLost) {
				c.noteLost(gi, name)
				continue
			}
			return 0, fmt.Errorf("smartssd: rebuild source stripe %d of %q: %w", gi, name, err)
		}
		if dt := d.Clock.Now() - before; dt > readWall {
			readWall = dt
		}
		shards[gi] = padStripe(buf, meta.stripeLen)
		c.acct().AddBytes("recover.rebuild.read", length)
		sources++
	}
	if sources < k {
		return 0, fmt.Errorf("smartssd: rebuilding %q needs %d surviving stripes, found %d: %w",
			name, k, sources, faults.ErrDeviceLost)
	}
	if err := meta.code.Reconstruct(shards); err != nil {
		return 0, fmt.Errorf("smartssd: rebuilding %q: %w", name, err)
	}
	recT := c.gfTime(int64(k) * meta.stripeLen * int64(len(lost)))
	c.acct().AddTime("recover.reconstruct", recT)
	var writeWall time.Duration
	for _, gi := range lost {
		payload := shards[gi][:meta.lenOf(gi)]
		if gi < k && c.Verify != nil {
			if err := c.Verify(payload); err != nil {
				return 0, fmt.Errorf("smartssd: rebuilt stripe %d of %q failed verification: %w", gi, name, err)
			}
		}
		spare := c.spares[0]
		c.spares = c.spares[1:]
		before := spare.Clock.Now()
		if err := spare.StoreDataset(name, payload); err != nil {
			return 0, fmt.Errorf("smartssd: writing rebuilt stripe %d of %q to spare device %d: %w",
				gi, name, spare.ID, err)
		}
		if dt := spare.Clock.Now() - before; dt > writeWall {
			writeWall = dt
		}
		c.acct().AddBytes("recover.rebuilt", int64(len(payload)))
		c.Devices[gi] = spare
		c.health[gi] = HealthHealthy
	}
	return readWall + recT + writeWall, nil
}

// DegradedScanBound models the worst-case extra simulated time one
// lost-device scan pays over a clean scan of the same striped dataset:
// the host-path liveness probe, one parity stripe pulled per lost
// device over P2P, and the GF reconstruction math. bench-recovery
// gates measured degraded overhead against this bound.
func (c *Cluster) DegradedScanBound(name string, lostDevices int) (time.Duration, error) {
	meta := c.stripeFor(name)
	if meta == nil {
		return 0, fmt.Errorf("smartssd: %q is not striped", name)
	}
	if lostDevices < 1 {
		lostDevices = 1
	}
	k := meta.place.DataShards
	d := c.Devices[0]
	probe := d.Host.CommandLatency + d.Host.Duration(0, 1)
	parity := d.P2P.Duration(meta.stripeLen, int(meta.stripeLen/meta.rec))
	gf := c.gfTime(int64(k) * meta.stripeLen * int64(lostDevices))
	return time.Duration(lostDevices)*(probe+parity) + gf, nil
}

// gfTime converts streamed GF-math source bytes into simulated time at
// the modeled reconstruction bandwidth.
func (c *Cluster) gfTime(bytes int64) time.Duration {
	bw := c.ReconstructBW
	if bw <= 0 {
		bw = DefaultReconstructBW
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// acct returns the cluster accountant, creating it for clusters built
// as literals.
func (c *Cluster) acct() *simtime.Accountant {
	if c.Acct == nil {
		c.Acct = simtime.NewAccountant()
	}
	return c.Acct
}

// padStripe zero-pads b to n bytes for the coding math (no copy when
// already full length).
func padStripe(b []byte, n int64) []byte {
	if int64(len(b)) == n {
		return b
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
