package smartssd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"nessa/internal/data"
	"nessa/internal/faults"
)

// storeImage writes a small encoded dataset and returns its image and
// record size.
func storeImage(t *testing.T, d *Device) ([]byte, int64) {
	t.Helper()
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 24, 4
	tr, _ := data.Generate(spec)
	img, err := data.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreDataset("ds", img); err != nil {
		t.Fatal(err)
	}
	return img, spec.BytesPerImage
}

func verifier(rec int64) func([]byte) error {
	return func(buf []byte) error { return data.VerifyImage(buf, rec) }
}

func TestReadResilientCleanPathSingleAttempt(t *testing.T) {
	d := newDevice(t)
	img, rec := storeImage(t, d)
	buf, st, err := d.ReadResilient("ds", 0, int64(len(img)), len(img)/int(rec), verifier(rec), RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("payload mismatch")
	}
	if st.Attempts != 1 || st.Retries != 0 || st.HostFallback {
		t.Fatalf("clean read stats = %+v, want one attempt, no recovery", st)
	}
	if d.Acct.Time("retry.backoff") != 0 {
		t.Fatal("clean read charged backoff time")
	}
}

func TestReadResilientRetriesTransientFaults(t *testing.T) {
	d := newDevice(t)
	img, rec := storeImage(t, d)
	// ~50 % of commands fail; this seed's schedule fails the first two
	// issues and succeeds on the third, exercising the retry loop.
	d.SetInjector(faults.NewInjector(faults.Profile{Seed: 7, TransientRate: 0.5}))
	buf, st, err := d.ReadResilient("ds", 0, int64(len(img)), 24, verifier(rec), RetryPolicy{})
	if err != nil {
		t.Fatalf("resilient read failed: %v (stats %+v)", err, st)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("payload mismatch after retries")
	}
	if st.Transient == 0 || st.Retries == 0 {
		t.Fatalf("stats %+v recorded no recovery despite 50%% fault rate", st)
	}
	if d.Acct.Time("retry.backoff") <= 0 {
		t.Fatal("retries did not charge backoff time")
	}
}

func TestReadResilientDetectsAndRereadsCorruption(t *testing.T) {
	d := newDevice(t)
	img, rec := storeImage(t, d)
	d.SetInjector(faults.NewInjector(faults.Profile{Seed: 6, CorruptRate: 0.6}))
	buf, st, err := d.ReadResilient("ds", 0, int64(len(img)), 24, verifier(rec), RetryPolicy{MaxAttempts: 8})
	if err != nil {
		t.Fatalf("resilient read failed: %v (stats %+v)", err, st)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("returned payload still corrupt")
	}
	if st.Corrupt == 0 {
		t.Fatalf("stats %+v detected no corruption despite 60%% rate", st)
	}
}

func TestReadResilientFallsBackToHostOnLinkDown(t *testing.T) {
	d := newDevice(t)
	img, rec := storeImage(t, d)
	d.SetInjector(faults.NewInjector(faults.Profile{Seed: 7, LinkDownRate: 1}))
	buf, st, err := d.ReadResilient("ds", 0, int64(len(img)), 24, verifier(rec), RetryPolicy{})
	if err != nil {
		t.Fatalf("read with dead P2P link failed: %v", err)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("payload mismatch on host path")
	}
	if !st.HostFallback {
		t.Fatalf("stats %+v did not record host fallback", st)
	}
	if d.Acct.Bytes("host.read") != int64(len(img)) {
		t.Fatalf("host path moved %d bytes, want %d", d.Acct.Bytes("host.read"), len(img))
	}
	if d.Acct.Bytes("p2p.read") != 0 {
		t.Fatal("bytes charged to the dead P2P link")
	}
}

func TestReadResilientExhaustionWrapsLastError(t *testing.T) {
	d := newDevice(t)
	img, _ := storeImage(t, d)
	d.SetInjector(faults.NewInjector(faults.Profile{Seed: 8, TransientRate: 1}))
	_, st, err := d.ReadResilient("ds", 0, int64(len(img)), 24, nil, RetryPolicy{})
	if !errors.Is(err, faults.ErrTransientIO) {
		t.Fatalf("exhaustion error = %v, want wrapped ErrTransientIO", err)
	}
	if st.Attempts != DefaultRetryPolicy().MaxAttempts {
		t.Fatalf("attempts = %d, want %d", st.Attempts, DefaultRetryPolicy().MaxAttempts)
	}
}

func TestReadResilientPermanentErrorNotRetried(t *testing.T) {
	d := newDevice(t)
	storeImage(t, d)
	_, st, err := d.ReadResilient("missing", 0, 64, 1, nil, RetryPolicy{})
	if !errors.Is(err, faults.ErrNotFound) {
		t.Fatalf("error = %v, want ErrNotFound", err)
	}
	if st.Attempts != 1 {
		t.Fatalf("permanent error retried %d times", st.Attempts-1)
	}
	if _, _, err := d.ReadResilient("ds", -1, 64, 1, nil, RetryPolicy{}); !errors.Is(err, faults.ErrOutOfRange) {
		t.Fatalf("negative offset error = %v, want ErrOutOfRange", err)
	}
	if _, err := d.ReadViaHost("ds", 0, -5, 1); !errors.Is(err, faults.ErrOutOfRange) {
		t.Fatalf("host-path negative length error = %v, want ErrOutOfRange", err)
	}
}

func TestReadResilientHostIgnoresLinkDown(t *testing.T) {
	d := newDevice(t)
	img, rec := storeImage(t, d)
	d.SetInjector(faults.NewInjector(faults.Profile{Seed: 9, LinkDownRate: 1}))
	buf, st, err := d.ReadResilientHost("ds", 0, int64(len(img)), 24, verifier(rec), RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img) || st.Attempts != 1 {
		t.Fatalf("host-pinned read perturbed by P2P link faults: %+v", st)
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if (RetryPolicy{}).normalize() != DefaultRetryPolicy() {
		t.Error("zero policy does not normalize to the default")
	}
}
