package smartssd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"nessa/internal/faults"
)

func TestRetryPolicyNormalize(t *testing.T) {
	def := DefaultRetryPolicy()
	cases := []struct {
		name string
		in   RetryPolicy
		want RetryPolicy
	}{
		{"zero value", RetryPolicy{}, def},
		{"attempts only", RetryPolicy{MaxAttempts: 6},
			RetryPolicy{MaxAttempts: 6, BaseBackoff: def.BaseBackoff, MaxBackoff: def.MaxBackoff}},
		{"base only", RetryPolicy{BaseBackoff: time.Millisecond},
			RetryPolicy{MaxAttempts: def.MaxAttempts, BaseBackoff: time.Millisecond, MaxBackoff: def.MaxBackoff}},
		{"max only", RetryPolicy{MaxBackoff: time.Second},
			RetryPolicy{MaxAttempts: def.MaxAttempts, BaseBackoff: def.BaseBackoff, MaxBackoff: time.Second}},
		{"fully specified", RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Second},
			RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Second}},
		{"negative fields", RetryPolicy{MaxAttempts: -1, BaseBackoff: -time.Millisecond, MaxBackoff: -time.Second}, def},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.normalize(); got != tc.want {
				t.Fatalf("normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// stripeImg builds a record-aligned image with the record index
// stamped into every byte, so payload provenance is checkable.
func stripeImg(records int, rec int64) []byte {
	img := make([]byte, int64(records)*rec)
	for i := range img {
		img[i] = byte(int64(i) / rec)
	}
	return img
}

// reassemble concatenates scan shards back into one image.
func reassemble(shards [][]byte) []byte {
	var out []byte
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}

func TestStripeDatasetLayout(t *testing.T) {
	c, _ := NewCluster(4)
	const rec = 64
	img := stripeImg(10, rec)
	counts, err := c.StripeDataset("ds", img, rec, Placement{DataShards: 3, ParityShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, n := range counts {
		if n <= 0 {
			t.Fatalf("data stripe %d holds %d records", i, n)
		}
		total += n
	}
	if total != 10 {
		t.Fatalf("data stripes hold %d records, want 10", total)
	}
	// Parity lives on device 3, padded to the longest stripe.
	psize, err := c.Devices[3].SSD.Size("ds")
	if err != nil {
		t.Fatal(err)
	}
	meta := c.stripeFor("ds")
	if meta == nil {
		t.Fatal("no stripe metadata recorded")
	}
	if psize != meta.stripeLen {
		t.Fatalf("parity stripe is %d bytes, want stripeLen %d", psize, meta.stripeLen)
	}
	if c.Acct.Time("stripe.encode") <= 0 {
		t.Fatal("no encode time charged for parity")
	}
}

func TestStripeDatasetErrors(t *testing.T) {
	c, _ := NewCluster(3)
	img := stripeImg(8, 64)
	cases := []struct {
		name  string
		img   []byte
		rec   int64
		place Placement
	}{
		{"zero record size", img, 0, Placement{DataShards: 2, ParityShards: 1}},
		{"non-aligned image", img[:65], 64, Placement{DataShards: 2, ParityShards: 1}},
		{"no parity", img, 64, Placement{DataShards: 3, ParityShards: 0}},
		{"no data", img, 64, Placement{DataShards: 0, ParityShards: 1}},
		{"too many shards", img, 64, Placement{DataShards: 3, ParityShards: 1}},
		{"fewer records than stripes", stripeImg(1, 64), 64, Placement{DataShards: 2, ParityShards: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.StripeDataset("bad", tc.img, tc.rec, tc.place); err == nil {
				t.Fatal("invalid striping accepted")
			}
		})
	}
}

func TestStripedScanCleanMatchesImage(t *testing.T) {
	c, _ := NewCluster(4)
	const rec = 64
	img := stripeImg(12, rec)
	if _, err := c.StripeDataset("ds", img, rec, Placement{DataShards: 3, ParityShards: 1}); err != nil {
		t.Fatal(err)
	}
	shards, st, wall, err := c.ParallelScan("ds", rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("striped scan returned %d shards, want 3 data stripes", len(shards))
	}
	if !bytes.Equal(reassemble(shards), img) {
		t.Fatal("clean striped scan differs from the source image")
	}
	if st.DegradedReads != 0 || st.ReconstructedBytes != 0 {
		t.Fatalf("clean scan reported degraded reads: %+v", st)
	}
	if wall <= 0 {
		t.Fatal("wall time not positive")
	}
	// Clean scans never touch parity: the parity device serves writes
	// only, and no recovery buckets are charged.
	if c.Acct.Bytes("recover.parity") != 0 || c.Acct.Time("recover.reconstruct") != 0 {
		t.Fatal("clean scan charged recovery buckets")
	}
}

func TestStripedScanSurvivesDeviceLoss(t *testing.T) {
	c, _ := NewCluster(4)
	const rec = 64
	img := stripeImg(12, rec)
	if _, err := c.StripeDataset("ds", img, rec, Placement{DataShards: 3, ParityShards: 1}); err != nil {
		t.Fatal(err)
	}
	// Device 1 dies after its first completed scan.
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 5, Kills: []faults.DeviceKill{{Device: 1, AfterScans: 1}}}))

	clean, _, cleanWall, err := c.ParallelScan("ds", rec)
	if err != nil {
		t.Fatalf("scan before the kill failed: %v", err)
	}
	if !bytes.Equal(reassemble(clean), img) {
		t.Fatal("pre-kill scan differs from the source image")
	}

	degraded, st, degradedWall, err := c.ParallelScan("ds", rec)
	if err != nil {
		t.Fatalf("degraded scan failed: %v", err)
	}
	if !bytes.Equal(reassemble(degraded), img) {
		t.Fatal("degraded scan payload differs from the source image — reconstruction is wrong")
	}
	if st.DegradedReads != 1 {
		t.Fatalf("DegradedReads = %d, want 1", st.DegradedReads)
	}
	meta := c.stripeFor("ds")
	if want := int64(meta.counts[1]) * rec; st.ReconstructedBytes != want {
		t.Fatalf("ReconstructedBytes = %d, want %d", st.ReconstructedBytes, want)
	}
	if got := c.DeviceHealth(1); got != HealthLost {
		t.Fatalf("device 1 health = %v, want lost", got)
	}
	if c.LostCount() != 1 {
		t.Fatalf("LostCount = %d, want 1", c.LostCount())
	}
	if c.Acct.Bytes("recover.parity") != meta.stripeLen {
		t.Fatalf("recover.parity = %d bytes, want one stripe (%d)", c.Acct.Bytes("recover.parity"), meta.stripeLen)
	}
	if c.Acct.Time("recover.reconstruct") <= 0 {
		t.Fatal("no reconstruction time charged")
	}
	// The degraded scan's overhead stays within the modeled bound.
	bound, err := c.DegradedScanBound("ds", 1)
	if err != nil {
		t.Fatal(err)
	}
	if overhead := degradedWall - cleanWall; overhead > bound {
		t.Fatalf("degraded overhead %v exceeds modeled bound %v", overhead, bound)
	}
	// Loss is sticky: the next scan reconstructs again without a probe.
	again, st2, _, err := c.ParallelScan("ds", rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reassemble(again), img) || st2.DegradedReads != 1 {
		t.Fatalf("second degraded scan wrong: stats %+v", st2)
	}
}

func TestStripedScanUnrecoverableLoss(t *testing.T) {
	c, _ := NewCluster(4)
	const rec = 64
	img := stripeImg(12, rec)
	if _, err := c.StripeDataset("ds", img, rec, Placement{DataShards: 3, ParityShards: 1}); err != nil {
		t.Fatal(err)
	}
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 5, Kills: []faults.DeviceKill{
		{Device: 0, AfterScans: 1},
		{Device: 2, AfterScans: 1},
	}}))
	if _, _, _, err := c.ParallelScan("ds", rec); err != nil {
		t.Fatalf("pre-kill scan failed: %v", err)
	}
	_, _, _, err := c.ParallelScan("ds", rec)
	if !errors.Is(err, faults.ErrDeviceLost) {
		t.Fatalf("two losses with one parity: err = %v, want wrapped ErrDeviceLost", err)
	}
}

func TestPlainShardLossIsFatal(t *testing.T) {
	c, _ := NewCluster(3)
	const rec = 64
	img := stripeImg(9, rec)
	if _, err := c.ShardDataset("ds", img, rec); err != nil {
		t.Fatal(err)
	}
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 5, Kills: []faults.DeviceKill{{Device: 2, AfterScans: 1}}}))
	if _, _, _, err := c.ParallelScan("ds", rec); err != nil {
		t.Fatalf("pre-kill scan failed: %v", err)
	}
	_, _, _, err := c.ParallelScan("ds", rec)
	if !errors.Is(err, faults.ErrDeviceLost) {
		t.Fatalf("unprotected shard loss: err = %v, want wrapped ErrDeviceLost", err)
	}
	if got := c.DeviceHealth(2); got != HealthLost {
		t.Fatalf("device 2 health = %v, want lost", got)
	}
}

func TestRebuildRestoresHealthyCluster(t *testing.T) {
	c, _ := NewCluster(4)
	const rec = 64
	img := stripeImg(12, rec)
	if _, err := c.StripeDataset("ds", img, rec, Placement{DataShards: 3, ParityShards: 1}); err != nil {
		t.Fatal(err)
	}
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 5, Kills: []faults.DeviceKill{{Device: 1, AfterScans: 1}}}))
	if _, _, _, err := c.ParallelScan("ds", rec); err != nil {
		t.Fatal(err)
	}
	if _, st, _, err := c.ParallelScan("ds", rec); err != nil || st.DegradedReads != 1 {
		t.Fatalf("expected one degraded scan (err=%v stats=%+v)", err, st)
	}

	// No spare: rebuild must refuse, cluster stays degraded.
	if _, err := c.Rebuild("ds"); err == nil {
		t.Fatal("rebuild without a spare succeeded")
	}
	spare, err := New()
	if err != nil {
		t.Fatal(err)
	}
	c.AttachSpare(spare)
	if c.Spares() != 1 {
		t.Fatalf("Spares = %d, want 1", c.Spares())
	}
	survivorBefore := c.Devices[0].Clock.Now()
	dur, err := c.Rebuild("ds")
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("rebuild reported zero duration")
	}
	if c.Spares() != 0 {
		t.Fatal("spare not consumed")
	}
	if got := c.DeviceHealth(1); got != HealthHealthy {
		t.Fatalf("rebuilt slot health = %v, want healthy", got)
	}
	if c.Devices[1] != spare {
		t.Fatal("spare not swapped into the lost slot")
	}
	// The rebuild read survivors — the foreground-contention model:
	// their clocks advanced, so concurrent scans queue behind it.
	if c.Devices[0].Clock.Now() <= survivorBefore {
		t.Fatal("rebuild did not advance survivor clocks")
	}
	// Back to full health: the next scan is clean and identical.
	shards, st, _, err := c.ParallelScan("ds", rec)
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedReads != 0 {
		t.Fatalf("post-rebuild scan still degraded: %+v", st)
	}
	if !bytes.Equal(reassemble(shards), img) {
		t.Fatal("post-rebuild scan differs from the source image")
	}
	// LostCount is cumulative history, not current state.
	if c.LostCount() != 1 {
		t.Fatalf("LostCount = %d, want 1", c.LostCount())
	}
}

// TestHealthStateMachine drives noteLost directly: a device whose
// injector does not confirm the loss is cleared back to healthy via
// the suspect probe; a confirmed loss is terminal.
func TestHealthStateMachine(t *testing.T) {
	c, _ := NewCluster(2)
	const rec = 64
	img := stripeImg(4, rec)
	if _, err := c.StripeDataset("ds", img, rec, Placement{DataShards: 1, ParityShards: 1}); err != nil {
		t.Fatal(err)
	}
	// Injector never kills: a spurious device-lost classification is
	// probed and cleared.
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 1}))
	if c.noteLost(0, "ds") {
		t.Fatal("healthy device confirmed lost")
	}
	if got := c.DeviceHealth(0); got != HealthHealthy {
		t.Fatalf("health after cleared probe = %v, want healthy", got)
	}
	// Now a real kill: suspect → probe → lost, and sticky.
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 1, Kills: []faults.DeviceKill{{Device: 0, AfterScans: 1}}}))
	c.bumpScans()
	if !c.noteLost(0, "ds") {
		t.Fatal("killed device not confirmed lost")
	}
	if got := c.DeviceHealth(0); got != HealthLost {
		t.Fatalf("health = %v, want lost", got)
	}
	if !c.noteLost(0, "ds") {
		t.Fatal("lost state not sticky")
	}
	if c.LostCount() != 1 {
		t.Fatalf("LostCount = %d, want 1 (no double count)", c.LostCount())
	}
}

func TestStripedScanRejectsMismatchedRecordSize(t *testing.T) {
	c, _ := NewCluster(3)
	img := stripeImg(6, 64)
	if _, err := c.StripeDataset("ds", img, 64, Placement{DataShards: 2, ParityShards: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.ParallelScan("ds", 32); err == nil {
		t.Fatal("scan with the wrong record size accepted")
	}
}
