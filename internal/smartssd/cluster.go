package smartssd

import (
	"errors"
	"fmt"
	"time"

	"nessa/internal/faults"
	"nessa/internal/simtime"
)

// Cluster models the paper's stated future work (§5): scaling NeSSA
// over multiple SmartSSDs feeding a shared GPU pool. The dataset is
// sharded record-wise across drives; each FPGA scans and selects over
// its local shard (pairing naturally with the GreeDi two-round merge
// in internal/selection), and only the merged subset crosses the host
// interconnect.
//
// With StripeDataset the cluster additionally lays out Reed–Solomon
// parity stripes so whole-device loss is survivable: ParallelScan
// reconstructs a lost device's stripe from the survivors, and Rebuild
// re-materializes it onto a spare (DESIGN.md §4.11).
type Cluster struct {
	Devices []*Device

	// ShardDeadline, when positive, bounds the simulated time one
	// shard may spend on its scan before the host declares it a
	// straggler and re-issues the read (§4.6). Zero disables the
	// deadline.
	ShardDeadline time.Duration
	// MaxReissue caps straggler re-issues per shard before the scan
	// fails with faults.ErrShardTimeout. Zero means 2.
	MaxReissue int
	// Verify, when non-nil, validates every scanned (or reconstructed)
	// data-shard payload — typically the codec's per-record CRC check.
	// Parity stripes are raw coding bytes, never records, so Verify is
	// not applied to them.
	Verify func([]byte) error
	// ReconstructBW is the modeled host-side throughput of the GF(256)
	// reconstruction math in bytes/second of source data streamed.
	// Zero means DefaultReconstructBW.
	ReconstructBW float64
	// Acct accumulates cluster-level (host-side) recovery costs under
	// the "recover.*" buckets: parity bytes pulled for reconstruction,
	// reconstructed payload bytes, and GF-math time.
	Acct *simtime.Accountant

	health   []Health
	stripes  map[string]*stripeMeta
	spares   []*Device
	nextID   int
	lostEver int
}

// DefaultReconstructBW is the modeled reconstruction throughput:
// table-driven GF(256) multiply-accumulate streams at roughly DRAM
// copy speed on one core.
const DefaultReconstructBW = 6e9

// NewCluster assembles n independent SmartSSDs with unique device IDs.
func NewCluster(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("smartssd: cluster needs at least one device, got %d", n)
	}
	c := &Cluster{
		Acct:    simtime.NewAccountant(),
		stripes: make(map[string]*stripeMeta),
	}
	for i := 0; i < n; i++ {
		d, err := New()
		if err != nil {
			return nil, err
		}
		d.ID = i
		c.Devices = append(c.Devices, d)
	}
	c.health = make([]Health, n)
	c.nextID = n
	return c, nil
}

// Size reports the number of devices.
func (c *Cluster) Size() int { return len(c.Devices) }

// SetInjector attaches one shared fault injector to every device (and
// its flash array). Scans issue device operations in a fixed order, so
// a shared seeded injector still yields a reproducible schedule.
func (c *Cluster) SetInjector(in *faults.Injector) {
	for _, d := range c.Devices {
		d.SetInjector(in)
	}
}

// ShardDataset splits a record-aligned dataset image across the
// devices (round-robin by contiguous stripe: device i receives records
// [i·n/D, (i+1)·n/D)) and stores each shard under name. It returns the
// per-device record counts. Shards have no redundancy — a lost device
// takes its records with it; use StripeDataset for placements that
// survive device loss.
func (c *Cluster) ShardDataset(name string, img []byte, recordSize int64) ([]int, error) {
	if recordSize <= 0 {
		return nil, fmt.Errorf("smartssd: record size %d must be positive", recordSize)
	}
	if int64(len(img))%recordSize != 0 {
		return nil, fmt.Errorf("smartssd: image length %d not a multiple of record size %d", len(img), recordSize)
	}
	records := int(int64(len(img)) / recordSize)
	if records < len(c.Devices) {
		return nil, fmt.Errorf("smartssd: %d records cannot shard across %d devices without empty shards",
			records, len(c.Devices))
	}
	counts := make([]int, len(c.Devices))
	for i, d := range c.Devices {
		lo := int64(i*records/len(c.Devices)) * recordSize
		hi := int64((i+1)*records/len(c.Devices)) * recordSize
		if lo == hi {
			return nil, fmt.Errorf("smartssd: sharding %d records across %d devices leaves shard %d empty",
				records, len(c.Devices), i)
		}
		if err := d.StoreDataset(name, img[lo:hi]); err != nil {
			return nil, fmt.Errorf("smartssd: shard %d: %w", i, err)
		}
		counts[i] = int((hi - lo) / recordSize)
	}
	return counts, nil
}

// ScanStats aggregates what the recovery machinery did across one
// cluster scan: the per-shard resilient-read stats summed, straggler
// re-issues, and — for striped datasets — how much was served by
// parity reconstruction instead of the lost device.
type ScanStats struct {
	Read               ReadStats // per-shard recovery-loop stats, summed
	Reissues           int       // straggler re-issues across shards
	DegradedReads      int       // stripes served via parity reconstruction
	ReconstructedBytes int64     // payload bytes rebuilt from parity
}

// Add accumulates other into s.
func (s *ScanStats) Add(other ScanStats) {
	s.Read.Add(other.Read)
	s.Reissues += other.Reissues
	s.DegradedReads += other.DegradedReads
	s.ReconstructedBytes += other.ReconstructedBytes
}

// ParallelScan reads every device's full shard of name to its FPGA
// over the P2P links. Each device runs on its own simulated clock, so
// the modeled scan is parallel in simulated time even though the host
// loop issues the reads serially; the returned wall duration is the
// slowest device's elapsed time — the cluster's selection-scan
// latency. It also returns the per-shard payloads and the aggregated
// recovery stats.
//
// Each per-shard read runs under the resilient recovery loop (retry on
// transient faults, host-path fallback on link drops, Verify-driven
// corruption re-reads). When ShardDeadline is set, a shard whose scan
// — including injected stalls — exceeds the deadline is treated as a
// straggler and re-issued up to MaxReissue times; a shard that still
// misses its deadline fails the scan with an error wrapping
// faults.ErrShardTimeout.
//
// For a dataset laid out with StripeDataset, a device lost mid-scan
// does not fail the scan: its stripe is reconstructed from the
// surviving peers' parity (up to ParityShards concurrent losses), with
// the extra parity traffic and GF-math time charged to the cluster's
// "recover.*" buckets and the stats reporting the degraded reads.
func (c *Cluster) ParallelScan(name string, recordSize int64) ([][]byte, ScanStats, time.Duration, error) {
	var st ScanStats
	if recordSize <= 0 {
		return nil, st, 0, fmt.Errorf("smartssd: record size %d must be positive", recordSize)
	}
	if meta := c.stripeFor(name); meta != nil {
		return c.stripedScan(name, recordSize, meta)
	}
	shards := make([][]byte, len(c.Devices))
	var wall time.Duration
	for i, d := range c.Devices {
		scanStart := d.Clock.Now()
		buf, err := c.scanShard(i, d, name, recordSize, c.Verify, &st)
		if err != nil {
			if errors.Is(err, faults.ErrDeviceLost) {
				c.noteLost(i, name)
			}
			return nil, st, 0, fmt.Errorf("smartssd: shard %d: %w", i, err)
		}
		shards[i] = buf
		if total := d.Clock.Now() - scanStart; total > wall {
			wall = total
		}
	}
	c.bumpScans()
	return shards, st, wall, nil
}

// scanShard runs one device's shard scan under the deadline/re-issue
// policy, accumulating recovery stats into st.
func (c *Cluster) scanShard(i int, d *Device, name string, recordSize int64, verify func([]byte) error, st *ScanStats) ([]byte, error) {
	size, err := d.SSD.Size(name)
	if err != nil {
		return nil, err
	}
	reissues := c.MaxReissue
	if reissues <= 0 {
		reissues = 2
	}
	for issue := 0; ; issue++ {
		before := d.Clock.Now()
		buf, rst, err := d.ReadResilient(name, 0, size, int(size/recordSize), verify, RetryPolicy{})
		st.Read.Add(rst)
		if err != nil {
			return nil, err
		}
		if stall := d.Injector.Stall(); stall > 0 {
			d.Clock.Advance(stall)
			d.Acct.AddTime("scan.stall", stall)
		}
		// The deadline applies per issue; the shard's wall cost still
		// accumulates every abandoned straggler issue.
		if dt := d.Clock.Now() - before; c.ShardDeadline <= 0 || dt <= c.ShardDeadline {
			return buf, nil
		}
		if issue == reissues {
			return nil, fmt.Errorf("smartssd: shard missed %v deadline on %d issues: %w",
				c.ShardDeadline, issue+1, faults.ErrShardTimeout)
		}
		// Straggler: drop the slow issue and read the shard again.
		st.Reissues++
	}
}

// bumpScans records one completed cluster scan on every member device
// — the trigger count for scripted DeviceKill{AfterScans} schedules.
func (c *Cluster) bumpScans() {
	for _, d := range c.Devices {
		d.Scans++
	}
}

// TotalBytes sums a byte bucket across all devices.
func (c *Cluster) TotalBytes(bucket string) int64 {
	var n int64
	for _, d := range c.Devices {
		n += d.Acct.Bytes(bucket)
	}
	return n
}

// MaxClock reports the furthest-advanced device clock — the cluster's
// wall-clock time under perfect parallelism.
func (c *Cluster) MaxClock() time.Duration {
	var m time.Duration
	for _, d := range c.Devices {
		if now := d.Clock.Now(); now > m {
			m = now
		}
	}
	return m
}

// ScanSpeedup reports the ideal-parallel speed-up of scanning a
// dataset of totalBytes across the cluster versus one device:
// each drive streams 1/D of the data, so the wall time shrinks by
// roughly D (command overheads keep it slightly under).
func (c *Cluster) ScanSpeedup(totalBytes int64, records int) float64 {
	if len(c.Devices) == 0 || records <= 0 {
		return 0
	}
	link := c.Devices[0].P2P
	single := link.Duration(totalBytes, records)
	d := int64(len(c.Devices))
	per := link.Duration(totalBytes/d, records/len(c.Devices))
	if per <= 0 {
		return 0
	}
	return single.Seconds() / per.Seconds()
}
