package smartssd

import (
	"fmt"
	"time"

	"nessa/internal/faults"
)

// Cluster models the paper's stated future work (§5): scaling NeSSA
// over multiple SmartSSDs feeding a shared GPU pool. The dataset is
// sharded record-wise across drives; each FPGA scans and selects over
// its local shard in parallel (pairing naturally with the GreeDi
// two-round merge in internal/selection), and only the merged subset
// crosses the host interconnect.
type Cluster struct {
	Devices []*Device

	// ShardDeadline, when positive, bounds the simulated time one
	// shard may spend on its scan before the host declares it a
	// straggler and re-issues the read (§4.6). Zero disables the
	// deadline.
	ShardDeadline time.Duration
	// MaxReissue caps straggler re-issues per shard before the scan
	// fails with faults.ErrShardTimeout. Zero means 2.
	MaxReissue int
}

// NewCluster assembles n independent SmartSSDs.
func NewCluster(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("smartssd: cluster needs at least one device, got %d", n)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		d, err := New()
		if err != nil {
			return nil, err
		}
		c.Devices = append(c.Devices, d)
	}
	return c, nil
}

// Size reports the number of devices.
func (c *Cluster) Size() int { return len(c.Devices) }

// SetInjector attaches one shared fault injector to every device (and
// its flash array). Scans issue device operations in a fixed order, so
// a shared seeded injector still yields a reproducible schedule.
func (c *Cluster) SetInjector(in *faults.Injector) {
	for _, d := range c.Devices {
		d.SetInjector(in)
	}
}

// ShardDataset splits a record-aligned dataset image across the
// devices (round-robin by contiguous stripe: device i receives records
// [i·n/D, (i+1)·n/D)) and stores each shard under name. It returns the
// per-device record counts.
func (c *Cluster) ShardDataset(name string, img []byte, recordSize int64) ([]int, error) {
	if recordSize <= 0 {
		return nil, fmt.Errorf("smartssd: record size %d must be positive", recordSize)
	}
	if int64(len(img))%recordSize != 0 {
		return nil, fmt.Errorf("smartssd: image length %d not a multiple of record size %d", len(img), recordSize)
	}
	records := int(int64(len(img)) / recordSize)
	if records < len(c.Devices) {
		return nil, fmt.Errorf("smartssd: %d records cannot shard across %d devices without empty shards",
			records, len(c.Devices))
	}
	counts := make([]int, len(c.Devices))
	for i, d := range c.Devices {
		lo := int64(i*records/len(c.Devices)) * recordSize
		hi := int64((i+1)*records/len(c.Devices)) * recordSize
		if lo == hi {
			return nil, fmt.Errorf("smartssd: sharding %d records across %d devices leaves shard %d empty",
				records, len(c.Devices), i)
		}
		if err := d.StoreDataset(name, img[lo:hi]); err != nil {
			return nil, fmt.Errorf("smartssd: shard %d: %w", i, err)
		}
		counts[i] = int((hi - lo) / recordSize)
	}
	return counts, nil
}

// ParallelScan reads every device's full shard of name to its FPGA
// over the P2P links concurrently. It returns the per-shard payloads
// and the wall-clock time of the slowest device — the cluster's
// selection-scan latency.
//
// Each per-shard read runs under the resilient recovery loop (retry on
// transient faults, host-path fallback on link drops). When
// ShardDeadline is set, a shard whose scan — including injected stalls
// — exceeds the deadline is treated as a straggler and re-issued up to
// MaxReissue times; a shard that still misses its deadline fails the
// scan with an error wrapping faults.ErrShardTimeout.
func (c *Cluster) ParallelScan(name string, recordSize int64) ([][]byte, time.Duration, error) {
	if recordSize <= 0 {
		return nil, 0, fmt.Errorf("smartssd: record size %d must be positive", recordSize)
	}
	reissues := c.MaxReissue
	if reissues <= 0 {
		reissues = 2
	}
	shards := make([][]byte, len(c.Devices))
	var wall time.Duration
	for i, d := range c.Devices {
		size, err := d.SSD.Size(name)
		if err != nil {
			return nil, 0, fmt.Errorf("smartssd: shard %d: %w", i, err)
		}
		scanStart := d.Clock.Now()
		for issue := 0; ; issue++ {
			before := d.Clock.Now()
			buf, _, err := d.ReadResilient(name, 0, size, int(size/recordSize), nil, RetryPolicy{})
			if err != nil {
				return nil, 0, fmt.Errorf("smartssd: shard %d: %w", i, err)
			}
			if stall := d.Injector.Stall(); stall > 0 {
				d.Clock.Advance(stall)
				d.Acct.AddTime("scan.stall", stall)
			}
			// The deadline applies per issue; the shard's wall cost below
			// still accumulates every abandoned straggler issue.
			if dt := d.Clock.Now() - before; c.ShardDeadline <= 0 || dt <= c.ShardDeadline {
				shards[i] = buf
				break
			}
			if issue == reissues {
				return nil, 0, fmt.Errorf("smartssd: shard %d missed %v deadline on %d issues: %w",
					i, c.ShardDeadline, issue+1, faults.ErrShardTimeout)
			}
			// Straggler: drop the slow issue and read the shard again.
		}
		if total := d.Clock.Now() - scanStart; total > wall {
			wall = total
		}
	}
	return shards, wall, nil
}

// TotalBytes sums a byte bucket across all devices.
func (c *Cluster) TotalBytes(bucket string) int64 {
	var n int64
	for _, d := range c.Devices {
		n += d.Acct.Bytes(bucket)
	}
	return n
}

// MaxClock reports the furthest-advanced device clock — the cluster's
// wall-clock time under perfect parallelism.
func (c *Cluster) MaxClock() time.Duration {
	var m time.Duration
	for _, d := range c.Devices {
		if now := d.Clock.Now(); now > m {
			m = now
		}
	}
	return m
}

// ScanSpeedup reports the ideal-parallel speed-up of scanning a
// dataset of totalBytes across the cluster versus one device:
// each drive streams 1/D of the data, so the wall time shrinks by
// roughly D (command overheads keep it slightly under).
func (c *Cluster) ScanSpeedup(totalBytes int64, records int) float64 {
	if len(c.Devices) == 0 || records <= 0 {
		return 0
	}
	link := c.Devices[0].P2P
	single := link.Duration(totalBytes, records)
	d := int64(len(c.Devices))
	per := link.Duration(totalBytes/d, records/len(c.Devices))
	if per <= 0 {
		return 0
	}
	return single.Seconds() / per.Seconds()
}
