package smartssd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"nessa/internal/data"
	"nessa/internal/faults"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("zero-device cluster accepted")
	}
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("size = %d, want 4", c.Size())
	}
}

func TestShardDatasetSplitsRecords(t *testing.T) {
	c, _ := NewCluster(3)
	const rec = 64
	img := make([]byte, 10*rec)
	for i := range img {
		img[i] = byte(i / rec) // record index stamped into payload
	}
	counts, err := c.ShardDataset("ds", img, rec)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 10 {
		t.Fatalf("shards hold %d records, want 10", total)
	}
	// Shard 0 holds records [0,3): verify payload identity.
	buf, _, err := c.Devices[0].SSD.ReadAt("ds", 0, int64(counts[0])*rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img[:int64(counts[0])*rec]) {
		t.Fatal("shard 0 payload differs from source stripe")
	}
}

func TestShardDatasetErrors(t *testing.T) {
	cases := []struct {
		name    string
		devices int
		img     int64
		rec     int64
		ok      bool
	}{
		{"valid even split", 2, 8 * 64, 64, true},
		{"valid uneven split", 3, 10 * 64, 64, true},
		{"one record per device", 4, 4 * 64, 64, true},
		{"zero record size", 2, 128, 0, false},
		{"negative record size", 2, 128, -64, false},
		{"non-aligned image", 2, 65, 64, false},
		{"fewer records than devices", 2, 64, 64, false},
		{"empty image", 2, 0, 64, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCluster(tc.devices)
			if err != nil {
				t.Fatal(err)
			}
			counts, err := c.ShardDataset("ds", make([]byte, tc.img), tc.rec)
			if tc.ok != (err == nil) {
				t.Fatalf("err = %v, want ok=%v", err, tc.ok)
			}
			if !tc.ok {
				return
			}
			total := 0
			for i, n := range counts {
				if n <= 0 {
					t.Errorf("shard %d holds %d records; empty shards must be rejected", i, n)
				}
				total += n
			}
			if int64(total)*tc.rec != tc.img {
				t.Errorf("shards hold %d records, want %d", total, tc.img/tc.rec)
			}
		})
	}
}

func TestParallelScanReturnsAllShards(t *testing.T) {
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 40, 5
	train, _ := data.Generate(spec)
	img, err := data.Encode(train)
	if err != nil {
		t.Fatal(err)
	}

	c, _ := NewCluster(4)
	if _, err := c.ShardDataset("cifar", img, spec.BytesPerImage); err != nil {
		t.Fatal(err)
	}
	shards, _, wall, err := c.ParallelScan("cifar", spec.BytesPerImage)
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Error("scan wall time not positive")
	}
	var rebuilt []byte
	for _, s := range shards {
		rebuilt = append(rebuilt, s...)
	}
	if !bytes.Equal(rebuilt, img) {
		t.Fatal("concatenated shards differ from the original image")
	}
	back, err := data.Decode(spec, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != train.Len() {
		t.Fatalf("decoded %d records, want %d", back.Len(), train.Len())
	}
}

func TestParallelScanFasterThanSingleDevice(t *testing.T) {
	// The future-work claim: D drives scan ~D× faster than one.
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 400, 5
	train, _ := data.Generate(spec)
	img, _ := data.Encode(train)

	single, _ := NewCluster(1)
	single.ShardDataset("ds", img, spec.BytesPerImage)
	_, _, wall1, err := single.ParallelScan("ds", spec.BytesPerImage)
	if err != nil {
		t.Fatal(err)
	}

	quad, _ := NewCluster(4)
	quad.ShardDataset("ds", img, spec.BytesPerImage)
	_, _, wall4, err := quad.ParallelScan("ds", spec.BytesPerImage)
	if err != nil {
		t.Fatal(err)
	}
	ratio := wall1.Seconds() / wall4.Seconds()
	if ratio < 2.5 {
		t.Fatalf("4-drive scan speed-up = %.2fx, want near 4x", ratio)
	}
}

func TestParallelScanValidatesRecordSize(t *testing.T) {
	c, _ := NewCluster(2)
	if _, _, _, err := c.ParallelScan("ds", 0); err == nil {
		t.Error("zero record size accepted")
	}
	if _, _, _, err := c.ParallelScan("ds", -3); err == nil {
		t.Error("negative record size accepted")
	}
}

func TestParallelScanSurvivesStalls(t *testing.T) {
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 40, 5
	train, _ := data.Generate(spec)
	img, _ := data.Encode(train)

	c, _ := NewCluster(4)
	if _, err := c.ShardDataset("ds", img, spec.BytesPerImage); err != nil {
		t.Fatal(err)
	}
	// Frequent stalls but no deadline: the scan completes, just slower,
	// with the stall time visible in the accounting.
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 11, StallRate: 0.5, StallFor: 3 * time.Millisecond}))
	shards, _, wall, err := c.ParallelScan("ds", spec.BytesPerImage)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt []byte
	for _, s := range shards {
		rebuilt = append(rebuilt, s...)
	}
	if !bytes.Equal(rebuilt, img) {
		t.Fatal("shards corrupted by stalls")
	}
	var stallT time.Duration
	for _, d := range c.Devices {
		stallT += d.Acct.Time("scan.stall")
	}
	if stallT <= 0 {
		t.Fatal("no stall time charged despite 50% stall rate")
	}
	if wall <= 0 {
		t.Fatal("wall time not positive")
	}
}

func TestParallelScanReissuesStragglers(t *testing.T) {
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 40, 5
	train, _ := data.Generate(spec)
	img, _ := data.Encode(train)

	c, _ := NewCluster(4)
	if _, err := c.ShardDataset("ds", img, spec.BytesPerImage); err != nil {
		t.Fatal(err)
	}
	// A clean shard scan takes well under 1 ms of simulated time; a 5 ms
	// stall blows the 2 ms deadline, so stalled issues are abandoned and
	// re-issued. With a 40% stall rate and 4 re-issues, every shard finds
	// a stall-free issue under this seed.
	c.ShardDeadline = 2 * time.Millisecond
	c.MaxReissue = 4
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 3, StallRate: 0.4, StallFor: 5 * time.Millisecond}))
	shards, st, _, err := c.ParallelScan("ds", spec.BytesPerImage)
	if err != nil {
		t.Fatalf("scan with straggler re-issue failed: %v", err)
	}
	var rebuilt []byte
	for _, s := range shards {
		rebuilt = append(rebuilt, s...)
	}
	if !bytes.Equal(rebuilt, img) {
		t.Fatal("re-issued shards differ from the original image")
	}
	if st.Reissues == 0 {
		t.Fatal("scan stats recorded no straggler re-issues despite 40% stalls")
	}
	if st.Read.Attempts == 0 {
		t.Fatal("scan stats recorded no read attempts")
	}
}

func TestParallelScanPersistentStallTimesOut(t *testing.T) {
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 16, 5
	train, _ := data.Generate(spec)
	img, _ := data.Encode(train)

	c, _ := NewCluster(2)
	if _, err := c.ShardDataset("ds", img, spec.BytesPerImage); err != nil {
		t.Fatal(err)
	}
	c.ShardDeadline = 2 * time.Millisecond
	c.MaxReissue = 2
	// Every issue stalls past the deadline: the shard can never finish.
	c.SetInjector(faults.NewInjector(faults.Profile{Seed: 1, StallRate: 1, StallFor: 10 * time.Millisecond}))
	_, _, _, err := c.ParallelScan("ds", spec.BytesPerImage)
	if !errors.Is(err, faults.ErrShardTimeout) {
		t.Fatalf("persistent stall error = %v, want wrapped ErrShardTimeout", err)
	}
}

func TestClusterAccounting(t *testing.T) {
	spec, _ := data.Lookup("MNIST")
	spec.SimTrain, spec.SimTest = 60, 5
	train, _ := data.Generate(spec)
	img, _ := data.Encode(train)

	c, _ := NewCluster(3)
	c.ShardDataset("ds", img, spec.BytesPerImage)
	c.ParallelScan("ds", spec.BytesPerImage)
	if got := c.TotalBytes("p2p.read"); got != int64(len(img)) {
		t.Fatalf("cluster p2p bytes = %d, want %d", got, len(img))
	}
	if c.MaxClock() <= 0 {
		t.Error("cluster clock did not advance")
	}
}

func TestScanSpeedupNearDeviceCount(t *testing.T) {
	c, _ := NewCluster(8)
	got := c.ScanSpeedup(8*1024*1024*128, 8*128)
	if got < 6 || got > 8.5 {
		t.Fatalf("ideal 8-drive speed-up = %.2f, want ~8", got)
	}
}
