package smartssd

import (
	"bytes"
	"testing"

	"nessa/internal/data"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("zero-device cluster accepted")
	}
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("size = %d, want 4", c.Size())
	}
}

func TestShardDatasetSplitsRecords(t *testing.T) {
	c, _ := NewCluster(3)
	const rec = 64
	img := make([]byte, 10*rec)
	for i := range img {
		img[i] = byte(i / rec) // record index stamped into payload
	}
	counts, err := c.ShardDataset("ds", img, rec)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 10 {
		t.Fatalf("shards hold %d records, want 10", total)
	}
	// Shard 0 holds records [0,3): verify payload identity.
	buf, _, err := c.Devices[0].SSD.ReadAt("ds", 0, int64(counts[0])*rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img[:int64(counts[0])*rec]) {
		t.Fatal("shard 0 payload differs from source stripe")
	}
}

func TestShardDatasetErrors(t *testing.T) {
	c, _ := NewCluster(2)
	if _, err := c.ShardDataset("ds", make([]byte, 65), 64); err == nil {
		t.Error("non-aligned image accepted")
	}
	if _, err := c.ShardDataset("ds", make([]byte, 64), 64); err == nil {
		t.Error("fewer records than devices accepted")
	}
}

func TestParallelScanReturnsAllShards(t *testing.T) {
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 40, 5
	train, _ := data.Generate(spec)
	img, err := data.Encode(train)
	if err != nil {
		t.Fatal(err)
	}

	c, _ := NewCluster(4)
	if _, err := c.ShardDataset("cifar", img, spec.BytesPerImage); err != nil {
		t.Fatal(err)
	}
	shards, wall, err := c.ParallelScan("cifar", spec.BytesPerImage)
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Error("scan wall time not positive")
	}
	var rebuilt []byte
	for _, s := range shards {
		rebuilt = append(rebuilt, s...)
	}
	if !bytes.Equal(rebuilt, img) {
		t.Fatal("concatenated shards differ from the original image")
	}
	back, err := data.Decode(spec, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != train.Len() {
		t.Fatalf("decoded %d records, want %d", back.Len(), train.Len())
	}
}

func TestParallelScanFasterThanSingleDevice(t *testing.T) {
	// The future-work claim: D drives scan ~D× faster than one.
	spec, _ := data.Lookup("CIFAR-10")
	spec.SimTrain, spec.SimTest = 400, 5
	train, _ := data.Generate(spec)
	img, _ := data.Encode(train)

	single, _ := NewCluster(1)
	single.ShardDataset("ds", img, spec.BytesPerImage)
	_, wall1, err := single.ParallelScan("ds", spec.BytesPerImage)
	if err != nil {
		t.Fatal(err)
	}

	quad, _ := NewCluster(4)
	quad.ShardDataset("ds", img, spec.BytesPerImage)
	_, wall4, err := quad.ParallelScan("ds", spec.BytesPerImage)
	if err != nil {
		t.Fatal(err)
	}
	ratio := wall1.Seconds() / wall4.Seconds()
	if ratio < 2.5 {
		t.Fatalf("4-drive scan speed-up = %.2fx, want near 4x", ratio)
	}
}

func TestClusterAccounting(t *testing.T) {
	spec, _ := data.Lookup("MNIST")
	spec.SimTrain, spec.SimTest = 60, 5
	train, _ := data.Generate(spec)
	img, _ := data.Encode(train)

	c, _ := NewCluster(3)
	c.ShardDataset("ds", img, spec.BytesPerImage)
	c.ParallelScan("ds", spec.BytesPerImage)
	if got := c.TotalBytes("p2p.read"); got != int64(len(img)) {
		t.Fatalf("cluster p2p bytes = %d, want %d", got, len(img))
	}
	if c.MaxClock() <= 0 {
		t.Error("cluster clock did not advance")
	}
}

func TestScanSpeedupNearDeviceCount(t *testing.T) {
	c, _ := NewCluster(8)
	got := c.ScanSpeedup(8*1024*1024*128, 8*128)
	if got < 6 || got > 8.5 {
		t.Fatalf("ideal 8-drive speed-up = %.2f, want ~8", got)
	}
}
