package nn

import (
	"testing"
	"testing/quick"

	"nessa/internal/tensor"
)

func TestModelRoundTrip(t *testing.T) {
	r := tensor.NewRNG(1)
	m := NewMLP(r, 12, []int{24, 16}, 5)
	buf := MarshalModel(m)
	back, err := UnmarshalModel(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.In != m.In || back.Classes != m.Classes || len(back.Layers) != len(m.Layers) {
		t.Fatal("model shape changed in round trip")
	}
	for li, l := range m.Layers {
		bl := back.Layers[li]
		for i := range l.W.Data {
			if bl.W.Data[i] != l.W.Data[i] {
				t.Fatalf("layer %d weight %d mismatch", li, i)
			}
		}
		for i := range l.B {
			if bl.B[i] != l.B[i] {
				t.Fatalf("layer %d bias %d mismatch", li, i)
			}
		}
	}
}

func TestModelRoundTripPredictionsIdentical(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		hidden := []int{1 + r.Intn(16)}
		m := NewMLP(r, 1+r.Intn(8), hidden, 2+r.Intn(5))
		back, err := UnmarshalModel(MarshalModel(m))
		if err != nil {
			return false
		}
		x := tensor.NewMatrix(4, m.In)
		x.FillNormal(r, 1)
		a := m.Forward(x).Clone()
		b := back.Forward(x)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	r := tensor.NewRNG(2)
	m := NewMLP(r, 4, []int{6}, 3)
	buf := MarshalModel(m)

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c }},
		{"bad version", func(b []byte) []byte { c := append([]byte(nil), b...); c[4] = 99; return c }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing bytes", func(b []byte) []byte { return append(append([]byte(nil), b...), 0) }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, c := range cases {
		if _, err := UnmarshalModel(c.mutate(buf)); err == nil {
			t.Errorf("%s: corruption accepted", c.name)
		}
	}
}

// trainStep drives one synthetic SGD step so the optimizer's velocity
// buffers are non-trivial before snapshotting.
func trainStep(r *tensor.RNG, m *MLP, opt *SGD) {
	g := NewGrads(m)
	x := tensor.NewMatrix(8, m.In)
	x.FillNormal(r, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = r.Intn(m.Classes)
	}
	logits := m.Forward(x)
	d := tensor.NewMatrix(8, m.Classes)
	SoftmaxCEInto(make([]float32, 8), nil, logits, labels, nil, d)
	g.Zero()
	m.Backward(g, d)
	opt.Step(m, g)
}

func TestSGDRoundTripResumesIdentically(t *testing.T) {
	r := tensor.NewRNG(5)
	m := NewMLP(r, 6, []int{10}, 4)
	opt := NewSGD(m, PaperSGD())
	for i := 0; i < 3; i++ {
		trainStep(r, m, opt)
	}
	opt.SetLR(0.02)

	modelBuf, optBuf := MarshalModel(m), MarshalSGD(opt)
	back, err := UnmarshalModel(modelBuf)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := NewSGD(back, PaperSGD())
	if err := UnmarshalSGDInto(opt2, optBuf); err != nil {
		t.Fatal(err)
	}
	if opt2.LR() != opt.LR() {
		t.Fatalf("restored LR %v, want %v", opt2.LR(), opt.LR())
	}
	// The real contract: another identical step from both pairs lands
	// on bit-identical weights — velocities came back exactly.
	ra, rb := tensor.NewRNG(77), tensor.NewRNG(77)
	trainStep(ra, m, opt)
	trainStep(rb, back, opt2)
	for li := range m.Layers {
		for i := range m.Layers[li].W.Data {
			if m.Layers[li].W.Data[i] != back.Layers[li].W.Data[i] {
				t.Fatalf("post-restore step diverged at layer %d weight %d", li, i)
			}
		}
	}
}

func TestUnmarshalSGDRejectsCorruption(t *testing.T) {
	r := tensor.NewRNG(6)
	m := NewMLP(r, 4, []int{6}, 3)
	opt := NewSGD(m, PaperSGD())
	buf := MarshalSGD(opt)
	fresh := func() *SGD { return NewSGD(m, PaperSGD()) }

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c }},
		{"bad version", func(b []byte) []byte { c := append([]byte(nil), b...); c[4] = 99; return c }},
		{"zero lr", func(b []byte) []byte { c := append([]byte(nil), b...); c[8], c[9], c[10], c[11] = 0, 0, 0, 0; return c }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing bytes", func(b []byte) []byte { return append(append([]byte(nil), b...), 0) }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, c := range cases {
		if err := UnmarshalSGDInto(fresh(), c.mutate(buf)); err == nil {
			t.Errorf("%s: corruption accepted", c.name)
		}
	}
	// Architecture mismatch: optimizer built for a different model.
	other := NewSGD(NewMLP(r, 4, []int{7}, 3), PaperSGD())
	if err := UnmarshalSGDInto(other, buf); err == nil {
		t.Error("layer-shape mismatch accepted")
	}
}

func TestUnmarshalRejectsInconsistentDims(t *testing.T) {
	r := tensor.NewRNG(3)
	m := NewMLP(r, 4, nil, 3)
	buf := MarshalModel(m)
	// Header says 5 classes but the single layer has 3 output rows.
	buf[12] = 5
	if _, err := UnmarshalModel(buf); err == nil {
		t.Fatal("class/width mismatch accepted")
	}
}
