// Package nn is a from-scratch neural-network training substrate: a
// multi-layer perceptron classifier with softmax cross-entropy loss,
// per-sample loss and gradient-embedding extraction (what the NeSSA
// selection model consumes), and SGD with Nesterov momentum, weight
// decay, and the step learning-rate schedule the paper trains with.
//
// The paper trains ResNet-20/18/50 on images; here the target models
// are MLP proxies over feature vectors (see DESIGN.md §1). Everything
// the selection pipeline touches — last-layer gradients, per-sample
// losses, quantizable weight tensors — has the same shape and
// semantics as it would on the real networks.
package nn

import (
	"fmt"
	"math"

	"nessa/internal/tensor"
)

// Dense is one fully connected layer. Weights are stored row-major as
// (out × in) so a forward pass is X·Wᵀ + b. The //nessa:shape
// contracts tie both tensors to one out/in pair per layer, so
// nessa-vet's shapecheck can prove every construction site and every
// kernel call against them.
type Dense struct {
	//nessa:shape(rows=out, cols=in)
	W *tensor.Matrix // out × in
	//nessa:shape(len=out)
	B []float32 // out
}

// MLP is a feed-forward classifier: zero or more ReLU hidden layers
// followed by a linear output layer producing one logit per class.
type MLP struct {
	Layers  []*Dense
	In      int // input feature dimension
	Classes int // output dimension

	// scratch per-layer activations from the most recent Forward,
	// reused across calls to avoid reallocation. acts[0] is the input,
	// acts[i] the post-activation output of layer i-1.
	//
	//nessa:arena epoch-scoped forward scratch, overwritten by the next Forward
	acts []*tensor.Matrix
	// scratch per-layer input gradients for Backward, reused the same
	// way. Buffer capacity survives shrinking, so alternating full and
	// tail batches never reallocates.
	//
	//nessa:arena epoch-scoped backward scratch, overwritten by the next Backward
	deltas []*tensor.Matrix
}

// NewMLP builds an MLP with the given input dimension, hidden layer
// widths, and class count, initialized with He-style scaling from r.
// Each layer's input width is the previous layer's output width, so
// the whole in→hidden...→classes chain threads one running dimension.
func NewMLP(r *tensor.RNG, in int, hidden []int, classes int) *MLP {
	if in <= 0 || classes <= 0 {
		panic(fmt.Sprintf("nn: invalid MLP dims in=%d classes=%d", in, classes))
	}
	m := &MLP{In: in, Classes: classes}
	prev := in
	for _, h := range hidden {
		m.Layers = append(m.Layers, newDense(r, h, prev))
		prev = h
	}
	m.Layers = append(m.Layers, newDense(r, classes, prev))
	return m
}

// newDense builds one out×in layer with He-initialized weights
// (std = sqrt(2/in)), which keeps ReLU activations well-scaled.
func newDense(r *tensor.RNG, out, in int) *Dense {
	l := &Dense{
		W: tensor.NewMatrix(out, in),
		B: make([]float32, out),
	}
	std := float32(1.0)
	if in > 0 {
		std = float32(math.Sqrt(2 / float64(in)))
	}
	l.W.FillNormal(r, std)
	return l
}

// Clone returns a deep copy of the model (weights and biases).
func (m *MLP) Clone() *MLP {
	c := &MLP{In: m.In, Classes: m.Classes}
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, &Dense{
			W: l.W.Clone(),
			B: append([]float32(nil), l.B...),
		})
	}
	return c
}

// NumParams reports the total scalar parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// Forward runs a batch X (n × In) through the network and returns the
// logits (n × Classes). Intermediate activations are retained for a
// subsequent Backward. Activation buffers are reused across calls —
// including across differing batch sizes, so a short tail batch does
// not reallocate.
//
//nessa:hotpath
//nessa:scratch-ok returned logits are a documented view into the forward arena, valid until the next Forward
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	if len(m.acts) != len(m.Layers)+1 {
		m.acts = make([]*tensor.Matrix, len(m.Layers)+1)
	}
	return m.forwardInto(m.acts, x)
}

// FwdScratch owns the activation buffers of one independent inference
// pass. Distinct scratches make MLP.ForwardInto safe to call
// concurrently from multiple goroutines on a shared (read-only) model
// — the basis of the chunked parallel evaluation path.
//
//nessa:arena per-goroutine inference scratch, overwritten by the next ForwardInto
type FwdScratch struct {
	acts []*tensor.Matrix
}

// ForwardInto runs inference through s's buffers and returns the
// logits, valid until the next call with the same scratch. It never
// touches the model's training activations — so it cannot feed a
// subsequent Backward, and conversely never disturbs one in flight.
// The model itself is only read.
//
//nessa:hotpath
//nessa:scratch-ok returned logits are a documented view into s, valid until the next call with the same scratch
func (m *MLP) ForwardInto(s *FwdScratch, x *tensor.Matrix) *tensor.Matrix {
	if len(s.acts) != len(m.Layers)+1 {
		s.acts = make([]*tensor.Matrix, len(m.Layers)+1)
	}
	return m.forwardInto(s.acts, x)
}

//nessa:hotpath
func (m *MLP) forwardInto(acts []*tensor.Matrix, x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != m.In {
		panic(fmt.Sprintf("nn: Forward input has %d features, model wants %d", x.Cols, m.In))
	}
	// Both callers size acts to len(Layers)+1. The local layers copy
	// and the tail re-slice share one length value, so the prover can
	// discharge the per-layer indexing that an acts[i+1] access
	// defeats (a field re-load would not: the calls in the loop could,
	// for all the prover knows, mutate m.Layers).
	layers := m.Layers
	rest := acts[1:][:len(layers)]
	acts[0] = x
	cur := x
	for i, l := range layers {
		out := tensor.EnsureShape(rest[i], cur.Rows, l.W.Rows)
		rest[i] = out
		tensor.MatMulTransB(out, cur, l.W)
		if i < len(layers)-1 {
			tensor.AddRowVecReLU(out, l.B)
		} else {
			tensor.AddRowVec(out, l.B)
		}
		cur = out
	}
	return cur
}

// Grads holds one gradient tensor per layer, mirroring MLP.Layers.
type Grads struct {
	W []*tensor.Matrix
	B [][]float32
}

// NewGrads allocates zeroed gradients shaped like m.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	for _, l := range m.Layers {
		g.W = append(g.W, tensor.NewMatrix(l.W.Rows, l.W.Cols))
		g.B = append(g.B, make([]float32, len(l.B)))
	}
	return g
}

// Zero clears all gradient tensors.
func (g *Grads) Zero() {
	for i := range g.W {
		g.W[i].Zero()
		for j := range g.B[i] {
			g.B[i][j] = 0
		}
	}
}

// Backward computes parameter gradients into g given dLogits, the
// gradient of the loss with respect to the logits of the most recent
// Forward batch. dLogits is clobbered. Gradients are accumulated into
// g (call g.Zero first for a fresh batch). All intermediate gradient
// buffers live in a per-model scratch arena, so steady-state calls
// allocate nothing.
//
//nessa:hotpath
func (m *MLP) Backward(g *Grads, dLogits *tensor.Matrix) {
	if len(m.acts) == 0 || m.acts[0] == nil {
		panic("nn: Backward called before Forward")
	}
	if len(m.deltas) != len(m.Layers) {
		m.deltas = make([]*tensor.Matrix, len(m.Layers))
	}
	delta := dLogits
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		in := m.acts[i]
		// dW += deltaᵀ·in directly into the gradient tensor (no
		// temporary, no extra pass); dB += column sums of delta.
		tensor.MatMulTransAAcc(g.W[i], delta, in)
		gb := g.B[i]
		for r := 0; r < delta.Rows; r++ {
			// Pin the row length to len(gb) so the prover discharges
			// both index checks in the column-sum loop.
			row := delta.Row(r)[:len(gb)]
			for j := range gb {
				gb[j] += row[j]
			}
		}
		if i == 0 {
			break
		}
		// Propagate: dIn = delta·W, then mask by ReLU derivative of in.
		// The mask zeroes wherever the stored activation is ≤ 0 (ReLU
		// outputs are never negative, so this means exactly the clamped
		// positions — the subgradient at 0 is taken as 0).
		dIn := tensor.EnsureShape(m.deltas[i], delta.Rows, l.W.Cols)
		m.deltas[i] = dIn
		tensor.MatMul(dIn, delta, l.W)
		// dIn and in share a shape; the re-slice proves it to the
		// compiler so the mask loop runs check-free.
		dd := dIn.Data[:len(in.Data)]
		for k, v := range in.Data {
			if v <= 0 {
				dd[k] = 0
			}
		}
		delta = dIn
	}
}
