// Package nn is a from-scratch neural-network training substrate: a
// multi-layer perceptron classifier with softmax cross-entropy loss,
// per-sample loss and gradient-embedding extraction (what the NeSSA
// selection model consumes), and SGD with Nesterov momentum, weight
// decay, and the step learning-rate schedule the paper trains with.
//
// The paper trains ResNet-20/18/50 on images; here the target models
// are MLP proxies over feature vectors (see DESIGN.md §1). Everything
// the selection pipeline touches — last-layer gradients, per-sample
// losses, quantizable weight tensors — has the same shape and
// semantics as it would on the real networks.
package nn

import (
	"fmt"

	"nessa/internal/tensor"
)

// Dense is one fully connected layer. Weights are stored row-major as
// (out × in) so a forward pass is X·Wᵀ + b.
type Dense struct {
	W *tensor.Matrix // out × in
	B []float32      // out
}

// MLP is a feed-forward classifier: zero or more ReLU hidden layers
// followed by a linear output layer producing one logit per class.
type MLP struct {
	Layers  []*Dense
	In      int // input feature dimension
	Classes int // output dimension

	// scratch per-layer activations from the most recent Forward,
	// reused across calls to avoid reallocation. acts[0] is the input,
	// acts[i] the post-activation output of layer i-1.
	acts []*tensor.Matrix
}

// NewMLP builds an MLP with the given input dimension, hidden layer
// widths, and class count, initialized with He-style scaling from r.
func NewMLP(r *tensor.RNG, in int, hidden []int, classes int) *MLP {
	if in <= 0 || classes <= 0 {
		panic(fmt.Sprintf("nn: invalid MLP dims in=%d classes=%d", in, classes))
	}
	dims := append([]int{in}, hidden...)
	dims = append(dims, classes)
	m := &MLP{In: in, Classes: classes}
	for i := 0; i < len(dims)-1; i++ {
		l := &Dense{
			W: tensor.NewMatrix(dims[i+1], dims[i]),
			B: make([]float32, dims[i+1]),
		}
		// He initialization keeps ReLU activations well-scaled.
		std := float32(1.0)
		if dims[i] > 0 {
			std = float32(1.41421356 / sqrtf(float32(dims[i])))
		}
		l.W.FillNormal(r, std)
		m.Layers = append(m.Layers, l)
	}
	return m
}

func sqrtf(x float32) float32 {
	// Newton iterations are plenty for init scaling.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// Clone returns a deep copy of the model (weights and biases).
func (m *MLP) Clone() *MLP {
	c := &MLP{In: m.In, Classes: m.Classes}
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, &Dense{
			W: l.W.Clone(),
			B: append([]float32(nil), l.B...),
		})
	}
	return c
}

// NumParams reports the total scalar parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// Forward runs a batch X (n × In) through the network and returns the
// logits (n × Classes). Intermediate activations are retained for a
// subsequent Backward.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != m.In {
		panic(fmt.Sprintf("nn: Forward input has %d features, model wants %d", x.Cols, m.In))
	}
	if len(m.acts) != len(m.Layers)+1 {
		m.acts = make([]*tensor.Matrix, len(m.Layers)+1)
	}
	m.acts[0] = x
	cur := x
	for i, l := range m.Layers {
		out := m.acts[i+1]
		if out == nil || out.Rows != cur.Rows || out.Cols != l.W.Rows {
			out = tensor.NewMatrix(cur.Rows, l.W.Rows)
			m.acts[i+1] = out
		}
		tensor.MatMulTransB(out, cur, l.W)
		tensor.AddRowVec(out, l.B)
		if i < len(m.Layers)-1 {
			relu(out)
		}
		cur = out
	}
	return cur
}

func relu(m *tensor.Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// Grads holds one gradient tensor per layer, mirroring MLP.Layers.
type Grads struct {
	W []*tensor.Matrix
	B [][]float32
}

// NewGrads allocates zeroed gradients shaped like m.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	for _, l := range m.Layers {
		g.W = append(g.W, tensor.NewMatrix(l.W.Rows, l.W.Cols))
		g.B = append(g.B, make([]float32, len(l.B)))
	}
	return g
}

// Zero clears all gradient tensors.
func (g *Grads) Zero() {
	for i := range g.W {
		g.W[i].Zero()
		for j := range g.B[i] {
			g.B[i][j] = 0
		}
	}
}

// Backward computes parameter gradients into g given dLogits, the
// gradient of the loss with respect to the logits of the most recent
// Forward batch. dLogits is clobbered. Gradients are accumulated into
// g (call g.Zero first for a fresh batch).
func (m *MLP) Backward(g *Grads, dLogits *tensor.Matrix) {
	if len(m.acts) == 0 || m.acts[0] == nil {
		panic("nn: Backward called before Forward")
	}
	delta := dLogits
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		in := m.acts[i]
		// dW += deltaᵀ·in ; dB += column sums of delta.
		tmp := tensor.NewMatrix(l.W.Rows, l.W.Cols)
		tensor.MatMulTransA(tmp, delta, in)
		tensor.AXPY(g.W[i], 1, tmp)
		gb := g.B[i]
		for r := 0; r < delta.Rows; r++ {
			row := delta.Row(r)
			for j := range gb {
				gb[j] += row[j]
			}
		}
		if i == 0 {
			break
		}
		// Propagate: dIn = delta·W, then mask by ReLU derivative of in.
		dIn := tensor.NewMatrix(delta.Rows, l.W.Cols)
		tensor.MatMul(dIn, delta, l.W)
		for k, v := range in.Data {
			if v <= 0 {
				dIn.Data[k] = 0
			}
		}
		delta = dIn
	}
}
