package nn

import (
	"encoding/binary"
	"fmt"
	"math"

	"nessa/internal/tensor"
)

// Binary model serialization: a compact, versioned little-endian
// format used for checkpointing trained target models and for sizing
// full-precision feedback transfers. Layout:
//
//	magic   uint32  'NSSA'
//	version uint32  1
//	in      uint32
//	classes uint32
//	layers  uint32
//	per layer: rows uint32, cols uint32, rows*cols float32 weights,
//	           rows float32 biases
const (
	modelMagic   = 0x4e535341 // "NSSA"
	modelVersion = 1
)

// MarshalModel serializes m.
func MarshalModel(m *MLP) []byte {
	size := 20
	for _, l := range m.Layers {
		size += 8 + 4*len(l.W.Data) + 4*len(l.B)
	}
	buf := make([]byte, size)
	off := 0
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[off:], v)
		off += 4
	}
	put(modelMagic)
	put(modelVersion)
	put(uint32(m.In))
	put(uint32(m.Classes))
	put(uint32(len(m.Layers)))
	for _, l := range m.Layers {
		put(uint32(l.W.Rows))
		put(uint32(l.W.Cols))
		for _, v := range l.W.Data {
			put(math.Float32bits(v))
		}
		for _, v := range l.B {
			put(math.Float32bits(v))
		}
	}
	return buf
}

// UnmarshalModel parses a buffer produced by MarshalModel.
func UnmarshalModel(buf []byte) (*MLP, error) {
	off := 0
	get := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("nn: model buffer truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	magic, err := get()
	if err != nil {
		return nil, err
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("nn: bad model magic %#x", magic)
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != modelVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", version)
	}
	in, err := get()
	if err != nil {
		return nil, err
	}
	classes, err := get()
	if err != nil {
		return nil, err
	}
	layers, err := get()
	if err != nil {
		return nil, err
	}
	if in == 0 || classes == 0 || layers == 0 || layers > 64 {
		return nil, fmt.Errorf("nn: implausible model header in=%d classes=%d layers=%d", in, classes, layers)
	}
	m := &MLP{In: int(in), Classes: int(classes)}
	prev := int(in)
	for li := uint32(0); li < layers; li++ {
		rows, err := get()
		if err != nil {
			return nil, err
		}
		cols, err := get()
		if err != nil {
			return nil, err
		}
		if int(cols) != prev {
			return nil, fmt.Errorf("nn: layer %d input dim %d, want %d", li, cols, prev)
		}
		w := tensor.NewMatrix(int(rows), int(cols))
		for i := range w.Data {
			v, err := get()
			if err != nil {
				return nil, err
			}
			w.Data[i] = math.Float32frombits(v)
		}
		b := make([]float32, rows)
		for i := range b {
			v, err := get()
			if err != nil {
				return nil, err
			}
			b[i] = math.Float32frombits(v)
		}
		m.Layers = append(m.Layers, &Dense{W: w, B: b})
		prev = int(rows)
	}
	if prev != int(classes) {
		return nil, fmt.Errorf("nn: final layer width %d, want %d classes", prev, classes)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("nn: %d trailing bytes after model", len(buf)-off)
	}
	return m, nil
}
