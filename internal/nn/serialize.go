package nn

import (
	"encoding/binary"
	"fmt"
	"math"

	"nessa/internal/tensor"
)

// Binary model serialization: a compact, versioned little-endian
// format used for checkpointing trained target models and for sizing
// full-precision feedback transfers. Layout:
//
//	magic   uint32  'NSSA'
//	version uint32  1
//	in      uint32
//	classes uint32
//	layers  uint32
//	per layer: rows uint32, cols uint32, rows*cols float32 weights,
//	           rows float32 biases
const (
	modelMagic   = 0x4e535341 // "NSSA"
	modelVersion = 1
)

// Optimizer-state serialization companion to the model format, used by
// core's session checkpoints: resuming mid-run is only bit-identical
// if the Nesterov velocity buffers (and the scheduled learning rate)
// come back exactly. Layout:
//
//	magic   uint32  'NSGD'
//	version uint32  1
//	lr      float32
//	layers  uint32
//	per layer: rows uint32, cols uint32, rows*cols float32 vW,
//	           rows float32 vB
const (
	sgdMagic   = 0x4e534744 // "NSGD"
	sgdVersion = 1
)

// MarshalSGD serializes the optimizer's mutable state (current LR and
// per-layer velocity buffers).
func MarshalSGD(s *SGD) []byte {
	size := 16
	for i := range s.vW {
		size += 8 + 4*len(s.vW[i].Data) + 4*len(s.vB[i])
	}
	buf := make([]byte, size)
	off := 0
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[off:], v)
		off += 4
	}
	put(sgdMagic)
	put(sgdVersion)
	put(math.Float32bits(s.lr))
	put(uint32(len(s.vW)))
	for i, v := range s.vW {
		put(uint32(v.Rows))
		put(uint32(v.Cols))
		for _, x := range v.Data {
			put(math.Float32bits(x))
		}
		for _, x := range s.vB[i] {
			put(math.Float32bits(x))
		}
	}
	return buf
}

// UnmarshalSGDInto restores state captured by MarshalSGD into s, which
// must have been built for a model of the identical architecture.
func UnmarshalSGDInto(s *SGD, buf []byte) error {
	off := 0
	get := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("nn: optimizer buffer truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	magic, err := get()
	if err != nil {
		return err
	}
	if magic != sgdMagic {
		return fmt.Errorf("nn: bad optimizer magic %#x", magic)
	}
	version, err := get()
	if err != nil {
		return err
	}
	if version != sgdVersion {
		return fmt.Errorf("nn: unsupported optimizer version %d", version)
	}
	lrBits, err := get()
	if err != nil {
		return err
	}
	layers, err := get()
	if err != nil {
		return err
	}
	if int(layers) != len(s.vW) {
		return fmt.Errorf("nn: optimizer has %d layers, checkpoint has %d", len(s.vW), layers)
	}
	lr := math.Float32frombits(lrBits)
	if !(lr > 0) {
		return fmt.Errorf("nn: non-positive checkpointed learning rate %v", lr)
	}
	for i := range s.vW {
		rows, err := get()
		if err != nil {
			return err
		}
		cols, err := get()
		if err != nil {
			return err
		}
		if int(rows) != s.vW[i].Rows || int(cols) != s.vW[i].Cols {
			return fmt.Errorf("nn: layer %d velocity is %dx%d, checkpoint has %dx%d",
				i, s.vW[i].Rows, s.vW[i].Cols, rows, cols)
		}
		for k := range s.vW[i].Data {
			v, err := get()
			if err != nil {
				return err
			}
			s.vW[i].Data[k] = math.Float32frombits(v)
		}
		for k := range s.vB[i] {
			v, err := get()
			if err != nil {
				return err
			}
			s.vB[i][k] = math.Float32frombits(v)
		}
	}
	if off != len(buf) {
		return fmt.Errorf("nn: %d trailing bytes after optimizer state", len(buf)-off)
	}
	s.lr = lr
	return nil
}

// MarshalModel serializes m.
func MarshalModel(m *MLP) []byte {
	size := 20
	for _, l := range m.Layers {
		size += 8 + 4*len(l.W.Data) + 4*len(l.B)
	}
	buf := make([]byte, size)
	off := 0
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[off:], v)
		off += 4
	}
	put(modelMagic)
	put(modelVersion)
	put(uint32(m.In))
	put(uint32(m.Classes))
	put(uint32(len(m.Layers)))
	for _, l := range m.Layers {
		put(uint32(l.W.Rows))
		put(uint32(l.W.Cols))
		for _, v := range l.W.Data {
			put(math.Float32bits(v))
		}
		for _, v := range l.B {
			put(math.Float32bits(v))
		}
	}
	return buf
}

// UnmarshalModel parses a buffer produced by MarshalModel.
func UnmarshalModel(buf []byte) (*MLP, error) {
	off := 0
	get := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("nn: model buffer truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	magic, err := get()
	if err != nil {
		return nil, err
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("nn: bad model magic %#x", magic)
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != modelVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", version)
	}
	in, err := get()
	if err != nil {
		return nil, err
	}
	classes, err := get()
	if err != nil {
		return nil, err
	}
	layers, err := get()
	if err != nil {
		return nil, err
	}
	if in == 0 || classes == 0 || layers == 0 || layers > 64 {
		return nil, fmt.Errorf("nn: implausible model header in=%d classes=%d layers=%d", in, classes, layers)
	}
	m := &MLP{In: int(in), Classes: int(classes)}
	prev := int(in)
	for li := uint32(0); li < layers; li++ {
		rows, err := get()
		if err != nil {
			return nil, err
		}
		cols, err := get()
		if err != nil {
			return nil, err
		}
		if int(cols) != prev {
			return nil, fmt.Errorf("nn: layer %d input dim %d, want %d", li, cols, prev)
		}
		w := tensor.NewMatrix(int(rows), int(cols))
		for i := range w.Data {
			v, err := get()
			if err != nil {
				return nil, err
			}
			w.Data[i] = math.Float32frombits(v)
		}
		b := make([]float32, rows)
		for i := range b {
			v, err := get()
			if err != nil {
				return nil, err
			}
			b[i] = math.Float32frombits(v)
		}
		m.Layers = append(m.Layers, &Dense{W: w, B: b})
		prev = int(rows)
	}
	if prev != int(classes) {
		return nil, fmt.Errorf("nn: final layer width %d, want %d classes", prev, classes)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("nn: %d trailing bytes after model", len(buf)-off)
	}
	return m, nil
}
